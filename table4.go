package mosaic

import (
	"context"

	"mosaic/internal/obs"
	"mosaic/internal/stats"
	"mosaic/internal/sweep"
)

// Table4Options parameterizes the swapping experiment (§4.3).
type Table4Options struct {
	// Workloads defaults to the paper's three (graph500, xsbench, btree).
	Workloads []string
	// MemoryMiB is the memory pool size (paper: 4096 MiB; default 16 MiB).
	MemoryMiB int
	// FootprintFracs are footprints as fractions of the pool (default:
	// the paper's ten steps, ≈1.015 … 1.577).
	FootprintFracs []float64
	// MaxRefs caps each run; both systems see the identical prefix of the
	// workload stream (default 20,000,000; 0 = completion).
	MaxRefs uint64
	// Runs averages over this many seeds (paper: 5; default 3).
	Runs int
	// Seed is the base seed.
	Seed uint64
	// Workers bounds the sweep's worker pool (0 = GOMAXPROCS, 1 = the
	// exact sequential path); every workload × footprint × run cell is an
	// independent pair of simulations.
	Workers int
	// Progress, when non-nil, receives a live status line per cell.
	Progress *obs.Progress
}

func (o *Table4Options) applyDefaults() {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"graph500", "xsbench", "btree"}
	}
	if o.MemoryMiB == 0 {
		o.MemoryMiB = 16
	}
	if len(o.FootprintFracs) == 0 {
		o.FootprintFracs = PaperFootprintFracs
	}
	if o.MaxRefs == 0 {
		o.MaxRefs = 20_000_000
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
}

// Table4Row is one row of Table 4: swap I/O (in thousands of pages, as the
// paper reports) for the Linux baseline and mosaic, plus the percentage
// difference (positive = mosaic swaps less).
type Table4Row struct {
	Workload     string
	FootprintMiB float64
	LinuxKPages  float64
	MosaicKPages float64
	DiffPercent  float64
}

// table4Cell addresses one workload × footprint × run pair of simulations.
type table4Cell struct {
	workload  string
	footprint uint64
	run       int
}

// table4IO is one cell's swap I/O under both systems.
type table4IO struct {
	linux, mosaic uint64
}

// Table4 reproduces Table 4: each workload runs at a ladder of footprints
// above memory size, once under the Linux-like vanilla system and once
// under mosaic with Horizon LRU, with identical reference streams; the row
// reports total swap I/Os. Cells are independent simulations and fan out
// across Options.Workers goroutines; results fold back in submission
// order, so rows and their run averages match the sequential loop exactly.
func Table4(opt Table4Options) ([]Table4Row, error) {
	opt.applyDefaults()
	frames := opt.MemoryMiB << 20 / PageSize
	var cells []table4Cell
	for _, name := range opt.Workloads {
		for _, frac := range opt.FootprintFracs {
			footprint := uint64(frac * float64(opt.MemoryMiB) * (1 << 20))
			for run := 0; run < opt.Runs; run++ {
				cells = append(cells, table4Cell{workload: name, footprint: footprint, run: run})
			}
		}
	}
	ios, err := sweep.Run(context.Background(), cells,
		func(_ context.Context, _ int, c table4Cell) (table4IO, error) {
			seed := opt.Seed + uint64(c.run)*104729
			lio, err := swapIO(ModeVanilla, frames, c.workload, c.footprint, seed, opt.MaxRefs)
			if err != nil {
				return table4IO{}, err
			}
			mio, err := swapIO(ModeMosaic, frames, c.workload, c.footprint, seed, opt.MaxRefs)
			if err != nil {
				return table4IO{}, err
			}
			return table4IO{linux: lio, mosaic: mio}, nil
		},
		sweep.Options{Workers: opt.Workers, Progress: opt.Progress, Name: "table4"})
	if err != nil {
		return nil, err
	}
	var rows []Table4Row
	for i := 0; i < len(cells); i += opt.Runs {
		var linux, mosaic stats.Running
		for r := 0; r < opt.Runs; r++ {
			linux.Observe(float64(ios[i+r].linux))
			mosaic.Observe(float64(ios[i+r].mosaic))
		}
		rows = append(rows, Table4Row{
			Workload:     cells[i].workload,
			FootprintMiB: float64(cells[i].footprint) / (1 << 20),
			LinuxKPages:  linux.Mean() / 1000,
			MosaicKPages: mosaic.Mean() / 1000,
			DiffPercent:  stats.PercentChange(linux.Mean(), mosaic.Mean()),
		})
	}
	return rows, nil
}

// swapIO runs one (mode, workload, footprint) cell and returns the total
// swap I/O count.
func swapIO(mode Mode, frames int, workload string, footprint, seed, maxRefs uint64) (uint64, error) {
	sys, err := NewSystem(SystemConfig{Frames: frames, Mode: mode, Seed: seed})
	if err != nil {
		return 0, err
	}
	w, err := NewWorkload(workload, footprint, seed)
	if err != nil {
		return 0, err
	}
	RunLimited(w, vmSink{sys, 1}, maxRefs)
	return sys.Device().TotalIO(), nil
}
