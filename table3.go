package mosaic

import (
	"context"
	"fmt"

	"mosaic/internal/obs"
	"mosaic/internal/stats"
	"mosaic/internal/sweep"
	"mosaic/internal/trace"
	"mosaic/internal/vm"
)

// PaperFootprintFracs are Table 3/4's workload footprints expressed as
// fractions of the 4096 MiB mosaic pool (4158/4096 … 6459/4096).
var PaperFootprintFracs = []float64{
	4158.0 / 4096, 4413.0 / 4096, 4669.0 / 4096, 4924.0 / 4096, 5180.0 / 4096,
	5436.0 / 4096, 5691.0 / 4096, 5947.0 / 4096, 6203.0 / 4096, 6459.0 / 4096,
}

// Table3Options parameterizes the memory-utilization experiment (§4.2).
type Table3Options struct {
	// Workloads defaults to the paper's three (graph500, xsbench, btree —
	// Table 3 omits GUPS).
	Workloads []string
	// MemoryMiB is the mosaic memory pool size (the paper reserves
	// 4096 MiB; default 16 MiB, preserving footprint/memory ratios).
	MemoryMiB int
	// FootprintFracs are workload footprints as fractions of the pool
	// (default: the paper's first four points, ≈1.015 … 1.202).
	FootprintFracs []float64
	// Runs averages over this many seeds (the paper uses ten; default 3).
	Runs int
	// MaxRefs caps each run (0 = run to completion).
	MaxRefs uint64
	// Seed is the base seed; run r uses Seed+r.
	Seed uint64
	// Workers bounds the sweep's worker pool (0 = GOMAXPROCS, 1 = the
	// exact sequential path); every workload × footprint × run cell is an
	// independent simulation.
	Workers int
	// Progress, when non-nil, receives a live status line per cell.
	Progress *obs.Progress
}

func (o *Table3Options) applyDefaults() {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"graph500", "xsbench", "btree"}
	}
	if o.MemoryMiB == 0 {
		o.MemoryMiB = 16
	}
	if len(o.FootprintFracs) == 0 {
		o.FootprintFracs = PaperFootprintFracs[:4]
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.MaxRefs == 0 {
		o.MaxRefs = 20_000_000
	}
}

// Table3Row is one row of Table 3: utilization at the first associativity
// conflict (1−δ) and steady-state utilization, mean ± stddev over runs.
type Table3Row struct {
	Workload        string
	FootprintMiB    float64
	FirstConflict   float64
	FirstConflictSD float64
	Steady          float64
	SteadySD        float64
}

// vmSink adapts a vm.System to trace.Sink for one ASID. The batch leg walks
// each batch through the same per-reference touch, so batch-native workloads
// (all of them) drive the allocator sweeps without a scalar adapter in
// between.
type vmSink struct {
	sys  *vm.System
	asid ASID
}

func (s vmSink) Access(va uint64, write bool) { s.sys.TouchVA(s.asid, va, write) }

func (s vmSink) ProcessBatch(b trace.Batch) {
	for _, r := range b {
		s.sys.TouchVA(s.asid, r.VA(), r.Write())
	}
}

// table3Sink drives one Table 3 cell: every reference touches the mosaic VM
// system, and utilization is sampled every 4096 references once the first
// associativity conflict has occurred (the steady state). Both legs share
// the per-reference core, so a batched run samples on exactly the clock
// ticks the scalar run would.
type table3Sink struct {
	sys    *vm.System
	steady *stats.Running
}

func (s *table3Sink) Access(va uint64, write bool) {
	s.sys.TouchVA(1, va, write)
	if s.sys.Clock()%4096 == 0 {
		if _, saw := s.sys.FirstConflictUtilization(); saw {
			s.steady.Observe(s.sys.Utilization())
		}
	}
}

func (s *table3Sink) ProcessBatch(b trace.Batch) {
	for _, r := range b {
		s.Access(r.VA(), r.Write())
	}
}

// onsetSink drives LinuxSwapOnset: each reference touches the vanilla VM
// system and records utilization at the first page-out. The batch leg shares
// the scalar core.
type onsetSink struct {
	sys   *vm.System
	onset *float64
}

func (s onsetSink) Access(va uint64, write bool) {
	s.sys.TouchVA(1, va, write)
	if *s.onset < 0 && s.sys.Device().PageOuts() > 0 {
		*s.onset = s.sys.Utilization()
	}
}

func (s onsetSink) ProcessBatch(b trace.Batch) {
	for _, r := range b {
		s.Access(r.VA(), r.Write())
	}
}

// table3Cell addresses one workload × footprint × run simulation.
type table3Cell struct {
	footprint uint64
	workload  string
	run       int
}

// table3Sample is one cell's outcome: the utilization at the first
// conflict and the mean steady-state utilization of that run.
type table3Sample struct {
	first  float64
	steady float64
}

// Table3 reproduces Table 3: for each workload × footprint it runs the
// mosaic allocator under memory pressure and reports when the first
// associativity conflict appears and how full memory stays afterwards.
// Every workload × footprint × run cell is an independent, seed-determined
// simulation, so the grid fans out across Options.Workers goroutines and
// folds back in submission order — the per-row Running accumulators see
// runs in exactly the sequential order.
func Table3(opt Table3Options) ([]Table3Row, error) {
	opt.applyDefaults()
	frames := opt.MemoryMiB << 20 / PageSize
	var cells []table3Cell
	for _, frac := range opt.FootprintFracs {
		footprint := uint64(frac * float64(opt.MemoryMiB) * (1 << 20))
		for _, name := range opt.Workloads {
			for run := 0; run < opt.Runs; run++ {
				cells = append(cells, table3Cell{footprint: footprint, workload: name, run: run})
			}
		}
	}
	samples, err := sweep.Run(context.Background(), cells,
		func(_ context.Context, _ int, c table3Cell) (table3Sample, error) {
			seed := opt.Seed + uint64(c.run)*1009
			sys, err := NewSystem(SystemConfig{Frames: frames, Mode: ModeMosaic, Seed: seed})
			if err != nil {
				return table3Sample{}, err
			}
			w, err := NewWorkload(c.workload, c.footprint, seed)
			if err != nil {
				return table3Sample{}, err
			}
			var steady stats.Running
			RunLimited(w, &table3Sink{sys: sys, steady: &steady}, opt.MaxRefs)
			u, saw := sys.FirstConflictUtilization()
			if !saw {
				return table3Sample{}, fmt.Errorf("mosaic: %s at %.0f MiB never conflicted — footprint too small for the pool", c.workload, float64(c.footprint)/(1<<20))
			}
			if steady.N() == 0 {
				steady.Observe(sys.Utilization())
			}
			return table3Sample{first: u, steady: steady.Mean()}, nil
		},
		sweep.Options{Workers: opt.Workers, Progress: opt.Progress, Name: "table3"})
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for i := 0; i < len(cells); i += opt.Runs {
		var first, steady stats.Running
		for r := 0; r < opt.Runs; r++ {
			first.Observe(samples[i+r].first)
			steady.Observe(samples[i+r].steady)
		}
		rows = append(rows, Table3Row{
			Workload:        cells[i].workload,
			FootprintMiB:    float64(cells[i].footprint) / (1 << 20),
			FirstConflict:   first.Mean(),
			FirstConflictSD: first.Stddev(),
			Steady:          steady.Mean(),
			SteadySD:        steady.Stddev(),
		})
	}
	return rows, nil
}

// LinuxSwapOnset measures the utilization at which the vanilla (Linux-like)
// system performs its first swap under the same pressure — the §4.2
// comparison point (the paper observes ≈99.2%, set by zone watermarks).
func LinuxSwapOnset(memoryMiB int, workload string, seed uint64) (float64, error) {
	frames := memoryMiB << 20 / PageSize
	sys, err := NewSystem(SystemConfig{Frames: frames, Mode: ModeVanilla})
	if err != nil {
		return 0, err
	}
	w, err := NewWorkload(workload, uint64(float64(memoryMiB)*(1<<20)*1.1), seed)
	if err != nil {
		return 0, err
	}
	onset := -1.0
	RunLimited(w, onsetSink{sys: sys, onset: &onset}, 30_000_000)
	if onset < 0 {
		return 0, fmt.Errorf("mosaic: vanilla system never swapped")
	}
	return onset, nil
}

// IcebergDeltaOptions parameterizes the standalone δ measurement.
type IcebergDeltaOptions struct {
	// Slots is the table capacity (default 1<<15).
	Slots int
	// Trials averages over this many random fills (default 10).
	Trials int
	// Geometry defaults to DefaultGeometry.
	Geometry Geometry
	// Seed is the base seed.
	Seed uint64
	// Workers bounds the trial fan-out (0 = GOMAXPROCS, 1 = sequential).
	Workers int
}

// IcebergDeltaResult reports the load factor at the first conflict.
type IcebergDeltaResult struct {
	Mean, SD, Min, Max float64
	Trials             int
}

// IcebergDelta measures δ for the iceberg allocator in isolation: fill
// memory with distinct pages until the first associativity conflict and
// report the load factor, averaged over trials (§4.2's "δ is roughly 2%").
func IcebergDelta(opt IcebergDeltaOptions) (IcebergDeltaResult, error) {
	if opt.Slots == 0 {
		opt.Slots = 1 << 15
	}
	if opt.Trials == 0 {
		opt.Trials = 10
	}
	if opt.Geometry == (Geometry{}) {
		opt.Geometry = DefaultGeometry
	}
	us, err := sweep.Run(context.Background(), make([]struct{}, opt.Trials),
		func(_ context.Context, trial int, _ struct{}) (float64, error) {
			sys, err := NewSystem(SystemConfig{
				Frames:   opt.Slots,
				Mode:     ModeMosaic,
				Geometry: opt.Geometry,
				Seed:     opt.Seed + uint64(trial)*7919,
			})
			if err != nil {
				return 0, err
			}
			for vpn := VPN(0); ; vpn++ {
				sys.Touch(1, vpn, true)
				if u, saw := sys.FirstConflictUtilization(); saw {
					return u, nil
				}
				if int(vpn) > 2*opt.Slots {
					return 0, fmt.Errorf("mosaic: no conflict after 2× capacity")
				}
			}
		},
		sweep.Options{Workers: opt.Workers, Name: "iceberg delta"})
	if err != nil {
		return IcebergDeltaResult{}, err
	}
	var r stats.Running
	for _, u := range us {
		r.Observe(u)
	}
	return IcebergDeltaResult{Mean: r.Mean(), SD: r.Stddev(), Min: r.Min(), Max: r.Max(), Trials: opt.Trials}, nil
}
