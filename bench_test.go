package mosaic

// One benchmark per table/figure of the paper's evaluation, at
// benchmark-friendly scale. The cmd/ binaries regenerate the full tables;
// these benches keep the whole pipeline exercised under `go test -bench=.`
// and report the headline quantity of each experiment as a custom metric.
//
//	Figure 6  → BenchmarkFigure6* (TLB misses, vanilla vs mosaic)
//	Table 3   → BenchmarkTable3 (first-conflict utilization)
//	Table 4   → BenchmarkTable4 (swap I/O, Linux vs mosaic)
//	Table 5   → BenchmarkTable5 (circuit synthesis model)
//	§4.2 δ    → BenchmarkIcebergDelta
//	Ablations → BenchmarkAblate*
//
// Microbenchmarks of the substrates (hash throughput, TLB lookup latency,
// allocator placement, …) live in their internal packages and run under
// `go test -bench=. ./...`.

import (
	"bytes"
	"testing"

	"mosaic/internal/trace"
)

func benchFigure6(b *testing.B, workload string) {
	b.Helper()
	benchFigure6Workers(b, workload, 0)
}

func benchFigure6Workers(b *testing.B, workload string, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := Figure6(Figure6Options{
			Workload:       workload,
			FootprintBytes: 8 << 20,
			MaxRefs:        1_000_000,
			TLBEntries:     256,
			Ways:           []int{1, 8, 256},
			Arities:        []int{4, 16, 64},
			Seed:           1,
			Workers:        workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			v, _ := res.MissesFor(8, "Vanilla")
			m, _ := res.MissesFor(8, "Mosaic-4")
			b.ReportMetric(float64(v), "vanilla-misses")
			b.ReportMetric(float64(m), "mosaic4-misses")
			if v > 0 {
				b.ReportMetric(100*(1-float64(m)/float64(v)), "reduction-%")
			}
		}
	}
}

func BenchmarkFigure6Graph500(b *testing.B) { benchFigure6(b, "graph500") }
func BenchmarkFigure6BTree(b *testing.B)    { benchFigure6(b, "btree") }
func BenchmarkFigure6GUPS(b *testing.B)     { benchFigure6(b, "gups") }
func BenchmarkFigure6XSBench(b *testing.B)  { benchFigure6(b, "xsbench") }

// The sequential/parallel pair measures the sweep engine's wall-clock win
// on an identical workload (scripts/bench.sh records the ratio into
// BENCH_parallel.json); results are bit-identical by construction.
func BenchmarkFigure6Sequential(b *testing.B) { benchFigure6Workers(b, "gups", 1) }
func BenchmarkFigure6Parallel(b *testing.B)   { benchFigure6Workers(b, "gups", 4) }

// BenchmarkFigure6Batch pins the end-to-end batch-native pipeline: every
// worker's capture leg runs the generator's RunBatches straight into the
// simulator's ProcessBatch, with no per-reference interface call between
// workload and TLB. Identical configuration to BenchmarkFigure6Parallel, so
// the committed BENCH_parallel.json baseline from the scalar-generation era
// is directly comparable.
func BenchmarkFigure6Batch(b *testing.B) { benchFigure6Workers(b, "gups", 4) }

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table3(Table3Options{
			Workloads:      []string{"btree"},
			MemoryMiB:      8,
			FootprintFracs: []float64{1.05},
			Runs:           1,
			MaxRefs:        4_000_000,
			Seed:           uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].FirstConflict*100, "first-conflict-%")
			b.ReportMetric(rows[0].Steady*100, "steady-%")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table4(Table4Options{
			Workloads:      []string{"btree"},
			MemoryMiB:      8,
			FootprintFracs: []float64{1.2},
			MaxRefs:        4_000_000,
			Runs:           1,
			Seed:           uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].LinuxKPages, "linux-kIO")
			b.ReportMetric(rows[0].MosaicKPages, "mosaic-kIO")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table5()
		asic := Table5ASIC()
		if i == b.N-1 {
			b.ReportMetric(float64(rows[3].LUTs), "H8-LUTs")
			b.ReportMetric(rows[3].LatencyNs, "H8-latency-ns")
			b.ReportMetric(asic[3].AreaKGE, "H8-area-KGE")
		}
	}
}

func BenchmarkIcebergDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := IcebergDelta(IcebergDeltaOptions{Slots: 1 << 14, Trials: 2, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Mean*100, "load-at-conflict-%")
		}
	}
}

func BenchmarkAblateChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AblateChoices([]int{1, 6}, 1<<13, 1, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].FirstConflict*100, "d1-%")
			b.ReportMetric(rows[1].FirstConflict*100, "d6-%")
		}
	}
}

func BenchmarkAblateEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AblateEviction("btree", 8, []float64{1.15}, 3_000_000, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].HorizonKIO, "horizon-kIO")
			b.ReportMetric(rows[0].NaiveKIO, "naive-kIO")
		}
	}
}

// BenchmarkAccessPipeline measures the simulator's per-reference cost —
// the number that determines how much workload the harness can replay.
func BenchmarkAccessPipeline(b *testing.B) {
	sim, err := NewSimulator(SimConfig{
		Frames: 1 << 16,
		Specs: []TLBSpec{
			{Geometry: TLBGeometry{Entries: 1024, Ways: 8}},
			{Geometry: TLBGeometry{Entries: 1024, Ways: 8}, Arity: 4},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Access(0x10000000+uint64(i%8_000_000)*64, false)
	}
}

func BenchmarkFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Fragmentation(FragmentationOptions{Frames: 1 << 13, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].HugeBackedPct, "fresh-huge-%")
			b.ReportMetric(rows[len(rows)-1].HugeBackedPct, "worst-huge-%")
			b.ReportMetric(rows[len(rows)-1].MosaicBackedPct, "worst-mosaic-%")
		}
	}
}

func BenchmarkMultiprogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := Multiprogram(MultiprogramOptions{
			Workloads:      []string{"gups", "kvstore"},
			FootprintBytes: 4 << 20,
			MaxRefsPerProc: 300_000,
			Seed:           uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res {
				if r.Label == "Mosaic-4" {
					b.ReportMetric(r.InterferencePct, "mosaic4-interference-%")
				}
			}
		}
	}
}

// streamWorkload emits a fixed number of sequential references — the
// cheapest possible workload, so the RunLimited benchmarks measure the
// harness's per-reference dispatch cost rather than workload logic.
type streamWorkload struct{ n uint64 }

func (s streamWorkload) Name() string           { return "stream" }
func (s streamWorkload) FootprintBytes() uint64 { return s.n * 64 }
func (s streamWorkload) Run(sink Sink) {
	for i := uint64(0); i < s.n; i++ {
		sink.Access(i*64, false)
	}
}

// RunBatches emits the identical stream as Run in whole batches
// (trace.BatchRunner), so BenchmarkRunBatch measures the fully batched
// engine — batch-native producer through batch consumer, no per-reference
// dynamic call anywhere.
func (s streamWorkload) RunBatches(sink trace.BatchSink) {
	buf := make(trace.Batch, trace.DefaultBatchSize)
	for i := uint64(0); i < s.n; {
		b := buf
		if left := s.n - i; left < uint64(len(b)) {
			b = b[:left]
		}
		for j := range b {
			b[j] = trace.MakeRef((i+uint64(j))*64, false)
		}
		i += uint64(len(b))
		sink.ProcessBatch(b)
	}
}

// countSink is the minimal terminal sink: one field update per reference.
type countSink struct{ n uint64 }

func (s *countSink) Access(uint64, bool) { s.n++ }

// runLimitedClosure is the pre-limitSink implementation of RunLimited: a
// per-call closure capturing the counter by reference, which escapes to
// the heap and adds a closure-environment load to every reference. Kept
// only as the baseline for BenchmarkRunLimitedClosure.
func runLimitedClosure(w Workload, sink Sink, maxRefs uint64) (n uint64) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(limitReached); !ok {
				panic(r)
			}
		}
	}()
	w.Run(trace.SinkFunc(func(va uint64, write bool) {
		sink.Access(va, write)
		n++
		if n >= maxRefs {
			panic(limitReached{})
		}
	}))
	return n
}

func BenchmarkRunLimited(b *testing.B) {
	w := streamWorkload{n: 1 << 21}
	var s countSink
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := RunLimited(w, &s, 1<<20); got != 1<<20 {
			b.Fatalf("delivered %d refs, want %d", got, 1<<20)
		}
	}
	b.ReportMetric(float64(1<<20)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

func BenchmarkRunLimitedClosure(b *testing.B) {
	w := streamWorkload{n: 1 << 21}
	var s countSink
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := runLimitedClosure(w, &s, 1<<20); got != 1<<20 {
			b.Fatalf("delivered %d refs, want %d", got, 1<<20)
		}
	}
	b.ReportMetric(float64(1<<20)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// batchCountSink is countSink's batch twin: one interface call and one
// length add per batch, so BenchmarkRunBatch measures the batched harness's
// dispatch cost against BenchmarkRunLimited's scalar path.
type batchCountSink struct{ n uint64 }

func (s *batchCountSink) ProcessBatch(b trace.Batch) { s.n += uint64(len(b)) }

func BenchmarkRunBatch(b *testing.B) {
	w := streamWorkload{n: 1 << 21}
	var s batchCountSink
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := RunBatch(w, &s, 1<<20); got != 1<<20 {
			b.Fatalf("delivered %d refs, want %d", got, 1<<20)
		}
	}
	b.ReportMetric(float64(1<<20)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// The generate pair measures workload generation alone — GUPS emitting into
// a counting sink, with the simulator out of the picture — on the
// batch-native leg (whole trace.Batch delivery) versus the scalar interface
// leg (one dynamic Access call per reference). scripts/bench.sh records the
// batch number into BENCH_parallel.json and mosaicstat bench lines it up
// against the replay throughput, answering whether generation or simulation
// bounds a sweep.
const genBenchRefs = 1 << 20

func BenchmarkGenerateGUPSBatch(b *testing.B) {
	w, err := NewWorkload("gups", 8<<20, 1)
	if err != nil {
		b.Fatal(err)
	}
	var s batchCountSink
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := RunBatch(w, &s, genBenchRefs); got != genBenchRefs {
			b.Fatalf("delivered %d refs, want %d", got, genBenchRefs)
		}
	}
	b.ReportMetric(float64(genBenchRefs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

func BenchmarkGenerateGUPSScalar(b *testing.B) {
	w, err := NewWorkload("gups", 8<<20, 1)
	if err != nil {
		b.Fatal(err)
	}
	var s countSink
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := RunLimited(w, &s, genBenchRefs); got != genBenchRefs {
			b.Fatalf("delivered %d refs, want %d", got, genBenchRefs)
		}
	}
	b.ReportMetric(float64(genBenchRefs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// BenchmarkBatchDecode measures v2 frame decoding alone — the trace-replay
// bound when the simulator is out of the picture.
func BenchmarkBatchDecode(b *testing.B) {
	var buf bytes.Buffer
	bw, err := trace.NewBatchWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	const refs = 1 << 20
	batch := make(trace.Batch, trace.DefaultBatchSize)
	for off := 0; off < refs; off += len(batch) {
		for i := range batch {
			batch[i] = trace.MakeRef(uint64(off+i)*64, i%7 == 0)
		}
		if err := bw.WriteBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := trace.NewBatchReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		var s batchCountSink
		n, err := r.ReplayBatches(&s)
		if err != nil {
			b.Fatal(err)
		}
		if n != refs {
			b.Fatalf("decoded %d refs, want %d", n, refs)
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

func BenchmarkAblateTimestamps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := AblateTimestamps("btree", 8, 1.15, []uint64{0, 4096}, 2_000_000, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].MosaicKIO, "exact-kIO")
			b.ReportMetric(rows[1].MosaicKIO, "scan-kIO")
		}
	}
}
