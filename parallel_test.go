package mosaic

// TestParallelMatchesSequential is the PR's acceptance pin: running an
// experiment on a worker pool must be indistinguishable from the
// sequential run — not approximately, but byte for byte in the
// schema-versioned results.File JSON, including the sampled time series
// and structured events. It exercises the two richest drivers (Figure 6
// with sampling enabled, Table 3 with its per-run accumulators) at
// workers=1 (the exact legacy path) and workers=4.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mosaic/internal/results"
)

// fig6File runs a sampled Figure 6 sweep and renders it into the JSON a
// driver would write (mirroring cmd/fig6's collect).
func fig6File(t *testing.T, workers int) []byte {
	t.Helper()
	res, err := Figure6(Figure6Options{
		Workload:       "gups",
		FootprintBytes: 8 << 20,
		MaxRefs:        200_000,
		TLBEntries:     256,
		Ways:           []int{1, 2, 256},
		Arities:        []int{4},
		Seed:           7,
		SampleEvery:    50_000,
		Workers:        workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := results.New("fig6")
	f.SetMetric("fig6.gups.refs", float64(res.Refs))
	for _, c := range res.Cells {
		key := fmt.Sprintf("fig6.gups.%s.w%d.misses", results.Sanitize(c.Label), c.Ways)
		f.SetMetric(key, float64(c.Stats.Misses))
	}
	f.AddSnapshot("obs", res.Metrics)
	for _, s := range res.Series {
		vals := make([]results.Number, len(s.Values))
		for i, v := range s.Values {
			vals[i] = results.Number(v)
		}
		f.Series = append(f.Series, results.Series{Name: "gups." + s.Name, Refs: s.Refs, Values: vals})
	}
	f.Events = append(f.Events, res.Events...)
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// table3File runs a small Table 3 grid and renders it the way cmd/table3
// does.
func table3File(t *testing.T, workers int) []byte {
	t.Helper()
	rows, err := Table3(Table3Options{
		Workloads:      []string{"btree", "gups"},
		MemoryMiB:      8,
		FootprintFracs: []float64{1.05, 1.15},
		Runs:           2,
		MaxRefs:        2_000_000,
		Seed:           3,
		Workers:        workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := results.New("table3")
	for _, r := range rows {
		key := fmt.Sprintf("table3.%s.fp%.0f.", results.Sanitize(r.Workload), r.FootprintMiB)
		f.SetMetric(key+"first_conflict", r.FirstConflict)
		f.SetMetric(key+"first_conflict_sd", r.FirstConflictSD)
		f.SetMetric(key+"steady", r.Steady)
		f.SetMetric(key+"steady_sd", r.SteadySD)
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-experiment determinism pin")
	}
	t.Run("fig6", func(t *testing.T) {
		seq := fig6File(t, 1)
		par := fig6File(t, 4)
		if !bytes.Equal(seq, par) {
			t.Fatalf("fig6 JSON diverged between workers=1 and workers=4:\nseq: %s\npar: %s", seq, par)
		}
	})
	t.Run("table3", func(t *testing.T) {
		seq := table3File(t, 1)
		par := table3File(t, 4)
		if !bytes.Equal(seq, par) {
			t.Fatalf("table3 JSON diverged between workers=1 and workers=4:\nseq: %s\npar: %s", seq, par)
		}
	})
}
