package mosaic

import "testing"

func TestMultiprogramShape(t *testing.T) {
	opts := MultiprogramOptions{
		Workloads:      []string{"gups", "kvstore"},
		FootprintBytes: 4 << 20,
		MaxRefsPerProc: 400_000,
		Seed:           2,
	}
	tagged, refs, err := Multiprogram(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Each stream is capped at 400k but may end sooner (kvstore's op count
	// is footprint-proportional).
	if refs == 0 || refs > 2*400_000 {
		t.Fatalf("total refs = %d", refs)
	}
	if len(tagged) != 3 { // vanilla + 2 arities
		t.Fatalf("results = %d", len(tagged))
	}
	byLabel := map[string]MultiprogramResult{}
	for _, r := range tagged {
		if r.SharedMisses == 0 || r.SoloMisses == 0 {
			t.Fatalf("%s: zero misses (%+v)", r.Label, r)
		}
		// Sharing a TLB can only hurt (or leave unchanged): interference
		// must not be meaningfully negative.
		if r.InterferencePct < -1 {
			t.Errorf("%s: negative interference %.2f%%", r.Label, r.InterferencePct)
		}
		byLabel[r.Label] = r
	}
	// Mosaic still wins under multiprogramming.
	if byLabel["Mosaic-4"].SharedMisses >= byLabel["Vanilla"].SharedMisses {
		t.Errorf("Mosaic-4 shared misses %d ≥ vanilla %d",
			byLabel["Mosaic-4"].SharedMisses, byLabel["Vanilla"].SharedMisses)
	}

	flushOpts := opts
	flushOpts.FlushOnSwitch = true
	flushed, _, err := Multiprogram(flushOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range flushed {
		// Flushing on every switch can only increase misses vs tagging.
		if r.SharedMisses < tagged[i].SharedMisses {
			t.Errorf("%s: flushed run has fewer misses (%d) than tagged (%d)",
				r.Label, r.SharedMisses, tagged[i].SharedMisses)
		}
	}
	t.Logf("tagged: %+v", tagged)
	t.Logf("flushed: %+v", flushed)
}

func TestMultiprogramValidation(t *testing.T) {
	if _, _, err := Multiprogram(MultiprogramOptions{Workloads: []string{"gups"}}); err == nil {
		t.Error("single workload accepted")
	}
	if _, _, err := Multiprogram(MultiprogramOptions{Workloads: []string{"gups", "nope"}}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestMultiprogramASIDIsolationInTLB(t *testing.T) {
	// Two processes touching the same virtual pages must not alias in the
	// tagged TLB: build a simulator directly and interleave identical VAs
	// from two ASIDs; translations must differ.
	sim, err := NewSimulator(SimConfig{
		Frames: 1 << 14,
		Specs:  []TLBSpec{{Geometry: TLBGeometry{Entries: 64, Ways: 8}}},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	const va = 0x10000000
	sim.AccessFrom(1, va, true)
	sim.AccessFrom(2, va, true)
	p1, ok1 := sim.OS().Translate(1, 0x10000)
	p2, ok2 := sim.OS().Translate(2, 0x10000)
	if !ok1 || !ok2 {
		t.Fatal("pages not resident")
	}
	if p1 == p2 {
		t.Fatal("ASIDs share a frame without sharing")
	}
	// Re-touch both: each must hit its own tagged entry (no cross-ASID
	// eviction of a 2-entry working set in a 64-entry TLB, and no stale
	// translation reuse).
	sim.AccessFrom(1, va, false)
	sim.AccessFrom(2, va, false)
	r := sim.Results()[0]
	if r.TLB.Hits != 2 || r.TLB.Misses != 2 {
		t.Fatalf("tagged TLB stats = %+v, want 2 hits / 2 misses", r.TLB)
	}
}

func TestFlushTLBs(t *testing.T) {
	sim, err := NewSimulator(SimConfig{
		Frames: 1 << 14,
		Specs: []TLBSpec{
			{Geometry: TLBGeometry{Entries: 64, Ways: 8}},
			{Geometry: TLBGeometry{Entries: 64, Ways: 8}, Arity: 4},
			{Geometry: TLBGeometry{Entries: 64, Ways: 8}, Coalesce: 4},
		},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0x10000000, false)
	sim.Access(0x10000000, false) // hits
	sim.FlushTLBs()
	sim.Access(0x10000000, false) // must miss again everywhere
	for _, r := range sim.Results() {
		if r.TLB.Misses != 2 {
			t.Errorf("%s: misses = %d, want 2 (cold + post-flush)", r.Spec.Label(), r.TLB.Misses)
		}
		if r.TLB.Hits != 1 {
			t.Errorf("%s: hits = %d, want 1", r.Spec.Label(), r.TLB.Hits)
		}
	}
	if sim.Metrics().CounterValue("tlb.flush") != 1 {
		t.Errorf("flush counter = %d", sim.Metrics().CounterValue("tlb.flush"))
	}
}
