package mosaic

import (
	"bytes"
	"testing"

	"mosaic/internal/obs"
	"mosaic/internal/stats"
)

// Batch-native generation's contract mirrors batched replay's: the batch leg
// (RunBatches) and the scalar leg (Run) of every workload must drive a
// consumer to byte-identical results. These tests force the scalar leg by
// hiding the BatchRunner capability and compare full results.File JSON.

// scalarOnly hides a workload's BatchRunner leg, so the harness dispatches
// onto the scalar Run path. Explicit delegation, not embedding: an embedded
// workload would re-expose RunBatches and defeat the point.
type scalarOnly struct{ w Workload }

func (s scalarOnly) Name() string           { return s.w.Name() }
func (s scalarOnly) FootprintBytes() uint64 { return s.w.FootprintBytes() }
func (s scalarOnly) Run(sink Sink)          { s.w.Run(sink) }

// TestGeneratorBatchMatchesScalarAllWorkloads runs every workload through
// the same fig6-style simulator twice — batch-native generation on and off —
// and requires byte-identical results files.
func TestGeneratorBatchMatchesScalarAllWorkloads(t *testing.T) {
	for _, name := range []string{"graph500", "btree", "gups", "xsbench", "kvstore"} {
		t.Run(name, func(t *testing.T) {
			const footprint, maxRefs = 4 << 20, 400_000
			wBatch, err := NewWorkload(name, footprint, 7)
			if err != nil {
				t.Fatal(err)
			}
			wScalar, err := NewWorkload(name, footprint, 7)
			if err != nil {
				t.Fatal(err)
			}
			simBatch := equivSim(t, nil)
			nBatch := RunLimited(wBatch, simBatch, maxRefs)
			simScalar := equivSim(t, nil)
			nScalar := RunLimited(scalarOnly{wScalar}, simScalar, maxRefs)
			if nBatch != nScalar {
				t.Fatalf("delivered %d refs batch-native vs %d scalar", nBatch, nScalar)
			}
			a, b := resultsJSON(t, simBatch, nil), resultsJSON(t, simScalar, nil)
			if !bytes.Equal(a, b) {
				t.Errorf("batch-native generation diverged from scalar:\n%s", firstDiff(a, b))
			}
		})
	}
}

// TestFigure6CellGeneratorBatchMatchesScalar pins the fig6 capture cell with
// and without the observer attached: the sampled variant exercises the
// windowed sampler whose per-reference clock must tick identically under
// whole-batch delivery.
func TestFigure6CellGeneratorBatchMatchesScalar(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		var obBatch, obScalar *obs.Observer
		if sampled {
			obBatch = obs.NewObserver(1 << 12)
			obScalar = obs.NewObserver(1 << 12)
		}
		wBatch, err := NewWorkload("gups", 4<<20, 7)
		if err != nil {
			t.Fatal(err)
		}
		wScalar, err := NewWorkload("gups", 4<<20, 7)
		if err != nil {
			t.Fatal(err)
		}
		simBatch := equivSim(t, obBatch)
		RunLimited(wBatch, simBatch, 300_000)
		simScalar := equivSim(t, obScalar)
		RunLimited(scalarOnly{wScalar}, simScalar, 300_000)
		a, b := resultsJSON(t, simBatch, obBatch), resultsJSON(t, simScalar, obScalar)
		if !bytes.Equal(a, b) {
			t.Errorf("sampled=%v: batch-native generation diverged from scalar:\n%s",
				sampled, firstDiff(a, b))
		}
	}
}

// TestTable3CellGeneratorBatchMatchesScalar pins one Table 3 cell — the
// allocator-under-pressure path with its every-4096-references utilization
// sampler — across the two generation legs.
func TestTable3CellGeneratorBatchMatchesScalar(t *testing.T) {
	cell := func(w Workload) (first, steadyMean float64, samples int) {
		t.Helper()
		frames := 8 << 20 / PageSize
		sys, err := NewSystem(SystemConfig{Frames: frames, Mode: ModeMosaic, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var steady stats.Running
		RunLimited(w, &table3Sink{sys: sys, steady: &steady}, 2_000_000)
		u, saw := sys.FirstConflictUtilization()
		if !saw {
			t.Fatal("cell never conflicted — footprint too small for the pool")
		}
		return u, steady.Mean(), steady.N()
	}
	pool := uint64(8 << 20)
	footprint := pool + pool/20 // 1.05× the pool, past the conflict point
	wBatch, err := NewWorkload("btree", footprint, 7)
	if err != nil {
		t.Fatal(err)
	}
	wScalar, err := NewWorkload("btree", footprint, 7)
	if err != nil {
		t.Fatal(err)
	}
	f1, s1, n1 := cell(wBatch)
	f2, s2, n2 := cell(scalarOnly{wScalar})
	if f1 != f2 || s1 != s2 || n1 != n2 {
		t.Errorf("batch-native cell (first=%v steady=%v samples=%d) diverged from scalar (first=%v steady=%v samples=%d)",
			f1, s1, n1, f2, s2, n2)
	}
}
