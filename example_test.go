package mosaic_test

import (
	"fmt"

	"mosaic"
)

// The basic OS-level flow: demand paging with compressed translations.
func ExampleNewSystem() {
	sys, err := mosaic.NewSystem(mosaic.SystemConfig{
		Frames: 1024,
		Mode:   mosaic.ModeMosaic,
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	res := sys.Touch(1, 0x42, true) // first touch: demand-zero fault
	fmt.Println("first touch:", res)
	fmt.Println("second touch:", sys.Touch(1, 0x42, false))

	cpfn, _ := sys.CPFNFor(1, 0x42)
	fmt.Println("CPFN fits 7 bits:", cpfn < 104)
	// Output:
	// first touch: minor-fault
	// second touch: hit
	// CPFN fits 7 bits: true
}

// The paper's 7-bit hardware encoding of a compressed frame number.
func ExampleGeometry() {
	g := mosaic.DefaultGeometry
	fmt.Println("associativity:", g.Associativity())
	fmt.Println("CPFN bits:", g.CPFNBits())

	front := g.FrontyardCPFN(13)
	back := g.BackyardCPFN(3, 6)
	fmt.Printf("frontyard slot 13: %#07b\n", g.EncodeHW(front))
	fmt.Printf("backyard choice 3 slot 6: %#07b\n", g.EncodeHW(back))
	fmt.Printf("unmapped: %#07b\n", g.EncodeHW(mosaic.CPFNInvalid))
	// Output:
	// associativity: 104
	// CPFN bits: 7
	// frontyard slot 13: 0b0001101
	// backyard choice 3 slot 6: 0b1011110
	// unmapped: 0b1111111
}

// Feeding one reference stream to a vanilla and a mosaic TLB at once — the
// paper's dual-TLB methodology.
func ExampleNewSimulator() {
	geom := mosaic.TLBGeometry{Entries: 64, Ways: 8}
	sim, err := mosaic.NewSimulator(mosaic.SimConfig{
		Frames: 1 << 16,
		Specs: []mosaic.TLBSpec{
			{Geometry: geom},
			{Geometry: geom, Arity: 4},
		},
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	// Scan 128 pages (2× vanilla reach, ½ mosaic reach), five times.
	for round := 0; round < 5; round++ {
		for page := uint64(0); page < 128; page++ {
			sim.Access(0x10000000+page*mosaic.PageSize, false)
		}
	}
	// Vanilla thrashes every round (128 pages > 64-entry reach): 5×128.
	// Mosaic-4 covers the region (32 ToCs in 64 entries), so it misses only
	// on the first pass, where each page's demand fault populates its ToC
	// sub-entry.
	for _, r := range sim.Results() {
		fmt.Printf("%s: %d misses\n", r.Spec.Label(), r.TLB.Misses)
	}
	// Output:
	// Vanilla: 640 misses
	// Mosaic-4: 128 misses
}

// Reproducing the paper's hardware table.
func ExampleTable5() {
	for _, r := range mosaic.Table5() {
		fmt.Printf("H=%d: %d LUTs, %.3f ns\n", r.HashOutputs, r.LUTs, r.LatencyNs)
	}
	// Output:
	// H=1: 858 LUTs, 2.155 ns
	// H=2: 1696 LUTs, 2.155 ns
	// H=4: 3392 LUTs, 2.155 ns
	// H=8: 6208 LUTs, 2.155 ns
}

// Running one of the paper's workloads with a reference cap.
func ExampleRunLimited() {
	w, err := mosaic.NewWorkload("gups", 1<<20, 1)
	if err != nil {
		panic(err)
	}
	count := uint64(0)
	n := mosaic.RunLimited(w, mosaic.SinkFunc(func(va uint64, write bool) {
		count++
	}), 10000)
	fmt.Println("delivered:", n, "counted:", count)
	// Output:
	// delivered: 10000 counted: 10000
}
