package mosaic

import (
	"fmt"

	"mosaic/internal/obs"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
)

// limitReached aborts a workload once the simulator has seen enough
// references.
type limitReached struct{}

// RunLimited drives a workload into sink, stopping after maxRefs
// references (0 means unlimited). It returns the number of references
// delivered.
func RunLimited(w Workload, sink Sink, maxRefs uint64) (n uint64) {
	if maxRefs == 0 {
		var c trace.Counter
		w.Run(trace.Tee(&c, sink))
		return c.Total()
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(limitReached); !ok {
				panic(r)
			}
		}
	}()
	w.Run(trace.SinkFunc(func(va uint64, write bool) {
		sink.Access(va, write)
		n++
		if n >= maxRefs {
			panic(limitReached{})
		}
	}))
	return n
}

// Figure6Options parameterizes the Figure 6 reproduction (TLB misses vs
// TLB associativity × mosaic arity, per workload).
type Figure6Options struct {
	// Workload is one of WorkloadNames().
	Workload string
	// FootprintBytes sizes the workload (default 32 MiB — ≥8× the reach
	// of the default 1024-entry vanilla TLB, preserving the paper's
	// footprint ≫ reach regime at simulation-friendly scale).
	FootprintBytes uint64
	// MaxRefs caps the references simulated per associativity point
	// (default 8,000,000; 0 = run the workload to completion, the
	// full-fidelity setting).
	MaxRefs uint64
	// TLBEntries is the TLB size (Table 1a uses 1024).
	TLBEntries int
	// Ways lists the associativities (default 1, 2, 4, 8, TLBEntries —
	// the paper's direct / 2-way / 4-way / 8-way / fully-associative).
	Ways []int
	// Arities lists the mosaic arities (default 4, 8, 16, 32, 64).
	Arities []int
	// Coalesce lists CoLT-style coalescing baselines (run lengths) to
	// include alongside vanilla and mosaic; empty means none. Under
	// mosaic's hashed placement these illustrate how little contiguity-
	// dependent coalescing recovers (§5.2).
	Coalesce []int
	// Seed drives workload generation and placement hashing.
	Seed uint64
	// Frames is the simulated DRAM size (default 4× footprint, so Figure 6
	// measures TLB behaviour without memory pressure, as in the paper).
	Frames int
	// SampleEvery, when positive, attaches the observability bundle to the
	// fully-associative point (the last Ways entry) and records windowed
	// time series every SampleEvery references into Result.Series/Events.
	// Only one point is sampled so the sweep itself stays unperturbed.
	SampleEvery uint64
	// Progress, when non-nil, receives a live status line per sweep point.
	Progress *obs.Progress
}

func (o *Figure6Options) applyDefaults() error {
	if o.Workload == "" {
		return fmt.Errorf("mosaic: Figure6 needs a workload name")
	}
	if o.FootprintBytes == 0 {
		o.FootprintBytes = 32 << 20
	}
	if o.MaxRefs == 0 {
		o.MaxRefs = 8_000_000
	}
	if o.TLBEntries == 0 {
		o.TLBEntries = 1024
	}
	if len(o.Ways) == 0 {
		o.Ways = []int{1, 2, 4, 8, o.TLBEntries}
	}
	if len(o.Arities) == 0 {
		o.Arities = []int{4, 8, 16, 32, 64}
	}
	if o.Frames == 0 {
		o.Frames = int(4 * o.FootprintBytes / PageSize)
	}
	return nil
}

// Figure6Cell is one bar of Figure 6: a (associativity, design) point.
type Figure6Cell struct {
	// Ways is the TLB associativity of this column group.
	Ways int
	// Label is "Vanilla" or "Mosaic-<arity>".
	Label string
	// Stats is the TLB hit/miss breakdown.
	Stats tlb.Stats
}

// Figure6Result is a full sub-figure (one workload).
type Figure6Result struct {
	Workload string
	// Refs is the number of references simulated per associativity point.
	Refs  uint64
	Cells []Figure6Cell
	// Series and Events hold the time-series samples and structured events
	// from the fully-associative point; nil unless Options.SampleEvery > 0.
	Series []obs.Series
	Events []obs.Event
}

// MissesFor returns the miss count of a (ways, label) cell.
func (r Figure6Result) MissesFor(ways int, label string) (uint64, bool) {
	for _, c := range r.Cells {
		if c.Ways == ways && c.Label == label {
			return c.Stats.Misses, true
		}
	}
	return 0, false
}

// Figure6 reproduces one sub-figure of Figure 6: for each TLB
// associativity, it feeds an identical workload reference stream through a
// vanilla TLB and a mosaic TLB per arity (the paper's dual-TLB
// methodology) and reports the miss counts.
func Figure6(opt Figure6Options) (Figure6Result, error) {
	if err := opt.applyDefaults(); err != nil {
		return Figure6Result{}, err
	}
	res := Figure6Result{Workload: opt.Workload}
	for wi, ways := range opt.Ways {
		opt.Progress.Stepf("fig6 %s: point %d/%d (%d-way)", opt.Workload, wi+1, len(opt.Ways), ways)
		specs := []TLBSpec{{Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: ways}}}
		for _, c := range opt.Coalesce {
			specs = append(specs, TLBSpec{
				Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: ways},
				Coalesce: c,
			})
		}
		for _, a := range opt.Arities {
			specs = append(specs, TLBSpec{
				Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: ways},
				Arity:    a,
			})
		}
		var ob *obs.Observer
		if opt.SampleEvery > 0 && wi == len(opt.Ways)-1 {
			ob = obs.NewObserver(opt.SampleEvery)
		}
		sim, err := NewSimulator(SimConfig{Frames: opt.Frames, Specs: specs, Seed: opt.Seed, Obs: ob})
		if err != nil {
			return Figure6Result{}, err
		}
		// A fresh workload with the same seed replays the identical
		// reference stream at every associativity point.
		w, err := NewWorkload(opt.Workload, opt.FootprintBytes, opt.Seed)
		if err != nil {
			return Figure6Result{}, err
		}
		refs := RunLimited(w, sim, opt.MaxRefs)
		if res.Refs == 0 {
			res.Refs = refs
		} else if res.Refs != refs {
			return Figure6Result{}, fmt.Errorf("mosaic: reference streams diverged across associativities (%d vs %d)", res.Refs, refs)
		}
		for _, r := range sim.Results() {
			res.Cells = append(res.Cells, Figure6Cell{
				Ways:  ways,
				Label: r.Spec.Label(),
				Stats: r.TLB,
			})
		}
		if ob != nil {
			sim.FinalizeMetrics()
			res.Series = sim.Sampler().Series()
			res.Events = ob.Events.Events()
		}
	}
	return res, nil
}
