package mosaic

import (
	"context"
	"fmt"

	"mosaic/internal/obs"
	"mosaic/internal/sweep"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
)

// limitReached aborts a workload once the simulator has seen enough
// references.
type limitReached struct{}

// limitSink counts references into an underlying sink and aborts the
// workload with panic(limitReached{}) once the cap is hit. It is a
// preallocated concrete struct rather than a per-call closure so the
// per-reference path is one interface dispatch plus two field updates —
// no closure environment, no heap-escaping counter (the difference is
// measured by BenchmarkRunLimited vs BenchmarkRunLimitedClosure).
type limitSink struct {
	sink Sink
	n    uint64
	max  uint64
}

func (s *limitSink) Access(va uint64, write bool) {
	s.sink.Access(va, write)
	s.n++
	if s.n >= s.max {
		panic(limitReached{})
	}
}

// RunLimited drives a workload into sink, stopping after maxRefs
// references (0 means unlimited). It returns the number of references
// delivered. A sink with a batch path (trace.BatchSink — the Simulator
// among them) is driven through RunBatch instead, which delivers the
// identical reference stream while amortizing per-reference dispatch.
func RunLimited(w Workload, sink Sink, maxRefs uint64) (n uint64) {
	if bs, ok := sink.(trace.BatchSink); ok {
		return RunBatch(w, bs, maxRefs)
	}
	if maxRefs == 0 {
		var c trace.Counter
		w.Run(trace.Tee(&c, sink))
		return c.Total()
	}
	ls := limitSink{sink: sink, max: maxRefs}
	defer func() {
		n = ls.n
		if r := recover(); r != nil {
			if _, ok := r.(limitReached); !ok {
				panic(r)
			}
		}
	}()
	w.Run(&ls)
	return ls.n
}

// batchLimitSink is RunBatch's step: references accumulate into a
// preallocated batch, and both the limit check and the downstream dispatch
// happen once per batch rather than once per reference. The delivered
// stream is exactly the first max references — the final batch is trimmed
// before delivery, then the workload is aborted — so any BatchSink that
// observes references in order sees the same stream RunLimited's scalar
// path would deliver.
type batchLimitSink struct {
	next trace.BatchSink
	buf  trace.Batch
	i    int
	n    uint64 // delivered references
	max  uint64
}

func (s *batchLimitSink) Access(va uint64, write bool) {
	if s.buf == nil {
		s.lazyBuf()
	}
	s.buf[s.i] = trace.MakeRef(va, write)
	s.i++
	if s.i == len(s.buf) {
		s.flush()
	}
}

// lazyBuf allocates the Access-leg buffer on first use. RunBatch
// preallocates it for scalar workloads; a BatchRunner that also calls
// Access (a mixed-mode producer) lands here instead of hitting an index
// panic on the nil buffer.
func (s *batchLimitSink) lazyBuf() {
	s.buf = make(trace.Batch, trace.DefaultBatchSize)
}

// flush delivers the buffered batch, trimming it to the limit and aborting
// the workload once max references are out.
func (s *batchLimitSink) flush() {
	if s.n+uint64(s.i) >= s.max {
		s.next.ProcessBatch(s.buf[:s.max-s.n])
		s.n = s.max
		panic(limitReached{})
	}
	s.next.ProcessBatch(s.buf[:s.i])
	s.n += uint64(s.i)
	s.i = 0
}

// tail delivers whatever references are still buffered when the producer
// ends between flush boundaries. The workload can finish with more
// buffered references than the cap allows (a finite stream shorter than
// the next flush boundary past the limit), so the tail is trimmed to the
// limit before delivery.
func (s *batchLimitSink) tail() {
	if s.i == 0 {
		return
	}
	k := uint64(s.i)
	if s.n+k > s.max {
		k = s.max - s.n
	}
	s.next.ProcessBatch(s.buf[:k])
	s.n += k
	s.i = 0
}

// ProcessBatch is the batch-producer leg: whole batches from a
// trace.BatchRunner pass straight through, trimmed at the limit. The two
// legs share the counters; a mixed-mode producer that interleaves Access
// calls gets its own lazily-allocated buffer on the Access leg.
func (s *batchLimitSink) ProcessBatch(b trace.Batch) {
	if s.i > 0 {
		s.flush() // drain buffered Access refs so the stream stays ordered
	}
	if s.n+uint64(len(b)) >= s.max {
		s.next.ProcessBatch(b[:s.max-s.n])
		s.n = s.max
		panic(limitReached{})
	}
	s.next.ProcessBatch(b)
	s.n += uint64(len(b))
}

// RunBatch drives a workload into a batch sink, stopping after maxRefs
// references (0 means unlimited), and returns the number delivered. The
// sink observes the identical reference stream as RunLimited's scalar
// path — same references, same order, same cutoff — batched into
// trace.DefaultBatchSize runs. A workload that can produce batches
// natively (trace.BatchRunner) skips per-reference packing entirely: its
// batches flow through with only the limit trim in between.
func RunBatch(w Workload, sink trace.BatchSink, maxRefs uint64) (n uint64) {
	if maxRefs == 0 {
		maxRefs = 1<<64 - 1
	}
	ls := batchLimitSink{next: sink, max: maxRefs}
	defer func() {
		n = ls.n
		if r := recover(); r != nil {
			if _, ok := r.(limitReached); !ok {
				panic(r)
			}
		}
	}()
	if br, ok := w.(trace.BatchRunner); ok {
		br.RunBatches(&ls)
	} else {
		ls.buf = make(trace.Batch, trace.DefaultBatchSize)
		w.Run(&ls)
	}
	ls.tail()
	return ls.n
}

// Figure6Options parameterizes the Figure 6 reproduction (TLB misses vs
// TLB associativity × mosaic arity, per workload).
type Figure6Options struct {
	// Workload is one of WorkloadNames().
	Workload string
	// FootprintBytes sizes the workload (default 32 MiB — ≥8× the reach
	// of the default 1024-entry vanilla TLB, preserving the paper's
	// footprint ≫ reach regime at simulation-friendly scale).
	FootprintBytes uint64
	// MaxRefs caps the references simulated per associativity point
	// (default 8,000,000; 0 = run the workload to completion, the
	// full-fidelity setting).
	MaxRefs uint64
	// TLBEntries is the TLB size (Table 1a uses 1024).
	TLBEntries int
	// Ways lists the associativities (default 1, 2, 4, 8, TLBEntries —
	// the paper's direct / 2-way / 4-way / 8-way / fully-associative).
	Ways []int
	// Arities lists the mosaic arities (default 4, 8, 16, 32, 64).
	Arities []int
	// Coalesce lists CoLT-style coalescing baselines (run lengths) to
	// include alongside vanilla and mosaic; empty means none. Under
	// mosaic's hashed placement these illustrate how little contiguity-
	// dependent coalescing recovers (§5.2).
	Coalesce []int
	// Seed drives workload generation and placement hashing.
	Seed uint64
	// Frames is the simulated DRAM size (default 4× footprint, so Figure 6
	// measures TLB behaviour without memory pressure, as in the paper).
	Frames int
	// SampleEvery, when positive, attaches the observability bundle to the
	// fully-associative point (the last Ways entry) and records windowed
	// time series every SampleEvery references into Result.Series/Events.
	// Only one point is sampled so the sweep itself stays unperturbed.
	SampleEvery uint64
	// Workers bounds the sweep's worker pool (0 = GOMAXPROCS, 1 = the
	// exact sequential path). Points are independent simulations, so any
	// worker count produces bit-identical results.
	Workers int
	// Progress, when non-nil, receives a live status line per sweep point.
	Progress *obs.Progress
}

func (o *Figure6Options) applyDefaults() error {
	if o.Workload == "" {
		return fmt.Errorf("mosaic: Figure6 needs a workload name")
	}
	if o.FootprintBytes == 0 {
		o.FootprintBytes = 32 << 20
	}
	if o.MaxRefs == 0 {
		o.MaxRefs = 8_000_000
	}
	if o.TLBEntries == 0 {
		o.TLBEntries = 1024
	}
	if len(o.Ways) == 0 {
		o.Ways = []int{1, 2, 4, 8, o.TLBEntries}
	}
	if len(o.Arities) == 0 {
		o.Arities = []int{4, 8, 16, 32, 64}
	}
	if o.Frames == 0 {
		o.Frames = int(4 * o.FootprintBytes / PageSize)
	}
	return nil
}

// Figure6Cell is one bar of Figure 6: a (associativity, design) point.
type Figure6Cell struct {
	// Ways is the TLB associativity of this column group.
	Ways int
	// Label is "Vanilla" or "Mosaic-<arity>".
	Label string
	// Stats is the TLB hit/miss breakdown.
	Stats tlb.Stats
}

// Figure6Result is a full sub-figure (one workload).
type Figure6Result struct {
	Workload string
	// Refs is the number of references simulated per associativity point.
	Refs  uint64
	Cells []Figure6Cell
	// Series and Events hold the time-series samples and structured events
	// from the fully-associative point; nil unless Options.SampleEvery > 0.
	Series []obs.Series
	Events []obs.Event
	// Metrics is the finalized metrics snapshot of the sampled point
	// (zero-valued unless Options.SampleEvery > 0). Drivers running
	// several workloads merge these via sweep.Merger.
	Metrics obs.Snapshot
}

// MissesFor returns the miss count of a (ways, label) cell.
func (r Figure6Result) MissesFor(ways int, label string) (uint64, bool) {
	for _, c := range r.Cells {
		if c.Ways == ways && c.Label == label {
			return c.Stats.Misses, true
		}
	}
	return 0, false
}

// fig6Point is one associativity point's outcome, carried back through the
// sweep engine for the index-ordered fold into Figure6Result.
type fig6Point struct {
	refs    uint64
	cells   []Figure6Cell
	series  []obs.Series
	events  []obs.Event
	metrics obs.Snapshot
	sampled bool
}

// Figure6 reproduces one sub-figure of Figure 6: for each TLB
// associativity, it feeds an identical workload reference stream through a
// vanilla TLB and a mosaic TLB per arity (the paper's dual-TLB
// methodology) and reports the miss counts. Associativity points are
// independent simulations — a fresh workload with the same seed replays the
// identical reference stream at every point — so they fan out across
// Options.Workers goroutines with bit-identical results.
func Figure6(opt Figure6Options) (Figure6Result, error) {
	if err := opt.applyDefaults(); err != nil {
		return Figure6Result{}, err
	}
	points, err := sweep.Run(context.Background(), opt.Ways,
		func(_ context.Context, wi int, ways int) (fig6Point, error) {
			specs := []TLBSpec{{Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: ways}}}
			for _, c := range opt.Coalesce {
				specs = append(specs, TLBSpec{
					Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: ways},
					Coalesce: c,
				})
			}
			for _, a := range opt.Arities {
				specs = append(specs, TLBSpec{
					Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: ways},
					Arity:    a,
				})
			}
			// Only the fully-associative point carries an observer, so
			// sampling one point cannot perturb any other.
			var ob *obs.Observer
			if opt.SampleEvery > 0 && wi == len(opt.Ways)-1 {
				ob = obs.NewObserver(opt.SampleEvery)
			}
			sim, err := NewSimulator(SimConfig{Frames: opt.Frames, Specs: specs, Seed: opt.Seed, Obs: ob})
			if err != nil {
				return fig6Point{}, err
			}
			// A fresh workload with the same seed replays the identical
			// reference stream at every associativity point.
			w, err := NewWorkload(opt.Workload, opt.FootprintBytes, opt.Seed)
			if err != nil {
				return fig6Point{}, err
			}
			p := fig6Point{refs: RunLimited(w, sim, opt.MaxRefs)}
			for _, r := range sim.Results() {
				p.cells = append(p.cells, Figure6Cell{
					Ways:  ways,
					Label: r.Spec.Label(),
					Stats: r.TLB,
				})
			}
			if ob != nil {
				p.metrics = sim.FinalizeMetrics().Snapshot()
				p.series = sim.Sampler().Series()
				p.events = ob.Events.Events()
				p.sampled = true
			}
			return p, nil
		},
		sweep.Options{Workers: opt.Workers, Progress: opt.Progress, Name: "fig6 " + opt.Workload})
	if err != nil {
		return Figure6Result{}, err
	}
	res := Figure6Result{Workload: opt.Workload}
	for _, p := range points {
		if res.Refs == 0 {
			res.Refs = p.refs
		} else if res.Refs != p.refs {
			return Figure6Result{}, fmt.Errorf("mosaic: reference streams diverged across associativities (%d vs %d)", res.Refs, p.refs)
		}
		res.Cells = append(res.Cells, p.cells...)
		if p.sampled {
			res.Series = p.series
			res.Events = p.events
			res.Metrics = p.metrics
		}
	}
	return res, nil
}
