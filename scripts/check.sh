#!/bin/sh
# check.sh — the repository's full verification gate: build, vet, the
# repo-specific mosaiclint analyzers, the test suite under the race
# detector, and a short fuzz smoke of the iceberg table. CI and pre-commit
# hooks should run exactly this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The whole-module run includes the three compiler gates (hotalloc escape
# budget, bcegate bounds checks, inlinegate pinned hot functions) on top
# of the per-package analyzers.
go run ./cmd/mosaiclint ./...
# Baseline sync: regenerating every gate baseline from the current tree
# must be a no-op. A diff here means someone changed hot-path code and
# banked neither the improvement nor the regression — the working tree is
# left holding the regenerated files so the diff shows exactly what moved.
go run ./cmd/mosaiclint -update-escapes -update-bce -update-inline
git diff --exit-code -- internal/lint/escapes.baseline \
	internal/lint/bce.baseline internal/lint/inline.baseline
# The machine-readable modes must stay encodable end to end (the golden
# tests pin the bytes; this pins the exit path on the real tree).
go run ./cmd/mosaiclint -sarif ./... >/dev/null
go run ./cmd/mosaiclint -json ./... >/dev/null
# Call-graph determinism gate: the -callgraph export over the real module
# must be byte-identical run over run and at every worker count — the
# fixpoint summaries are computed rank-parallel, so a diff here means
# scheduling order leaked into SCC numbering, ranks, or edge order.
cg="$(mktemp -d)"
go run ./cmd/mosaiclint -callgraph json ./... >"$cg/a.json"
go run ./cmd/mosaiclint -callgraph json ./... >"$cg/b.json"
go run ./cmd/mosaiclint -callgraph json -workers 1 ./... >"$cg/w1.json"
go run ./cmd/mosaiclint -callgraph json -workers 8 ./... >"$cg/w8.json"
cmp "$cg/a.json" "$cg/b.json"
cmp "$cg/w1.json" "$cg/w8.json"
cmp "$cg/a.json" "$cg/w1.json"
rm -rf "$cg"
# -diff mode must load cleanly with the whole-program analyzers attached:
# a package-scoped run still builds a (partial) call graph, so dettaint,
# batchparity, and goleak run at whatever depth the diff scope gives them.
go run ./cmd/mosaiclint -diff HEAD
# The sweep engine and the progress line are the only concurrency in the
# repo; hammer them under the race detector first so an engine race fails
# fast, then run the whole suite. Race runs get explicit timeouts: a
# deadlocked worker pool should fail the gate in minutes, not hang CI
# until the default 10-minute per-package limit compounds across packages.
go test -race -timeout 120s ./internal/sweep/... ./internal/obs/...
go test -race -timeout 300s ./...
go test -run='^$' -fuzz=Fuzz -fuzztime=3s ./internal/iceberg
go test -run='^$' -fuzz=FuzzBatchEncodeDecode -fuzztime=3s ./internal/trace
# Scalar ≡ batch equivalence gate: the batched replay engine must produce a
# byte-identical results file (counters, series, event ref-indices) to the
# scalar Access path, for a fig6-style replay and a multiprogram
# quantum-sliced replay.
go test -run 'TestBatchReplayMatchesScalar' -count=1 .
# Generator batch ≡ scalar gate: batch-native generation (RunBatches into
# the simulator's ProcessBatch) must yield byte-identical results files to
# the scalar Run leg for every workload, plus one fig6 cell (sampled and
# unsampled) and one table3 cell.
go test -run 'TestGeneratorBatchMatchesScalarAllWorkloads|TestFigure6CellGeneratorBatchMatchesScalar|TestTable3CellGeneratorBatchMatchesScalar' -count=1 .

# Smoke-test the machine-readable results path: a tiny fig6 run must
# produce JSON that parses and carries the current schema version
# (results.Read rejects anything else), and mosaicstat must render it.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/fig6 -workload gups -footprint 8 -maxrefs 200000 \
	-sample 50000 -o "$tmp/fig6-smoke.json" >/dev/null
go run ./cmd/mosaicstat show "$tmp/fig6-smoke.json" >/dev/null
go run ./cmd/mosaicstat diff "$tmp/fig6-smoke.json" "$tmp/fig6-smoke.json" >/dev/null

# Smoke-test the live-telemetry path end to end: start mosaicd on an
# ephemeral port, stream one tracegen session into it, scrape the merged
# Prometheus view, render two watch rows, then drain with SIGTERM and
# check the final results artifact parses.
go build -o "$tmp/mosaicd" ./cmd/mosaicd
go build -o "$tmp/tracegen" ./cmd/tracegen
go build -o "$tmp/mosaicstat" ./cmd/mosaicstat
"$tmp/mosaicd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -sample 10000 \
	-final "$tmp/mosaicd-final.json" >"$tmp/mosaicd.log" 2>&1 &
mosaicd_pid=$!
trap 'kill "$mosaicd_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 50); do
	[ -s "$tmp/addr" ] && break
	sleep 0.1
done
addr="$(cat "$tmp/addr")"
"$tmp/tracegen" -workload gups -footprint 8 -maxrefs 200000 \
	-post "http://$addr" >/dev/null
curl -sf "http://$addr/metrics" | grep -q '^mosaicd_sessions_completed 1$'
curl -sf "http://$addr/metrics" | grep -q '^vm_access 200000$'
curl -sf "http://$addr/sessions/1/results.json" >/dev/null
"$tmp/mosaicstat" watch -interval 0.2s -count 2 "http://$addr" >/dev/null
kill -TERM "$mosaicd_pid"
wait "$mosaicd_pid"
"$tmp/mosaicstat" show "$tmp/mosaicd-final.json" >/dev/null
