#!/bin/sh
# check.sh — the repository's full verification gate: build, vet, the
# repo-specific mosaiclint analyzers, the test suite under the race
# detector, and a short fuzz smoke of the iceberg table. CI and pre-commit
# hooks should run exactly this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/mosaiclint ./...
go test -race ./...
go test -run='^$' -fuzz=Fuzz -fuzztime=3s ./internal/iceberg
