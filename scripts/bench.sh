#!/bin/sh
# bench.sh — benchmark the instrumented hot paths and record the numbers
# as schema-versioned JSON so regressions diff mechanically:
#
#   scripts/bench.sh                 # writes BENCH_obs.json at the repo root
#   BENCHTIME=2s scripts/bench.sh    # longer, steadier runs
#
# The suite covers the per-reference simulator path with observability
# off and on (internal/memsim BenchmarkAccess*), the sampler tick itself
# (internal/obs BenchmarkSampler*), and the publication layer — snapshot
# cost per window (BenchmarkPublisherSnapshot) and Prometheus encode cost
# per scrape (BenchmarkPromEncode). Compare two runs with
# `go run ./cmd/mosaicstat bench BENCH_obs.json`.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_obs.json}"

go test -run '^$' -bench 'BenchmarkAccess|BenchmarkSampler|BenchmarkPublisherSnapshot|BenchmarkPromEncode' \
	-benchmem -benchtime "${BENCHTIME:-1s}" ./internal/memsim ./internal/obs |
	tee /dev/stderr |
	go run ./cmd/mosaicstat bench -parse -o "$out"

# Sweep-engine wall clock: the same fig6 sweep at workers=1 vs workers=4
# (bit-identical results; the ns/op ratio is the parallel speedup — ≥2×
# expected on a 4-core machine), plus Figure6Batch, the end-to-end
# batch-native pipeline pin (generator RunBatches straight into the
# simulator's ProcessBatch), the replay-harness trio: the scalar RunLimited
# pair (preallocated sink vs the old per-call closure), the batched RunBatch
# path, and the v2 trace frame decoder, and the GenerateGUPS pair — raw
# generator throughput (Mrefs/s) on the batch and scalar legs. mosaicstat
# bench prints the batch-vs-scalar and generation-vs-replay ratios from
# this file.
go test -run '^$' -bench 'BenchmarkFigure6(Sequential|Parallel|Batch)|BenchmarkRunLimited|BenchmarkRunBatch|BenchmarkBatchDecode|BenchmarkGenerateGUPS' \
	-benchmem -benchtime "${BENCHTIME:-1s}" . |
	tee /dev/stderr |
	go run ./cmd/mosaicstat bench -parse -o BENCH_parallel.json

# Lint cost: a full mosaiclint load-and-analyze pass over the module, the
# whole-program call-graph build + fixpoint-summary phase in isolation, and
# the warm-cache wall clock of the three compiler gates. Recorded so new
# analyzers and gates pay for their wall clock visibly — diff with
# `go run ./cmd/mosaicstat bench BENCH_lint.json`.
go test -run '^$' -bench 'BenchmarkMosaiclintTree|BenchmarkCallGraphBuild|BenchmarkCompilerGates' -benchmem \
	-benchtime "${BENCHTIME:-1s}" ./internal/lint |
	tee /dev/stderr |
	go run ./cmd/mosaicstat bench -parse -o BENCH_lint.json
