package mosaic

import (
	"testing"

	"mosaic/internal/trace"
)

func TestRunLimited(t *testing.T) {
	w, err := NewWorkload("gups", 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	var c trace.Counter
	if got := RunLimited(w, &c, 1000); got != 1000 {
		t.Fatalf("RunLimited returned %d", got)
	}
	if c.Total() != 1000 {
		t.Fatalf("sink saw %d refs", c.Total())
	}
	// Unlimited run reports the workload's own total.
	var c2 trace.Counter
	n := RunLimited(w, &c2, 0)
	if n == 0 || n != c2.Total() {
		t.Fatalf("unlimited run: n=%d sink=%d", n, c2.Total())
	}
}

func TestRunLimitedPropagatesPanics(t *testing.T) {
	w, _ := NewWorkload("gups", 1<<20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	RunLimited(w, SinkFunc(func(uint64, bool) { panic("boom") }), 100)
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if _, err := NewWorkload(n, 1<<20, 1); err != nil {
			t.Errorf("NewWorkload(%q): %v", n, err)
		}
	}
	if _, err := NewWorkload("bogus", 1<<20, 1); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(Figure6Options{
		Workload:       "gups",
		FootprintBytes: 8 << 20,
		MaxRefs:        400_000,
		TLBEntries:     256,
		Ways:           []int{1, 8, 256},
		Arities:        []int{4, 16},
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 400_000 {
		t.Fatalf("refs = %d", res.Refs)
	}
	if len(res.Cells) != 3*3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Every cell saw the identical stream.
	for _, c := range res.Cells {
		if c.Stats.Lookups() != res.Refs {
			t.Fatalf("%s@%d-way saw %d lookups", c.Label, c.Ways, c.Stats.Lookups())
		}
	}
	vDirect, _ := res.MissesFor(1, "Vanilla")
	vFull, _ := res.MissesFor(256, "Vanilla")
	m4Full, _ := res.MissesFor(256, "Mosaic-4")
	m16Full, _ := res.MissesFor(256, "Mosaic-16")
	// On a uniform random stream, associativity barely matters; full
	// associativity must not be meaningfully worse than direct-mapped.
	if vFull > vDirect+vDirect/50 {
		t.Errorf("vanilla full-assoc misses %d ≫ direct %d", vFull, vDirect)
	}
	if m4Full >= vFull {
		t.Errorf("Mosaic-4 misses %d ≥ vanilla %d at full associativity", m4Full, vFull)
	}
	if m16Full > m4Full {
		t.Errorf("Mosaic-16 misses %d > Mosaic-4 %d", m16Full, m4Full)
	}
	// Mosaic's associativity insensitivity (§4.1): direct-mapped mosaic
	// within 2× of fully-associative mosaic.
	m4Direct, _ := res.MissesFor(1, "Mosaic-4")
	if m4Direct > 2*m4Full {
		t.Errorf("Mosaic-4 direct %d ≫ full %d: associativity sensitivity too high", m4Direct, m4Full)
	}
	if _, ok := res.MissesFor(2, "Vanilla"); ok {
		t.Error("MissesFor found a ways value that was not simulated")
	}
}

func TestFigure6Sampling(t *testing.T) {
	opts := Figure6Options{
		Workload:       "gups",
		FootprintBytes: 8 << 20,
		MaxRefs:        200_000,
		TLBEntries:     256,
		Ways:           []int{1, 256},
		Arities:        []int{4},
		Seed:           7,
		SampleEvery:    50_000,
	}
	res, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("SampleEvery > 0 produced no series")
	}
	names := map[string]int{}
	for _, s := range res.Series {
		names[s.Name] = len(s.Values)
	}
	for _, want := range []string{"tlb.vanilla.hit_rate", "tlb.mosaic_4.hit_rate", "vm.utilization"} {
		if pts := names[want]; pts != 4 {
			t.Errorf("series %q has %d points, want 4 (series: %v)", want, pts, names)
		}
	}
	// Sampling must not perturb the sweep: the unsampled run produces
	// bit-identical miss counts.
	opts.SampleEvery = 0
	plain, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Series != nil {
		t.Error("unsampled run still carries series")
	}
	for i, c := range plain.Cells {
		if res.Cells[i] != c {
			t.Errorf("cell %d diverged with sampling: %+v vs %+v", i, res.Cells[i], c)
		}
	}
}

func TestFigure6DirectMappedMosaicBeatsFullVanilla(t *testing.T) {
	// §4.1: "a direct-mapped Mosaic-8 TLB outperforms a fully associative
	// vanilla TLB" on the TLB-bound workloads.
	res, err := Figure6(Figure6Options{
		Workload:       "btree",
		FootprintBytes: 8 << 20,
		MaxRefs:        1_500_000,
		TLBEntries:     128,
		Ways:           []int{1, 128},
		Arities:        []int{8},
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m8Direct, _ := res.MissesFor(1, "Mosaic-8")
	vFull, _ := res.MissesFor(128, "Vanilla")
	if m8Direct >= vFull {
		t.Errorf("direct-mapped Mosaic-8 (%d) did not beat fully-associative vanilla (%d)", m8Direct, vFull)
	}
}

func TestFigure6NeedsWorkload(t *testing.T) {
	if _, err := Figure6(Figure6Options{}); err == nil {
		t.Error("empty options accepted")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(Table3Options{
		Workloads:      []string{"btree"},
		MemoryMiB:      8,
		FootprintFracs: []float64{1.05, 1.20},
		Runs:           2,
		MaxRefs:        6_000_000,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FirstConflict < 0.95 || r.FirstConflict > 1.0 {
			t.Errorf("%s@%.0fMiB: first conflict %.4f outside [0.95, 1]", r.Workload, r.FootprintMiB, r.FirstConflict)
		}
		if r.Steady < r.FirstConflict-0.02 {
			t.Errorf("%s@%.0fMiB: steady state %.4f below first conflict %.4f", r.Workload, r.FootprintMiB, r.Steady, r.FirstConflict)
		}
		if r.Steady > 1.0 {
			t.Errorf("steady state %.4f above 1", r.Steady)
		}
	}
	// Steady-state utilization grows with footprint (paper: 99.22% → 99.99%).
	if rows[1].Steady < rows[0].Steady-0.005 {
		t.Errorf("steady state fell with footprint: %.4f → %.4f", rows[0].Steady, rows[1].Steady)
	}
}

func TestLinuxSwapOnset(t *testing.T) {
	onset, err := LinuxSwapOnset(8, "gups", 1)
	if err != nil {
		t.Fatal(err)
	}
	if onset < 0.98 || onset > 1.0 {
		t.Errorf("Linux swap onset %.4f, want ≈0.992", onset)
	}
	t.Logf("Linux swap onset at %.4f utilization (paper: ≈0.992)", onset)
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(Table4Options{
		Workloads:      []string{"btree"},
		MemoryMiB:      8,
		FootprintFracs: []float64{1.10, 1.40},
		MaxRefs:        6_000_000,
		Runs:           1,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LinuxKPages == 0 || r.MosaicKPages == 0 {
			t.Errorf("no swapping at footprint %.1f MiB: %+v", r.FootprintMiB, r)
		}
	}
	// Past the edge, mosaic matches or beats Linux (§4.3).
	if rows[0].DiffPercent < -20 {
		t.Errorf("mosaic swaps %.1f%% more than Linux well past the edge", -rows[0].DiffPercent)
	}
	// Swapping grows with footprint.
	if rows[1].LinuxKPages <= rows[0].LinuxKPages {
		t.Errorf("Linux swapping did not grow with footprint: %v → %v", rows[0].LinuxKPages, rows[1].LinuxKPages)
	}
}

func TestTable5Facade(t *testing.T) {
	rows := Table5()
	if len(rows) != 4 || rows[3].LUTs != 6208 {
		t.Fatalf("Table5 = %+v", rows)
	}
	asic := Table5ASIC()
	if len(asic) != 4 {
		t.Fatalf("Table5ASIC rows = %d", len(asic))
	}
	if asic[3].AreaKGE < 13.7 || asic[3].AreaKGE > 13.9 {
		t.Errorf("H=8 area = %.3f KGE, want ≈13.806", asic[3].AreaKGE)
	}
}

func TestIcebergDelta(t *testing.T) {
	res, err := IcebergDelta(IcebergDeltaOptions{Slots: 1 << 13, Trials: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean < 0.95 || res.Mean > 0.999 {
		t.Errorf("δ measurement: mean first-conflict load %.4f", res.Mean)
	}
	if res.Min > res.Mean || res.Max < res.Mean {
		t.Errorf("min/mean/max inconsistent: %+v", res)
	}
	t.Logf("1−δ = %.4f ± %.4f (paper: ≈0.9803)", res.Mean, res.SD)
}

func TestAblateChoices(t *testing.T) {
	rows, err := AblateChoices([]int{1, 6}, 1<<13, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Associativity != 64 || rows[1].Associativity != 104 {
		t.Errorf("associativities = %d, %d", rows[0].Associativity, rows[1].Associativity)
	}
	// More backyard choices must reach higher utilization before
	// conflicting.
	if rows[1].FirstConflict <= rows[0].FirstConflict {
		t.Errorf("d=6 (%.4f) not better than d=1 (%.4f)", rows[1].FirstConflict, rows[0].FirstConflict)
	}
}

func TestAblateSplit(t *testing.T) {
	rows, err := AblateSplit(nil, 1<<13, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FirstConflict < 0.80 || r.FirstConflict > 1.0 {
			t.Errorf("%s: first conflict %.4f implausible", r.Label, r.FirstConflict)
		}
	}
}

func TestAblateHash(t *testing.T) {
	rows, err := AblateHash(1<<13, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblateRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Real hashes approach 98%; the weak hash conflicts earlier.
	for _, good := range []string{"xxhash", "tabulation"} {
		if byLabel[good].FirstConflict < 0.95 {
			t.Errorf("%s first conflict %.4f < 0.95", good, byLabel[good].FirstConflict)
		}
	}
	if byLabel["weak-clustering"].FirstConflict >= byLabel["xxhash"].FirstConflict {
		t.Errorf("weak hash (%.4f) not worse than xxhash (%.4f)",
			byLabel["weak-clustering"].FirstConflict, byLabel["xxhash"].FirstConflict)
	}
	t.Logf("hash ablation: xxhash=%.4f tabulation=%.4f weak=%.4f",
		byLabel["xxhash"].FirstConflict, byLabel["tabulation"].FirstConflict,
		byLabel["weak-clustering"].FirstConflict)
}

func TestAblateEviction(t *testing.T) {
	rows, err := AblateEviction("btree", 8, []float64{1.15}, 4_000_000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.HorizonKIO == 0 || r.NaiveKIO == 0 || r.LinuxKIO == 0 {
		t.Fatalf("missing swapping in some regime: %+v", r)
	}
	// The ghost mechanism must not be worse than naive candidate-LRU.
	if r.HorizonKIO > r.NaiveKIO*1.05 {
		t.Errorf("Horizon LRU (%.1fK) worse than naive (%.1fK)", r.HorizonKIO, r.NaiveKIO)
	}
	t.Logf("eviction ablation @1.15×: horizon=%.1fK naive=%.1fK linux=%.1fK (horizon vs naive: %+.1f%%)",
		r.HorizonKIO, r.NaiveKIO, r.LinuxKIO, r.HorizonVsNaive)
}

func TestSharedMemoryFacade(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Frames: 1024, Mode: ModeMosaic, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.CreateSharedRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.MapShared(1, 0x100, region); err != nil {
		t.Fatal(err)
	}
	if err := sys.MapShared(2, 0x200, region); err != nil {
		t.Fatal(err)
	}
	sys.Touch(1, 0x101, true)
	p1, _ := sys.Translate(1, 0x101)
	p2, ok := sys.Translate(2, 0x201)
	if !ok || p1 != p2 {
		t.Fatalf("shared translation mismatch: %d vs %d", p1, p2)
	}
}

func TestAblateTimestamps(t *testing.T) {
	rows, err := AblateTimestamps("btree", 8, 1.15, []uint64{0, 2048}, 3_000_000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "exact" || rows[1].Label != "scan@2048" {
		t.Fatalf("labels = %q, %q", rows[0].Label, rows[1].Label)
	}
	for _, r := range rows {
		if r.MosaicKIO == 0 {
			t.Errorf("%s: no swapping", r.Label)
		}
	}
	// Emulated timestamps must stay within a sane band of exact ones (the
	// prototype worked, per the paper; a catastrophic gap would mean the
	// emulation is broken).
	ratio := rows[1].MosaicKIO / rows[0].MosaicKIO
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("scan emulation IO %.2f× exact — implausible", ratio)
	}
	t.Logf("exact=%.2fK scan=%.2fK (ratio %.3f)", rows[0].MosaicKIO, rows[1].MosaicKIO, ratio)
}

func TestFigure6WithCoalescedBaseline(t *testing.T) {
	res, err := Figure6(Figure6Options{
		Workload:       "gups",
		FootprintBytes: 4 << 20,
		MaxRefs:        200_000,
		TLBEntries:     128,
		Ways:           []int{8},
		Arities:        []int{4},
		Coalesce:       []int{4},
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	colt, ok := res.MissesFor(8, "CoLT-4")
	if !ok {
		t.Fatal("CoLT-4 cell missing")
	}
	m4, _ := res.MissesFor(8, "Mosaic-4")
	if m4 >= colt {
		t.Errorf("Mosaic-4 (%d) not below CoLT-4 (%d) under hashed placement", m4, colt)
	}
}
