package mosaic

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"mosaic/internal/obs"
	"mosaic/internal/sweep"
	"mosaic/internal/trace"
)

// The multiprogramming experiment (an extension beyond the paper's
// single-process evaluation): several processes time-share one TLB. Each
// process's reference stream is captured once, then the streams are
// replayed in round-robin quanta through the simulator under two regimes —
// ASID-tagged entries (PCID-style, entries survive switches) and full TLB
// flushes on every switch. Because mosaic entries each carry more reach,
// fewer entries per process survive competition and refills after flushes
// are cheaper, so compression pays twice under multiprogramming.

// MultiprogramOptions parameterizes the experiment.
type MultiprogramOptions struct {
	// Workloads are the co-scheduled processes (≥ 2). Defaults to
	// graph500 + kvstore (a batch job against a latency service).
	Workloads []string
	// FootprintBytes sizes each workload (default 16 MiB each).
	FootprintBytes uint64
	// QuantumRefs is the context-switch quantum in references
	// (default 50,000).
	QuantumRefs uint64
	// MaxRefsPerProc caps each captured stream (default 3,000,000).
	MaxRefsPerProc uint64
	// TLBEntries and Ways fix the shared TLB (default 256, 8-way).
	TLBEntries int
	Ways       int
	// Arities are the mosaic design points (default 4, 16).
	Arities []int
	// FlushOnSwitch disables ASID tagging: every context switch flushes
	// the TLBs.
	FlushOnSwitch bool
	// Seed drives the workloads.
	Seed uint64
	// Workers bounds the capture and solo-baseline fan-outs (0 = GOMAXPROCS,
	// 1 = the exact sequential path). The shared round-robin run is a single
	// simulation and always runs sequentially.
	Workers int
	// Progress, when non-nil, receives a live status line per stage.
	Progress *obs.Progress
}

func (o *MultiprogramOptions) applyDefaults() error {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"graph500", "kvstore"}
	}
	if len(o.Workloads) < 2 {
		return fmt.Errorf("mosaic: multiprogramming needs ≥ 2 workloads")
	}
	if o.FootprintBytes == 0 {
		o.FootprintBytes = 16 << 20
	}
	if o.QuantumRefs == 0 {
		o.QuantumRefs = 50_000
	}
	if o.MaxRefsPerProc == 0 {
		o.MaxRefsPerProc = 3_000_000
	}
	if o.TLBEntries == 0 {
		o.TLBEntries = 256
	}
	if o.Ways == 0 {
		o.Ways = 8
	}
	if len(o.Arities) == 0 {
		o.Arities = []int{4, 16}
	}
	return nil
}

// MultiprogramResult is the outcome per TLB design.
type MultiprogramResult struct {
	// Label is "Vanilla" or "Mosaic-<arity>".
	Label string
	// SharedMisses is the miss count with all processes time-sharing the
	// TLB.
	SharedMisses uint64
	// SoloMisses is the summed miss count of each process running alone
	// on an identical TLB (same total references).
	SoloMisses uint64
	// InterferencePct is the extra misses multiprogramming causes:
	// 100 × (shared − solo) / solo.
	InterferencePct float64
}

// Multiprogram runs the experiment and reports, per design, how much TLB
// interference time-sharing adds over solo execution.
func Multiprogram(opt MultiprogramOptions) ([]MultiprogramResult, uint64, error) {
	if err := opt.applyDefaults(); err != nil {
		return nil, 0, err
	}
	specs := []TLBSpec{{Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: opt.Ways}}}
	for _, a := range opt.Arities {
		specs = append(specs, TLBSpec{
			Geometry: TLBGeometry{Entries: opt.TLBEntries, Ways: opt.Ways},
			Arity:    a,
		})
	}

	// Capture each process's stream once, in the delta-encoded v2 binary
	// format (whole batches go from workload to encoder without a
	// per-record interface call). Captures are independent — workload i
	// derives everything from Seed+i*977 — so they fan out across
	// Options.Workers goroutines.
	type capture struct {
		stream []byte
		refs   uint64
	}
	captures, err := sweep.Run(context.Background(), opt.Workloads,
		func(_ context.Context, i int, name string) (capture, error) {
			w, err := NewWorkload(name, opt.FootprintBytes, opt.Seed+uint64(i)*977)
			if err != nil {
				return capture{}, err
			}
			var buf bytes.Buffer
			tw, err := trace.NewBatchWriter(&buf)
			if err != nil {
				return capture{}, err
			}
			n := RunBatch(w, tw, opt.MaxRefsPerProc)
			if err := tw.Flush(); err != nil {
				return capture{}, err
			}
			return capture{stream: buf.Bytes(), refs: n}, nil
		},
		sweep.Options{Workers: opt.Workers, Progress: opt.Progress, Name: "multiprog capture"})
	if err != nil {
		return nil, 0, err
	}
	streams := make([][]byte, len(captures))
	refs := make([]uint64, len(captures))
	for i, c := range captures {
		streams[i] = c.stream
		refs[i] = c.refs
	}

	// Solo baselines: each process alone on a fresh simulator. Each replay
	// is its own simulation; the per-label sums fold back in stream order.
	soloRuns, err := sweep.Run(context.Background(), streams,
		func(_ context.Context, i int, stream []byte) (map[string]uint64, error) {
			sim, err := NewSimulator(SimConfig{Frames: framesFor(opt), Specs: specs, Seed: opt.Seed})
			if err != nil {
				return nil, err
			}
			if err := replayStream(stream, sim, ASID(i+1)); err != nil {
				return nil, err
			}
			misses := make(map[string]uint64, len(specs))
			for _, r := range sim.Results() {
				misses[r.Spec.Label()] = r.TLB.Misses
			}
			return misses, nil
		},
		sweep.Options{Workers: opt.Workers, Progress: opt.Progress, Name: "multiprog solo"})
	if err != nil {
		return nil, 0, err
	}
	solo := make(map[string]uint64)
	for _, m := range soloRuns {
		for label, misses := range m {
			solo[label] += misses
		}
	}

	// Shared run: round-robin quanta over all streams on one simulator.
	sim, err := NewSimulator(SimConfig{Frames: framesFor(opt), Specs: specs, Seed: opt.Seed})
	if err != nil {
		return nil, 0, err
	}
	readers := make([]*quantumStream, len(streams))
	for i, b := range streams {
		r, err := trace.NewBatchReader(bytes.NewReader(b))
		if err != nil {
			return nil, 0, err
		}
		readers[i] = &quantumStream{r: r, buf: make(trace.Batch, 0, trace.DefaultBatchSize)}
	}
	opt.Progress.Stepf("multiprog: shared run (%d streams, %d-ref quanta)", len(readers), opt.QuantumRefs)
	live := len(readers)
	for live > 0 {
		live = 0
		for i, r := range readers {
			if r == nil {
				continue
			}
			if opt.FlushOnSwitch {
				sim.FlushTLBs()
			}
			done, err := r.replayQuantum(sim, ASID(i+1), opt.QuantumRefs)
			if err != nil {
				return nil, 0, err
			}
			if done {
				readers[i] = nil
				continue
			}
			live++
		}
	}

	var out []MultiprogramResult
	for _, r := range sim.Results() {
		label := r.Spec.Label()
		res := MultiprogramResult{
			Label:        label,
			SharedMisses: r.TLB.Misses,
			SoloMisses:   solo[label],
		}
		if res.SoloMisses > 0 {
			res.InterferencePct = 100 * (float64(res.SharedMisses) - float64(res.SoloMisses)) / float64(res.SoloMisses)
		}
		out = append(out, res)
	}
	total := uint64(0)
	for _, n := range refs {
		total += n
	}
	return out, total, nil
}

func framesFor(opt MultiprogramOptions) int {
	// All processes resident simultaneously with headroom.
	return int(4 * opt.FootprintBytes / PageSize * uint64(len(opt.Workloads)))
}

// asidBatchSink routes whole batches into the simulator under one address
// space. The simulator sees the identical reference stream AccessFrom would
// deliver, one ProcessBatchFrom call per decoded frame instead of one
// interface call per record.
type asidBatchSink struct {
	sim  *Simulator
	asid ASID
}

func (s asidBatchSink) ProcessBatch(b trace.Batch) { s.sim.ProcessBatchFrom(s.asid, b) }

// replayStream replays a whole captured stream into the simulator,
// sniffing the trace format (solo baselines replay the v2 captures; the
// helper also accepts v1 streams).
func replayStream(data []byte, sim *Simulator, asid ASID) error {
	src, err := trace.Open(bytes.NewReader(data))
	if err != nil {
		return err
	}
	_, err = src.ReplayBatches(asidBatchSink{sim, asid})
	return err
}

// quantumStream slices a v2 capture into scheduling quanta: decoded frames
// are carried across quantum boundaries and delivered in sub-batches, so a
// 50k-ref quantum costs ~12 ProcessBatchFrom calls rather than 50k
// AccessFrom calls while preserving the exact per-record cutover points of
// the scalar replay.
type quantumStream struct {
	r   *trace.BatchReader
	buf trace.Batch // decoded frame being drained
	off int         // records of buf already delivered
}

// replayQuantum feeds up to n records into the simulator under asid,
// reporting whether the stream ended.
func (s *quantumStream) replayQuantum(sim *Simulator, asid ASID, n uint64) (done bool, err error) {
	for n > 0 {
		if s.off == len(s.buf) {
			b, err := s.r.ReadBatch(s.buf)
			if errors.Is(err, io.EOF) {
				return true, nil
			}
			if err != nil {
				return false, err
			}
			s.buf, s.off = b, 0
		}
		k := len(s.buf) - s.off
		if uint64(k) > n {
			k = int(n)
		}
		sim.ProcessBatchFrom(asid, s.buf[s.off:s.off+k])
		s.off += k
		n -= uint64(k)
	}
	return false, nil
}
