package mosaic

import (
	"context"
	"fmt"
	"math/rand"

	"mosaic/internal/alloc"
	"mosaic/internal/buddy"
	"mosaic/internal/core"
	"mosaic/internal/obs"
	"mosaic/internal/sweep"
	"mosaic/internal/xxhash"
)

// The fragmentation experiment makes the paper's motivation executable
// (§1): huge pages and other contiguity-based reach techniques degrade as
// physical memory fragments — the paper cites a Redis workload whose 29%
// huge-page gain turns into an 11% loss at 50% fragmentation — while
// mosaic needs no contiguity at all.
//
// Fragmentation severity is modeled by the granularity at which the
// previous tenants' memory was freed: a fresh machine frees whole 2 MiB
// chunks (order 9), a long-running one frees scattered 4 KiB pages
// (order 0). At each severity we free the same fraction of memory and ask
// both allocators to back a new region of that size.

// FragmentationOptions parameterizes the experiment.
type FragmentationOptions struct {
	// Frames is the physical memory size (default 1<<14 frames = 64 MiB).
	Frames int
	// FreeFrac is the fraction of memory freed before the new region
	// faults in (default 0.5 — the paper's "50% fragmented" point).
	FreeFrac float64
	// ChunkOrders are the severities: memory was freed in aligned chunks
	// of 2^order frames (default 9, 6, 4, 2, 0; 9 = unfragmented).
	ChunkOrders []int
	// Seed drives the fragmentation pattern.
	Seed uint64
	// Workers bounds the severity fan-out (0 = GOMAXPROCS, 1 = the exact
	// sequential path); each severity derives its RNG from Seed and its
	// index, so rows are independent.
	Workers int
	// Progress, when non-nil, receives a live status line per severity.
	Progress *obs.Progress
}

// FragmentationRow is one severity level's outcome.
type FragmentationRow struct {
	// ChunkOrder is the contiguity of the freed memory (2^order frames).
	ChunkOrder int
	// UnusableIndex is Linux's fragmentation metric at huge-page order:
	// the fraction of free memory unusable for 2 MiB allocations.
	UnusableIndex float64
	// HugeBackedPct is the share of the new region 2 MiB pages can back.
	HugeBackedPct float64
	// CompactionCopies is the page migrations needed to back the region
	// fully with huge pages (-1 if compaction cannot succeed).
	CompactionCopies int
	// MosaicBackedPct is the share of the same region the mosaic allocator
	// places in an equally occupied memory (conflicts excluded).
	MosaicBackedPct float64
	// MosaicCopies is the page migrations mosaic needs — always zero; the
	// column exists to make the comparison explicit.
	MosaicCopies int
	// HugeTLBEntries is the number of TLB entries needed to map the new
	// region with the huge pages obtained plus 4 KiB pages for the rest.
	HugeTLBEntries int
	// MosaicTLBEntries is the number of Mosaic-4 TLB entries for the same
	// region — constant regardless of fragmentation.
	MosaicTLBEntries int
}

// Fragmentation runs the experiment: at each severity it fragments a
// buddy-managed memory, tries to back a new region with huge pages
// (counting the compaction bill for full backing), and runs the mosaic
// allocator at identical occupancy for comparison.
func Fragmentation(opt FragmentationOptions) ([]FragmentationRow, error) {
	if opt.Frames == 0 {
		opt.Frames = 1 << 14
	}
	if opt.Frames < 1<<buddy.MaxOrder {
		return nil, fmt.Errorf("mosaic: fragmentation experiment needs ≥ %d frames", 1<<buddy.MaxOrder)
	}
	if opt.FreeFrac == 0 {
		opt.FreeFrac = 0.5
	}
	if opt.FreeFrac <= 0 || opt.FreeFrac > 1 {
		return nil, fmt.Errorf("mosaic: free fraction %v out of (0,1]", opt.FreeFrac)
	}
	if len(opt.ChunkOrders) == 0 {
		opt.ChunkOrders = []int{9, 6, 4, 2, 0}
	}
	for _, chunk := range opt.ChunkOrders {
		if chunk < 0 || chunk > buddy.MaxOrder {
			return nil, fmt.Errorf("mosaic: chunk order %d out of [0,%d]", chunk, buddy.MaxOrder)
		}
	}
	// Severities are independent — each derives its RNG and placement seed
	// from (Seed, index) alone — so they fan out across Options.Workers
	// goroutines and fold back in submission order.
	return sweep.Run(context.Background(), opt.ChunkOrders,
		func(_ context.Context, i, chunk int) (FragmentationRow, error) {
			rng := rand.New(rand.NewSource(int64(opt.Seed)*31 + int64(i)))
			row := FragmentationRow{ChunkOrder: chunk}

			// --- Contiguity side: fill memory, then free FreeFrac of it in
			// aligned 2^chunk-frame runs at random positions.
			freeRuns := fragmentBuddy(opt.Frames, opt.FreeFrac, chunk, rng)
			bd := rebuildFragmented(opt.Frames, freeRuns, chunk)
			row.UnusableIndex = bd.UnusableIndex(buddy.MaxOrder)

			// Fault a region the size of free memory, preferring huge pages.
			regionPages := bd.FreeFrames()
			hugeWanted := regionPages >> buddy.MaxOrder
			hugeGot := 0
			for h := 0; h < hugeWanted; h++ {
				if _, ok := bd.Alloc(buddy.MaxOrder); !ok {
					break
				}
				hugeGot++
			}
			if hugeWanted > 0 {
				row.HugeBackedPct = 100 * float64(hugeGot<<buddy.MaxOrder) / float64(regionPages)
			}
			row.HugeTLBEntries = hugeGot + (regionPages - hugeGot<<buddy.MaxOrder)
			row.MosaicTLBEntries = (regionPages + 3) / 4 // arity-4 ToCs
			// Price full huge backing on the pre-trial state.
			pre := rebuildFragmented(opt.Frames, freeRuns, chunk)
			copies, feasible := pre.CompactionCost(buddy.MaxOrder, hugeWanted)
			if feasible {
				row.CompactionCopies = copies
			} else {
				row.CompactionCopies = -1
			}

			// --- Mosaic side: same occupancy, no contiguity needed.
			mem := alloc.NewMemory(opt.Frames, core.DefaultGeometry, xxhash.NewPlacement(opt.Seed+uint64(i)))
			occupied := mem.NumFrames() - int(opt.FreeFrac*float64(mem.NumFrames()))
			vpn := core.VPN(0)
			for mem.Used() < occupied {
				if _, err := mem.Place(1, vpn, 1, 0); err != nil {
					return FragmentationRow{}, fmt.Errorf("mosaic: background fill conflicted at %.1f%% utilization", 100*mem.Utilization())
				}
				vpn++
			}
			region := int(opt.FreeFrac * float64(mem.NumFrames()))
			placed := 0
			for p := 0; p < region; p++ {
				if _, err := mem.Place(2, core.VPN(p), 1, 0); err == nil {
					placed++
				}
			}
			row.MosaicBackedPct = 100 * float64(placed) / float64(region)
			row.MosaicCopies = 0
			return row, nil
		},
		sweep.Options{Workers: opt.Workers, Progress: opt.Progress, Name: "fragmentation"})
}

// fragmentBuddy picks which aligned 2^chunk runs end up free when freeFrac
// of memory is released at that granularity.
func fragmentBuddy(frames int, freeFrac float64, chunk int, rng *rand.Rand) []core.PFN {
	runFrames := 1 << chunk
	numRuns := frames / runFrames
	bases := make([]core.PFN, numRuns)
	for r := range bases {
		bases[r] = core.PFN(r * runFrames)
	}
	rng.Shuffle(len(bases), func(a, b int) { bases[a], bases[b] = bases[b], bases[a] })
	wantFree := int(freeFrac * float64(frames))
	var free []core.PFN
	for _, b := range bases {
		if len(free)*runFrames >= wantFree {
			break
		}
		free = append(free, b)
	}
	return free
}

// rebuildFragmented constructs a buddy allocator whose free memory is
// exactly the given runs: fill everything with single pages, then free the
// runs page by page (coalescing restores each run).
func rebuildFragmented(frames int, freeRuns []core.PFN, chunk int) *buddy.Allocator {
	bd := buddy.New(frames)
	for {
		if _, ok := bd.Alloc(0); !ok {
			break
		}
	}
	runFrames := uint64(1) << chunk
	for _, base := range freeRuns {
		for p := uint64(0); p < runFrames; p++ {
			bd.Free(base.Add(p))
		}
	}
	return bd
}
