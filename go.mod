module mosaic

go 1.24
