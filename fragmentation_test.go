package mosaic

import "testing"

func TestFragmentationShape(t *testing.T) {
	rows, err := Fragmentation(FragmentationOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	fresh := rows[0] // chunk order 9: unfragmented
	worst := rows[len(rows)-1]

	// On a fresh machine huge pages back everything for free.
	if fresh.HugeBackedPct != 100 || fresh.CompactionCopies != 0 || fresh.UnusableIndex != 0 {
		t.Errorf("unfragmented row implausible: %+v", fresh)
	}
	// Under page-granularity fragmentation, huge backing collapses and
	// compaction gets expensive (or infeasible).
	if worst.HugeBackedPct > 10 {
		t.Errorf("huge backing survived worst-case fragmentation: %.1f%%", worst.HugeBackedPct)
	}
	if worst.CompactionCopies == 0 {
		t.Error("worst-case compaction reported free")
	}
	// Compaction cost grows with severity (where feasible).
	prev := -1
	for _, r := range rows {
		if r.CompactionCopies < 0 {
			continue
		}
		if r.CompactionCopies < prev {
			t.Errorf("compaction cost not monotone: %+v", rows)
			break
		}
		prev = r.CompactionCopies
	}
	// Mosaic is indifferent to fragmentation: backs ~everything (only
	// associativity conflicts near 100% utilization are excluded) at every
	// severity, with zero copies.
	for _, r := range rows {
		if r.MosaicBackedPct < 95 {
			t.Errorf("chunk %d: mosaic backed only %.1f%%", r.ChunkOrder, r.MosaicBackedPct)
		}
		if r.MosaicCopies != 0 {
			t.Errorf("mosaic reported %d copies", r.MosaicCopies)
		}
	}
	spread := maxPct(rows) - minPct(rows)
	if spread > 3 {
		t.Errorf("mosaic backing varies %.1f points with fragmentation; should be flat", spread)
	}
	// TLB-entry accounting: fragmentation costs the huge-page system up to
	// 512× the entries; mosaic stays constant.
	if fresh.HugeTLBEntries >= fresh.MosaicTLBEntries {
		t.Errorf("fresh machine: huge entries %d not below mosaic %d",
			fresh.HugeTLBEntries, fresh.MosaicTLBEntries)
	}
	if worst.HugeTLBEntries <= worst.MosaicTLBEntries {
		t.Errorf("fragmented machine: huge entries %d not above mosaic %d",
			worst.HugeTLBEntries, worst.MosaicTLBEntries)
	}
	if fresh.MosaicTLBEntries != worst.MosaicTLBEntries {
		t.Error("mosaic entry count varied with fragmentation")
	}
}

func minPct(rows []FragmentationRow) float64 {
	m := rows[0].MosaicBackedPct
	for _, r := range rows {
		if r.MosaicBackedPct < m {
			m = r.MosaicBackedPct
		}
	}
	return m
}

func maxPct(rows []FragmentationRow) float64 {
	m := rows[0].MosaicBackedPct
	for _, r := range rows {
		if r.MosaicBackedPct > m {
			m = r.MosaicBackedPct
		}
	}
	return m
}

func TestFragmentationValidation(t *testing.T) {
	if _, err := Fragmentation(FragmentationOptions{Frames: 10}); err == nil {
		t.Error("tiny memory accepted")
	}
	if _, err := Fragmentation(FragmentationOptions{FreeFrac: 1.5}); err == nil {
		t.Error("free fraction > 1 accepted")
	}
	if _, err := Fragmentation(FragmentationOptions{ChunkOrders: []int{20}}); err == nil {
		t.Error("oversized chunk order accepted")
	}
}

func TestFragmentationDeterministic(t *testing.T) {
	a, err := Fragmentation(FragmentationOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fragmentation(FragmentationOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
