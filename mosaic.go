// Package mosaic is a from-scratch reproduction of "Mosaic Pages: Big TLB
// Reach with Small Pages" (Gosakan, Han, et al., ASPLOS 2023).
//
// Mosaic pages increase TLB reach by compressing translations: hashing
// constrains each virtual page to h = 104 candidate physical frames, so a
// placement fits in a 7-bit compressed physical frame number (CPFN) and a
// single TLB entry holds the CPFNs of several virtually-contiguous pages.
// The constrained allocator is an Iceberg hash table over physical memory
// (stable, utilization ≈ 98% before the first conflict), and eviction under
// memory pressure uses Horizon LRU, which tracks ghost pages to match a
// fully-associative global LRU's behaviour.
//
// This package is the public facade over the subsystems in internal/:
//
//   - NewSystem gives the OS view — address spaces, demand paging, mosaic
//     or Linux-like vanilla memory management, swap accounting.
//   - NewSimulator gives the hardware view — the dual-TLB memory-system
//     simulator with radix page-table walkers and optional caches.
//   - NewWorkload builds the paper's four evaluation workloads.
//   - Figure6, Table3, Table4, Table5, IcebergDelta, and the Ablate*
//     functions regenerate every table and figure of the paper's
//     evaluation; Fragmentation and Multiprogram run the extension
//     experiments (see EXPERIMENTS.md).
//
// All configuration is seeded and deterministic.
package mosaic

import (
	"mosaic/internal/core"
	"mosaic/internal/hw"
	"mosaic/internal/memsim"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
	"mosaic/internal/vm"
	"mosaic/internal/workloads"
)

// Address and geometry types.
type (
	// VPN is a virtual page number.
	VPN = core.VPN
	// PFN is a physical frame number.
	PFN = core.PFN
	// MVPN is a mosaic virtual page number (VPN / arity).
	MVPN = core.MVPN
	// ASID identifies an address space.
	ASID = core.ASID
	// CPFN is a compressed physical frame number.
	CPFN = core.CPFN
	// Geometry is the iceberg bucket geometry (frontyard, backyard, choices).
	Geometry = core.Geometry
)

// PageSize is the base page size (4 KiB).
const PageSize = core.PageSize

// CPFNInvalid marks an unmapped sub-page in a table of contents.
const CPFNInvalid = core.CPFNInvalid

// DefaultGeometry is the paper's prototype configuration: frontyard bins of
// 56 frames, backyard bins of 8, 6 backyard choices — associativity 104,
// 7-bit CPFNs.
var DefaultGeometry = core.DefaultGeometry

// OS-level types (internal/vm).
type (
	// System is the simulated virtual-memory subsystem.
	System = vm.System
	// SystemConfig parameterizes a System.
	SystemConfig = vm.Config
	// SharedRegion is a §2.5 location-ID shared-memory region.
	SharedRegion = vm.SharedRegion
	// AccessResult classifies a Touch: Hit, MinorFault, or MajorFault.
	AccessResult = vm.AccessResult
	// Mode selects mosaic or vanilla memory management.
	Mode = vm.Mode
)

// Memory-management modes and access results, re-exported for callers.
const (
	ModeMosaic  = vm.ModeMosaic
	ModeVanilla = vm.ModeVanilla
	Hit         = vm.Hit
	MinorFault  = vm.MinorFault
	MajorFault  = vm.MajorFault
)

// NewSystem creates a simulated virtual-memory subsystem.
func NewSystem(cfg SystemConfig) (*System, error) { return vm.New(cfg) }

// Hardware-simulation types (internal/memsim, internal/tlb).
type (
	// Simulator is the dual-TLB memory-system simulator (the repo's gem5
	// substitute). It implements Sink, so workloads run straight into it.
	Simulator = memsim.Simulator
	// SimConfig parameterizes a Simulator.
	SimConfig = memsim.Config
	// TLBSpec names one TLB design point (geometry + mosaic arity).
	TLBSpec = memsim.TLBSpec
	// TLBGeometry is a TLB's entry count and associativity.
	TLBGeometry = tlb.Geometry
	// SimResult is the per-design-point outcome of a simulation.
	SimResult = memsim.Result
)

// NewSimulator creates a memory-system simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return memsim.New(cfg) }

// Workload and trace types (internal/workloads, internal/trace).
type (
	// Workload is a runnable benchmark emitting its reference stream.
	Workload = workloads.Workload
	// Sink consumes a reference stream.
	Sink = trace.Sink
	// SinkFunc adapts a function to Sink.
	SinkFunc = trace.SinkFunc
	// Ref is one packed reference (VA<<1 | writeBit).
	Ref = trace.Ref
	// Batch is a run of packed references in stream order.
	Batch = trace.Batch
	// BatchSink consumes whole batches; the Simulator implements it, and
	// RunLimited routes through the batched engine for any sink that does.
	BatchSink = trace.BatchSink
)

// NewWorkload builds one of the paper's four workloads ("graph500",
// "btree", "gups", "xsbench") or the extension KV store ("kvstore"),
// sized near footprintBytes.
func NewWorkload(name string, footprintBytes uint64, seed uint64) (Workload, error) {
	return workloads.ByName(name, footprintBytes, seed)
}

// WorkloadNames lists the paper's workloads in Table 2 order.
func WorkloadNames() []string { return workloads.Names() }

// Hardware-model types (internal/hw).
type (
	// CircuitSpec describes a tabulation-hash circuit instance.
	CircuitSpec = hw.CircuitSpec
	// FPGAReport mirrors Table 5's columns.
	FPGAReport = hw.FPGAReport
	// ASICReport mirrors the paper's 28nm synthesis summary.
	ASICReport = hw.ASICReport
)

// SynthesizeFPGA estimates Artix-7 resources/timing for a hash circuit.
func SynthesizeFPGA(spec CircuitSpec) (FPGAReport, error) { return hw.SynthesizeFPGA(spec) }

// SynthesizeASIC estimates 28nm CMOS area/timing for a hash circuit.
func SynthesizeASIC(spec CircuitSpec) (ASICReport, error) { return hw.SynthesizeASIC(spec) }
