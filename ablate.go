package mosaic

import (
	"context"
	"fmt"

	"mosaic/internal/core"
	"mosaic/internal/stats"
	"mosaic/internal/sweep"
	"mosaic/internal/tabhash"
	"mosaic/internal/xxhash"
)

// The ablations quantify the design choices DESIGN.md calls out: how many
// backyard choices are needed, how the frontyard/backyard split affects δ,
// what the horizon/ghost mechanism buys over naive candidate-LRU eviction,
// and how much hash quality matters.

// AblateRow is one row of a single-parameter ablation sweep.
type AblateRow struct {
	// Label names the swept setting ("d=6", "f=56/b=8", "xxhash", …).
	Label string
	// Associativity is h for the swept geometry.
	Associativity int
	// CPFNBits is the compressed-frame-number width h implies.
	CPFNBits int
	// FirstConflict is the mean utilization at the first conflict.
	FirstConflict float64
	// FirstConflictSD is its standard deviation across trials.
	FirstConflictSD float64
}

// fillToConflict creates a mosaic system and touches distinct pages until
// the first associativity conflict, returning the utilization there.
func fillToConflict(frames int, geom Geometry, hash core.PlacementHash, seed uint64) (float64, error) {
	sys, err := NewSystem(SystemConfig{
		Frames:   frames,
		Mode:     ModeMosaic,
		Geometry: geom,
		Hash:     hash,
		Seed:     seed,
	})
	if err != nil {
		return 0, err
	}
	for vpn := VPN(0); ; vpn++ {
		sys.Touch(1, vpn, true)
		if u, saw := sys.FirstConflictUtilization(); saw {
			return u, nil
		}
		if int(vpn) > 2*frames {
			return 0, fmt.Errorf("mosaic: no conflict after filling 2× memory")
		}
	}
}

// geomCase is one geometry/hash setting of a utilization ablation.
type geomCase struct {
	label string
	geom  Geometry
	hash  func(seed uint64) core.PlacementHash
}

// sweepGeometries measures first-conflict utilization for every case,
// fanning the flattened case × trial grid across workers goroutines (each
// trial is an independent fill from its own seed) and folding trials back
// per case in trial order, so means and stddevs match the sequential loop
// bit for bit.
func sweepGeometries(cases []geomCase, frames, trials int, seed uint64, workers int) ([]AblateRow, error) {
	type cell struct{ c, t int }
	cells := make([]cell, 0, len(cases)*trials)
	for c := range cases {
		for t := 0; t < trials; t++ {
			cells = append(cells, cell{c, t})
		}
	}
	us, err := sweep.Run(context.Background(), cells,
		func(_ context.Context, _ int, p cell) (float64, error) {
			cs := cases[p.c]
			s := seed + uint64(p.t)*6151
			u, err := fillToConflict(frames, cs.geom, cs.hash(s), s)
			if err != nil {
				return 0, fmt.Errorf("%s: %w", cs.label, err)
			}
			return u, nil
		},
		sweep.Options{Workers: workers, Name: "ablate"})
	if err != nil {
		return nil, err
	}
	rows := make([]AblateRow, len(cases))
	for ci, cs := range cases {
		var r stats.Running
		for t := 0; t < trials; t++ {
			r.Observe(us[ci*trials+t])
		}
		rows[ci] = AblateRow{
			Label:           cs.label,
			Associativity:   cs.geom.Associativity(),
			CPFNBits:        cs.geom.CPFNBits(),
			FirstConflict:   r.Mean(),
			FirstConflictSD: r.Stddev(),
		}
	}
	return rows, nil
}

func xxPlacement(seed uint64) core.PlacementHash { return xxhash.NewPlacement(seed) }

// AblateChoices sweeps the number of backyard choices d, holding the
// 56/8 split fixed: how much does the power of d choices buy in
// first-conflict utilization, and what does it cost in CPFN bits?
// workers bounds the trial fan-out (0 = GOMAXPROCS, 1 = sequential).
func AblateChoices(ds []int, frames, trials int, seed uint64, workers int) ([]AblateRow, error) {
	if len(ds) == 0 {
		ds = []int{1, 2, 4, 6, 8}
	}
	if frames == 0 {
		frames = 1 << 15
	}
	if trials == 0 {
		trials = 5
	}
	cases := make([]geomCase, len(ds))
	for i, d := range ds {
		cases[i] = geomCase{
			label: fmt.Sprintf("d=%d", d),
			geom:  Geometry{FrontyardSize: 56, BackyardSize: 8, Choices: d},
			hash:  xxPlacement,
		}
	}
	return sweepGeometries(cases, frames, trials, seed, workers)
}

// AblateSplit sweeps the frontyard/backyard split of the 64-frame bucket
// with d = 6 choices fixed. workers bounds the trial fan-out.
func AblateSplit(splits [][2]int, frames, trials int, seed uint64, workers int) ([]AblateRow, error) {
	if len(splits) == 0 {
		splits = [][2]int{{62, 2}, {60, 4}, {56, 8}, {48, 16}, {32, 32}}
	}
	if frames == 0 {
		frames = 1 << 15
	}
	if trials == 0 {
		trials = 5
	}
	cases := make([]geomCase, len(splits))
	for i, fb := range splits {
		cases[i] = geomCase{
			label: fmt.Sprintf("f=%d/b=%d", fb[0], fb[1]),
			geom:  Geometry{FrontyardSize: fb[0], BackyardSize: fb[1], Choices: 6},
			hash:  xxPlacement,
		}
	}
	return sweepGeometries(cases, frames, trials, seed, workers)
}

// AblateHash compares placement-hash families at the default geometry:
// xxHash (the Linux prototype's), tabulation hashing with probing (the
// hardware design), and a deliberately weak hash, which shows why hash
// quality is load-bearing for the 98% bound. workers bounds the trial
// fan-out.
func AblateHash(frames, trials int, seed uint64, workers int) ([]AblateRow, error) {
	if frames == 0 {
		frames = 1 << 15
	}
	if trials == 0 {
		trials = 5
	}
	cases := []geomCase{
		{"xxhash", DefaultGeometry, xxPlacement},
		{"tabulation", DefaultGeometry, func(seed uint64) core.PlacementHash { return tabhash.NewPlacement(seed) }},
		{"weak-clustering", DefaultGeometry, func(seed uint64) core.PlacementHash {
			return core.PlacementHashFunc(func(asid ASID, vpn VPN, fn int) uint64 {
				// No mixing at all: runs of 256 consecutive VPNs share one
				// frontyard bucket and one set of backyard buckets, so a
				// sequential fill overflows its h candidate slots almost
				// immediately — the failure mode a real hash must prevent.
				return uint64(vpn)>>8 + uint64(fn)*8191 + seed + uint64(asid)
			})
		}},
	}
	return sweepGeometries(cases, frames, trials, seed, workers)
}

// TimestampRow is one row of the timestamp-fidelity ablation: swap I/O of
// mosaic under exact timestamps vs the prototype's scan-daemon emulation.
type TimestampRow struct {
	// Label names the regime ("exact" or "scan@<interval>").
	Label string
	// MosaicKIO is mosaic's swap I/O in thousands of pages.
	MosaicKIO float64
	// VsLinuxPct is the percent reduction vs the Linux baseline at the
	// same footprint (positive = mosaic swaps less).
	VsLinuxPct float64
}

// AblateTimestamps quantifies the fidelity gap between exact access
// timestamps (a real mosaic system, and this repo's default) and the
// paper's Linux-prototype emulation (§3.2: access-bit scans + hot-page
// sampling). Coarser timestamps degrade Horizon LRU's victim choices, so
// the margin over Linux shrinks as the scan interval grows — evidence for
// why the paper argues real hardware should store timestamps. workers
// bounds the fan-out across the Linux baseline and the scan intervals.
func AblateTimestamps(workload string, memoryMiB int, footprintFrac float64, intervals []uint64, maxRefs, seed uint64, workers int) ([]TimestampRow, error) {
	if workload == "" {
		workload = "graph500"
	}
	if memoryMiB == 0 {
		memoryMiB = 16
	}
	if footprintFrac == 0 {
		footprintFrac = 1.20
	}
	if len(intervals) == 0 {
		intervals = []uint64{0, 1024, 16384, 262144}
	}
	if maxRefs == 0 {
		maxRefs = 15_000_000
	}
	frames := memoryMiB << 20 / PageSize
	footprint := uint64(footprintFrac * float64(memoryMiB) * (1 << 20))

	// Point 0 is the Linux baseline; points 1..n are the scan intervals.
	// Every point is an independent simulation from the same seed.
	type tsPoint struct {
		baseline bool
		interval uint64
	}
	points := make([]tsPoint, 0, len(intervals)+1)
	points = append(points, tsPoint{baseline: true})
	for _, iv := range intervals {
		points = append(points, tsPoint{interval: iv})
	}
	ios, err := sweep.Run(context.Background(), points,
		func(_ context.Context, _ int, p tsPoint) (uint64, error) {
			if p.baseline {
				return swapIO(ModeVanilla, frames, workload, footprint, seed, maxRefs)
			}
			sys, err := NewSystem(SystemConfig{
				Frames:       frames,
				Mode:         ModeMosaic,
				Seed:         seed,
				ScanInterval: p.interval,
			})
			if err != nil {
				return 0, err
			}
			w, err := NewWorkload(workload, footprint, seed)
			if err != nil {
				return 0, err
			}
			RunLimited(w, vmSink{sys, 1}, maxRefs)
			return sys.Device().TotalIO(), nil
		},
		sweep.Options{Workers: workers, Name: "ablate timestamps"})
	if err != nil {
		return nil, err
	}
	linuxIO := ios[0]
	rows := make([]TimestampRow, 0, len(intervals))
	for i, iv := range intervals {
		io := ios[i+1]
		label := "exact"
		if iv > 0 {
			label = fmt.Sprintf("scan@%d", iv)
		}
		rows = append(rows, TimestampRow{
			Label:      label,
			MosaicKIO:  float64(io) / 1000,
			VsLinuxPct: stats.PercentChange(float64(linuxIO), float64(io)),
		})
	}
	return rows, nil
}

// EvictionRow is one row of the eviction ablation: swap I/O under three
// eviction regimes at one footprint.
type EvictionRow struct {
	FootprintMiB   float64
	HorizonKIO     float64 // mosaic with Horizon LRU (§2.4)
	NaiveKIO       float64 // mosaic, conflict-LRU only, no ghosts
	LinuxKIO       float64 // vanilla baseline
	HorizonVsNaive float64 // % reduction of horizon vs naive
}

// AblateEviction quantifies what Horizon LRU's ghost mechanism buys over
// the naive candidate-LRU scheme the paper argues against (§2.4), using
// the paper's swapping methodology at a ladder of footprints. workers
// bounds the fan-out over the footprint × regime grid.
func AblateEviction(workload string, memoryMiB int, fracs []float64, maxRefs, seed uint64, workers int) ([]EvictionRow, error) {
	if workload == "" {
		workload = "graph500"
	}
	if memoryMiB == 0 {
		memoryMiB = 32
	}
	if len(fracs) == 0 {
		fracs = []float64{1.08, 1.20, 1.33, 1.45}
	}
	if maxRefs == 0 {
		maxRefs = 10_000_000
	}
	frames := memoryMiB << 20 / PageSize
	// Flatten footprint × regime, three regimes per footprint in the
	// sequential order (horizon, naive, linux); each cell is one simulation.
	regimes := []SystemConfig{
		{Mode: ModeMosaic},
		{Mode: ModeMosaic, DisableHorizon: true},
		{Mode: ModeVanilla},
	}
	type evCell struct {
		footprint uint64
		cfg       SystemConfig
	}
	cells := make([]evCell, 0, len(fracs)*len(regimes))
	for _, frac := range fracs {
		footprint := uint64(frac * float64(memoryMiB) * (1 << 20))
		for _, cfg := range regimes {
			cells = append(cells, evCell{footprint: footprint, cfg: cfg})
		}
	}
	ios, err := sweep.Run(context.Background(), cells,
		func(_ context.Context, _ int, c evCell) (uint64, error) {
			cfg := c.cfg
			cfg.Frames = frames
			cfg.Seed = seed
			sys, err := NewSystem(cfg)
			if err != nil {
				return 0, err
			}
			w, err := NewWorkload(workload, c.footprint, seed)
			if err != nil {
				return 0, err
			}
			RunLimited(w, vmSink{sys, 1}, maxRefs)
			return sys.Device().TotalIO(), nil
		},
		sweep.Options{Workers: workers, Name: "ablate eviction"})
	if err != nil {
		return nil, err
	}
	rows := make([]EvictionRow, 0, len(fracs))
	for i := 0; i < len(cells); i += len(regimes) {
		horizon, naive, linux := ios[i], ios[i+1], ios[i+2]
		rows = append(rows, EvictionRow{
			FootprintMiB:   float64(cells[i].footprint) / (1 << 20),
			HorizonKIO:     float64(horizon) / 1000,
			NaiveKIO:       float64(naive) / 1000,
			LinuxKIO:       float64(linux) / 1000,
			HorizonVsNaive: stats.PercentChange(float64(naive), float64(horizon)),
		})
	}
	return rows, nil
}
