package mosaic

import (
	"fmt"

	"mosaic/internal/core"
	"mosaic/internal/stats"
	"mosaic/internal/tabhash"
	"mosaic/internal/xxhash"
)

// The ablations quantify the design choices DESIGN.md calls out: how many
// backyard choices are needed, how the frontyard/backyard split affects δ,
// what the horizon/ghost mechanism buys over naive candidate-LRU eviction,
// and how much hash quality matters.

// AblateRow is one row of a single-parameter ablation sweep.
type AblateRow struct {
	// Label names the swept setting ("d=6", "f=56/b=8", "xxhash", …).
	Label string
	// Associativity is h for the swept geometry.
	Associativity int
	// CPFNBits is the compressed-frame-number width h implies.
	CPFNBits int
	// FirstConflict is the mean utilization at the first conflict.
	FirstConflict float64
	// FirstConflictSD is its standard deviation across trials.
	FirstConflictSD float64
}

// fillToConflict creates a mosaic system and touches distinct pages until
// the first associativity conflict, returning the utilization there.
func fillToConflict(frames int, geom Geometry, hash core.PlacementHash, seed uint64) (float64, error) {
	sys, err := NewSystem(SystemConfig{
		Frames:   frames,
		Mode:     ModeMosaic,
		Geometry: geom,
		Hash:     hash,
		Seed:     seed,
	})
	if err != nil {
		return 0, err
	}
	for vpn := VPN(0); ; vpn++ {
		sys.Touch(1, vpn, true)
		if u, saw := sys.FirstConflictUtilization(); saw {
			return u, nil
		}
		if int(vpn) > 2*frames {
			return 0, fmt.Errorf("mosaic: no conflict after filling 2× memory")
		}
	}
}

func sweepGeometry(label string, geom Geometry, hash func(seed uint64) core.PlacementHash,
	frames, trials int, seed uint64) (AblateRow, error) {
	var r stats.Running
	for t := 0; t < trials; t++ {
		s := seed + uint64(t)*6151
		u, err := fillToConflict(frames, geom, hash(s), s)
		if err != nil {
			return AblateRow{}, fmt.Errorf("%s: %w", label, err)
		}
		r.Observe(u)
	}
	return AblateRow{
		Label:           label,
		Associativity:   geom.Associativity(),
		CPFNBits:        geom.CPFNBits(),
		FirstConflict:   r.Mean(),
		FirstConflictSD: r.Stddev(),
	}, nil
}

func xxPlacement(seed uint64) core.PlacementHash { return xxhash.NewPlacement(seed) }

// AblateChoices sweeps the number of backyard choices d, holding the
// 56/8 split fixed: how much does the power of d choices buy in
// first-conflict utilization, and what does it cost in CPFN bits?
func AblateChoices(ds []int, frames, trials int, seed uint64) ([]AblateRow, error) {
	if len(ds) == 0 {
		ds = []int{1, 2, 4, 6, 8}
	}
	if frames == 0 {
		frames = 1 << 15
	}
	if trials == 0 {
		trials = 5
	}
	var rows []AblateRow
	for _, d := range ds {
		geom := Geometry{FrontyardSize: 56, BackyardSize: 8, Choices: d}
		row, err := sweepGeometry(fmt.Sprintf("d=%d", d), geom, xxPlacement, frames, trials, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblateSplit sweeps the frontyard/backyard split of the 64-frame bucket
// with d = 6 choices fixed.
func AblateSplit(splits [][2]int, frames, trials int, seed uint64) ([]AblateRow, error) {
	if len(splits) == 0 {
		splits = [][2]int{{62, 2}, {60, 4}, {56, 8}, {48, 16}, {32, 32}}
	}
	if frames == 0 {
		frames = 1 << 15
	}
	if trials == 0 {
		trials = 5
	}
	var rows []AblateRow
	for _, fb := range splits {
		geom := Geometry{FrontyardSize: fb[0], BackyardSize: fb[1], Choices: 6}
		label := fmt.Sprintf("f=%d/b=%d", fb[0], fb[1])
		row, err := sweepGeometry(label, geom, xxPlacement, frames, trials, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblateHash compares placement-hash families at the default geometry:
// xxHash (the Linux prototype's), tabulation hashing with probing (the
// hardware design), and a deliberately weak hash, which shows why hash
// quality is load-bearing for the 98% bound.
func AblateHash(frames, trials int, seed uint64) ([]AblateRow, error) {
	if frames == 0 {
		frames = 1 << 15
	}
	if trials == 0 {
		trials = 5
	}
	families := []struct {
		label string
		mk    func(seed uint64) core.PlacementHash
	}{
		{"xxhash", xxPlacement},
		{"tabulation", func(seed uint64) core.PlacementHash { return tabhash.NewPlacement(seed) }},
		{"weak-clustering", func(seed uint64) core.PlacementHash {
			return core.PlacementHashFunc(func(asid ASID, vpn VPN, fn int) uint64 {
				// No mixing at all: runs of 256 consecutive VPNs share one
				// frontyard bucket and one set of backyard buckets, so a
				// sequential fill overflows its h candidate slots almost
				// immediately — the failure mode a real hash must prevent.
				return uint64(vpn)>>8 + uint64(fn)*8191 + seed + uint64(asid)
			})
		}},
	}
	var rows []AblateRow
	for _, fam := range families {
		row, err := sweepGeometry(fam.label, DefaultGeometry, fam.mk, frames, trials, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TimestampRow is one row of the timestamp-fidelity ablation: swap I/O of
// mosaic under exact timestamps vs the prototype's scan-daemon emulation.
type TimestampRow struct {
	// Label names the regime ("exact" or "scan@<interval>").
	Label string
	// MosaicKIO is mosaic's swap I/O in thousands of pages.
	MosaicKIO float64
	// VsLinuxPct is the percent reduction vs the Linux baseline at the
	// same footprint (positive = mosaic swaps less).
	VsLinuxPct float64
}

// AblateTimestamps quantifies the fidelity gap between exact access
// timestamps (a real mosaic system, and this repo's default) and the
// paper's Linux-prototype emulation (§3.2: access-bit scans + hot-page
// sampling). Coarser timestamps degrade Horizon LRU's victim choices, so
// the margin over Linux shrinks as the scan interval grows — evidence for
// why the paper argues real hardware should store timestamps.
func AblateTimestamps(workload string, memoryMiB int, footprintFrac float64, intervals []uint64, maxRefs, seed uint64) ([]TimestampRow, error) {
	if workload == "" {
		workload = "graph500"
	}
	if memoryMiB == 0 {
		memoryMiB = 16
	}
	if footprintFrac == 0 {
		footprintFrac = 1.20
	}
	if len(intervals) == 0 {
		intervals = []uint64{0, 1024, 16384, 262144}
	}
	if maxRefs == 0 {
		maxRefs = 15_000_000
	}
	frames := memoryMiB << 20 / PageSize
	footprint := uint64(footprintFrac * float64(memoryMiB) * (1 << 20))

	linuxIO, err := swapIO(ModeVanilla, frames, workload, footprint, seed, maxRefs)
	if err != nil {
		return nil, err
	}
	var rows []TimestampRow
	for _, iv := range intervals {
		sys, err := NewSystem(SystemConfig{
			Frames:       frames,
			Mode:         ModeMosaic,
			Seed:         seed,
			ScanInterval: iv,
		})
		if err != nil {
			return nil, err
		}
		w, err := NewWorkload(workload, footprint, seed)
		if err != nil {
			return nil, err
		}
		RunLimited(w, vmSink{sys, 1}, maxRefs)
		io := sys.Device().TotalIO()
		label := "exact"
		if iv > 0 {
			label = fmt.Sprintf("scan@%d", iv)
		}
		rows = append(rows, TimestampRow{
			Label:      label,
			MosaicKIO:  float64(io) / 1000,
			VsLinuxPct: stats.PercentChange(float64(linuxIO), float64(io)),
		})
	}
	return rows, nil
}

// EvictionRow is one row of the eviction ablation: swap I/O under three
// eviction regimes at one footprint.
type EvictionRow struct {
	FootprintMiB   float64
	HorizonKIO     float64 // mosaic with Horizon LRU (§2.4)
	NaiveKIO       float64 // mosaic, conflict-LRU only, no ghosts
	LinuxKIO       float64 // vanilla baseline
	HorizonVsNaive float64 // % reduction of horizon vs naive
}

// AblateEviction quantifies what Horizon LRU's ghost mechanism buys over
// the naive candidate-LRU scheme the paper argues against (§2.4), using
// the paper's swapping methodology at a ladder of footprints.
func AblateEviction(workload string, memoryMiB int, fracs []float64, maxRefs, seed uint64) ([]EvictionRow, error) {
	if workload == "" {
		workload = "graph500"
	}
	if memoryMiB == 0 {
		memoryMiB = 32
	}
	if len(fracs) == 0 {
		fracs = []float64{1.08, 1.20, 1.33, 1.45}
	}
	if maxRefs == 0 {
		maxRefs = 10_000_000
	}
	frames := memoryMiB << 20 / PageSize
	var rows []EvictionRow
	for _, frac := range fracs {
		footprint := uint64(frac * float64(memoryMiB) * (1 << 20))
		run := func(cfg SystemConfig) (uint64, error) {
			cfg.Frames = frames
			cfg.Seed = seed
			sys, err := NewSystem(cfg)
			if err != nil {
				return 0, err
			}
			w, err := NewWorkload(workload, footprint, seed)
			if err != nil {
				return 0, err
			}
			RunLimited(w, vmSink{sys, 1}, maxRefs)
			return sys.Device().TotalIO(), nil
		}
		horizon, err := run(SystemConfig{Mode: ModeMosaic})
		if err != nil {
			return nil, err
		}
		naive, err := run(SystemConfig{Mode: ModeMosaic, DisableHorizon: true})
		if err != nil {
			return nil, err
		}
		linux, err := run(SystemConfig{Mode: ModeVanilla})
		if err != nil {
			return nil, err
		}
		rows = append(rows, EvictionRow{
			FootprintMiB:   float64(footprint) / (1 << 20),
			HorizonKIO:     float64(horizon) / 1000,
			NaiveKIO:       float64(naive) / 1000,
			LinuxKIO:       float64(linux) / 1000,
			HorizonVsNaive: stats.PercentChange(float64(naive), float64(horizon)),
		})
	}
	return rows, nil
}
