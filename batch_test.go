package mosaic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mosaic/internal/obs"
	"mosaic/internal/results"
	"mosaic/internal/trace"
)

// The batched replay engine's contract is byte-identical results: every
// counter, histogram bucket, sampler window, and event reference index must
// come out exactly as the scalar Access path produces them. These tests pin
// that contract by serializing the full results.File from a scalar replay
// and a batched replay of the same stream and comparing the JSON bytes.

// captureStream runs a workload to a Batch in memory.
func captureStream(t *testing.T, name string, footprint, maxRefs uint64) trace.Batch {
	t.Helper()
	w, err := NewWorkload(name, footprint, 7)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	RunLimited(w, &rec, maxRefs)
	b := make(trace.Batch, len(rec.Accesses))
	for i, a := range rec.Accesses {
		b[i] = trace.MakeRef(a.VA, a.Write)
	}
	return b
}

// unevenBatches slices a stream into batches of cycling, boundary-hostile
// sizes (1, 3, and around DefaultBatchSize), so equivalence cannot depend
// on any particular batch granularity.
func unevenBatches(stream trace.Batch) []trace.Batch {
	sizes := []int{1, 3, trace.DefaultBatchSize - 1, trace.DefaultBatchSize, 17, 4095}
	var out []trace.Batch
	for i, k := 0, 0; i < len(stream); k++ {
		n := sizes[k%len(sizes)]
		if i+n > len(stream) {
			n = len(stream) - i
		}
		out = append(out, stream[i:i+n])
		i += n
	}
	return out
}

// resultsJSON serializes everything a driver publishes from a simulator:
// the finalized metrics snapshot, the sampler's series, and the event log.
func resultsJSON(t *testing.T, sim *Simulator, ob *obs.Observer) []byte {
	t.Helper()
	f := results.New("equivalence")
	f.AddSnapshot("", sim.FinalizeMetrics().Snapshot())
	if ob != nil {
		f.AddSampler("", sim.Sampler())
		f.AddEvents("equiv", ob.Events)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func equivSim(t *testing.T, ob *obs.Observer) *Simulator {
	t.Helper()
	sim, err := NewSimulator(SimConfig{
		Frames: 1 << 15,
		Specs: []TLBSpec{
			{Geometry: TLBGeometry{Entries: 256, Ways: 8}},
			{Geometry: TLBGeometry{Entries: 256, Ways: 8}, Arity: 4},
			{Geometry: TLBGeometry{Entries: 256, Ways: 8}, Coalesce: 8},
		},
		Seed: 3,
		Obs:  ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestBatchReplayMatchesScalarFig6 replays a fig6-style capture through
// Access and through ProcessBatch and requires byte-identical results
// files. The sampled variant exercises the observer/sampler fallback; the
// unsampled variant pins the tight batch loop.
func TestBatchReplayMatchesScalarFig6(t *testing.T) {
	stream := captureStream(t, "gups", 4<<20, 300_000)
	for _, sampled := range []bool{false, true} {
		var obScalar, obBatch *obs.Observer
		if sampled {
			obScalar = obs.NewObserver(1 << 12)
			obBatch = obs.NewObserver(1 << 12)
		}
		scalar := equivSim(t, obScalar)
		for _, r := range stream {
			scalar.Access(r.VA(), r.Write())
		}
		batch := equivSim(t, obBatch)
		for _, b := range unevenBatches(stream) {
			batch.ProcessBatch(b)
		}
		a, b := resultsJSON(t, scalar, obScalar), resultsJSON(t, batch, obBatch)
		if !bytes.Equal(a, b) {
			t.Errorf("sampled=%v: batched replay diverged from scalar replay:\n%s",
				sampled, firstDiff(a, b))
		}
	}
}

// TestBatchReplayMatchesScalarMultiprogram pins the multiprogram shared-run
// path: two captured streams interleaved in round-robin quanta, scalar
// AccessFrom versus the quantum-sliced batch replay.
func TestBatchReplayMatchesScalarMultiprogram(t *testing.T) {
	streams := []trace.Batch{
		captureStream(t, "gups", 2<<20, 150_000),
		captureStream(t, "kvstore", 2<<20, 150_000),
	}
	// Encode each stream as a v2 trace so the batch side replays exactly
	// what Multiprogram's shared run replays.
	encoded := make([][]byte, len(streams))
	for i, s := range streams {
		var buf bytes.Buffer
		w, err := trace.NewBatchWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBatch(s); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		encoded[i] = buf.Bytes()
	}
	const quantum = 5_000

	scalar := equivSim(t, nil)
	offs := make([]int, len(streams))
	for live := len(streams); live > 0; {
		live = 0
		for i, s := range streams {
			if offs[i] == len(s) {
				continue
			}
			n := quantum
			if len(s)-offs[i] < n {
				n = len(s) - offs[i]
			}
			for _, r := range s[offs[i] : offs[i]+n] {
				scalar.AccessFrom(ASID(i+1), r.VA(), r.Write())
			}
			offs[i] += n
			if offs[i] < len(s) {
				live++
			}
		}
	}

	batch := equivSim(t, nil)
	readers := make([]*quantumStream, len(encoded))
	for i, data := range encoded {
		r, err := trace.NewBatchReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		readers[i] = &quantumStream{r: r, buf: make(trace.Batch, 0, trace.DefaultBatchSize)}
	}
	for live := len(readers); live > 0; {
		live = 0
		for i, r := range readers {
			if r == nil {
				continue
			}
			done, err := r.replayQuantum(batch, ASID(i+1), quantum)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				readers[i] = nil
				continue
			}
			live++
		}
	}

	a, b := resultsJSON(t, scalar, nil), resultsJSON(t, batch, nil)
	if !bytes.Equal(a, b) {
		t.Errorf("multiprogram batched replay diverged from scalar replay:\n%s", firstDiff(a, b))
	}
}

// firstDiff renders the first line where two JSON blobs diverge.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d: scalar %s vs batch %s", i+1, al[i], bl[i])
		}
	}
	return "length mismatch"
}
