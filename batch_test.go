package mosaic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mosaic/internal/obs"
	"mosaic/internal/results"
	"mosaic/internal/trace"
)

// The batched replay engine's contract is byte-identical results: every
// counter, histogram bucket, sampler window, and event reference index must
// come out exactly as the scalar Access path produces them. These tests pin
// that contract by serializing the full results.File from a scalar replay
// and a batched replay of the same stream and comparing the JSON bytes.

// captureStream runs a workload to a Batch in memory.
func captureStream(t *testing.T, name string, footprint, maxRefs uint64) trace.Batch {
	t.Helper()
	w, err := NewWorkload(name, footprint, 7)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	RunLimited(w, &rec, maxRefs)
	b := make(trace.Batch, len(rec.Accesses))
	for i, a := range rec.Accesses {
		b[i] = trace.MakeRef(a.VA, a.Write)
	}
	return b
}

// unevenBatches slices a stream into batches of cycling, boundary-hostile
// sizes (1, 3, and around DefaultBatchSize), so equivalence cannot depend
// on any particular batch granularity.
func unevenBatches(stream trace.Batch) []trace.Batch {
	sizes := []int{1, 3, trace.DefaultBatchSize - 1, trace.DefaultBatchSize, 17, 4095}
	var out []trace.Batch
	for i, k := 0, 0; i < len(stream); k++ {
		n := sizes[k%len(sizes)]
		if i+n > len(stream) {
			n = len(stream) - i
		}
		out = append(out, stream[i:i+n])
		i += n
	}
	return out
}

// resultsJSON serializes everything a driver publishes from a simulator:
// the finalized metrics snapshot, the sampler's series, and the event log.
func resultsJSON(t *testing.T, sim *Simulator, ob *obs.Observer) []byte {
	t.Helper()
	f := results.New("equivalence")
	f.AddSnapshot("", sim.FinalizeMetrics().Snapshot())
	if ob != nil {
		f.AddSampler("", sim.Sampler())
		f.AddEvents("equiv", ob.Events)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func equivSim(t *testing.T, ob *obs.Observer) *Simulator {
	t.Helper()
	sim, err := NewSimulator(SimConfig{
		Frames: 1 << 15,
		Specs: []TLBSpec{
			{Geometry: TLBGeometry{Entries: 256, Ways: 8}},
			{Geometry: TLBGeometry{Entries: 256, Ways: 8}, Arity: 4},
			{Geometry: TLBGeometry{Entries: 256, Ways: 8}, Coalesce: 8},
		},
		Seed: 3,
		Obs:  ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestBatchReplayMatchesScalarFig6 replays a fig6-style capture through
// Access and through ProcessBatch and requires byte-identical results
// files. The sampled variant exercises the observer/sampler fallback; the
// unsampled variant pins the tight batch loop.
func TestBatchReplayMatchesScalarFig6(t *testing.T) {
	stream := captureStream(t, "gups", 4<<20, 300_000)
	for _, sampled := range []bool{false, true} {
		var obScalar, obBatch *obs.Observer
		if sampled {
			obScalar = obs.NewObserver(1 << 12)
			obBatch = obs.NewObserver(1 << 12)
		}
		scalar := equivSim(t, obScalar)
		for _, r := range stream {
			scalar.Access(r.VA(), r.Write())
		}
		batch := equivSim(t, obBatch)
		for _, b := range unevenBatches(stream) {
			batch.ProcessBatch(b)
		}
		a, b := resultsJSON(t, scalar, obScalar), resultsJSON(t, batch, obBatch)
		if !bytes.Equal(a, b) {
			t.Errorf("sampled=%v: batched replay diverged from scalar replay:\n%s",
				sampled, firstDiff(a, b))
		}
	}
}

// TestBatchReplayMatchesScalarMultiprogram pins the multiprogram shared-run
// path: two captured streams interleaved in round-robin quanta, scalar
// AccessFrom versus the quantum-sliced batch replay.
func TestBatchReplayMatchesScalarMultiprogram(t *testing.T) {
	streams := []trace.Batch{
		captureStream(t, "gups", 2<<20, 150_000),
		captureStream(t, "kvstore", 2<<20, 150_000),
	}
	// Encode each stream as a v2 trace so the batch side replays exactly
	// what Multiprogram's shared run replays.
	encoded := make([][]byte, len(streams))
	for i, s := range streams {
		var buf bytes.Buffer
		w, err := trace.NewBatchWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBatch(s); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		encoded[i] = buf.Bytes()
	}
	const quantum = 5_000

	scalar := equivSim(t, nil)
	offs := make([]int, len(streams))
	for live := len(streams); live > 0; {
		live = 0
		for i, s := range streams {
			if offs[i] == len(s) {
				continue
			}
			n := quantum
			if len(s)-offs[i] < n {
				n = len(s) - offs[i]
			}
			for _, r := range s[offs[i] : offs[i]+n] {
				scalar.AccessFrom(ASID(i+1), r.VA(), r.Write())
			}
			offs[i] += n
			if offs[i] < len(s) {
				live++
			}
		}
	}

	batch := equivSim(t, nil)
	readers := make([]*quantumStream, len(encoded))
	for i, data := range encoded {
		r, err := trace.NewBatchReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		readers[i] = &quantumStream{r: r, buf: make(trace.Batch, 0, trace.DefaultBatchSize)}
	}
	for live := len(readers); live > 0; {
		live = 0
		for i, r := range readers {
			if r == nil {
				continue
			}
			done, err := r.replayQuantum(batch, ASID(i+1), quantum)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				readers[i] = nil
				continue
			}
			live++
		}
	}

	a, b := resultsJSON(t, scalar, nil), resultsJSON(t, batch, nil)
	if !bytes.Equal(a, b) {
		t.Errorf("multiprogram batched replay diverged from scalar replay:\n%s", firstDiff(a, b))
	}
}

// scalarStream is streamWorkload without the BatchRunner leg, so RunBatch
// takes the scalar Access path.
type scalarStream struct{ n uint64 }

func (s scalarStream) Name() string           { return "scalar-stream" }
func (s scalarStream) FootprintBytes() uint64 { return s.n * 64 }
func (s scalarStream) Run(sink Sink) {
	for i := uint64(0); i < s.n; i++ {
		sink.Access(i*64, false)
	}
}

// TestRunBatchTrimsTailToLimit pins the cap when a finite workload ends
// between flush boundaries: with maxRefs below the workload's length and
// the whole stream shorter than one DefaultBatchSize flush, the buffered
// tail must be trimmed to the cap on both producer legs.
func TestRunBatchTrimsTailToLimit(t *testing.T) {
	var scalarLeg batchCountSink
	if got := RunBatch(scalarStream{n: 3000}, &scalarLeg, 100); got != 100 {
		t.Errorf("scalar leg: RunBatch returned %d, want 100", got)
	}
	if scalarLeg.n != 100 {
		t.Errorf("scalar leg: sink saw %d refs, want 100", scalarLeg.n)
	}
	var batchLeg batchCountSink
	if got := RunBatch(streamWorkload{n: 3000}, &batchLeg, 100); got != 100 {
		t.Errorf("batch leg: RunBatch returned %d, want 100", got)
	}
	if batchLeg.n != 100 {
		t.Errorf("batch leg: sink saw %d refs, want 100", batchLeg.n)
	}
	// A workload shorter than the cap delivers everything.
	var under batchCountSink
	if got := RunBatch(scalarStream{n: 50}, &under, 100); got != 50 || under.n != 50 {
		t.Errorf("short workload: n=%d sink=%d, want 50", got, under.n)
	}
	// A cap exactly at the workload length delivers exactly the workload.
	var exact batchCountSink
	if got := RunBatch(scalarStream{n: 100}, &exact, 100); got != 100 || exact.n != 100 {
		t.Errorf("exact cap: n=%d sink=%d, want 100", got, exact.n)
	}
}

// dualCountSink counts on both the scalar and batch interfaces, so
// RunLimited routes it through RunBatch the way it routes the Simulator.
type dualCountSink struct{ n uint64 }

func (s *dualCountSink) Access(uint64, bool)        { s.n++ }
func (s *dualCountSink) ProcessBatch(b trace.Batch) { s.n += uint64(len(b)) }

// TestRunLimitedCapsBatchSinks reproduces the over-delivery bug at the
// RunLimited boundary: a BatchSink fed a finite workload longer than the
// cap but shorter than a flush boundary must see exactly maxRefs.
func TestRunLimitedCapsBatchSinks(t *testing.T) {
	var s dualCountSink
	if got := RunLimited(scalarStream{n: 3000}, &s, 100); got != 100 {
		t.Errorf("RunLimited returned %d, want 100", got)
	}
	if s.n != 100 {
		t.Errorf("sink saw %d refs, want 100", s.n)
	}
}

// mixedStream produces through both legs in one run — a whole batch, then
// scalar Access calls, then another batch — which a strict
// either-Access-or-ProcessBatch harness would reject with an index panic
// on the nil Access buffer.
type mixedStream struct{}

func (mixedStream) Name() string           { return "mixed" }
func (mixedStream) FootprintBytes() uint64 { return 30 * 64 }
func (mixedStream) Run(sink Sink) {
	for i := uint64(0); i < 30; i++ {
		sink.Access(i*64, false)
	}
}

func (mixedStream) RunBatches(sink trace.BatchSink) {
	b := make(trace.Batch, 10)
	fill := func(base uint64) trace.Batch {
		for j := range b {
			b[j] = trace.MakeRef((base+uint64(j))*64, false)
		}
		return b
	}
	sink.ProcessBatch(fill(0))
	s := sink.(Sink) // the harness's limit sink has a scalar leg too
	for i := uint64(10); i < 20; i++ {
		s.Access(i*64, false)
	}
	sink.ProcessBatch(fill(20))
}

// batchRecorder retains every delivered ref in order.
type batchRecorder struct{ refs trace.Batch }

func (r *batchRecorder) ProcessBatch(b trace.Batch) { r.refs = append(r.refs, b...) }

// TestRunBatchMixedModeProducer: a producer that interleaves Access calls
// with whole batches keeps stream order and the limit.
func TestRunBatchMixedModeProducer(t *testing.T) {
	var rec batchRecorder
	if got := RunBatch(mixedStream{}, &rec, 0); got != 30 {
		t.Fatalf("RunBatch returned %d, want 30", got)
	}
	if len(rec.refs) != 30 {
		t.Fatalf("sink saw %d refs, want 30", len(rec.refs))
	}
	for i, r := range rec.refs {
		if r.VA() != uint64(i)*64 {
			t.Fatalf("ref %d out of order: VA %#x, want %#x", i, r.VA(), uint64(i)*64)
		}
	}
	// The cap lands mid-buffered-Access-run: the drain before the second
	// batch must trim to the limit.
	var capped batchRecorder
	if got := RunBatch(mixedStream{}, &capped, 15); got != 15 {
		t.Fatalf("capped RunBatch returned %d, want 15", got)
	}
	if len(capped.refs) != 15 {
		t.Fatalf("capped sink saw %d refs, want 15", len(capped.refs))
	}
	for i, r := range capped.refs {
		if r.VA() != uint64(i)*64 {
			t.Fatalf("capped ref %d out of order: VA %#x, want %#x", i, r.VA(), uint64(i)*64)
		}
	}
}

// firstDiff renders the first line where two JSON blobs diverge.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d: scalar %s vs batch %s", i+1, al[i], bl[i])
		}
	}
	return "length mismatch"
}
