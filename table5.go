package mosaic

import "mosaic/internal/hw"

// Table5 reproduces Table 5: Artix-7 FPGA synthesis estimates for the
// tabulation-hash circuit at H ∈ {1, 2, 4, 8} hash outputs. Latency is
// constant in H (the probing design keeps extra outputs off the critical
// path); resources grow with H.
func Table5() []FPGAReport { return hw.Table5() }

// Table5ASIC reports the 28nm CMOS synthesis estimate for the same circuit
// at each H — the paper quotes the H = 8 point: 4 GHz, 220 ps, 13.806 KGE.
func Table5ASIC() []ASICReport {
	out := make([]ASICReport, 0, 4)
	for _, h := range []int{1, 2, 4, 8} {
		r, err := hw.SynthesizeASIC(hw.DefaultSpec(h))
		if err != nil {
			panic(err) // DefaultSpec is always valid
		}
		out = append(out, r)
	}
	return out
}
