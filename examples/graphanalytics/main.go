// Graph analytics: the paper's motivating scenario.
//
// Graph traversals chase pointers across working sets far larger than TLB
// reach, with no physical contiguity to exploit — the workload class the
// paper's introduction leads with (Graph500 spends a large fraction of its
// time in TLB misses). This example runs a real breadth-first search over a
// Kronecker graph through the memory-system simulator and compares vanilla
// and mosaic TLB behaviour, including the page-table-walk traffic a miss
// costs.
//
// Run with: go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	const footprint = 24 << 20
	g, err := mosaic.NewWorkload("graph500", footprint, 7)
	if err != nil {
		log.Fatal(err)
	}

	geom := mosaic.TLBGeometry{Entries: 256, Ways: 8}
	sim, err := mosaic.NewSimulator(mosaic.SimConfig{
		Frames: 1 << 17,
		Specs: []mosaic.TLBSpec{
			{Geometry: geom},
			{Geometry: geom, Arity: 4},
			{Geometry: geom, Arity: 16},
		},
		EnableCaches: true,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Graph500 (Kronecker graph, %d MiB CSR + BFS state) on a %s TLB\n\n",
		g.FootprintBytes()>>20, geom)
	refs := mosaic.RunLimited(g, sim, 12_000_000)
	fmt.Printf("%-10s %12s %10s %14s %14s\n", "Design", "TLB misses", "MPKR", "walk accesses", "memory cycles")
	var vanillaMisses uint64
	for _, r := range sim.Results() {
		if r.Spec.Arity == 0 {
			vanillaMisses = r.TLB.Misses
		}
		fmt.Printf("%-10s %12d %10.2f %14d %14d\n",
			r.Spec.Label(), r.TLB.Misses,
			1000*float64(r.TLB.Misses)/float64(refs),
			r.WalkAccesses, r.TotalCycles)
	}
	fmt.Println()
	for _, r := range sim.Results() {
		if r.Spec.Arity != 0 && vanillaMisses > 0 {
			fmt.Printf("%s removes %.1f%% of the vanilla TLB misses.\n",
				r.Spec.Label(), 100*(1-float64(r.TLB.Misses)/float64(vanillaMisses)))
		}
	}
	fmt.Println("\nMPKR = misses per 1000 data references. Walk accesses are the radix")
	fmt.Println("page-table reads the misses triggered; each one occupies the cache")
	fmt.Println("hierarchy, so fewer misses also means less total memory traffic (the")
	fmt.Println("memory-cycles column sums the modeled latency of every access).")
}
