// Quickstart: the mosaic library in ~60 lines.
//
// Builds a mosaic virtual-memory system, touches some pages, inspects the
// compressed translations, and then runs a tiny TLB simulation comparing a
// vanilla TLB to a mosaic TLB on the same reference stream.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	// --- OS view: a mosaic-managed physical memory of 1024 frames (4 MiB).
	sys, err := mosaic.NewSystem(mosaic.SystemConfig{
		Frames: 1024,
		Mode:   mosaic.ModeMosaic,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fill most of memory with background pages so the four pages of
	// interest land in partially-occupied buckets (varied CPFNs), as they
	// would on a busy machine.
	for vpn := mosaic.VPN(0); vpn < 900; vpn++ {
		sys.Touch(2, vpn, false)
	}

	// Touch four virtually-contiguous pages in address space 1. Demand
	// paging allocates each one in an iceberg-constrained frame.
	fmt.Println("Four virtually contiguous pages, placed by iceberg hashing:")
	for vpn := mosaic.VPN(0x1010); vpn <= 0x1013; vpn++ {
		res := sys.Touch(1, vpn, true)
		pfn, _ := sys.Translate(1, vpn)
		cpfn, _ := sys.CPFNFor(1, vpn)
		hwBits := mosaic.DefaultGeometry.EncodeHW(cpfn)
		fmt.Printf("  VPN %#x: %-11s -> PFN %4d   CPFN %3d (7-bit encoding %#07b)\n",
			vpn, res, pfn, cpfn, hwBits)
	}
	fmt.Println()
	fmt.Println("The four PFNs are scattered (no physical contiguity), yet each CPFN")
	fmt.Println("fits in 7 bits — so all four translations pack into one TLB entry.")
	fmt.Println()

	// --- Hardware view: the same idea measured. Feed one reference stream
	// to a vanilla TLB and a Mosaic-4 TLB of identical size.
	sim, err := mosaic.NewSimulator(mosaic.SimConfig{
		Frames: 1 << 16,
		Specs: []mosaic.TLBSpec{
			{Geometry: mosaic.TLBGeometry{Entries: 64, Ways: 8}},           // vanilla
			{Geometry: mosaic.TLBGeometry{Entries: 64, Ways: 8}, Arity: 4}, // mosaic
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A toy workload: stride repeatedly over 128 pages — twice the vanilla
	// TLB's reach, half the mosaic TLB's.
	const pages = 128
	for round := 0; round < 50; round++ {
		for p := uint64(0); p < pages; p++ {
			sim.Access(0x4000_0000+p*mosaic.PageSize, false)
		}
	}

	fmt.Printf("Scanning %d pages × 50 rounds through a 64-entry 8-way TLB:\n", pages)
	for _, r := range sim.Results() {
		fmt.Printf("  %-9s reach %4d KiB   misses %5d   miss rate %6.2f%%\n",
			r.Spec.Label(), reachKiB(r.Spec), r.TLB.Misses, 100*r.TLB.MissRate())
	}
	fmt.Println()
	fmt.Println("Same entry count, 4× the reach: that is the mosaic pages trade.")
}

func reachKiB(spec mosaic.TLBSpec) int {
	arity := spec.Arity
	if arity == 0 {
		arity = 1
	}
	return spec.Geometry.Entries * arity * mosaic.PageSize / 1024
}
