// KV cache: the paper's motivating application class end-to-end.
//
// The introduction motivates mosaic with in-memory stores like Redis: huge
// pages buy them ~29% throughput on a fresh machine but the gain inverts at
// 50% fragmentation, and many databases ship with "disable transparent
// huge pages" in their tuning guides (§5.1). This example runs a Zipfian
// GET/SET workload over a Redis-like hash table through the simulator,
// then shows the fragmentation table that explains why contiguity-based
// reach is operationally fragile while mosaic's is not.
//
// Run with: go run ./examples/kvcache
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	const footprint = 48 << 20
	kv, err := mosaic.NewWorkload("kvstore", footprint, 21)
	if err != nil {
		log.Fatal(err)
	}

	geom := mosaic.TLBGeometry{Entries: 256, Ways: 8}
	sim, err := mosaic.NewSimulator(mosaic.SimConfig{
		Frames: 1 << 17,
		Specs: []mosaic.TLBSpec{
			{Geometry: geom},
			{Geometry: geom, Coalesce: 4}, // CoLT: needs physical contiguity
			{Geometry: geom, Arity: 4},
			{Geometry: geom, Arity: 16},
		},
		Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Zipfian KV store (%d MiB: buckets, chain nodes, 256 B values)\n", footprint>>20)
	fmt.Printf("TLB: %s — misses per design:\n\n", geom)
	refs := mosaic.RunLimited(kv, sim, 12_000_000)
	var vanilla uint64
	for _, r := range sim.Results() {
		if r.Spec.Arity == 0 && r.Spec.Coalesce == 0 {
			vanilla = r.TLB.Misses
		}
	}
	for _, r := range sim.Results() {
		note := ""
		if r.Spec.Coalesce != 0 {
			note = fmt.Sprintf("  (coalescing factor %.2f — hashed placement offers no runs)", r.CoalescingFactor)
		} else if r.Spec.Arity != 0 && vanilla > 0 {
			note = fmt.Sprintf("  (−%.1f%% vs vanilla)", 100*(1-float64(r.TLB.Misses)/float64(vanilla)))
		}
		fmt.Printf("  %-9s %9d misses%s\n", r.Spec.Label(), r.TLB.Misses, note)
	}
	fmt.Printf("\n(%d references; Zipf skew keeps hot buckets cached, so misses come\n", refs)
	fmt.Println("from the long tail of values — reach, not associativity, is the limit.)")

	// Why not just huge pages? The fragmentation table.
	fmt.Println()
	fmt.Println("Huge pages vs fragmentation (50% of memory free, varying contiguity):")
	rows, err := mosaic.Fragmentation(mosaic.FragmentationOptions{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  %-18s %-12s %-18s %-14s\n", "freed in chunks of", "huge-backed", "compaction copies", "mosaic-backed")
	for _, r := range rows {
		comp := fmt.Sprintf("%d", r.CompactionCopies)
		if r.CompactionCopies < 0 {
			comp = "infeasible"
		}
		fmt.Printf("  %-18s %-12s %-18s %-14s\n",
			fmt.Sprintf("%d KiB", (1<<r.ChunkOrder)*4),
			fmt.Sprintf("%.0f%%", r.HugeBackedPct),
			comp,
			fmt.Sprintf("%.0f%%", r.MosaicBackedPct))
	}
	fmt.Println()
	fmt.Println("A long-running cache node fragments toward the bottom rows, where huge")
	fmt.Println("pages deliver nothing without paying thousands of page copies. Mosaic's")
	fmt.Println("column never moves — which is the paper's thesis in one table.")
}
