// Shared memory via location IDs: the §2.5 extension.
//
// Plain mosaic hashes (ASID, VPN), so two address spaces can never share a
// frame — their candidate sets are disjoint. The paper's proposed fix gives
// each shared region a location ID and hashes (location ID, index) instead;
// every mapping of the region then resolves to the same frames and the same
// CPFNs, so the TLB entries are identical too. This example demonstrates
// cross-process shared memory and duplicate in-process mappings built on
// that mechanism.
//
// Run with: go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	sys, err := mosaic.NewSystem(mosaic.SystemConfig{
		Frames: 4096,
		Mode:   mosaic.ModeMosaic,
		Seed:   9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 16-page shared region — think of it as a shared buffer pool
	// segment or a shared library's data.
	region, err := sys.CreateSharedRegion(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Created shared region with location ID %d (%d pages)\n\n", region.ID(), region.Len())

	// Process 1 maps it at VPN 0x7f0000; process 2 at a completely
	// different VPN, 0x123. Process 1 also maps it a second time (a
	// duplicate mmap) at VPN 0x900.
	must(sys.MapShared(1, 0x7f0000, region))
	must(sys.MapShared(2, 0x123, region))
	must(sys.MapShared(1, 0x900, region))

	// First touch from process 1 faults the page in; everyone else hits.
	sys.Touch(1, 0x7f0000, true)

	p1, _ := sys.Translate(1, 0x7f0000)
	p2, _ := sys.Translate(2, 0x123)
	p3, _ := sys.Translate(1, 0x900)
	c1, _ := sys.CPFNFor(1, 0x7f0000)
	c2, _ := sys.CPFNFor(2, 0x123)

	fmt.Println("Page 0 of the region, seen through three mappings:")
	fmt.Printf("  ASID 1 @ VPN %#x: PFN %d, CPFN %d\n", 0x7f0000, p1, c1)
	fmt.Printf("  ASID 2 @ VPN %#x: PFN %d, CPFN %d\n", 0x123, p2, c2)
	fmt.Printf("  ASID 1 @ VPN %#x: PFN %d (duplicate mapping)\n", 0x900, p3)
	if p1 != p2 || p2 != p3 {
		log.Fatal("sharing broken: mappings disagree on the frame")
	}
	if c1 != c2 {
		log.Fatal("sharing broken: mappings disagree on the CPFN")
	}
	fmt.Println("  -> one frame, one CPFN, three mappings. The TLB entry is shareable.")
	fmt.Println()

	// Residency accounting: 16 pages mapped three times use at most 16
	// frames.
	for i := mosaic.VPN(0); i < 16; i++ {
		sys.Touch(2, 0x123+i, false)
	}
	fmt.Printf("After touching all 16 pages: %d frames in use (not %d).\n\n", sys.Used(), 3*16)

	// Teardown is reference-counted: the frames outlive the first unmaps
	// and are released with the last one.
	must(sys.UnmapShared(1, 0x7f0000, region))
	must(sys.UnmapShared(1, 0x900, region))
	fmt.Printf("After ASID 1 unmaps both of its views: %d frames still in use.\n", sys.Used())
	must(sys.UnmapShared(2, 0x123, region))
	fmt.Printf("After the last unmap: %d frames in use.\n", sys.Used())

	fmt.Println()
	fmt.Println("Contrast with private pages: the same VPN in two address spaces gets")
	fmt.Println("disjoint candidate frames, because placement hashes (ASID, VPN):")
	sys.Touch(7, 0x5000, true)
	sys.Touch(8, 0x5000, true)
	q1, _ := sys.Translate(7, 0x5000)
	q2, _ := sys.Translate(8, 0x5000)
	fmt.Printf("  ASID 7 VPN 0x5000 -> PFN %d;  ASID 8 VPN 0x5000 -> PFN %d\n", q1, q2)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
