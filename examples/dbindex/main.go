// Database index: point lookups and range scans on a B+ tree.
//
// Index lookups touch one page per tree level with no locality between
// levels — the reason databases care about TLB reach (and why many of them
// tell operators to disable transparent huge pages rather than pay
// defragmentation stalls; see §5.1). Mosaic pages widen reach without any
// defragmentation, so the index wins without the operational hazard.
//
// Run with: go run ./examples/dbindex
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	const footprint = 48 << 20
	idx, err := mosaic.NewWorkload("btree", footprint, 11)
	if err != nil {
		log.Fatal(err)
	}

	geom := mosaic.TLBGeometry{Entries: 256, Ways: 8}
	sim, err := mosaic.NewSimulator(mosaic.SimConfig{
		Frames: 1 << 17,
		Specs: []mosaic.TLBSpec{
			{Geometry: geom},
			{Geometry: geom, Arity: 4},
			{Geometry: geom, Arity: 8},
		},
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("B+ tree index (%d MiB of 4 KiB nodes), bulk load + random point lookups\n", footprint>>20)
	fmt.Printf("TLB: %s\n\n", geom)
	refs := mosaic.RunLimited(idx, sim, 16_000_000)

	fmt.Printf("%-9s %12s %16s %16s\n", "Design", "TLB misses", "entry misses", "sub-page misses")
	for _, r := range sim.Results() {
		fmt.Printf("%-9s %12d %16d %16d\n",
			r.Spec.Label(), r.TLB.Misses, r.TLB.EntryMisses, r.TLB.SubMisses)
	}

	fmt.Println()
	fmt.Printf("(%d references; a lookup descends ~3 levels = ~3 pages, so the index's\n", refs)
	fmt.Println("hot set is its upper levels — which mosaic entries cover 4-8× more of.)")
	fmt.Println()
	fmt.Println("Sub-page misses happen when a mosaic entry is resident but the specific")
	fmt.Println("4 KiB sub-page was not yet mapped; the walk refills the whole table of")
	fmt.Println("contents, so a mosaic page's remaining sub-pages then hit for free —")
	fmt.Println("virtual locality converted into reach, with zero physical contiguity.")
}
