// Memory pressure: what mosaic's mapping constraints cost when RAM runs out.
//
// The worry with constrained (low-associativity) placement is early or
// excessive swapping. This example oversubscribes a small memory with the
// XSBench workload and compares three regimes — the Linux-like baseline,
// mosaic with Horizon LRU, and mosaic with the ghost mechanism disabled —
// reporting when each starts to swap and how much I/O it performs (§4.2,
// §4.3 of the paper).
//
// Run with: go run ./examples/memorypressure
package main

import (
	"fmt"
	"log"

	"mosaic"
)

const (
	memoryMiB    = 16
	footprintMiB = 20 // 1.25× memory
	maxRefs      = 10_000_000
	seed         = 5
)

func main() {
	// Everything below shares these dimensions.
	fmt.Printf("XSBench with a %d MiB working set in %d MiB of memory (%d refs)\n\n",
		footprintMiB, memoryMiB, maxRefs)
	fmt.Printf("%-28s %18s %14s %12s %10s\n",
		"Regime", "swap onset (util)", "page-outs", "page-ins", "ghosts")

	run(mosaic.SystemConfig{Mode: mosaic.ModeVanilla}, "Linux-like (two-list LRU)")
	run(mosaic.SystemConfig{Mode: mosaic.ModeMosaic}, "Mosaic (Horizon LRU)")
	run(mosaic.SystemConfig{Mode: mosaic.ModeMosaic, DisableHorizon: true},
		"Mosaic (no ghosts, naive)")

	fmt.Println()
	fmt.Println("Mosaic's constraints do not move the swap onset meaningfully: conflicts")
	fmt.Println("only appear once memory is ~98% full, at which point the Linux baseline")
	fmt.Println("is about to swap anyway (its watermarks fire at ~99.2%). Ghost pages then")
	fmt.Println("let Horizon LRU keep memory ~fully utilized while evicting cold pages.")
}

func run(cfg mosaic.SystemConfig, label string) {
	cfg.Frames = memoryMiB << 20 / mosaic.PageSize
	cfg.Seed = seed
	sys, err := mosaic.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mosaic.NewWorkload("xsbench", footprintMiB<<20, seed)
	if err != nil {
		log.Fatal(err)
	}
	onset := -1.0
	mosaic.RunLimited(w, mosaic.SinkFunc(func(va uint64, write bool) {
		sys.TouchVA(1, va, write)
		if onset < 0 && sys.Device().PageOuts() > 0 {
			onset = sys.Utilization()
		}
	}), maxRefs)
	onsetStr := "never"
	if onset >= 0 {
		onsetStr = fmt.Sprintf("%.2f%%", 100*onset)
	}
	fmt.Printf("%-28s %18s %14d %12d %10d\n",
		label, onsetStr, sys.Device().PageOuts(), sys.Device().PageIns(), sys.GhostCount())
}
