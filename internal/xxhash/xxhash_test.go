package xxhash

import (
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

// Reference vectors computed with the canonical xxHash implementation.
var vectors = []struct {
	input string
	seed  uint64
	want  uint64
}{
	{"", 0, 0xef46db3751d8e999},
	{"a", 0, 0xd24ec4f1a98c6e5b},
	{"as", 0, 0x1c330fb2d66be179},
	{"asd", 0, 0x631c37ce72a97393},
	{"asdf", 0, 0x415872f599cea71e},
	{"Call me Ishmael. Some years ago--never mind how long precisely-", 0, 0x02a2e85470d6fd96},
}

func TestSum64Vectors(t *testing.T) {
	for _, v := range vectors {
		if got := Sum64([]byte(v.input), v.seed); got != v.want {
			t.Errorf("Sum64(%q, %d) = %#016x, want %#016x", v.input, v.seed, got, v.want)
		}
	}
}

func TestSum64SeedSensitivity(t *testing.T) {
	b := []byte("mosaic pages")
	if Sum64(b, 1) == Sum64(b, 2) {
		t.Error("different seeds produced identical hashes")
	}
}

func TestSum64AllLengths(t *testing.T) {
	// Exercise every length-dependent code path (tail handling, 32-byte
	// stripes) and check hashes are distinct across lengths.
	base := strings.Repeat("0123456789abcdef", 8)
	seen := make(map[uint64]int)
	for n := 0; n <= len(base); n++ {
		h := Sum64([]byte(base[:n]), 42)
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[h] = n
	}
}

func TestSum64Uint64MatchesSum64(t *testing.T) {
	f := func(x, seed uint64) bool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], x)
		return Sum64Uint64(x, seed) == Sum64(buf[:], seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum64PairMatchesSum64(t *testing.T) {
	f := func(x, y, seed uint64) bool {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], x)
		binary.LittleEndian.PutUint64(buf[8:], y)
		return Sum64Pair(x, y, seed) == Sum64(buf[:], seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum64UniformBuckets(t *testing.T) {
	// Hash sequential integers (the VPN pattern placement sees) into 64
	// buckets; no bucket should deviate wildly from the mean.
	const n, buckets = 1 << 16, 64
	counts := make([]int, buckets)
	for i := uint64(0); i < n; i++ {
		counts[Sum64Uint64(i, 7)%buckets]++
	}
	mean := float64(n) / buckets
	for b, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.8 || ratio > 1.2 {
			t.Errorf("bucket %d has %d entries (%.0f%% of mean)", b, c, 100*ratio)
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	p := NewPlacement(99)
	q := NewPlacement(99)
	for fn := 0; fn < 7; fn++ {
		if p.Hash(1, 0x1234, fn) != q.Hash(1, 0x1234, fn) {
			t.Fatalf("placement hash not deterministic for fn=%d", fn)
		}
	}
}

func TestPlacementFunctionIndependence(t *testing.T) {
	p := NewPlacement(99)
	seen := make(map[uint64]int)
	for fn := 0; fn < 7; fn++ {
		h := p.Hash(1, 0x1234, fn)
		if prev, dup := seen[h]; dup {
			t.Fatalf("functions %d and %d collide on the same key", prev, fn)
		}
		seen[h] = fn
	}
}

func TestPlacementASIDSensitivity(t *testing.T) {
	p := NewPlacement(99)
	if p.Hash(1, 0x1234, 0) == p.Hash(2, 0x1234, 0) {
		t.Error("distinct ASIDs hash identically; address spaces would share constraints")
	}
}

func BenchmarkSum64Uint64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += Sum64Uint64(uint64(i), 1)
	}
	_ = acc
}

func BenchmarkSum64_64B(b *testing.B) {
	buf := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum64(buf, 1)
	}
}
