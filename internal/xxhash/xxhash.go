// Package xxhash implements the 64-bit variant of the xxHash algorithm
// (XXH64). The paper's Linux prototype uses xxHash — "a fast hash algorithm
// available in the mainline Linux kernel" — to map (ASID, VPN) pairs to
// iceberg buckets; this package is a from-scratch, stdlib-only port of the
// same algorithm so placement decisions can mirror the prototype's.
package xxhash

import "math/bits"

const (
	prime1 uint64 = 0x9E3779B185EBCA87
	prime2 uint64 = 0xC2B2AE3D27D4EB4F
	prime3 uint64 = 0x165667B19E3779F9
	prime4 uint64 = 0x85EBCA77C2B2AE63
	prime5 uint64 = 0x27D4EB2F165667C5
)

// Sum64 computes the XXH64 hash of b with the given seed.
func Sum64(b []byte, seed uint64) uint64 {
	n := len(b)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(b) >= 32 {
			v1 = round(v1, le64(b[0:8]))
			v2 = round(v2, le64(b[8:16]))
			v3 = round(v3, le64(b[16:24]))
			v4 = round(v4, le64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(b) >= 8 {
		h ^= round(0, le64(b[0:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(le32(b[0:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}

	return avalanche(h)
}

// Sum64Uint64 hashes a single 64-bit word. It is equivalent to Sum64 of the
// word's little-endian byte encoding but avoids the buffer round trip; the
// placement path hashes one word per lookup, so this is the hot entry point.
func Sum64Uint64(x, seed uint64) uint64 {
	h := seed + prime5 + 8
	h ^= round(0, x)
	h = bits.RotateLeft64(h, 27)*prime1 + prime4
	return avalanche(h)
}

// Sum64Pair hashes two 64-bit words, equivalent to Sum64 of their
// concatenated little-endian encodings.
func Sum64Pair(x, y, seed uint64) uint64 {
	h := seed + prime5 + 16
	h ^= round(0, x)
	h = bits.RotateLeft64(h, 27)*prime1 + prime4
	h ^= round(0, y)
	h = bits.RotateLeft64(h, 27)*prime1 + prime4
	return avalanche(h)
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
