package xxhash

import "mosaic/internal/core"

// Placement adapts XXH64 to core.PlacementHash, mirroring the paper's Linux
// prototype, which uses xxHash to map (ASID, VPN) pairs to iceberg buckets.
// Each placement function fn gets an independent seed derived from the
// construction seed.
type Placement struct {
	seed uint64
}

// NewPlacement builds an xxHash-based placement hash.
func NewPlacement(seed uint64) *Placement { return &Placement{seed: seed} }

// Hash implements core.PlacementHash.
func (p *Placement) Hash(asid core.ASID, vpn core.VPN, fn int) uint64 {
	return Sum64Pair(uint64(asid), uint64(vpn), p.seed+uint64(fn)*0x9E3779B97F4A7C15)
}
