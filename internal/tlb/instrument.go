package tlb

import "mosaic/internal/obs"

// Record mirrors the final hit/miss breakdown into a metrics registry under
// the given dotted prefix (e.g. "tlb.mosaic_4"), producing <prefix>.hit,
// <prefix>.miss, <prefix>.miss.entry, <prefix>.miss.sub, <prefix>.evict,
// and a <prefix>.miss_rate gauge. The simulator calls this once per unit
// when a run finishes; per-lookup counting stays in the Stats struct fields
// (plain integer adds, the hot path).
func (s Stats) Record(r *obs.Registry, prefix string) {
	r.Counter(prefix + ".hit").Add(s.Hits)
	r.Counter(prefix + ".miss").Add(s.Misses)
	r.Counter(prefix + ".miss.entry").Add(s.EntryMisses)
	r.Counter(prefix + ".miss.sub").Add(s.SubMisses)
	r.Counter(prefix + ".evict").Add(s.Evictions)
	r.Gauge(prefix + ".miss_rate").Set(s.MissRate())
}
