package tlb

import (
	"testing"

	"mosaic/internal/core"
)

func TestMosaic4ToCSmallerThanPFN(t *testing.T) {
	// §3.1: "This yields ToCs of 28 bits, which mean that TLB entries are
	// smaller than the 36-bit PFNs stored in most current x86 TLBs."
	g := Geometry{Entries: 1024, Ways: 8}
	toc := 4 * core.DefaultGeometry.CPFNBits()
	if toc != 28 {
		t.Fatalf("arity-4 ToC = %d bits, want 28", toc)
	}
	if toc >= 36 {
		t.Fatal("ToC not smaller than a 36-bit PFN")
	}
	// Whole-entry comparison: the mosaic entry saves the PFN-vs-ToC
	// difference (8 bits) AND two tag bits (the MVPN is 2 bits shorter
	// than the VPN), so it is 10 bits smaller net.
	vb := VanillaEntryBits(g, BitsConfig{})
	mb := MosaicEntryBits(g, 4, core.DefaultGeometry, BitsConfig{})
	if mb >= vb {
		t.Errorf("Mosaic-4 entry (%d bits) not smaller than vanilla (%d bits)", mb, vb)
	}
	if vb-mb != (36-28)+2 {
		t.Errorf("entry delta = %d bits, want 10 (8 payload + 2 tag)", vb-mb)
	}
}

func TestVanillaEntryBitsComposition(t *testing.T) {
	// 1024-entry 8-way: 128 sets → 7 index bits off the 36-bit tag.
	g := Geometry{Entries: 1024, Ways: 8}
	want := (36 - 7) + 36 + 1 + 12
	if got := VanillaEntryBits(g, BitsConfig{}); got != want {
		t.Errorf("VanillaEntryBits = %d, want %d", got, want)
	}
	// Fully associative: no index bits.
	gFull := Geometry{Entries: 1024, Ways: 1024}
	if got := VanillaEntryBits(gFull, BitsConfig{}); got != 36+36+1+12 {
		t.Errorf("fully-associative VanillaEntryBits = %d", got)
	}
}

func TestMosaicEntryBitsGrowsLinearly(t *testing.T) {
	g := Geometry{Entries: 1024, Ways: 8}
	prev := 0
	for _, a := range []int{4, 8, 16, 32, 64} {
		b := MosaicEntryBits(g, a, core.DefaultGeometry, BitsConfig{})
		if b <= prev {
			t.Errorf("arity %d entry bits %d not increasing", a, b)
		}
		prev = b
	}
	// Arity 64: 64×7 = 448 payload bits — wide but "plausible without
	// prohibitive costs" per §1; confirm the number.
	b64 := MosaicEntryBits(g, 64, core.DefaultGeometry, BitsConfig{})
	tag := 36 - 6 - 7 // VPN − arity − index
	if b64 != tag+448+1+12 {
		t.Errorf("arity-64 entry = %d bits", b64)
	}
}

func TestReachPerBitImprovesWithArity(t *testing.T) {
	g := Geometry{Entries: 1024, Ways: 8}
	rows := BitsTable(g, []int{4, 16, 64}, core.DefaultGeometry, BitsConfig{})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Design != "Vanilla" {
		t.Fatalf("first row = %s", rows[0].Design)
	}
	prev := rows[0].ReachPerBit
	for _, r := range rows[1:] {
		if r.ReachPerBit <= prev {
			t.Errorf("%s: reach/bit %f not above previous %f", r.Design, r.ReachPerBit, prev)
		}
		prev = r.ReachPerBit
	}
	// Vanilla 1024-entry reach = 4 MiB.
	if rows[0].ReachMiB != 4 {
		t.Errorf("vanilla reach = %f MiB", rows[0].ReachMiB)
	}
	if rows[3].ReachMiB != 256 {
		t.Errorf("mosaic-64 reach = %f MiB", rows[3].ReachMiB)
	}
	// Mosaic-4 entries are smaller than vanilla's.
	if rows[1].VsVanillaPct >= 0 {
		t.Errorf("Mosaic-4 entry size vs vanilla = %+.1f%%, want negative", rows[1].VsVanillaPct)
	}
}

func TestMosaicEntryBitsBadArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity should panic")
		}
	}()
	MosaicEntryBits(Geometry{Entries: 16, Ways: 4}, 3, core.DefaultGeometry, BitsConfig{})
}
