package tlb

import (
	"testing"

	"mosaic/internal/core"
)

func contiguousNeighbours(basePFN core.PFN, n int) []NeighbourPFN {
	out := make([]NeighbourPFN, n)
	for i := range out {
		out[i] = NeighbourPFN{PFN: basePFN + core.PFN(i), OK: true}
	}
	return out
}

func TestCoalescedContiguousRunOneEntry(t *testing.T) {
	c := NewCoalesced(Geometry{Entries: 16, Ways: 4}, 4)
	// Pages 0..3 physically contiguous at 100..103: one fill covers all.
	c.Insert(0, 100, contiguousNeighbours(100, 4))
	for vpn := core.VPN(0); vpn < 4; vpn++ {
		pfn, ok := c.Lookup(vpn)
		if !ok || pfn != core.PFN(100+vpn) {
			t.Fatalf("Lookup(%d) = %d,%v", vpn, pfn, ok)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("contiguous run used %d entries", c.Len())
	}
	if c.CoalescedFills() != 1 {
		t.Fatalf("CoalescedFills = %d", c.CoalescedFills())
	}
	if got := c.AvgRunLength(); got != 4 {
		t.Fatalf("AvgRunLength = %f", got)
	}
}

func TestCoalescedScatteredNoBenefit(t *testing.T) {
	c := NewCoalesced(Geometry{Entries: 16, Ways: 4}, 4)
	// Scattered PFNs (what a hashed allocator produces): nothing coalesces.
	scattered := []NeighbourPFN{{500, true}, {9, true}, {307, true}, {42, true}}
	c.Insert(0, 500, scattered)
	if _, ok := c.Lookup(0); !ok {
		t.Fatal("inserted page misses")
	}
	if _, ok := c.Lookup(1); ok {
		t.Fatal("non-contiguous neighbour hit")
	}
	if c.CoalescedFills() != 0 {
		t.Fatalf("CoalescedFills = %d for scattered PFNs", c.CoalescedFills())
	}
	// Each page of the group needs its own fill; entries overwrite within
	// the group slot, so coverage of the previous page is rebuilt from the
	// neighbour list. A second fill for VPN 1 re-anchors the entry.
	c.Insert(1, 9, scattered)
	if pfn, ok := c.Lookup(1); !ok || pfn != 9 {
		t.Fatalf("Lookup(1) = %d,%v", pfn, ok)
	}
}

func TestCoalescedPartialRun(t *testing.T) {
	c := NewCoalesced(Geometry{Entries: 16, Ways: 4}, 4)
	// Pages 0,1 contiguous; page 2 elsewhere; page 3 unmapped.
	nb := []NeighbourPFN{{200, true}, {201, true}, {77, true}, {0, false}}
	c.Insert(0, 200, nb)
	if pfn, ok := c.Lookup(1); !ok || pfn != 201 {
		t.Fatalf("contiguous neighbour: %d,%v", pfn, ok)
	}
	if _, ok := c.Lookup(2); ok {
		t.Fatal("discontiguous page hit")
	}
	if _, ok := c.Lookup(3); ok {
		t.Fatal("unmapped page hit")
	}
	st := c.Stats()
	if st.SubMisses != 2 {
		t.Fatalf("sub-miss accounting: %+v", st)
	}
}

func TestCoalescedRunAnchoring(t *testing.T) {
	c := NewCoalesced(Geometry{Entries: 16, Ways: 4}, 4)
	// Fill from the middle of a group: vpn 6 (group 4..7, offset 2) with
	// PFNs 300..303 backing 4..7.
	nb := contiguousNeighbours(300, 4)
	c.Insert(6, 302, nb)
	for i := core.VPN(0); i < 4; i++ {
		pfn, ok := c.Lookup(4 + i)
		if !ok || pfn != core.PFN(300+i) {
			t.Fatalf("Lookup(%d) = %d,%v", 4+i, pfn, ok)
		}
	}
}

func TestCoalescedInvalidate(t *testing.T) {
	c := NewCoalesced(Geometry{Entries: 16, Ways: 4}, 4)
	c.Insert(0, 100, contiguousNeighbours(100, 4))
	if !c.Invalidate(2) {
		t.Fatal("Invalidate of covered page = false")
	}
	if c.Invalidate(2) {
		t.Fatal("double Invalidate = true")
	}
	if _, ok := c.Lookup(2); ok {
		t.Fatal("invalidated page hits")
	}
	if _, ok := c.Lookup(1); !ok {
		t.Fatal("sibling lost on partial invalidation")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Clearing the rest removes the entry.
	c.Invalidate(0)
	c.Invalidate(1)
	c.Invalidate(3)
	if c.Len() != 0 {
		t.Fatalf("Len after full invalidation = %d", c.Len())
	}
}

func TestCoalescedLRUWholeEntries(t *testing.T) {
	// 2-entry fully-associative: third group evicts the LRU whole entry.
	c := NewCoalesced(Geometry{Entries: 2, Ways: 2}, 4)
	c.Insert(0, 100, contiguousNeighbours(100, 4))
	c.Insert(4, 200, contiguousNeighbours(200, 4))
	c.Lookup(0) // group 0 MRU
	c.Insert(8, 300, contiguousNeighbours(300, 4))
	if _, ok := c.Lookup(5); ok {
		t.Fatal("LRU group survived")
	}
	if _, ok := c.Lookup(1); !ok {
		t.Fatal("MRU group evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestCoalescedValidation(t *testing.T) {
	for _, run := range []int{0, 3, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("run length %d should panic", run)
				}
			}()
			NewCoalesced(Geometry{Entries: 16, Ways: 4}, run)
		}()
	}
}

func TestCoalescedVsMosaicOnScatteredPlacement(t *testing.T) {
	// The paper's argument in one test: over a hash-scattered physical
	// layout, a coalescing TLB degenerates to one page per entry while a
	// mosaic TLB still packs 4 — so on a sequential scan of 2× TLB reach,
	// mosaic misses ~4× less.
	geom := Geometry{Entries: 64, Ways: 8}
	co := NewCoalesced(geom, 4)
	mo := NewMosaic(geom, 4)
	pfnOf := func(vpn core.VPN) core.PFN { // pseudo-hashed placement
		return core.PFN((uint64(vpn)*2654435761 + 17) % (1 << 20))
	}
	const pages = 128
	for round := 0; round < 10; round++ {
		for vpn := core.VPN(0); vpn < pages; vpn++ {
			if _, ok := co.Lookup(vpn); !ok {
				group := vpn &^ 3
				var nb []NeighbourPFN
				for i := core.VPN(0); i < 4; i++ {
					nb = append(nb, NeighbourPFN{PFN: pfnOf(group + i), OK: true})
				}
				co.Insert(vpn, pfnOf(vpn), nb)
			}
			if _, ok := mo.Lookup(vpn); !ok {
				toc := ToC{}
				for i := 0; i < 4; i++ {
					toc = append(toc, core.CPFN(i))
				}
				mo.Insert(vpn, toc)
			}
		}
	}
	coMiss, moMiss := co.Stats().Misses, mo.Stats().Misses
	if moMiss*3 > coMiss {
		t.Errorf("mosaic misses %d not ≪ coalesced misses %d under scattered placement", moMiss, coMiss)
	}
	if co.AvgRunLength() > 1.05 {
		t.Errorf("coalescing found contiguity in a hashed layout: %.2f", co.AvgRunLength())
	}
	t.Logf("scattered placement: coalesced=%d mosaic=%d misses (coalescing factor %.2f)",
		coMiss, moMiss, co.AvgRunLength())
}
