package tlb

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
)

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		g  Geometry
		ok bool
	}{
		{Geometry{1024, 1}, true},
		{Geometry{1024, 2}, true},
		{Geometry{1024, 8}, true},
		{Geometry{1024, 1024}, true},
		{Geometry{0, 1}, false},
		{Geometry{1024, 0}, false},
		{Geometry{1024, 3}, false}, // 1024/3 not integral
		{Geometry{96, 2}, false},   // 48 sets: not a power of two
		{Geometry{1024, -1}, false},
	}
	for _, tc := range cases {
		if err := tc.g.Validate(); (err == nil) != tc.ok {
			t.Errorf("%+v: Validate = %v, want ok=%v", tc.g, err, tc.ok)
		}
	}
	if (Geometry{1024, 8}).Sets() != 128 {
		t.Error("Sets() wrong")
	}
}

func TestGeometryString(t *testing.T) {
	if got := (Geometry{1024, 1}).String(); got != "1024-entry direct-mapped" {
		t.Errorf("direct: %q", got)
	}
	if got := (Geometry{1024, 1024}).String(); got != "1024-entry fully-associative" {
		t.Errorf("full: %q", got)
	}
	if got := (Geometry{1024, 8}).String(); got != "1024-entry 8-way" {
		t.Errorf("8-way: %q", got)
	}
}

func TestVanillaHitMiss(t *testing.T) {
	tl := NewVanilla(Geometry{Entries: 16, Ways: 4})
	if _, ok := tl.Lookup(100); ok {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(100, 7)
	pfn, ok := tl.Lookup(100)
	if !ok || pfn != 7 {
		t.Fatalf("Lookup = %d,%v", pfn, ok)
	}
	st := tl.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.EntryMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Lookups() != 2 || st.MissRate() != 0.5 {
		t.Errorf("lookups=%d missrate=%f", st.Lookups(), st.MissRate())
	}
}

func TestVanillaLRUWithinSet(t *testing.T) {
	// 4 entries, 2 ways → 2 sets. VPNs 0,2,4 all map to set 0.
	tl := NewVanilla(Geometry{Entries: 4, Ways: 2})
	tl.Insert(0, 10)
	tl.Insert(2, 12)
	tl.Lookup(0) // 0 is now MRU; 2 is LRU
	tl.Insert(4, 14)
	if _, ok := tl.Lookup(2); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	if _, ok := tl.Lookup(0); !ok {
		t.Error("MRU entry 0 was evicted")
	}
	if _, ok := tl.Lookup(4); !ok {
		t.Error("new entry 4 missing")
	}
	if tl.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", tl.Stats().Evictions)
	}
}

func TestVanillaSetIsolation(t *testing.T) {
	// Direct-mapped: VPNs that differ in the index bits cannot conflict.
	tl := NewVanilla(Geometry{Entries: 8, Ways: 1})
	for v := core.VPN(0); v < 8; v++ {
		tl.Insert(v, core.PFN(v+100))
	}
	for v := core.VPN(0); v < 8; v++ {
		if pfn, ok := tl.Lookup(v); !ok || pfn != core.PFN(v+100) {
			t.Fatalf("entry %d evicted or wrong: %d,%v", v, pfn, ok)
		}
	}
	// Conflicting VPN evicts only its own set.
	tl.Insert(8, 200) // set 0
	if _, ok := tl.Lookup(0); ok {
		t.Error("direct-mapped conflict did not evict")
	}
	if _, ok := tl.Lookup(1); !ok {
		t.Error("unrelated set was disturbed")
	}
}

func TestVanillaInvalidate(t *testing.T) {
	tl := NewVanilla(Geometry{Entries: 16, Ways: 16})
	tl.Insert(5, 50)
	if !tl.Invalidate(5) {
		t.Fatal("Invalidate of present entry = false")
	}
	if tl.Invalidate(5) {
		t.Fatal("double Invalidate = true")
	}
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("hit after invalidate")
	}
	if tl.Len() != 0 {
		t.Fatalf("Len = %d", tl.Len())
	}
	// Slot is reusable.
	tl.Insert(6, 60)
	if tl.Len() != 1 {
		t.Fatalf("Len after reuse = %d", tl.Len())
	}
}

func TestVanillaUpdateInPlace(t *testing.T) {
	tl := NewVanilla(Geometry{Entries: 4, Ways: 4})
	tl.Insert(1, 10)
	tl.Insert(1, 11)
	if tl.Len() != 1 {
		t.Fatalf("re-insert duplicated entry: Len = %d", tl.Len())
	}
	if pfn, _ := tl.Lookup(1); pfn != 11 {
		t.Fatalf("payload not updated: %d", pfn)
	}
}

func TestMosaicHitRequiresValidSubEntry(t *testing.T) {
	tm := NewMosaic(Geometry{Entries: 16, Ways: 4}, 4)
	toc := tm.InvalidToC()
	toc[1] = 9
	tm.Insert(4, toc) // VPNs 4..7 (MVPN 1)
	if _, ok := tm.Lookup(5); !ok {
		t.Error("miss on valid sub-entry")
	}
	if _, ok := tm.Lookup(6); ok {
		t.Error("hit on invalid sub-entry")
	}
	st := tm.Stats()
	if st.Hits != 1 || st.SubMisses != 1 || st.EntryMisses != 0 {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := tm.Lookup(100); ok {
		t.Error("hit on absent entry")
	}
	if tm.Stats().EntryMisses != 1 {
		t.Errorf("entry miss not counted: %+v", tm.Stats())
	}
}

func TestMosaicSharedEntryAcrossSubpages(t *testing.T) {
	// One mosaic entry covers arity virtually-contiguous pages — the
	// compression the paper's Figure 1 illustrates.
	tm := NewMosaic(Geometry{Entries: 4, Ways: 4}, 4)
	toc := ToC{1, 2, 3, 4}
	tm.Insert(0, toc)
	for vpn := core.VPN(0); vpn < 4; vpn++ {
		cpfn, ok := tm.Lookup(vpn)
		if !ok || cpfn != core.CPFN(vpn+1) {
			t.Fatalf("Lookup(%d) = %d,%v", vpn, cpfn, ok)
		}
	}
	if tm.Len() != 1 {
		t.Fatalf("4 sub-pages consumed %d entries", tm.Len())
	}
}

func TestMosaicReach(t *testing.T) {
	tm := NewMosaic(Geometry{Entries: 1024, Ways: 8}, 4)
	tv := NewVanilla(Geometry{Entries: 1024, Ways: 8})
	if tm.Reach() != 4*tv.Reach() {
		t.Errorf("mosaic reach %d, vanilla %d: want ×4", tm.Reach(), tv.Reach())
	}
	if tv.Reach() != 1024*4096 {
		t.Errorf("vanilla reach = %d", tv.Reach())
	}
}

func TestMosaicInvalidateSub(t *testing.T) {
	tm := NewMosaic(Geometry{Entries: 16, Ways: 4}, 4)
	tm.Insert(0, ToC{1, 2, 3, 4})
	if !tm.InvalidateSub(2) {
		t.Fatal("InvalidateSub of valid sub-entry = false")
	}
	if tm.InvalidateSub(2) {
		t.Fatal("double InvalidateSub = true")
	}
	// Entry itself survives; other sub-pages still hit.
	if _, ok := tm.Lookup(1); !ok {
		t.Error("sibling sub-page lost after sub-invalidation")
	}
	if _, ok := tm.Lookup(2); ok {
		t.Error("invalidated sub-page still hits")
	}
	if tm.Len() != 1 {
		t.Errorf("Len = %d; sub-invalidation must not drop the entry", tm.Len())
	}
	if !tm.InvalidateEntry(1) {
		t.Error("InvalidateEntry failed")
	}
	if tm.Len() != 0 {
		t.Errorf("Len after entry invalidation = %d", tm.Len())
	}
	if tm.InvalidateSub(1) {
		t.Error("InvalidateSub on absent entry = true")
	}
}

func TestMosaicInsertCopiesToC(t *testing.T) {
	tm := NewMosaic(Geometry{Entries: 4, Ways: 4}, 4)
	toc := ToC{1, 2, 3, 4}
	tm.Insert(0, toc)
	toc[0] = 99 // caller mutation must not leak in
	if c, _ := tm.Lookup(0); c != 1 {
		t.Errorf("Insert aliases caller ToC: got %d", c)
	}
}

func TestMosaicWholeEntryEviction(t *testing.T) {
	// 2 entries, fully associative, arity 4: inserting a third mosaic page
	// evicts an entire earlier entry (all 4 sub-pages vanish together).
	tm := NewMosaic(Geometry{Entries: 2, Ways: 2}, 4)
	tm.Insert(0, ToC{1, 1, 1, 1}) // MVPN 0
	tm.Insert(4, ToC{2, 2, 2, 2}) // MVPN 1
	tm.Lookup(0)                  // MVPN 0 → MRU
	tm.Insert(8, ToC{3, 3, 3, 3}) // MVPN 2 → evicts MVPN 1
	for vpn := core.VPN(4); vpn < 8; vpn++ {
		if _, ok := tm.Lookup(vpn); ok {
			t.Fatalf("sub-page %d of evicted entry still hits", vpn)
		}
	}
	if _, ok := tm.Lookup(0); !ok {
		t.Error("MRU entry evicted instead of LRU")
	}
}

func TestMosaicBadArityPanics(t *testing.T) {
	for _, arity := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("arity %d should panic", arity)
				}
			}()
			NewMosaic(Geometry{Entries: 16, Ways: 4}, arity)
		}()
	}
}

func TestMosaicWrongToCLengthPanics(t *testing.T) {
	tm := NewMosaic(Geometry{Entries: 16, Ways: 4}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("short ToC should panic")
		}
	}()
	tm.Insert(0, ToC{1, 2})
}

func TestMosaicCoversMoreThanVanillaOnSequentialScan(t *testing.T) {
	// The headline effect: scanning a region larger than vanilla reach but
	// within mosaic reach, repeatedly, produces far fewer mosaic misses.
	const entries = 64
	gv := Geometry{Entries: entries, Ways: 8}
	tv := NewVanilla(gv)
	tm := NewMosaic(gv, 4)
	pages := entries * 2 // 2× vanilla reach, 0.5× mosaic reach
	for round := 0; round < 10; round++ {
		for v := core.VPN(0); v < core.VPN(pages); v++ {
			if _, ok := tv.Lookup(v); !ok {
				tv.Insert(v, core.PFN(v))
			}
			if _, ok := tm.Lookup(v); !ok {
				mvpn, _ := core.MosaicPage(v, 4)
				base := core.VPN(uint64(mvpn) * 4)
				toc := ToC{}
				for i := core.VPN(0); i < 4; i++ {
					toc = append(toc, core.CPFN(base+i)&0x67)
				}
				tm.Insert(v, toc)
			}
		}
	}
	vm, mm := tv.Stats().Misses, tm.Stats().Misses
	if mm*2 >= vm {
		t.Errorf("mosaic misses %d not ≪ vanilla misses %d", mm, vm)
	}
	t.Logf("sequential scan: vanilla=%d mosaic=%d misses", vm, mm)
}

func TestSetRandomizedAgainstModel(t *testing.T) {
	// Differential test of the LRU set machinery against a reference model.
	s := newSet[int](4)
	type entry struct {
		tag uint64
		val int
	}
	var model []entry // front = MRU
	find := func(tag uint64) int {
		for i := range model {
			if model[i].tag == tag {
				return i
			}
		}
		return -1
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		tag := uint64(rng.Intn(12))
		switch rng.Intn(3) {
		case 0: // get
			p, ok := s.get(tag)
			j := find(tag)
			if ok != (j >= 0) {
				t.Fatalf("get(%d) presence mismatch", tag)
			}
			if ok {
				if *p != model[j].val {
					t.Fatalf("get(%d) = %d, model %d", tag, *p, model[j].val)
				}
				e := model[j]
				model = append(model[:j], model[j+1:]...)
				model = append([]entry{e}, model...)
			}
		case 1: // insert
			v := rng.Int()
			_, evicted := s.insert(tag, v)
			j := find(tag)
			if j >= 0 {
				if evicted {
					t.Fatalf("insert of present tag %d evicted", tag)
				}
				model = append(model[:j], model[j+1:]...)
			} else if len(model) == 4 {
				if !evicted {
					t.Fatalf("insert into full set did not evict")
				}
				model = model[:3]
			}
			model = append([]entry{{tag, v}}, model...)
		case 2: // invalidate
			ok := s.invalidate(tag)
			j := find(tag)
			if ok != (j >= 0) {
				t.Fatalf("invalidate(%d) presence mismatch", tag)
			}
			if ok {
				model = append(model[:j], model[j+1:]...)
			}
		}
		if s.len() != len(model) {
			t.Fatalf("len = %d, model %d", s.len(), len(model))
		}
	}
}

func BenchmarkVanillaLookupHit(b *testing.B) {
	tl := NewVanilla(Geometry{Entries: 1024, Ways: 8})
	for v := core.VPN(0); v < 1024; v++ {
		tl.Insert(v, core.PFN(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(core.VPN(i & 1023))
	}
}

func BenchmarkMosaicLookupHit(b *testing.B) {
	tm := NewMosaic(Geometry{Entries: 1024, Ways: 8}, 4)
	toc := ToC{1, 2, 3, 4}
	for v := core.VPN(0); v < 4096; v += 4 {
		tm.Insert(v, toc)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Lookup(core.VPN(i & 4095))
	}
}

func BenchmarkVanillaFullyAssociativeLookup(b *testing.B) {
	tl := NewVanilla(Geometry{Entries: 1024, Ways: 1024})
	for v := core.VPN(0); v < 1024; v++ {
		tl.Insert(v, core.PFN(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(core.VPN(i & 2047)) // 50% miss
	}
}
