package tlb

import "mosaic/internal/core"

// Real processors split the TLB into a small, fast L1 and a larger L2
// (Table 1a's gem5 model uses a single level; Intel's Golden Cove, which
// the paper's introduction cites, has both). These hierarchies wrap two
// TLBs of the same kind: an L1 miss falls through to the L2, an L2 hit
// refills the L1, and an L2 miss goes to the page-table walker, which
// fills both levels. Misses that reach the walker are the expensive ones,
// so Stats of the L2 are the figure-of-merit; L1 stats measure the fast
// path.

// VanillaHierarchy is a two-level conventional TLB.
type VanillaHierarchy struct {
	l1, l2 *Vanilla
}

// NewVanillaHierarchy builds a two-level vanilla TLB.
func NewVanillaHierarchy(l1, l2 Geometry) *VanillaHierarchy {
	return &VanillaHierarchy{l1: NewVanilla(l1), l2: NewVanilla(l2)}
}

// L1Stats returns the first-level counters.
func (h *VanillaHierarchy) L1Stats() Stats { return h.l1.Stats() }

// L2Stats returns the second-level counters; its misses are page-table
// walks.
func (h *VanillaHierarchy) L2Stats() Stats { return h.l2.Stats() }

// Lookup translates vpn through both levels. It reports whether any level
// hit; a false return means a walk is required, after which the caller
// must Insert.
func (h *VanillaHierarchy) Lookup(vpn core.VPN) (core.PFN, bool) {
	if pfn, ok := h.l1.Lookup(vpn); ok {
		return pfn, true
	}
	if pfn, ok := h.l2.Lookup(vpn); ok {
		h.l1.Insert(vpn, pfn) // refill the fast level
		return pfn, true
	}
	return 0, false
}

// Insert fills both levels after a walk.
func (h *VanillaHierarchy) Insert(vpn core.VPN, pfn core.PFN) {
	h.l2.Insert(vpn, pfn)
	h.l1.Insert(vpn, pfn)
}

// Invalidate shoots vpn down from both levels.
func (h *VanillaHierarchy) Invalidate(vpn core.VPN) bool {
	a := h.l1.Invalidate(vpn)
	b := h.l2.Invalidate(vpn)
	return a || b
}

// MosaicHierarchy is a two-level mosaic TLB; both levels share one arity.
type MosaicHierarchy struct {
	l1, l2 *Mosaic
}

// NewMosaicHierarchy builds a two-level mosaic TLB.
func NewMosaicHierarchy(l1, l2 Geometry, arity int) *MosaicHierarchy {
	return &MosaicHierarchy{l1: NewMosaic(l1, arity), l2: NewMosaic(l2, arity)}
}

// Arity is the sub-pages per entry.
func (h *MosaicHierarchy) Arity() int { return h.l1.Arity() }

// L1Stats returns the first-level counters.
func (h *MosaicHierarchy) L1Stats() Stats { return h.l1.Stats() }

// L2Stats returns the second-level counters; its misses are walks.
func (h *MosaicHierarchy) L2Stats() Stats { return h.l2.Stats() }

// Lookup translates vpn through both levels. An L2 hit refills the L1 by
// copying the whole ToC from the L2 entry (the hardware moves the entry,
// not one sub-page).
func (h *MosaicHierarchy) Lookup(vpn core.VPN) (core.CPFN, bool) {
	if c, ok := h.l1.Lookup(vpn); ok {
		return c, true
	}
	if c, ok := h.l2.Lookup(vpn); ok {
		mvpn, _ := core.MosaicPage(vpn, h.l2.arity)
		if toc, found := h.l2.set(mvpn).peek(uint64(mvpn)); found {
			h.l1.Insert(vpn, *toc)
		}
		return c, true
	}
	return core.CPFNInvalid, false
}

// Insert fills both levels after a walk.
func (h *MosaicHierarchy) Insert(vpn core.VPN, toc ToC) {
	h.l2.Insert(vpn, toc)
	h.l1.Insert(vpn, toc)
}

// InvalidateSub clears vpn's sub-entry in both levels.
func (h *MosaicHierarchy) InvalidateSub(vpn core.VPN) bool {
	a := h.l1.InvalidateSub(vpn)
	b := h.l2.InvalidateSub(vpn)
	return a || b
}
