package tlb

import (
	"testing"

	"mosaic/internal/core"
)

func TestVanillaHierarchyFlow(t *testing.T) {
	h := NewVanillaHierarchy(Geometry{Entries: 4, Ways: 4}, Geometry{Entries: 64, Ways: 8})
	if _, ok := h.Lookup(10); ok {
		t.Fatal("hit in empty hierarchy")
	}
	h.Insert(10, 100)
	// L1 hit.
	if pfn, ok := h.Lookup(10); !ok || pfn != 100 {
		t.Fatalf("Lookup = %d,%v", pfn, ok)
	}
	if h.L1Stats().Hits != 1 {
		t.Fatalf("L1 stats %+v", h.L1Stats())
	}
	// Push 10 out of the tiny L1 with 4 other entries (same set coverage).
	for v := core.VPN(20); v < 24; v++ {
		h.Insert(v, core.PFN(v))
	}
	// 10 must still hit via L2 (and be refilled to L1).
	l2Hits := h.L2Stats().Hits
	if pfn, ok := h.Lookup(10); !ok || pfn != 100 {
		t.Fatalf("post-L1-eviction Lookup = %d,%v", pfn, ok)
	}
	if h.L2Stats().Hits != l2Hits+1 {
		t.Fatal("L2 did not serve the refill")
	}
	// Refilled: next lookup hits L1 (L2 hit count unchanged).
	if _, ok := h.Lookup(10); !ok {
		t.Fatal("refilled entry missed")
	}
	if h.L2Stats().Hits != l2Hits+1 {
		t.Fatal("refill did not land in L1")
	}
}

func TestVanillaHierarchyInvalidate(t *testing.T) {
	h := NewVanillaHierarchy(Geometry{Entries: 4, Ways: 4}, Geometry{Entries: 64, Ways: 8})
	h.Insert(5, 50)
	if !h.Invalidate(5) {
		t.Fatal("Invalidate = false")
	}
	if _, ok := h.Lookup(5); ok {
		t.Fatal("hit after invalidate (stale in one level?)")
	}
	if h.Invalidate(5) {
		t.Fatal("double Invalidate = true")
	}
}

func TestMosaicHierarchyFlow(t *testing.T) {
	h := NewMosaicHierarchy(Geometry{Entries: 2, Ways: 2}, Geometry{Entries: 64, Ways: 8}, 4)
	if h.Arity() != 4 {
		t.Fatalf("Arity = %d", h.Arity())
	}
	h.Insert(0, ToC{1, 2, 3, 4})
	if c, ok := h.Lookup(2); !ok || c != 3 {
		t.Fatalf("Lookup = %d,%v", c, ok)
	}
	// Evict MVPN 0 from the 2-entry L1.
	h.Insert(4, ToC{5, 5, 5, 5})
	h.Insert(8, ToC{6, 6, 6, 6})
	l2Hits := h.L2Stats().Hits
	if c, ok := h.Lookup(1); !ok || c != 2 {
		t.Fatalf("L2-served Lookup = %d,%v", c, ok)
	}
	if h.L2Stats().Hits != l2Hits+1 {
		t.Fatal("L2 did not serve after L1 eviction")
	}
	// Whole ToC refilled into L1: sibling sub-page now hits without L2.
	if c, ok := h.Lookup(3); !ok || c != 4 {
		t.Fatalf("sibling after refill = %d,%v", c, ok)
	}
	if h.L2Stats().Hits != l2Hits+1 {
		t.Fatal("ToC refill incomplete: sibling went to L2")
	}
}

func TestMosaicHierarchyInvalidateSub(t *testing.T) {
	h := NewMosaicHierarchy(Geometry{Entries: 4, Ways: 4}, Geometry{Entries: 64, Ways: 8}, 4)
	h.Insert(0, ToC{1, 2, 3, 4})
	if !h.InvalidateSub(2) {
		t.Fatal("InvalidateSub = false")
	}
	if _, ok := h.Lookup(2); ok {
		t.Fatal("invalidated sub-page hits")
	}
	if _, ok := h.Lookup(1); !ok {
		t.Fatal("sibling sub-page lost")
	}
}
