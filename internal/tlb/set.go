// Package tlb implements the set-associative TLB models of §3.1: a
// conventional ("vanilla") TLB mapping VPNs to PFNs, and a mosaic TLB
// mapping MVPNs to tables of contents (ToCs) of compressed physical frame
// numbers. Both share the same cache geometry machinery so that, as in the
// paper's gem5 model, the two designs differ only in what an entry stores.
package tlb

import "fmt"

// set is one associativity set with O(1) lookup and true-LRU replacement,
// generic over the entry payload. Slot 0..ways-1 are chained into an LRU
// list; a map provides tag lookup so fully-associative configurations stay
// O(1).
type set[P any] struct {
	index   map[uint64]int32
	tags    []uint64
	payload []P
	prev    []int32
	next    []int32
	free    []int32
	head    int32 // most recently used
	tail    int32 // least recently used
}

func newSet[P any](ways int) *set[P] {
	sets := newSets[P](1, ways)
	return &sets[0]
}

// newSets builds all of a TLB's sets at once, carving every per-slot array
// out of one shared backing allocation per field. The per-set state is
// struct-of-arrays and contiguous across sets — tags with tags, payloads
// with payloads — so a probe touches a handful of adjacent cache lines
// instead of chasing a heap pointer per set, and a whole TLB costs five
// slice allocations (plus the per-set tag indexes) rather than six per
// set. Each set's slices are full-capacity subslices (three-index), so the
// in-place append in invalidate/clear can never write into a neighbour.
func newSets[P any](numSets, ways int) []set[P] {
	n := numSets * ways
	var (
		tags    = make([]uint64, n)
		payload = make([]P, n)
		prev    = make([]int32, n)
		next    = make([]int32, n)
		free    = make([]int32, n)
	)
	sets := make([]set[P], numSets)
	for i := range sets {
		lo, hi := i*ways, (i+1)*ways
		s := &sets[i]
		s.index = make(map[uint64]int32, ways)
		s.tags = tags[lo:hi:hi]
		s.payload = payload[lo:hi:hi]
		s.prev = prev[lo:hi:hi]
		s.next = next[lo:hi:hi]
		s.free = free[lo:lo:hi]
		for j := ways - 1; j >= 0; j-- {
			s.free = append(s.free, int32(j))
		}
		s.head, s.tail = -1, -1
	}
	return sets
}

// lookup returns the slot holding tag without touching recency. It is the
// probe half of get, kept to a bare map access so the inliner flattens it
// (and therefore the whole TLB probe) into Lookup — inlinegate pins this.
func (s *set[P]) lookup(tag uint64) (int32, bool) {
	i, ok := s.index[tag]
	return i, ok
}

// touch promotes slot i to MRU. The head comparison is the hit fast path
// (repeated lookups of the same tag do no list surgery); only a genuine
// reordering pays the promote call. touch stays under the inlining budget
// precisely because the slow path is a call — inlinegate pins this too.
func (s *set[P]) touch(i int32) {
	if s.head != i {
		s.promote(i)
	}
}

// get returns a pointer to the payload for tag, promoting it to MRU.
func (s *set[P]) get(tag uint64) (*P, bool) {
	i, ok := s.lookup(tag)
	if !ok {
		return nil, false
	}
	s.touch(i)
	return &s.payload[i], true
}

// peek returns the payload without touching recency.
func (s *set[P]) peek(tag uint64) (*P, bool) {
	i, ok := s.index[tag]
	if !ok {
		return nil, false
	}
	return &s.payload[i], true
}

func (s *set[P]) unlink(i int32) {
	if s.prev[i] >= 0 {
		s.next[s.prev[i]] = s.next[i]
	} else {
		s.head = s.next[i]
	}
	if s.next[i] >= 0 {
		s.prev[s.next[i]] = s.prev[i]
	} else {
		s.tail = s.prev[i]
	}
}

func (s *set[P]) pushFront(i int32) {
	s.prev[i] = -1
	s.next[i] = s.head
	if s.head >= 0 {
		s.prev[s.head] = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

func (s *set[P]) promote(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	s.pushFront(i)
}

// insert adds tag with payload, evicting the LRU entry if the set is full.
// It returns the evicted tag and whether an eviction happened. Inserting an
// existing tag replaces its payload and promotes it.
func (s *set[P]) insert(tag uint64, p P) (evictedTag uint64, evicted bool) {
	if i, ok := s.index[tag]; ok {
		s.payload[i] = p
		s.promote(i)
		return 0, false
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = s.tail
		evictedTag, evicted = s.tags[slot], true
		delete(s.index, evictedTag)
		s.unlink(slot)
	}
	s.tags[slot] = tag
	s.payload[slot] = p
	s.index[tag] = slot
	s.pushFront(slot)
	return evictedTag, evicted
}

// invalidate removes tag from the set, reporting whether it was present.
// The recency order of the remaining entries is unaffected.
func (s *set[P]) invalidate(tag uint64) bool {
	i, ok := s.index[tag]
	if !ok {
		return false
	}
	delete(s.index, tag)
	s.unlink(i)
	var zero P
	s.payload[i] = zero
	s.free = append(s.free, i)
	return true
}

// len is the number of valid entries in the set.
func (s *set[P]) len() int { return len(s.tags) - len(s.free) }

// each calls fn for every valid entry, in unspecified order, without
// touching recency.
func (s *set[P]) each(fn func(tag uint64, p *P)) {
	for tag, i := range s.index {
		fn(tag, &s.payload[i])
	}
}

// clear invalidates every entry in the set.
func (s *set[P]) clear() {
	for tag := range s.index {
		delete(s.index, tag)
	}
	var zero P
	for i := range s.payload {
		s.payload[i] = zero
	}
	s.free = s.free[:0]
	for i := len(s.tags) - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	s.head, s.tail = -1, -1
}

// Geometry describes a TLB's size and associativity.
type Geometry struct {
	// Entries is the total entry count (1024 in Table 1a).
	Entries int
	// Ways is the set associativity; Ways == Entries means fully
	// associative, 1 means direct-mapped.
	Ways int
}

// Validate checks size/associativity consistency; Sets() must be a power of
// two because the index is taken from the low tag bits.
func (g Geometry) Validate() error {
	if g.Entries <= 0 || g.Ways <= 0 {
		return fmt.Errorf("tlb: entries %d and ways %d must be positive", g.Entries, g.Ways)
	}
	if g.Entries%g.Ways != 0 {
		return fmt.Errorf("tlb: entries %d not divisible by ways %d", g.Entries, g.Ways)
	}
	sets := g.Entries / g.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb: set count %d is not a power of two", sets)
	}
	return nil
}

// Sets is the number of associativity sets.
func (g Geometry) Sets() int { return g.Entries / g.Ways }

// String renders the geometry like the paper's figure labels.
func (g Geometry) String() string {
	switch {
	case g.Ways == 1:
		return fmt.Sprintf("%d-entry direct-mapped", g.Entries)
	case g.Ways == g.Entries:
		return fmt.Sprintf("%d-entry fully-associative", g.Entries)
	default:
		return fmt.Sprintf("%d-entry %d-way", g.Entries, g.Ways)
	}
}

// Stats counts TLB events.
type Stats struct {
	// Hits and Misses partition lookups.
	Hits, Misses uint64
	// EntryMisses are misses where no entry matched the tag; SubMisses
	// (mosaic only) are misses where the entry was present but the
	// sub-page's CPFN was invalid. EntryMisses + SubMisses == Misses.
	EntryMisses, SubMisses uint64
	// Evictions counts capacity replacements.
	Evictions uint64
}

// Lookups is Hits + Misses.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses }

// MissRate is Misses / Lookups (zero when idle).
func (s Stats) MissRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Misses) / float64(l)
	}
	return 0
}
