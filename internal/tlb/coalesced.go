package tlb

import (
	"fmt"

	"mosaic/internal/core"
)

// Coalesced is a CoLT-style coalescing TLB (§5.2 of the paper; Pham et al.,
// MICRO '12): an entry covers a run of up to MaxRun pages that are both
// virtually AND physically contiguous. It is the contiguity-dependent
// competitor to mosaic pages — its reach gains are proportional to whatever
// physical contiguity the allocator happens to produce, which is plentiful
// under a fresh sequential allocator and nearly absent under fragmentation
// or hashed (mosaic) placement. Comparing it against the mosaic TLB
// quantifies the paper's core claim: mosaic buys reach without needing
// contiguity.
//
// Entries are indexed by the aligned run base (VPN / MaxRun), so a run
// never spans index groups — the hardware-practical variant of CoLT-SA.
type Coalesced struct {
	geom   Geometry
	maxRun int
	sets   []set[coalescedEntry]
	mask   uint64
	stats  Stats
	// CoalescedFills counts fills whose run covered more than one page.
	coalescedFills uint64
	fills          uint64
	pagesCovered   uint64
}

type coalescedEntry struct {
	baseVPN core.VPN
	basePFN core.PFN
	// valid is a bitmap over the MaxRun aligned slots: bit i covers
	// baseVPN+i, mapped to basePFN+i.
	valid uint64
}

// NewCoalesced builds a coalescing TLB. maxRun must be a power of two ≤ 64
// (CoLT proposals use 4–8).
func NewCoalesced(geom Geometry, maxRun int) *Coalesced {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if maxRun <= 0 || maxRun > 64 || maxRun&(maxRun-1) != 0 {
		panic(fmt.Sprintf("tlb: coalescing run length %d not a power of two in [1,64]", maxRun))
	}
	t := &Coalesced{geom: geom, maxRun: maxRun, mask: uint64(geom.Sets() - 1)}
	t.sets = newSets[coalescedEntry](geom.Sets(), geom.Ways)
	return t
}

// Geometry returns the TLB geometry.
func (t *Coalesced) Geometry() Geometry { return t.geom }

// MaxRun is the maximum pages per entry.
func (t *Coalesced) MaxRun() int { return t.maxRun }

// Stats returns the event counters.
func (t *Coalesced) Stats() Stats { return t.stats }

// CoalescedFills counts fills that coalesced more than one translation.
func (t *Coalesced) CoalescedFills() uint64 { return t.coalescedFills }

// AvgRunLength is the mean pages covered per fill — the achieved
// coalescing factor.
func (t *Coalesced) AvgRunLength() float64 {
	if t.fills == 0 {
		return 0
	}
	return float64(t.pagesCovered) / float64(t.fills)
}

func (t *Coalesced) group(vpn core.VPN) (base core.VPN, off int) {
	return core.VPN(uint64(vpn) &^ uint64(t.maxRun-1)), int(uint64(vpn) & uint64(t.maxRun-1))
}

func (t *Coalesced) set(base core.VPN) *set[coalescedEntry] {
	return &t.sets[(uint64(base)/uint64(t.maxRun))&t.mask]
}

// Lookup translates vpn: a hit requires an entry for vpn's aligned group
// whose validity bitmap covers vpn's slot.
func (t *Coalesced) Lookup(vpn core.VPN) (core.PFN, bool) {
	base, off := t.group(vpn)
	e, ok := t.set(base).get(uint64(base))
	if ok && e.valid&(1<<uint(off)) != 0 {
		t.stats.Hits++
		return e.basePFN.Add(uint64(off)), true
	}
	t.stats.Misses++
	if ok {
		t.stats.SubMisses++
	} else {
		t.stats.EntryMisses++
	}
	return 0, false
}

// Insert fills the translation for vpn→pfn and opportunistically coalesces:
// the walker hands over the translations of the whole aligned group (as
// CoLT's extended walker does), and every neighbour page whose PFN is at
// the matching offset from vpn's joins the entry. neighbours[i] is the PFN
// of base+i, with ok=false for unmapped pages; pass nil to insert without
// coalescing.
func (t *Coalesced) Insert(vpn core.VPN, pfn core.PFN, neighbours []NeighbourPFN) {
	base, off := t.group(vpn)
	e := coalescedEntry{baseVPN: base, valid: 1 << uint(off)}
	// Anchor the run so base maps to basePFN.
	e.basePFN = pfn.Sub(uint64(off))
	covered := uint64(1)
	for i, nb := range neighbours {
		if i == off || !nb.OK || i >= t.maxRun {
			continue
		}
		if nb.PFN == e.basePFN.Add(uint64(i)) {
			e.valid |= 1 << uint(i)
			covered++
		}
	}
	t.fills++
	t.pagesCovered += covered
	if covered > 1 {
		t.coalescedFills++
	}
	if _, evicted := t.set(base).insert(uint64(base), e); evicted {
		t.stats.Evictions++
	}
}

// NeighbourPFN is one group-slot translation offered for coalescing.
type NeighbourPFN struct {
	PFN core.PFN
	OK  bool
}

// Invalidate drops the coverage of vpn. If the entry covers other pages it
// survives with vpn's bit cleared; a now-empty entry is removed.
func (t *Coalesced) Invalidate(vpn core.VPN) bool {
	base, off := t.group(vpn)
	s := t.set(base)
	e, ok := s.peek(uint64(base))
	if !ok || e.valid&(1<<uint(off)) == 0 {
		return false
	}
	e.valid &^= 1 << uint(off)
	if e.valid == 0 {
		s.invalidate(uint64(base))
	}
	return true
}

// Flush invalidates every entry.
func (t *Coalesced) Flush() {
	for _, s := range t.sets {
		s.clear()
	}
}

// Len is the number of valid entries.
func (t *Coalesced) Len() int {
	n := 0
	for _, s := range t.sets {
		n += s.len()
	}
	return n
}
