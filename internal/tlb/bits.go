package tlb

import (
	"fmt"
	"math/bits"

	"mosaic/internal/core"
)

// Entry storage accounting (§3.1): current x86 TLBs store 36-bit PFNs; a
// mosaic ToC of arity 4 with 7-bit CPFNs is 28 bits — *smaller* — while
// covering 4× the memory. These helpers quantify storage per entry and
// reach per stored bit across designs, the analysis behind the paper's
// claim that arity 4 is free and arities up to 64 are plausible with
// modestly wider entries.

// BitsConfig fixes the address widths for entry accounting. The zero value
// uses the paper's platform (Table 1a): 36-bit VPNs and PFNs, 12 metadata
// bits (permissions, accessed/dirty, ASID tag — tracked per entry).
type BitsConfig struct {
	VPNBits  int
	PFNBits  int
	MetaBits int
}

func (c *BitsConfig) applyDefaults() {
	if c.VPNBits == 0 {
		c.VPNBits = 36
	}
	if c.PFNBits == 0 {
		c.PFNBits = 36
	}
	if c.MetaBits == 0 {
		c.MetaBits = 12
	}
}

// log2 of a power-of-two set count.
func setBits(g Geometry) int {
	return bits.Len(uint(g.Sets())) - 1
}

// VanillaEntryBits is the storage of one conventional entry: the VPN tag
// (minus the set-index bits, which the position encodes), the PFN, a valid
// bit, and metadata.
func VanillaEntryBits(g Geometry, cfg BitsConfig) int {
	cfg.applyDefaults()
	tag := cfg.VPNBits - setBits(g)
	return tag + cfg.PFNBits + 1 + cfg.MetaBits
}

// MosaicEntryBits is the storage of one mosaic entry: the MVPN tag (the
// arity bits disappear into the ToC index, the set bits into the position),
// arity CPFNs (sub-page validity is in-band: the all-ones CPFN), a valid
// bit, and metadata at mosaic-page granularity (§3.1). It panics if arity
// is not a positive power of two.
func MosaicEntryBits(g Geometry, arity int, geom core.Geometry, cfg BitsConfig) int {
	cfg.applyDefaults()
	if arity <= 0 || arity&(arity-1) != 0 {
		panic(fmt.Sprintf("tlb: arity %d not a positive power of two", arity))
	}
	arityBits := bits.Len(uint(arity)) - 1
	tag := cfg.VPNBits - arityBits - setBits(g)
	if tag < 0 {
		tag = 0
	}
	return tag + arity*geom.CPFNBits() + 1 + cfg.MetaBits
}

// ReachPerBit reports TLB reach (bytes mapped by a full TLB) divided by
// total entry storage (bits) — the efficiency metric that improves with
// compression.
func ReachPerBit(entries, entryBits int, pagesPerEntry int) float64 {
	total := float64(entries * entryBits)
	if total == 0 {
		return 0
	}
	return float64(entries*pagesPerEntry) * core.PageSize / total
}

// BitsRow is one design's storage/reach accounting.
type BitsRow struct {
	Design       string
	EntryBits    int
	TotalKiB     float64 // total TLB payload storage
	ReachMiB     float64 // memory covered by a full TLB
	ReachPerBit  float64 // bytes of reach per stored bit
	VsVanillaPct float64 // entry size vs the vanilla entry
}

// BitsTable computes the accounting for a vanilla design plus each mosaic
// arity at the given TLB geometry and iceberg geometry.
func BitsTable(g Geometry, arities []int, iceberg core.Geometry, cfg BitsConfig) []BitsRow {
	cfg.applyDefaults()
	vb := VanillaEntryBits(g, cfg)
	rows := []BitsRow{{
		Design:      "Vanilla",
		EntryBits:   vb,
		TotalKiB:    float64(g.Entries*vb) / 8 / 1024,
		ReachMiB:    float64(g.Entries) * core.PageSize / (1 << 20),
		ReachPerBit: ReachPerBit(g.Entries, vb, 1),
	}}
	for _, a := range arities {
		mb := MosaicEntryBits(g, a, iceberg, cfg)
		rows = append(rows, BitsRow{
			Design:       fmt.Sprintf("Mosaic-%d", a),
			EntryBits:    mb,
			TotalKiB:     float64(g.Entries*mb) / 8 / 1024,
			ReachMiB:     float64(g.Entries*a) * core.PageSize / (1 << 20),
			ReachPerBit:  ReachPerBit(g.Entries, mb, a),
			VsVanillaPct: 100 * (float64(mb) - float64(vb)) / float64(vb),
		})
	}
	return rows
}
