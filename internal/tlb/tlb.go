package tlb

import (
	"fmt"

	"mosaic/internal/core"
)

// Vanilla is a conventional TLB: each entry maps one VPN to one PFN, as in
// the paper's baseline x86 configuration.
type Vanilla struct {
	geom  Geometry
	sets  []set[core.PFN]
	mask  uint64
	stats Stats
}

// NewVanilla builds a vanilla TLB.
func NewVanilla(geom Geometry) *Vanilla {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	t := &Vanilla{geom: geom, mask: uint64(geom.Sets() - 1)}
	t.sets = newSets[core.PFN](geom.Sets(), geom.Ways)
	return t
}

// Geometry returns the TLB geometry.
func (t *Vanilla) Geometry() Geometry { return t.geom }

// Stats returns the event counters accumulated so far.
func (t *Vanilla) Stats() Stats { return t.stats }

func (t *Vanilla) set(vpn core.VPN) *set[core.PFN] {
	return &t.sets[uint64(vpn)&t.mask]
}

// Lookup translates vpn, counting a hit or a miss.
func (t *Vanilla) Lookup(vpn core.VPN) (core.PFN, bool) {
	if p, ok := t.set(vpn).get(uint64(vpn)); ok {
		t.stats.Hits++
		return *p, true
	}
	t.stats.Misses++
	t.stats.EntryMisses++
	return 0, false
}

// Insert fills the translation after a page-table walk, evicting LRU within
// the set if needed.
func (t *Vanilla) Insert(vpn core.VPN, pfn core.PFN) {
	if _, evicted := t.set(vpn).insert(uint64(vpn), pfn); evicted {
		t.stats.Evictions++
	}
}

// Invalidate drops the entry for vpn (TLB shootdown), reporting whether it
// was present.
func (t *Vanilla) Invalidate(vpn core.VPN) bool {
	return t.set(vpn).invalidate(uint64(vpn))
}

// Len is the number of valid entries.
func (t *Vanilla) Len() int {
	n := 0
	for _, s := range t.sets {
		n += s.len()
	}
	return n
}

// Reach is the memory covered by a full TLB, in bytes.
func (t *Vanilla) Reach() uint64 { return uint64(t.geom.Entries) * core.PageSize }

// Range calls fn for every valid entry, in unspecified order, without
// affecting recency or the hit/miss counters. The key is the value Insert
// was called with (in memsim, the ASID-tagged VPN). Range exists for the
// invariant checkers, which audit TLB contents against the page tables.
func (t *Vanilla) Range(fn func(key uint64, pfn core.PFN)) {
	for _, s := range t.sets {
		s.each(func(tag uint64, p *core.PFN) { fn(tag, *p) })
	}
}

// Flush invalidates every entry (a full TLB flush, as on a non-PCID
// context switch).
func (t *Vanilla) Flush() {
	for _, s := range t.sets {
		s.clear()
	}
}

// ToC is a mosaic TLB entry payload: the table of contents of one mosaic
// page — one CPFN per sub-page (Figure 2).
type ToC []core.CPFN

// Mosaic is a mosaic TLB: entries are indexed by MVPN and hold a ToC of
// arity CPFNs with per-sub-page validity. Replacement evicts whole mosaic
// entries (the paper's model manages "its own space using LRU to evict TLB
// entries for an entire mosaic page"); invalidation of a sub-page clears
// only that CPFN.
type Mosaic struct {
	geom  Geometry
	arity int
	sets  []set[ToC]
	mask  uint64
	stats Stats
}

// NewMosaic builds a mosaic TLB with the given entry geometry and arity
// (sub-pages per entry). The paper varies arity over powers of two from 4
// to 64.
func NewMosaic(geom Geometry, arity int) *Mosaic {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if arity <= 0 || arity&(arity-1) != 0 {
		panic(fmt.Sprintf("tlb: arity %d is not a positive power of two", arity))
	}
	t := &Mosaic{geom: geom, arity: arity, mask: uint64(geom.Sets() - 1)}
	t.sets = newSets[ToC](geom.Sets(), geom.Ways)
	return t
}

// Geometry returns the TLB geometry.
func (t *Mosaic) Geometry() Geometry { return t.geom }

// Arity is the number of sub-pages per entry.
func (t *Mosaic) Arity() int { return t.arity }

// Stats returns the event counters accumulated so far.
func (t *Mosaic) Stats() Stats { return t.stats }

func (t *Mosaic) set(m core.MVPN) *set[ToC] {
	return &t.sets[uint64(m)&t.mask]
}

// Lookup translates vpn. A hit requires both the mosaic entry to be present
// and the sub-page's CPFN to be valid; the two miss flavours are counted
// separately (Stats.EntryMisses vs Stats.SubMisses).
func (t *Mosaic) Lookup(vpn core.VPN) (core.CPFN, bool) {
	mvpn, off := core.MosaicPage(vpn, t.arity)
	toc, ok := t.set(mvpn).get(uint64(mvpn))
	if !ok {
		t.stats.Misses++
		t.stats.EntryMisses++
		return core.CPFNInvalid, false
	}
	if c := (*toc)[off]; c != core.CPFNInvalid {
		t.stats.Hits++
		return c, true
	}
	t.stats.Misses++
	t.stats.SubMisses++
	return core.CPFNInvalid, false
}

// Insert fills the whole ToC for vpn's mosaic page after a walk. The walker
// obtains the full leaf ToC, so all currently-mapped sub-pages become
// valid at once. The ToC is copied. Insert panics if the ToC length does
// not match the arity.
func (t *Mosaic) Insert(vpn core.VPN, toc ToC) {
	if len(toc) != t.arity {
		panic(fmt.Sprintf("tlb: ToC length %d, want arity %d", len(toc), t.arity))
	}
	mvpn, _ := core.MosaicPage(vpn, t.arity)
	cp := make(ToC, t.arity)
	copy(cp, toc)
	if _, evicted := t.set(mvpn).insert(uint64(mvpn), cp); evicted {
		t.stats.Evictions++
	}
}

// InvalidateSub clears only vpn's CPFN within its mosaic entry, if present
// (§3.1: "our TLB model only invalidates the sub-page's entry within the
// larger mosaic page's ToC"). It reports whether a valid sub-entry was
// cleared.
func (t *Mosaic) InvalidateSub(vpn core.VPN) bool {
	mvpn, off := core.MosaicPage(vpn, t.arity)
	toc, ok := t.set(mvpn).peek(uint64(mvpn))
	if !ok {
		return false
	}
	if (*toc)[off] == core.CPFNInvalid {
		return false
	}
	(*toc)[off] = core.CPFNInvalid
	return true
}

// InvalidateEntry drops the whole mosaic entry containing vpn.
func (t *Mosaic) InvalidateEntry(vpn core.VPN) bool {
	mvpn, _ := core.MosaicPage(vpn, t.arity)
	return t.set(mvpn).invalidate(uint64(mvpn))
}

// Len is the number of valid entries (whole mosaic pages).
func (t *Mosaic) Len() int {
	n := 0
	for _, s := range t.sets {
		n += s.len()
	}
	return n
}

// Reach is the memory covered by a full TLB with fully-populated ToCs: a
// factor of arity more than a vanilla TLB of equal entry count.
func (t *Mosaic) Reach() uint64 {
	return uint64(t.geom.Entries) * uint64(t.arity) * core.PageSize
}

// Flush invalidates every entry.
func (t *Mosaic) Flush() {
	for _, s := range t.sets {
		s.clear()
	}
}

// Range calls fn for every valid entry, in unspecified order, without
// affecting recency or the hit/miss counters. The key is the MVPN the entry
// was inserted under (in memsim, derived from the ASID-tagged VPN); the ToC
// is the live payload and must not be mutated. Range exists for the
// invariant checkers, which audit TLB contents against the page tables.
func (t *Mosaic) Range(fn func(key uint64, toc ToC)) {
	for _, s := range t.sets {
		s.each(func(tag uint64, p *ToC) { fn(tag, *p) })
	}
}

// InvalidToC returns a fresh all-invalid ToC of the TLB's arity.
func (t *Mosaic) InvalidToC() ToC {
	toc := make(ToC, t.arity)
	for i := range toc {
		toc[i] = core.CPFNInvalid
	}
	return toc
}
