package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	if c.Get("misses") != 0 {
		t.Error("unregistered counter should read zero")
	}
	c.Inc("misses")
	c.Add("misses", 4)
	c.Inc("hits")
	if c.Get("misses") != 5 || c.Get("hits") != 1 {
		t.Errorf("misses=%d hits=%d", c.Get("misses"), c.Get("hits"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "misses" || names[1] != "hits" {
		t.Errorf("Names = %v", names)
	}
	snap := c.Snapshot()
	c.Inc("misses")
	if snap["misses"] != 5 {
		t.Error("Snapshot aliases live state")
	}
	if got := c.String(); got != "misses=6 hits=1" {
		t.Errorf("String = %q", got)
	}
	c.Reset()
	if c.Get("misses") != 0 {
		t.Error("Reset did not zero counters")
	}
	if len(c.Names()) != 2 {
		t.Error("Reset dropped registration order")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Stddev() != 0 || r.N() != 0 {
		t.Error("zero-value Running should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if got := r.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if got, want := r.Stddev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min=%v Max=%v", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Observe(3.5)
	if r.Mean() != 3.5 || r.Stddev() != 0 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Errorf("single sample: mean=%v sd=%v min=%v max=%v", r.Mean(), r.Stddev(), r.Min(), r.Max())
	}
}

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "Workload", "Misses")
	tb.AddRow("graph500", 12345)
	tb.AddRow("gups", 7)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "Workload") {
		t.Errorf("missing title or header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(3.14159)
	tb.AddRow(42.0)
	out := tb.String()
	if !strings.Contains(out, "3.14") {
		t.Errorf("float not rounded to 2 places:\n%s", out)
	}
	if !strings.Contains(out, "42") || strings.Contains(out, "42.00") {
		t.Errorf("integral float should render without decimals:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestPercentiles(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := Percentiles(samples, 0, 50, 100)
	if got[0] != 1 || got[2] != 10 {
		t.Errorf("extremes = %v", got)
	}
	if math.Abs(got[1]-5.5) > 1e-12 {
		t.Errorf("median = %v, want 5.5", got[1])
	}
	// Out-of-range percentiles clamp.
	got = Percentiles(samples, -5, 150)
	if got[0] != 1 || got[1] != 10 {
		t.Errorf("clamped = %v", got)
	}
	// Input must not be mutated.
	shuffled := []float64{3, 1, 2}
	Percentiles(shuffled, 50)
	if shuffled[0] != 3 {
		t.Error("Percentiles mutated its input")
	}
	if got := Percentiles(nil, 50); got[0] != 0 {
		t.Errorf("empty input = %v", got)
	}
}

func TestPercentChange(t *testing.T) {
	cases := []struct {
		base, x, want float64
	}{
		{100, 80, 20},
		{100, 120, -20},
		{100, 100, 0},
		{0, 0, 0},
	}
	for _, tc := range cases {
		if got := PercentChange(tc.base, tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PercentChange(%v,%v) = %v, want %v", tc.base, tc.x, got, tc.want)
		}
	}
	// Zero base with nonzero x has no meaningful percentage: NaN, never an
	// infinity that would poison JSON encoding downstream.
	if got := PercentChange(0, 5); !math.IsNaN(got) {
		t.Errorf("PercentChange(0,5) = %v, want NaN", got)
	}
	if got := PercentChange(0, -5); !math.IsNaN(got) {
		t.Errorf("PercentChange(0,-5) = %v, want NaN", got)
	}
}

func TestTableOverflowRowDoesNotPanic(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", "y", "z", "w") // two more cells than headers
	tb.AddRow("p")                // short rows remain fine
	out := tb.String()            // must not panic
	if !strings.Contains(out, "!ERR(+2 cells)") {
		t.Errorf("overflow row not error-marked:\n%s", out)
	}
	if strings.Contains(out, "z") || strings.Contains(out, "w") {
		t.Errorf("overflow cells should be clamped away:\n%s", out)
	}
	csv := tb.CSV() // must not panic either
	if !strings.Contains(csv, "!ERR(+2 cells)") {
		t.Errorf("CSV lost the error marker:\n%s", csv)
	}
}

func TestTableNoHeaders(t *testing.T) {
	tb := NewTable("", []string{}...)
	tb.AddRow("x", "y")
	out := tb.String() // headerless tables render unpadded, no panic
	if !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Errorf("headerless table dropped cells:\n%s", out)
	}
}
