// Package stats provides the counters, running statistics, and table
// rendering shared by the experiment harness. Every table and figure in
// EXPERIMENTS.md is rendered through this package so that outputs are
// uniform and machine-parsable.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a named set of monotonically increasing event counters.
type Counters struct {
	names  []string
	values map[string]uint64
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Add increments counter name by delta, creating it on first use.
func (c *Counters) Add(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of name (zero if never incremented).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Names returns the counter names in first-use order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.values))
	for k, v := range c.values {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters but keeps their registration order.
func (c *Counters) Reset() {
	for k := range c.values {
		c.values[k] = 0
	}
}

// String renders the counters as "name=value" pairs in first-use order.
func (c *Counters) String() string {
	parts := make([]string, 0, len(c.names))
	for _, n := range c.names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, c.values[n]))
	}
	return strings.Join(parts, " ")
}

// Running accumulates a stream of float64 samples and reports mean and
// standard deviation, as the paper does for its ten-run averages.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds a sample.
func (r *Running) Observe(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		r.min = math.Min(r.min, x)
		r.max = math.Max(r.max, x)
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N is the number of samples observed.
func (r *Running) N() int { return r.n }

// Mean is the sample mean (zero with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Stddev is the sample standard deviation (zero with fewer than 2 samples).
func (r *Running) Stddev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Min returns the smallest sample (zero with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (zero with no samples).
func (r *Running) Max() float64 { return r.max }

// Table accumulates rows of cells and renders them aligned or as CSV.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v. A row with more cells
// than the table has headers is clamped to the header count, with the last
// kept cell replaced by an error marker — a malformed row must never crash
// the experiment harness mid-run.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	if n := len(t.headers); n > 0 && len(row) > n {
		extra := len(row) - n
		row = row[:n]
		row[n-1] = fmt.Sprintf("!ERR(+%d cells)", extra)
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Defense in depth alongside the AddRow clamp: a cell beyond the
			// header count renders unpadded rather than indexing out of range.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Percentiles computes the requested percentiles (0..100) of samples.
// The input slice is not modified.
func Percentiles(samples []float64, ps ...float64) []float64 {
	if len(samples) == 0 {
		return make([]float64, len(ps))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p <= 0 {
			out[i] = sorted[0]
			continue
		}
		if p >= 100 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		rank := p / 100 * float64(len(sorted)-1)
		lo := int(math.Floor(rank))
		frac := rank - float64(lo)
		out[i] = sorted[lo]
		if lo+1 < len(sorted) {
			out[i] += frac * (sorted[lo+1] - sorted[lo])
		}
	}
	return out
}

// PercentChange returns the percent reduction from base to x, matching the
// "Difference (%)" column of Table 4: positive means x is smaller (better).
// A zero base with a nonzero x has no meaningful percentage; it returns NaN
// ("no observation"), which the JSON results layer renders as null rather
// than poisoning the encoder with an infinity.
func PercentChange(base, x float64) float64 {
	if base == 0 {
		if x == 0 {
			return 0
		}
		return math.NaN()
	}
	return (base - x) / base * 100
}
