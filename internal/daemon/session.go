package daemon

import (
	"fmt"
	"io"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mosaic/internal/memsim"
	"mosaic/internal/obs"
	"mosaic/internal/results"
	"mosaic/internal/tlb"
	"mosaic/internal/trace"
)

// SessionConfig is the per-session simulator shape, parsed from the POST
// /sessions query string. It mirrors tracegen's replay flags: one vanilla
// and one mosaic TLB at the same geometry, driven by the streamed trace.
type SessionConfig struct {
	// Label tags the session in /sessions and in event scopes.
	Label string
	// Entries and Arity shape the TLB pair (defaults 256 / 4).
	Entries int
	Arity   int
	// Frames is the simulated DRAM size in 4 KiB frames (default 1<<18).
	Frames int
	// Sample is the sampling/publication window in references.
	Sample uint64
	// Seed seeds the placement hash.
	Seed uint64
}

// sessionConfigFromQuery parses the query string, filling defaults and
// rejecting malformed numbers.
func sessionConfigFromQuery(q url.Values, defaultSample uint64) (SessionConfig, error) {
	cfg := SessionConfig{
		Label:   q.Get("label"),
		Entries: 256,
		Arity:   4,
		Frames:  1 << 18,
		Sample:  defaultSample,
		Seed:    1,
	}
	for _, p := range []struct {
		key string
		dst *int
		min int
	}{
		{"entries", &cfg.Entries, 1},
		{"arity", &cfg.Arity, 1},
		{"frames", &cfg.Frames, 1},
	} {
		if v := q.Get(p.key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < p.min {
				return cfg, fmt.Errorf("daemon: bad %s=%q (want integer >= %d)", p.key, v, p.min)
			}
			*p.dst = n
		}
	}
	for _, p := range []struct {
		key string
		dst *uint64
		min uint64
	}{
		{"sample", &cfg.Sample, 1},
		{"seed", &cfg.Seed, 0},
	} {
		if v := q.Get(p.key); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n < p.min {
				return cfg, fmt.Errorf("daemon: bad %s=%q (want unsigned integer >= %d)", p.key, v, p.min)
			}
			*p.dst = n
		}
	}
	return cfg, nil
}

// Session states, as reported in GET /sessions.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// Session is one streaming simulation. Its simulator, registry, sampler,
// and event log are owned exclusively by the pool worker that runs it;
// concurrent observers see only the lock-free Publisher and the mu-guarded
// lifecycle fields below.
type Session struct {
	ID  int
	cfg SessionConfig

	// pub exists from construction, so /metrics and /sessions/{id}/metrics
	// scrape cleanly (ok=false → skipped / 404) while the session is still
	// queued. The worker wires it to the sampler when the run starts.
	pub  *obs.Publisher
	ob   *obs.Observer
	refs atomic.Uint64
	done chan struct{}

	mu      sync.Mutex
	state   string
	err     error
	final   *results.File
	started time.Time
	ended   time.Time
}

func newSession(id int, cfg SessionConfig) *Session {
	ob := obs.NewObserver(cfg.Sample)
	return &Session{
		ID:    id,
		cfg:   cfg,
		ob:    ob,
		pub:   obs.NewPublisher(ob.Metrics),
		done:  make(chan struct{}),
		state: stateQueued,
	}
}

// run executes the whole session on a pool worker: build the simulator,
// replay the streamed trace into it, finalize, and publish the result.
func (sess *Session) run(body io.Reader) {
	sess.mu.Lock()
	sess.state = stateRunning
	sess.started = time.Now()
	sess.mu.Unlock()

	sim, err := memsim.New(memsim.Config{
		Frames: sess.cfg.Frames,
		Specs: []memsim.TLBSpec{
			{Geometry: tlb.Geometry{Entries: sess.cfg.Entries, Ways: 8}},
			{Geometry: tlb.Geometry{Entries: sess.cfg.Entries, Ways: 8}, Arity: sess.cfg.Arity},
		},
		Seed: sess.cfg.Seed,
		Obs:  sess.ob,
	})
	if err != nil {
		sess.fail(err)
		return
	}
	sim.RegisterLive(sess.pub)
	sess.ob.Sampler.OnWindow(func(refs uint64) { sess.refs.Store(refs) })
	sess.pub.AttachSampler(sess.ob.Sampler)

	tr, err := trace.Open(body)
	if err != nil {
		sess.fail(err)
		return
	}
	run := obs.NewSpan("run", 0)
	n, err := tr.ReplayBatches(sim)
	if err != nil {
		sess.fail(fmt.Errorf("after %d refs: %w", n, err))
		return
	}
	run.Finish(sess.ob, n)

	report := obs.NewSpan("report", n)
	reg := sim.FinalizeMetrics()

	f := results.New("mosaicd-session")
	f.Config["session"] = sess.ID
	if sess.cfg.Label != "" {
		f.Config["label"] = sess.cfg.Label
	}
	f.Config["entries"] = sess.cfg.Entries
	f.Config["arity"] = sess.cfg.Arity
	f.Config["frames"] = sess.cfg.Frames
	f.Config["sample"] = sess.cfg.Sample
	f.Config["seed"] = sess.cfg.Seed
	f.AddSampler("", sess.ob.Sampler)
	report.Finish(sess.ob, n)
	f.AddSnapshot("", reg.Snapshot())
	f.AddEvents(sess.cfg.Label, sess.ob.Events)

	// One last publication so the lock-free view carries the finalized
	// counters (tlb.*.hit breakdowns, phase histogram) too.
	sess.refs.Store(n)
	sess.pub.Publish(n)

	sess.mu.Lock()
	sess.state = stateDone
	sess.final = f
	sess.ended = time.Now()
	sess.mu.Unlock()
	close(sess.done)
}

// fail settles the session in the failed state. Called at most once, by
// the worker (or by the daemon when submission itself was refused).
func (sess *Session) fail(err error) {
	sess.mu.Lock()
	sess.state = stateFailed
	sess.err = err
	sess.ended = time.Now()
	sess.mu.Unlock()
	close(sess.done)
}

// Result returns the final results file once the session is done, or the
// run error once it failed; before either it reports in-progress.
func (sess *Session) Result() (*results.File, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch sess.state {
	case stateDone:
		return sess.final, nil
	case stateFailed:
		return nil, sess.err
	default:
		return nil, fmt.Errorf("session %d is %s", sess.ID, sess.state)
	}
}

// ResultsFile is the GET /sessions/{id}/results.json body: the final file
// after completion, otherwise a live file built from the latest
// publication (marked config.live = true so consumers can tell them
// apart). Errors when the session failed or has not published yet.
func (sess *Session) ResultsFile() (*results.File, error) {
	sess.mu.Lock()
	state, err, final := sess.state, sess.err, sess.final
	sess.mu.Unlock()
	switch state {
	case stateDone:
		return final, nil
	case stateFailed:
		return nil, err
	}
	pub, ok := sess.pub.Load()
	if !ok {
		return nil, fmt.Errorf("session %d has not published yet", sess.ID)
	}
	f := results.New("mosaicd-session")
	f.Config["session"] = sess.ID
	if sess.cfg.Label != "" {
		f.Config["label"] = sess.cfg.Label
	}
	f.Config["live"] = true
	f.Config["refs"] = pub.Refs
	f.AddSnapshot("", pub.Snap)
	return f, nil
}

// Published exposes the session's latest lock-free publication.
func (sess *Session) Published() (obs.Published, bool) { return sess.pub.Load() }

// Refs is the session's reference clock as of the last window boundary.
func (sess *Session) Refs() uint64 { return sess.refs.Load() }

// info renders one GET /sessions table row.
func (sess *Session) info(now time.Time) sessionInfo {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	inf := sessionInfo{
		ID:    sess.ID,
		Label: sess.cfg.Label,
		State: sess.state,
		Refs:  sess.refs.Load(),
	}
	switch sess.state {
	case stateRunning:
		inf.Seconds = now.Sub(sess.started).Seconds()
	case stateDone, stateFailed:
		inf.Seconds = sess.ended.Sub(sess.started).Seconds()
	}
	if sess.err != nil {
		inf.Error = sess.err.Error()
	}
	return inf
}
