package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/results"
	"mosaic/internal/trace"
	"mosaic/internal/workloads"
)

// traceBytes builds an in-memory binary trace touching `pages` distinct
// pages round-robin for `refs` references.
func traceBytes(t *testing.T, refs, pages int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < refs; i++ {
		tw.Access(uint64(workloads.DefaultHeapBase)+uint64(i%pages)*core.PageSize, i%7 == 0)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postSession streams a trace and decodes the results-file response.
func postSession(t *testing.T, url string, query string, body io.Reader) *results.File {
	t.Helper()
	resp, err := http.Post(url+"/sessions?"+query, "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sessions: %s: %s", resp.Status, data)
	}
	f, err := results.Decode(data, url)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestConcurrentSessionsIsolated is the daemon's acceptance criterion:
// four concurrent streaming sessions, each with a different reference
// count, finish with correct per-session metrics — no bleed between the
// isolated simulators — and the merged /metrics view accounts for all of
// them.
func TestConcurrentSessionsIsolated(t *testing.T) {
	srv := New(Config{Workers: 4, Queue: 4, SampleEvery: 128})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	refCounts := []int{1000, 2000, 3000, 4000}
	files := make([]*results.File, len(refCounts))
	var wg sync.WaitGroup
	for i, refs := range refCounts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := traceBytes(t, refs, 64)
			files[i] = postSession(t, ts.URL, fmt.Sprintf("label=s%d&sample=128", refs), bytes.NewReader(body))
		}()
	}
	wg.Wait()

	for i, f := range files {
		want := float64(refCounts[i])
		if got, ok := f.Metric("vm.access"); !ok || got != want {
			t.Errorf("session %d: vm.access = %v (ok=%v), want %v", i, got, ok, want)
		}
		if got, ok := f.Metric("sim.refs.total"); !ok || got != want {
			t.Errorf("session %d: sim.refs.total = %v (ok=%v), want %v", i, got, ok, want)
		}
		hit, _ := f.Metric("tlb.vanilla.hit")
		miss, _ := f.Metric("tlb.vanilla.miss")
		if hit+miss != want {
			t.Errorf("session %d: vanilla hit+miss = %v, want %v", i, hit+miss, want)
		}
		if f.SchemaVersion != results.SchemaVersion {
			t.Errorf("session %d: schema version %d, want %d", i, f.SchemaVersion, results.SchemaVersion)
		}
	}

	// Merged daemon view: all four sessions completed, total refs summed
	// across isolated registries.
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	for _, want := range []string{
		"mosaicd_sessions_completed 4",
		"mosaicd_sessions_failed 0",
		"mosaicd_refs_total 10000",
		"vm_access 10000",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The session table reports all four done with their own ref clocks.
	code, list := get(t, ts.URL+"/sessions")
	if code != http.StatusOK {
		t.Fatalf("GET /sessions: %d", code)
	}
	var infos []sessionInfo
	if err := json.Unmarshal([]byte(list), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("GET /sessions: %d rows, want 4", len(infos))
	}
	seen := map[uint64]bool{}
	for _, inf := range infos {
		if inf.State != stateDone {
			t.Errorf("session %d state %q, want done", inf.ID, inf.State)
		}
		seen[inf.Refs] = true
	}
	for _, refs := range refCounts {
		if !seen[uint64(refs)] {
			t.Errorf("no session finished with refs=%d (table: %+v)", refs, infos)
		}
	}
}

// TestPerSessionEndpoints: one finished session's /metrics and
// /results.json views are self-consistent with the POST response.
func TestPerSessionEndpoints(t *testing.T) {
	srv := New(Config{Workers: 2, SampleEvery: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	posted := postSession(t, ts.URL, "label=solo", bytes.NewReader(traceBytes(t, 1500, 32)))

	code, text := get(t, ts.URL+"/sessions/1/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /sessions/1/metrics: %d: %s", code, text)
	}
	if !strings.Contains(text, "vm_access 1500") {
		t.Errorf("per-session metrics missing vm_access 1500:\n%s", text)
	}
	if strings.Contains(text, "mosaicd_sessions") {
		t.Error("per-session metrics leaked daemon-level counters")
	}

	code, body := get(t, ts.URL+"/sessions/1/results.json")
	if code != http.StatusOK {
		t.Fatalf("GET /sessions/1/results.json: %d", code)
	}
	f, err := results.Decode([]byte(body), "endpoint")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Metric("vm.access"); got != 1500 {
		t.Errorf("results.json vm.access = %v, want 1500", got)
	}
	pv, _ := posted.Metric("tlb.vanilla.miss")
	ev, _ := f.Metric("tlb.vanilla.miss")
	if pv != ev {
		t.Errorf("POST response and endpoint disagree on tlb.vanilla.miss: %v vs %v", pv, ev)
	}
	if _, ok := f.Config["live"]; ok {
		t.Error("finished session's results.json marked live")
	}

	for _, path := range []string{"/sessions/99/metrics", "/sessions/0/results.json", "/sessions/x/metrics"} {
		if code, _ := get(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, code)
		}
	}
}

// TestLiveScrapeMidRun: while a session is wedged mid-stream, /metrics and
// the live results.json serve its latest window without blocking on the
// simulation.
func TestLiveScrapeMidRun(t *testing.T) {
	srv := New(Config{Workers: 1, SampleEvery: 100})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	go func() {
		resp, err := http.Post(ts.URL+"/sessions?label=live&sample=100", "application/octet-stream", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()

	tw, err := trace.NewWriter(pw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		tw.Access(uint64(workloads.DefaultHeapBase)+uint64(i%16)*core.PageSize, false)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Two windows (200 refs) are published once the pipe hands them over;
	// poll until the scrape sees the second window.
	var live *results.File
	for {
		code, body := get(t, ts.URL+"/sessions/1/results.json")
		if code == http.StatusOK {
			f, err := results.Decode([]byte(body), "live")
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := f.Metric("sim.refs.total"); ok && v >= 200 {
				live = f
				break
			}
		}
	}
	if live.Config["live"] != true {
		t.Errorf("mid-run results.json not marked live: %v", live.Config)
	}
	if v, _ := live.Metric("sim.refs.total"); v != 200 {
		t.Errorf("mid-run sim.refs.total = %v, want 200 (last full window)", v)
	}

	pw.Close() // clean EOF ends the trace; session finishes
	srv.Drain()
	code, body := get(t, ts.URL+"/sessions/1/results.json")
	if code != http.StatusOK {
		t.Fatalf("final results.json: %d", code)
	}
	f, err := results.Decode([]byte(body), "final")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Metric("vm.access"); v != 250 {
		t.Errorf("final vm.access = %v, want 250", v)
	}
}

// TestBackpressure: with one worker wedged and no queue, the next POST is
// refused with 503 and counted as rejected, never blocking the client.
func TestBackpressure(t *testing.T) {
	srv := New(Config{Workers: 1, Queue: -1, SampleEvery: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	tw, err := trace.NewWriter(pw)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Post(ts.URL+"/sessions", "application/octet-stream", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wedge the single worker: stream half a window and stall.
	tw.Access(uint64(workloads.DefaultHeapBase), false)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, 1, stateRunning)

	// The pool has one channel slot beyond the busy worker; fill it from a
	// goroutine (its POST blocks until the worker frees up) …
	fillerDone := make(chan struct{})
	go func() {
		defer close(fillerDone)
		resp, err := http.Post(ts.URL+"/sessions", "application/octet-stream", bytes.NewReader(traceBytes(t, 10, 4)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitState(t, srv, 2, stateQueued)

	// … then the next admission must shed with a 503, promptly, while both
	// earlier sessions are still outstanding.
	resp, err := http.Post(ts.URL+"/sessions", "application/octet-stream", bytes.NewReader(traceBytes(t, 10, 4)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST with wedged worker and full queue: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(metrics, "mosaicd_sessions_rejected 1") {
		t.Errorf("/metrics missing mosaicd_sessions_rejected 1:\n%s", metrics)
	}

	pw.Close()
	<-fillerDone
	srv.Drain()
}

// TestDrain: draining refuses new sessions but finishes the in-flight one,
// and the drain artifact is a schema-valid results file covering it.
func TestDrain(t *testing.T) {
	srv := New(Config{Workers: 2, SampleEvery: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	tw, err := trace.NewWriter(pw)
	if err != nil {
		t.Fatal(err)
	}
	finished := make(chan *results.File, 1)
	go func() {
		finished <- postSession(t, ts.URL, "", pr)
	}()
	tw.Access(uint64(workloads.DefaultHeapBase), false)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, 1, stateRunning)

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	// New work is refused as soon as the drain flag flips; posts that won
	// the race before it flipped were legitimately admitted, complete
	// normally, and must be accounted for below.
	raced := 0
	for {
		resp, err := http.Post(ts.URL+"/sessions", "application/octet-stream", bytes.NewReader(traceBytes(t, 10, 4)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if resp.StatusCode == http.StatusOK {
			raced++
		}
	}
	for i := 0; i < 99; i++ {
		tw.Access(uint64(workloads.DefaultHeapBase)+uint64(i%8)*core.PageSize, false)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	<-drained

	f := <-finished
	if v, _ := f.Metric("vm.access"); v != 100 {
		t.Errorf("drained session vm.access = %v, want 100", v)
	}

	// The drain artifact: same schema as every results file, carrying every
	// finished session's metrics through the merged snapshot.
	wantAccess := float64(100 + 10*raced)
	artifact := srv.ResultsFile()
	data, err := json.Marshal(artifact)
	if err != nil {
		t.Fatal(err)
	}
	back, err := results.Decode(data, "artifact")
	if err != nil {
		t.Fatalf("drain artifact does not round-trip: %v", err)
	}
	if v, _ := back.Metric("vm.access"); v != wantAccess {
		t.Errorf("artifact vm.access = %v, want %v", v, wantAccess)
	}
	if v, _ := back.Metric("mosaicd.sessions.completed"); v != float64(1+raced) {
		t.Errorf("artifact mosaicd.sessions.completed = %v, want %d", v, 1+raced)
	}
}

// TestBadTrace: garbage bytes settle the session as failed — reported on
// the POST, in the session table, and in the failure counter.
func TestBadTrace(t *testing.T) {
	srv := New(Config{Workers: 1, SampleEvery: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp, err := http.Post(ts.URL+"/sessions", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST garbage: %d, want 400", resp.StatusCode)
	}
	code, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(metrics, "mosaicd_sessions_failed 1") {
		t.Errorf("/metrics missing mosaicd_sessions_failed 1:\n%s", metrics)
	}
	if code, _ := get(t, ts.URL+"/sessions/1/results.json"); code != http.StatusConflict {
		t.Errorf("failed session results.json: %d, want 409", code)
	}
}

// TestBadQuery: malformed session parameters are rejected up front.
func TestBadQuery(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	for _, q := range []string{"entries=zero", "arity=-1", "sample=0", "frames=0"} {
		resp, err := http.Post(ts.URL+"/sessions?"+q, "application/octet-stream", bytes.NewReader(traceBytes(t, 4, 2)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST ?%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// waitState spins until session id reaches the given state.
func waitState(t *testing.T, srv *Server, id int, state string) {
	t.Helper()
	for {
		srv.mu.Lock()
		var sess *Session
		if id >= 1 && id <= len(srv.sessions) {
			sess = srv.sessions[id-1]
		}
		srv.mu.Unlock()
		if sess != nil {
			sess.mu.Lock()
			got := sess.state
			sess.mu.Unlock()
			if got == state {
				return
			}
		}
	}
}
