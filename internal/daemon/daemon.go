// Package daemon turns the batch experiment harness into a long-running
// simulation service: an HTTP server that accepts streaming trace
// sessions — each an isolated simulator instance scheduled onto a
// persistent internal/sweep pool with bounded concurrency and
// backpressure — and exposes live telemetry while they run.
//
// Endpoints:
//
//	POST /sessions                    stream a binary trace (cmd/tracegen
//	                                  format) as the request body; the
//	                                  response, sent when the stream ends,
//	                                  is the session's schema-versioned
//	                                  results JSON. 503 + Retry-After when
//	                                  the pool is saturated or draining.
//	GET  /metrics                     merged Prometheus text across the
//	                                  daemon's own counters and every
//	                                  session's latest published snapshot
//	GET  /sessions                    JSON session table (id, state, refs)
//	GET  /sessions/{id}/metrics       one session's Prometheus text
//	GET  /sessions/{id}/results.json  one session's results JSON — final
//	                                  after completion, a live snapshot
//	                                  (config.live = true) while running
//
// The isolation story mirrors internal/sweep: a session owns its whole
// simulator, registry, sampler, and event log; nothing is shared between
// sessions, so any interleaving of concurrent sessions yields the same
// per-session results as running each alone. The only cross-session
// surfaces are the read-only merged /metrics view and the daemon's own
// admission counters (guarded by one mutex, touched per request — never
// per reference).
package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mosaic/internal/obs"
	"mosaic/internal/results"
	"mosaic/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrently running sessions (0 = GOMAXPROCS).
	Workers int
	// Queue bounds sessions admitted beyond the running ones (waiting for
	// a worker, their clients still streaming or about to). Admissions
	// past workers+queue are refused with 503. Default 8.
	Queue int
	// SampleEvery is the default per-session sampling/publication window
	// in references, overridable per session with ?sample=N. Default 65536.
	SampleEvery uint64
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 8
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 65536
	}
}

// Server is the daemon: session table, scheduling pool, and admission
// metrics. Create with New, expose with Handler, stop with Drain.
type Server struct {
	cfg  Config
	pool *sweep.Pool

	mu       sync.Mutex
	sessions []*Session // ID = index+1; append-only
	draining bool

	// Admission metrics live in their own registry, guarded by mu (the
	// per-request path can afford a mutex; per-reference paths never
	// touch this). Sessions publish their own registries lock-free.
	reg        *obs.Registry
	cStarted   *obs.Counter // mosaicd.sessions.started
	cCompleted *obs.Counter // mosaicd.sessions.completed
	cFailed    *obs.Counter // mosaicd.sessions.failed
	cRejected  *obs.Counter // mosaicd.sessions.rejected
	cRefs      *obs.Counter // mosaicd.refs.total
	gActive    *obs.Gauge   // mosaicd.sessions.active
}

// New builds a Server and starts its session pool.
func New(cfg Config) *Server {
	cfg.applyDefaults()
	reg := obs.NewRegistry()
	return &Server{
		cfg:        cfg,
		pool:       sweep.NewPool(cfg.Workers, cfg.Queue),
		reg:        reg,
		cStarted:   reg.Counter("mosaicd.sessions.started"),
		cCompleted: reg.Counter("mosaicd.sessions.completed"),
		cFailed:    reg.Counter("mosaicd.sessions.failed"),
		cRejected:  reg.Counter("mosaicd.sessions.rejected"),
		cRefs:      reg.Counter("mosaicd.refs.total"),
		gActive:    reg.Gauge("mosaicd.sessions.active"),
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("GET /sessions/{id}/metrics", s.handleSessionMetrics)
	mux.HandleFunc("GET /sessions/{id}/results.json", s.handleSessionResults)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Drain stops admitting sessions (new POSTs get 503) and blocks until
// every admitted session has run to completion. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.pool.Drain()
}

// handleCreate admits one streaming session: the request body is the
// binary trace, the response is the finished session's results JSON.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	cfg, err := sessionConfigFromQuery(r.URL.Query(), s.cfg.SampleEvery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := s.admit(cfg)
	if err != nil {
		s.mu.Lock()
		s.cRejected.Inc()
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	body := r.Body
	if err := s.pool.TrySubmit(func() { s.runSession(sess, body) }); err != nil {
		// Admission raced a concurrent drain; the session never ran.
		s.mu.Lock()
		s.cRejected.Inc()
		sess.fail(fmt.Errorf("daemon: %w", err))
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	<-sess.done

	f, runErr := sess.Result()
	if runErr != nil {
		http.Error(w, fmt.Sprintf("session %d: %v", sess.ID, runErr), http.StatusBadRequest)
		return
	}
	writeJSON(w, f)
}

// admit reserves a session slot unless the daemon is draining or the
// table is full; the pool enforces the concurrency/queue bound itself at
// submit time.
func (s *Server) admit(cfg SessionConfig) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, fmt.Errorf("daemon: %w", sweep.ErrPoolDraining)
	}
	sess := newSession(len(s.sessions)+1, cfg)
	s.sessions = append(s.sessions, sess)
	s.cStarted.Inc()
	return sess, nil
}

// runSession executes one session on a pool worker and settles the
// daemon-level admission metrics around it.
func (s *Server) runSession(sess *Session, body io.Reader) {
	s.mu.Lock()
	s.gActive.Add(1)
	s.mu.Unlock()

	sess.run(body)

	s.mu.Lock()
	s.gActive.Add(-1)
	if _, err := sess.Result(); err != nil {
		s.cFailed.Inc()
	} else {
		s.cCompleted.Inc()
		s.cRefs.Add(sess.Refs())
	}
	s.mu.Unlock()
}

// handleMetrics serves the merged Prometheus view: daemon admission
// metrics plus every session's latest publication, merged in session-ID
// order (counters and histograms sum; session gauges are last-writer-wins
// and are meaningful per session, so scrape /sessions/{id}/metrics for
// per-session gauge fidelity).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.reg.Snapshot()
	sessions := append([]*Session(nil), s.sessions...)
	s.mu.Unlock()
	for _, sess := range sessions {
		if pub, ok := sess.Published(); ok {
			snap = snap.Merge(pub.Snap)
		}
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	fmt.Fprint(w, snap.Prometheus())
}

// sessionByID resolves the {id} path value, or writes a 404.
func (s *Server) sessionByID(w http.ResponseWriter, r *http.Request) *Session {
	id, err := strconv.Atoi(r.PathValue("id"))
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	if err != nil || id < 1 || id > n {
		http.Error(w, fmt.Sprintf("no session %q", r.PathValue("id")), http.StatusNotFound)
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id-1]
}

func (s *Server) handleSessionMetrics(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionByID(w, r)
	if sess == nil {
		return
	}
	pub, ok := sess.Published()
	if !ok {
		http.Error(w, fmt.Sprintf("session %d has not published yet", sess.ID), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	fmt.Fprint(w, pub.Snap.Prometheus())
}

func (s *Server) handleSessionResults(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionByID(w, r)
	if sess == nil {
		return
	}
	f, err := sess.ResultsFile()
	if err != nil {
		http.Error(w, fmt.Sprintf("session %d: %v", sess.ID, err), http.StatusConflict)
		return
	}
	writeJSON(w, f)
}

// sessionInfo is one row of the GET /sessions table.
type sessionInfo struct {
	ID      int     `json:"id"`
	Label   string  `json:"label,omitempty"`
	State   string  `json:"state"`
	Refs    uint64  `json:"refs"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := append([]*Session(nil), s.sessions...)
	s.mu.Unlock()
	now := time.Now()
	infos := make([]sessionInfo, len(sessions))
	for i, sess := range sessions {
		infos[i] = sess.info(now)
	}
	writeJSON(w, infos)
}

// writeJSON marshals v indented; results.File values serialize exactly as
// results.Write lays them down on disk.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// ResultsFile renders the daemon's final merged snapshot — the drain
// artifact cmd/mosaicd writes on SIGTERM — in the same schema-versioned
// format every batch driver emits.
func (s *Server) ResultsFile() *results.File {
	s.mu.Lock()
	snap := s.reg.Snapshot()
	sessions := append([]*Session(nil), s.sessions...)
	s.mu.Unlock()
	f := results.New("mosaicd")
	f.Config["workers"] = s.cfg.Workers
	f.Config["queue"] = s.cfg.Queue
	f.Config["sessions"] = len(sessions)
	for _, sess := range sessions {
		if pub, ok := sess.Published(); ok {
			snap = snap.Merge(pub.Snap)
		}
	}
	f.AddSnapshot("", snap)
	return f
}
