// Package rng is the single source of pseudorandomness for the internal
// tree. Every simulator component that needs randomness receives a seeded
// *rand.Rand constructed here (or threaded in by its caller), so that a
// given seed always reproduces the same trace, placement, and workload —
// the property the perf-comparison harness depends on across PRs.
//
// The mosaiclint `detrand` analyzer enforces the discipline: no package
// under internal/ other than this one may call math/rand package functions
// (the global source, or ad-hoc rand.New/rand.NewSource construction).
// Methods on an injected *rand.Rand are always allowed.
package rng

import "math/rand"

// New returns a generator deterministically seeded with seed. The stream is
// identical to rand.New(rand.NewSource(int64(seed))), the construction the
// internal packages used before the discipline was centralized, so default
// seeds keep producing byte-identical traces and golden results.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)))
}

// Derive returns a generator for an independent sub-stream of seed,
// distinguished by salt (conventionally the ASCII spelling of the
// component's name). Equivalent to New(seed ^ salt); callers use it so two
// components sharing one configured seed do not consume the same stream.
func Derive(seed, salt uint64) *rand.Rand {
	return New(seed ^ salt)
}
