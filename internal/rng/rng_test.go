package rng

import (
	"math/rand"
	"testing"
)

// TestNewMatchesLegacyConstruction pins the compatibility contract: New must
// reproduce the exact stream of the rand.New(rand.NewSource(int64(seed)))
// construction it replaced, or every golden result in results/ would shift.
func TestNewMatchesLegacyConstruction(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0x787362656E6368, ^uint64(0)} {
		got := New(seed)
		want := rand.New(rand.NewSource(int64(seed)))
		for i := 0; i < 100; i++ {
			if g, w := got.Uint64(), want.Uint64(); g != w {
				t.Fatalf("seed %#x: stream diverges at draw %d: got %#x want %#x", seed, i, g, w)
			}
		}
	}
}

// TestDeriveMatchesXorConvention pins Derive to the pre-existing
// int64(seed)^salt seeding convention of the workload packages.
func TestDeriveMatchesXorConvention(t *testing.T) {
	seed, salt := uint64(7), uint64(0x6C6F6F6B757073)
	got := Derive(seed, salt)
	want := rand.New(rand.NewSource(int64(seed) ^ 0x6C6F6F6B757073))
	for i := 0; i < 100; i++ {
		if g, w := got.Uint64(), want.Uint64(); g != w {
			t.Fatalf("stream diverges at draw %d: got %#x want %#x", i, g, w)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a, b := Derive(7, 1), Derive(7, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams with distinct salts collided %d/64 draws", same)
	}
}
