package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/lint/gate"
)

var fixturePins = []InlinePin{{File: "hot.go", Func: "(*counter).step", Why: "fixture driver loop"}}

func inlineFixtureSites(t *testing.T, variant string) (string, gate.Sites) {
	t.Helper()
	dir := gateFixture(t, "inlinegate", variant)
	sites, err := inlineGateFor(fixturePins, []string{"./..."}).Compile(dir)
	if err != nil {
		t.Fatal(err)
	}
	return dir, sites
}

// TestInlineGateCatchesUninline pins the gate's reason for existing:
// against a baseline captured from the lean step method, growing a defer
// (which the inliner refuses outright) must flip the pinned verdict to
// "cannot inline" and fail.
func TestInlineGateCatchesUninline(t *testing.T) {
	_, lean := inlineFixtureSites(t, "lean")
	_, deferred := inlineFixtureSites(t, "deferred")

	if _, ok := lean["hot.go: (*counter).step: can inline"]; !ok {
		t.Fatalf("lean fixture's step is not inlinable; sites: %v", lean)
	}
	if diags := inlinePinDiags(fixturePins, lean, lean); len(diags) != 0 {
		t.Fatalf("healthy fixture fails its own pin check: %v", diags)
	}

	diags := inlinePinDiags(fixturePins, lean, deferred)
	if len(diags) != 1 {
		t.Fatalf("got %d pin diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "inlinegate" || d.ID != "ML010" {
		t.Errorf("diagnostic carries wrong identity: %q/%q", d.Analyzer, d.ID)
	}
	if !strings.Contains(d.Message, "no longer inlines") || !strings.Contains(d.Message, "(*counter).step") {
		t.Errorf("verdict-flip message wrong: %s", d.Message)
	}
}

// TestInlineGateReportsCostGrowth pins the headroom half of the contract:
// a pin that stays inlinable but got more expensive is a regression against
// the baselined cost, reported with both numbers.
func TestInlineGateReportsCostGrowth(t *testing.T) {
	key := "hot.go: (*counter).step: can inline"
	baseline := gate.Sites{key: {Count: 10}}
	current := gate.Sites{key: {Count: 42, Line: 7}}
	reg, removed := gate.Diff(baseline, current)
	if len(reg) != 1 || len(removed) != 0 {
		t.Fatalf("diff = %v / %v, want one cost-growth regression", reg, removed)
	}
	if r := reg[0]; !r.Known || r.Count != 42 || r.BaseCount != 10 {
		t.Errorf("regression = %+v, want known growth 10→42", r)
	}
	// The shrinking direction banks instead of failing.
	reg, removed = gate.Diff(current, baseline)
	if len(reg) != 0 || len(removed) != 1 {
		t.Errorf("cheaper pin should be bankable, got %v / %v", reg, removed)
	}
}

// TestInlineNormalizePrefersShape pins the generics subtlety: the compiler
// reports dictionary wrappers as "can inline" even when the go.shape
// function — the code that executes — is over budget. The shape verdict
// must win or the gate is blind to every generic pin.
func TestInlineNormalizePrefersShape(t *testing.T) {
	pins := []InlinePin{{File: "x.go", Func: "(*T).F", Why: "test"}}
	out := []byte(`# mod/x
x.go:10:6: can inline (*T[uint64]).F with cost 72 as: method(*T[uint64]) func() { return }
x.go:10:6: cannot inline (*T[go.shape.uint64]).F: function too complex: cost 117 exceeds budget 80
`)
	sites, err := normalizeInline(pins, out)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := sites["x.go: (*T).F: cannot inline"]; !ok || s.Count != 117 {
		t.Fatalf("shape verdict did not win: %v", sites)
	}
	if _, ok := sites["x.go: (*T).F: can inline"]; ok {
		t.Error("dictionary wrapper verdict leaked into the sites")
	}

	// Without a shape instantiation the plain verdict stands.
	out = []byte("x.go:10:6: can inline (*T).F with cost 30 as: method(*T) func() { return }\n")
	sites, err = normalizeInline(pins, out)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := sites["x.go: (*T).F: can inline"]; !ok || s.Count != 30 {
		t.Fatalf("plain verdict missing: %v", sites)
	}
}

// TestCanonicalFuncName pins instantiation stripping, including nested
// brackets inside shape struct types.
func TestCanonicalFuncName(t *testing.T) {
	cases := map[string]string{
		"(*set[go.shape.uint64]).lookup":                     "(*set).lookup",
		"(*Table[uint64,uint64]).Put":                        "(*Table).Put",
		"(*set[go.shape.struct { a [4]uint64; b int }]).get": "(*set).get",
		"(*limitSink).Access":                                "(*limitSink).Access",
		"AblateTimestamps.func1":                             "AblateTimestamps.func1",
	}
	for in, want := range cases {
		if got := canonicalFuncName(in); got != want {
			t.Errorf("canonicalFuncName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestInlineGateMissingPin: a pin whose function vanished from the compile
// output must fail loudly rather than silently passing.
func TestInlineGateMissingPin(t *testing.T) {
	pins := []InlinePin{{File: "gone.go", Func: "vanished", Why: "test"}}
	diags := inlinePinDiags(pins, gate.Sites{}, gate.Sites{})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not found") {
		t.Fatalf("missing pin not reported: %v", diags)
	}
}

// TestInlineTreeClean is the in-repo gate itself: every pinned hot function
// currently inlines and matches the checked-in baseline.
func TestInlineTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles five packages; skipped in -short")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	reg, _, err := RunInlineGate(root, filepath.Join(root, InlineBaselineFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range reg {
		t.Errorf("pinned-inline regression: %s", d)
	}
	// The baseline itself must carry a "can inline" verdict for every pin —
	// a baseline banked with a broken pin would mask the contract.
	data, err := os.ReadFile(filepath.Join(root, InlineBaselineFile))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := gate.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, pin := range InlinePins {
		if _, ok := baseline[pin.File+": "+pin.Func+": can inline"]; !ok {
			t.Errorf("pin %s: %s has no 'can inline' entry in %s", pin.File, pin.Func, InlineBaselineFile)
		}
	}
}
