package lint

import (
	"go/ast"
	"go/token"
)

// CPFNBounds confines compressed-frame-number tricks to the two packages
// that define their semantics. A CPFN is a 7-bit index into a page's
// candidate slot set — not a number — so minting one from a raw integer
// outside internal/core bypasses the geometry's validity rules
// (Geometry.ValidCPFN, the frontyard/backyard split), and arithmetic on
// PFNs or CPFNs outside internal/core and internal/alloc invents frame
// layouts the allocator never granted. Outside those packages:
//
//   - conversions to core.CPFN are flagged (conversions to PFN are fine —
//     a PFN is an ordinary frame number; it is offset arithmetic that
//     must go through PFN.Add/PFN.Sub);
//   - binary arithmetic, arithmetic assignment, and ++/-- on values of
//     type core.PFN or core.CPFN are flagged. Comparisons are always
//     allowed.
var CPFNBounds = &Analyzer{
	Name: "cpfnbounds",
	ID:   "ML003",
	Doc:  "raw integer→CPFN conversions and PFN arithmetic are confined to internal/core and internal/alloc",
	Run:  runCPFNBounds,
}

const corePkg = "mosaic/internal/core"

// cpfnExempt lists the packages where frame-number arithmetic is the point.
var cpfnExempt = map[string]bool{
	corePkg:                 true,
	"mosaic/internal/alloc": true,
}

// frameNumber reports whether e has type core.PFN or core.CPFN, naming
// which.
func (p *Pass) frameNumber(e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok {
		return "", false
	}
	for _, name := range []string{"PFN", "CPFN"} {
		if namedFrom(tv.Type, corePkg, name) {
			return "core." + name, true
		}
	}
	return "", false
}

// arithmeticOp reports whether the token is an arithmetic (not comparison
// or logical) binary operator or its assignment form.
func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT,
		token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}

func runCPFNBounds(p *Pass) []Diagnostic {
	if cpfnExempt[p.ImportPath] {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Conversion T(x) with T = core.CPFN.
				tv, ok := p.Info.Types[n.Fun]
				if !ok || !tv.IsType() || !namedFrom(tv.Type, corePkg, "CPFN") {
					return true
				}
				if len(n.Args) == 1 {
					if name, ok := p.frameNumber(n.Args[0]); ok && name == "core.CPFN" {
						return true // CPFN→CPFN identity, harmless
					}
				}
				out = append(out, p.diag("cpfnbounds", n.Pos(),
					"raw conversion to core.CPFN outside internal/core: use the Geometry encode helpers"))
			case *ast.BinaryExpr:
				if !arithmeticOp(n.Op) {
					return true
				}
				if name, ok := p.frameNumber(n.X); ok {
					out = append(out, p.diag("cpfnbounds", n.OpPos,
						"%s arithmetic outside internal/core and internal/alloc: use PFN.Add/PFN.Sub or keep the computation on plain integers", name))
				} else if name, ok := p.frameNumber(n.Y); ok {
					out = append(out, p.diag("cpfnbounds", n.OpPos,
						"%s arithmetic outside internal/core and internal/alloc: use PFN.Add/PFN.Sub or keep the computation on plain integers", name))
				}
			case *ast.AssignStmt:
				if !arithmeticOp(n.Tok) {
					return true
				}
				for _, lhs := range n.Lhs {
					if name, ok := p.frameNumber(lhs); ok {
						out = append(out, p.diag("cpfnbounds", n.TokPos,
							"%s arithmetic outside internal/core and internal/alloc: use PFN.Add/PFN.Sub or keep the computation on plain integers", name))
					}
				}
			case *ast.IncDecStmt:
				if name, ok := p.frameNumber(n.X); ok {
					out = append(out, p.diag("cpfnbounds", n.TokPos,
						"%s arithmetic outside internal/core and internal/alloc: use PFN.Add/PFN.Sub or keep the computation on plain integers", name))
				}
			}
			return true
		})
	}
	return out
}
