package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file builds the whole-module call graph the fixpoint summary engine
// (fixpoint.go) and the deep analyzers run on. Nodes are the functions
// declared in the loaded packages; edges are direct calls plus
// interface-dispatch edges resolved through method sets. Because each
// package is type-checked with its own importer, the same imported function
// is a *different* types.Func object in every importing package — so the
// graph is keyed by a stable rendered function ID, and all cross-package
// structural questions (does T implement this interface?) are answered by
// comparing method signatures rendered with full package-path qualifiers,
// which are identical across type-checker universes.

// An edgeKind distinguishes how a call edge was resolved.
type edgeKind uint8

const (
	// edgeStatic is a direct call to a declared function or method.
	edgeStatic edgeKind = iota
	// edgeDispatch is a call through an interface method, fanned out to
	// every module-declared method whose receiver satisfies the interface.
	edgeDispatch
)

func (k edgeKind) String() string {
	if k == edgeDispatch {
		return "dispatch"
	}
	return "static"
}

// A progEdge is one resolved call edge.
type progEdge struct {
	to   *progFunc
	kind edgeKind
}

// A progFunc is one declared function in the program: its identity, its
// declaring pass (type-checker universe), its outgoing edges, and — once the
// engine has run — its fixpoint summary.
type progFunc struct {
	id   string
	fn   *types.Func
	decl *ast.FuncDecl
	pass *Pass
	out  []progEdge // sorted by (to.id, kind), deduplicated
	scc  int        // index into Program.sccs (bottom-up order)
	rank int        // condensation DAG depth: 0 = leaf (no module callees)
	sum  *funcSummary
}

// A Program is the whole-module index: every declared function, the call
// graph over them, its Tarjan SCC condensation in bottom-up order, and the
// per-function summaries computed by the fixpoint engine.
type Program struct {
	passes []*Pass
	byID   map[string]*progFunc
	funcs  []*progFunc   // sorted by id
	sccs   [][]*progFunc // bottom-up: every SCC follows all SCCs it calls into
	ranks  [][]int       // sccs indices grouped by rank, ranks ascending
	// workers bounds the per-rank summary parallelism (0 = sweep default).
	workers int
	// fieldTaint maps a struct-field ID ("pkg.Type.field") to the taint mask
	// observed flowing into that field anywhere in the module. It is the one
	// global lattice: written between fixpoint rounds, read during them.
	fieldTaint map[string]taintMask
}

// funcID renders a function's stable identity: "pkg.Func" for package
// functions, "pkg.(T).M" / "pkg.(*T).M" for methods. The rendering depends
// only on names and package paths, never on type-checker object identity,
// so the same function imported into two passes resolves to one node.
func funcID(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if pt, isPtr := t.(*types.Pointer); isPtr {
			t = pt.Elem()
			ptr = "*"
		}
		if n, isNamed := types.Unalias(t).(*types.Named); isNamed && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + ".(" + ptr + n.Obj().Name() + ")." + fn.Name()
		}
		// Interface receivers (abstract methods) and other exotica never
		// become nodes; give them a recognizable non-colliding rendering.
		return "<abstract>." + fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// pathQualifier renders named types with their full package path, the one
// rendering that is identical across type-checker universes.
func pathQualifier(p *types.Package) string { return p.Path() }

// methodSig renders a method's dispatch signature — name plus parameter and
// result types, receiver and parameter names excluded — with full-path
// qualifiers, so structurally identical methods render identically across
// type-checker universes and across differently-named declarations.
func methodSig(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	return fn.Name() + sigString(sig)
}

func sigString(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		t := params.At(i).Type()
		if sig.Variadic() && i == params.Len()-1 {
			if sl, isSlice := t.(*types.Slice); isSlice {
				b.WriteString("...")
				b.WriteString(types.TypeString(sl.Elem(), pathQualifier))
				continue
			}
		}
		b.WriteString(types.TypeString(t, pathQualifier))
	}
	b.WriteByte(')')
	res := sig.Results()
	switch {
	case res.Len() == 1:
		b.WriteByte(' ')
		b.WriteString(types.TypeString(res.At(0).Type(), pathQualifier))
	case res.Len() > 1:
		b.WriteString(" (")
		for i := 0; i < res.Len(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(types.TypeString(res.At(i).Type(), pathQualifier))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// A concreteType is one named type with at least one module-declared method:
// its full pointer-method-set signatures (for interface satisfaction) and
// the graph node behind each declared method.
type concreteType struct {
	id      string
	allSigs map[string]bool      // every method in the pointer method set
	nodes   map[string]*progFunc // sig → declared node (module methods only)
}

// dispatchIndex resolves interface method calls to concrete targets.
type dispatchIndex struct {
	types []*concreteType
	cache map[string][]*progFunc
}

// targets returns, in deterministic order, every module-declared method a
// call through the interface method ifn could dispatch to: methods on types
// whose pointer method set structurally satisfies the interface.
func (di *dispatchIndex) targets(iface *types.Interface, ifn *types.Func) []*progFunc {
	want := make([]string, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		want = append(want, methodSig(iface.Method(i)))
	}
	sort.Strings(want)
	callSig := methodSig(ifn)
	key := callSig + "|" + strings.Join(want, ";")
	if hit, ok := di.cache[key]; ok {
		return hit
	}
	var out []*progFunc
	for _, ct := range di.types {
		ok := true
		for _, sig := range want {
			if !ct.allSigs[sig] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if node := ct.nodes[callSig]; node != nil {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	di.cache[key] = out
	return out
}

// BuildProgram indexes the passes into a whole-module call graph, condenses
// it with Tarjan's algorithm, and computes every function summary bottom-up
// with fixpoint iteration inside cycles. workers bounds the per-rank
// parallelism (0 = the sweep engine's default); the result is byte-identical
// at any worker count.
func BuildProgram(passes []*Pass, workers int) *Program {
	pr := &Program{
		passes:     passes,
		byID:       map[string]*progFunc{},
		workers:    workers,
		fieldTaint: map[string]taintMask{},
	}
	for _, p := range passes {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				pf := &progFunc{id: funcID(fn), fn: fn, decl: fd, pass: p}
				if pr.byID[pf.id] == nil {
					pr.byID[pf.id] = pf
					pr.funcs = append(pr.funcs, pf)
				}
			}
		}
	}
	sort.Slice(pr.funcs, func(i, j int) bool { return pr.funcs[i].id < pr.funcs[j].id })
	di := pr.buildDispatchIndex()
	for _, pf := range pr.funcs {
		pr.addEdges(pf, di)
	}
	pr.condense()
	pr.levelize()
	pr.computeSummaries()
	for _, p := range passes {
		p.prog = pr
	}
	return pr
}

// buildDispatchIndex collects every named type that declares a graph node
// method, with its pointer method set rendered for structural matching.
func (pr *Program) buildDispatchIndex() *dispatchIndex {
	di := &dispatchIndex{cache: map[string][]*progFunc{}}
	seen := map[string]bool{}
	for _, p := range pr.passes {
		scope := p.Pkg.Scope()
		names := scope.Names()
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			id := p.Pkg.Path() + "." + name
			if seen[id] {
				continue
			}
			seen[id] = true
			ct := &concreteType{id: id, allSigs: map[string]bool{}, nodes: map[string]*progFunc{}}
			ms := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < ms.Len(); i++ {
				m, ok := ms.At(i).Obj().(*types.Func)
				if !ok {
					continue
				}
				sig := methodSig(m)
				ct.allSigs[sig] = true
				if node := pr.byID[funcID(m)]; node != nil {
					ct.nodes[sig] = node
				}
			}
			if len(ct.nodes) > 0 {
				di.types = append(di.types, ct)
			}
		}
	}
	sort.Slice(di.types, func(i, j int) bool { return di.types[i].id < di.types[j].id })
	return di
}

// addEdges resolves every call expression in pf's body (function literals
// included — their calls run on behalf of the enclosing function) to static
// or dispatch edges.
func (pr *Program) addEdges(pf *progFunc, di *dispatchIndex) {
	seen := map[progEdge]bool{}
	add := func(e progEdge) {
		if e.to != nil && !seen[e] {
			seen[e] = true
			pf.out = append(pf.out, e)
		}
	}
	ast.Inspect(pf.decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := callee(pf.pass.Info, call).(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if iface, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				for _, target := range di.targets(iface, fn) {
					add(progEdge{target, edgeDispatch})
				}
				return true
			}
		}
		add(progEdge{pr.byID[funcID(fn)], edgeStatic})
		return true
	})
	sort.Slice(pf.out, func(i, j int) bool {
		a, b := pf.out[i], pf.out[j]
		if a.to.id != b.to.id {
			return a.to.id < b.to.id
		}
		return a.kind < b.kind
	})
}

// condense runs Tarjan's SCC algorithm over the sorted node order. Tarjan
// emits each component only after every component it can reach — so
// Program.sccs is already in bottom-up (callees-first) order, exactly the
// order the summary engine wants.
func (pr *Program) condense() {
	index := make(map[*progFunc]int, len(pr.funcs))
	low := make(map[*progFunc]int, len(pr.funcs))
	onStack := make(map[*progFunc]bool, len(pr.funcs))
	var stack []*progFunc
	next := 0
	var connect func(v *progFunc)
	connect = func(v *progFunc) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range v.out {
			w := e.to
			if _, visited := index[w]; !visited {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*progFunc
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i].id < comp[j].id })
			for _, w := range comp {
				w.scc = len(pr.sccs)
			}
			pr.sccs = append(pr.sccs, comp)
		}
	}
	for _, v := range pr.funcs {
		if _, visited := index[v]; !visited {
			connect(v)
		}
	}
}

// levelize groups the condensation into ranks: an SCC's rank is one more
// than the deepest SCC it calls into. All SCCs in one rank depend only on
// lower ranks, so each rank's summaries can be computed in parallel.
func (pr *Program) levelize() {
	rankOf := make([]int, len(pr.sccs))
	maxRank := 0
	for i, comp := range pr.sccs {
		r := 0
		for _, v := range comp {
			for _, e := range v.out {
				if e.to.scc != i && rankOf[e.to.scc]+1 > r {
					r = rankOf[e.to.scc] + 1
				}
			}
		}
		rankOf[i] = r
		for _, v := range comp {
			v.rank = r
		}
		if r > maxRank {
			maxRank = r
		}
	}
	pr.ranks = make([][]int, maxRank+1)
	for i := range pr.sccs {
		pr.ranks[rankOf[i]] = append(pr.ranks[rankOf[i]], i)
	}
}

// cyclic reports whether an SCC needs fixpoint iteration: more than one
// member, or a single member that calls itself.
func cyclic(comp []*progFunc) bool {
	if len(comp) > 1 {
		return true
	}
	for _, e := range comp[0].out {
		if e.to == comp[0] {
			return true
		}
	}
	return false
}

// node resolves a types.Func (from any pass's universe) to its graph node,
// or nil for functions outside the loaded module.
func (pr *Program) node(fn *types.Func) *progFunc {
	if fn == nil {
		return nil
	}
	return pr.byID[funcID(fn)]
}

// summaryOf returns a function's fixpoint summary, or nil for functions
// outside the module.
func (pr *Program) summaryOf(fn *types.Func) *funcSummary {
	if pf := pr.node(fn); pf != nil {
		return pf.sum
	}
	return nil
}

// reachable returns the set of node IDs reachable from pf over static and
// dispatch edges, including pf itself.
func (pr *Program) reachable(pf *progFunc) map[string]bool {
	seen := map[string]bool{pf.id: true}
	work := []*progFunc{pf}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range v.out {
			if !seen[e.to.id] {
				seen[e.to.id] = true
				work = append(work, e.to)
			}
		}
	}
	return seen
}

// AttachProgram ensures the passes share one built Program, building it
// with the given worker bound when absent. RunAll calls it with the default
// bound; cmd/mosaiclint calls it explicitly to honour -workers.
func AttachProgram(passes []*Pass, workers int) *Program {
	for _, p := range passes {
		if p.prog != nil {
			return p.prog
		}
	}
	if len(passes) == 0 {
		return nil
	}
	return BuildProgram(passes, workers)
}

// cgFunc is one function entry in the -callgraph export. The export is
// position-free on purpose: parse order (and therefore token offsets) can
// differ across worker counts, but IDs, edges, SCCs, and ranks cannot.
type cgFunc struct {
	ID    string   `json:"id"`
	SCC   int      `json:"scc"`
	Rank  int      `json:"rank"`
	Calls []cgEdge `json:"calls,omitempty"`
}

type cgEdge struct {
	To   string `json:"to"`
	Kind string `json:"kind"`
}

// cgFile is the -callgraph json document.
type cgFile struct {
	SchemaVersion int      `json:"schema_version"`
	Funcs         []cgFunc `json:"funcs"`
	SCCs          int      `json:"sccs"`
	Ranks         int      `json:"ranks"`
}

// WriteJSON emits the call graph as deterministic JSON: functions sorted by
// ID, edges in their canonical order, SCC indices in bottom-up order.
func (pr *Program) WriteJSON(w io.Writer) error {
	file := cgFile{SchemaVersion: 1, SCCs: len(pr.sccs), Ranks: len(pr.ranks)}
	for _, pf := range pr.funcs {
		f := cgFunc{ID: pf.id, SCC: pf.scc, Rank: pf.rank}
		for _, e := range pf.out {
			f.Calls = append(f.Calls, cgEdge{To: e.to.id, Kind: e.kind.String()})
		}
		file.Funcs = append(file.Funcs, f)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// WriteDOT emits the call graph in Graphviz dot form, nodes labelled with
// their SCC and rank, dispatch edges dashed.
func (pr *Program) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for _, pf := range pr.funcs {
		fmt.Fprintf(&b, "  %q [label=\"%s\\nscc=%d rank=%d\"];\n", pf.id, pf.id, pf.scc, pf.rank)
	}
	for _, pf := range pr.funcs {
		for _, e := range pf.out {
			style := ""
			if e.kind == edgeDispatch {
				style = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", pf.id, e.to.id, style)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
