package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder protects the sweep engine's headline guarantee — byte-identical
// JSON at any worker count — from Go's randomized map iteration order. A
// `range` over a map is fine while the loop body only does commutative
// work (summing values, building another map, collecting keys to sort),
// but the moment the body emits ordered output the result depends on the
// iteration order of that one run:
//
//   - appending composite records to a slice declared outside the loop
//     (result cells, series, events — the rows that reach results JSON);
//     appending basic-typed elements is allowed, because collecting keys
//     into a slice and sorting it is the canonical remedy;
//   - writing through a reference sink (an Access method on a *Sink type
//     or anything from internal/trace) — the reference stream itself would
//     replay in map order;
//   - contributing to a sweep.Merger (Put), setting an obs gauge, or
//     recording obs events — last-writer-wins and append-ordered planes;
//   - printing (fmt.Print family, the print/println builtins).
//
// The fix is always the same: extract the keys, sort them, range over the
// sorted slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	ID:   "ML006",
	Doc:  "loops over maps must not emit ordered output; iterate a sorted key slice instead",
	Run:  runMapOrder,
}

// fmtPrinters are the fmt functions that emit in call order.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// orderedPkgs are the packages whose method calls are treated as ordered
// emission when made from inside a map-range body.
var orderedPkgs = map[string]bool{
	"mosaic/internal/trace": true,
}

// recvNamed returns the named type of a method's receiver with pointers
// unwrapped, or nil for non-methods.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// orderedCall classifies a call inside a map-range body as ordered
// emission, returning a short description or "".
func orderedCall(p *Pass, call *ast.CallExpr) string {
	// print/println builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := p.Info.Uses[id]; ok && (obj == types.Universe.Lookup("print") || obj == types.Universe.Lookup("println")) {
			return "prints via " + id.Name
		}
	}
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	if pkg == "fmt" && fmtPrinters[fn.Name()] {
		return "prints via fmt." + fn.Name()
	}
	named := recvNamed(fn)
	recvName := ""
	if named != nil {
		recvName = named.Obj().Name()
	}
	switch {
	case orderedPkgs[pkg]:
		return "writes the trace plane via " + fn.Name()
	case pkg == "mosaic/internal/sweep" && recvName == "Merger" && fn.Name() == "Put":
		return "contributes to a sweep.Merger"
	case pkg == "mosaic/internal/obs" && recvName == "Gauge" && fn.Name() == "Set":
		return "sets an obs gauge (last-writer-wins)"
	case pkg == "mosaic/internal/obs" && recvName == "EventLog":
		return "records obs events"
	case fn.Name() == "Access" && strings.Contains(recvName, "Sink"):
		return "emits references through " + recvName + ".Access"
	}
	// Interface methods have no named receiver; classify Sink-shaped
	// interfaces by the interface's declaring package or name.
	if named == nil && fn.Name() == "Access" && pkg == "mosaic" {
		return "emits references through a Sink"
	}
	return ""
}

// sortFuncs lists the sort entry points that neutralize an append-in-map-
// order: a slice that is sorted after the loop no longer depends on
// iteration order.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether body contains, after pos, a sort call whose
// first argument is (textually) target — the append-then-sort idiom.
func sortedAfter(p *Pass, body ast.Node, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		fn, ok := callee(p.Info, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		names := sortFuncs[fn.Pkg().Path()]
		if names != nil && names[fn.Name()] && exprText(p.Fset, call.Args[0]) == target {
			found = true
		}
		return true
	})
	return found
}

// outerAppend reports whether the assignment appends a composite element to
// a slice declared outside the range statement, returning a description and
// the target's source text (for the sorted-after check).
func outerAppend(p *Pass, as *ast.AssignStmt, rs *ast.RangeStmt) (string, string) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || p.Info.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		if i >= len(as.Lhs) && len(as.Lhs) != 1 {
			continue
		}
		var target ast.Expr
		if len(as.Lhs) == 1 {
			target = as.Lhs[0]
		} else {
			target = as.Lhs[i]
		}
		outside := false
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			obj := p.Info.Uses[t]
			if obj == nil {
				obj = p.Info.Defs[t]
			}
			outside = obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
		case *ast.SelectorExpr:
			outside = true // field of some longer-lived struct
		}
		if !outside {
			continue
		}
		tv, ok := p.Info.Types[rhs]
		if !ok {
			continue
		}
		slice, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			continue
		}
		if _, basic := slice.Elem().Underlying().(*types.Basic); basic {
			continue // collecting keys for sorting — the canonical fix
		}
		return "appends " + types.TypeString(slice.Elem(), types.RelativeTo(p.Pkg)) +
			" records to a slice that outlives the loop", exprText(p.Fset, target)
	}
	return "", ""
}

// enclosingBody returns the innermost function body in the stack.
func enclosingBody(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func runMapOrder(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			body := enclosingBody(stack[:len(stack)-1])
			var what string
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				if what != "" {
					return false
				}
				switch stmt := m.(type) {
				case *ast.CallExpr:
					if desc := orderedCall(p, stmt); desc != "" {
						what = desc
						return false
					}
				case *ast.AssignStmt:
					desc, target := outerAppend(p, stmt, rs)
					if desc != "" {
						// An append-then-sort is the canonical remedy, not
						// a finding.
						if body != nil && sortedAfter(p, body, rs.End(), target) {
							return false
						}
						what = desc
						return false
					}
				}
				return true
			})
			if what != "" {
				out = append(out, p.diag("maporder", rs.Pos(),
					"range over map %s %s: map iteration order is random, so this breaks workers=1 ≡ workers=N byte-identity; range over a sorted key slice instead",
					exprText(p.Fset, rs.X), what))
			}
			return true
		})
	}
	return out
}
