package gate

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFormatParseRoundTrip(t *testing.T) {
	in := Sites{
		"a.go: f: Found IsInBounds": {Count: 3, Line: 10},
		"b.go: g: cannot inline":    {Count: 95},
	}
	header := []string{"test baseline", "second header line"}
	data := Format(header, in)
	if !bytes.HasPrefix(data, []byte("# test baseline\n")) {
		t.Errorf("header not rendered:\n%s", data)
	}
	out, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost sites: %v", out)
	}
	for k, v := range in {
		if out[k].Count != v.Count {
			t.Errorf("site %q: count %d, want %d", k, out[k].Count, v.Count)
		}
	}
	// Lines are deliberately not stored in the baseline.
	if out["a.go: f: Found IsInBounds"].Line != 0 {
		t.Error("baseline should not carry line numbers")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"x\ty\n", "0\tsite\n", "-1\tsite\n", "3 site-no-tab\n"} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("malformed baseline %q accepted", bad)
		}
	}
}

func TestDiffDirections(t *testing.T) {
	baseline := Sites{"keep": {Count: 2}, "shrink": {Count: 3}, "gone": {Count: 1}}
	current := Sites{"keep": {Count: 2}, "shrink": {Count: 1}, "new": {Count: 1, Line: 7}, "grown": {Count: 4}}
	// "grown" also exists in baseline with a smaller count.
	baseline["grown"] = Site{Count: 2}

	reg, removed := Diff(baseline, current)
	if len(reg) != 2 {
		t.Fatalf("got %d regressions, want 2 (new, grown): %+v", len(reg), reg)
	}
	byKey := map[string]Regression{}
	for _, r := range reg {
		byKey[r.Key] = r
	}
	if r := byKey["new"]; r.Known || r.Line != 7 {
		t.Errorf("new-site regression wrong: %+v", r)
	}
	if r := byKey["grown"]; !r.Known || r.Count != 4 || r.BaseCount != 2 {
		t.Errorf("grown-site regression wrong: %+v", r)
	}
	want := map[string]bool{"shrink": true, "gone": true}
	if len(removed) != 2 || !want[removed[0]] || !want[removed[1]] {
		t.Errorf("removed = %v, want shrink+gone", removed)
	}
}

func TestDiffSelfClean(t *testing.T) {
	s := Sites{"a": {Count: 1}, "b": {Count: 9}}
	if reg, removed := Diff(s, s); len(reg) != 0 || len(removed) != 0 {
		t.Errorf("self-diff not clean: %v / %v", reg, removed)
	}
}

// TestRunEmptyCompileTrips: a compile that yields zero sites against a
// non-empty baseline must be an error, not a pass — otherwise a build-cache
// anomaly that swallows the compiler's diagnostics reads as "every site
// improved" and the gate goes vacuously green.
func TestRunEmptyCompileTrips(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"go.mod": "module tmpgate\n\ngo 1.24\n",
		"a.go":   "package a\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	baseline := filepath.Join(dir, "test.baseline")
	if err := os.WriteFile(baseline, Format(nil, Sites{"a.go: x escapes": {Count: 1}}), 0o644); err != nil {
		t.Fatal(err)
	}
	c := Config{
		Name:       "test",
		Patterns:   []string{"."},
		Normalize:  func(string, []byte) (Sites, error) { return Sites{}, nil },
		UpdateFlag: "-update-test",
	}
	_, err := c.Run(dir, baseline)
	if err == nil || !strings.Contains(err.Error(), "no diagnostics") {
		t.Errorf("empty compile against non-empty baseline should trip, got %v", err)
	}

	// An empty baseline with an empty compile is legitimately clean.
	if err := os.WriteFile(baseline, Format(nil, Sites{}), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(dir, baseline)
	if err != nil {
		t.Fatalf("empty-vs-empty should pass: %v", err)
	}
	if len(res.Regressions) != 0 || len(res.Removed) != 0 {
		t.Errorf("empty-vs-empty not clean: %+v", res)
	}
}

func TestRunMissingBaseline(t *testing.T) {
	c := Config{Name: "test", UpdateFlag: "-update-test"}
	_, err := c.Run(t.TempDir(), "no/such/baseline")
	if err == nil || !strings.Contains(err.Error(), "-update-test") {
		t.Errorf("missing baseline error should name the update flag, got %v", err)
	}
}
