// Package gate implements mosaiclint's compiler-introspection gates: checks
// that do not inspect source syntax at all but instead drive the Go compiler
// in a diagnostic mode (`-gcflags=-m`, `-gcflags=-d=ssa/check_bce`,
// `-gcflags=-m=2`), normalize the diagnostics it emits into named sites, and
// diff those sites against a checked-in baseline file.
//
// The contract every gate shares, extracted from the original hotalloc
// escape gate:
//
//   - a site that is new, or whose count grew, is a regression and fails
//     the run — the compiler's verdict about the hot path got worse;
//   - a site that disappeared (or shrank) never fails — it is an
//     improvement worth banking into the baseline, and the gate only
//     mentions it on stderr;
//   - the baseline is regenerated with an explicit -update-* flag after a
//     reviewed change, and the resulting file diff is the review artifact.
//
// What "site" and "count" mean is up to each gate's Normalize function:
// hotalloc keys heap escapes by file and message with positions collapsed,
// bcegate keys surviving bounds checks by file and enclosing function,
// inlinegate keys inlining verdicts by function with the inliner's cost as
// the count. The framework only insists that keys are stable strings and
// counts only fail in the growing direction.
package gate

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// A Site aggregates identical normalized compiler diagnostics under one key.
type Site struct {
	// Count is the gate-defined magnitude at this site: distinct source
	// positions for hotalloc/bcegate, the inliner's cost for inlinegate.
	// Diff fails when it grows.
	Count int
	// Line is the first (lowest) line reporting the site, for diagnostics;
	// zero when the baseline (which stores no lines) is the only source.
	Line int
}

// Sites is a normalized compiler report: key → site.
type Sites = map[string]Site

// A Config describes one compiler-introspection gate.
type Config struct {
	// Name is the gate's analyzer name ("hotalloc"), used in errors.
	Name string
	// BuildFlags are passed to `go build` before the package patterns
	// (e.g. "-gcflags=-m").
	BuildFlags []string
	// Patterns are the package patterns the gate compiles.
	Patterns []string
	// Normalize turns raw compiler output into sites. dir is the module
	// root the build ran from, for gates that need to consult sources
	// (bcegate parses files to attribute lines to functions).
	Normalize func(dir string, output []byte) (Sites, error)
	// Header lines (without the leading "# ") written atop the baseline.
	Header []string
	// UpdateFlag is the mosaiclint flag that regenerates the baseline
	// ("-update-escapes"), quoted in error messages.
	UpdateFlag string
}

// A Regression is one site the current tree worsened relative to baseline.
type Regression struct {
	// Key is the normalized site key.
	Key string
	// Line is the first current line reporting the site (0 if unknown).
	Line int
	// Count is the current magnitude; BaseCount the baseline's, with
	// Known false when the site is absent from the baseline entirely.
	Count, BaseCount int
	Known            bool
}

// A Result is one full gate run: the diff plus both site maps, so callers
// can render gate-specific messages (inlinegate reports cost deltas).
type Result struct {
	Regressions []Regression
	// Removed are baseline keys that no longer occur (or shrank) —
	// improvements to bank with the gate's update flag, never failures.
	Removed  []string
	Baseline Sites
	Current  Sites
}

// Compile runs `go build` with the gate's flags from dir and returns the
// normalized sites. The build cache replays compiler diagnostics, so
// repeated runs are cheap and need no forced rebuild.
func (c Config) Compile(dir string) (Sites, error) {
	args := append([]string{"build"}, c.BuildFlags...)
	args = append(args, c.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: %s: go %s: %v\n%s", c.Name, strings.Join(args, " "), err, buf.Bytes())
	}
	return c.Normalize(dir, buf.Bytes())
}

// sortedKeys returns site keys in lexical order, so every fold over a site
// map is iteration-order independent.
func sortedKeys(sites Sites) []string {
	keys := make([]string, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Format renders sites in the baseline file format: a self-describing
// header, then one "count<TAB>key" line per site, sorted.
func Format(header []string, sites Sites) []byte {
	var b bytes.Buffer
	for _, h := range header {
		fmt.Fprintf(&b, "# %s\n", h)
	}
	for _, k := range sortedKeys(sites) {
		fmt.Fprintf(&b, "%d\t%s\n", sites[k].Count, k)
	}
	return b.Bytes()
}

// Parse reads a baseline previously written by Format.
func Parse(data []byte) (Sites, error) {
	sites := make(Sites)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		count, key, ok := strings.Cut(line, "\t")
		n, err := strconv.Atoi(count)
		if !ok || err != nil || n <= 0 {
			return nil, fmt.Errorf("gate: baseline line %d: want count<TAB>site, got %q", lineno, line)
		}
		sites[key] = Site{Count: n}
	}
	return sites, nil
}

// Diff compares current sites against the baseline: a new site or a grown
// count is a regression; a site that disappeared or shrank is listed as
// removed (bankable, never a failure).
func Diff(baseline, current Sites) (regressions []Regression, removed []string) {
	for _, key := range sortedKeys(current) {
		cur := current[key]
		base, known := baseline[key]
		if known && cur.Count <= base.Count {
			continue
		}
		regressions = append(regressions, Regression{
			Key:       key,
			Line:      cur.Line,
			Count:     cur.Count,
			BaseCount: base.Count,
			Known:     known,
		})
	}
	for _, key := range sortedKeys(baseline) {
		if cur, ok := current[key]; !ok || cur.Count < baseline[key].Count {
			removed = append(removed, key)
		}
	}
	return regressions, removed
}

// Run executes the full gate from the module root dir against the baseline
// at path. A missing baseline file is an error — the gate only means
// something against a reviewed reference point.
func (c Config) Run(dir, path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: %s baseline: %v (run mosaiclint %s to create it)", c.Name, err, c.UpdateFlag)
	}
	baseline, err := Parse(data)
	if err != nil {
		return nil, err
	}
	current, err := c.Compile(dir)
	if err != nil {
		return nil, err
	}
	// Tripwire against a vacuous pass: an empty compile against a non-empty
	// baseline would diff as "every site improved" and sail through
	// silently. A tree whose hot-path diagnostics all vanish at once is not
	// plausible — the likely cause is the build cache skipping the compile
	// without replaying its output — so fail loudly and let the operator
	// decide (a genuine wholesale improvement is banked with the update
	// flag, which bypasses the diff).
	if len(current) == 0 && len(baseline) > 0 {
		return nil, fmt.Errorf(
			"lint: %s: compiler produced no diagnostics but the baseline has %d site(s); "+
				"suspected build-cache anomaly — rerun after `go clean -cache`, or run mosaiclint %s if the tree really improved",
			c.Name, len(baseline), c.UpdateFlag)
	}
	reg, removed := Diff(baseline, current)
	return &Result{Regressions: reg, Removed: removed, Baseline: baseline, Current: current}, nil
}

// Update regenerates the baseline at path from the current tree.
func (c Config) Update(dir, path string) error {
	sites, err := c.Compile(dir)
	if err != nil {
		return err
	}
	return os.WriteFile(path, Format(c.Header, sites), 0o644)
}
