package lint

import (
	"go/ast"
	"go/types"
)

// DetRand enforces the repository's determinism discipline: simulation
// results must be a pure function of the configured seed, so no internal
// package may reach for math/rand's package-level functions — neither the
// implicitly-seeded global source (rand.Intn, rand.Shuffle, ...) nor ad-hoc
// generator construction (rand.New, rand.NewSource). Components receive a
// seeded *rand.Rand from their caller, ultimately built by internal/rng,
// the one exempted package. Method calls on an injected *rand.Rand are
// always fine; only package functions are flagged.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "internal packages must use injected *rand.Rand generators, not math/rand package functions",
	Run:  runDetRand,
}

// randPkgs are the package paths whose package-level functions are banned.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runDetRand(p *Pass) []Diagnostic {
	if !p.internalPkg() || p.ImportPath == "mosaic/internal/rng" {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := callee(p.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an injected generator
			}
			out = append(out, p.diag("detrand", call.Pos(),
				"call to %s.%s: inject a seeded *rand.Rand (see internal/rng) instead of using math/rand package functions",
				fn.Pkg().Name(), fn.Name()))
			return true
		})
	}
	return out
}
