package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// DetRand enforces the repository's determinism discipline: simulation
// results must be a pure function of the configured seed, so no internal
// package may reach for math/rand's package-level functions — neither the
// implicitly-seeded global source (rand.Intn, rand.Shuffle, ...) nor ad-hoc
// generator construction (rand.New, rand.NewSource). Components receive a
// seeded *rand.Rand from their caller, ultimately built by internal/rng,
// the one exempted package. Method calls on an injected *rand.Rand are
// always fine; only package functions are flagged.
var DetRand = &Analyzer{
	Name: "detrand",
	ID:   "ML001",
	Doc:  "internal packages must use injected *rand.Rand generators, not math/rand package functions",
	Run:  runDetRand,
}

// randPkgs are the package paths whose package-level functions are banned.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

const rngPkgPath = "mosaic/internal/rng"

// exprText renders an expression back to source for use in a fix.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// rngImportName returns the name internal/rng is imported under in f, or ""
// when it is not imported.
func rngImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != rngPkgPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "rng"
	}
	return ""
}

// rngImportEdit builds the edit adding internal/rng to f's import block, or
// nil when the file has no parenthesized import declaration whose closing
// paren sits on its own line to extend.
func rngImportEdit(p *Pass, f *ast.File) *TextEdit {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Rparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		last := gd.Specs[len(gd.Specs)-1]
		if p.Fset.Position(gd.Rparen).Line == p.Fset.Position(last.End()).Line {
			continue // one-line import block; no safe insertion point
		}
		e := p.edit(gd.Rparen, gd.Rparen, "\t\""+rngPkgPath+"\"\n")
		return &e
	}
	return nil
}

// fixableRandCall reports whether call is the rewritable pattern
// rand.New(rand.NewSource(seed)).
func fixableRandCall(p *Pass, call *ast.CallExpr) bool {
	outer, ok := callee(p.Info, call).(*types.Func)
	if !ok || outer.Name() != "New" || outer.Pkg().Path() != "math/rand" || len(call.Args) != 1 {
		return false
	}
	src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || len(src.Args) != 1 {
		return false
	}
	inner, ok := callee(p.Info, src).(*types.Func)
	return ok && inner.Name() == "NewSource" && inner.Pkg().Path() == "math/rand"
}

// randUsedElsewhere reports whether math/rand is referenced in f outside
// every fixable rand.New(rand.NewSource(…)) call — if not, the fixes can
// drop the import too. All fixable calls are excluded, not just the one
// being rewritten: each fix in the batch rewrites its own call, and the
// identical import-removal edits they then share are applied once.
func randUsedElsewhere(p *Pass, f *ast.File) bool {
	var fixable []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && fixableRandCall(p, call) {
			fixable = append(fixable, call)
		}
		return true
	})
	used := false
	ast.Inspect(f, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "math/rand" {
			inside := false
			for _, call := range fixable {
				if id.Pos() >= call.Pos() && id.Pos() <= call.End() {
					inside = true
					break
				}
			}
			if !inside {
				used = true
			}
		}
		return true
	})
	return used
}

// removeImportEdit deletes an import spec's entire line, plus a trailing
// blank separator line when one follows (so grouped import blocks stay
// gofmt-clean after the deletion).
func removeImportEdit(p *Pass, f *ast.File, spec *ast.ImportSpec) *TextEdit {
	tf := p.Fset.File(spec.Pos())
	line := tf.Line(spec.Pos())
	if line != tf.Line(spec.End()) || line >= tf.LineCount() {
		return nil
	}
	end := line + 1
	if end < tf.LineCount() && blankLine(p, f, end) {
		end++
	}
	e := p.edit(tf.LineStart(line), tf.LineStart(end), "")
	return &e
}

// blankLine reports whether the given line of f's file holds no tokens —
// approximated by checking that no import spec, closing paren, or comment
// starts there.
func blankLine(p *Pass, f *ast.File, line int) bool {
	tf := p.Fset.File(f.Pos())
	for _, imp := range f.Imports {
		if tf.Line(imp.Pos()) == line {
			return false
		}
	}
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT && gd.Rparen.IsValid() && tf.Line(gd.Rparen) == line {
			return false
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if tf.Line(c.Pos()) == line {
				return false
			}
		}
	}
	return true
}

// detRandFix rewrites the one mechanically fixable pattern —
// rand.New(rand.NewSource(seed)) — to rng.New(seed), adding the
// internal/rng import when the file lacks it. Other call forms (rand.Intn
// on the global source) need a generator threaded through the call chain,
// which is not a mechanical rewrite.
func detRandFix(p *Pass, f *ast.File, call *ast.CallExpr) *Fix {
	if !fixableRandCall(p, call) {
		return nil
	}
	src := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	seed := exprText(p.Fset, src.Args[0])
	if seed == "" {
		return nil
	}
	// rng.New takes uint64; wrap unless the seed already is one (or is an
	// untyped constant, which converts implicitly).
	if tv, ok := p.Info.Types[src.Args[0]]; ok {
		basic, isBasic := tv.Type.Underlying().(*types.Basic)
		if !isBasic || (basic.Kind() != types.Uint64 && basic.Info()&types.IsUntyped == 0) {
			seed = "uint64(" + seed + ")"
		}
	} else {
		seed = "uint64(" + seed + ")"
	}
	name := rngImportName(f)
	edits := []TextEdit{p.edit(call.Pos(), call.End(), "rng.New("+seed+")")}
	if name != "" && name != "rng" {
		edits[0].NewText = name + ".New(" + seed + ")"
	}
	// dropRand: after every fixable call is rewritten nothing in the file
	// uses math/rand, so that import must go or the fixed file won't compile.
	dropRand := !randUsedElsewhere(p, f)
	imp := rngImportEdit(p, f)
	switch {
	case name != "":
		// internal/rng already imported; nothing to add.
	case imp != nil:
		edits = append(edits, *imp)
	case dropRand:
		// No import block to extend (a lone `import "math/rand"`): since
		// that import is dying anyway, repurpose it in place. Only for the
		// unnamed form — a named import would bind rng under the old alias.
		repurposed := false
		for _, imp := range f.Imports {
			if imp.Name == nil && strings.Trim(imp.Path.Value, `"`) == "math/rand" {
				edits = append(edits, p.edit(imp.Path.Pos(), imp.Path.End(), `"`+rngPkgPath+`"`))
				repurposed = true
			}
		}
		if !repurposed {
			return nil
		}
		return &Fix{Message: "build the generator with internal/rng", Edits: edits}
	default:
		return nil
	}
	if dropRand {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "math/rand" {
				if del := removeImportEdit(p, f, imp); del != nil {
					edits = append(edits, *del)
				}
			}
		}
	}
	return &Fix{Message: "build the generator with internal/rng", Edits: edits}
}

func runDetRand(p *Pass) []Diagnostic {
	if !p.internalPkg() || p.ImportPath == rngPkgPath {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := callee(p.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an injected generator
			}
			d := p.diag("detrand", call.Pos(),
				"call to %s.%s: inject a seeded *rand.Rand (see internal/rng) instead of using math/rand package functions",
				fn.Pkg().Name(), fn.Name())
			d.Fix = detRandFix(p, f, call)
			out = append(out, d)
			return true
		})
	}
	return out
}
