package lint

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"sort"
)

// Machine-readable diagnostic output. Two encodings share one identity
// scheme: every diagnostic carries its analyzer's stable ID (ML001…) as the
// rule identifier plus a line-independent fingerprint (analyzer, file,
// message), so external trackers can follow a finding across refactors that
// only move it vertically within its file.

// JSONSchemaVersion versions the -json output layout. Bump only on
// incompatible changes; the golden test pins the current shape.
const JSONSchemaVersion = 1

// fingerprint returns the stable identity of a diagnostic: an FNV-64a hash
// of analyzer, file, and message — deliberately excluding the line number.
func fingerprint(analyzer, file, message string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", analyzer, file, message)
	return fmt.Sprintf("%016x", h.Sum64())
}

// relFile rewrites file relative to baseDir (when possible) with forward
// slashes, the form both output modes and SARIF artifact URIs use.
func relFile(baseDir, file string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

type jsonEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonDiagnostic struct {
	ID          string   `json:"id"`
	Analyzer    string   `json:"analyzer"`
	File        string   `json:"file"`
	Line        int      `json:"line"`
	Column      int      `json:"column"`
	Message     string   `json:"message"`
	Fingerprint string   `json:"fingerprint"`
	Fix         *jsonFix `json:"fix,omitempty"`
}

type jsonReport struct {
	SchemaVersion int              `json:"schema_version"`
	Tool          string           `json:"tool"`
	Findings      []jsonDiagnostic `json:"findings"`
}

// WriteJSON renders diagnostics as the versioned mosaiclint JSON report.
// File paths are rewritten relative to baseDir; diags are emitted in the
// order given (RunAll's position order).
func WriteJSON(w io.Writer, baseDir string, diags []Diagnostic) error {
	report := jsonReport{
		SchemaVersion: JSONSchemaVersion,
		Tool:          "mosaiclint",
		Findings:      []jsonDiagnostic{},
	}
	for _, d := range diags {
		file := relFile(baseDir, d.Pos.Filename)
		jd := jsonDiagnostic{
			ID:          d.ID,
			Analyzer:    d.Analyzer,
			File:        file,
			Line:        d.Pos.Line,
			Column:      d.Pos.Column,
			Message:     d.Message,
			Fingerprint: fingerprint(d.Analyzer, file, d.Message),
		}
		if d.Fix != nil {
			jf := &jsonFix{Message: d.Fix.Message, Edits: []jsonEdit{}}
			for _, e := range d.Fix.Edits {
				jf.Edits = append(jf.Edits, jsonEdit{
					File:    relFile(baseDir, e.Filename),
					Start:   e.Start,
					End:     e.End,
					NewText: e.NewText,
				})
			}
			jd.Fix = jf
		}
		report.Findings = append(report.Findings, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(report)
}

// SARIF 2.1.0, the minimal subset code-review tooling consumes: one run,
// one rule per analyzer (indexed from the catalogue sorted by ID), one
// result per diagnostic with a physical location and a partial fingerprint.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Every analyzer in
// the catalogue appears as a rule (stable ID order) even when it produced
// no results, so rule metadata does not churn with the findings.
func WriteSARIF(w io.Writer, baseDir string, diags []Diagnostic) error {
	rules := append([]*Analyzer(nil), Catalog()...)
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	ruleIndex := make(map[string]int, len(rules))
	driver := sarifDriver{Name: "mosaiclint", Rules: []sarifRule{}}
	for i, an := range rules {
		ruleIndex[an.ID] = i
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               an.ID,
			Name:             an.Name,
			ShortDescription: sarifMessage{Text: an.Doc},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		file := relFile(baseDir, d.Pos.Filename)
		idx, ok := ruleIndex[d.ID]
		if !ok {
			return fmt.Errorf("lint: diagnostic with unknown rule ID %q (analyzer %s)", d.ID, d.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:    d.ID,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: file},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{
				"mosaiclintFingerprint/v1": fingerprint(d.Analyzer, file, d.Message),
			},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}
