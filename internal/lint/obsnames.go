package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"mosaic/internal/obs"
)

// ObsNames flags constant metric names passed to the internal/obs
// instrument constructors that are not lowercase dotted identifiers
// (obs.ValidName). The registry panics on such names at runtime, but only
// on the code path that registers them — a misspelled name in a rarely
// taken branch would otherwise surface as a crash mid-experiment instead
// of a lint finding at review time. Names computed at runtime (prefix
// concatenation) are left to the registry's own validation.
var ObsNames = &Analyzer{
	Name: "obsnames",
	ID:   "ML005",
	Doc:  "metric names passed to internal/obs must be lowercase dotted identifiers",
	Run:  runObsNames,
}

// obsNameMethods maps receiver type → methods whose first argument is a
// metric name.
var obsNameMethods = map[string]map[string]bool{
	"Registry":  {"Counter": true, "Gauge": true, "Histogram": true},
	"Sampler":   {"Gauge": true, "Rate": true, "Ratio": true},
	"Publisher": {"Gauge": true},
}

// obsSpanFuncs are package-level internal/obs functions whose first
// argument is a span name — a single lowercase segment (obs.ValidSpanName)
// rather than the dotted metric grammar.
var obsSpanFuncs = map[string]bool{"NewSpan": true}

// obsRecvName resolves the receiver's named type (unwrapping the pointer)
// when it is declared in mosaic/internal/obs, and "" otherwise.
func obsRecvName(sig *types.Signature) string {
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "mosaic/internal/obs" {
		return ""
	}
	return obj.Name()
}

func runObsNames(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := callee(p.Info, call).(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			span := sig.Recv() == nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "mosaic/internal/obs" && obsSpanFuncs[fn.Name()]
			if !span {
				methods := obsNameMethods[obsRecvName(sig)]
				if methods == nil || !methods[fn.Name()] {
					return true
				}
			}
			// Only constant-foldable names are checked statically; the
			// registry validates the rest when they are registered.
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			name := constant.StringVal(tv.Value)
			switch {
			case span && !obs.ValidSpanName(name):
				out = append(out, p.diag("obsnames", call.Args[0].Pos(),
					"span name %q is not a lowercase span identifier (like %q)",
					name, "warmup"))
			case !span && !obs.ValidName(name):
				out = append(out, p.diag("obsnames", call.Args[0].Pos(),
					"metric name %q is not a lowercase dotted identifier (like %q)",
					name, "vm.fault.minor"))
			}
			return true
		})
	}
	return out
}
