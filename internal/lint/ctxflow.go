package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards context propagation in the batch-replay pipeline. The
// sweep engine and every driver thread a context.Context from main down to
// the per-point closures; cancellation only works if each layer passes the
// context it was handed onward. Two shapes break that chain:
//
//  1. A function that accepts a context but hands context.Background() or
//     context.TODO() to a callee — the caller's deadline and cancellation
//     silently stop there. (Detaching deliberately is what
//     //lint:ignore ctxflow is for.)
//  2. A goroutine launched while a context is in scope whose body spins in
//     an unconditional for-loop that never consults any context — a worker
//     that outlives its parent's cancellation.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	ID:   "ML012",
	Doc:  "functions holding a ctx must propagate it, not context.Background(); worker goroutine loops must consult cancellation",
	Run:  runCtxFlow,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return namedFrom(t, "context", "Context")
}

// freshContextCall reports whether e is a call to context.Background or
// context.TODO.
func freshContextCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn, ok := callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return "", false
	}
	return "context." + fn.Name(), true
}

// ctxParamName returns the name of ft's first context.Context parameter,
// or "" when it has none (blank and unnamed context parameters count as
// absent — they cannot be propagated anyway).
func ctxParamName(p *Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// referencesContext reports whether any identifier under n denotes a value
// of type context.Context — a ctx passed on, a ctx.Done() select arm, a
// ctx.Err() poll all count.
func referencesContext(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := p.Info.Uses[id].(*types.Var); ok && isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}

// runCtxFlow walks each file with a stack of enclosing function scopes so
// a nested closure knows whether some enclosing function holds a context
// (closures capture it; the chain is still intact).
func runCtxFlow(p *Pass) []Diagnostic {
	if !p.internalPkg() {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		// ctxStack[i] is the name of the context in scope at function
		// nesting depth i, "" when that function introduces none.
		var ctxStack []string
		inScope := func() string {
			for i := len(ctxStack) - 1; i >= 0; i-- {
				if ctxStack[i] != "" {
					return ctxStack[i]
				}
			}
			return ""
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				if len(stack) > 0 {
					switch stack[len(stack)-1].(type) {
					case *ast.FuncDecl, *ast.FuncLit:
						ctxStack = ctxStack[:len(ctxStack)-1]
					}
					stack = stack[:len(stack)-1]
				}
				return true
			}
			stack = append(stack, n)
			switch x := n.(type) {
			case *ast.FuncDecl:
				ctxStack = append(ctxStack, ctxParamName(p, x.Type))
			case *ast.FuncLit:
				ctxStack = append(ctxStack, ctxParamName(p, x.Type))
			case *ast.CallExpr:
				ctx := inScope()
				if ctx == "" {
					return true
				}
				for _, arg := range x.Args {
					if name, ok := freshContextCall(p.Info, arg); ok {
						out = append(out, p.diag("ctxflow", arg.Pos(),
							"%s passed while %s is in scope: the caller's cancellation and deadline stop here; propagate %s",
							name, ctx, ctx))
						continue
					}
					// A module factory whose fixpoint summary says it can
					// return a Background/TODO-rooted context is the same
					// break in the chain, one or more calls removed.
					if call, isCall := ast.Unparen(arg).(*ast.CallExpr); isCall {
						if fn, isFn := callee(p.Info, call).(*types.Func); isFn {
							if sum := p.flow().summaryOf(fn); sum != nil && sum.returnsFreshCtx {
								out = append(out, p.diag("ctxflow", arg.Pos(),
									"%s returns a context rooted in context.Background(), passed while %s is in scope: the caller's cancellation and deadline stop here; propagate %s",
									fn.Name(), ctx, ctx))
							}
						}
					}
				}
			case *ast.GoStmt:
				fl, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				ctx := inScope()
				if ctx == "" || ctxParamName(p, fl.Type) != "" {
					return true
				}
				// An unconditional loop in a worker that never looks at any
				// context: it cannot observe cancellation.
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					loop, ok := n.(*ast.ForStmt)
					if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
						return true
					}
					if !referencesContext(p, loop.Body) {
						out = append(out, p.diag("ctxflow", loop.Pos(),
							"worker goroutine loops forever without consulting %s: it outlives its caller's cancellation; add a %s.Done() select arm or an %s.Err() check",
							ctx, ctx, ctx))
						return false
					}
					return true
				})
			}
			return true
		})
	}
	return out
}
