package lint

import "testing"

func TestDetRand(t *testing.T) {
	checkFixture(t, DetRand, "detrand", "mosaic/internal/fixture")
}

// TestDetRandExemptsRNG: internal/rng is the one package allowed to build
// generators.
func TestDetRandExemptsRNG(t *testing.T) {
	checkFixtureClean(t, DetRand, "detrand", "mosaic/internal/rng")
}

// TestDetRandScopedToInternal: the rule governs the internal library tree
// only.
func TestDetRandScopedToInternal(t *testing.T) {
	checkFixtureClean(t, DetRand, "detrand", "mosaic/cmd/fixture")
}
