package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"mosaic/internal/lint/gate"
)

// InlineGate is the inlining-verdict gate: it parses the inliner's decisions
// (`go build -gcflags=-m=2`) for a declared set of pinned hot functions —
// the TLB probe, the iceberg single-slot wrappers, and the per-reference
// Access steps RunLimited drives — and fails when any pin's budget verdict
// flips from "can inline" to "cannot inline". The pins are the functions the
// batch-replay engine calls once per memory reference; a missed inline there
// is a call in the innermost loop, the regression that is invisible to every
// AST-level rule because the source did not change shape, only its cost.
//
// Sites are keyed as "file: func: verdict" with the inliner's cost as the
// count, so the baseline records both the verdict and the headroom under the
// budget. A verdict flip therefore shows up as a new "cannot inline" key
// (reported with the cost delta against the baselined "can inline" cost),
// and plain cost growth within the same verdict is a regression too — the
// headroom shrank, and banking that knowingly via mosaiclint -update-inline
// is the review artifact.
//
// Generic pins are judged by their go.shape instantiation when one exists:
// the dictionary wrappers the compiler also prints always report "can
// inline", but the shape function is the code that executes, so trusting the
// wrapper would make the gate blind (see TestInlineNormalizePrefersShape).
//
// InlineGate is tree-level, so its Run is nil and the driver invokes
// RunInlineGate directly.
var InlineGate = &Analyzer{
	Name: "inlinegate",
	ID:   "ML010",
	Doc:  "pinned hot functions must keep their 'can inline' verdict against internal/lint/inline.baseline",
}

// InlineBaselineFile is the checked-in baseline, relative to the module root.
const InlineBaselineFile = "internal/lint/inline.baseline"

// An InlinePin names one function that must stay inlinable.
type InlinePin struct {
	// File is the module-relative file declaring the function.
	File string
	// Func is the canonical name as the baseline spells it: "name" or
	// "(*recv).name", type parameters stripped.
	Func string
	// Why records what hot loop depends on the pin.
	Why string
}

// InlinePins is the declared set of must-stay-inlined functions. Adding a
// pin requires its verdict to already be "can inline" (RunInlineGate fails
// otherwise); removing one is a reviewed edit here plus -update-inline.
var InlinePins = []InlinePin{
	{"internal/tlb/set.go", "(*set).lookup", "TLB probe: tag→slot map access, flattened into every Lookup"},
	{"internal/tlb/set.go", "(*set).touch", "TLB probe: MRU fast path; only a genuine reorder pays the promote call"},
	{"internal/iceberg/iceberg.go", "(*Table).Put", "iceberg insert wrapper around PutSlot"},
	{"internal/iceberg/iceberg.go", "(*Table).Contains", "iceberg membership wrapper around Get"},
	{"internal/memsim/memsim.go", "(*Simulator).Access", "per-reference entry point: delegates to AccessFrom"},
	{"figure6.go", "(*limitSink).Access", "RunLimited's step: the reference-counting shim every figure driver replays through"},
	{"internal/trace/batch.go", "Ref.VA", "batch consumers unpack the VA in their inner loop"},
	{"internal/trace/batch.go", "Ref.Write", "batch consumers unpack the write bit in their inner loop"},
	{"internal/trace/batch.go", "MakeRef", "batch producers pack references in their inner loop"},
	{"internal/workloads/arena.go", "(*U64Array).GetB", "batch-native emit: packed store straight into the batcher buffer"},
	{"internal/workloads/arena.go", "(*U64Array).SetB", "batch-native emit: packed store straight into the batcher buffer"},
	{"internal/workloads/arena.go", "(*F64Array).GetB", "batch-native emit: packed store straight into the batcher buffer"},
	{"internal/workloads/arena.go", "(*F64Array).SetB", "batch-native emit: packed store straight into the batcher buffer"},
	{"internal/workloads/arena.go", "(*U32Array).GetB", "batch-native emit: packed store straight into the batcher buffer"},
	{"internal/workloads/arena.go", "(*U32Array).SetB", "batch-native emit: packed store straight into the batcher buffer"},
	{"internal/trace/batch.go", "GetBatcher", "pooled batcher checkout at the head of every batch-native run"},
}

// InlineGatePatterns are the build patterns the gate compiles: the hot-path
// packages plus the root package (RunLimited and its sinks live there).
func InlineGatePatterns() []string {
	return append(append([]string{}, HotPathPackages...), ".")
}

var (
	canInlineRE    = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: can inline (.+?) with cost (\d+) as: `)
	cannotInlineRE = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: cannot inline (.+?): (.+)$`)
	costRE         = regexp.MustCompile(`cost (\d+) exceeds budget (\d+)`)
)

// canonicalFuncName strips every bracketed type-argument list from an
// inliner-reported name: "(*set[go.shape.uint64]).lookup" → "(*set).lookup".
// Bracket depth is tracked because shape structs nest brackets.
func canonicalFuncName(name string) string {
	var b strings.Builder
	depth := 0
	for _, r := range name {
		switch {
		case r == '[':
			depth++
		case r == ']':
			depth--
		case depth == 0:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// inlineVerdict is one inliner decision about one instantiation of a pin.
type inlineVerdict struct {
	shape bool // a go.shape instantiation: the code that actually executes
	can   bool
	cost  int
	line  int
}

// normalizeInlineFor builds the Normalize function extracting the pinned
// functions' verdicts from -m=2 output. For each pin all instantiations are
// collected; go.shape instantiations are preferred over dictionary wrappers,
// the worst verdict among the preferred group wins, and its highest cost is
// the site count.
func normalizeInlineFor(pins []InlinePin) func(dir string, output []byte) (gate.Sites, error) {
	return func(_ string, output []byte) (gate.Sites, error) {
		return normalizeInline(pins, output)
	}
}

func normalizeInline(pins []InlinePin, output []byte) (gate.Sites, error) {
	pinByKey := make(map[string]InlinePin, len(pins))
	verdicts := make(map[string][]inlineVerdict)
	for _, p := range pins {
		pinByKey[p.File+": "+p.Func] = p
	}
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 4*1024*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var v inlineVerdict
		var file, name string
		if m := canInlineRE.FindStringSubmatch(line); m != nil {
			cost, _ := strconv.Atoi(m[4])
			v = inlineVerdict{can: true, cost: cost}
			file, name = m[1], m[3]
			v.line, _ = strconv.Atoi(m[2])
		} else if m := cannotInlineRE.FindStringSubmatch(line); m != nil {
			v = inlineVerdict{can: false, cost: 1}
			if c := costRE.FindStringSubmatch(m[4]); c != nil {
				v.cost, _ = strconv.Atoi(c[1])
			}
			file, name = m[1], m[3]
			v.line, _ = strconv.Atoi(m[2])
		} else {
			continue
		}
		key := strings.TrimPrefix(file, "./") + ": " + canonicalFuncName(name)
		if _, pinned := pinByKey[key]; !pinned {
			continue
		}
		v.shape = strings.Contains(name, "go.shape")
		verdicts[key] = append(verdicts[key], v)
	}

	sites := make(gate.Sites)
	for key, vs := range verdicts {
		shaped := vs[:0:0]
		for _, v := range vs {
			if v.shape {
				shaped = append(shaped, v)
			}
		}
		if len(shaped) > 0 {
			vs = shaped
		}
		can, cost, line := true, 1, 0 // cost floor 1: the baseline format rejects empty counts
		for _, v := range vs {
			can = can && v.can
			if v.cost > cost {
				cost = v.cost
			}
			if line == 0 || v.line < line {
				line = v.line
			}
		}
		verdict := "can inline"
		if !can {
			verdict = "cannot inline"
		}
		sites[key+": "+verdict] = gate.Site{Count: cost, Line: line}
	}
	return sites, nil
}

// inlineGateFor builds a gate.Config judging pins over patterns; inlineGate
// is the in-tree instance, tests substitute fixture pins.
func inlineGateFor(pins []InlinePin, patterns []string) gate.Config {
	return gate.Config{
		Name:       InlineGate.Name,
		BuildFlags: []string{"-gcflags=-m=2"},
		Patterns:   patterns,
		Normalize:  normalizeInlineFor(pins),
		Header: []string{
			"mosaiclint inlinegate verdict baseline.",
			"One line per pinned hot function: cost<TAB>file: func: verdict.",
			"Pins are declared in internal/lint/inlinegate.go (InlinePins).",
			"Regenerate after a reviewed hot-function change: go run ./cmd/mosaiclint -update-inline",
		},
		UpdateFlag: "-update-inline",
	}
}

func inlineGate() gate.Config {
	return inlineGateFor(InlinePins, InlineGatePatterns())
}

// InlineSites compiles the gate patterns in dir and returns the pinned
// functions' current verdicts.
func InlineSites(dir string) (gate.Sites, error) {
	return inlineGate().Compile(dir)
}

// WriteInlineBaseline regenerates the baseline file from the current tree.
func WriteInlineBaseline(dir, path string) error {
	return inlineGate().Update(dir, path)
}

// inlinePinDiags checks the pin contract against one compile's sites:
// every pin must be present with a "can inline" verdict. baseline supplies
// the cost the pin used to have, for the delta in the flip message.
func inlinePinDiags(pins []InlinePin, baseline, current gate.Sites) []Diagnostic {
	var out []Diagnostic
	for _, pin := range pins {
		key := pin.File + ": " + pin.Func
		if bad, flipped := current[key+": cannot inline"]; flipped {
			msg := fmt.Sprintf("pinned hot function no longer inlines: %s (%s): inliner cost %d", pin.Func, pin.Why, bad.Count)
			if was, ok := baseline[key+": can inline"]; ok {
				msg += fmt.Sprintf(", was %d (+%d)", was.Count, bad.Count-was.Count)
			}
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: pin.File, Line: bad.Line},
				Analyzer: InlineGate.Name,
				ID:       InlineGate.ID,
				Message:  msg + "; split the slow path into a called helper or update InlinePins",
			})
		} else if _, ok := current[key+": can inline"]; !ok {
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: pin.File},
				Analyzer: InlineGate.Name,
				ID:       InlineGate.ID,
				Message:  fmt.Sprintf("pinned hot function %s not found in the inliner's report; renamed or deleted — update InlinePins", pin.Func),
			})
		}
	}
	return out
}

// RunInlineGate runs the full gate from the module root dir against the
// baseline at path: the pin contract (verdicts stay "can inline") plus the
// baseline diff (inliner cost must not grow unreviewed).
func RunInlineGate(dir, path string) (regressions []Diagnostic, removed []string, err error) {
	res, err := inlineGate().Run(dir, path)
	if err != nil {
		return nil, nil, err
	}
	regressions = inlinePinDiags(InlinePins, res.Baseline, res.Current)
	for _, r := range res.Regressions {
		if !r.Known {
			// A new key is a verdict flip; inlinePinDiags already reported it
			// with the cost delta.
			continue
		}
		file, rest, _ := strings.Cut(r.Key, ": ")
		regressions = append(regressions, Diagnostic{
			Pos:      token.Position{Filename: file, Line: r.Line},
			Analyzer: InlineGate.Name,
			ID:       InlineGate.ID,
			Message: fmt.Sprintf("inlining headroom shrank: %s: cost %d, baseline has %d; trim the function or bank it with -update-inline",
				rest, r.Count, r.BaseCount),
		})
	}
	return regressions, res.Removed, nil
}
