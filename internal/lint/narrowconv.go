package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// NarrowConv flags unguarded narrowing of 64-bit unsigned quantities — the
// representation of PFNs, virtual addresses, and refill indices throughout
// the simulator. A bare int(x) or uint32(x) of a uint64-derived value
// silently truncates (or flips sign) above 2³² and turns into an
// out-of-range slice index three calls later. The conversion is accepted
// when the value is visibly range-reduced first:
//
//   - the operand itself carries a masking operation (&, %, or >>) — the
//     iceberg bucket-index idiom int(hash % uint64(numBuckets));
//   - an enclosing if or for condition compares one of the operand's
//     variables, a dominating bounds guard;
//   - the operand is a call to a module function whose every return
//     expression is range-reduced, at any call depth (the `bounded`
//     fixpoint summary in fixpoint.go).
//
// Constant conversions are the compiler's to check and are skipped.
var NarrowConv = &Analyzer{
	Name: "narrowconv",
	ID:   "ML013",
	Doc:  "uint64-derived values must be masked, reduced, or bounds-checked before narrowing to int/uint32-class types",
	Run:  runNarrowConv,
}

// narrowTarget reports whether converting a uint64 into t can lose range:
// a signed integer narrower than 64 bits (int is 64-bit on every platform
// the simulator targets, but a wrapped negative index still panics, so it
// counts), or an unsigned one narrower than 64 bits. int64 is excluded:
// the conversion reinterprets the sign bit but loses no magnitude bits,
// the deliberate idiom of seed plumbing and delta encoding.
func narrowTarget(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Int8, types.Int16, types.Int32:
		return true
	case types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// isUint64 reports whether t's underlying type is uint64 (covering core.PFN
// and friends) or uintptr.
func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Uint64 || b.Kind() == types.Uintptr
}

// operandVars collects every variable referenced in the operand subtree;
// a comparison against any of them in a dominating condition counts as a
// bounds guard.
func operandVars(p *Pass, e ast.Expr) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok {
				vars[v] = true
			}
		}
		return true
	})
	return vars
}

// condGuards reports whether cond mentions any of the operand's variables —
// the dominating-comparison approximation: if the enclosing branch was
// taken on some predicate over x, the conversion of x is treated as
// deliberate.
func condGuards(p *Pass, cond ast.Expr, vars map[*types.Var]bool) bool {
	if cond == nil || len(vars) == 0 {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// dominatedByGuard climbs the enclosing-statement stack looking for a
// guard that dominates the conversion:
//
//   - an enclosing if or for whose condition mentions one of the operand's
//     variables (the branch was taken on some predicate over it);
//   - an earlier statement in an enclosing block that is an if over one of
//     the variables whose body terminates (return, continue, break, panic)
//     — the early-exit guard idiom;
//   - an earlier statement that indexes a slice or array with one of the
//     variables — that runtime bounds check has already passed, so the
//     value is known in range.
func dominatedByGuard(p *Pass, stack []ast.Node, vars map[*types.Var]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch st := stack[i].(type) {
		case *ast.IfStmt:
			if condGuards(p, st.Cond, vars) {
				return true
			}
		case *ast.ForStmt:
			if condGuards(p, st.Cond, vars) {
				return true
			}
		case *ast.BlockStmt:
			if i+1 < len(stack) && priorSiblingGuards(p, st.List, stack[i+1], vars) {
				return true
			}
		case *ast.CaseClause:
			if i+1 < len(stack) && priorSiblingGuards(p, st.Body, stack[i+1], vars) {
				return true
			}
		case *ast.CommClause:
			if i+1 < len(stack) && priorSiblingGuards(p, st.Body, stack[i+1], vars) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // guards do not cross function boundaries
		}
	}
	return false
}

// priorSiblingGuards scans the statements of a block that precede child
// (the statement containing the conversion) for a dominating guard.
func priorSiblingGuards(p *Pass, list []ast.Stmt, child ast.Node, vars map[*types.Var]bool) bool {
	for _, s := range list {
		if s == child {
			return false
		}
		if ifs, ok := s.(*ast.IfStmt); ok && condGuards(p, ifs.Cond, vars) && terminates(ifs.Body) {
			return true
		}
		if indexesWith(p, s, vars) {
			return true
		}
	}
	return false
}

// terminates reports whether a block's last statement leaves the enclosing
// flow: return, break, continue, goto, or panic.
func terminates(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// indexesWith reports whether any slice/array index expression under n uses
// one of the operand's variables, skipping nested function literals (their
// bodies run elsewhere).
func indexesWith(p *Pass, n ast.Node, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		// Map indexes prove nothing about range; require a slice or array.
		if tv, ok := p.Info.Types[ix.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
			default:
				return true
			}
		}
		if condGuards(p, ix.Index, vars) {
			found = true
		}
		return true
	})
	return found
}

// boundedCall reports whether e is a call to a module function whose
// fixpoint summary says every return value is range-reduced — masked
// directly or produced by a bounded callee, to any depth.
func boundedCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok {
		return false
	}
	sum := p.flow().summaryOf(fn)
	return sum != nil && sum.bounded
}

func runNarrowConv(p *Pass) []Diagnostic {
	if !p.internalPkg() {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A conversion is a call whose Fun denotes a type.
			ftv, ok := p.Info.Types[call.Fun]
			if !ok || !ftv.IsType() {
				return true
			}
			arg := call.Args[0]
			atv, ok := p.Info.Types[arg]
			if !ok || !isUint64(atv.Type) || !narrowTarget(ftv.Type) {
				return true
			}
			if atv.Value != nil && constant.Val(atv.Value) != nil {
				return true // constant: the compiler checks representability
			}
			if hasMaskingOp(arg) || boundedCall(p, arg) {
				return true
			}
			if dominatedByGuard(p, stack[:len(stack)-1], operandVars(p, arg)) {
				return true
			}
			src := types.TypeString(atv.Type, types.RelativeTo(p.Pkg))
			dst := types.TypeString(ftv.Type, types.RelativeTo(p.Pkg))
			out = append(out, p.diag("narrowconv", call.Pos(),
				"%s narrowed to %s without a bounds guard: values above the target range truncate silently; mask (&), reduce (%%), shift (>>), or compare it first",
				src, dst))
			return true
		})
	}
	return out
}
