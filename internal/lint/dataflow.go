package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural layer shared by lockflow, ctxflow, and
// narrowconv: a same-package call graph plus one per-function summary of the
// effects a caller needs to know about. Precision is deliberately one level
// deep — summaries are computed from a function's own statements only, never
// from the summaries of its callees, so a caller sees through exactly one
// helper call. That contract keeps the engine linear in package size, makes
// fixpoint divergence impossible, and is documented in DESIGN.md; code that
// needs deeper threading restructures or carries a //lint:ignore.

// A lockEffect is one net lock operation a function performs on behalf of
// its caller: Lock (acquire=true) or Unlock (acquire=false) of a mutex
// reachable from a parameter slot or from a package-level variable.
type lockEffect struct {
	// slot locates the lock's root at the call site: 0 is the receiver,
	// 1..n the declared parameters, and -1 a package-level variable
	// (identified by obj, needing no argument mapping).
	slot int
	obj  types.Object
	// path is the dotted field path from the root to the mutex ("mu",
	// "state.mu"), empty when the root itself is the mutex.
	path    string
	acquire bool
}

// A funcSummary is the caller-visible behaviour of one declared function.
type funcSummary struct {
	// effects are the lock operations whose balance the caller inherits:
	// locks held at some return (acquire) and unlocks of locks the function
	// never took itself (release).
	effects []lockEffect
	// lockHelper marks a function whose body is nothing but lock-management
	// statements — a deliberate Lock/Unlock wrapper. Such a function is
	// summarised, not flagged; its callers carry the balancing burden.
	lockHelper bool
	// bounded marks a single-result function every one of whose return
	// expressions carries a masking operation (&, %, or >>) — its result is
	// already range-reduced, so narrowing conversions of it need no further
	// guard.
	bounded bool
}

// flowInfo is the package-level index the dataflow analyzers share: every
// declared function's body and its summary.
type flowInfo struct {
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]*funcSummary
}

// flow builds (once per pass) the call-graph index for this package.
func (p *Pass) flow() *flowInfo {
	if p.flowOnce != nil {
		return p.flowOnce
	}
	fi := &flowInfo{
		decls:     map[*types.Func]*ast.FuncDecl{},
		summaries: map[*types.Func]*funcSummary{},
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi.decls[fn] = fd
		}
	}
	for fn, fd := range fi.decls {
		fi.summaries[fn] = summarize(p, fd)
	}
	p.flowOnce = fi
	return fi
}

// localCallee resolves call to a function declared in this package (the
// only functions the summary engine knows), or nil.
func (p *Pass) localCallee(call *ast.CallExpr) *types.Func {
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok || fn.Pkg() != p.Pkg {
		return nil
	}
	return fn
}

// A lockKey identifies one mutex inside a function: the root object the
// selector chain starts from plus the field path below it. Keying on the
// object (not the name) survives shadowing.
type lockKey struct {
	root types.Object
	path string
}

func (k lockKey) String() string {
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

// selChain splits a bare identifier or selector chain into its root
// identifier and dotted field path ("c.state.mu" → c, "state.mu"). It
// returns nil for anything else — an unresolvable lock root.
func selChain(e ast.Expr) (*ast.Ident, string) {
	path := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, path
		case *ast.SelectorExpr:
			if path == "" {
				path = x.Sel.Name
			} else {
				path = x.Sel.Name + "." + path
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, ""
		}
	}
}

// lockKeyOf resolves a mutex expression to its key, or false when the root
// is not a plain variable.
func lockKeyOf(p *Pass, e ast.Expr) (lockKey, bool) {
	id, path := selChain(e)
	if id == nil {
		return lockKey{}, false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return lockKey{}, false
	}
	return lockKey{root: obj, path: path}, true
}

// joinPath appends a summary's field path below a call-site prefix.
func joinPath(prefix, path string) string {
	if prefix == "" {
		return path
	}
	if path == "" {
		return prefix
	}
	return prefix + "." + path
}

// lockOp classifies call as a sync.Mutex / sync.RWMutex method call and
// returns the mutex key and whether it acquires (Lock/RLock) or releases
// (Unlock/RUnlock). Methods promoted from embedded mutexes resolve the same
// way: the callee is still declared in package sync.
func lockOp(p *Pass, call *ast.CallExpr) (key lockKey, acquire, ok bool) {
	fn, isFn := callee(p.Info, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockKey{}, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	key, ok = lockKeyOf(p, sel.X)
	return key, acquire, ok
}

// slotIndex maps a function's receiver and parameter objects to their
// summary slots: receiver 0, parameters 1..n.
func slotIndex(p *Pass, fd *ast.FuncDecl) map[types.Object]int {
	slots := map[types.Object]int{}
	bind := func(names []*ast.Ident, slot int) int {
		for _, name := range names {
			if obj := p.Info.Defs[name]; obj != nil {
				slots[obj] = slot
			}
			slot++
		}
		return slot
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			bind(field.Names, 0)
		}
	}
	slot := 1
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				slot++ // unnamed parameter still occupies a slot
				continue
			}
			slot = bind(field.Names, slot)
		}
	}
	return slots
}

// effectFor translates an in-function lock key into a caller-mappable
// effect, or false when the key is rooted in a local variable the caller
// cannot see.
func effectFor(p *Pass, slots map[types.Object]int, key lockKey, acquire bool) (lockEffect, bool) {
	if slot, ok := slots[key.root]; ok {
		return lockEffect{slot: slot, path: key.path, acquire: acquire}, true
	}
	if v, ok := key.root.(*types.Var); ok && v.Parent() == p.Pkg.Scope() {
		return lockEffect{slot: -1, obj: key.root, path: key.path, acquire: acquire}, true
	}
	return lockEffect{}, false
}

// summarize computes one function's summary from its own statements only —
// the one-level-deep contract. Lock state is tracked linearly through the
// body; branch and loop bodies are examined for Unlock coverage but control
// flow is not joined (a summary records the straight-line net effect, which
// is what deliberate helpers look like).
func summarize(p *Pass, fd *ast.FuncDecl) *funcSummary {
	sum := &funcSummary{}
	slots := slotIndex(p, fd)
	held := map[lockKey]bool{}
	var order []lockKey // deterministic effect order: first-op position
	pureLockOps := len(fd.Body.List) > 0
	for _, st := range fd.Body.List {
		// A deferred unlock (direct or inside a deferred closure) covers the
		// whole function: the lock is balanced from the caller's view.
		if ds, isDefer := st.(*ast.DeferStmt); isDefer {
			pureLockOps = false
			release := func(call *ast.CallExpr) {
				if key, acquire, ok := lockOp(p, call); ok && !acquire {
					delete(held, key)
				}
			}
			release(ds.Call)
			if fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						release(call)
					}
					return true
				})
			}
			continue
		}
		es, isExpr := st.(*ast.ExprStmt)
		if !isExpr {
			pureLockOps = false
			continue
		}
		call, isCall := es.X.(*ast.CallExpr)
		if !isCall {
			pureLockOps = false
			continue
		}
		key, acquire, ok := lockOp(p, call)
		if !ok {
			pureLockOps = false
			continue
		}
		if acquire {
			if !held[key] {
				order = append(order, key)
			}
			held[key] = true
		} else {
			if held[key] {
				delete(held, key)
			} else {
				// Unlock of a lock this function never took: a release
				// helper; the caller must hold it.
				if eff, ok := effectFor(p, slots, key, false); ok {
					sum.effects = append(sum.effects, eff)
				}
			}
		}
	}
	for _, key := range order {
		if !held[key] {
			continue
		}
		if eff, ok := effectFor(p, slots, key, true); ok {
			sum.effects = append(sum.effects, eff)
		}
	}
	sum.lockHelper = pureLockOps && len(sum.effects) > 0
	sum.bounded = returnsBounded(fd)
	return sum
}

// returnsBounded reports whether fd has exactly one result and every return
// expression in its body (outside nested function literals) carries a
// masking operation: &, %, or >>.
func returnsBounded(fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || res.NumFields() != 1 || len(res.List[0].Names) > 1 {
		return false
	}
	found := false
	bounded := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		found = true
		if len(ret.Results) != 1 || !hasMaskingOp(ret.Results[0]) {
			bounded = false
		}
		return true
	})
	return found && bounded
}

// hasMaskingOp reports whether the expression tree contains a &, %, or >>
// binary operation — the range-reduction idioms a bounds guard recognises.
func hasMaskingOp(e ast.Expr) bool {
	masked := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.AND, token.REM, token.SHR:
				masked = true
			}
		}
		return !masked
	})
	return masked
}

// callSiteKeys maps a summarised callee's effects into the caller's lock
// keys. Effects whose argument is not a plain variable chain are dropped —
// the caller cannot track them.
func callSiteKeys(p *Pass, call *ast.CallExpr, sum *funcSummary) []struct {
	key     lockKey
	acquire bool
} {
	var out []struct {
		key     lockKey
		acquire bool
	}
	slotExpr := func(slot int) ast.Expr {
		if slot == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		if i := slot - 1; i < len(call.Args) {
			return call.Args[i]
		}
		return nil
	}
	for _, eff := range sum.effects {
		var key lockKey
		if eff.slot == -1 {
			key = lockKey{root: eff.obj, path: eff.path}
		} else {
			arg := slotExpr(eff.slot)
			if arg == nil {
				continue
			}
			root, ok := lockKeyOf(p, arg)
			if !ok {
				continue
			}
			key = lockKey{root: root.root, path: joinPath(root.path, eff.path)}
		}
		out = append(out, struct {
			key     lockKey
			acquire bool
		}{key, eff.acquire})
	}
	return out
}

// isPanicCall reports whether e is a call to the predeclared panic.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
