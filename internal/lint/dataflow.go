package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the lock-effect vocabulary shared by the fixpoint summary
// engine (fixpoint.go) and the lockflow walker: lock keys, selector-chain
// resolution, slot mapping, and call-site effect translation. The summaries
// themselves are computed whole-program — see fixpoint.go for the lattices
// and the SCC fixpoint contract that replaced the old one-level engine.

// A lockEffect is one net lock operation a function performs on behalf of
// its caller: Lock (acquire=true) or Unlock (acquire=false) of a mutex
// reachable from a parameter slot or from a package-level variable.
type lockEffect struct {
	// slot locates the lock's root at the call site: 0 is the receiver,
	// 1..n the declared parameters, and -1 a package-level variable
	// (identified by obj, needing no argument mapping).
	slot int
	obj  types.Object
	// path is the dotted field path from the root to the mutex ("mu",
	// "state.mu"), empty when the root itself is the mutex.
	path    string
	acquire bool
}

// flow returns the whole-program index this pass belongs to, building a
// single-pass program on the fly when the pass is analysed standalone (the
// fixture harness); RunAll attaches the full multi-package program up front.
func (p *Pass) flow() *Program {
	if p.prog == nil {
		BuildProgram([]*Pass{p}, 1)
	}
	return p.prog
}

// progCallee resolves call to its declared graph node anywhere in the
// program (the callee's package need not be the caller's), or nil.
func (p *Pass) progCallee(call *ast.CallExpr) *progFunc {
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok {
		return nil
	}
	return p.flow().node(fn)
}

// A lockKey identifies one mutex inside a function: the root object the
// selector chain starts from plus the field path below it. Keying on the
// object (not the name) survives shadowing.
type lockKey struct {
	root types.Object
	path string
}

func (k lockKey) String() string {
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

// selChain splits a bare identifier or selector chain into its root
// identifier and dotted field path ("c.state.mu" → c, "state.mu"). It
// returns nil for anything else — an unresolvable lock root.
func selChain(e ast.Expr) (*ast.Ident, string) {
	path := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, path
		case *ast.SelectorExpr:
			if path == "" {
				path = x.Sel.Name
			} else {
				path = x.Sel.Name + "." + path
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, ""
		}
	}
}

// lockKeyOf resolves a mutex expression to its key, or false when the root
// is not a plain variable.
func lockKeyOf(p *Pass, e ast.Expr) (lockKey, bool) {
	id, path := selChain(e)
	if id == nil {
		return lockKey{}, false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return lockKey{}, false
	}
	return lockKey{root: obj, path: path}, true
}

// joinPath appends a summary's field path below a call-site prefix.
func joinPath(prefix, path string) string {
	if prefix == "" {
		return path
	}
	if path == "" {
		return prefix
	}
	return prefix + "." + path
}

// lockOp classifies call as a sync.Mutex / sync.RWMutex method call and
// returns the mutex key and whether it acquires (Lock/RLock) or releases
// (Unlock/RUnlock). Methods promoted from embedded mutexes resolve the same
// way: the callee is still declared in package sync.
func lockOp(p *Pass, call *ast.CallExpr) (key lockKey, acquire, ok bool) {
	fn, isFn := callee(p.Info, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockKey{}, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	key, ok = lockKeyOf(p, sel.X)
	return key, acquire, ok
}

// slotIndex maps a function's receiver and parameter objects to their
// summary slots: receiver 0, parameters 1..n.
func slotIndex(p *Pass, fd *ast.FuncDecl) map[types.Object]int {
	slots := map[types.Object]int{}
	bind := func(names []*ast.Ident, slot int) int {
		for _, name := range names {
			if obj := p.Info.Defs[name]; obj != nil {
				slots[obj] = slot
			}
			slot++
		}
		return slot
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			bind(field.Names, 0)
		}
	}
	slot := 1
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				slot++ // unnamed parameter still occupies a slot
				continue
			}
			slot = bind(field.Names, slot)
		}
	}
	return slots
}

// effectFor translates an in-function lock key into a caller-mappable
// effect, or false when the key is rooted in a local variable the caller
// cannot see.
func effectFor(p *Pass, slots map[types.Object]int, key lockKey, acquire bool) (lockEffect, bool) {
	if slot, ok := slots[key.root]; ok {
		return lockEffect{slot: slot, path: key.path, acquire: acquire}, true
	}
	if v, ok := key.root.(*types.Var); ok && v.Parent() == p.Pkg.Scope() {
		return lockEffect{slot: -1, obj: key.root, path: key.path, acquire: acquire}, true
	}
	return lockEffect{}, false
}

// resolveGlobal maps a package-level effect object (declared in the callee's
// type-checker universe) to the caller's universe: same-package objects are
// already identical (one pass per package), cross-package ones are looked up
// through the caller's imports. Nil when the caller cannot see the variable.
func resolveGlobal(p *Pass, obj types.Object) types.Object {
	pkg := obj.Pkg()
	if pkg == nil {
		return nil
	}
	if pkg.Path() == p.Pkg.Path() {
		return obj
	}
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == pkg.Path() {
			return imp.Scope().Lookup(obj.Name())
		}
	}
	return nil
}

// callSiteKeys maps a summarised callee's exported effects into the
// caller's lock keys. Effects whose argument is not a plain variable chain
// (or whose package-level root the caller cannot resolve) are dropped — the
// caller cannot track them.
func callSiteKeys(p *Pass, call *ast.CallExpr, sum *funcSummary) []struct {
	key     lockKey
	acquire bool
} {
	var out []struct {
		key     lockKey
		acquire bool
	}
	slotExpr := func(slot int) ast.Expr {
		if slot == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		if i := slot - 1; i < len(call.Args) {
			return call.Args[i]
		}
		return nil
	}
	for _, eff := range sum.exportedEffects() {
		var key lockKey
		if eff.slot == -1 {
			root := resolveGlobal(p, eff.obj)
			if root == nil {
				continue
			}
			key = lockKey{root: root, path: eff.path}
		} else {
			arg := slotExpr(eff.slot)
			if arg == nil {
				continue
			}
			root, ok := lockKeyOf(p, arg)
			if !ok {
				continue
			}
			key = lockKey{root: root.root, path: joinPath(root.path, eff.path)}
		}
		out = append(out, struct {
			key     lockKey
			acquire bool
		}{key, eff.acquire})
	}
	return out
}

// hasMaskingOp reports whether the expression tree contains a &, %, or >>
// binary operation — the range-reduction idioms a bounds guard recognises.
func hasMaskingOp(e ast.Expr) bool {
	masked := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.AND, token.REM, token.SHR:
				masked = true
			}
		}
		return !masked
	})
	return masked
}

// isPanicCall reports whether e is a call to the predeclared panic.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
