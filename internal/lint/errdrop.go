package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags call statements that silently discard an error returned by
// the allocation, iceberg, or swap APIs — the three layers whose errors
// encode placement conflicts and capacity exhaustion, exactly the
// conditions the simulator exists to measure. A dropped alloc.ErrConflict
// turns a measurable eviction into silent corruption.
//
// Only the implicit discard (a call used as a statement) is flagged; an
// explicit `_ = f()` is a reviewable, deliberate decision and is allowed.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	ID:   "ML004",
	Doc:  "error returns from the alloc, iceberg, and swap APIs must not be silently discarded",
	Run:  runErrDrop,
}

// errDropPkgs are the API layers whose errors must be handled.
var errDropPkgs = map[string]bool{
	"mosaic/internal/alloc":   true,
	"mosaic/internal/iceberg": true,
	"mosaic/internal/swap":    true,
}

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether any result of the signature is the error
// type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

func runErrDrop(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := callee(p.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || !errDropPkgs[fn.Pkg().Path()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			d := p.diag("errdrop", call.Pos(),
				"result of %s.%s discarded: handle the error (or assign to _ to discard explicitly)",
				fn.Pkg().Name(), fn.Name())
			// The mechanical remedy makes the discard explicit: one blank
			// per result value, so the statement survives review as a
			// deliberate decision.
			blanks := strings.Repeat("_, ", sig.Results().Len()-1) + "_ = "
			d.Fix = &Fix{
				Message: "make the discard explicit with " + blanks,
				Edits:   []TextEdit{p.edit(stmt.Pos(), stmt.Pos(), blanks)},
			}
			out = append(out, d)
			return true
		})
	}
	return out
}
