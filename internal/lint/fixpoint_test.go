package lint

import (
	"strings"
	"testing"
)

// TestDetTaint pins the determinism-taint analyzer: direct sink flows,
// parameter-summary carriers, field-lattice flows, map-order taint, and the
// two sanctioned escapes (collect-then-sort, wall.* instruments).
func TestDetTaint(t *testing.T) {
	checkFixture(t, DetTaint, "dettaint", "mosaic/internal/fixture")
}

// TestBatchParity pins the scalar≡batch shape analyzer over dual
// Sink+BatchSink implementors and per-ref replay loops.
func TestBatchParity(t *testing.T) {
	checkFixture(t, BatchParity, "batchparity", "mosaic/internal/fixture")
}

// TestGoLeak pins the goroutine-cancellation analyzer, including spins
// reached through named calls at depth.
func TestGoLeak(t *testing.T) {
	checkFixture(t, GoLeak, "goleak", "mosaic/internal/fixture")
}

// TestDetTaintSkipsExternalPackages: dettaint and goleak are scoped to the
// module's own code (internal tree plus the root package).
func TestDetTaintSkipsExternalPackages(t *testing.T) {
	checkFixtureClean(t, DetTaint, "dettaint", "example.com/external")
	checkFixtureClean(t, GoLeak, "goleak", "example.com/external")
}

// nodeByName finds the unique program node whose id ends in suffix.
func nodeByName(t *testing.T, pr *Program, suffix string) *progFunc {
	t.Helper()
	var found *progFunc
	for _, pf := range pr.funcs {
		if strings.HasSuffix(pf.id, suffix) {
			if found != nil {
				t.Fatalf("id suffix %s is ambiguous (%s, %s)", suffix, found.id, pf.id)
			}
			found = pf
		}
	}
	if found == nil {
		t.Fatalf("no program node with id suffix %s", suffix)
	}
	return found
}

// TestFixpointSelfRecursion: a self-recursive function terminates and lands
// on sound summaries — the unproven bounded cycle stays false, a masked
// wrapper above it is bounded, and a self-recursive spin settles true.
func TestFixpointSelfRecursion(t *testing.T) {
	p := loadFixture(t, "recurse", "mosaic/internal/fixture")
	if s := summaryFor(t, p, "maskedRec"); s.bounded {
		t.Error("maskedRec proved bounded through its own unproven cycle")
	}
	if s := summaryFor(t, p, "maskedWrap"); !s.bounded {
		t.Error("maskedWrap (masked at the boundary) not bounded")
	}
	if s := summaryFor(t, p, "spinRec"); !s.spins {
		t.Error("spinRec not summarised as spinning")
	}
	rec := nodeByName(t, p.flow(), ".maskedRec")
	if len(p.flow().sccs[rec.scc]) != 1 {
		t.Errorf("maskedRec SCC has %d members, want 1 (self-loop)", len(p.flow().sccs[rec.scc]))
	}
}

// TestFixpointMutualRecursion: a two-function cycle converges jointly — the
// spin fact propagates around the cycle, and both members share one SCC.
func TestFixpointMutualRecursion(t *testing.T) {
	p := loadFixture(t, "mutrec", "mosaic/internal/fixture")
	pr := p.flow()
	a, b := nodeByName(t, pr, ".spinA"), nodeByName(t, pr, ".spinB")
	if a.scc != b.scc {
		t.Errorf("spinA (scc %d) and spinB (scc %d) not condensed together", a.scc, b.scc)
	}
	if !a.sum.spins || !b.sum.spins {
		t.Errorf("spins did not propagate around the cycle: spinA=%v spinB=%v", a.sum.spins, b.sum.spins)
	}
	even, odd := nodeByName(t, pr, ".evenStep"), nodeByName(t, pr, ".oddStep")
	if even.scc != odd.scc {
		t.Error("evenStep/oddStep not in one SCC")
	}
	if even.sum.bounded || odd.sum.bounded {
		t.Error("bounded wrongly proven around an unproven mutual cycle")
	}
}

// TestFixpointInterfaceCycle: a cycle closed purely through interface
// dispatch still condenses — the method-set edges make both concrete step
// methods one SCC.
func TestFixpointInterfaceCycle(t *testing.T) {
	p := loadFixture(t, "ifacecycle", "mosaic/internal/fixture")
	pr := p.flow()
	a, b := nodeByName(t, pr, "(*alpha).step"), nodeByName(t, pr, "(*beta).step")
	if a.scc != b.scc {
		t.Errorf("dispatch cycle not condensed: (*alpha).step scc %d, (*beta).step scc %d", a.scc, b.scc)
	}
	hasDispatch := false
	for _, e := range a.out {
		if e.kind == edgeDispatch {
			hasDispatch = true
		}
	}
	if !hasDispatch {
		t.Error("(*alpha).step has no dispatch edge; interface fanout missing")
	}
}

// TestSummaryRanksBottomUp: every edge points into the same rank or a lower
// one — the levelization the per-rank parallel summary sweep depends on.
func TestSummaryRanksBottomUp(t *testing.T) {
	p := loadFixture(t, "lockflow", "mosaic/internal/fixture")
	pr := p.flow()
	for _, pf := range pr.funcs {
		for _, e := range pf.out {
			if e.to.scc != pf.scc && e.to.rank >= pf.rank {
				t.Errorf("edge %s -> %s climbs ranks (%d -> %d)", pf.id, e.to.id, pf.rank, e.to.rank)
			}
		}
	}
}
