package lint

import (
	"bytes"
	"testing"
)

// exportPasses is the fixture set the export tests build their program
// from: a dispatch cycle (dashed edges in dot, one multi-function SCC in
// json) plus the recursion fixtures, loaded under distinct import paths so
// function IDs stay distinct in the shared program.
func exportPasses(t *testing.T) []*Pass {
	t.Helper()
	return []*Pass{
		loadFixture(t, "ifacecycle", "mosaic/internal/ifacecycle"),
		loadFixture(t, "recurse", "mosaic/internal/recurse"),
		loadFixture(t, "mutrec", "mosaic/internal/mutrec"),
	}
}

// TestCallGraphGolden pins both -callgraph encodings byte for byte. The
// golden files double as documentation of the export schema: reviewers see
// exactly what schema_version 1 promises, and any drift is a diff they
// must approve.
func TestCallGraphGolden(t *testing.T) {
	pr := BuildProgram(exportPasses(t), 0)
	var j, d bytes.Buffer
	if err := pr.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := pr.WriteDOT(&d); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "callgraph.json", j.Bytes())
	checkGolden(t, "callgraph.dot", d.Bytes())
}

// TestCallGraphExportDeterministic proves the -callgraph contract end to
// end: the rendered export is byte-identical run over run and at every
// worker count. The summaries are computed rank-parallel, so this is the
// test that would catch a scheduling-order leak into SCC numbering, edge
// order, or rank assignment.
func TestCallGraphExportDeterministic(t *testing.T) {
	render := func(workers int) []byte {
		t.Helper()
		pr := BuildProgram(exportPasses(t), workers)
		var buf bytes.Buffer
		if err := pr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := render(1)
	for _, workers := range []int{1, 2, 8} {
		if got := render(workers); !bytes.Equal(got, base) {
			t.Errorf("callgraph json at workers=%d differs from workers=1:\n--- workers=%d ---\n%s",
				workers, workers, got)
		}
	}
}
