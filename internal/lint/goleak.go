package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak flags spawned goroutines that can never be told to stop: the body
// (or, for a named function, its summary — computed to any static call
// depth) contains an unconditional for-loop with no exit edge (return,
// break, goto, panic) and no done edge (a context value, a channel
// receive, a select, a range over a channel, or a call into a module
// function that consults one). Such a worker outlives every driver — it
// survives session teardown in mosaicd and keeps the process alive after a
// sweep is cancelled.
//
// This is the whole-program deepening of ctxflow's goroutine rule: ML012
// asks a worker loop to consult the context in scope at the spawn site;
// ML016 asks that *some* cancellation edge be reachable at all, through
// any chain of calls.
var GoLeak = &Analyzer{
	Name: "goleak",
	ID:   "ML016",
	Doc:  "spawned goroutines must have a reachable cancellation or done edge at some call depth",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) []Diagnostic {
	if !p.internalPkg() && p.ImportPath != "mosaic" {
		return nil
	}
	pr := p.flow()
	c := &sumCtx{pr: pr}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
				if bodySpins(c, p, fl.Body) {
					out = append(out, p.diag("goleak", g.Pos(),
						"goroutine spins in an unconditional loop with no exit or cancellation edge at any call depth; give it a context, a closable channel, or a done signal"))
				}
				return true
			}
			if fn, isFn := callee(p.Info, g.Call).(*types.Func); isFn {
				if node := pr.node(fn); node != nil && node.sum != nil && node.sum.spins {
					out = append(out, p.diag("goleak", g.Pos(),
						"goroutine runs %s, which spins in an unconditional loop with no exit or cancellation edge at any call depth; give it a context, a closable channel, or a done signal",
						node.id))
				}
			}
			return true
		})
	}
	return out
}
