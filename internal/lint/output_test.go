package lint

import (
	"bytes"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goldenDiags produces a deterministic diagnostic set covering the output
// surface: plain findings from the per-package analyzers, fix-carrying
// findings from detrand and errdrop, and call-graph-derived findings from
// the whole-program analyzers, all position-sorted by RunAll. Each fixture
// loads under its own import path so function IDs stay distinct inside the
// shared program.
func goldenDiags(t *testing.T) []Diagnostic {
	t.Helper()
	passes := []*Pass{
		loadFixture(t, "maporder", "mosaic/internal/maporder"),
		loadFixture(t, "sweepsafe", "mosaic/internal/sweepsafe"),
		loadFixture(t, "fixapply", "mosaic/internal/fixapply"),
		loadFixture(t, "dettaint", "mosaic/internal/dettaint"),
		loadFixture(t, "batchparity", "mosaic/internal/batchparity"),
		loadFixture(t, "goleak", "mosaic/internal/goleak"),
	}
	diags := RunAll(passes, All())
	if len(diags) == 0 {
		t.Fatal("golden fixture set produced no diagnostics")
	}
	return diags
}

// checkGolden compares got against the named golden file, rewriting it under
// -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (rerun with -update-golden if intended):\n--- got ---\n%s", name, got)
	}
}

// TestGoldenJSON pins the -json report shape byte for byte: schema version,
// field names, fingerprints, and fix encoding all live in the golden file,
// so any schema drift shows up as a diff reviewers must approve.
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "", goldenDiags(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"schema_version": 1`) {
		t.Errorf("report missing schema_version 1:\n%s", out)
	}
	if !strings.Contains(out, `"fix"`) {
		t.Errorf("no fix-carrying finding in the golden set; fix encoding is unpinned")
	}
	checkGolden(t, "golden.json", buf.Bytes())
}

// TestGoldenSARIF pins the SARIF 2.1.0 encoding, including the full rule
// catalogue (every analyzer appears even without findings) and the
// partial-fingerprint key.
func TestGoldenSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "", goldenDiags(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, an := range Catalog() {
		if !strings.Contains(out, `"id": "`+an.ID+`"`) {
			t.Errorf("rule %s (%s) missing from SARIF rules", an.ID, an.Name)
		}
	}
	if !strings.Contains(out, "mosaiclintFingerprint/v1") {
		t.Error("partial fingerprint key missing")
	}
	checkGolden(t, "golden.sarif", buf.Bytes())
}

// TestFingerprintLineIndependent proves the identity property end to end:
// two findings that differ only in position — the same analyzer reporting
// the same message in the same file after code above it moved — encode with
// identical fingerprints in both machine formats, so trackers keyed on the
// fingerprint follow the finding across the move.
func TestFingerprintLineIndependent(t *testing.T) {
	mk := func(line, col int) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "internal/tlb/set.go", Line: line, Column: col},
			Analyzer: "lockflow",
			ID:       "ML011",
			Message:  "s.mu.Lock() is never unlocked on the return path at line 9",
		}
	}
	for _, write := range []struct {
		name string
		fn   func(w io.Writer, root string, diags []Diagnostic) error
	}{{"json", WriteJSON}, {"sarif", WriteSARIF}} {
		var buf bytes.Buffer
		if err := write.fn(&buf, "", []Diagnostic{mk(17, 2), mk(402, 9)}); err != nil {
			t.Fatal(err)
		}
		prints := regexp.MustCompile(`[0-9a-f]{16}`).FindAllString(buf.String(), -1)
		if len(prints) != 2 {
			t.Fatalf("%s: found %d fingerprints, want 2", write.name, len(prints))
		}
		if prints[0] != prints[1] {
			t.Errorf("%s: fingerprints differ across a pure line move: %s vs %s",
				write.name, prints[0], prints[1])
		}
	}
	// The converse: a different message is a different finding.
	other := mk(17, 2)
	other.Message = "different"
	if fingerprint(other.Analyzer, other.Pos.Filename, other.Message) ==
		fingerprint("lockflow", "internal/tlb/set.go", mk(17, 2).Message) {
		t.Error("distinct messages collided")
	}

	// Call-graph-derived findings carry function IDs, not positions, in
	// their messages, so the same identity property holds for them: the
	// finding follows the call site across pure line moves, and a change of
	// carrier function is a different finding.
	viaMsg := "wall-clock-tainted value reaches a results.File metric through mosaic/internal/daemon.flush"
	if fingerprint("dettaint", "internal/daemon/session.go", viaMsg) !=
		fingerprint("dettaint", "internal/daemon/session.go", viaMsg) {
		t.Error("call-graph-derived fingerprint not stable")
	}
	otherVia := "wall-clock-tainted value reaches a results.File metric through mosaic/internal/daemon.drain"
	if fingerprint("dettaint", "internal/daemon/session.go", viaMsg) ==
		fingerprint("dettaint", "internal/daemon/session.go", otherVia) {
		t.Error("distinct carrier functions collided")
	}
}

// TestFingerprintStability pins the fingerprint function itself: it must
// stay line-independent and byte-stable across releases, or external
// trackers lose finding identity.
func TestFingerprintStability(t *testing.T) {
	got := fingerprint("detrand", "internal/core/sim.go", "call to rand.Intn")
	const want = "1a45c77582388e83"
	if got != want {
		t.Errorf("fingerprint changed: got %s, want %s — this breaks finding identity downstream", got, want)
	}
	if fingerprint("a", "b", "c") == fingerprint("a", "b|", "c") {
		t.Error("separator collision: field boundaries not hashed")
	}
}
