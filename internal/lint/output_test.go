package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDiags produces a deterministic diagnostic set covering the output
// surface: plain findings from the new analyzers plus fix-carrying findings
// from detrand and errdrop, all position-sorted by RunAll.
func goldenDiags(t *testing.T) []Diagnostic {
	t.Helper()
	passes := []*Pass{
		loadFixture(t, "maporder", "mosaic/internal/fixture"),
		loadFixture(t, "sweepsafe", "mosaic/internal/fixture"),
		loadFixture(t, "fixapply", "mosaic/internal/fixture"),
	}
	diags := RunAll(passes, All())
	if len(diags) == 0 {
		t.Fatal("golden fixture set produced no diagnostics")
	}
	return diags
}

// checkGolden compares got against the named golden file, rewriting it under
// -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (rerun with -update-golden if intended):\n--- got ---\n%s", name, got)
	}
}

// TestGoldenJSON pins the -json report shape byte for byte: schema version,
// field names, fingerprints, and fix encoding all live in the golden file,
// so any schema drift shows up as a diff reviewers must approve.
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "", goldenDiags(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"schema_version": 1`) {
		t.Errorf("report missing schema_version 1:\n%s", out)
	}
	if !strings.Contains(out, `"fix"`) {
		t.Errorf("no fix-carrying finding in the golden set; fix encoding is unpinned")
	}
	checkGolden(t, "golden.json", buf.Bytes())
}

// TestGoldenSARIF pins the SARIF 2.1.0 encoding, including the full rule
// catalogue (every analyzer appears even without findings) and the
// partial-fingerprint key.
func TestGoldenSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "", goldenDiags(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, an := range Catalog() {
		if !strings.Contains(out, `"id": "`+an.ID+`"`) {
			t.Errorf("rule %s (%s) missing from SARIF rules", an.ID, an.Name)
		}
	}
	if !strings.Contains(out, "mosaiclintFingerprint/v1") {
		t.Error("partial fingerprint key missing")
	}
	checkGolden(t, "golden.sarif", buf.Bytes())
}

// TestFingerprintStability pins the fingerprint function itself: it must
// stay line-independent and byte-stable across releases, or external
// trackers lose finding identity.
func TestFingerprintStability(t *testing.T) {
	got := fingerprint("detrand", "internal/core/sim.go", "call to rand.Intn")
	const want = "1a45c77582388e83"
	if got != want {
		t.Errorf("fingerprint changed: got %s, want %s — this breaks finding identity downstream", got, want)
	}
	if fingerprint("a", "b", "c") == fingerprint("a", "b|", "c") {
		t.Error("separator collision: field boundaries not hashed")
	}
}
