package lint

// DetTaint tracks nondeterminism interprocedurally from its sources — the
// wall clock (time.Now/Since), the process environment, the global
// math/rand stream, select/goroutine interleaving, and map iteration
// order — to the module's determinism sinks: results.File metrics, trace
// writers and sinks, and obs registry instruments. Those surfaces back the
// repo's reproducibility gates (workers=1≡N byte-identity, scalar≡batch
// equality, seed-stable results files); a tainted value reaching one is a
// diverging run waiting to happen, no matter how many calls or struct
// fields it travelled through on the way.
//
// Two escapes are deliberate. Map-derived data loses its iteration-order
// taint when the collection is handed to sort/slices (collect-then-sort is
// the sanctioned idiom). And instruments fetched under the reserved
// "wall." metric namespace are exempt: that namespace is the telemetry
// plane for wall-clock observations, and results.File.AddSnapshot excludes
// it from deterministic results files.
var DetTaint = &Analyzer{
	Name: "dettaint",
	ID:   "ML014",
	Doc:  "nondeterministic values (wall clock, env, global rand, select ordering, map order) must not flow into results, traces, or non-wall.* metrics",
	Run:  runDetTaint,
}

func runDetTaint(p *Pass) []Diagnostic {
	if !p.internalPkg() && p.ImportPath != "mosaic" {
		return nil
	}
	pr := p.flow()
	c := &sumCtx{pr: pr}
	var out []Diagnostic
	for _, pf := range pr.funcs {
		if pf.pass != p {
			continue
		}
		ts := newTaintScan(c, pf)
		ts.run()
		for _, h := range ts.hits {
			if h.via != "" {
				out = append(out, p.diag("dettaint", h.pos,
					"%s-tainted value reaches %s through %s: two runs of one seed diverge; derive it from the reference stream or publish it under the wall.* telemetry namespace",
					h.mask.label(), h.sink, h.via))
				continue
			}
			out = append(out, p.diag("dettaint", h.pos,
				"%s-tainted value flows into %s: two runs of one seed diverge; derive it from the reference stream or publish it under the wall.* telemetry namespace",
				h.mask.label(), h.sink))
		}
	}
	return out
}
