package lint

import "testing"

// BenchmarkMosaiclintTree measures a full mosaiclint pass over the module —
// parallel load plus every per-package analyzer (the hotalloc build gate is
// excluded: it shells out to the compiler and is benchmarked by its wall
// clock in check.sh, not here). scripts/bench.sh records this into
// BENCH_lint.json so analyzer additions pay for their cost visibly.
func BenchmarkMosaiclintTree(b *testing.B) {
	for b.Loop() {
		passes, err := Load([]string{"mosaic/..."})
		if err != nil {
			b.Fatal(err)
		}
		diags := RunAll(passes, All())
		if len(diags) != 0 {
			b.Fatalf("tree not clean: %v", diags)
		}
	}
}
