package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkMosaiclintTree measures a full mosaiclint pass over the module —
// parallel load plus every per-package analyzer (the hotalloc build gate is
// excluded: it shells out to the compiler and is benchmarked by its wall
// clock in check.sh, not here). scripts/bench.sh records this into
// BENCH_lint.json so analyzer additions pay for their cost visibly.
func BenchmarkMosaiclintTree(b *testing.B) {
	for b.Loop() {
		passes, err := Load([]string{"mosaic/..."})
		if err != nil {
			b.Fatal(err)
		}
		diags := RunAll(passes, All())
		if len(diags) != 0 {
			b.Fatalf("tree not clean: %v", diags)
		}
	}
}

// BenchmarkCallGraphBuild isolates the whole-program phase of a tree run:
// call-graph construction, Tarjan condensation, levelization, and the
// bottom-up fixpoint summaries — everything BuildProgram does after the
// packages are loaded. Load is hoisted out of the loop so the number is
// the marginal cost the fixpoint engine adds on top of the per-package
// analyzers; scripts/bench.sh records it into BENCH_lint.json.
func BenchmarkCallGraphBuild(b *testing.B) {
	passes, err := Load([]string{"mosaic/..."})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		BuildProgram(passes, 0)
	}
}

// BenchmarkCompilerGates measures the three compiler-introspection gates end
// to end — hotalloc, bcegate, inlinegate — including the `go build` each
// shells out to. On an unchanged tree the build cache replays the compiler's
// diagnostics, so this is the steady-state cost every check.sh run pays;
// scripts/bench.sh records it into BENCH_lint.json next to the analyzer
// pass so gate additions stay visible in the same diff.
func BenchmarkCompilerGates(b *testing.B) {
	root, err := ModuleRoot()
	if err != nil {
		b.Fatal(err)
	}
	for b.Loop() {
		if _, _, err := RunHotAlloc(root, filepath.Join(root, EscapeBaselineFile), HotPathPackages); err != nil {
			b.Fatal(err)
		}
		if _, _, err := RunBCEGate(root, filepath.Join(root, BCEBaselineFile), HotPathPackages); err != nil {
			b.Fatal(err)
		}
		if _, _, err := RunInlineGate(root, filepath.Join(root, InlineBaselineFile)); err != nil {
			b.Fatal(err)
		}
	}
}
