package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// BatchParity guards the scalar≡batch equivalence the batched replay
// engine (PR 8) rests on. Two shapes break it:
//
//  1. A type implementing both trace.Sink and trace.BatchSink whose
//     ProcessBatch does not visibly do per-reference what Access does —
//     the batch path must forward the batch, share a per-ref core with
//     Access (some function reachable from Access is called once per
//     element), or update the same receiver fields per element (or in one
//     len(batch)-shaped bulk step). Anything else is a side-effect/count
//     shape that diverges from the scalar path.
//  2. A per-ref loop feeding a trace.Batch through Sink.Access when a
//     batch-level delivery exists — the batched path silently degrades to
//     the scalar one and the equivalence gate stops exercising it.
//  3. A batch-native generator (a type implementing both Run(trace.Sink)
//     and RunBatches(trace.BatchSink)) whose emit path calls Access through
//     the trace.Sink interface — the generation algorithm still lives on
//     the scalar side, paying one dynamic dispatch per reference, and the
//     batch leg is native in name only. Emit through the concrete
//     *trace.Batcher (or the arena GetB/SetB legs) instead.
//
// internal/trace itself is exempt from shape 2: Batch.Replay and the
// BatchSinkOf adapter are the sanctioned scalar bridges.
var BatchParity = &Analyzer{
	Name: "batchparity",
	ID:   "ML015",
	Doc:  "trace.Sink+BatchSink dual implementors must keep ProcessBatch and per-ref Access in the same side-effect shape; don't replay a Batch per-ref through Sink.Access",
	Run:  runBatchParity,
}

const (
	sigAccess       = "Access(uint64, bool)"
	sigProcessBatch = "ProcessBatch(mosaic/internal/trace.Batch)"
	sigRun          = "Run(mosaic/internal/trace.Sink)"
	sigRunBatches   = "RunBatches(mosaic/internal/trace.BatchSink)"
)

func runBatchParity(p *Pass) []Diagnostic {
	pr := p.flow()
	var out []Diagnostic
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		var access, pb, run, rb *types.Func
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			m, isFn := ms.At(i).Obj().(*types.Func)
			if !isFn {
				continue
			}
			switch methodSig(m) {
			case sigAccess:
				access = m
			case sigProcessBatch:
				pb = m
			case sigRun:
				run = m
			case sigRunBatches:
				rb = m
			}
		}
		if access != nil && pb != nil {
			accNode, pbNode := pr.node(access), pr.node(pb)
			if accNode != nil && pbNode != nil && pbNode.pass == p {
				out = append(out, checkDual(p, pr, name, accNode, pbNode)...)
			}
		}
		if run != nil && rb != nil {
			out = append(out, generatorEmitPaths(p, pr, name, run, rb)...)
		}
	}
	if p.ImportPath != "mosaic/internal/trace" {
		out = append(out, perRefReplays(p)...)
	}
	return out
}

// checkDual compares one dual implementor's ProcessBatch shape against its
// per-ref Access.
func checkDual(p *Pass, pr *Program, typeName string, accNode, pbNode *progFunc) []Diagnostic {
	use, ok := pbNode.sum.batchParams[1]
	if !ok || !use.used {
		return []Diagnostic{p.diag("batchparity", pbNode.decl.Pos(),
			"%s implements both trace.Sink and trace.BatchSink, but ProcessBatch ignores its batch while per-ref Access processes references: the batched and scalar replay paths diverge",
			typeName)}
	}
	if use.forwarded {
		return nil
	}
	reach := pr.reachable(accNode)
	for _, id := range use.perRef {
		if reach[id] {
			return nil // shared per-ref core: both paths run the same code
		}
	}
	// No shared core and no forwarding: compare the receiver-field update
	// shape of the two paths.
	accFields := recvFieldWrites(p, accNode, nil)
	batchObj := firstParamObj(p, pbNode.decl)
	perRef, bulk, once := pbWriteShape(p, pbNode, batchObj)
	var diverged []string
	for _, f := range accFields {
		switch {
		case perRef[f] || bulk[f]:
		case once[f]:
			diverged = append(diverged, f+" (updated once per batch, not per reference)")
		default:
			diverged = append(diverged, f+" (never updated)")
		}
	}
	if len(diverged) == 0 {
		return nil
	}
	return []Diagnostic{p.diag("batchparity", pbNode.decl.Pos(),
		"%s.ProcessBatch diverges from per-ref Access: %s; forward the batch, share Access's per-ref core, or mirror its updates per element",
		typeName, strings.Join(diverged, ", "))}
}

// generatorEmitPaths walks every module function reachable from a
// batch-native generator's two legs and flags Access calls made through the
// trace.Sink interface: the generation algorithm must emit through the
// concrete *trace.Batcher (one packed store per reference), not degrade the
// batch leg back to per-ref dynamic dispatch.
func generatorEmitPaths(p *Pass, pr *Program, typeName string, run, rb *types.Func) []Diagnostic {
	runNode, rbNode := pr.node(run), pr.node(rb)
	if runNode == nil || rbNode == nil || rbNode.pass != p {
		return nil // embedded from elsewhere: that package's finding
	}
	reach := pr.reachable(runNode)
	for id := range pr.reachable(rbNode) {
		reach[id] = true
	}
	var out []Diagnostic
	seen := map[token.Pos]bool{}
	for id := range reach {
		pf := pr.byID[id]
		if pf == nil || pf.pass != p || pf.decl == nil || pf.decl.Body == nil {
			continue // another package's function: that package's finding
		}
		ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, isFn := callee(p.Info, call).(*types.Func)
			if !isFn || fn.Name() != "Access" || seen[call.Pos()] {
				return true
			}
			sig, isSig := fn.Type().(*types.Signature)
			if !isSig || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), "mosaic/internal/trace", "Sink") {
				return true
			}
			seen[call.Pos()] = true
			out = append(out, p.diag("batchparity", call.Pos(),
				"Sink.Access on %s's emit path: the generator implements trace.BatchRunner, so emit through the concrete *trace.Batcher instead of per-ref interface dispatch",
				typeName))
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// firstParamObj returns the object of fd's first named parameter, or nil.
func firstParamObj(p *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return nil
	}
	names := fd.Type.Params.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return p.Info.Defs[names[0]]
}

// recvFieldWrites returns the sorted receiver fields a method updates
// anywhere in its body. When filter is non-nil, only writes for which
// filter returns true are counted.
func recvFieldWrites(p *Pass, node *progFunc, filter func(stack []ast.Node) bool) []string {
	recv := recvObj(p, node.decl)
	if recv == nil {
		return nil
	}
	set := map[string]bool{}
	eachRecvWrite(p, node.decl.Body, recv, func(field string, stack []ast.Node) {
		if filter == nil || filter(stack) {
			set[field] = true
		}
	})
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// recvObj returns the method's receiver object, or nil.
func recvObj(p *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.Defs[fd.Recv.List[0].Names[0]]
}

// eachRecvWrite calls fn for every receiver-field update site (assignment,
// compound assignment, or ++/--) with the enclosing node stack.
func eachRecvWrite(p *Pass, body *ast.BlockStmt, recv types.Object, fn func(field string, stack []ast.Node)) {
	fieldOf := func(e ast.Expr) string {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		if id, _ := selChain(sel.X); id == nil || p.Info.Uses[id] != recv {
			return ""
		}
		return sel.Sel.Name
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if f := fieldOf(lhs); f != "" {
					fn(f, stack)
				}
			}
		case *ast.IncDecStmt:
			if f := fieldOf(x.X); f != "" {
				fn(f, stack)
			}
		}
		return true
	})
}

// pbWriteShape classifies ProcessBatch's receiver-field updates: perRef
// (inside a loop), bulk (a single step shaped by len(batch)), or once
// (anything else).
func pbWriteShape(p *Pass, node *progFunc, batchObj types.Object) (perRef, bulk, once map[string]bool) {
	perRef, bulk, once = map[string]bool{}, map[string]bool{}, map[string]bool{}
	recv := recvObj(p, node.decl)
	if recv == nil {
		return
	}
	usesLen := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "len" || len(call.Args) != 1 {
				return true
			}
			if batchObj == nil || rootObj(p, ast.Unparen(call.Args[0])) == batchObj {
				found = true
			}
			return !found
		})
		return found
	}
	eachRecvWrite(p, node.decl.Body, recv, func(field string, stack []ast.Node) {
		inLoop := false
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			}
		}
		site := stack[len(stack)-1]
		switch {
		case inLoop:
			perRef[field] = true
		case usesLen(site):
			bulk[field] = true
		default:
			once[field] = true
		}
	})
	return
}

// perRefReplays flags range loops that push a trace.Batch element by
// element through the Sink.Access interface.
func perRefReplays(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			r, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[r.X]
			if !ok || !namedFrom(tv.Type, "mosaic/internal/trace", "Batch") {
				return true
			}
			ast.Inspect(r.Body, func(m ast.Node) bool {
				call, isCall := m.(*ast.CallExpr)
				if !isCall {
					return true
				}
				fn, isFn := callee(p.Info, call).(*types.Func)
				if !isFn || fn.Name() != "Access" {
					return true
				}
				sig, isSig := fn.Type().(*types.Signature)
				if !isSig || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), "mosaic/internal/trace", "Sink") {
					return true
				}
				out = append(out, p.diag("batchparity", call.Pos(),
					"per-ref Sink.Access loop over a trace.Batch: deliver the whole batch (BatchSink.ProcessBatch, Batch.Replay, or trace.BatchSinkOf) so the batched path stays exercised"))
				return false
			})
			return true
		})
	}
	return out
}
