package lint

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements mosaiclint's -diff mode: lint only the packages
// touched since a git ref. The file list comes from git itself (tracked
// changes against the ref plus untracked files), so the mode needs no
// VCS state beyond the repository the module already lives in.

// ChangedFiles returns the repo-relative paths changed since ref: files
// differing between ref and the working tree, plus untracked (non-ignored)
// files. Paths use forward slashes, as git prints them.
func ChangedFiles(root, ref string) ([]string, error) {
	seen := map[string]bool{}
	run := func(args ...string) error {
		cmd := exec.Command("git", args...)
		cmd.Dir = root
		out, err := cmd.Output()
		if err != nil {
			detail := ""
			if ee, ok := err.(*exec.ExitError); ok {
				detail = ": " + strings.TrimSpace(string(ee.Stderr))
			}
			return fmt.Errorf("lint: git %s%s", strings.Join(args, " "), detail)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				seen[line] = true
			}
		}
		return nil
	}
	if err := run("diff", "--name-only", ref); err != nil {
		return nil, err
	}
	if err := run("ls-files", "--others", "--exclude-standard"); err != nil {
		return nil, err
	}
	files := make([]string, 0, len(seen))
	for f := range seen {
		files = append(files, f)
	}
	sort.Strings(files)
	return files, nil
}

// PackagePatterns maps changed files to the ./dir package patterns the
// loader should lint: the directory of every changed .go file, skipping
// testdata trees (fixtures are not packages of the module) and directories
// that no longer exist (deletions). The module root maps to ".".
func PackagePatterns(root string, files []string) []string {
	seen := map[string]bool{}
	for _, f := range files {
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		dir := filepath.ToSlash(filepath.Dir(f))
		if dir == "testdata" || strings.Contains(dir, "/testdata") ||
			strings.HasPrefix(dir, "testdata/") {
			continue
		}
		if st, err := os.Stat(filepath.Join(root, dir)); err != nil || !st.IsDir() {
			continue
		}
		if dir == "." {
			seen["."] = true
		} else {
			seen["./"+dir] = true
		}
	}
	patterns := make([]string, 0, len(seen))
	for p := range seen {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	return patterns
}

// TouchesGatePaths reports whether the changed files affect what the
// compiler gates measure: a .go file in a hot-path package or at the module
// root (the inline pins include figure6.go), or anything under
// internal/lint (the analyzers and the checked-in baselines themselves).
func TouchesGatePaths(files []string) bool {
	hot := map[string]bool{}
	for _, p := range HotPathPackages {
		hot[strings.TrimPrefix(p, "./")] = true
	}
	for _, f := range files {
		if strings.HasPrefix(f, "internal/lint/") {
			return true
		}
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		dir := filepath.ToSlash(filepath.Dir(f))
		if dir == "." || hot[dir] {
			return true
		}
	}
	return false
}
