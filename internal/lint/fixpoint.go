package lint

import (
	"context"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mosaic/internal/sweep"
)

// The fixpoint summary engine. Summaries are computed bottom-up over the
// call-graph condensation (callgraph.go): every SCC follows the SCCs it
// calls into, so a function's callees are already summarised when it is
// visited. Inside a cyclic SCC the members iterate to a joint fixpoint.
//
// Termination is by construction, not by luck:
//
//   - every lattice is finite and (except `spins`, see below) monotone
//     increasing from a pessimistic bottom — lock effects only accumulate,
//     boolean facts only flip false→true, taint masks only gain bits;
//   - the lock-effect list is widened: it saturates at maxLockEffects and
//     the summary records the saturation instead of growing;
//   - `spins` is recomputed from scratch each iteration and reads
//     `consultsCancel` negatively, so the loop additionally carries an
//     iteration cap (sccIterCap) as a widening backstop — once
//     consultsCancel stabilises (monotone, so it must), spins itself
//     becomes monotone and settles.
//
// The global fieldTaint lattice cuts across the condensation (a field
// written in a leaf is read in a root), so the taint phase repeats whole
// bottom-up rounds until nothing changes, bounded by maxTaintRounds.
//
// Parallelism: within one rank of the condensation no SCC can reach
// another, so each rank's SCCs are summarised concurrently over
// internal/sweep. Results come back in submission-index order and are
// merged sequentially, so the computed summaries — and everything derived
// from them — are identical at any worker count.

// maxLockEffects caps a summary's lock-effect list (the widening bound).
const maxLockEffects = 8

// maxTaintRounds caps the whole-program taint rounds. Each round needs a
// fieldTaint bit discovered in a previous round to make progress; the mask
// has five bits, so real programs settle in two or three rounds.
const maxTaintRounds = 8

// sccIterCap bounds fixpoint iterations inside one SCC of n members.
func sccIterCap(n int) int { return 3 + 2*n }

// A batchUse summarises how a function treats one trace.Batch parameter.
type batchUse struct {
	// used: the parameter is referenced at all.
	used bool
	// ranged: the function iterates the batch element by element.
	ranged bool
	// forwarded: the batch is handed on whole — to a ProcessBatch /
	// WriteBatch method, to Batch.Replay, or to a module function that
	// itself forwards or ranges it.
	forwarded bool
	// perRef is the sorted set of module function IDs called once per
	// batch element (inside a loop over the batch).
	perRef []string
}

func (u batchUse) equal(o batchUse) bool {
	if u.used != o.used || u.ranged != o.ranged || u.forwarded != o.forwarded || len(u.perRef) != len(o.perRef) {
		return false
	}
	for i := range u.perRef {
		if u.perRef[i] != o.perRef[i] {
			return false
		}
	}
	return true
}

// A funcSummary is the caller-visible behaviour of one declared function,
// computed to fixpoint over the whole module.
type funcSummary struct {
	// effects are the lock operations whose balance the caller inherits:
	// locks held at some return (acquire) and unlocks of locks the function
	// never took itself (release).
	effects []lockEffect
	// saturated marks a summary whose effect list hit maxLockEffects and
	// was widened (further effects dropped).
	saturated bool
	// lockHelper marks a function whose body is nothing but lock-management
	// statements — a deliberate Lock/Unlock wrapper, possibly through other
	// helpers. Such a function is summarised, not flagged; its callers
	// carry the balancing burden. Only helpers export acquire effects
	// (releases are exported by everyone): a non-helper that nets an
	// acquire is a leak flagged in place, not a burden passed upward.
	lockHelper bool
	// bounded marks a single-result function whose every return expression
	// is range-reduced — masked directly or produced by a bounded callee.
	bounded bool
	// returnsFreshCtx marks a function that can return a context rooted in
	// context.Background()/TODO() rather than one it was handed.
	returnsFreshCtx bool
	// consultsCancel: the function (or anything it calls) observes a
	// cancellation/done edge — a context value, a channel receive, a
	// select, a range over a channel.
	consultsCancel bool
	// spins: the function contains an unconditional for-loop with no exit
	// and no done edge, at any call depth.
	spins bool
	// batchParams describes each trace.Batch-typed parameter by slot.
	batchParams map[int]batchUse
	// retTaint is the nondeterminism taint carried by the return values.
	retTaint taintMask
	// paramsToRet has bit s set when parameter slot s flows into a return
	// value.
	paramsToRet uint32
	// paramSinks names the determinism sink a parameter slot reaches inside
	// this function (directly or through callees), keyed by slot.
	paramSinks map[int]string
}

// exportedEffects returns the effects a caller inherits: everything from a
// lock helper, releases only from anything else.
func (s *funcSummary) exportedEffects() []lockEffect {
	if s.lockHelper {
		return s.effects
	}
	var out []lockEffect
	for _, e := range s.effects {
		if !e.acquire {
			out = append(out, e)
		}
	}
	return out
}

func (s *funcSummary) addEffect(e lockEffect) {
	if len(s.effects) >= maxLockEffects {
		s.saturated = true
		return
	}
	s.effects = append(s.effects, e)
}

func effectsEqual(a, b []lockEffect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// coreEqual compares the phase-1 lattice fields of two summaries.
func coreEqual(a, b *funcSummary) bool {
	if !effectsEqual(a.effects, b.effects) || a.saturated != b.saturated ||
		a.lockHelper != b.lockHelper || a.bounded != b.bounded ||
		a.returnsFreshCtx != b.returnsFreshCtx || a.consultsCancel != b.consultsCancel ||
		a.spins != b.spins || len(a.batchParams) != len(b.batchParams) {
		return false
	}
	for slot, u := range a.batchParams {
		if !u.equal(b.batchParams[slot]) {
			return false
		}
	}
	return true
}

// taintEqual compares the phase-2 lattice fields of two summaries.
func taintEqual(a, b *funcSummary) bool {
	if a.retTaint != b.retTaint || a.paramsToRet != b.paramsToRet || len(a.paramSinks) != len(b.paramSinks) {
		return false
	}
	for slot, desc := range a.paramSinks {
		if b.paramSinks[slot] != desc {
			return false
		}
	}
	return true
}

// A sumCtx resolves callee summaries during summarisation: members of the
// SCC currently iterating read each other's in-flight values through the
// overlay; everything else reads the settled summary on the node.
type sumCtx struct {
	pr      *Program
	overlay map[*progFunc]*funcSummary
}

func (c *sumCtx) forNode(pf *progFunc) *funcSummary {
	if s, ok := c.overlay[pf]; ok {
		return s
	}
	return pf.sum
}

// forFunc resolves a types.Func (any universe) to its current summary, or
// nil for functions outside the module.
func (c *sumCtx) forFunc(fn *types.Func) *funcSummary {
	pf := c.pr.node(fn)
	if pf == nil {
		return nil
	}
	return c.forNode(pf)
}

// callSummary resolves a call expression's callee summary, or nil.
func (c *sumCtx) callSummary(p *Pass, call *ast.CallExpr) *funcSummary {
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok {
		return nil
	}
	return c.forFunc(fn)
}

// computeSummaries drives both phases over the condensation.
func (pr *Program) computeSummaries() {
	ctx := context.Background()
	for _, rank := range pr.ranks {
		sums, _ := sweep.Run(ctx, rank, func(_ context.Context, _ int, scc int) ([]*funcSummary, error) {
			return pr.coreSCC(pr.sccs[scc]), nil
		}, sweep.Options{Workers: pr.workers, Name: "lint summaries"})
		for si, scc := range rank {
			for mi, pf := range pr.sccs[scc] {
				pf.sum = sums[si][mi]
			}
		}
	}
	// Taint rounds with dirty-SCC scheduling. Round 0 scans every SCC and
	// records, per SCC, the field IDs its members consult; later rounds
	// re-scan only SCCs whose inputs moved — a cross-SCC callee whose taint
	// summary changed, or a consulted field whose global mask grew. The
	// whole computation is monotone, so deferring a propagation to a later
	// round cannot change the least fixpoint it converges to, and the dirty
	// sets are derived from the (deterministic) scan results alone, so the
	// schedule is identical at any worker count.
	sccReads := make([][]string, len(pr.sccs))
	changedFuncs := map[*progFunc]bool{}
	changedFields := map[string]bool{}
	dirty := func(scc int) bool {
		for _, pf := range pr.sccs[scc] {
			for _, e := range pf.out {
				if e.to.scc != pf.scc && changedFuncs[e.to] {
					return true
				}
			}
		}
		for _, id := range sccReads[scc] {
			if changedFields[id] {
				return true
			}
		}
		return false
	}
	for round := 0; round < maxTaintRounds; round++ {
		nextFuncs := map[*progFunc]bool{}
		nextFields := map[string]bool{}
		scanned := false
		for _, rank := range pr.ranks {
			todo := rank
			if round > 0 {
				todo = nil
				for _, scc := range rank {
					if dirty(scc) {
						todo = append(todo, scc)
					}
				}
			}
			if len(todo) == 0 {
				continue
			}
			scanned = true
			outs, _ := sweep.Run(ctx, todo, func(_ context.Context, _ int, scc int) (*taintSCCOut, error) {
				return pr.taintSCC(pr.sccs[scc]), nil
			}, sweep.Options{Workers: pr.workers, Name: "lint taint"})
			// Sequential merge in submission order: deterministic at any
			// worker count.
			for si, scc := range todo {
				o := outs[si]
				sccReads[scc] = o.reads
				for mi, pf := range pr.sccs[scc] {
					ns := o.sums[mi]
					if !taintEqual(pf.sum, ns) {
						nextFuncs[pf] = true
						pf.sum.retTaint = ns.retTaint
						pf.sum.paramsToRet = ns.paramsToRet
						pf.sum.paramSinks = ns.paramSinks
					}
				}
				for _, fw := range o.fields {
					if pr.fieldTaint[fw.id]&fw.mask != fw.mask {
						pr.fieldTaint[fw.id] |= fw.mask
						nextFields[fw.id] = true
					}
				}
			}
		}
		if !scanned || (len(nextFuncs) == 0 && len(nextFields) == 0) {
			break
		}
		changedFuncs, changedFields = nextFuncs, nextFields
	}
}

// coreSCC computes the phase-1 summaries for one SCC, iterating cyclic
// components to a fixpoint from a pessimistic bottom. Returns summaries in
// member order.
func (pr *Program) coreSCC(comp []*progFunc) []*funcSummary {
	c := &sumCtx{pr: pr, overlay: map[*progFunc]*funcSummary{}}
	if !cyclic(comp) {
		return []*funcSummary{summarizeCore(c, comp[0])}
	}
	for _, pf := range comp {
		c.overlay[pf] = &funcSummary{batchParams: map[int]batchUse{}}
	}
	for iter := 0; iter < sccIterCap(len(comp)); iter++ {
		changed := false
		for _, pf := range comp {
			ns := summarizeCore(c, pf)
			if !coreEqual(c.overlay[pf], ns) {
				changed = true
			}
			c.overlay[pf] = ns
		}
		if !changed {
			break
		}
	}
	out := make([]*funcSummary, len(comp))
	for i, pf := range comp {
		out[i] = c.overlay[pf]
	}
	return out
}

// summarizeCore computes every phase-1 lattice for one function.
func summarizeCore(c *sumCtx, pf *progFunc) *funcSummary {
	s := &funcSummary{batchParams: map[int]batchUse{}}
	summarizeLocks(c, pf, s)
	s.bounded = returnsBounded(c, pf.pass, pf.decl)
	s.returnsFreshCtx = returnsFreshCtx(c, pf.pass, pf.decl)
	s.consultsCancel = consultsCancel(c, pf.pass, pf.decl)
	s.spins = bodySpins(c, pf.pass, pf.decl.Body)
	summarizeBatch(c, pf, s)
	return s
}

// summarizeLocks derives the lock effects and the helper flag from the
// function's top-level statements, folding calls to (transitively
// recognised) lock helpers as if their lock operations were inlined — that
// is what promotes a helper-of-a-helper to a helper itself.
func summarizeLocks(c *sumCtx, pf *progFunc, s *funcSummary) {
	p, fd := pf.pass, pf.decl
	slots := slotIndex(p, fd)
	held := map[lockKey]bool{}
	var order []lockKey // deterministic effect order: first-op position
	pureLockOps := len(fd.Body.List) > 0
	acquire := func(key lockKey) {
		if !held[key] {
			order = append(order, key)
		}
		held[key] = true
	}
	release := func(key lockKey) {
		if held[key] {
			delete(held, key)
			return
		}
		// Unlock of a lock this function never took: a release helper; the
		// caller must hold it.
		if eff, ok := effectFor(p, slots, key, false); ok {
			s.addEffect(eff)
		}
	}
	deferredReleases := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, acq, ok := lockOp(p, call); ok && !acq {
				delete(held, key)
				return true
			}
			if cs := c.callSummary(p, call); cs != nil && cs.lockHelper {
				for _, eff := range callSiteKeys(p, call, cs) {
					if !eff.acquire {
						delete(held, eff.key)
					}
				}
			}
			return true
		})
	}
	for _, st := range fd.Body.List {
		// A deferred unlock (direct, helper, or inside a deferred closure)
		// covers the whole function: balanced from the caller's view.
		if ds, isDefer := st.(*ast.DeferStmt); isDefer {
			pureLockOps = false
			deferredReleases(ds.Call)
			continue
		}
		es, isExpr := st.(*ast.ExprStmt)
		if !isExpr {
			pureLockOps = false
			continue
		}
		call, isCall := es.X.(*ast.CallExpr)
		if !isCall {
			pureLockOps = false
			continue
		}
		if key, acq, ok := lockOp(p, call); ok {
			if acq {
				acquire(key)
			} else {
				release(key)
			}
			continue
		}
		if cs := c.callSummary(p, call); cs != nil && cs.lockHelper {
			for _, eff := range callSiteKeys(p, call, cs) {
				if eff.acquire {
					acquire(eff.key)
				} else {
					release(eff.key)
				}
			}
			continue
		}
		pureLockOps = false
	}
	for _, key := range order {
		if !held[key] {
			continue
		}
		if eff, ok := effectFor(p, slots, key, true); ok {
			s.addEffect(eff)
		}
	}
	s.lockHelper = pureLockOps && len(s.effects) > 0 && !s.saturated
}

// returnsBounded reports whether fd has exactly one result and every return
// expression in its body (outside nested function literals) is
// range-reduced: carries a masking operation (&, %, >>) or is a call to a
// module function that is itself bounded — the transitive extension of the
// old one-level rule.
func returnsBounded(c *sumCtx, p *Pass, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || res.NumFields() != 1 || len(res.List[0].Names) > 1 {
		return false
	}
	found := false
	bounded := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		found = true
		if len(ret.Results) != 1 {
			bounded = false
			return true
		}
		if !hasMaskingOp(ret.Results[0]) && !boundedCallExpr(c, p, ret.Results[0]) {
			bounded = false
		}
		return true
	})
	return found && bounded
}

// boundedCallExpr reports whether e is a call to a module function whose
// summary is bounded.
func boundedCallExpr(c *sumCtx, p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sum := c.callSummary(p, call)
	return sum != nil && sum.bounded
}

// returnsFreshCtx reports whether some return path hands back a context
// rooted in context.Background()/TODO() — directly, through context.With*
// wrapping, or through a module callee that itself returns a fresh context.
func returnsFreshCtx(c *sumCtx, p *Pass, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil {
		return false
	}
	ctxSlots := map[int]bool{}
	i := 0
	for _, field := range res.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			if tv, ok := p.Info.Types[field.Type]; ok && isContextType(tv.Type) {
				ctxSlots[i] = true
			}
			i++
		}
	}
	if len(ctxSlots) == 0 {
		return false
	}
	fresh := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, r := range ret.Results {
			if ctxSlots[i] && freshCtxExpr(c, p, r) {
				fresh = true
			}
		}
		return true
	})
	return fresh
}

// freshCtxExpr reports whether e evaluates to a fresh-rooted context.
func freshCtxExpr(c *sumCtx, p *Pass, e ast.Expr) bool {
	if _, ok := freshContextCall(p.Info, e); ok {
		return true
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok {
		return false
	}
	// context.WithCancel(parent), WithTimeout, WithValue…: fresh iff the
	// parent is fresh.
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" && len(call.Args) > 0 {
		return freshCtxExpr(c, p, call.Args[0])
	}
	sum := c.forFunc(fn)
	return sum != nil && sum.returnsFreshCtx
}

// consultsCancel reports whether the function observes any cancellation or
// done edge: a context-typed value, a channel receive, a select, a range
// over a channel, or a call into a module function that does.
func consultsCancel(c *sumCtx, p *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj, ok := p.Info.Uses[x].(*types.Var); ok && isContextType(obj.Type()) {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok {
				if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
					found = true
				}
			}
		case *ast.CallExpr:
			if sum := c.callSummary(p, x); sum != nil && sum.consultsCancel {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodySpins reports whether the body contains — at any static call depth —
// an unconditional for-loop with no exit and no done edge. Function
// literals are excluded: they run in their own goroutine or callback
// context and are judged at their own spawn sites.
func bodySpins(c *sumCtx, p *Pass, body ast.Node) bool {
	spins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if spins {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if x.Cond == nil && !loopEscapes(c, p, x.Body) {
				spins = true
				return false
			}
		case *ast.CallExpr:
			if sum := c.callSummary(p, x); sum != nil && sum.spins {
				spins = true
				return false
			}
		}
		return true
	})
	return spins
}

// loopEscapes reports whether an unconditional loop body has an exit edge
// (return, break, goto, panic) or a done edge (context use, channel
// receive, select, range over a channel, or a call into a module function
// that consults cancellation).
func loopEscapes(c *sumCtx, p *Pass, body *ast.BlockStmt) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			esc = true
		case *ast.BranchStmt:
			if x.Tok == token.BREAK || x.Tok == token.GOTO {
				esc = true
			}
		case *ast.SelectStmt:
			esc = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				esc = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok {
				if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
					esc = true
				}
			}
		case *ast.Ident:
			if obj, ok := p.Info.Uses[x].(*types.Var); ok && isContextType(obj.Type()) {
				esc = true
			}
		case *ast.ExprStmt:
			if isPanicCall(p.Info, x.X) {
				esc = true
			}
		case *ast.CallExpr:
			if sum := c.callSummary(p, x); sum != nil && sum.consultsCancel {
				esc = true
			}
		}
		return !esc
	})
	return esc
}

// summarizeBatch computes a batchUse for every trace.Batch-typed parameter.
func summarizeBatch(c *sumCtx, pf *progFunc, s *funcSummary) {
	p, fd := pf.pass, pf.decl
	if fd.Type.Params == nil {
		return
	}
	slot := 1
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			if tv, ok := p.Info.Types[field.Type]; ok && namedFrom(tv.Type, "mosaic/internal/trace", "Batch") {
				// An unnamed batch parameter is by definition unused.
				s.batchParams[slot] = batchUse{}
			}
			slot++
			continue
		}
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj != nil && name.Name != "_" && namedFrom(obj.Type(), "mosaic/internal/trace", "Batch") {
				s.batchParams[slot] = batchParamUse(c, p, fd.Body, obj)
			} else if obj != nil && name.Name == "_" && namedFrom(obj.Type(), "mosaic/internal/trace", "Batch") {
				s.batchParams[slot] = batchUse{}
			}
			slot++
		}
	}
}

// rootObj resolves an expression to the object of its root identifier, or
// nil.
func rootObj(p *Pass, e ast.Expr) types.Object {
	id, _ := selChain(e)
	if id == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// batchRoot resolves an expression to its root object, seeing through
// re-slicing: b[:n] still denotes batch b.
func batchRoot(p *Pass, e ast.Expr) types.Object {
	for {
		if sl, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
			e = sl.X
			continue
		}
		return rootObj(p, ast.Unparen(e))
	}
}

// batchParamUse walks a body classifying every use of one batch parameter.
func batchParamUse(c *sumCtx, p *Pass, body *ast.BlockStmt, obj types.Object) batchUse {
	u := batchUse{}
	perRef := map[string]bool{}
	// perRefCalls collects module callees invoked once per element.
	perRefCalls := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := callee(p.Info, call).(*types.Func); ok {
				if node := c.pr.node(fn); node != nil {
					perRef[node.id] = true
				}
			}
			return true
		})
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.Ident:
			if p.Info.Uses[x] == obj {
				u.used = true
			}
		case *ast.RangeStmt:
			if batchRoot(p, x.X) == obj {
				u.used = true
				u.ranged = true
				perRefCalls(x.Body)
			}
		case *ast.IndexExpr:
			if batchRoot(p, x.X) == obj {
				u.used = true
				// An indexed access inside a loop is the for-i iteration
				// idiom; credit the innermost enclosing loop's calls as
				// per-ref.
				for i := len(stack) - 2; i >= 0; i-- {
					if l, ok := stack[i].(*ast.ForStmt); ok {
						u.ranged = true
						perRefCalls(l.Body)
						break
					}
					if l, ok := stack[i].(*ast.RangeStmt); ok {
						u.ranged = true
						perRefCalls(l.Body)
						break
					}
				}
			}
		case *ast.CallExpr:
			u.merge(c, p, x, obj)
		}
		return true
	})
	ids := make([]string, 0, len(perRef))
	for id := range perRef {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	u.perRef = ids
	return u
}

// merge folds one call expression's treatment of the batch parameter into
// the use summary.
func (u *batchUse) merge(c *sumCtx, p *Pass, call *ast.CallExpr, obj types.Object) {
	// b.Replay(sink) / b.Method(...): method called on the batch itself.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if batchRoot(p, sel.X) == obj {
			u.used = true
			if sel.Sel.Name == "Replay" {
				u.forwarded = true
			}
		}
	}
	fn, _ := callee(p.Info, call).(*types.Func)
	for i, arg := range call.Args {
		if batchRoot(p, arg) != obj {
			continue
		}
		u.used = true
		if fn == nil {
			continue
		}
		// Whole-batch hand-off to any ProcessBatch/WriteBatch — concrete,
		// interface, or out-of-module — counts as forwarding.
		if fn.Name() == "ProcessBatch" || fn.Name() == "WriteBatch" {
			u.forwarded = true
			continue
		}
		if sum := c.forFunc(fn); sum != nil {
			if cu, ok := sum.batchParams[i+1]; ok {
				u.ranged = u.ranged || cu.ranged
				u.forwarded = u.forwarded || cu.forwarded
				u.perRef = mergeSorted(u.perRef, cu.perRef)
			}
		}
	}
}

// mergeSorted unions two sorted string slices.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		seen[s] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
