package lint

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies the suggested fixes attached to diags to the files on
// disk and returns the changed file names (sorted) and the number of fixes
// applied. A fix whose edits overlap an already-accepted fix in the same
// run is skipped rather than corrupting the file; re-running mosaiclint
// -fix converges. Two fixes contributing a byte-identical edit (two findings
// in one file each inserting the same import line) share it instead of
// duplicating it. Byte offsets refer to the file contents the diagnostics
// were produced from, so all fixes for one file are spliced against one
// read of it.
func ApplyFixes(diags []Diagnostic) (changed []string, applied int, err error) {
	type fileState struct {
		content []byte
		edits   []TextEdit
	}
	files := map[string]*fileState{}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		// Accept or reject the fix atomically: every edit must land in a
		// readable file and must not overlap edits already accepted.
		// An edit identical to an accepted one is satisfied by it.
		ok := true
		for _, e := range d.Fix.Edits {
			st := files[e.Filename]
			if st == nil {
				content, rerr := os.ReadFile(e.Filename)
				if rerr != nil {
					return nil, 0, fmt.Errorf("lint: applying fix: %v", rerr)
				}
				st = &fileState{content: content}
				files[e.Filename] = st
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(st.content) {
				return nil, 0, fmt.Errorf("lint: fix edit out of range for %s: [%d,%d) of %d bytes",
					e.Filename, e.Start, e.End, len(st.content))
			}
			for _, prev := range st.edits {
				if prev == e {
					continue
				}
				if e.Start < prev.End && prev.Start < e.End {
					ok = false
				}
				// Two distinct insertions at the same offset would splice in
				// an unspecified order; keep the first.
				if e.Start == e.End && prev.Start == prev.End && e.Start == prev.Start {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		for _, e := range d.Fix.Edits {
			st := files[e.Filename]
			dup := false
			for _, prev := range st.edits {
				if prev == e {
					dup = true
					break
				}
			}
			if !dup {
				st.edits = append(st.edits, e)
			}
		}
		applied++
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := files[name]
		if len(st.edits) == 0 {
			continue
		}
		// Splice highest-offset first so earlier offsets stay valid.
		sort.Slice(st.edits, func(i, j int) bool { return st.edits[i].Start > st.edits[j].Start })
		out := st.content
		for _, e := range st.edits {
			out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
		}
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return nil, 0, fmt.Errorf("lint: applying fix: %v", err)
		}
		changed = append(changed, name)
	}
	return changed, applied, nil
}
