package lint

import "testing"

func TestObsNames(t *testing.T) {
	checkFixture(t, ObsNames, "obsnames", "mosaic/internal/fixture")
}
