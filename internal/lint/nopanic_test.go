package lint

import (
	"strings"
	"testing"
)

func TestNoPanic(t *testing.T) {
	checkFixture(t, NoPanic, "nopanic", "mosaic/internal/fixture")
}

// TestNoPanicScopedToInternal: main packages are outside the library
// discipline.
func TestNoPanicScopedToInternal(t *testing.T) {
	checkFixtureClean(t, NoPanic, "nopanic", "mosaic/cmd/fixture")
}

// TestMalformedDirective: an ignore directive without a reason is reported
// and does not suppress the finding it covers.
func TestMalformedDirective(t *testing.T) {
	checkFixture(t, NoPanic, "directive", "mosaic/internal/fixture")
	pass := loadFixture(t, "directive", "mosaic/internal/fixture")
	if len(pass.badDirectives) != 1 {
		t.Fatalf("got %d bad-directive findings, want 1", len(pass.badDirectives))
	}
	if msg := pass.badDirectives[0].Message; !strings.Contains(msg, "needs a reason") {
		t.Errorf("bad-directive message %q", msg)
	}
}
