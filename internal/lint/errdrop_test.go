package lint

import "testing"

func TestErrDrop(t *testing.T) {
	checkFixture(t, ErrDrop, "errdrop", "mosaic/internal/fixture")
}
