package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mosaic/internal/lint/gate"
)

// gateFixture copies testdata/<gateName>/<variant>/hot.go into a throwaway
// module and returns its directory — the hermetic stand-in for the hot-path
// packages shared by the compiler-gate tests.
func gateFixture(t *testing.T, gateName, variant string) string {
	t.Helper()
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", gateName, variant, "hot.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hot.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module hot\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestBCEGateCatchesBoundsCheck pins the gate's reason for existing:
// against a baseline captured from the slice-hoisted scan loop,
// reintroducing direct base+s indexing must fail with a surviving
// IsInBounds site inside the scan function.
func TestBCEGateCatchesBoundsCheck(t *testing.T) {
	hoistedDir := gateFixture(t, "bcegate", "hoisted")
	checkedDir := gateFixture(t, "bcegate", "checked")
	hoisted, err := BCESites(hoistedDir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := BCESites(checkedDir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}

	// The healthy variant's scan loop is bounds-check free: only the two
	// hoisted IsSliceInBounds survive.
	if s, ok := hoisted["hot.go: (*table).get: Found IsInBounds"]; ok {
		t.Errorf("hoisted fixture still has %d IsInBounds in the scan; the idiom broke", s.Count)
	}
	if reg, removed := gate.Diff(hoisted, hoisted); len(reg) != 0 || len(removed) != 0 {
		t.Fatalf("self-diff not clean: %v / %v", reg, removed)
	}

	reg, _ := DiffBCE(hoisted, checked)
	if len(reg) == 0 {
		t.Fatal("reintroducing base+s indexing produced no bounds-check regressions; the gate is blind")
	}
	var sawScan bool
	for _, d := range reg {
		if strings.Contains(d.Message, "(*table).get: Found IsInBounds") {
			sawScan = true
		}
		if d.Analyzer != "bcegate" || d.ID != "ML009" {
			t.Errorf("regression carries wrong identity: %q/%q", d.Analyzer, d.ID)
		}
		if d.Pos.Filename == "" || d.Pos.Line == 0 {
			t.Errorf("regression missing a position: %+v", d.Pos)
		}
	}
	if !sawScan {
		t.Errorf("no scan-loop IsInBounds regression among: %v", reg)
	}

	// End-to-end through the baseline file and RunBCEGate.
	baseline := filepath.Join(t.TempDir(), "bce.baseline")
	if err := os.WriteFile(baseline, gate.Format(nil, hoisted), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2, _, err := RunBCEGate(checkedDir, baseline, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(reg2) != len(reg) {
		t.Fatalf("RunBCEGate found %d regressions, DiffBCE found %d", len(reg2), len(reg))
	}
}

// TestBCEFunctionAttribution pins the site-key format: positions are
// attributed to the enclosing function, deduplicated across generic shape
// re-instantiations, and keyed "file: func: message".
func TestBCEFunctionAttribution(t *testing.T) {
	dir := t.TempDir()
	src := `package hot

func alpha(xs []int, i int) int { return xs[i] }

func beta(xs []int, i int) int {
	return xs[i] + xs[i+1]
}
`
	if err := os.WriteFile(filepath.Join(dir, "hot.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Duplicate positions (shape instantiations) must collapse to one count.
	out := []byte(`# hot
./hot.go:3:42: Found IsInBounds
./hot.go:3:42: Found IsInBounds
./hot.go:6:9: Found IsInBounds
./hot.go:6:17: Found IsInBounds
`)
	sites, err := normalizeBCE(dir, out)
	if err != nil {
		t.Fatal(err)
	}
	if s := sites["./hot.go: alpha: Found IsInBounds"]; s.Count != 1 || s.Line != 3 {
		t.Errorf("alpha site = %+v, want count 1 line 3 (shape duplicates collapsed)", s)
	}
	if s := sites["./hot.go: beta: Found IsInBounds"]; s.Count != 2 {
		t.Errorf("beta site = %+v, want count 2 (distinct positions)", s)
	}
}

// TestBCETreeClean is the in-repo gate itself: the current tree must match
// the checked-in baseline.
func TestBCETreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles four packages; skipped in -short")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	reg, _, err := RunBCEGate(root, filepath.Join(root, BCEBaselineFile), HotPathPackages)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range reg {
		t.Errorf("hot-path bounds-check regression: %s", d)
	}
}

// TestBCEProbeLoopsFree is the acceptance criterion behind the baseline:
// no bounds check survives inside the iceberg bucket-scan loops (the range
// loops over the re-sliced used arrays in Get/PutSlot/Delete/Slot) or
// anywhere in the TLB probe functions (set.lookup/touch). The baseline
// records checks *outside* those loops — bucket index arithmetic, the
// hoisted re-slices — but the per-slot scan itself must stay branch-lean.
func TestBCEProbeLoopsFree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles two packages; skipped in -short")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}

	// Line ranges of every scan-loop body in iceberg.go: range statements
	// over a hoisted []bool named used/fused.
	scanLoops := make(map[[2]int]bool)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join(root, "internal/iceberg/iceberg.go"), nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if id, ok := rs.X.(*ast.Ident); ok && (id.Name == "used" || id.Name == "fused") {
			scanLoops[[2]int{fset.Position(rs.Body.Pos()).Line, fset.Position(rs.Body.End()).Line}] = true
		}
		return true
	})
	if len(scanLoops) < 6 {
		t.Fatalf("found only %d scan loops in iceberg.go; the hoisted-scan idiom moved", len(scanLoops))
	}

	// Raw surviving-check positions, bypassing function aggregation.
	raw := gate.Config{
		Name:       "bce-raw",
		BuildFlags: []string{"-gcflags=-d=ssa/check_bce"},
		Patterns:   []string{"./internal/iceberg", "./internal/tlb"},
		Normalize: func(_ string, output []byte) (gate.Sites, error) {
			sites := make(gate.Sites)
			for _, line := range strings.Split(string(output), "\n") {
				if m := bceLineRE.FindStringSubmatch(line); m != nil {
					sites[m[1]+":"+m[2]] = gate.Site{Count: 1}
				}
			}
			return sites, nil
		},
	}
	positions, err := raw.Compile(root)
	if err != nil {
		t.Fatal(err)
	}

	probeFuncs, err := indexFile(token.NewFileSet(), filepath.Join(root, "internal/tlb/set.go"))
	if err != nil {
		t.Fatal(err)
	}
	for pos := range positions {
		file, lineStr, _ := strings.Cut(pos, ":")
		line, _ := strconv.Atoi(lineStr)
		if strings.HasSuffix(file, "internal/iceberg/iceberg.go") {
			for span := range scanLoops {
				if span[0] < line && line < span[1] {
					t.Errorf("bounds check inside an iceberg bucket-scan loop at %s (loop body lines %d-%d)", pos, span[0], span[1])
				}
			}
		}
		if strings.HasSuffix(file, "internal/tlb/set.go") {
			if fn := probeFuncs.funcAt(line); fn == "(*set).lookup" || fn == "(*set).touch" {
				t.Errorf("bounds check inside TLB probe function %s at %s", fn, pos)
			}
		}
	}
}
