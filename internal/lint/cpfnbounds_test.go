package lint

import "testing"

func TestCPFNBounds(t *testing.T) {
	checkFixture(t, CPFNBounds, "cpfnbounds", "mosaic/internal/fixture")
}

// TestCPFNBoundsExemptsAlloc: the allocator owns frame-number arithmetic.
func TestCPFNBoundsExemptsAlloc(t *testing.T) {
	checkFixtureClean(t, CPFNBounds, "cpfnbounds", "mosaic/internal/alloc")
}
