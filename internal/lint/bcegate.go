package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"mosaic/internal/lint/gate"
)

// BCEGate is the bounds-check budget gate: it drives the compiler's
// bounds-check-elimination debug output (`go build -gcflags=-d=ssa/check_bce`)
// over the hot-path packages and diffs the surviving checks against the
// checked-in baseline (internal/lint/bce.baseline). A new surviving check —
// or one more check inside a function that already had some — fails the run:
// the prove pass stopped eliminating a bound on a loop the simulator executes
// per memory reference, which is exactly how the iceberg bucket-scan and TLB
// probe loops would silently lose their branch-free shape.
//
// Sites are keyed as "file: func: message" — the enclosing function is
// recovered by parsing the reported file, so vertical refactors do not churn
// the baseline while a check migrating into a different function does.
// Generic functions are compiled once per shape, each re-reporting the same
// source position; positions are deduplicated before counting, so the count
// is "distinct source positions with a surviving check", not "number of
// instantiations". Checks that disappear never fail the gate — run
// mosaiclint -update-bce to bank the improvement.
//
// BCEGate is tree-level (it shells out to the compiler), so its Run is nil
// and the driver invokes RunBCEGate directly.
var BCEGate = &Analyzer{
	Name: "bcegate",
	ID:   "ML009",
	Doc:  "surviving bounds checks in the hot-path packages must not regress internal/lint/bce.baseline",
}

// BCEBaselineFile is the checked-in baseline, relative to the module root.
const BCEBaselineFile = "internal/lint/bce.baseline"

// bceFuncIndex maps lines of one file to the enclosing top-level function,
// so compiler positions can be attributed function-by-function.
type bceFuncIndex struct {
	spans []bceFuncSpan
}

type bceFuncSpan struct {
	name       string
	start, end int
}

// funcDisplayName renders a FuncDecl the way baseline keys spell it:
// "name" for package functions, "(recv).name" for methods, with pointer
// receivers as "(*recv).name" and type parameters stripped.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + recvTypeName(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return "*" + recvTypeName(e.X)
	case *ast.IndexExpr: // one type parameter: set[P]
		return recvTypeName(e.X)
	case *ast.IndexListExpr: // several: Table[K, V]
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	}
	return "?"
}

// indexFile parses path and records the line span of every top-level
// function. Function literals attribute to the declaration enclosing them.
func indexFile(fset *token.FileSet, path string) (*bceFuncIndex, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	idx := &bceFuncIndex{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		idx.spans = append(idx.spans, bceFuncSpan{
			name:  funcDisplayName(fd),
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
		})
	}
	return idx, nil
}

// funcAt names the function containing line, or "(file scope)" when the
// line falls outside every declaration (initializers).
func (idx *bceFuncIndex) funcAt(line int) string {
	for _, s := range idx.spans {
		if s.start <= line && line <= s.end {
			return s.name
		}
	}
	return "(file scope)"
}

// bceLineRE matches one check_bce diagnostic: file:line:col: Found <check>.
var bceLineRE = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (Found Is(?:Slice)?InBounds)$`)

// normalizeBCE turns check_bce output into sites keyed by
// "file: func: message". dir is the module root the build ran from; reported
// files are resolved against it to recover enclosing functions.
func normalizeBCE(dir string, output []byte) (gate.Sites, error) {
	fset := token.NewFileSet()
	indexes := make(map[string]*bceFuncIndex)
	seen := make(map[string]bool) // distinct file:line:col, across shape re-instantiations
	sites := make(gate.Sites)
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := bceLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		pos := m[1] + ":" + m[2] + ":" + m[3]
		if seen[pos] {
			continue
		}
		seen[pos] = true
		idx, ok := indexes[m[1]]
		if !ok {
			var err error
			if idx, err = indexFile(fset, filepath.Join(dir, m[1])); err != nil {
				return nil, fmt.Errorf("lint: bcegate: attributing %s: %v", pos, err)
			}
			indexes[m[1]] = idx
		}
		line, _ := strconv.Atoi(m[2])
		key := m[1] + ": " + idx.funcAt(line) + ": " + m[4]
		s := sites[key]
		s.Count++
		if s.Line == 0 || line < s.Line {
			s.Line = line
		}
		sites[key] = s
	}
	return sites, nil
}

// bceGate builds the gate.Config for the bounds-check budget over patterns.
func bceGate(patterns []string) gate.Config {
	return gate.Config{
		Name:       BCEGate.Name,
		BuildFlags: []string{"-gcflags=-d=ssa/check_bce"},
		Patterns:   patterns,
		Normalize:  normalizeBCE,
		Header: []string{
			"mosaiclint bcegate bounds-check baseline.",
			"One line per function still carrying bounds checks in the hot-path packages:",
			"count<TAB>file: func: message, count = distinct source positions.",
			"Regenerate after a reviewed loop change: go run ./cmd/mosaiclint -update-bce",
		},
		UpdateFlag: "-update-bce",
	}
}

// BCESites compiles patterns in dir with check_bce enabled and returns the
// normalized surviving-bounds-check sites.
func BCESites(dir string, patterns []string) (gate.Sites, error) {
	return bceGate(patterns).Compile(dir)
}

// WriteBCEBaseline regenerates the baseline file from the current tree.
func WriteBCEBaseline(dir, path string, patterns []string) error {
	return bceGate(patterns).Update(dir, path)
}

// bceDiag renders one bounds-check regression as a bcegate diagnostic.
func bceDiag(r gate.Regression) Diagnostic {
	file, rest, _ := strings.Cut(r.Key, ": ")
	detail := "not in baseline"
	if r.Known {
		detail = fmt.Sprintf("%d position(s), baseline has %d", r.Count, r.BaseCount)
	}
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: r.Line},
		Analyzer: BCEGate.Name,
		ID:       BCEGate.ID,
		Message: fmt.Sprintf("bounds check survives on a hot path: %s (%s); hoist the check out of the loop (re-slice to a common length) or update %s",
			rest, detail, BCEBaselineFile),
	}
}

// DiffBCE compares current sites against the baseline, one diagnostic per
// regression plus the bankable removals.
func DiffBCE(baseline, current gate.Sites) (regressions []Diagnostic, removed []string) {
	reg, removed := gate.Diff(baseline, current)
	for _, r := range reg {
		regressions = append(regressions, bceDiag(r))
	}
	return regressions, removed
}

// RunBCEGate runs the full gate from the module root dir against the
// baseline at path.
func RunBCEGate(dir, path string, patterns []string) (regressions []Diagnostic, removed []string, err error) {
	res, err := bceGate(patterns).Run(dir, path)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range res.Regressions {
		regressions = append(regressions, bceDiag(r))
	}
	return regressions, res.Removed, nil
}
