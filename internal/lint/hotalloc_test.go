package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/lint/gate"
)

// escapeFixture copies testdata/hotalloc/<variant> into a throwaway module
// and returns its escape sites — a hermetic stand-in for the hot-path
// packages, so the gate's behaviour is testable without mutating the tree.
func escapeFixture(t *testing.T, variant string) (dir string, sites gate.Sites) {
	t.Helper()
	dir = t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "hotalloc", variant, "hot.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hot.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module hot\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sites, err = EscapeSites(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	return dir, sites
}

// TestHotAllocGateCatchesClosure pins the gate's reason for existing:
// against a baseline captured from the preallocated-sink implementation of
// RunLimited, re-introducing the per-call closure (the code PR 3 removed)
// must fail with new heap-escape sites.
func TestHotAllocGateCatchesClosure(t *testing.T) {
	_, sinkSites := escapeFixture(t, "sink")
	closureDir, closureSites := escapeFixture(t, "closure")

	// Self-diff is clean: the sink variant passes its own baseline.
	if reg, removed := DiffEscapes(sinkSites, sinkSites); len(reg) != 0 || len(removed) != 0 {
		t.Fatalf("self-diff not clean: %v / %v", reg, removed)
	}

	reg, _ := DiffEscapes(sinkSites, closureSites)
	if len(reg) == 0 {
		t.Fatal("re-introducing the closure produced no escape regressions; the gate is blind")
	}
	var sawClosure bool
	for _, d := range reg {
		if strings.Contains(d.Message, "func literal escapes to heap") {
			sawClosure = true
		}
		if d.Analyzer != "hotalloc" || d.ID != "ML008" {
			t.Errorf("regression carries wrong identity: %q/%q", d.Analyzer, d.ID)
		}
		if d.Pos.Filename == "" || d.Pos.Line == 0 {
			t.Errorf("regression missing a position: %+v", d.Pos)
		}
	}
	if !sawClosure {
		t.Errorf("no 'func literal escapes to heap' regression among: %v", reg)
	}

	// End-to-end through the baseline file and RunHotAlloc.
	baseline := filepath.Join(t.TempDir(), "escapes.baseline")
	if err := os.WriteFile(baseline, FormatEscapeBaseline(sinkSites), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2, _, err := RunHotAlloc(closureDir, baseline, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(reg2) != len(reg) {
		t.Fatalf("RunHotAlloc found %d regressions, DiffEscapes found %d", len(reg2), len(reg))
	}
}

// TestHotAllocImprovementsNeverFail checks the asymmetry: sites that
// disappear are reported as removable, not as findings.
func TestHotAllocImprovementsNeverFail(t *testing.T) {
	_, sinkSites := escapeFixture(t, "sink")
	_, closureSites := escapeFixture(t, "closure")
	// Closure sites as the (bloated) baseline; the sink tree improves on it.
	reg, removed := DiffEscapes(closureSites, sinkSites)
	for _, d := range reg {
		// The sink variant's own &ls/ls sites may legitimately be absent
		// from the closure baseline; only closure sites count here.
		if strings.Contains(d.Message, "func literal") {
			t.Errorf("improvement reported as regression: %s", d)
		}
	}
	if len(removed) == 0 {
		t.Error("expected removed sites when the baseline is bloated")
	}
}

// TestEscapeBaselineRoundTrip pins the baseline file format.
func TestEscapeBaselineRoundTrip(t *testing.T) {
	in := gate.Sites{
		"internal/tlb/set.go: g.Entries escapes to heap":       {Count: 2, Line: 175},
		"internal/cache/cache.go: &Level{...} escapes to heap": {Count: 1, Line: 40},
	}
	out, err := ParseEscapeBaseline(FormatEscapeBaseline(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost sites: %v", out)
	}
	for k, v := range in {
		if out[k].Count != v.Count {
			t.Errorf("site %q: count %d, want %d", k, out[k].Count, v.Count)
		}
	}
	if _, err := ParseEscapeBaseline([]byte("not-a-count\tx\n")); err == nil {
		t.Error("malformed baseline accepted")
	}
}

// TestHotAllocTreeClean is the in-repo gate itself: the current tree must
// match the checked-in baseline (check.sh enforces the same via the
// mosaiclint run).
func TestHotAllocTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles four packages; skipped in -short")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	reg, _, err := RunHotAlloc(root, filepath.Join(root, EscapeBaselineFile), HotPathPackages)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range reg {
		t.Errorf("hot-path escape regression: %s", d)
	}
}
