package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReviewProbeTwoDetrandFixes(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import (
	"fmt"
	"math/rand"
)

func A(seed int64) { fmt.Println(rand.New(rand.NewSource(seed)).Intn(4)) }
func B(seed int64) { fmt.Println(rand.New(rand.NewSource(seed)).Intn(8)) }
`
	target := filepath.Join(dir, "two.go")
	if err := os.WriteFile(target, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pass := loadFixtureDir(t, dir, "mosaic/internal/fixture")
	diags := pass.Run(DetRand)
	t.Logf("diags: %v", diags)
	if _, _, err := ApplyFixes(diags); err != nil {
		t.Fatal(err)
	}
	out, _ := os.ReadFile(target)
	t.Logf("fixed file:\n%s", out)
	// Does the fixed file still type-check?
	loadFixtureDir(t, dir, "mosaic/internal/fixture")
}
