// Package hot is the hotalloc fixture, a miniature of the repository's
// RunLimited hot path. This variant uses the preallocated concrete sink —
// the shape the escape baseline blesses.
package hot

// Sink consumes one memory reference per call.
type Sink interface {
	Access(va uint64, write bool)
}

type limitReached struct{}

// limitSink is the preallocated counting sink: no closure environment, so
// the per-call state lives in a stack-constructed struct.
type limitSink struct {
	n   uint64
	max uint64
}

func (s *limitSink) Access(va uint64, write bool) {
	s.n++
	if s.n >= s.max {
		panic(limitReached{})
	}
}

// RunLimited drives the workload into a counting sink and stops at max.
func RunLimited(run func(Sink), max uint64) (n uint64) {
	ls := limitSink{max: max}
	defer func() {
		n = ls.n
		if r := recover(); r != nil {
			if _, ok := r.(limitReached); !ok {
				panic(r)
			}
		}
	}()
	run(&ls)
	return ls.n
}
