// Package hot is the hotalloc fixture, a miniature of the repository's
// RunLimited hot path. This variant re-introduces the per-call closure the
// limitSink rewrite removed: the counter is captured by a func literal, so
// both the literal and the counter escape to the heap — the regression the
// gate exists to catch.
package hot

// Sink consumes one memory reference per call.
type Sink interface {
	Access(va uint64, write bool)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(va uint64, write bool)

func (f SinkFunc) Access(va uint64, write bool) { f(va, write) }

type limitReached struct{}

// RunLimited drives the workload into a counting closure and stops at max.
func RunLimited(run func(Sink), max uint64) (n uint64) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(limitReached); !ok {
				panic(r)
			}
		}
	}()
	run(SinkFunc(func(va uint64, write bool) {
		n++
		if n >= max {
			panic(limitReached{})
		}
	}))
	return n
}
