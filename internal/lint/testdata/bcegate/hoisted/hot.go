// Package hot is the bcegate fixture in its healthy form: the bucket-scan
// loop re-slices the flat arrays to a common length before scanning, so the
// prove pass eliminates every bounds check inside the loop. Only the hoisted
// IsSliceInBounds checks survive, and those are the baseline.
package hot

type table struct {
	keys []uint64
	used []bool
	f    int
}

func (t *table) get(bucket, key uint64) (int, bool) {
	base := int(bucket%4) * t.f
	used := t.used[base : base+t.f]
	keys := t.keys[base : base+t.f]
	for s := range used {
		if used[s] && keys[s] == key {
			return base + s, true
		}
	}
	return 0, false
}

var sink bool

func drive() {
	t := &table{keys: make([]uint64, 32), used: make([]bool, 32), f: 8}
	_, sink = t.get(3, 7)
}
