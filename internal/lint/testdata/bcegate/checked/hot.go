// Package hot is the bcegate fixture in its regressed form: the same
// bucket scan as the hoisted variant, but indexing the flat arrays through
// base+s directly. The prove pass cannot relate base+s to either array's
// length, so an IsInBounds check survives on every iteration of the scan —
// the regression the gate exists to catch.
package hot

type table struct {
	keys []uint64
	used []bool
	f    int
}

func (t *table) get(bucket, key uint64) (int, bool) {
	base := int(bucket%4) * t.f
	for s := 0; s < t.f; s++ {
		if t.used[base+s] && t.keys[base+s] == key {
			return base + s, true
		}
	}
	return 0, false
}

var sink bool

func drive() {
	t := &table{keys: make([]uint64, 32), used: make([]bool, 32), f: 8}
	_, sink = t.get(3, 7)
}
