// Package hot is the inlinegate fixture in its healthy form: step is a
// small counting method, comfortably under the inliner's budget, so its
// verdict is "can inline" and the driver loop carries no call overhead.
package hot

type counter struct {
	n, max uint64
}

func (c *counter) step() bool {
	c.n++
	return c.n < c.max
}

var sink int

func drive() {
	c := &counter{max: 1 << 10}
	calls := 0
	for c.step() {
		calls++
	}
	sink = calls
}
