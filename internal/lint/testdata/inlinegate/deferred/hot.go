// Package hot is the inlinegate fixture in its regressed form: step grew a
// defer, which the inliner refuses outright ("unhandled op DEFER"), so the
// verdict flips to "cannot inline" and every iteration of the driver loop
// pays a call — the regression the gate exists to catch.
package hot

type counter struct {
	n, max, last uint64
}

func (c *counter) step() bool {
	defer func() { c.last = c.n }()
	c.n++
	return c.n < c.max
}

var sink int

func drive() {
	c := &counter{max: 1 << 10}
	calls := 0
	for c.step() {
		calls++
	}
	sink = calls
}
