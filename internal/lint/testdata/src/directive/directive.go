package fixture

// step decrements a counter. The ignore directive below is missing its
// reason, so it is itself reported and suppresses nothing.
func step(n int) int {
	if n < 0 {
		//lint:ignore nopanic
		panic("fixture: negative") // want "steady-state panic in step"
	}
	return n - 1
}
