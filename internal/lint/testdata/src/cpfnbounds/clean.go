package fixture

import "mosaic/internal/core"

// succ uses the audited offset helper.
func succ(p core.PFN) core.PFN {
	return p.Add(1)
}

// pred likewise.
func pred(p core.PFN) core.PFN {
	return p.Sub(1)
}

// before compares frame numbers; comparisons are always allowed.
func before(a, b core.PFN) bool {
	return a < b
}

// widen converts away from CPFN, which is fine — only minting one is
// restricted.
func widen(c core.CPFN) uint64 {
	return uint64(c)
}

// toPFN converts an index to a PFN; PFNs are ordinary frame numbers, only
// their arithmetic is confined.
func toPFN(i uint64) core.PFN {
	return core.PFN(i)
}

// valid consults the geometry rather than forging values.
func valid(g core.Geometry, c core.CPFN) bool {
	return g.ValidCPFN(c)
}
