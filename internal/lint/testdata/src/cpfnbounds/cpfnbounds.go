package fixture

import "mosaic/internal/core"

// mint forges a compressed frame number from a raw byte, bypassing the
// geometry's validity rules.
func mint(x uint8) core.CPFN {
	return core.CPFN(x) // want "raw conversion to core.CPFN"
}

// offset computes a neighbouring frame with raw arithmetic.
func offset(p core.PFN) core.PFN {
	return p + 1 // want "core.PFN arithmetic"
}

// accumulate uses an arithmetic assignment.
func accumulate(p core.PFN) core.PFN {
	p += 2 // want "core.PFN arithmetic"
	return p
}

// bump increments a frame number in place.
func bump(p *core.PFN) {
	*p++ // want "core.PFN arithmetic"
}

// mask clears low bits of a compressed frame number.
func mask(c core.CPFN) core.CPFN {
	return c & 0x3F // want "core.CPFN arithmetic"
}
