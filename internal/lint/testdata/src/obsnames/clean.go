package fixture

import "mosaic/internal/obs"

// goodNames follow the grammar.
func goodNames(r *obs.Registry, s *obs.Sampler) {
	r.Counter("vm.fault.minor")
	r.Gauge("vm.utilization")
	r.Histogram("tlb.walk.latency")
	r.Counter("iceberg.put.backyard")
	s.Gauge("vm.ghost.fraction", func() float64 { return 0 })
	s.Ratio("tlb.mosaic_4.hit_rate", 1, nil, nil)
}

// runtimeNames are built from non-constant parts; the registry validates
// them when they are registered, so the analyzer stays quiet.
func runtimeNames(r *obs.Registry, prefix string) {
	r.Counter(prefix + ".hit")
	r.Counter(prefix + ".miss")
}

// suppressed shows the escape hatch.
func suppressed(r *obs.Registry) {
	//lint:ignore obsnames exercising the registry's own validation panic
	r.Counter("NOT.a.name")
}

// otherCounter is a different Counter method entirely; same name, not our
// receiver, not checked.
type otherCounter struct{}

func (otherCounter) Counter(name string) {}

func unrelated(o otherCounter) { o.Counter("Whatever Goes") }

// publisherAndSpans: publish-time gauge probes follow the metric grammar,
// span names the single-segment span grammar.
func publisherAndSpans(p *obs.Publisher) {
	p.Gauge("sim.refs.total", func() float64 { return 0 })
	p.Gauge("tlb.vanilla.live.hits", func() float64 { return 0 })
	sp := obs.NewSpan("warmup", 0)
	_ = sp
	_ = obs.NewSpan("run", 100)
}
