package fixture

import "mosaic/internal/obs"

const prefix = "tlb.mosaic"

// badNames violate the lowercase-dotted grammar in every supported
// constructor.
func badNames(r *obs.Registry, s *obs.Sampler) {
	r.Counter("Vm.access")   // want "not a lowercase dotted identifier"
	r.Counter("vm")          // want "not a lowercase dotted identifier"
	r.Gauge("vm..util")      // want "not a lowercase dotted identifier"
	r.Histogram("walk-lat")  // want "not a lowercase dotted identifier"
	r.Counter(prefix + ".B") // want "not a lowercase dotted identifier"
	s.Gauge("Utilization", func() float64 { return 0 }) // want "not a lowercase dotted identifier"
	s.Rate("swap io", func() float64 { return 0 })      // want "not a lowercase dotted identifier"
	s.Ratio("9lives.rate", 1, nil, nil)                 // want "not a lowercase dotted identifier"
}

// badPublisherAndSpans: the same grammars enforced at Publisher.Gauge and
// obs.NewSpan registration sites.
func badPublisherAndSpans(p *obs.Publisher) {
	p.Gauge("Sim.Refs", func() float64 { return 0 }) // want "not a lowercase dotted identifier"
	p.Gauge("refs", func() float64 { return 0 })     // want "not a lowercase dotted identifier"
	_ = obs.NewSpan("Warmup", 0)                     // want "not a lowercase span identifier"
	_ = obs.NewSpan("run.phase", 0)                  // want "not a lowercase span identifier"
	_ = obs.NewSpan("2fast", 0)                      // want "not a lowercase span identifier"
}
