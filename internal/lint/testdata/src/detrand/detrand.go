package fixture

import "math/rand"

// globalDraw uses the implicitly seeded global source.
func globalDraw() int {
	return rand.Intn(10) // want "call to rand.Intn"
}

// construct builds an ad-hoc generator instead of going through
// internal/rng.
func construct(seed uint64) *rand.Rand {
	src := rand.NewSource(int64(seed)) // want "call to rand.NewSource"
	return rand.New(src)               // want "call to rand.New"
}

// reshuffle mixes an injected generator (fine) with the global one (not).
func reshuffle(rnd *rand.Rand, xs []int) {
	rnd.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "call to rand.Shuffle"
}
