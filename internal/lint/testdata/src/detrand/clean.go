package fixture

import "math/rand"

// pick draws from the injected, seeded generator — the sanctioned pattern.
func pick(rnd *rand.Rand, xs []int) int {
	return xs[rnd.Intn(len(xs))]
}

// fill consumes only methods of the injected generator.
func fill(rnd *rand.Rand, dst []float64) {
	for i := range dst {
		dst[i] = rnd.Float64()
	}
}
