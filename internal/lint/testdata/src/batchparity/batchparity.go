// Fixture for the batchparity analyzer: dual trace.Sink+BatchSink
// implementors whose batch path diverges from the scalar one, and per-ref
// replay loops that bypass an available batch delivery.
package batchparity

import "mosaic/internal/trace"

// counter diverges: Access counts per reference, ProcessBatch counts at
// most once per batch.
type counter struct {
	n uint64
}

func (c *counter) Access(va uint64, write bool) { c.n++ }

func (c *counter) ProcessBatch(b trace.Batch) { // want "ProcessBatch diverges from per-ref Access: n (updated once per batch, not per reference)"
	if len(b) > 0 {
		c.n++
	}
}

// ignorer drops its batch entirely.
type ignorer struct {
	n       uint64
	flushed uint64
}

func (c *ignorer) Access(va uint64, write bool) { c.n++ }

func (c *ignorer) ProcessBatch(b trace.Batch) { // want "ProcessBatch ignores its batch"
	c.flushed++
}

// bulkCounter mirrors the per-ref count in one len-shaped step. Clean.
type bulkCounter struct {
	n uint64
}

func (c *bulkCounter) Access(va uint64, write bool) { c.n++ }

func (c *bulkCounter) ProcessBatch(b trace.Batch) { c.n += uint64(len(b)) }

// core shares a per-ref step between both paths. Clean.
type core struct {
	n uint64
}

func (c *core) step(r trace.Ref) { c.n++ }

func (c *core) Access(va uint64, write bool) { c.step(trace.MakeRef(va, write)) }

func (c *core) ProcessBatch(b trace.Batch) {
	for _, r := range b {
		c.step(r)
	}
}

// forwarder hands the batch on whole — re-slicing included. Clean.
type forwarder struct {
	next  *core
	limit int
}

func (s *forwarder) Access(va uint64, write bool) { s.next.Access(va, write) }

func (s *forwarder) ProcessBatch(b trace.Batch) {
	if s.limit > 0 && s.limit < len(b) {
		b = b[:s.limit]
	}
	s.next.ProcessBatch(b)
}

// replayScalar pushes a batch element by element through Sink.Access when
// batch-level delivery exists.
func replayScalar(b trace.Batch, s trace.Sink) {
	for _, r := range b {
		s.Access(r.VA(), r.Write()) // want "per-ref Sink.Access loop over a trace.Batch"
	}
}

// replayBatch delivers whole batches via the sanctioned bridge. Clean.
func replayBatch(b trace.Batch, s trace.Sink) {
	b.Replay(s)
}

// scalarEmitter claims a batch leg but keeps its generation loop on the
// trace.Sink interface: every reference still pays a dynamic dispatch, so
// the batch leg is native in name only.
type scalarEmitter struct {
	n int
}

func (g *scalarEmitter) emit(sink trace.Sink) {
	for i := 0; i < g.n; i++ {
		sink.Access(uint64(i)<<12, false) // want "emit through the concrete"
	}
}

func (g *scalarEmitter) Run(sink trace.Sink) { g.emit(sink) }

func (g *scalarEmitter) RunBatches(sink trace.BatchSink) {
	b := trace.NewBatcher(sink, 0)
	g.emit(b)
	b.Flush()
}

// batchEmitter generates on the concrete batcher; the scalar leg unrolls
// the same batches through the sanctioned adapter. Clean.
type batchEmitter struct {
	n int
}

func (g *batchEmitter) Run(sink trace.Sink) { g.RunBatches(trace.BatchSinkOf(sink)) }

func (g *batchEmitter) RunBatches(sink trace.BatchSink) {
	b := trace.NewBatcher(sink, 0)
	for i := 0; i < g.n; i++ {
		b.Access(uint64(i)<<12, i&1 == 0)
	}
	b.Flush()
}
