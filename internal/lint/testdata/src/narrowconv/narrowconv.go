package fixture

// pfn mirrors core.PFN: a named type with underlying uint64.
type pfn uint64

// direct narrows with no guard at all.
func direct(x uint64) int {
	return int(x) // want "uint64 narrowed to int without a bounds guard"
}

// directNamed narrows a named uint64 type.
func directNamed(p pfn) uint32 {
	return uint32(p) // want "pfn narrowed to uint32 without a bounds guard"
}

// masked reduces with % first — the iceberg bucket-index idiom.
func masked(x uint64, buckets int) int {
	return int(x % uint64(buckets))
}

// anded masks with & first.
func anded(x uint64) int {
	return int(x & 0xfff)
}

// shifted reduces with >> first.
func shifted(x uint64) uint32 {
	return uint32(x >> 40)
}

// guardedIf converts inside a branch taken on a predicate over x.
func guardedIf(x uint64, n int) int {
	if x < uint64(n) {
		return int(x)
	}
	return 0
}

// guardedEarlyExit uses the early-return guard idiom.
func guardedEarlyExit(x uint64, n int) int {
	if x >= uint64(n) {
		return -1
	}
	return int(x)
}

// guardedByIndex narrows after an index with the same variable: the
// runtime bounds check has already passed.
func guardedByIndex(xs []int, p pfn) int {
	v := xs[p]
	return v + int(p)
}

// mapIndexProvesNothing: a map lookup is not a bounds check.
func mapIndexProvesNothing(m map[pfn]int, p pfn) int {
	v := m[p]
	return v + int(p) // want "pfn narrowed to int without a bounds guard"
}

// bounded is a masked single-result helper: its summary marks the result
// range-reduced.
func bounded(x uint64) uint64 {
	return x & 0xffff
}

// viaBoundedHelper narrows the result of a helper whose every return is
// masked — the one-level summary sees through the call.
func viaBoundedHelper(x uint64) int {
	return int(bounded(x))
}

// raw is not bounded: no mask on its return.
func raw(x uint64) uint64 {
	return x + 1
}

// viaRawHelper narrows an unbounded helper result.
func viaRawHelper(x uint64) int {
	return int(raw(x)) // want "uint64 narrowed to int without a bounds guard"
}

// toInt64 reinterprets the sign bit but loses no magnitude bits — the
// seed-plumbing idiom, not flagged.
func toInt64(x uint64) int64 {
	return int64(x)
}

// constConv is the compiler's to check.
func constConv() int {
	const big = uint64(1 << 20)
	return int(big)
}

// widening loses nothing.
func widening(x uint32) uint64 {
	return uint64(x)
}
