// Fixture for the fixpoint engine: self-recursion. The SCC iteration must
// terminate and settle on sound summaries.
package recurse

// maskedRec narrows through itself: the base return is masked, the
// recursive one is the bare recursive call. Least-fixpoint iteration from
// the pessimistic bottom cannot prove the cycle bounded — the pinned result
// is a sound "false", not a hang.
func maskedRec(n uint64) uint64 {
	if n < 2 {
		return n & 0x3f
	}
	return maskedRec(n - 1)
}

// maskedWrap masks the recursion at the boundary, so it is bounded even
// though it sits on an unproven cycle.
func maskedWrap(n uint64) uint64 {
	return maskedRec(n) & 0x3f
}

// spinRec recurses from inside an unconditional loop; spins must settle
// true without oscillating.
func spinRec() {
	for {
		spinRec()
	}
}
