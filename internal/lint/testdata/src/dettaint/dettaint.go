// Fixture for the dettaint analyzer: nondeterminism sources flowing into
// determinism sinks, directly, through callees, and through struct fields —
// plus the two sanctioned escapes (collect-then-sort, wall.* instruments).
package dettaint

import (
	"math/rand"
	"os"
	"sort"
	"time"

	"mosaic/internal/obs"
	"mosaic/internal/results"
	"mosaic/internal/trace"
)

// direct: a wall-clock reading lands in a results metric.
func direct(f *results.File) {
	f.SetMetric("elapsed", float64(time.Now().UnixNano())) // want "wall-clock-tainted value flows into a results.File metric"
}

// publish is a sink carrier: its v parameter reaches a metric, so tainted
// arguments at its call sites are findings there.
func publish(f *results.File, v float64) {
	f.SetMetric("carried", v)
}

// indirect: the taint travels through publish's parameter summary.
func indirect(f *results.File) {
	secs := float64(time.Now().UnixNano())
	publish(f, secs) // want "wall-clock-tainted value reaches a results.File metric through mosaic/internal/fixture.publish"
}

// span carries a wall-clock reading across functions through a field.
type span struct {
	start float64
}

func begin(s *span) {
	s.start = float64(time.Now().UnixNano())
}

// flush reads the tainted field in a different function: the program-wide
// field lattice carries the bit.
func flush(s *span, f *results.File) {
	f.SetMetric("span.start", s.start) // want "wall-clock-tainted value flows into a results.File metric"
}

// mapOrder: ranging a map straight into metrics makes the emission order —
// and the name/value pairing seen by diff tools — run-dependent.
func mapOrder(f *results.File, m map[string]float64) {
	for k, v := range m {
		f.SetMetric(k, v) // want "map-iteration-order-tainted value flows into a results.File metric"
	}
}

// sortedEmit is the sanctioned idiom: collect, sort, then emit. Clean.
func sortedEmit(f *results.File, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f.SetMetric(k, m[k])
	}
}

// instrument: a non-wall instrument fed from the clock is a finding…
func instrument(r *obs.Registry) {
	r.Gauge("sim.phase.seconds").Set(float64(time.Now().UnixNano())) // want "wall-clock-tainted value flows into an obs registry instrument"
}

// …but the reserved wall.* namespace is the telemetry plane: exempt.
func wallInstrument(r *obs.Registry) {
	r.Gauge("wall.phase.seconds").Set(float64(time.Now().UnixNano()))
}

// envMetric: the environment differs between hosts and runs.
func envMetric(f *results.File) {
	f.SetMetric("env", float64(len(os.Getenv("HOME")))) // want "environment-tainted value flows into a results.File metric"
}

// randMetric: the global math/rand stream is unseeded.
func randMetric(f *results.File) {
	f.SetMetric("noise", rand.Float64()) // want "global math/rand-tainted value flows into a results.File metric"
}

// sched: whichever arm wins the select is scheduler-dependent.
func sched(f *results.File, a, b chan float64) {
	var v float64
	select {
	case v = <-a:
	case v = <-b:
	}
	f.SetMetric("first", v) // want "goroutine/select-ordering-tainted value flows into a results.File metric"
}

// traceTaint: a tainted address entering the reference stream forks the
// trace byte-for-byte.
func traceTaint(w *trace.Writer) {
	w.Access(uint64(time.Now().UnixNano()), false) // want "wall-clock-tainted value flows into a trace sink"
}

// seeded randomness through a value-carrying conversion chain is clean: the
// *rand.Rand method is not a source.
func seeded(f *results.File, rng *rand.Rand) {
	f.SetMetric("draw", rng.Float64())
}
