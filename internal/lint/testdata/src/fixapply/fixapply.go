// Package fixture exercises the mechanical fixes of detrand and errdrop:
// mosaiclint -fix rewrites this file into fixapply.golden.
package fixture

import (
	"math/rand"

	"mosaic/internal/alloc"
	"mosaic/internal/iceberg"
)

// shuffle builds an ad-hoc generator — the one detrand pattern with a
// mechanical rewrite.
func shuffle(seed int64, xs []int) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// drop discards errors from both guarded APIs.
func drop(t *iceberg.Table[uint64, int], m *alloc.Memory) {
	t.Put(1, 2)
	m.Place(1, 2, 3, 4)
}
