// Fixture for the fixpoint engine: a cycle closed through interface
// dispatch. The call graph's dispatch edges put both concrete step methods
// in one SCC even though neither names the other.
package ifacecycle

type stepper interface {
	step(n int)
}

type alpha struct {
	next stepper
}

type beta struct {
	next stepper
}

func (x *alpha) step(n int) {
	if n > 0 {
		x.next.step(n - 1)
	}
}

func (x *beta) step(n int) {
	if n > 0 {
		x.next.step(n - 1)
	}
}
