package fixture

// Ring is a fixture structure with a bounded occupancy count.
type Ring struct {
	n int
}

// NewRing constructs a Ring; the name marks it as a constructor, where
// panicking on bad configuration is the convention.
func NewRing(size int) *Ring {
	if size <= 0 {
		panic("fixture: size must be positive")
	}
	return &Ring{n: size}
}

// mustSize is allowed by the must prefix.
func mustSize(n int) int {
	if n <= 0 {
		panic("fixture: bad size")
	}
	return n
}

// validateLimit is allowed: validation by name.
func validateLimit(n int) {
	if n > 64 {
		panic("fixture: limit too high")
	}
}

// At returns index i. It panics if i is out of range — a documented
// contract, so the panic is part of the API.
func (r *Ring) At(i int) int {
	if i < 0 || i >= r.n {
		panic("fixture: index out of range")
	}
	return i
}

// Step advances the ring.
func (r *Ring) Step() int {
	if r.n == 0 {
		panic("fixture: empty ring") // want "steady-state panic in Step"
	}
	r.n--
	return r.n
}

// Shrink reduces the ring, with a directive-annotated invariant check.
func (r *Ring) Shrink(by int) {
	r.n -= by
	if r.n < 0 {
		//lint:ignore nopanic occupancy cannot go negative unless the structure is corrupt
		panic("fixture: negative occupancy")
	}
}

// shadowed calls a local function that happens to be named panic; the
// builtin is not involved.
func shadowed() {
	panic := func(string) {}
	panic("fixture: not the builtin")
}
