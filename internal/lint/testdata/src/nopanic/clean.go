package fixture

import "errors"

// errEmpty reports a drained ring.
var errEmpty = errors.New("fixture: empty ring")

// Pop is the clean steady-state pattern: failure is an error value.
func (r *Ring) Pop() (int, error) {
	if r.n == 0 {
		return 0, errEmpty
	}
	r.n--
	return r.n, nil
}
