package fixture

import (
	"mosaic/internal/alloc"
	"mosaic/internal/iceberg"
)

// handled checks the errors — the required pattern.
func handled(t *iceberg.Table[uint64, int], m *alloc.Memory) error {
	if err := t.Put(3, 4); err != nil {
		return err
	}
	p, err := m.Place(1, 2, 3, 4)
	_ = p
	return err
}

// explicit discards are a reviewable decision and stay legal.
func explicit(t *iceberg.Table[uint64, int]) {
	_ = t.Put(5, 6)
}

// nonError calls results that carry no error.
func nonError(t *iceberg.Table[uint64, int], m *alloc.Memory) {
	t.Delete(9)
	m.Touch(0, 1, false)
}
