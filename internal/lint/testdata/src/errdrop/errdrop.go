package fixture

import (
	"mosaic/internal/alloc"
	"mosaic/internal/iceberg"
)

// dropPut loses a placement failure from the iceberg table.
func dropPut(t *iceberg.Table[uint64, int]) {
	t.Put(1, 2) // want "result of iceberg.Put discarded"
}

// dropPlace loses an alloc conflict.
func dropPlace(m *alloc.Memory) {
	m.Place(1, 2, 3, 4) // want "result of alloc.Place discarded"
}
