package fixture

import (
	"context"
	"sync"

	"mosaic/internal/sweep"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// incDeferred is the canonical balanced form.
func (c *counter) incDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// incExplicit balances without defer; every path unlocks.
func (c *counter) incExplicit() int {
	c.mu.Lock()
	c.n++
	v := c.n
	c.mu.Unlock()
	return v
}

// leakEarlyReturn takes the lock and forgets it on the early-return path.
func (c *counter) leakEarlyReturn() int {
	c.mu.Lock() // want "never unlocked on the return path"
	if c.n > 0 {
		return c.n
	}
	c.mu.Unlock()
	return 0
}

// leakImplicit leaks at the implicit return at the closing brace.
func (c *counter) leakImplicit() {
	c.mu.Lock() // want "never unlocked on the return path"
	c.n++
}

// branchBalanced unlocks on both arms — no finding.
func (c *counter) branchBalanced(flip bool) {
	c.mu.Lock()
	if flip {
		c.n++
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

// panicWhileHeld panics with the lock held and no deferred unlock.
func (c *counter) panicWhileHeld() {
	c.mu.Lock()
	if c.n < 0 {
		panic("negative") // want "panic while holding c.mu"
	}
	c.mu.Unlock()
}

// panicCoveredByDefer is fine: the deferred unlock runs while panicking.
func (c *counter) panicCoveredByDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 0 {
		panic("negative")
	}
}

// sendWhileHeld holds the lock across a channel send.
func (c *counter) sendWhileHeld(ch chan int) {
	c.mu.Lock()
	ch <- c.n // want "held across channel send"
	c.mu.Unlock()
}

// recvWhileHeld holds the lock across a channel receive.
func (c *counter) recvWhileHeld(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = <-ch // want "held across channel receive"
}

// selectWhileHeld holds the lock across a select.
func (c *counter) selectWhileHeld(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "held across select"
	case v := <-ch:
		c.n = v
	default:
	}
}

// sendAfterUnlock releases before the send — no finding.
func (c *counter) sendAfterUnlock(ch chan int) {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	ch <- v
}

// sweepWhileHeld holds the lock across the whole sweep.
func (c *counter) sweepWhileHeld(ctx context.Context, pts []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = sweep.Run(ctx, pts, func(_ context.Context, _ int, p int) (int, error) { // want "held across sweep.Run"
		return p, nil
	}, sweep.Options{})
}

// lock and unlock are deliberate wrappers: summarised for callers, not
// flagged themselves.
func (c *counter) lock()   { c.mu.Lock() }
func (c *counter) unlock() { c.mu.Unlock() }

// helperLeak acquires through the one-level summary and never releases.
func (c *counter) helperLeak() {
	c.lock() // want "never unlocked on the return path"
	c.n++
}

// helperBalanced pairs the helpers; the deferred release helper covers the
// return path.
func (c *counter) helperBalanced() {
	c.lock()
	defer c.unlock()
	c.n++
}

// helperExplicit pairs the helpers without defer.
func (c *counter) helperExplicit() {
	c.lock()
	c.n++
	c.unlock()
}

// deferredClosureUnlock is covered by the unlock inside the deferred
// closure.
func (c *counter) deferredClosureUnlock() {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	c.n++
}

// goroutineLeak leaks inside a function literal, which is analysed as its
// own function.
func (c *counter) goroutineLeak() {
	go func() {
		c.mu.Lock() // want "never unlocked on the return path"
		c.n++
	}()
}

// byValueReceiver copies the mutex with every call.
func (c counter) byValueReceiver() int { // want "copies counter — and its mutex — by value"
	return c.n
}

// byValueParam copies the mutex through the parameter.
func byValueParam(c counter) int { // want "copies counter — and its mutex — by value"
	return c.n
}

// derefCopy copies the mutex by dereferencing.
func derefCopy(c *counter) counter {
	return *c // want "dereferencing copies counter"
}

// pointerUses are all fine: no copy is made.
func pointerUses(c *counter) int {
	d := c
	return (*d).n
}

// lockIndirect wraps the wrapper. Its body is nothing but lock management,
// so the fixpoint engine summarises it as a helper in its own right — the
// acquire folds through and the balancing burden lands on its callers, not
// here.
func lockIndirect(c *counter) {
	c.lock()
}

// twoLevelSeen: the acquire two hops down is visible to this caller — the
// helper-of-a-helper summary carries it through, and the missing unlock is
// flagged where the imbalance actually lives.
func twoLevelSeen(c *counter) {
	lockIndirect(c) // want "never unlocked on the return path"
	c.n++
}

var (
	globalMu sync.Mutex
	globalN  int
)

// globalHelperLock is a wrapper over a package-level mutex; callers inherit
// the obligation with no argument mapping.
func globalHelperLock() { globalMu.Lock() }

// globalLeak acquires the package-level lock through the helper and then
// does real work, so it is no helper itself: the leak lands here.
func globalLeak() {
	globalHelperLock() // want "never unlocked on the return path"
	globalN++
}

// globalBalanced releases it directly.
func globalBalanced() {
	globalHelperLock()
	defer globalMu.Unlock()
}
