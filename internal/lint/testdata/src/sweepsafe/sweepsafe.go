package fixture

import (
	"context"

	"mosaic/internal/sweep"
)

// totalRuns is package-level state shared by every closure below.
var totalRuns int

// state is shared struct-level state.
type state struct {
	n int
}

// sweepPackageWrite bumps a package-level counter from inside a sweep
// closure with no lock anywhere.
func sweepPackageWrite(points []int) {
	_, _ = sweep.Run(context.Background(), points,
		func(_ context.Context, _ int, p int) (int, error) {
			totalRuns++ // want "writes package-level totalRuns"
			return p * 2, nil
		}, sweep.Options{})
}

// sweepCapturedAccumulator folds into a captured local instead of returning
// per-point results.
func sweepCapturedAccumulator(points []int) int {
	total := 0
	_, _ = sweep.Run(context.Background(), points,
		func(_ context.Context, _ int, p int) (int, error) {
			total += p // want "writes captured total"
			return p, nil
		}, sweep.Options{})
	return total
}

// sweepFieldWrite mutates a captured struct's field across points.
func sweepFieldWrite(points []int, st *state) {
	_, _ = sweep.Run(context.Background(), points,
		func(_ context.Context, _ int, p int) (int, error) {
			st.n = p // want "writes st.n through a captured reference"
			return p, nil
		}, sweep.Options{})
}

// goPackageWrite launches a bare goroutine that mutates package state.
func goPackageWrite() {
	go func() {
		totalRuns++ // want "writes package-level totalRuns"
	}()
}

// goLoopCapture captures a variable the loop mutates after the goroutine is
// launched: the classic shared-iteration-variable bug, still expressible
// with a pre-loop declaration.
func goLoopCapture(n int, out chan<- int) {
	var i int
	for i = 0; i < n; i++ {
		go func() {
			out <- i // want "captures i, which the enclosing loop mutates"
		}()
	}
}

// suppressed documents a deliberate single-goroutine handoff.
func suppressed(done chan struct{}) {
	go func() {
		//lint:ignore sweepsafe joined before the next read by the done channel
		totalRuns++
		close(done)
	}()
}
