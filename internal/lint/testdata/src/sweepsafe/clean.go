package fixture

import (
	"context"
	"sync"

	"mosaic/internal/sweep"
)

var guardedTotal int
var mu sync.Mutex

// perPointResults is the intended shape: everything a point produces comes
// back through the return value.
func perPointResults(points []int) ([]int, error) {
	return sweep.Run(context.Background(), points,
		func(_ context.Context, _ int, p int) (int, error) {
			local := p * p
			return local, nil
		}, sweep.Options{})
}

// lockedWrite holds a lock around the shared write — inside the lock set.
func lockedWrite(points []int) {
	_, _ = sweep.Run(context.Background(), points,
		func(_ context.Context, _ int, p int) (int, error) {
			mu.Lock()
			guardedTotal += p
			mu.Unlock()
			return p, nil
		}, sweep.Options{})
}

// indexedWrites mirrors the engine's own result collection: distinct-index
// writes into a shared slice are the one blessed sharing idiom.
func indexedWrites(points []int) []int {
	out := make([]int, len(points))
	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = points[i] * 2
		}(i)
	}
	wg.Wait()
	return out
}

// perIterationVar captures a Go 1.22 per-iteration loop variable — each
// goroutine sees its own copy, so nothing is shared.
func perIterationVar(points []int, sink chan<- int) {
	for _, p := range points {
		go func() {
			sink <- p
		}()
	}
}
