// Fixture for the fixpoint engine: mutual recursion. Both members land in
// one SCC and iterate to a joint fixpoint.
package mutrec

func work() {}

// spinA and spinB form a cycle; only spinB holds the loop, but the spin
// fact must propagate around the cycle to spinA.
func spinA() { spinB() }

func spinB() {
	for {
		spinA()
	}
}

// evenStep/oddStep: a bounded fact cannot be proven around the cycle (sound
// false), but the pair must still converge.
func evenStep(n uint64) uint64 {
	if n == 0 {
		return 0 & 0x1
	}
	return oddStep(n - 1)
}

func oddStep(n uint64) uint64 {
	if n == 0 {
		return 1 & 0x1
	}
	return evenStep(n - 1)
}
