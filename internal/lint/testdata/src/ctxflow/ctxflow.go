package fixture

import "context"

func blockingWork(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// propagates hands its own ctx on — no finding.
func propagates(ctx context.Context, ch chan int) int {
	return blockingWork(ctx, ch)
}

// dropsCtx mints a fresh Background even though it holds a ctx.
func dropsCtx(ctx context.Context, ch chan int) int {
	return blockingWork(context.Background(), ch) // want "context.Background passed while ctx is in scope"
}

// dropsCtxTODO is the same with TODO.
func dropsCtxTODO(ctx context.Context, ch chan int) int {
	return blockingWork(context.TODO(), ch) // want "context.TODO passed while ctx is in scope"
}

// dropsCtxDerived buries the fresh context under a With wrapper.
func dropsCtxDerived(ctx context.Context, ch chan int) int {
	sub, cancel := context.WithCancel(context.Background()) // want "context.Background passed while ctx is in scope"
	defer cancel()
	return blockingWork(sub, ch)
}

// noCtxAvailable has no context to propagate: minting one is the only
// option and is not flagged.
func noCtxAvailable(ch chan int) int {
	return blockingWork(context.Background(), ch)
}

// closureInherits: the closure captures the enclosing ctx, so minting a
// fresh one inside it still breaks the chain.
func closureInherits(ctx context.Context, ch chan int) func() int {
	return func() int {
		return blockingWork(context.Background(), ch) // want "context.Background passed while ctx is in scope"
	}
}

// workerIgnoresCancel spins forever without consulting the captured ctx.
func workerIgnoresCancel(ctx context.Context, ch chan int) {
	go func() {
		for { // want "worker goroutine loops forever without consulting ctx"
			ch <- 1
		}
	}()
}

// workerSelectsDone consults ctx through a Done arm — no finding.
func workerSelectsDone(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// workerPollsErr consults ctx by polling Err — no finding.
func workerPollsErr(ctx context.Context, ch chan int) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			ch <- 1
		}
	}()
}

// workerOwnCtx receives its own context parameter; the closure's signature
// is its contract — no finding.
func workerOwnCtx(ctx context.Context, ch chan int) {
	run := func(ctx context.Context) {
		for {
			if ctx.Err() != nil {
				return
			}
			ch <- 1
		}
	}
	go run(ctx)
}

// boundedWorker's loop has a condition: it terminates on its own and is
// not an unconditional spin.
func boundedWorker(ctx context.Context, ch chan int) {
	go func() {
		for i := 0; i < 8; i++ {
			ch <- i
		}
	}()
}

// noCtxWorker has no context in scope at the go statement — nothing to
// consult.
func noCtxWorker(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
