// Fixture for the goleak analyzer: spawned goroutines with no reachable
// cancellation or done edge at any call depth.
package goleak

import "context"

func work() {}

// spinner loops unconditionally with no exit or done edge.
func spinner() {
	for {
		work()
	}
}

// runner reaches the spin one call down; the summary carries it up.
func runner() {
	spinner()
}

func spawnLit() {
	go func() { // want "goroutine spins in an unconditional loop"
		for {
			work()
		}
	}()
}

func spawnNamed() {
	go spinner() // want "goroutine runs mosaic/internal/fixture.spinner"
}

func spawnDeep() {
	go runner() // want "goroutine runs mosaic/internal/fixture.runner"
}

// drain ranges a closable channel: the close is its done signal. Clean.
func drain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// polling consults the context each lap. Clean.
func polling(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

// selecting has a done arm. Clean.
func selecting(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// bounded exits on its own. Clean.
func bounded() {
	go func() {
		for i := 0; i < 8; i++ {
			work()
		}
	}()
}
