package fixture

import "sort"

// sumValues is commutative — no ordered output.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sortedKeys is the canonical remedy: basic-typed keys collected for
// sorting are allowed.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedRows appends composite records but sorts them before returning, so
// iteration order cannot leak out.
func sortedRows(m map[string]float64) []row {
	var rows []row
	for k, v := range m {
		rows = append(rows, row{Name: k, Value: v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// localRows appends to a slice declared inside the loop body; nothing
// outlives an iteration.
func localRows(m map[string]float64) int {
	n := 0
	for k, v := range m {
		var tmp []row
		tmp = append(tmp, row{Name: k, Value: v})
		n += len(tmp)
	}
	return n
}

// invert builds another map — order-independent.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
