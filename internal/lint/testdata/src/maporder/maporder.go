package fixture

import (
	"fmt"

	"mosaic/internal/obs"
	"mosaic/internal/sweep"
)

// row is a composite record, the kind that reaches a results file.
type row struct {
	Name  string
	Value float64
}

// printInOrder emits one line per entry in map order.
func printInOrder(m map[string]int) {
	for k, v := range m { // want "prints via fmt.Println"
		fmt.Println(k, v)
	}
}

// collectRows builds result rows in map order and never sorts them.
func collectRows(m map[string]float64) []row {
	var rows []row
	for k, v := range m { // want "appends row records"
		rows = append(rows, row{Name: k, Value: v})
	}
	return rows
}

// mergeInOrder folds snapshots into a Merger in map order; gauge merges are
// last-writer-wins, so the fold depends on iteration order.
func mergeInOrder(mg *sweep.Merger, snaps map[int]obs.Snapshot) {
	for i, s := range snaps { // want "contributes to a sweep.Merger"
		mg.Put(i, s)
	}
}

// gaugeInOrder leaves whichever entry the iterator visits last in the gauge.
func gaugeInOrder(g *obs.Gauge, m map[string]float64) {
	for _, v := range m { // want "sets an obs gauge"
		g.Set(v)
	}
}

// fieldRows appends through a struct field, which also outlives the loop.
type report struct {
	rows []row
}

func (r *report) fill(m map[string]float64) {
	for k, v := range m { // want "appends row records"
		r.rows = append(r.rows, row{Name: k, Value: v})
	}
}

// suppressed documents a deliberately order-dependent debug dump.
func suppressed(m map[string]int) {
	//lint:ignore maporder debug helper, output order is explicitly unspecified
	for k := range m {
		fmt.Println(k)
	}
}
