package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockFlow tracks mutex acquire/release balance through each function body:
// a Lock (or a call to a lock helper, resolved to any depth through the
// whole-program summary engine in fixpoint.go) must be matched by an
// Unlock — immediate or deferred — on every return path, and must not still be held when the
// function panics without a deferred unlock. Holding a lock across a
// blocking operation (channel send/receive, select, sweep.Run) is flagged
// too: the sweep engine's workers would serialize behind it, and a
// same-goroutine receive can deadlock outright. Copying a mutex by value —
// through a by-value receiver or parameter of a lock-bearing struct, or an
// explicit dereference copy — silently forks the lock state and is always
// reported.
//
// The analysis is a linear must-walk: branch bodies are walked with copied
// lock state and the continuing states unioned, loop bodies are examined
// with copied state that is discarded at the join (a lock balanced within
// one iteration stays balanced). A function whose body is nothing but
// lock-management statements — possibly through other such helpers — is a
// deliberate wrapper and is summarised for its callers instead of being
// flagged itself; the summaries are fixpoints, so a helper that wraps a
// helper that wraps a Lock still lands its effect at the outermost call
// site.
var LockFlow = &Analyzer{
	Name: "lockflow",
	ID:   "ML011",
	Doc:  "mutex Lock must be balanced by Unlock on every return and panic path, not held across blocking operations, and never copied by value",
	Run:  runLockFlow,
}

// lockState is the set of mutexes held at a program point, keyed by mutex
// identity, valued by the position of the acquiring call (where leaks are
// reported, so a function with three early returns yields one finding).
type lockState map[lockKey]token.Pos

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// lockWalker carries one function's walk. reported dedupes return-path
// leaks by acquiring position.
type lockWalker struct {
	p        *Pass
	pr       *Program
	diags    *[]Diagnostic
	reported map[token.Pos]bool
	// exemptLeaks suppresses return-path findings: set for lock-helper
	// wrappers, whose imbalance is the caller's to settle.
	exemptLeaks bool
}

// heldNames renders the held set for a message, deterministically.
func heldNames(held lockState, deferred map[lockKey]bool, skipDeferred bool) string {
	var names []string
	for k := range held {
		if skipDeferred && deferred[k] {
			continue
		}
		names = append(names, k.String())
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// blockingOp reports every lock held at a blocking operation. Deferred
// unlocks do not help here — the defer has not run yet.
func (w *lockWalker) blockingOp(held lockState, pos token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	*w.diags = append(*w.diags, w.p.diag("lockflow", pos,
		"%s held across %s: the critical section spans a blocking operation; release the lock first or move the operation out",
		heldNames(held, nil, false), what))
}

// atReturn reports locks still held at a return (explicit or the implicit
// one at the end of the body) that no deferred unlock covers. Findings
// anchor at the acquiring Lock call.
func (w *lockWalker) atReturn(held lockState, deferred map[lockKey]bool, retPos token.Pos) {
	if w.exemptLeaks {
		return
	}
	for key, lockPos := range held {
		if deferred[key] || w.reported[lockPos] {
			continue
		}
		w.reported[lockPos] = true
		ret := w.p.Fset.Position(retPos)
		*w.diags = append(*w.diags, w.p.diag("lockflow", lockPos,
			"%s.Lock() is never unlocked on the return path at line %d; unlock before returning or defer the unlock",
			key, ret.Line))
	}
}

// atPanic reports locks held at an explicit panic call. A deferred unlock
// runs during panicking, so it does cover this path.
func (w *lockWalker) atPanic(held lockState, deferred map[lockKey]bool, pos token.Pos) {
	names := heldNames(held, deferred, true)
	if names == "" {
		return
	}
	*w.diags = append(*w.diags, w.p.diag("lockflow", pos,
		"panic while holding %s with no deferred unlock: the lock stays held in any recovering caller",
		names))
}

// applyCall folds one call expression's lock effects into the state:
// direct sync.Mutex methods, summarised same-package helpers, and the
// blocking sweep.Run entry point.
func (w *lockWalker) applyCall(call *ast.CallExpr, held lockState, deferred map[lockKey]bool) {
	if key, acquire, ok := lockOp(w.p, call); ok {
		if acquire {
			held[key] = call.Pos()
		} else {
			delete(held, key)
		}
		return
	}
	if isSweepRunCall(w.p, call) {
		w.blockingOp(held, call.Pos(), "sweep.Run")
		return
	}
	if pf := w.p.progCallee(call); pf != nil && pf.sum != nil {
		for _, eff := range callSiteKeys(w.p, call, pf.sum) {
			if eff.acquire {
				held[eff.key] = call.Pos()
			} else {
				delete(held, eff.key)
			}
		}
	}
}

// applyDefer folds a defer statement into the deferred-unlock set: a direct
// deferred Unlock, a deferred release helper, or a deferred closure whose
// body unlocks.
func (w *lockWalker) applyDefer(st *ast.DeferStmt, deferred map[lockKey]bool) {
	if key, acquire, ok := lockOp(w.p, st.Call); ok {
		if !acquire {
			deferred[key] = true
		}
		return
	}
	if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, acquire, ok := lockOp(w.p, call); ok && !acquire {
					deferred[key] = true
				}
			}
			return true
		})
		return
	}
	if pf := w.p.progCallee(st.Call); pf != nil && pf.sum != nil {
		for _, eff := range callSiteKeys(w.p, st.Call, pf.sum) {
			if !eff.acquire {
				deferred[eff.key] = true
			}
		}
	}
}

// scanExpr walks an expression for lock-relevant events: calls (lock ops,
// helpers, sweep.Run) and blocking channel receives. Function literals are
// not descended into — their bodies run elsewhere and are analysed as
// independent functions by runLockFlow.
func (w *lockWalker) scanExpr(e ast.Expr, held lockState, deferred map[lockKey]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Arguments evaluate before the call itself takes effect.
			for _, arg := range x.Args {
				w.scanExpr(arg, held, deferred)
			}
			w.applyCall(x, held, deferred)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.blockingOp(held, x.Pos(), "channel receive")
			}
		}
		return true
	})
}

// block walks a statement list, mutating held and deferred in place, and
// reports whether every path through it terminates (returns or panics).
func (w *lockWalker) block(stmts []ast.Stmt, held lockState, deferred map[lockKey]bool) bool {
	for _, s := range stmts {
		if w.stmt(s, held, deferred) {
			return true
		}
	}
	return false
}

// branch walks one alternative on copied state; the caller merges.
func (w *lockWalker) branch(stmts []ast.Stmt, held lockState, deferred map[lockKey]bool) (lockState, map[lockKey]bool, bool) {
	h := held.clone()
	d := make(map[lockKey]bool, len(deferred))
	for k, v := range deferred {
		d[k] = v
	}
	term := w.block(stmts, h, d)
	return h, d, term
}

// merge replaces held/deferred with the union of the continuing branches —
// the conservative join: a lock possibly held continues to be tracked, so a
// later return without its unlock is still reported.
func merge(held lockState, deferred map[lockKey]bool, branches []lockState, defs []map[lockKey]bool) {
	for k := range held {
		delete(held, k)
	}
	for k := range deferred {
		delete(deferred, k)
	}
	for _, b := range branches {
		for k, pos := range b {
			if _, ok := held[k]; !ok {
				held[k] = pos
			}
		}
	}
	for _, d := range defs {
		for k := range d {
			deferred[k] = true
		}
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held lockState, deferred map[lockKey]bool) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if isPanicCall(w.p.Info, st.X) {
			w.atPanic(held, deferred, st.Pos())
			return true
		}
		w.scanExpr(st.X, held, deferred)
	case *ast.DeferStmt:
		w.applyDefer(st, deferred)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.scanExpr(r, held, deferred)
		}
		w.atReturn(held, deferred, st.Pos())
		return true
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.scanExpr(r, held, deferred)
		}
	case *ast.IncDecStmt:
		w.scanExpr(st.X, held, deferred)
	case *ast.SendStmt:
		w.scanExpr(st.Value, held, deferred)
		w.blockingOp(held, st.Pos(), "channel send")
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			w.scanExpr(arg, held, deferred)
		}
		// The goroutine body runs concurrently with its own lock state;
		// runLockFlow analyses every function literal independently.
	case *ast.BlockStmt:
		return w.block(st.List, held, deferred)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held, deferred)
		}
		w.scanExpr(st.Cond, held, deferred)
		var branches []lockState
		var defs []map[lockKey]bool
		hb, db, tb := w.branch(st.Body.List, held, deferred)
		if !tb {
			branches, defs = append(branches, hb), append(defs, db)
		}
		te := false
		if st.Else != nil {
			he, de, t := w.branch([]ast.Stmt{st.Else}, held, deferred)
			te = t
			if !te {
				branches, defs = append(branches, he), append(defs, de)
			}
		} else {
			branches, defs = append(branches, held.clone()), append(defs, cloneSet(deferred))
		}
		merge(held, deferred, branches, defs)
		return tb && st.Else != nil && te
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				w.stmt(sw.Init, held, deferred)
			}
			if sw.Tag != nil {
				w.scanExpr(sw.Tag, held, deferred)
			}
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			w.blockingOp(held, sw.Pos(), "select")
			body = sw.Body
		}
		var branches []lockState
		var defs []map[lockKey]bool
		hasDefault := false
		allTerm := true
		for _, c := range body.List {
			var list []ast.Stmt
			switch cc := c.(type) {
			case *ast.CaseClause:
				if cc.List == nil {
					hasDefault = true
				}
				list = cc.Body
			case *ast.CommClause:
				if cc.Comm == nil {
					hasDefault = true
				}
				list = cc.Body
			}
			h, d, term := w.branch(list, held, deferred)
			if !term {
				allTerm = false
				branches, defs = append(branches, h), append(defs, d)
			}
		}
		if !hasDefault {
			branches, defs = append(branches, held.clone()), append(defs, cloneSet(deferred))
		}
		if len(branches) > 0 {
			merge(held, deferred, branches, defs)
		}
		return hasDefault && allTerm && len(body.List) > 0
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held, deferred)
		}
		if st.Cond != nil {
			w.scanExpr(st.Cond, held, deferred)
		}
		// One iteration on copied state: in-loop findings (blocking ops
		// under an outer lock, returns while holding) still fire; a lock
		// balanced within the iteration leaves no residue at the join.
		w.branch(st.Body.List, held, deferred)
	case *ast.RangeStmt:
		w.scanExpr(st.X, held, deferred)
		w.branch(st.Body.List, held, deferred)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held, deferred)
	}
	return false
}

func cloneSet(m map[lockKey]bool) map[lockKey]bool {
	out := make(map[lockKey]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// walkFunc analyses one function body end to end, including the implicit
// return at the closing brace.
func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	held := lockState{}
	deferred := map[lockKey]bool{}
	if !w.block(body.List, held, deferred) {
		w.atReturn(held, deferred, body.Rbrace)
	}
}

// containsMutex reports whether t (a value of it, not a pointer to it)
// embeds lock state: sync.Mutex, sync.RWMutex, or a struct holding one.
func containsMutex(t types.Type) bool {
	return containsMutexDepth(t, 0)
}

func containsMutexDepth(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	if namedFrom(t, "sync", "Mutex") || namedFrom(t, "sync", "RWMutex") {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if containsMutexDepth(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}

// mutexCopies flags by-value receivers and parameters of lock-bearing
// types, and explicit dereference copies of lock-bearing structs.
func mutexCopies(p *Pass, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	checkFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok || !containsMutex(tv.Type) {
				continue
			}
			name := ""
			if len(field.Names) > 0 {
				name = field.Names[0].Name + " "
			}
			out = append(out, p.diag("lockflow", field.Pos(),
				"%s %scopies %s — and its mutex — by value; every call forks the lock state, so pass a pointer",
				what, name, types.TypeString(tv.Type, types.RelativeTo(p.Pkg))))
		}
	}
	checkFields(fd.Recv, "receiver")
	checkFields(fd.Type.Params, "parameter")
	if fd.Body == nil {
		return out
	}
	// Dereference copies: *p of a lock-bearing struct in a value context.
	// (*p).field selections are fine — no copy is made.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		star, ok := n.(*ast.StarExpr)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[star]
		if !ok || !tv.IsValue() || !containsMutex(tv.Type) {
			return true
		}
		// Climb out of parentheses: ((*p)).field is still a selection.
		pi := len(stack) - 2
		for pi >= 0 {
			if _, isParen := stack[pi].(*ast.ParenExpr); !isParen {
				break
			}
			pi--
		}
		if pi >= 0 {
			switch parent := stack[pi].(type) {
			case *ast.SelectorExpr:
				return true // (*p).field — a selection, not a copy
			case *ast.UnaryExpr:
				if parent.Op == token.AND {
					return true // &*p — re-taking the address, not a copy
				}
			case *ast.AssignStmt:
				for _, lhs := range parent.Lhs {
					if lhs == n {
						return true // *p = v writes through; the RHS copy is caught on its own visit
					}
				}
			}
		}
		out = append(out, p.diag("lockflow", star.Pos(),
			"dereferencing copies %s — and its mutex — by value; the copy's lock state is divorced from the original",
			types.TypeString(tv.Type, types.RelativeTo(p.Pkg))))
		return true
	})
	return out
}

func runLockFlow(p *Pass) []Diagnostic {
	if !p.internalPkg() {
		return nil
	}
	pr := p.flow()
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			out = append(out, mutexCopies(p, fd)...)
			if fd.Body == nil {
				continue
			}
			w := &lockWalker{p: p, pr: pr, diags: &out, reported: map[token.Pos]bool{}}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				if sum := pr.summaryOf(fn); sum != nil && sum.lockHelper {
					w.exemptLeaks = true
				}
			}
			w.walkFunc(fd.Body)
			// Function literals run in their own context (goroutines,
			// callbacks): each is analysed as an independent function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					lw := &lockWalker{p: p, pr: pr, diags: &out, reported: map[token.Pos]bool{}}
					lw.walkFunc(fl.Body)
					// Keep descending: nested literals are analysed on
					// their own visit (walkFunc never enters them).
				}
				return true
			})
		}
	}
	return out
}
