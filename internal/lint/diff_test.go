package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

// gitIn runs a git command in dir, failing the test on error. The scratch
// repositories these tests build are hermetic: identity and config come
// from the command line, never from the environment.
func gitIn(t *testing.T, dir string, args ...string) {
	t.Helper()
	base := []string{"-c", "user.name=test", "-c", "user.email=test@example.com"}
	cmd := exec.Command("git", append(base, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GIT_CONFIG_GLOBAL=/dev/null", "GIT_CONFIG_SYSTEM=/dev/null")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

func writeFileIn(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChangedFiles builds a scratch repository and checks that tracked
// modifications, new commits, and untracked files all surface against the
// initial ref, while ignored files do not.
func TestChangedFiles(t *testing.T) {
	root := t.TempDir()
	gitIn(t, root, "init", "-q", "-b", "main")
	writeFileIn(t, root, "a/a.go", "package a\n")
	writeFileIn(t, root, "b/b.go", "package b\n")
	writeFileIn(t, root, ".gitignore", "*.log\n")
	gitIn(t, root, "add", ".")
	gitIn(t, root, "commit", "-q", "-m", "seed")

	if files, err := ChangedFiles(root, "HEAD"); err != nil {
		t.Fatal(err)
	} else if len(files) != 0 {
		t.Fatalf("clean tree: ChangedFiles = %v, want none", files)
	}

	// A committed change, a working-tree change, an untracked file, and an
	// ignored file.
	writeFileIn(t, root, "a/a.go", "package a // v2\n")
	gitIn(t, root, "commit", "-qam", "touch a")
	writeFileIn(t, root, "b/b.go", "package b // dirty\n")
	writeFileIn(t, root, "c/new.go", "package c\n")
	writeFileIn(t, root, "debug.log", "noise\n")

	files, err := ChangedFiles(root, "HEAD~1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a/a.go", "b/b.go", "c/new.go"}
	if !reflect.DeepEqual(files, want) {
		t.Fatalf("ChangedFiles = %v, want %v", files, want)
	}

	if _, err := ChangedFiles(root, "no-such-ref"); err == nil {
		t.Fatal("ChangedFiles with a bad ref did not error")
	}
}

// TestPackagePatterns checks the file→pattern mapping: .go files map to
// their ./dir, the module root maps to ".", and testdata trees, non-Go
// files, and deleted directories are skipped.
func TestPackagePatterns(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{"internal/tlb", "internal/lint/testdata/src/fix", "cmd/x"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	files := []string{
		"main.go",                             // module root → "."
		"internal/tlb/set.go",                 // normal package
		"internal/tlb/set_test.go",            // same dir, deduplicated
		"internal/lint/testdata/src/fix/f.go", // fixture tree, skipped
		"cmd/x/main.go",                       // second package
		"README.md",                           // not Go
		"internal/gone/old.go",                // directory deleted
	}
	got := PackagePatterns(root, files)
	want := []string{".", "./cmd/x", "./internal/tlb"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PackagePatterns = %v, want %v", got, want)
	}
}

// TestTouchesGatePaths pins when a -diff run must also run the compiler
// gates: hot-path packages, root-level Go files (inline pins), and anything
// under internal/lint — including the baselines, which are not .go files.
func TestTouchesGatePaths(t *testing.T) {
	cases := []struct {
		files []string
		want  bool
	}{
		{[]string{"internal/tlb/set.go"}, true},            // hot-path package
		{[]string{"figure6.go"}, true},                     // root pin
		{[]string{"internal/lint/bce.baseline"}, true},     // baseline edit
		{[]string{"internal/lint/lockflow.go"}, true},      // analyzer edit
		{[]string{"internal/results/results.go"}, false},   // cold package
		{[]string{"README.md", "scripts/check.sh"}, false}, // no Go at all
		{nil, false},
	}
	for _, c := range cases {
		if got := TouchesGatePaths(c.files); got != c.want {
			t.Errorf("TouchesGatePaths(%v) = %v, want %v", c.files, got, c.want)
		}
	}
}
