// Package lint implements mosaiclint, the repository's static-analysis
// suite. It is built on the standard library only (go/ast, go/parser,
// go/types plus `go list` for export data) so it runs in the same
// dependency-free environment as the rest of the module.
//
// The analyzers encode repo-specific invariants that ordinary vet checks
// cannot know about:
//
//   - detrand:    internal packages must not call math/rand package
//     functions; randomness is injected as a seeded *rand.Rand
//     built by internal/rng (seed-reproducibility of results).
//   - nopanic:    library code panics only in constructors and config
//     validation, never on steady-state paths.
//   - cpfnbounds: raw integer→CPFN conversions and PFN arithmetic are
//     confined to internal/core and internal/alloc.
//   - errdrop:    error returns from the alloc, iceberg, and swap APIs
//     must not be silently discarded.
//   - obsnames:   constant metric names handed to internal/obs must be
//     lowercase dotted identifiers (the registry's grammar).
//   - maporder:   ranging over a map while emitting ordered output (result
//     slices, trace/obs writes, printing) would make results depend on map
//     iteration order; iterate a sorted key slice instead.
//   - sweepsafe:  closures handed to sweep.Run or go statements must not
//     write shared package- or struct-level state outside a lock set, nor
//     capture pre-loop variables that later iterations mutate.
//   - lockflow:   mutex Lock/Unlock balance is tracked through every
//     function, with helper calls resolved to any depth across the module:
//     a lock must be released on every return and panic path, never held
//     across a blocking operation, and never copied by value.
//   - ctxflow:    a function holding a context must propagate it rather
//     than minting context.Background(), and worker goroutine loops must
//     consult cancellation.
//   - narrowconv: uint64-derived values (PFNs, virtual addresses, refill
//     indices) must be masked, reduced, or bounds-checked before narrowing
//     to int/uint32-class types.
//   - dettaint:   nondeterministic values (wall clock, environment, the
//     global math/rand stream, select ordering, map iteration order) must
//     not flow — through any chain of calls, returns, or struct fields —
//     into results files, traces, or non-wall.* metrics.
//   - batchparity: a type implementing both trace.Sink and trace.BatchSink
//     must keep ProcessBatch and per-ref Access in the same side-effect
//     shape, and a trace.Batch must not be replayed per-ref through
//     Sink.Access when a batch-level delivery exists.
//   - goleak:     spawned goroutines must have a reachable cancellation or
//     done edge at some call depth.
//   - hotalloc:   a tree-level escape-analysis budget gate — heap-escape
//     sites in the hot-path packages are diffed against
//     internal/lint/escapes.baseline and regressions fail the run.
//   - bcegate:    a tree-level bounds-check gate — surviving bounds checks
//     reported by -d=ssa/check_bce in the hot-path packages are diffed
//     against internal/lint/bce.baseline.
//   - inlinegate: a tree-level inlining gate — the pinned hot functions in
//     InlinePins must stay inlinable, and cost growth against
//     internal/lint/inline.baseline is reported.
//
// The interprocedural analyzers (lockflow, ctxflow, narrowconv, dettaint,
// batchparity, goleak) share a whole-program engine: callgraph.go builds a
// module-wide call graph (static and interface-dispatch edges) and its
// Tarjan SCC condensation, and fixpoint.go computes bottom-up function
// summaries over it, iterating to fixpoint inside cycles over bounded
// lattices so termination holds by construction. See those files for the
// precision and termination contracts.
//
// Every analyzer has a stable diagnostic ID (ML001…), used as the rule ID
// in the machine-readable -json and -sarif output modes.
//
// A finding can be suppressed with a directive comment on the same line or
// the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore directives.
	Name string
	// ID is the analyzer's stable diagnostic identifier ("ML004"). IDs are
	// append-only: once published in JSON/SARIF output they are never
	// renumbered, so downstream suppressions and dashboards keyed on them
	// survive analyzer additions.
	ID string
	// Doc is a one-line description.
	Doc string
	// Run inspects the pass and returns its findings. Suppression by
	// directive is applied by the driver, not by Run. Nil for tree-level
	// checks (hotalloc) that do not operate on a single pass.
	Run func(*Pass) []Diagnostic
}

// All returns the per-package analyzer suite in output order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, NoPanic, CPFNBounds, ErrDrop, ObsNames, MapOrder, SweepSafe, LockFlow, CtxFlow, NarrowConv, DetTaint, BatchParity, GoLeak}
}

// Catalog returns every analyzer mosaiclint can report under, including
// the tree-level compiler gates, for -list output and SARIF rule metadata.
func Catalog() []*Analyzer {
	return append(All(), HotAlloc, BCEGate, InlineGate, directiveInfo)
}

// directiveInfo describes the pseudo-analyzer that reports malformed
// //lint:ignore directives.
var directiveInfo = &Analyzer{
	Name: "directive",
	ID:   "ML000",
	Doc:  "//lint:ignore directives must name an analyzer and carry a reason",
}

// A TextEdit is one byte-range replacement in a file, the unit of a
// suggested fix. Start and End are byte offsets into the file's current
// contents.
type TextEdit struct {
	Filename string
	Start    int
	End      int
	NewText  string
}

// A Fix is a mechanical rewrite that resolves a diagnostic. Fixes are
// advisory in the default text mode and applied by mosaiclint -fix.
type Fix struct {
	// Message describes the rewrite ("discard explicitly with _ =").
	Message string
	Edits   []TextEdit
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// ID is the stable identifier of the producing analyzer, stamped by the
	// driver (Pass.Run / RunAll) so individual analyzers never set it.
	ID      string
	Message string
	// Fix, when non-nil, is a mechanical rewrite that resolves the finding.
	Fix *Fix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass is one type-checked package presented to the analyzers.
type Pass struct {
	// ImportPath is the package's import path ("mosaic/internal/tlb").
	// Several rules scope themselves by path prefix.
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	ignores       map[ignoreKey]bool
	badDirectives []Diagnostic
	prog          *Program
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

var directiveRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// scanDirectives indexes every //lint:ignore comment in the pass and
// records malformed ones (missing reason) as findings.
func (p *Pass) scanDirectives() {
	p.ignores = make(map[ignoreKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					p.badDirectives = append(p.badDirectives, Diagnostic{
						Pos:      pos,
						Analyzer: directiveInfo.Name,
						ID:       directiveInfo.ID,
						Message:  fmt.Sprintf("//lint:ignore %s directive needs a reason", m[1]),
					})
					continue
				}
				p.ignores[ignoreKey{pos.Filename, pos.Line, m[1]}] = true
			}
		}
	}
}

// suppressed reports whether a directive covers the diagnostic: an ignore
// for its analyzer on the same line or the line above.
func (p *Pass) suppressed(d Diagnostic) bool {
	return p.ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		p.ignores[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

// diag builds a Diagnostic for an analyzer at a position in the pass.
func (p *Pass) diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// edit builds a TextEdit replacing the [pos, end) source range.
func (p *Pass) edit(pos, end token.Pos, text string) TextEdit {
	start := p.Fset.Position(pos)
	return TextEdit{
		Filename: start.Filename,
		Start:    start.Offset,
		End:      p.Fset.Position(end).Offset,
		NewText:  text,
	}
}

// Run applies one analyzer to the pass, stamps the analyzer's stable ID,
// and filters directive-suppressed findings.
func (p *Pass) Run(an *Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, d := range an.Run(p) {
		if !p.suppressed(d) {
			d.ID = an.ID
			out = append(out, d)
		}
	}
	return out
}

// SortDiagnostics orders diagnostics by position, then analyzer — the
// stable output order shared by every output mode.
func SortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAll applies every analyzer to every pass, appends malformed-directive
// findings, and returns the result sorted by position. The module call
// graph and its fixpoint summaries are built once, over all passes, before
// any analyzer runs.
func RunAll(passes []*Pass, analyzers []*Analyzer) []Diagnostic {
	AttachProgram(passes, 0)
	var out []Diagnostic
	for _, p := range passes {
		out = append(out, p.badDirectives...)
		for _, an := range analyzers {
			out = append(out, p.Run(an)...)
		}
	}
	SortDiagnostics(out)
	return out
}

// internalPkg reports whether the pass is part of the module's internal
// library tree, where the library-discipline rules apply.
func (p *Pass) internalPkg() bool {
	return strings.HasPrefix(p.ImportPath, "mosaic/internal/")
}

// callee resolves the object a call expression invokes: a package function,
// a method, or nil for builtins, conversions, and indirect calls through
// function values.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// namedFrom reports whether t (after unwrapping aliases) is the named type
// pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
