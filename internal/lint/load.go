package lint

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"mosaic/internal/sweep"
)

// The loader type-checks packages without golang.org/x/tools: one
// `go list -deps -export` invocation compiles the dependency graph and
// reports the export-data file of every package, and a gc importer with a
// lookup function resolves imports from those files. Each non-dependency
// package in the listing becomes a Pass.
//
// Parsing and type-checking fan out across the repository's own sweep
// engine — packages are independent once export data exists, so each sweep
// point parses and checks one package with its own gc importer (the
// importer is not safe for concurrent use; the shared FileSet is). Results
// come back in submission-index order, so the pass list, and therefore
// every downstream diagnostic ordering, is identical at any worker count.

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export` over patterns and decodes the
// package stream.
func goList(patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ModuleRoot returns the main module's directory: the working directory
// for the hotalloc compiler run and the base against which the output
// modes relativize file paths.
func ModuleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %v\n%s", err, stderr.Bytes())
	}
	return string(bytes.TrimSpace(out)), nil
}

// exportLookup builds the importer lookup function over the export-data
// files `go list` reported.
func exportLookup(pkgs []listedPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newInfo allocates the types.Info maps the analyzers need.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// checkPkg parses and type-checks one listed package into a Pass, using a
// fresh importer so concurrent checks never share importer state.
func checkPkg(fset *token.FileSet, lookup func(string) (io.ReadCloser, error), p listedPkg) (*Pass, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
	}
	pass := &Pass{
		ImportPath: p.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}
	pass.scanDirectives()
	return pass, nil
}

// Load lists, parses, and type-checks the packages matching patterns
// (defaulting to ./... semantics is the caller's concern) and returns one
// Pass per matched package, in `go list` order regardless of parallelism.
// Dependencies are resolved from compiled export data, so Load needs no
// network and no third-party loader.
func Load(patterns []string) ([]*Pass, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	lookup := exportLookup(pkgs)
	var targets []listedPkg
	for _, p := range pkgs {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}
	return sweep.Run(context.Background(), targets,
		func(_ context.Context, _ int, p listedPkg) (*Pass, error) {
			return checkPkg(fset, lookup, p)
		},
		sweep.Options{Name: "lint load"})
}
