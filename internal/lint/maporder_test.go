package lint

import "testing"

func TestMapOrder(t *testing.T) {
	checkFixture(t, MapOrder, "maporder", "mosaic/internal/fixture")
}
