package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Nondeterminism taint. Sources are the operations whose value (or whose
// ordering) differs between two runs of the same seed: the wall clock, the
// process environment, the global math/rand stream, select/goroutine
// interleaving, and map iteration order. Sinks are the module's
// determinism surfaces — results.File metrics, trace writers and sinks,
// and obs registry instruments — which the workers=1≡N and scalar≡batch
// gates compare byte for byte. A tainted value reaching a sink is a
// reproducibility bug by construction.
//
// The flow is tracked per function (flow-insensitively, iterated to a
// local fixpoint), across calls through the summary fields retTaint /
// paramsToRet / paramSinks, and across the heap through the program-wide
// fieldTaint lattice ("pkg.Type.field" → mask), which is what catches the
// span pattern: time.Now stored into a struct field in one package, read
// and observed in another.

// A taintMask is a set of nondeterminism sources.
type taintMask uint8

const (
	taintWall taintMask = 1 << iota
	taintEnv
	taintRand
	taintSched
	taintMapOrder
)

// label names the highest-priority source in the mask for messages.
func (m taintMask) label() string {
	switch {
	case m&taintWall != 0:
		return "wall-clock"
	case m&taintEnv != 0:
		return "environment"
	case m&taintRand != 0:
		return "global math/rand"
	case m&taintSched != 0:
		return "goroutine/select-ordering"
	case m&taintMapOrder != 0:
		return "map-iteration-order"
	}
	return "nondeterministic"
}

// A taintVal is the abstract value of one expression: the nondeterminism
// it carries plus the set of parameter slots (bit s = slot s) it is
// derived from.
type taintVal struct {
	mask   taintMask
	params uint32
}

func (v taintVal) or(o taintVal) taintVal {
	return taintVal{v.mask | o.mask, v.params | o.params}
}

// taintSource classifies a call as a nondeterminism source.
func taintSource(p *Pass, call *ast.CallExpr) taintMask {
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return 0
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return taintWall
		}
	case "os":
		switch fn.Name() {
		case "Environ", "Getenv", "LookupEnv", "Hostname", "Getpid":
			return taintEnv
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the shared unseeded stream; a
		// method on an injected, seeded *rand.Rand is deterministic, and so
		// are the New*/constructor functions — their output is a pure
		// function of the seed they are handed.
		if strings.HasPrefix(fn.Name(), "New") {
			return 0
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return taintRand
		}
	}
	return 0
}

// A taintHit is one tainted value reaching a sink.
type taintHit struct {
	pos  token.Pos
	mask taintMask
	sink string
	// via names the module callee that carried the value to the sink, ""
	// for a direct sink call.
	via string
}

// taintScan is one function's local taint analysis: a flow-insensitive
// abstract state over the function's variables, iterated to a fixpoint,
// then swept once for sinks and returns.
type taintScan struct {
	c     *sumCtx
	p     *Pass
	fd    *ast.FuncDecl
	slots map[types.Object]int
	local map[types.Object]taintVal
	// sorted holds locals that were passed to a sort function; their
	// map-iteration-order taint is considered sanitised.
	sorted  map[types.Object]bool
	fields  map[string]taintMask // struct-field writes discovered
	// reads collects the field IDs whose global taint this scan consulted
	// (nil disables collection). The set is syntactic — which selections
	// the body contains — so one round's collection stays valid for every
	// later round's dirty-SCC check.
	reads   map[string]bool
	changed bool

	ret        taintVal
	paramSinks map[int]string
	hits       []taintHit
}

func newTaintScan(c *sumCtx, pf *progFunc) *taintScan {
	return &taintScan{
		c:          c,
		p:          pf.pass,
		fd:         pf.decl,
		slots:      slotIndex(pf.pass, pf.decl),
		local:      map[types.Object]taintVal{},
		sorted:     map[types.Object]bool{},
		fields:     map[string]taintMask{},
		paramSinks: map[int]string{},
	}
}

// run drives the local fixpoint, then the sink and return sweeps.
func (ts *taintScan) run() {
	for i := 0; i < 32; i++ {
		ts.changed = false
		ts.stmts()
		if !ts.changed {
			break
		}
	}
	ts.sinkSweep()
	ts.returnSweep()
}

// ident resolves an identifier to its object (use or definition).
func (ts *taintScan) ident(id *ast.Ident) types.Object {
	if obj := ts.p.Info.Uses[id]; obj != nil {
		return obj
	}
	return ts.p.Info.Defs[id]
}

// fieldID renders a field selection as the program-wide field key, or ""
// when the base type is not a named struct type.
func (ts *taintScan) fieldID(sel *ast.SelectorExpr) string {
	selection, ok := ts.p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	t := selection.Recv()
	for {
		if pt, ok := types.Unalias(t).(*types.Pointer); ok {
			t = pt.Elem()
			continue
		}
		break
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
}

// val computes the abstract value of an expression.
func (ts *taintScan) val(e ast.Expr) taintVal {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ts.ident(x)
		if obj == nil {
			return taintVal{}
		}
		v := ts.local[obj]
		if ts.sorted[obj] {
			v.mask &^= taintMapOrder
		}
		if slot, ok := ts.slots[obj]; ok && slot < 32 {
			v.params |= 1 << slot
		}
		return v
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := ts.p.Info.Uses[id].(*types.PkgName); isPkg {
				return taintVal{} // pkg.Name reference, not a data flow
			}
		}
		v := ts.val(x.X)
		if fid := ts.fieldID(x); fid != "" {
			v.mask |= ts.c.pr.fieldTaint[fid]
			if ts.reads != nil {
				ts.reads[fid] = true
			}
		}
		return v
	case *ast.CallExpr:
		return ts.callVal(x)
	case *ast.BinaryExpr:
		return ts.val(x.X).or(ts.val(x.Y))
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			// A bare channel receive: the value delivered is whatever the
			// sender computed; ordering effects surface through select.
			return taintVal{}
		}
		return ts.val(x.X)
	case *ast.StarExpr:
		return ts.val(x.X)
	case *ast.IndexExpr:
		return ts.val(x.X).or(ts.val(x.Index))
	case *ast.SliceExpr:
		return ts.val(x.X)
	case *ast.TypeAssertExpr:
		return ts.val(x.X)
	case *ast.CompositeLit:
		var v taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = v.or(ts.val(kv.Value))
				continue
			}
			v = v.or(ts.val(el))
		}
		return v
	case *ast.KeyValueExpr:
		return ts.val(x.Value)
	}
	return taintVal{}
}

// callArg pairs a call argument with the callee parameter slot it binds.
type callArg struct {
	slot int
	e    ast.Expr
}

// callArgs lists a call's receiver (slot 0) and arguments (slots 1..n).
func (ts *taintScan) callArgs(call *ast.CallExpr) []callArg {
	var out []callArg
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, isID := sel.X.(*ast.Ident); !isID || ts.p.Info.Uses[id] == nil || !isPkgName(ts.p.Info.Uses[id]) {
			out = append(out, callArg{0, sel.X})
		}
	}
	for i, a := range call.Args {
		out = append(out, callArg{i + 1, a})
	}
	return out
}

func isPkgName(obj types.Object) bool {
	_, ok := obj.(*types.PkgName)
	return ok
}

// callVal computes the abstract value a call returns.
func (ts *taintScan) callVal(call *ast.CallExpr) taintVal {
	if m := taintSource(ts.p, call); m != 0 {
		return taintVal{mask: m}
	}
	if tv, ok := ts.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return ts.val(call.Args[0]) // conversion
	}
	argUnion := func() taintVal {
		var v taintVal
		for _, as := range ts.callArgs(call) {
			v = v.or(ts.val(as.e))
		}
		return v
	}
	fn, ok := callee(ts.p.Info, call).(*types.Func)
	if !ok {
		return argUnion() // builtins and function values: pass-through
	}
	if sum := ts.c.forFunc(fn); sum != nil {
		v := taintVal{mask: sum.retTaint}
		for _, as := range ts.callArgs(call) {
			if as.slot < 32 && sum.paramsToRet&(1<<as.slot) != 0 {
				v = v.or(ts.val(as.e))
			}
		}
		return v
	}
	// Out-of-module call (stdlib etc.): conservative pass-through.
	return argUnion()
}

// stmts is one monotone pass over the body's statements.
func (ts *taintScan) stmts() {
	ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			ts.assign(x)
		case *ast.RangeStmt:
			ts.rangeAssign(x)
		case *ast.SelectStmt:
			ts.selectAssign(x)
		case *ast.CompositeLit:
			ts.composite(x)
		case *ast.ExprStmt:
			ts.sanitizer(x.X)
		}
		return true
	})
}

// assign folds one assignment into the abstract state.
func (ts *taintScan) assign(a *ast.AssignStmt) {
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			ts.assignOne(a.Lhs[i], ts.val(a.Rhs[i]))
		}
		return
	}
	var v taintVal
	for _, r := range a.Rhs {
		v = v.or(ts.val(r))
	}
	for _, l := range a.Lhs {
		ts.assignOne(l, v)
	}
}

func (ts *taintScan) assignOne(lhs ast.Expr, v taintVal) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := ts.ident(x)
		if obj == nil {
			return
		}
		nv := ts.local[obj].or(v)
		if nv != ts.local[obj] {
			ts.local[obj] = nv
			ts.changed = true
		}
	case *ast.SelectorExpr:
		// Map-iteration-order taint is an ordering property of the stream
		// being walked, not of the individual values: once a value is at
		// rest in a field, the hazard is whatever loop later reads it —
		// tracked where that loop runs. The other bits are value taints and
		// do persist.
		m := v.mask &^ taintMapOrder
		if fid := ts.fieldID(x); fid != "" && m != 0 {
			if ts.fields[fid]&m != m {
				ts.fields[fid] |= m
				ts.changed = true
			}
		}
	case *ast.IndexExpr:
		// Writing a tainted element taints the container — except that an
		// unordered container discharges ordering taint: map content is a
		// set, and ranging it later re-introduces the bit.
		if tv, ok := ts.p.Info.Types[x.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				v.mask &^= taintMapOrder
			}
		}
		if id, _ := selChain(x.X); id != nil {
			ts.assignOne(id, v)
		}
	case *ast.StarExpr:
		ts.assignOne(x.X, v)
	}
}

// rangeAssign taints range variables: a map range additionally carries
// iteration-order taint on both key and value streams.
func (ts *taintScan) rangeAssign(r *ast.RangeStmt) {
	v := ts.val(r.X)
	if tv, ok := ts.p.Info.Types[r.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			v.mask |= taintMapOrder
		}
	}
	if r.Key != nil {
		ts.assignOne(r.Key, v)
	}
	if r.Value != nil {
		ts.assignOne(r.Value, v)
	}
}

// selectAssign taints values received in a multi-way select: which arm ran
// first is scheduler-dependent.
func (ts *taintScan) selectAssign(s *ast.SelectStmt) {
	if len(s.Body.List) < 2 {
		return
	}
	for _, cl := range s.Body.List {
		comm, ok := cl.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		if a, ok := comm.Comm.(*ast.AssignStmt); ok {
			for _, l := range a.Lhs {
				ts.assignOne(l, taintVal{mask: taintSched})
			}
		}
	}
}

// composite records struct-literal field writes into the field lattice.
func (ts *taintScan) composite(cl *ast.CompositeLit) {
	tv, ok := ts.p.Info.Types[cl]
	if !ok {
		return
	}
	t := tv.Type
	if pt, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		t = pt.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	base := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
	record := func(field string, v taintVal) {
		m := v.mask &^ taintMapOrder // ordering taint stays with the stream
		if m == 0 || field == "" {
			return
		}
		fid := base + field
		if ts.fields[fid]&m != m {
			ts.fields[fid] |= m
			ts.changed = true
		}
	}
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, isID := kv.Key.(*ast.Ident); isID {
				record(id.Name, ts.val(kv.Value))
			}
			continue
		}
		if i < st.NumFields() {
			record(st.Field(i).Name(), ts.val(el))
		}
	}
}

// sanitizer recognises sort calls: a local handed to sort.X / slices.X has
// its map-iteration-order taint discharged — collect-then-sort is the
// sanctioned idiom for map-derived output.
func (ts *taintScan) sanitizer(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn, ok := callee(ts.p.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
		return
	}
	if id, _ := selChain(call.Args[0]); id != nil {
		if obj := ts.ident(id); obj != nil && !ts.sorted[obj] {
			ts.sorted[obj] = true
			ts.changed = true
		}
	}
}

// sinkDesc classifies a call as a determinism sink, returning a
// description and the value arguments whose taint matters. Instruments
// fetched from a registry under the reserved "wall." namespace are exempt:
// that namespace is the sanctioned telemetry plane for wall-clock data and
// is excluded from deterministic results by results.File.AddSnapshot.
func sinkDesc(p *Pass, call *ast.CallExpr) (string, []ast.Expr, bool) {
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil, false
	}
	rt := sig.Recv().Type()
	if pt, isPtr := rt.(*types.Pointer); isPtr {
		rt = pt.Elem()
	}
	named, ok := types.Unalias(rt).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", nil, false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	switch {
	case full == "mosaic/internal/results.File" && fn.Name() == "SetMetric" && len(call.Args) == 2:
		return "a results.File metric", call.Args[1:], true
	case full == "mosaic/internal/obs.Histogram" && fn.Name() == "Observe",
		full == "mosaic/internal/obs.Counter" && fn.Name() == "Add",
		full == "mosaic/internal/obs.Gauge" && (fn.Name() == "Set" || fn.Name() == "Add"):
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && wallInstrument(p, sel.X) {
			return "", nil, false
		}
		return "an obs registry instrument", call.Args, true
	case full == "mosaic/internal/trace.Writer" && fn.Name() == "Access",
		full == "mosaic/internal/trace.Sink" && fn.Name() == "Access":
		return "a trace sink", call.Args, true
	case full == "mosaic/internal/trace.BatchWriter" && (fn.Name() == "WriteBatch" || fn.Name() == "ProcessBatch"),
		full == "mosaic/internal/trace.BatchSink" && fn.Name() == "ProcessBatch":
		return "a trace batch sink", call.Args, true
	}
	return "", nil, false
}

// wallInstrument reports whether e is r.Histogram/Counter/Gauge(NAME) on an
// obs.Registry with a constant NAME in the reserved "wall." namespace.
func wallInstrument(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	fn, ok := callee(p.Info, call).(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Histogram", "Counter", "Gauge":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if pt, isPtr := rt.(*types.Pointer); isPtr {
		rt = pt.Elem()
	}
	if !namedFrom(rt, "mosaic/internal/obs", "Registry") {
		return false
	}
	tv, ok := p.Info.Types[call.Args[0]]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.String &&
		strings.HasPrefix(constant.StringVal(tv.Value), "wall.")
}

// sinkSweep scans for tainted values reaching sinks — directly, or through
// a module callee whose summary says a parameter reaches one.
func (ts *taintScan) sinkSweep() {
	ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// Direct map write into results.File.Metrics.
			for i, lhs := range x.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
				if !ok || ts.fieldID(sel) != "mosaic/internal/results.File.Metrics" {
					continue
				}
				v := ts.val(ix.Index)
				if i < len(x.Rhs) {
					v = v.or(ts.val(x.Rhs[i]))
				}
				ts.record(ix.Pos(), v, "a results.File metric", "")
			}
		case *ast.CallExpr:
			ts.sinkCall(x)
		}
		return true
	})
}

func (ts *taintScan) record(pos token.Pos, v taintVal, sink, via string) {
	if v.mask != 0 {
		ts.hits = append(ts.hits, taintHit{pos: pos, mask: v.mask, sink: sink, via: via})
	}
	for slot := 0; slot < 32; slot++ {
		if v.params&(1<<slot) != 0 {
			if _, taken := ts.paramSinks[slot]; !taken {
				ts.paramSinks[slot] = sink
			}
		}
	}
}

func (ts *taintScan) sinkCall(call *ast.CallExpr) {
	if desc, args, ok := sinkDesc(ts.p, call); ok {
		for _, a := range args {
			ts.record(a.Pos(), ts.val(a), desc, "")
		}
		return
	}
	fn, ok := callee(ts.p.Info, call).(*types.Func)
	if !ok {
		return
	}
	sum := ts.c.forFunc(fn)
	if sum == nil || len(sum.paramSinks) == 0 {
		return
	}
	for _, as := range ts.callArgs(call) {
		desc, sinks := sum.paramSinks[as.slot]
		if !sinks {
			continue
		}
		ts.record(as.e.Pos(), ts.val(as.e), desc, funcID(fn))
	}
}

// returnSweep unions the abstract values of every return expression.
func (ts *taintScan) returnSweep() {
	ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				ts.ret = ts.ret.or(ts.val(r))
			}
		}
		return true
	})
}

// fieldWrite is one discovered struct-field taint, ordered for the merge.
type fieldWrite struct {
	id   string
	mask taintMask
}

// taintSCCOut is one SCC's phase-2 result: the members' updated summaries
// (member order), the field writes they discovered (sorted by id), and the
// field IDs whose global taint the members consulted (sorted; the dirty-SCC
// scheduler in computeSummaries re-scans this SCC when one changes).
type taintSCCOut struct {
	sums   []*funcSummary
	fields []fieldWrite
	reads  []string
}

// taintSCC computes the taint summary fields for one SCC, iterating cyclic
// components against an overlay. Field writes are collected but NOT
// published here — the sequential merge in computeSummaries owns the
// global lattice, keeping the result independent of worker scheduling.
func (pr *Program) taintSCC(comp []*progFunc) *taintSCCOut {
	c := &sumCtx{pr: pr, overlay: map[*progFunc]*funcSummary{}}
	fields := map[string]taintMask{}
	reads := map[string]bool{}
	scanOne := func(pf *progFunc) *funcSummary {
		ts := newTaintScan(c, pf)
		ts.reads = reads
		ts.run()
		ns := *c.forNode(pf) // copy: core fields ride along unchanged
		ns.retTaint = ts.ret.mask
		ns.paramsToRet = ts.ret.params
		ns.paramSinks = ts.paramSinks
		for fid, m := range ts.fields {
			fields[fid] |= m
		}
		return &ns
	}
	if cyclic(comp) {
		for _, pf := range comp {
			cp := *pf.sum
			cp.retTaint = 0
			cp.paramsToRet = 0
			cp.paramSinks = map[int]string{}
			c.overlay[pf] = &cp
		}
		for iter := 0; iter < sccIterCap(len(comp)); iter++ {
			changed := false
			for _, pf := range comp {
				ns := scanOne(pf)
				if !taintEqual(c.overlay[pf], ns) {
					changed = true
				}
				c.overlay[pf] = ns
			}
			if !changed {
				break
			}
		}
	} else {
		c.overlay[comp[0]] = scanOne(comp[0])
	}
	out := &taintSCCOut{sums: make([]*funcSummary, len(comp))}
	for i, pf := range comp {
		out.sums[i] = c.overlay[pf]
	}
	ids := make([]string, 0, len(fields))
	for id := range fields {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		out.fields = append(out.fields, fieldWrite{id, fields[id]})
	}
	out.reads = make([]string, 0, len(reads))
	for id := range reads {
		out.reads = append(out.reads, id)
	}
	sort.Strings(out.reads)
	return out
}
