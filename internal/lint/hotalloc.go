package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"mosaic/internal/lint/gate"
)

// HotAlloc is the escape-analysis budget gate: it drives the compiler's
// own escape analysis (`go build -gcflags=-m`) over the designated
// hot-path packages, normalizes the heap-escape sites it reports, and
// diffs them against the checked-in baseline
// (internal/lint/escapes.baseline). A site that is new — or a site whose
// count grew — fails the run: that is a fresh heap allocation on a path
// the simulator executes once per memory reference, the exact class of
// regression the limitSink rewrite removed by hand.
//
// Sites are keyed as "file: message" with line numbers stripped, so
// vertical refactors do not churn the baseline; the per-site count still
// catches a second identical escape appearing in the same file. Sites that
// disappear never fail the gate — run mosaiclint -update-escapes to bank
// the improvement into the baseline.
//
// HotAlloc is tree-level (it shells out to the compiler rather than
// inspecting one pass), so its Run is nil and the driver invokes
// RunHotAlloc directly. The shared baseline-diff mechanics live in
// internal/lint/gate, which bcegate and inlinegate reuse.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	ID:   "ML008",
	Doc:  "heap-escape sites in the hot-path packages must not regress internal/lint/escapes.baseline",
}

// HotPathPackages are the build patterns the compiler gates drive with
// diagnostics enabled: the packages on the per-reference simulation path.
var HotPathPackages = []string{
	"./internal/memsim",
	"./internal/tlb",
	"./internal/cache",
	"./internal/iceberg",
	"./internal/trace",
	"./internal/workloads",
}

// EscapeBaselineFile is the checked-in baseline, relative to the module
// root.
const EscapeBaselineFile = "internal/lint/escapes.baseline"

// escapeLineRE matches one compiler diagnostic: file:line:col: message.
var escapeLineRE = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.+)$`)

// normalizeEscapes extracts heap-escape sites from `go build -gcflags=-m`
// output. Only allocation decisions count ("escapes to heap", "moved to
// heap"); inlining chatter and parameter-leak notes are ignored.
func normalizeEscapes(_ string, output []byte) (gate.Sites, error) {
	sites := make(gate.Sites)
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		key := m[1] + ": " + msg
		line, _ := strconv.Atoi(m[2])
		s := sites[key]
		s.Count++
		if s.Line == 0 || line < s.Line {
			s.Line = line
		}
		sites[key] = s
	}
	return sites, nil
}

// hotAllocGate builds the gate.Config for the escape budget over patterns.
func hotAllocGate(patterns []string) gate.Config {
	return gate.Config{
		Name:       HotAlloc.Name,
		BuildFlags: []string{"-gcflags=-m"},
		Patterns:   patterns,
		Normalize:  normalizeEscapes,
		Header: []string{
			"mosaiclint hotalloc escape baseline.",
			"One line per heap-escape site in the hot-path packages: count<TAB>file: message.",
			"Regenerate after a reviewed allocation change: go run ./cmd/mosaiclint -update-escapes",
		},
		UpdateFlag: "-update-escapes",
	}
}

// EscapeSites compiles patterns in dir with -gcflags=-m and returns the
// normalized heap-escape sites.
func EscapeSites(dir string, patterns []string) (gate.Sites, error) {
	return hotAllocGate(patterns).Compile(dir)
}

// FormatEscapeBaseline renders sites in the baseline file format.
func FormatEscapeBaseline(sites gate.Sites) []byte {
	return gate.Format(hotAllocGate(nil).Header, sites)
}

// ParseEscapeBaseline reads a baseline previously written by
// FormatEscapeBaseline.
func ParseEscapeBaseline(data []byte) (gate.Sites, error) {
	return gate.Parse(data)
}

// WriteEscapeBaseline regenerates the baseline file from the current tree.
func WriteEscapeBaseline(dir, path string, patterns []string) error {
	return hotAllocGate(patterns).Update(dir, path)
}

// escapeDiag renders one escape regression as a hotalloc diagnostic.
func escapeDiag(r gate.Regression) Diagnostic {
	file, msg, _ := strings.Cut(r.Key, ": ")
	detail := "not in baseline"
	if r.Known {
		detail = fmt.Sprintf("%d site(s), baseline has %d", r.Count, r.BaseCount)
	}
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: r.Line},
		Analyzer: HotAlloc.Name,
		ID:       HotAlloc.ID,
		Message: fmt.Sprintf("new heap escape on a hot path: %s (%s); keep the allocation off the per-reference path or update %s",
			msg, detail, EscapeBaselineFile),
	}
}

// DiffEscapes compares current sites against the baseline and returns one
// diagnostic per regression — a new site, or a site whose count grew —
// plus the list of baseline sites that no longer occur (improvements worth
// banking with -update-escapes; never a failure).
func DiffEscapes(baseline, current gate.Sites) (regressions []Diagnostic, removed []string) {
	reg, removed := gate.Diff(baseline, current)
	for _, r := range reg {
		regressions = append(regressions, escapeDiag(r))
	}
	return regressions, removed
}

// RunHotAlloc runs the full gate from the module root dir: compile the
// hot-path patterns, load the baseline at path, and diff. A missing
// baseline file is an error — the gate only means something against a
// reviewed reference point.
func RunHotAlloc(dir, path string, patterns []string) (regressions []Diagnostic, removed []string, err error) {
	res, err := hotAllocGate(patterns).Run(dir, path)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range res.Regressions {
		regressions = append(regressions, escapeDiag(r))
	}
	return regressions, res.Removed, nil
}
