package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotAlloc is the escape-analysis budget gate: it drives the compiler's
// own escape analysis (`go build -gcflags=-m`) over the designated
// hot-path packages, normalizes the heap-escape sites it reports, and
// diffs them against the checked-in baseline
// (internal/lint/escapes.baseline). A site that is new — or a site whose
// count grew — fails the run: that is a fresh heap allocation on a path
// the simulator executes once per memory reference, the exact class of
// regression the limitSink rewrite removed by hand.
//
// Sites are keyed as "file: message" with line numbers stripped, so
// vertical refactors do not churn the baseline; the per-site count still
// catches a second identical escape appearing in the same file. Sites that
// disappear never fail the gate — run mosaiclint -update-escapes to bank
// the improvement into the baseline.
//
// HotAlloc is tree-level (it shells out to the compiler rather than
// inspecting one pass), so its Run is nil and the driver invokes
// RunHotAlloc directly.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	ID:   "ML008",
	Doc:  "heap-escape sites in the hot-path packages must not regress internal/lint/escapes.baseline",
}

// HotPathPackages are the build patterns the gate compiles with escape
// diagnostics: the packages on the per-reference simulation path.
var HotPathPackages = []string{
	"./internal/memsim",
	"./internal/tlb",
	"./internal/cache",
	"./internal/iceberg",
}

// EscapeBaselineFile is the checked-in baseline, relative to the module
// root.
const EscapeBaselineFile = "internal/lint/escapes.baseline"

// An escapeSite aggregates identical normalized escape messages.
type escapeSite struct {
	// Count is how many distinct source positions report this site.
	Count int
	// Line is the first (lowest) line reporting it, for diagnostics.
	Line int
}

// escapeLineRE matches one compiler diagnostic: file:line:col: message.
var escapeLineRE = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.+)$`)

// parseEscapes extracts heap-escape sites from `go build -gcflags=-m`
// output. Only allocation decisions count ("escapes to heap", "moved to
// heap"); inlining chatter and parameter-leak notes are ignored.
func parseEscapes(output []byte) map[string]escapeSite {
	sites := make(map[string]escapeSite)
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		key := m[1] + ": " + msg
		line, _ := strconv.Atoi(m[2])
		s := sites[key]
		s.Count++
		if s.Line == 0 || line < s.Line {
			s.Line = line
		}
		sites[key] = s
	}
	return sites
}

// EscapeSites compiles patterns in dir with -gcflags=-m and returns the
// normalized heap-escape sites. The build cache replays compiler
// diagnostics, so repeated runs are cheap and need no forced rebuild.
func EscapeSites(dir string, patterns []string) (map[string]escapeSite, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, buf.Bytes())
	}
	return parseEscapes(buf.Bytes()), nil
}

// FormatEscapeBaseline renders sites in the baseline file format: one
// "count<TAB>site" line per site, sorted, with a self-describing header.
func FormatEscapeBaseline(sites map[string]escapeSite) []byte {
	keys := make([]string, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString("# mosaiclint hotalloc escape baseline.\n")
	b.WriteString("# One line per heap-escape site in the hot-path packages: count<TAB>file: message.\n")
	b.WriteString("# Regenerate after a reviewed allocation change: go run ./cmd/mosaiclint -update-escapes\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%d\t%s\n", sites[k].Count, k)
	}
	return b.Bytes()
}

// ParseEscapeBaseline reads a baseline previously written by
// FormatEscapeBaseline.
func ParseEscapeBaseline(data []byte) (map[string]escapeSite, error) {
	sites := make(map[string]escapeSite)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		count, site, ok := strings.Cut(line, "\t")
		n, err := strconv.Atoi(count)
		if !ok || err != nil || n <= 0 {
			return nil, fmt.Errorf("lint: escape baseline line %d: want count<TAB>site, got %q", lineno, line)
		}
		sites[site] = escapeSite{Count: n}
	}
	return sites, nil
}

// WriteEscapeBaseline regenerates the baseline file from the current tree.
func WriteEscapeBaseline(dir, path string, patterns []string) error {
	sites, err := EscapeSites(dir, patterns)
	if err != nil {
		return err
	}
	return os.WriteFile(path, FormatEscapeBaseline(sites), 0o644)
}

// sortedSiteKeys returns the site keys in lexical order, so every fold over
// an escape-site map is iteration-order independent.
func sortedSiteKeys(sites map[string]escapeSite) []string {
	keys := make([]string, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DiffEscapes compares current sites against the baseline and returns one
// diagnostic per regression — a new site, or a site whose count grew —
// plus the list of baseline sites that no longer occur (improvements worth
// banking with -update-escapes; never a failure).
func DiffEscapes(baseline, current map[string]escapeSite) (regressions []Diagnostic, removed []string) {
	for _, key := range sortedSiteKeys(current) {
		cur := current[key]
		base, known := baseline[key]
		if known && cur.Count <= base.Count {
			continue
		}
		file, msg, _ := strings.Cut(key, ": ")
		detail := "not in baseline"
		if known {
			detail = fmt.Sprintf("%d site(s), baseline has %d", cur.Count, base.Count)
		}
		regressions = append(regressions, Diagnostic{
			Pos:      token.Position{Filename: file, Line: cur.Line},
			Analyzer: HotAlloc.Name,
			ID:       HotAlloc.ID,
			Message: fmt.Sprintf("new heap escape on a hot path: %s (%s); keep the allocation off the per-reference path or update %s",
				msg, detail, EscapeBaselineFile),
		})
	}
	for _, key := range sortedSiteKeys(baseline) {
		if cur, ok := current[key]; !ok || cur.Count < baseline[key].Count {
			removed = append(removed, key)
		}
	}
	return regressions, removed
}

// RunHotAlloc runs the full gate from the module root dir: compile the
// hot-path patterns, load the baseline at path, and diff. A missing
// baseline file is an error — the gate only means something against a
// reviewed reference point.
func RunHotAlloc(dir, path string, patterns []string) (regressions []Diagnostic, removed []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: hotalloc baseline: %v (run mosaiclint -update-escapes to create it)", err)
	}
	baseline, err := ParseEscapeBaseline(data)
	if err != nil {
		return nil, nil, err
	}
	current, err := EscapeSites(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	regressions, removed = DiffEscapes(baseline, current)
	return regressions, removed, nil
}
