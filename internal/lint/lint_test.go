package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// Fixture harness: each analyzer has a directory under testdata/src holding
// one package of fixture files (the go tool ignores testdata, so fixtures
// never trip the real mosaiclint run). Files mark expected findings with
//
//	// want "substring"
//
// comments on the offending line. loadFixture type-checks the fixture under
// a synthetic import path — the path, not the on-disk location, is what the
// path-scoped rules see, so the same fixture can be loaded as an ordinary
// internal package or as an exempted one.

// loadFixture parses and type-checks testdata/src/<name> as one package
// with the given import path. Imports are resolved from real export data
// via go list, exactly as the production loader does.
func loadFixture(t *testing.T, name, importPath string) *Pass {
	t.Helper()
	return loadFixtureDir(t, filepath.Join("testdata", "src", name), importPath)
}

// loadFixtureDir is loadFixture over an explicit directory — the fix tests
// copy a fixture into a scratch dir so ApplyFixes can rewrite it.
func loadFixtureDir(t *testing.T, dir, importPath string) *Pass {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	if len(importSet) > 0 {
		var patterns []string
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		pkgs, err := goList(patterns)
		if err != nil {
			t.Fatal(err)
		}
		lookup = exportLookup(pkgs)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pass := &Pass{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}
	pass.scanDirectives()
	return pass
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file   string
	line   int
	substr string
}

// collectWants extracts the // want expectations from the fixture comments.
func collectWants(pass *Pass) []expectation {
	var out []expectation
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pass.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					out = append(out, expectation{pos.Filename, pos.Line, m[1]})
				}
			}
		}
	}
	return out
}

// checkFixture runs one analyzer over a fixture (with directive suppression
// applied, as the driver would) and verifies the findings match the want
// comments exactly.
func checkFixture(t *testing.T, an *Analyzer, name, importPath string) {
	t.Helper()
	pass := loadFixture(t, name, importPath)
	got := pass.Run(an)
	wants := collectWants(pass)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments; a fixture must contain at least one true positive", name)
	}
	used := make([]bool, len(wants))
	for _, d := range got {
		matched := false
		for i, w := range wants {
			if !used[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

// checkFixtureClean asserts the analyzer reports nothing for the fixture
// under the given import path (used for path-based exemptions).
func checkFixtureClean(t *testing.T, an *Analyzer, name, importPath string) {
	t.Helper()
	pass := loadFixture(t, name, importPath)
	for _, d := range pass.Run(an) {
		t.Errorf("unexpected diagnostic under %s: %s", importPath, d)
	}
}

// TestLoad exercises the production loader end to end on a real package.
func TestLoad(t *testing.T) {
	passes, err := Load([]string{"mosaic/internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 {
		t.Fatalf("got %d passes, want 1", len(passes))
	}
	p := passes[0]
	if p.ImportPath != "mosaic/internal/core" || p.Pkg.Name() != "core" {
		t.Fatalf("unexpected pass: %s (%s)", p.ImportPath, p.Pkg.Name())
	}
	if len(p.Files) == 0 {
		t.Fatal("pass has no files")
	}
}

// TestRunAllSorted checks diagnostics come out in position order.
func TestRunAllSorted(t *testing.T) {
	pass := loadFixture(t, "cpfnbounds", "mosaic/internal/fixture")
	diags := RunAll([]*Pass{pass}, All())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
