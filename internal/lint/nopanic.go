package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic enforces the library panic discipline: a package under internal/
// may panic while constructing or validating configuration — where a panic
// is a programming error at the call site, caught by the first test run —
// but never on a steady-state path, where the simulator may be hours into a
// trace. Steady-state failures must return errors.
//
// A panic call is accepted when any of the following holds:
//
//   - the enclosing function is a constructor or validator by name: the
//     name starts with "new" or "must" (case-insensitive), is "init", or
//     contains "validate";
//   - the enclosing function's doc comment mentions "panic", documenting
//     the panic as part of the function's contract;
//   - a //lint:ignore nopanic <reason> directive covers the call, marking
//     an internal invariant check whose failure means the data structure
//     itself is corrupt.
var NoPanic = &Analyzer{
	Name: "nopanic",
	ID:   "ML002",
	Doc:  "library packages panic only in constructors and validation, never on steady-state paths",
	Run:  runNoPanic,
}

// panicAllowedByName reports whether a function name marks construction or
// validation.
func panicAllowedByName(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "new") || strings.HasPrefix(l, "must") ||
		l == "init" || strings.Contains(l, "validate")
}

func runNoPanic(p *Pass) []Diagnostic {
	if !p.internalPkg() {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if panicAllowedByName(fd.Name.Name) {
				continue
			}
			docMentions := fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj, ok := p.Info.Uses[id]; !ok || obj != types.Universe.Lookup("panic") {
					return true // shadowed identifier, not the builtin
				}
				if docMentions {
					return true
				}
				out = append(out, p.diag("nopanic", call.Pos(),
					"steady-state panic in %s: return an error, document the panic in the doc comment, or mark an invariant check with //lint:ignore nopanic <reason>",
					fd.Name.Name))
				return true
			})
		}
	}
	return out
}
