package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SweepSafe guards the concurrency discipline the sweep engine's
// determinism argument rests on: points share no state, so the closures
// that run them must not smuggle shared state in through their captures.
// Three shapes are flagged:
//
//  1. A closure passed to sweep.Run or launched by a go statement that
//     assigns to a package-level variable without a Lock call earlier in
//     the closure body (the crude but effective lock-set approximation).
//  2. The same for field writes through a captured variable — struct-level
//     shared state. Index writes (out[i] = r) are deliberately exempt:
//     distinct-index writes are the engine's own result-collection idiom.
//  3. A sweep.Run closure that assigns to any captured local at all — a
//     cross-point accumulator makes the fold depend on completion order,
//     which is exactly what the engine exists to prevent. Accumulate by
//     returning per-point results instead.
//
// Additionally, a go-statement closure inside a loop must not capture a
// variable that was declared before the loop and is mutated by the loop
// (classic pre-Go-1.22 iteration sharing, still reproducible with
// `var i int; for i = 0; ...`): by the time the goroutine runs, the
// variable holds some later iteration's value.
var SweepSafe = &Analyzer{
	Name: "sweepsafe",
	ID:   "ML007",
	Doc:  "closures given to sweep.Run or go must not write shared state outside a lock set or capture loop-mutated variables",
	Run:  runSweepSafe,
}

// lockPositions collects the positions of calls to methods named Lock or
// RLock inside the closure, the lock-set approximation: a shared write is
// considered guarded when some Lock call precedes it in the closure body.
func lockPositions(body *ast.BlockStmt) []token.Pos {
	var locks []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			locks = append(locks, call.Pos())
		}
		return true
	})
	return locks
}

func guarded(locks []token.Pos, write token.Pos) bool {
	for _, l := range locks {
		if l < write {
			return true
		}
	}
	return false
}

// freeVar resolves id to a variable declared outside the closure, or nil.
func freeVar(p *Pass, fl *ast.FuncLit, id *ast.Ident) *types.Var {
	obj, ok := p.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return nil
	}
	if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
		return nil
	}
	return obj
}

// pkgLevel reports whether v is a package-level variable of this package.
func (p *Pass) pkgLevel(v *types.Var) bool {
	return v.Parent() == p.Pkg.Scope()
}

// sharedWrites inspects one candidate closure and reports unguarded writes
// to shared state. inSweepRun additionally bans writes to captured locals.
func sharedWrites(p *Pass, fl *ast.FuncLit, inSweepRun bool, ctx string) []Diagnostic {
	locks := lockPositions(fl.Body)
	var out []Diagnostic
	flag := func(target ast.Expr, pos token.Pos) {
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			v := freeVar(p, fl, t)
			if v == nil {
				return
			}
			switch {
			case p.pkgLevel(v):
				if !guarded(locks, pos) {
					out = append(out, p.diag("sweepsafe", pos,
						"%s writes package-level %s without holding a lock: shared state breaks the points-share-nothing determinism argument",
						ctx, t.Name))
				}
			case inSweepRun:
				if !guarded(locks, pos) {
					out = append(out, p.diag("sweepsafe", pos,
						"%s writes captured %s: a cross-point accumulator depends on completion order; return per-point results and fold them after sweep.Run",
						ctx, t.Name))
				}
			}
		case *ast.SelectorExpr:
			base := t.X
			for {
				if sel, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
					base = sel.X
					continue
				}
				break
			}
			id, ok := ast.Unparen(base).(*ast.Ident)
			if !ok {
				return
			}
			if v := freeVar(p, fl, id); v != nil && !guarded(locks, pos) {
				out = append(out, p.diag("sweepsafe", pos,
					"%s writes %s.%s through a captured reference without holding a lock",
					ctx, id.Name, t.Sel.Name))
			}
		}
	}
	// Nested closures are walked too: they inherit the same capture set,
	// and freeVar's range check still distinguishes fl-local variables.
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if stmt.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range stmt.Lhs {
				flag(lhs, stmt.Pos())
			}
		case *ast.IncDecStmt:
			flag(stmt.X, stmt.Pos())
		}
		return true
	})
	return out
}

// loopCaptures flags variables the go-closure captures that were declared
// before the enclosing loop and are mutated by the loop itself.
func loopCaptures(p *Pass, fl *ast.FuncLit, loop ast.Node) []Diagnostic {
	// Variables the loop mutates outside the closure (includes a 3-clause
	// post statement; a `for i := 0` init declares i inside the loop node,
	// so per-iteration variables never qualify as pre-loop).
	mutated := map[*types.Var]bool{}
	ast.Inspect(loop, func(n ast.Node) bool {
		if n == fl {
			return false
		}
		record := func(e ast.Expr) {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok && v.Pos() < loop.Pos() {
					mutated[v] = true
				}
			}
		}
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(stmt.X)
		case *ast.RangeStmt:
			record(stmt.Key)
			record(stmt.Value)
		}
		return true
	})
	if len(mutated) == 0 {
		return nil
	}
	var out []Diagnostic
	seen := map[*types.Var]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := p.Info.Uses[id].(*types.Var); ok && mutated[v] && !seen[v] {
			seen[v] = true
			out = append(out, p.diag("sweepsafe", id.Pos(),
				"goroutine captures %s, which the enclosing loop mutates between iterations: pass it as an argument or declare it inside the loop",
				id.Name))
		}
		return true
	})
	return out
}

// enclosingLoop returns the innermost for/range statement in the stack.
func enclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		}
	}
	return nil
}

// isSweepRunCall reports whether call invokes sweep.Run.
func isSweepRunCall(p *Pass, call *ast.CallExpr) bool {
	fn, ok := callee(p.Info, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "mosaic/internal/sweep" && fn.Name() == "Run"
}

func runSweepSafe(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch stmt := n.(type) {
			case *ast.CallExpr:
				if !isSweepRunCall(p, stmt) {
					return true
				}
				for _, arg := range stmt.Args {
					if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						out = append(out, sharedWrites(p, fl, true, "closure passed to sweep.Run")...)
					}
				}
			case *ast.GoStmt:
				fl, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				out = append(out, sharedWrites(p, fl, false, "goroutine")...)
				if loop := enclosingLoop(stack[:len(stack)-1]); loop != nil {
					out = append(out, loopCaptures(p, fl, loop)...)
				}
			}
			return true
		})
	}
	return out
}
