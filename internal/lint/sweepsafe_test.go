package lint

import "testing"

func TestSweepSafe(t *testing.T) {
	checkFixture(t, SweepSafe, "sweepsafe", "mosaic/internal/fixture")
}
