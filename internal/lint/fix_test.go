package lint

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

// TestApplyFixes runs detrand and errdrop over a scratch copy of the
// fixapply fixture, applies every suggested fix, and compares the rewritten
// file to the checked-in golden: the detrand composite-generator rewrite
// (including the import swap) and both errdrop explicit-discard shapes.
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixapply", "fixapply.go"))
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "fixapply.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}
	pass := loadFixtureDir(t, dir, "mosaic/internal/fixture")
	diags := append(pass.Run(DetRand), pass.Run(ErrDrop)...)
	fixable := 0
	for _, d := range diags {
		if d.Fix != nil {
			fixable++
		}
	}
	if fixable != 3 {
		t.Fatalf("got %d fixable diagnostics, want 3 (detrand composite + two errdrops): %v", fixable, diags)
	}
	changed, applied, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || len(changed) != 1 {
		t.Fatalf("applied %d fixes across %v, want 3 in 1 file", applied, changed)
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "src", "fixapply", "fixapply.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fixed file diverges from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The fixed tree must lint clean: re-check the rewritten fixture.
	fixed := loadFixtureDir(t, dir, "mosaic/internal/fixture")
	if ds := append(fixed.Run(DetRand), fixed.Run(ErrDrop)...); len(ds) != 0 {
		t.Errorf("fixed fixture still has findings: %v", ds)
	}
}

// TestApplyFixesIdempotent pins the -fix contract the CLI relies on when it
// re-lints after fixing: a second fix pass over an already-fixed tree applies
// nothing and leaves every byte in place. Without this, -fix could oscillate
// between two rewrites and never converge.
func TestApplyFixesIdempotent(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixapply", "fixapply.go"))
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "fixapply.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}
	fixOnce := func() (applied int, bytes []byte) {
		t.Helper()
		pass := loadFixtureDir(t, dir, "mosaic/internal/fixture")
		_, applied, err := ApplyFixes(append(pass.Run(DetRand), pass.Run(ErrDrop)...))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		return applied, out
	}
	applied1, after1 := fixOnce()
	if applied1 == 0 {
		t.Fatal("first pass applied nothing; fixture carries no fixable findings")
	}
	applied2, after2 := fixOnce()
	if applied2 != 0 {
		t.Errorf("second pass applied %d fix(es); -fix is not a fixed point", applied2)
	}
	if string(after1) != string(after2) {
		t.Errorf("second pass changed bytes:\n--- first ---\n%s\n--- second ---\n%s", after1, after2)
	}
}
