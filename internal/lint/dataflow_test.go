package lint

import (
	"go/types"
	"testing"
)

// TestLockFlow pins the lockflow analyzer against its fixture: return- and
// panic-path leaks, blocking operations under a held lock, one-level helper
// see-through, and by-value mutex copies.
func TestLockFlow(t *testing.T) {
	checkFixture(t, LockFlow, "lockflow", "mosaic/internal/fixture")
}

// TestCtxFlow pins ctxflow: fresh contexts minted where a ctx is in scope
// and worker loops that never consult cancellation.
func TestCtxFlow(t *testing.T) {
	checkFixture(t, CtxFlow, "ctxflow", "mosaic/internal/fixture")
}

// TestNarrowConv pins narrowconv: unguarded uint64 narrowing versus the
// accepted guards (mask, dominating comparison, early exit, prior index,
// bounded helper).
func TestNarrowConv(t *testing.T) {
	checkFixture(t, NarrowConv, "narrowconv", "mosaic/internal/fixture")
}

// TestLockFlowSkipsExternalPackages: the rule is scoped to the internal
// tree, like the other library-discipline rules.
func TestLockFlowSkipsExternalPackages(t *testing.T) {
	checkFixtureClean(t, LockFlow, "lockflow", "example.com/external")
	checkFixtureClean(t, CtxFlow, "ctxflow", "example.com/external")
	checkFixtureClean(t, NarrowConv, "narrowconv", "example.com/external")
}

// summaryFor finds a function's summary by name in the pass's flow index.
func summaryFor(t *testing.T, p *Pass, name string) *funcSummary {
	t.Helper()
	fi := p.flow()
	for fn, fd := range fi.decls {
		if fd.Name.Name == name {
			return fi.summaries[fn]
		}
	}
	t.Fatalf("no declaration named %s in fixture", name)
	return nil
}

// TestSummaryLockHelpers pins the summary engine on the lockflow fixture:
// pure wrappers are recognised, their effects carry the right slot and
// path, and ordinary balanced functions summarise to nothing.
func TestSummaryLockHelpers(t *testing.T) {
	p := loadFixture(t, "lockflow", "mosaic/internal/fixture")

	lock := summaryFor(t, p, "lock")
	if !lock.lockHelper {
		t.Error("lock() not recognised as a lock helper")
	}
	if len(lock.effects) != 1 || !lock.effects[0].acquire ||
		lock.effects[0].slot != 0 || lock.effects[0].path != "mu" {
		t.Errorf("lock() effects = %+v, want one acquire of receiver field mu", lock.effects)
	}

	unlock := summaryFor(t, p, "unlock")
	if !unlock.lockHelper {
		t.Error("unlock() not recognised as a lock helper")
	}
	if len(unlock.effects) != 1 || unlock.effects[0].acquire {
		t.Errorf("unlock() effects = %+v, want one release", unlock.effects)
	}

	if s := summaryFor(t, p, "incDeferred"); len(s.effects) != 0 || s.lockHelper {
		t.Errorf("incDeferred summary = %+v, want balanced (no effects)", s)
	}

	// One-level contract: lockIndirect only calls a helper, so its own
	// summary is empty — the acquire does not propagate a second hop.
	if s := summaryFor(t, p, "lockIndirect"); len(s.effects) != 0 {
		t.Errorf("lockIndirect effects = %+v, want none (one-level contract)", s.effects)
	}

	// A package-level lock helper maps to slot -1 with the variable object.
	g := summaryFor(t, p, "globalHelperLock")
	if len(g.effects) != 1 || g.effects[0].slot != -1 || g.effects[0].obj == nil {
		t.Errorf("globalHelperLock effects = %+v, want one package-level acquire", g.effects)
	}
	if v, ok := g.effects[0].obj.(*types.Var); !ok || v.Name() != "globalMu" {
		t.Errorf("globalHelperLock effect obj = %v, want globalMu", g.effects[0].obj)
	}
}

// TestSummaryBounded pins the masked-return summary narrowconv relies on.
func TestSummaryBounded(t *testing.T) {
	p := loadFixture(t, "narrowconv", "mosaic/internal/fixture")
	if !summaryFor(t, p, "bounded").bounded {
		t.Error("bounded() not summarised as range-reduced")
	}
	if summaryFor(t, p, "raw").bounded {
		t.Error("raw() wrongly summarised as range-reduced")
	}
	// Multi-result and void functions can never be bounded.
	if summaryFor(t, p, "direct").bounded {
		t.Error("direct() (int result, unmasked) wrongly bounded")
	}
}

// TestFlowIndexCached: the flow index is built once per pass.
func TestFlowIndexCached(t *testing.T) {
	p := loadFixture(t, "lockflow", "mosaic/internal/fixture")
	if a, b := p.flow(), p.flow(); a != b {
		t.Error("flow() rebuilt the index instead of caching it")
	}
}
