package lint

import (
	"go/types"
	"testing"
)

// TestLockFlow pins the lockflow analyzer against its fixture: return- and
// panic-path leaks, blocking operations under a held lock, helpers resolved
// transitively at any depth, and by-value mutex copies.
func TestLockFlow(t *testing.T) {
	checkFixture(t, LockFlow, "lockflow", "mosaic/internal/fixture")
}

// TestCtxFlow pins ctxflow: fresh contexts minted where a ctx is in scope
// and worker loops that never consult cancellation.
func TestCtxFlow(t *testing.T) {
	checkFixture(t, CtxFlow, "ctxflow", "mosaic/internal/fixture")
}

// TestNarrowConv pins narrowconv: unguarded uint64 narrowing versus the
// accepted guards (mask, dominating comparison, early exit, prior index,
// bounded helper).
func TestNarrowConv(t *testing.T) {
	checkFixture(t, NarrowConv, "narrowconv", "mosaic/internal/fixture")
}

// TestLockFlowSkipsExternalPackages: the rule is scoped to the internal
// tree, like the other library-discipline rules.
func TestLockFlowSkipsExternalPackages(t *testing.T) {
	checkFixtureClean(t, LockFlow, "lockflow", "example.com/external")
	checkFixtureClean(t, CtxFlow, "ctxflow", "example.com/external")
	checkFixtureClean(t, NarrowConv, "narrowconv", "example.com/external")
}

// summaryFor finds a function's fixpoint summary by name in the pass's
// program. Fixture functions are free-standing or methods; matching on the
// declared name is unambiguous within one fixture package.
func summaryFor(t *testing.T, p *Pass, name string) *funcSummary {
	t.Helper()
	pr := p.flow()
	for _, pf := range pr.funcs {
		if pf.pass == p && pf.decl.Name.Name == name {
			return pf.sum
		}
	}
	t.Fatalf("no declaration named %s in fixture", name)
	return nil
}

// TestSummaryLockHelpers pins the summary engine on the lockflow fixture:
// pure wrappers are recognised, their effects carry the right slot and
// path, and ordinary balanced functions summarise to nothing.
func TestSummaryLockHelpers(t *testing.T) {
	p := loadFixture(t, "lockflow", "mosaic/internal/fixture")

	lock := summaryFor(t, p, "lock")
	if !lock.lockHelper {
		t.Error("lock() not recognised as a lock helper")
	}
	if len(lock.effects) != 1 || !lock.effects[0].acquire ||
		lock.effects[0].slot != 0 || lock.effects[0].path != "mu" {
		t.Errorf("lock() effects = %+v, want one acquire of receiver field mu", lock.effects)
	}

	unlock := summaryFor(t, p, "unlock")
	if !unlock.lockHelper {
		t.Error("unlock() not recognised as a lock helper")
	}
	if len(unlock.effects) != 1 || unlock.effects[0].acquire {
		t.Errorf("unlock() effects = %+v, want one release", unlock.effects)
	}

	if s := summaryFor(t, p, "incDeferred"); len(s.effects) != 0 || s.lockHelper {
		t.Errorf("incDeferred summary = %+v, want balanced (no effects)", s)
	}

	// Fixpoint contract: lockIndirect's body is nothing but a call to the
	// lock() helper, so it is itself a helper and the acquire propagates
	// through it — callers a second hop out still see the lock land.
	indirect := summaryFor(t, p, "lockIndirect")
	if !indirect.lockHelper {
		t.Error("lockIndirect not recognised as a transitive lock helper")
	}
	if len(indirect.effects) != 1 || !indirect.effects[0].acquire ||
		indirect.effects[0].slot != 1 || indirect.effects[0].path != "mu" {
		t.Errorf("lockIndirect effects = %+v, want the folded acquire of parameter c's field mu", indirect.effects)
	}

	// A package-level lock helper maps to slot -1 with the variable object.
	g := summaryFor(t, p, "globalHelperLock")
	if len(g.effects) != 1 || g.effects[0].slot != -1 || g.effects[0].obj == nil {
		t.Errorf("globalHelperLock effects = %+v, want one package-level acquire", g.effects)
	}
	if v, ok := g.effects[0].obj.(*types.Var); !ok || v.Name() != "globalMu" {
		t.Errorf("globalHelperLock effect obj = %v, want globalMu", g.effects[0].obj)
	}
}

// TestSummaryBounded pins the masked-return summary narrowconv relies on.
func TestSummaryBounded(t *testing.T) {
	p := loadFixture(t, "narrowconv", "mosaic/internal/fixture")
	if !summaryFor(t, p, "bounded").bounded {
		t.Error("bounded() not summarised as range-reduced")
	}
	if summaryFor(t, p, "raw").bounded {
		t.Error("raw() wrongly summarised as range-reduced")
	}
	// Multi-result and void functions can never be bounded.
	if summaryFor(t, p, "direct").bounded {
		t.Error("direct() (int result, unmasked) wrongly bounded")
	}
}

// TestFlowIndexCached: the program is built once per pass set.
func TestFlowIndexCached(t *testing.T) {
	p := loadFixture(t, "lockflow", "mosaic/internal/fixture")
	if a, b := p.flow(), p.flow(); a != b {
		t.Error("flow() rebuilt the program instead of caching it")
	}
}
