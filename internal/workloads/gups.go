package workloads

import (
	"mosaic/internal/rng"
	"mosaic/internal/trace"
)

// GUPSConfig parameterizes the GUPS workload.
type GUPSConfig struct {
	// TargetBytes sizes the table. Ignored if TableWords is set.
	TargetBytes uint64
	// TableWords is the table length (rounded down to a power of two).
	TableWords int
	// Updates is the number of read-modify-write updates (default
	// 2× TableWords; the HPCC benchmark uses 4×).
	Updates int
	// Seed drives the update sequence.
	Seed uint64
}

// GUPS is the paper's third workload: the HPCC RandomAccess microbenchmark.
// Every update XORs a pseudorandom value into a uniformly random table
// word, the worst case for every locality mechanism — the paper notes
// mosaic helps it least, "unsurprising, because GUPS is a synthetic
// benchmark designed to stress the system with extremely random memory
// accesses".
type GUPS struct {
	cfg   GUPSConfig
	arena *Arena
	table *U64Array
	mask  uint64
}

// NewGUPS builds the workload.
func NewGUPS(cfg GUPSConfig) *GUPS {
	if cfg.TableWords == 0 {
		if cfg.TargetBytes == 0 {
			cfg.TargetBytes = 32 << 20
		}
		cfg.TableWords = int(cfg.TargetBytes / 8)
	}
	// Round down to a power of two, as HPCC requires.
	w := 1
	for w*2 <= cfg.TableWords {
		w *= 2
	}
	cfg.TableWords = w
	if cfg.Updates == 0 {
		cfg.Updates = 2 * cfg.TableWords
	}
	g := &GUPS{cfg: cfg, arena: NewArena(0), mask: uint64(w - 1)}
	g.table = NewU64Array(g.arena, w)
	return g
}

// Name implements Workload.
func (g *GUPS) Name() string { return "gups" }

// FootprintBytes implements Workload.
func (g *GUPS) FootprintBytes() uint64 { return g.arena.Size() }

// TableWords is the (power-of-two) table length.
func (g *GUPS) TableWords() int { return g.cfg.TableWords }

// Run implements Workload. The update loop lives on the batch leg; the
// scalar path unrolls the same batches through the sink, so both legs emit
// the identical reference stream by construction.
func (g *GUPS) Run(sink trace.Sink) { g.RunBatches(trace.BatchSinkOf(sink)) }

// RunBatches implements trace.BatchRunner: the HPCC update loop. Each
// update is one load and one store of the same word (two TLB references,
// as the hardware would issue), packed into whole batches at generation
// time.
func (g *GUPS) RunBatches(sink trace.BatchSink) {
	b := trace.GetBatcher(sink)
	defer trace.PutBatcher(b)
	rnd := rng.Derive(g.cfg.Seed, 0x67757073) // "gups"
	for i := 0; i < g.cfg.Updates; i++ {
		r := rnd.Uint64()
		idx := int(r & g.mask)
		v := g.table.GetB(b, idx)
		g.table.SetB(b, idx, v^r)
	}
	b.Flush()
}

// Checksum XORs the whole table (test hook; does not emit references).
func (g *GUPS) Checksum() uint64 {
	var sum uint64
	for _, v := range g.table.Data {
		sum ^= v
	}
	return sum
}
