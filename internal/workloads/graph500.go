package workloads

import (
	"fmt"
	"math/rand"

	"mosaic/internal/rng"
	"mosaic/internal/trace"
)

// Graph500Config parameterizes the Graph500 workload.
type Graph500Config struct {
	// TargetBytes sizes the graph so the total footprint (edge list + CSR +
	// BFS state) lands near this. Ignored if Scale or Vertices is set.
	TargetBytes uint64
	// Scale is log2 of the vertex count (Graph500 SCALE). Zero derives the
	// vertex count from TargetBytes instead. The benchmark spec uses
	// power-of-two scales; TargetBytes sizing uses an exact vertex count
	// so footprint ladders (Tables 3/4) are not quantized to 2× steps.
	Scale int
	// Vertices sets the vertex count directly (overrides TargetBytes).
	Vertices int
	// EdgeFactor is edges per vertex (Graph500 default 16).
	EdgeFactor int
	// Roots is the number of BFS traversals (Graph500 runs 64; default 4
	// keeps simulation time proportionate).
	Roots int
	// Seed drives the Kronecker generator and root selection.
	Seed uint64
}

// Graph500 is the paper's first workload: the Graph500 benchmark in its
// seq-csr flavour — Kronecker (R-MAT) edge generation, CSR construction
// (kernel 1), and queue-based breadth-first search (kernel 2). Graph
// traversal is the canonical TLB-hostile pattern: pointer chasing over a
// working set far larger than TLB reach, with strong virtual locality in
// the CSR arrays but none in the visit order.
type Graph500 struct {
	cfg      Graph500Config
	arena    *Arena
	vertices int
	edges    int
	bits     int // R-MAT recursion depth: ceil(log2(vertices))

	// Simulated-heap arrays (Graph500 seq-csr layout).
	edgeSrc *U64Array // edge list, kernel-1 input
	edgeDst *U64Array
	xadj    *U64Array // CSR row offsets (V+1)
	adjncy  *U64Array // CSR adjacency (2E, both directions)
	parent  *U64Array // BFS tree
	queue   *U64Array // BFS frontier queue
}

// NewGraph500 builds the workload (allocating its simulated heap but not
// yet generating the graph; generation happens in Run and is part of the
// emitted reference stream, as in the real benchmark).
func NewGraph500(cfg Graph500Config) *Graph500 {
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 16
	}
	if cfg.Roots == 0 {
		cfg.Roots = 4
	}
	switch {
	case cfg.Vertices != 0:
		// explicit
	case cfg.Scale != 0:
		if cfg.Scale < 4 || cfg.Scale > 30 {
			panic(fmt.Sprintf("workloads: graph500 scale %d out of range [4,30]", cfg.Scale))
		}
		cfg.Vertices = 1 << cfg.Scale
	default:
		// Bytes per vertex: edge list 2×8×EF, adjncy 2×8×EF, xadj 8,
		// parent 8, queue 8.
		perVertex := uint64(cfg.EdgeFactor*32 + 24)
		if cfg.TargetBytes == 0 {
			cfg.TargetBytes = 32 << 20
		}
		if v := cfg.TargetBytes / perVertex; v < 1<<32 {
			cfg.Vertices = int(v)
		} else {
			// A 4G-vertex graph is far beyond any simulated footprint;
			// clamping keeps the narrowing safe for absurd targets.
			cfg.Vertices = 1 << 32
		}
	}
	if cfg.Vertices < 16 {
		cfg.Vertices = 16
	}
	g := &Graph500{cfg: cfg, arena: NewArena(0)}
	g.vertices = cfg.Vertices
	for 1<<g.bits < g.vertices {
		g.bits++
	}
	g.edges = g.vertices * cfg.EdgeFactor
	g.edgeSrc = NewU64Array(g.arena, g.edges)
	g.edgeDst = NewU64Array(g.arena, g.edges)
	g.xadj = NewU64Array(g.arena, g.vertices+1)
	g.adjncy = NewU64Array(g.arena, 2*g.edges)
	g.parent = NewU64Array(g.arena, g.vertices)
	g.queue = NewU64Array(g.arena, g.vertices)
	return g
}

// Name implements Workload.
func (g *Graph500) Name() string { return "graph500" }

// FootprintBytes implements Workload.
func (g *Graph500) FootprintBytes() uint64 { return g.arena.Size() }

// Vertices is the vertex count (2^Scale).
func (g *Graph500) Vertices() int { return g.vertices }

// Run implements Workload. The kernels live on the batch leg; the scalar
// path unrolls the same batches through the sink, so both legs emit the
// identical reference stream by construction.
func (g *Graph500) Run(sink trace.Sink) { g.RunBatches(trace.BatchSinkOf(sink)) }

// RunBatches implements trace.BatchRunner: edge generation, kernel 1 (CSR
// construction), then Roots× kernel 2 (BFS), emitted in whole batches.
func (g *Graph500) RunBatches(sink trace.BatchSink) {
	b := trace.GetBatcher(sink)
	defer trace.PutBatcher(b)
	rnd := rng.Derive(g.cfg.Seed, 0x6772617068353030) // "graph500"
	g.generateEdges(b, rnd)
	g.buildCSR(b)
	for r := 0; r < g.cfg.Roots; r++ {
		root := rnd.Intn(g.vertices)
		g.bfs(b, root)
	}
	b.Flush()
}

// rmatParams are the standard Graph500 Kronecker probabilities.
const (
	rmatA = 0.57
	rmatB = 0.19
	rmatC = 0.19
	// rmatD = 0.05 (implicit remainder)
)

// generateEdges fills the edge list with R-MAT samples, writing each edge
// endpoint to the simulated heap. Endpoints ≥ the vertex count (possible
// when it is not a power of two) are rejected and resampled.
func (g *Graph500) generateEdges(sink *trace.Batcher, rng *rand.Rand) {
	for i := 0; i < g.edges; i++ {
		var src, dst int
		for {
			src, dst = 0, 0
			for bit := g.bits - 1; bit >= 0; bit-- {
				p := rng.Float64()
				switch {
				case p < rmatA:
					// top-left: no bits set
				case p < rmatA+rmatB:
					dst |= 1 << bit
				case p < rmatA+rmatB+rmatC:
					src |= 1 << bit
				default:
					src |= 1 << bit
					dst |= 1 << bit
				}
			}
			if src < g.vertices && dst < g.vertices {
				break
			}
		}
		g.edgeSrc.SetB(sink, i, uint64(src))
		g.edgeDst.SetB(sink, i, uint64(dst))
	}
}

// buildCSR is Graph500 kernel 1: degree counting, prefix sum, and edge
// scattering, all over the simulated heap. Each undirected edge is stored
// in both directions.
func (g *Graph500) buildCSR(sink *trace.Batcher) {
	// Degree count (into xadj[1..V]).
	for i := 0; i < g.edges; i++ {
		s := int(g.edgeSrc.GetB(sink, i))
		d := int(g.edgeDst.GetB(sink, i))
		g.xadj.SetB(sink, s+1, g.xadj.GetB(sink, s+1)+1)
		g.xadj.SetB(sink, d+1, g.xadj.GetB(sink, d+1)+1)
	}
	// Prefix sum.
	for v := 1; v <= g.vertices; v++ {
		g.xadj.SetB(sink, v, g.xadj.GetB(sink, v)+g.xadj.GetB(sink, v-1))
	}
	// Scatter, using parent[] as a temporary cursor array (as seq-csr does
	// with a scratch array).
	for v := 0; v < g.vertices; v++ {
		g.parent.SetB(sink, v, g.xadj.GetB(sink, v))
	}
	for i := 0; i < g.edges; i++ {
		s := int(g.edgeSrc.GetB(sink, i))
		d := int(g.edgeDst.GetB(sink, i))
		cs := g.parent.GetB(sink, s)
		g.adjncy.SetB(sink, g.adjOff(cs), uint64(d))
		g.parent.SetB(sink, s, cs+1)
		cd := g.parent.GetB(sink, d)
		g.adjncy.SetB(sink, g.adjOff(cd), uint64(s))
		g.parent.SetB(sink, d, cd+1)
	}
}

// adjOff converts a stored adjacency offset — a kernel-1 write cursor or an
// xadj prefix entry, both at most len(adjncy) — back to an int index.
// Offsets are in range by construction; it panics on a corrupted arena
// value rather than narrowing it silently.
func (g *Graph500) adjOff(x uint64) int {
	if x > uint64(g.adjncy.Len()) {
		panic(fmt.Sprintf("workloads: adjacency offset %d exceeds %d", x, g.adjncy.Len()))
	}
	return int(x)
}

// noParent marks unvisited vertices.
const noParent = ^uint64(0)

// bfs is Graph500 kernel 2: queue-based breadth-first search from root.
func (g *Graph500) bfs(sink *trace.Batcher, root int) {
	for v := 0; v < g.vertices; v++ {
		g.parent.SetB(sink, v, noParent)
	}
	g.parent.SetB(sink, root, uint64(root))
	g.queue.SetB(sink, 0, uint64(root))
	head, tail := 0, 1
	for head < tail {
		u := int(g.queue.GetB(sink, head))
		head++
		start := g.adjOff(g.xadj.GetB(sink, u))
		end := g.adjOff(g.xadj.GetB(sink, u+1))
		for k := start; k < end; k++ {
			v := int(g.adjncy.GetB(sink, k))
			if g.parent.GetB(sink, v) == noParent {
				g.parent.SetB(sink, v, uint64(u))
				g.queue.SetB(sink, tail, uint64(v))
				tail++
			}
		}
	}
}

// Validate checks BFS-tree invariants after a Run (test hook): every
// visited vertex's parent is itself visited, and the root is its own
// parent.
func (g *Graph500) Validate() error {
	visited := 0
	for v := 0; v < g.vertices; v++ {
		p := g.parent.Data[v]
		if p == noParent {
			continue
		}
		visited++
		if p >= uint64(g.vertices) {
			return fmt.Errorf("graph500: vertex %d has out-of-range parent %d", v, p)
		}
		if g.parent.Data[p] == noParent {
			return fmt.Errorf("graph500: vertex %d's parent %d is unvisited", v, p)
		}
	}
	if visited == 0 {
		return fmt.Errorf("graph500: BFS visited no vertices")
	}
	return nil
}
