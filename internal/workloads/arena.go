package workloads

import (
	"fmt"

	"mosaic/internal/trace"
)

// DefaultHeapBase is where workload arenas start — a heap-like address well
// above the zero page.
const DefaultHeapBase = 0x10000000

// Arena is a bump allocator over the simulated virtual address space: the
// workloads' stand-in for mmap/sbrk. It tracks only addresses; backing
// storage lives in ordinary Go slices owned by the emitting array types.
type Arena struct {
	base uint64
	next uint64
}

// NewArena creates an arena starting at base (DefaultHeapBase if zero).
func NewArena(base uint64) *Arena {
	if base == 0 {
		base = DefaultHeapBase
	}
	return &Arena{base: base, next: base}
}

// Alloc reserves size bytes aligned to align (a power of two, or Alloc
// panics; 0 means 8).
func (a *Arena) Alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("workloads: alignment %d not a power of two", align))
	}
	a.next = (a.next + align - 1) &^ (align - 1)
	va := a.next
	a.next += size
	return va
}

// Size is the total number of bytes reserved so far.
func (a *Arena) Size() uint64 { return a.next - a.base }

// U64Array is a uint64 array at a fixed simulated address; element reads
// and writes emit the corresponding data references.
type U64Array struct {
	VA   uint64
	Data []uint64
}

// NewU64Array allocates an n-element array in the arena.
func NewU64Array(a *Arena, n int) *U64Array {
	return &U64Array{VA: a.Alloc(uint64(n)*8, 8), Data: make([]uint64, n)}
}

// Addr is the address of element i.
func (arr *U64Array) Addr(i int) uint64 { return arr.VA + uint64(i)*8 }

// Get reads element i, emitting the reference.
func (arr *U64Array) Get(sink trace.Sink, i int) uint64 {
	sink.Access(arr.Addr(i), false)
	return arr.Data[i]
}

// Set writes element i, emitting the reference.
func (arr *U64Array) Set(sink trace.Sink, i int, v uint64) {
	sink.Access(arr.Addr(i), true)
	arr.Data[i] = v
}

// GetB is Get's batch leg: the reference is packed straight into the
// batcher's buffer, no interface dispatch until a batch fills.
func (arr *U64Array) GetB(b *trace.Batcher, i int) uint64 {
	b.Access(arr.Addr(i), false)
	return arr.Data[i]
}

// SetB is Set's batch leg.
func (arr *U64Array) SetB(b *trace.Batcher, i int, v uint64) {
	b.Access(arr.Addr(i), true)
	arr.Data[i] = v
}

// Len is the element count.
func (arr *U64Array) Len() int { return len(arr.Data) }

// F64Array is a float64 array at a fixed simulated address.
type F64Array struct {
	VA   uint64
	Data []float64
}

// NewF64Array allocates an n-element array in the arena.
func NewF64Array(a *Arena, n int) *F64Array {
	return &F64Array{VA: a.Alloc(uint64(n)*8, 8), Data: make([]float64, n)}
}

// Addr is the address of element i.
func (arr *F64Array) Addr(i int) uint64 { return arr.VA + uint64(i)*8 }

// Get reads element i, emitting the reference.
func (arr *F64Array) Get(sink trace.Sink, i int) float64 {
	sink.Access(arr.Addr(i), false)
	return arr.Data[i]
}

// Set writes element i, emitting the reference.
func (arr *F64Array) Set(sink trace.Sink, i int, v float64) {
	sink.Access(arr.Addr(i), true)
	arr.Data[i] = v
}

// GetB is Get's batch leg.
func (arr *F64Array) GetB(b *trace.Batcher, i int) float64 {
	b.Access(arr.Addr(i), false)
	return arr.Data[i]
}

// SetB is Set's batch leg.
func (arr *F64Array) SetB(b *trace.Batcher, i int, v float64) {
	b.Access(arr.Addr(i), true)
	arr.Data[i] = v
}

// Len is the element count.
func (arr *F64Array) Len() int { return len(arr.Data) }

// U32Array is a uint32 array at a fixed simulated address.
type U32Array struct {
	VA   uint64
	Data []uint32
}

// NewU32Array allocates an n-element array in the arena.
func NewU32Array(a *Arena, n int) *U32Array {
	return &U32Array{VA: a.Alloc(uint64(n)*4, 8), Data: make([]uint32, n)}
}

// Addr is the address of element i.
func (arr *U32Array) Addr(i int) uint64 { return arr.VA + uint64(i)*4 }

// Get reads element i, emitting the reference.
func (arr *U32Array) Get(sink trace.Sink, i int) uint32 {
	sink.Access(arr.Addr(i), false)
	return arr.Data[i]
}

// Set writes element i, emitting the reference.
func (arr *U32Array) Set(sink trace.Sink, i int, v uint32) {
	sink.Access(arr.Addr(i), true)
	arr.Data[i] = v
}

// GetB is Get's batch leg.
func (arr *U32Array) GetB(b *trace.Batcher, i int) uint32 {
	b.Access(arr.Addr(i), false)
	return arr.Data[i]
}

// SetB is Set's batch leg.
func (arr *U32Array) SetB(b *trace.Batcher, i int, v uint32) {
	b.Access(arr.Addr(i), true)
	arr.Data[i] = v
}

// Len is the element count.
func (arr *U32Array) Len() int { return len(arr.Data) }
