package workloads

import (
	"math/rand"
	"sort"

	"mosaic/internal/core"
	"mosaic/internal/rng"
	"mosaic/internal/trace"
)

// Sub-stream salts: the ASCII spellings "xsbench" and "lookups", preserving
// the seeding convention (and therefore the exact reference streams) of the
// pre-rng construction.
const (
	xsbenchGridSalt   = 0x787362656E6368
	xsbenchLookupSalt = 0x6C6F6F6B757073
)

// XSBenchConfig parameterizes the XSBench workload.
type XSBenchConfig struct {
	// TargetBytes sizes the unionized energy grid. Ignored if GridPoints
	// is set.
	TargetBytes uint64
	// Nuclides is the number of nuclides (XSBench's large problem uses 68
	// fuel nuclides plus cladding/moderator isotopes; default 68).
	Nuclides int
	// GridPoints is the number of energy gridpoints per nuclide.
	GridPoints int
	// Lookups is the number of macroscopic cross-section lookups.
	Lookups int
	// Seed drives energies and material sampling.
	Seed uint64
}

// XSBench is the paper's fourth workload: the Monte Carlo neutron-transport
// cross-section lookup kernel. Each lookup binary-searches the unionized
// energy grid, then gathers two bracketing gridpoints of cross-section data
// for every nuclide in the sampled material — a scatter of dependent reads
// across a multi-gigabyte (here scaled-down) table, which is what makes the
// real application TLB-bound.
type XSBench struct {
	cfg   XSBenchConfig
	arena *Arena

	unionized int // total unionized gridpoints = Nuclides × GridPoints

	egrid *F64Array // sorted unionized energies [unionized]
	index *U32Array // unionized → per-nuclide gridpoint index [unionized × Nuclides]
	grids *F64Array // per-nuclide data [Nuclides × GridPoints × xsValues]

	materials [][]int // nuclide lists per material
}

// xsValues is the number of cross-section channels per gridpoint (total,
// elastic, absorption, fission, nu-fission) plus the energy itself.
const xsValues = 6

// numMaterials matches XSBench's 12 reactor materials.
const numMaterials = 12

// NewXSBench builds the workload, including the (silent) initialization of
// the grids — XSBench times only the lookup kernel, so initialization does
// not emit references.
func NewXSBench(cfg XSBenchConfig) *XSBench {
	if cfg.Nuclides == 0 {
		cfg.Nuclides = 68
	}
	if cfg.GridPoints == 0 {
		if cfg.TargetBytes == 0 {
			cfg.TargetBytes = 32 << 20
		}
		// Bytes per gridpoint across all structures: index grid N×4 per
		// unionized point × N points per gridpoint, egrid N×8, data 48×N.
		per := uint64(cfg.Nuclides*cfg.Nuclides*4 + cfg.Nuclides*8 + cfg.Nuclides*48)
		cfg.GridPoints = int(cfg.TargetBytes / per)
		if cfg.GridPoints < 16 {
			cfg.GridPoints = 16
		}
	}
	x := &XSBench{cfg: cfg, arena: NewArena(0)}
	x.unionized = cfg.Nuclides * cfg.GridPoints
	x.egrid = NewF64Array(x.arena, x.unionized)
	x.index = NewU32Array(x.arena, x.unionized*cfg.Nuclides)
	x.grids = NewF64Array(x.arena, cfg.Nuclides*cfg.GridPoints*xsValues)
	if cfg.Lookups == 0 {
		// Enough lookups to sweep the index grid (the footprint's bulk)
		// several times — XSBench's particle counts similarly dwarf the
		// grid size.
		pages := int(x.arena.Size() >> core.PageShift)
		cfg.Lookups = 5 * pages
		if cfg.Lookups < 2*cfg.GridPoints {
			cfg.Lookups = 2 * cfg.GridPoints
		}
	}
	x.cfg = cfg
	x.initialize(rng.Derive(cfg.Seed, xsbenchGridSalt))
	return x
}

// initialize fills the grids the way XSBench's generate_grids does, without
// emitting references (XSBench measures only the lookup kernel). rnd drives
// grid energies and material composition.
func (x *XSBench) initialize(rnd *rand.Rand) {
	n, gp := x.cfg.Nuclides, x.cfg.GridPoints

	// Per-nuclide energy grids: sorted uniform randoms.
	nucEnergy := make([][]float64, n)
	for i := range nucEnergy {
		es := make([]float64, gp)
		for j := range es {
			es[j] = rnd.Float64()
		}
		sort.Float64s(es)
		nucEnergy[i] = es
		for j := 0; j < gp; j++ {
			base := (i*gp + j) * xsValues
			x.grids.Data[base] = es[j]
			for k := 1; k < xsValues; k++ {
				x.grids.Data[base+k] = rnd.Float64()
			}
		}
	}

	// Unionized grid: merge of all nuclide energies (here: concatenate and
	// sort, identical result).
	type point struct {
		e   float64
		nuc int
		idx int
	}
	pts := make([]point, 0, x.unionized)
	for i, es := range nucEnergy {
		for j, e := range es {
			pts = append(pts, point{e, i, j})
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].e < pts[b].e })
	// For each unionized point, record each nuclide's current gridpoint
	// index (the XSBench acceleration structure).
	cursor := make([]int, n)
	for u, p := range pts {
		x.egrid.Data[u] = p.e
		cursor[p.nuc] = p.idx
		for i := 0; i < n; i++ {
			x.index.Data[u*n+i] = uint32(cursor[i])
		}
	}

	// Materials: XSBench's 12 reactor materials with descending nuclide
	// counts (fuel is by far the largest).
	counts := []int{34, 27, 21, 21, 21, 21, 21, 9, 9, 5, 4, 4}
	x.materials = make([][]int, numMaterials)
	for m := range x.materials {
		c := counts[m]
		if c > n {
			c = n
		}
		perm := rnd.Perm(n)[:c]
		x.materials[m] = perm
	}
}

// Name implements Workload.
func (x *XSBench) Name() string { return "xsbench" }

// FootprintBytes implements Workload.
func (x *XSBench) FootprintBytes() uint64 { return x.arena.Size() }

// GridPoints is the per-nuclide gridpoint count.
func (x *XSBench) GridPoints() int { return x.cfg.GridPoints }

// Run implements Workload. The lookup kernel lives on the batch leg; the
// scalar path unrolls the same batches through the sink, so both legs emit
// the identical reference stream by construction.
func (x *XSBench) Run(sink trace.Sink) { x.RunBatches(trace.BatchSinkOf(sink)) }

// RunBatches implements trace.BatchRunner: the XSBench lookup kernel. Each
// lookup samples an energy and a material, binary-searches the unionized
// grid, and gathers the bracketing cross-section data of every nuclide in
// the material, emitted in whole batches.
func (x *XSBench) RunBatches(sink trace.BatchSink) {
	b := trace.GetBatcher(sink)
	defer trace.PutBatcher(b)
	rnd := rng.Derive(x.cfg.Seed, xsbenchLookupSalt)
	macro := make([]float64, xsValues-1)
	for i := 0; i < x.cfg.Lookups; i++ {
		e := rnd.Float64()
		mat := rnd.Intn(numMaterials)
		x.lookup(b, e, mat, macro)
	}
	b.Flush()
}

// lookup computes the macroscopic cross section for (energy, material).
func (x *XSBench) lookup(sink *trace.Batcher, e float64, mat int, macro []float64) {
	n, gp := x.cfg.Nuclides, x.cfg.GridPoints
	for k := range macro {
		macro[k] = 0
	}
	// Binary search the unionized energy grid, emitting each probe.
	lo, hi := 0, x.unionized
	for lo < hi {
		mid := (lo + hi) / 2
		if x.egrid.GetB(sink, mid) < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	u := lo
	if u >= x.unionized {
		u = x.unionized - 1
	}
	for _, nuc := range x.materials[mat] {
		// One index-grid read locates this nuclide's bracketing gridpoint.
		j := int(x.index.GetB(sink, u*n+nuc))
		j2 := j + 1
		if j2 >= gp {
			j2 = gp - 1
		}
		base1 := (nuc*gp + j) * xsValues
		base2 := (nuc*gp + j2) * xsValues
		e1 := x.grids.GetB(sink, base1)
		e2 := x.grids.GetB(sink, base2)
		f := 0.5
		if e2 != e1 {
			f = (e - e1) / (e2 - e1)
		}
		// Gather and interpolate all five cross-section channels.
		for k := 1; k < xsValues; k++ {
			lo := x.grids.GetB(sink, base1+k)
			hi := x.grids.GetB(sink, base2+k)
			macro[k-1] += lo + f*(hi-lo)
		}
	}
}
