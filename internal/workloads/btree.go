package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"mosaic/internal/core"
	"mosaic/internal/rng"
	"mosaic/internal/trace"
)

// BTreeConfig parameterizes the BTree workload.
type BTreeConfig struct {
	// TargetBytes sizes the tree. Ignored if Keys is set.
	TargetBytes uint64
	// Keys is the number of keys in the index.
	Keys int
	// Lookups is the number of random point lookups (default: Keys/2).
	Lookups int
	// Seed drives key generation and lookup order.
	Seed uint64
}

// BTree is the paper's second workload: random point lookups on a B+ tree
// index. Nodes are page-sized (4 KiB), so every level of a descent touches
// a different page — classic index behaviour with high virtual locality
// inside a node and none between nodes.
type BTree struct {
	cfg   BTreeConfig
	arena *Arena
	root  *bnode
	keys  []uint64
	depth int
}

// B+ tree node layout in the simulated heap (4 KiB per node):
//
//	offset 0:    header (count, flags)            16 bytes
//	offset 16:   keys[0..254)                     254 × 8 = 2032 bytes
//	offset 2048: children[0..255) or values       255 × 8 = 2040 bytes
//
// 16 + 2032 + 2040 = 4088 ≤ 4096.
const (
	btNodeSize    = core.PageSize
	btMaxKeys     = 254
	btHeaderSize  = 16
	btKeysOffset  = btHeaderSize
	btChildOffset = btKeysOffset + btMaxKeys*8
)

type bnode struct {
	va       uint64
	keys     []uint64
	children []*bnode // internal nodes
	values   []uint64 // leaves
	next     *bnode   // leaf chain
	leaf     bool
}

func (n *bnode) keyAddr(i int) uint64   { return n.va + btKeysOffset + uint64(i)*8 }
func (n *bnode) childAddr(i int) uint64 { return n.va + btChildOffset + uint64(i)*8 }

// NewBTree builds the workload. The tree itself is bulk-loaded during Run
// (emitting the build's reference stream), matching an index-build-then-
// query benchmark.
func NewBTree(cfg BTreeConfig) *BTree {
	if cfg.Keys == 0 {
		if cfg.TargetBytes == 0 {
			cfg.TargetBytes = 32 << 20
		}
		// Leaves hold ~255 keys in 4 KiB; internal overhead is ≈1/256.
		cfg.Keys = int(cfg.TargetBytes / btNodeSize * btMaxKeys)
	}
	if cfg.Keys < btMaxKeys {
		cfg.Keys = btMaxKeys
	}
	if cfg.Lookups == 0 {
		cfg.Lookups = cfg.Keys / 2
	}
	return &BTree{cfg: cfg, arena: NewArena(0)}
}

// Name implements Workload.
func (t *BTree) Name() string { return "btree" }

// FootprintBytes implements Workload. Before Run the value is an estimate;
// after Run it is exact.
func (t *BTree) FootprintBytes() uint64 {
	if t.root != nil {
		return t.arena.Size()
	}
	leaves := (t.cfg.Keys + btMaxKeys - 1) / btMaxKeys
	return uint64(leaves) * btNodeSize * 257 / 256
}

// Depth is the tree height after Run.
func (t *BTree) Depth() int { return t.depth }

// Run implements Workload. The build and lookup loops live on the batch
// leg; the scalar path unrolls the same batches through the sink, so both
// legs emit the identical reference stream by construction.
func (t *BTree) Run(sink trace.Sink) { t.RunBatches(trace.BatchSinkOf(sink)) }

// RunBatches implements trace.BatchRunner: bulk-load the index, then
// perform random point lookups, emitting whole batches.
func (t *BTree) RunBatches(sink trace.BatchSink) {
	b := trace.GetBatcher(sink)
	defer trace.PutBatcher(b)
	rnd := rng.Derive(t.cfg.Seed, 0x6274726565) // "btree"
	t.build(b, rnd)
	hits := 0
	for i := 0; i < t.cfg.Lookups; i++ {
		key := t.keys[rnd.Intn(len(t.keys))]
		if _, ok := t.lookup(b, key); ok {
			hits++
		}
	}
	if hits != t.cfg.Lookups {
		//lint:ignore nopanic lookups draw from t.keys, all of which were bulk-loaded into the tree
		panic(fmt.Sprintf("btree: %d/%d lookups found their key", hits, t.cfg.Lookups))
	}
	b.Flush()
}

// build bulk-loads the tree from sorted random keys, writing every slot of
// every node to the simulated heap.
func (t *BTree) build(sink *trace.Batcher, rng *rand.Rand) {
	keys := make([]uint64, 0, t.cfg.Keys)
	seen := make(map[uint64]bool, t.cfg.Keys)
	for len(keys) < t.cfg.Keys {
		k := rng.Uint64()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	t.keys = keys

	newNode := func(leaf bool) *bnode {
		return &bnode{va: t.arena.Alloc(btNodeSize, btNodeSize), leaf: leaf}
	}

	// Leaf level.
	var level []*bnode
	var prev *bnode
	for start := 0; start < len(keys); start += btMaxKeys {
		end := min(start+btMaxKeys, len(keys))
		n := newNode(true)
		for i, k := range keys[start:end] {
			sink.Access(n.keyAddr(i), true)
			n.keys = append(n.keys, k)
			sink.Access(n.childAddr(i), true)
			n.values = append(n.values, k^0xABCD)
		}
		if prev != nil {
			prev.next = n
		}
		prev = n
		level = append(level, n)
	}
	t.depth = 1

	// Internal levels: each parent spans up to btMaxKeys+1 children, keyed
	// by each child's smallest key (except the first).
	for len(level) > 1 {
		var up []*bnode
		for start := 0; start < len(level); start += btMaxKeys + 1 {
			end := min(start+btMaxKeys+1, len(level))
			n := newNode(false)
			for i, child := range level[start:end] {
				if i > 0 {
					sink.Access(n.keyAddr(i-1), true)
					n.keys = append(n.keys, minKey(child))
				}
				sink.Access(n.childAddr(i), true)
				n.children = append(n.children, child)
			}
			up = append(up, n)
		}
		level = up
		t.depth++
	}
	t.root = level[0]
}

func minKey(n *bnode) uint64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// Lookup performs one point lookup, emitting every node slot it reads.
// The probe sequence is generated on the batch leg and unrolled through
// the sink, so standalone lookups (the database example) emit exactly the
// references a batched run would.
func (t *BTree) Lookup(sink trace.Sink, key uint64) (uint64, bool) {
	b := trace.GetBatcher(trace.BatchSinkOf(sink))
	defer trace.PutBatcher(b)
	v, ok := t.lookup(b, key)
	b.Flush()
	return v, ok
}

// lookup is one point lookup on the batch leg: a binary-search probe
// sequence in each node plus the child-pointer read.
func (t *BTree) lookup(sink *trace.Batcher, key uint64) (uint64, bool) {
	n := t.root
	for {
		// Binary search for the upper bound of key among n.keys.
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			sink.Access(n.keyAddr(mid), false)
			if n.keys[mid] <= key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if n.leaf {
			// lo is one past the matching position if present.
			if lo > 0 && n.keys[lo-1] == key {
				sink.Access(n.childAddr(lo-1), false)
				return n.values[lo-1], true
			}
			return 0, false
		}
		sink.Access(n.childAddr(lo), false)
		n = n.children[lo]
	}
}

// RangeScan reads count consecutive keys starting at the smallest key ≥
// from, following the leaf chain (used by the database example).
func (t *BTree) RangeScan(sink trace.Sink, from uint64, count int) []uint64 {
	b := trace.GetBatcher(trace.BatchSinkOf(sink))
	defer trace.PutBatcher(b)
	out := t.rangeScan(b, from, count)
	b.Flush()
	return out
}

// rangeScan is RangeScan's batch leg.
func (t *BTree) rangeScan(sink *trace.Batcher, from uint64, count int) []uint64 {
	n := t.root
	for !n.leaf {
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			sink.Access(n.keyAddr(mid), false)
			if n.keys[mid] <= from {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		sink.Access(n.childAddr(lo), false)
		n = n.children[lo]
	}
	var out []uint64
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= from })
	for n != nil && len(out) < count {
		for ; i < len(n.keys) && len(out) < count; i++ {
			sink.Access(n.keyAddr(i), false)
			sink.Access(n.childAddr(i), false)
			out = append(out, n.values[i])
		}
		n = n.next
		i = 0
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
