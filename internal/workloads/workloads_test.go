package workloads

import (
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/trace"
)

func TestArenaAlloc(t *testing.T) {
	a := NewArena(0)
	v1 := a.Alloc(100, 0)
	if v1 != DefaultHeapBase {
		t.Fatalf("first alloc at %#x", v1)
	}
	v2 := a.Alloc(8, 0)
	if v2 != DefaultHeapBase+104 { // 100 rounded to 8
		t.Fatalf("second alloc at %#x", v2)
	}
	v3 := a.Alloc(10, 4096)
	if v3%4096 != 0 {
		t.Fatalf("page-aligned alloc at %#x", v3)
	}
	if a.Size() != v3+10-DefaultHeapBase {
		t.Fatalf("Size = %d", a.Size())
	}
}

func TestArenaBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad alignment should panic")
		}
	}()
	NewArena(0).Alloc(8, 3)
}

func TestU64ArrayEmitsAccesses(t *testing.T) {
	a := NewArena(0)
	arr := NewU64Array(a, 10)
	var rec trace.Recorder
	arr.Set(&rec, 3, 42)
	if got := arr.Get(&rec, 3); got != 42 {
		t.Fatalf("Get = %d", got)
	}
	if len(rec.Accesses) != 2 {
		t.Fatalf("%d accesses", len(rec.Accesses))
	}
	want := arr.VA + 24
	if rec.Accesses[0] != (trace.Access{VA: want, Write: true}) {
		t.Errorf("write access = %+v", rec.Accesses[0])
	}
	if rec.Accesses[1] != (trace.Access{VA: want, Write: false}) {
		t.Errorf("read access = %+v", rec.Accesses[1])
	}
}

func TestRegistryAndByName(t *testing.T) {
	ws := Registry(4<<20, 1)
	if len(ws) != 4 {
		t.Fatalf("registry has %d workloads", len(ws))
	}
	wantNames := Names()
	for i, w := range ws {
		if w.Name() != wantNames[i] {
			t.Errorf("workload %d = %q, want %q", i, w.Name(), wantNames[i])
		}
		byName, err := ByName(w.Name(), 4<<20, 1)
		if err != nil {
			t.Fatal(err)
		}
		if byName.Name() != w.Name() {
			t.Errorf("ByName(%q) mismatch", w.Name())
		}
	}
	if _, err := ByName("nope", 1<<20, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFootprintsNearTarget(t *testing.T) {
	const target = 8 << 20
	for _, w := range Registry(target, 7) {
		fp := w.FootprintBytes()
		if fp < target/4 || fp > target*2 {
			t.Errorf("%s: footprint %d MiB not near target %d MiB",
				w.Name(), fp>>20, target>>20)
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() []trace.Access {
				w, err := ByName(name, 1<<20, 99)
				if err != nil {
					t.Fatal(err)
				}
				var rec trace.Recorder
				w.Run(&rec)
				return rec.Accesses
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("access %d differs: %+v vs %+v", i, a[i], b[i])
				}
			}
			if len(a) == 0 {
				t.Fatal("workload emitted nothing")
			}
		})
	}
}

func TestAccessesWithinFootprint(t *testing.T) {
	for _, w := range Registry(1<<20, 3) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			lo := uint64(DefaultHeapBase)
			maxVA := uint64(0)
			w.Run(trace.SinkFunc(func(va uint64, write bool) {
				if va < lo {
					t.Fatalf("access %#x below heap base", va)
				}
				if va > maxVA {
					maxVA = va
				}
			}))
			// FootprintBytes is exact after Run; every access must fall
			// inside the reserved heap.
			if hi := lo + w.FootprintBytes(); maxVA >= hi {
				t.Errorf("max access %#x beyond heap end %#x", maxVA, hi)
			}
		})
	}
}

func TestGraph500BFSCorrect(t *testing.T) {
	g := NewGraph500(Graph500Config{Scale: 10, Seed: 5})
	g.Run(trace.Discard)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Vertices() != 1024 {
		t.Fatalf("Vertices = %d", g.Vertices())
	}
}

func TestGraph500TouchesManyPages(t *testing.T) {
	g := NewGraph500(Graph500Config{Scale: 12, Seed: 5})
	pages := map[core.VPN]bool{}
	g.Run(trace.SinkFunc(func(va uint64, _ bool) { pages[core.VPNOf(va)] = true }))
	// The CSR arrays alone span hundreds of pages at scale 12.
	if len(pages) < 256 {
		t.Errorf("graph500 touched only %d pages", len(pages))
	}
}

func TestBTreeLookupsFindKeys(t *testing.T) {
	bt := NewBTree(BTreeConfig{Keys: 10000, Lookups: 100, Seed: 3})
	bt.Run(trace.Discard) // panics internally if any lookup misses
	if bt.Depth() < 2 {
		t.Errorf("depth = %d, want a multi-level tree", bt.Depth())
	}
	// A lookup of an absent key must miss.
	if _, ok := bt.Lookup(trace.Discard, 0xDEADBEEF00000001); ok {
		// Astronomically unlikely to be a real key with seed 3.
		t.Error("lookup of absent key succeeded")
	}
}

func TestBTreeRangeScan(t *testing.T) {
	bt := NewBTree(BTreeConfig{Keys: 5000, Lookups: 1, Seed: 3})
	bt.Run(trace.Discard)
	got := bt.RangeScan(trace.Discard, 0, 1000)
	if len(got) != 1000 {
		t.Fatalf("RangeScan returned %d values", len(got))
	}
	// Values correspond to sorted keys.
	for i, v := range got {
		if v != bt.keys[i]^0xABCD {
			t.Fatalf("value %d = %#x, want %#x", i, v, bt.keys[i]^0xABCD)
		}
	}
	// Scan from the middle.
	mid := bt.keys[2500]
	got = bt.RangeScan(trace.Discard, mid, 10)
	if len(got) != 10 || got[0] != mid^0xABCD {
		t.Fatalf("mid scan = %v", got[:min(len(got), 3)])
	}
}

func TestBTreeNodesPageAligned(t *testing.T) {
	bt := NewBTree(BTreeConfig{Keys: 5000, Lookups: 1, Seed: 3})
	bt.Run(trace.Discard)
	var walk func(n *bnode)
	walk = func(n *bnode) {
		if n.va%core.PageSize != 0 {
			t.Fatalf("node at unaligned VA %#x", n.va)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(bt.root)
}

func TestGUPSUpdatesLand(t *testing.T) {
	g := NewGUPS(GUPSConfig{TableWords: 1 << 12, Updates: 1 << 14, Seed: 1})
	if g.TableWords() != 1<<12 {
		t.Fatalf("TableWords = %d", g.TableWords())
	}
	var c trace.Counter
	g.Run(&c)
	if c.Reads != 1<<14 || c.Writes != 1<<14 {
		t.Errorf("reads=%d writes=%d, want %d each", c.Reads, c.Writes, 1<<14)
	}
	if g.Checksum() == 0 {
		t.Error("table unchanged after updates")
	}
}

func TestGUPSPowerOfTwoRounding(t *testing.T) {
	g := NewGUPS(GUPSConfig{TableWords: 1000, Updates: 1, Seed: 1})
	if g.TableWords() != 512 {
		t.Errorf("TableWords = %d, want 512", g.TableWords())
	}
}

func TestXSBenchEmitsGatherPattern(t *testing.T) {
	x := NewXSBench(XSBenchConfig{GridPoints: 200, Nuclides: 16, Lookups: 50, Seed: 2})
	var rec trace.Recorder
	x.Run(&rec)
	if len(rec.Accesses) == 0 {
		t.Fatal("no accesses")
	}
	// Every access is a read (the lookup kernel is read-only).
	for _, a := range rec.Accesses {
		if a.Write {
			t.Fatal("XSBench lookup kernel should not write")
		}
	}
	// Each lookup costs at least log2(unionized) probes + per-nuclide reads.
	perLookup := float64(len(rec.Accesses)) / 50
	if perLookup < 20 {
		t.Errorf("only %.1f accesses per lookup", perLookup)
	}
}

func TestXSBenchEnergyGridSorted(t *testing.T) {
	x := NewXSBench(XSBenchConfig{GridPoints: 100, Nuclides: 8, Lookups: 1, Seed: 2})
	for i := 1; i < len(x.egrid.Data); i++ {
		if x.egrid.Data[i] < x.egrid.Data[i-1] {
			t.Fatalf("unionized grid unsorted at %d", i)
		}
	}
	// Index grid entries must be valid gridpoint indices.
	for _, v := range x.index.Data {
		if int(v) >= x.cfg.GridPoints {
			t.Fatalf("index entry %d out of range", v)
		}
	}
}

func BenchmarkGraph500Run(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGraph500(Graph500Config{Scale: 12, Seed: uint64(i)})
		g.Run(trace.Discard)
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	bt := NewBTree(BTreeConfig{Keys: 100000, Lookups: 1, Seed: 1})
	bt.Run(trace.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Lookup(trace.Discard, bt.keys[i%len(bt.keys)])
	}
}
