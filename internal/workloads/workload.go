// Package workloads reimplements the paper's four evaluation workloads
// (Table 2) — Graph500, BTree, GUPS, and XSBench — as real algorithms over
// real data structures laid out in a simulated virtual address space. Every
// data reference the algorithm performs is emitted into a trace.Sink, so
// the memory-system simulator sees the genuine access pattern of each
// workload (CSR graph traversal, B+-tree descent, uniform random updates,
// unionized-energy-grid search) at a footprint scaled to simulator speeds.
package workloads

import (
	"fmt"

	"mosaic/internal/trace"
)

// Workload is a runnable benchmark emitting its reference stream.
//
// Every workload in this package also implements trace.BatchRunner: the
// access-pattern loops emit through a pooled trace.Batcher, so whole
// trace.Batches — write bit packed at generation time — cross the sink
// boundary instead of one interface call per reference. The scalar Run is a
// thin delegate that unrolls those same batches through the sink
// (trace.BatchSinkOf), which makes the two legs emit the identical
// reference stream by construction: there is only one generation source.
type Workload interface {
	// Name is the workload's short name ("graph500", "btree", …).
	Name() string
	// FootprintBytes is the total simulated-heap footprint.
	FootprintBytes() uint64
	// Run executes the workload, emitting every data reference into sink.
	Run(sink trace.Sink)
}

// Every workload generates batch-natively; the replay harness dispatches on
// this capability.
var (
	_ trace.BatchRunner = (*Graph500)(nil)
	_ trace.BatchRunner = (*BTree)(nil)
	_ trace.BatchRunner = (*GUPS)(nil)
	_ trace.BatchRunner = (*XSBench)(nil)
	_ trace.BatchRunner = (*KVStore)(nil)
)

// Registry constructs the paper's four workloads at a common scale.
// footprintBytes is a target heap size; each constructor picks its natural
// parameters to land near it. seed makes runs reproducible.
func Registry(footprintBytes uint64, seed uint64) []Workload {
	return []Workload{
		NewGraph500(Graph500Config{TargetBytes: footprintBytes, Seed: seed}),
		NewBTree(BTreeConfig{TargetBytes: footprintBytes, Seed: seed}),
		NewGUPS(GUPSConfig{TargetBytes: footprintBytes, Seed: seed}),
		NewXSBench(XSBenchConfig{TargetBytes: footprintBytes, Seed: seed}),
	}
}

// ByName constructs one of the paper's workloads by name.
func ByName(name string, footprintBytes uint64, seed uint64) (Workload, error) {
	switch name {
	case "graph500":
		return NewGraph500(Graph500Config{TargetBytes: footprintBytes, Seed: seed}), nil
	case "btree":
		return NewBTree(BTreeConfig{TargetBytes: footprintBytes, Seed: seed}), nil
	case "gups":
		return NewGUPS(GUPSConfig{TargetBytes: footprintBytes, Seed: seed}), nil
	case "xsbench":
		return NewXSBench(XSBenchConfig{TargetBytes: footprintBytes, Seed: seed}), nil
	case "kvstore":
		// Extension beyond Table 2: the Redis-like key-value store from
		// the paper's motivation.
		return NewKVStore(KVStoreConfig{TargetBytes: footprintBytes, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q (want graph500, btree, gups, xsbench, or kvstore)", name)
	}
}

// Names lists the available workloads in the paper's order.
func Names() []string { return []string{"graph500", "btree", "gups", "xsbench"} }
