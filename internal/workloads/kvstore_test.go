package workloads

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/trace"
)

func TestKVStoreBasics(t *testing.T) {
	kv := NewKVStore(KVStoreConfig{Keys: 10000, Ops: 5000, Seed: 1})
	if kv.Name() != "kvstore" {
		t.Fatalf("Name = %q", kv.Name())
	}
	if kv.Keys() != 10000 {
		t.Fatalf("Keys = %d", kv.Keys())
	}
	var c trace.Counter
	kv.Run(&c)
	if c.Total() == 0 {
		t.Fatal("no accesses emitted")
	}
	// ~10% of ops are SETs; each writes ValueSize/64 lines.
	if c.Writes == 0 {
		t.Error("no writes despite SET fraction")
	}
	if c.Writes > c.Reads {
		t.Errorf("writes (%d) exceed reads (%d) at 90%% read fraction", c.Writes, c.Reads)
	}
}

func TestKVStoreByName(t *testing.T) {
	w, err := ByName("kvstore", 4<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	fp := w.FootprintBytes()
	if fp < 2<<20 || fp > 8<<20 {
		t.Errorf("footprint %d not near 4 MiB target", fp)
	}
	// Not part of the paper's Table 2 set.
	for _, n := range Names() {
		if n == "kvstore" {
			t.Error("kvstore listed among the paper's workloads")
		}
	}
}

func TestKVStoreDeterministic(t *testing.T) {
	run := func() []trace.Access {
		kv := NewKVStore(KVStoreConfig{Keys: 2000, Ops: 2000, Seed: 42})
		var rec trace.Recorder
		kv.Run(&rec)
		return rec.Accesses
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestKVStoreAccessesWithinHeap(t *testing.T) {
	kv := NewKVStore(KVStoreConfig{Keys: 5000, Ops: 5000, Seed: 3})
	lo := uint64(DefaultHeapBase)
	hi := lo + kv.FootprintBytes()
	kv.Run(trace.SinkFunc(func(va uint64, _ bool) {
		if va < lo || va >= hi {
			t.Fatalf("access %#x outside heap [%#x,%#x)", va, lo, hi)
		}
	}))
}

func TestKVStoreZipfSkew(t *testing.T) {
	// The hot key must be dramatically more popular than the median key.
	kv := NewKVStore(KVStoreConfig{Keys: 10000, Ops: 50000, Seed: 4})
	counts := map[core.VPN]int{}
	kv.Run(trace.SinkFunc(func(va uint64, _ bool) {
		counts[core.VPNOf(va)] = counts[core.VPNOf(va)] + 1
	}))
	// Zipf: a few pages should dominate the access counts.
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := total / len(counts)
	if max < 10*mean {
		t.Errorf("hottest page %d accesses vs mean %d: not skewed", max, mean)
	}
}

func TestZipfSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := newZipf(rng, 0.99, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		r := z.next()
		if r < 0 || r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 most popular; decreasing-ish by decade.
	if counts[0] < counts[10] || counts[10] < counts[100] {
		t.Errorf("zipf not decreasing: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	// Head heaviness: top 10% of keys take well over half the mass at s≈1.
	head := 0
	for _, c := range counts[:100] {
		head += c
	}
	if float64(head)/200000 < 0.5 {
		t.Errorf("top 10%% carries only %.1f%% of accesses", 100*float64(head)/200000)
	}
}

func TestZipfTinyN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3} {
		z := newZipf(rng, 0.99, n)
		for i := 0; i < 1000; i++ {
			if r := z.next(); r < 0 || r >= n {
				t.Fatalf("n=%d: rank %d out of range", n, r)
			}
		}
	}
}
