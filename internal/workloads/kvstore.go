package workloads

import (
	"math"
	"math/rand"

	"mosaic/internal/rng"
	"mosaic/internal/trace"
)

// KVStoreConfig parameterizes the key-value store workload.
type KVStoreConfig struct {
	// TargetBytes sizes the store. Ignored if Keys is set.
	TargetBytes uint64
	// Keys is the number of stored keys.
	Keys int
	// Ops is the number of operations (default 2× Keys).
	Ops int
	// ReadFraction is the share of GETs (default 0.9, a read-heavy cache).
	ReadFraction float64
	// ZipfS is the Zipf skew parameter (default 0.99, YCSB's default);
	// set to 1 exactly for ZipfS semantics s>1 per math/rand, values in
	// (0,1] use a bounded-zipf sampler.
	ZipfS float64
	// ValueSize is the stored value size in bytes (default 256).
	ValueSize int
	// Seed drives keys and the request stream.
	Seed uint64
}

// KVStore is a Redis-like in-memory key-value store: a chained hash table
// of string keys to heap-allocated values, driven by a Zipfian GET/SET
// mix. The paper's introduction motivates mosaic with exactly this class
// of system — Redis gains 29% from huge pages on unfragmented memory and
// loses the gain under fragmentation; a KV store's pointer-chasing bucket
// walks and scattered values are classic TLB stress.
//
// KVStore is an extension beyond the paper's four workloads (Table 2),
// provided because the public API makes adding workloads cheap and the
// scenario is the paper's own motivating example.
type KVStore struct {
	cfg   KVStoreConfig
	arena *Arena

	// Hash-table layout in the simulated heap:
	//   buckets: one 8-byte head pointer per bucket
	//   entries: per key, a node {next, keyhash, valptr} of 24 bytes
	//   values:  ValueSize bytes each, allocated from the heap
	buckets *U64Array
	// entryVA[i], valueVA[i] are the simulated addresses of entry/value i.
	entryVA []uint64
	valueVA []uint64
	// chain structure (Go-side mirrors of the simulated pointers)
	bucketHead []int32 // index of first entry, -1 if empty
	entryNext  []int32
	entryHash  []uint64
	numBuckets int
}

const (
	kvEntrySize = 24
	kvNextOff   = 0
	kvHashOff   = 8
	kvValOff    = 16
)

// NewKVStore builds the store and loads it (silently — the benchmark
// phase, like YCSB, measures the request stream).
func NewKVStore(cfg KVStoreConfig) *KVStore {
	if cfg.Keys == 0 {
		if cfg.TargetBytes == 0 {
			cfg.TargetBytes = 32 << 20
		}
		valueSize := cfg.ValueSize
		if valueSize == 0 {
			valueSize = 256
		}
		// Per key: value + entry + ~1.33 bucket bytes.
		cfg.Keys = int(cfg.TargetBytes / uint64(valueSize+kvEntrySize+11))
	}
	if cfg.Keys < 16 {
		cfg.Keys = 16
	}
	if cfg.Ops == 0 {
		cfg.Ops = 2 * cfg.Keys
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.9
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 0.99
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 256
	}
	kv := &KVStore{cfg: cfg, arena: NewArena(0)}
	kv.load()
	return kv
}

// load builds the table: buckets sized for load factor ~0.75, entries and
// values interleaved the way an allocator would place them.
func (kv *KVStore) load() {
	kv.numBuckets = 1
	for kv.numBuckets*3 < kv.cfg.Keys*4 {
		kv.numBuckets *= 2
	}
	kv.buckets = NewU64Array(kv.arena, kv.numBuckets)
	kv.bucketHead = make([]int32, kv.numBuckets)
	for i := range kv.bucketHead {
		kv.bucketHead[i] = -1
	}
	kv.entryVA = make([]uint64, kv.cfg.Keys)
	kv.valueVA = make([]uint64, kv.cfg.Keys)
	kv.entryNext = make([]int32, kv.cfg.Keys)
	kv.entryHash = make([]uint64, kv.cfg.Keys)

	rnd := rng.Derive(kv.cfg.Seed, 0x6B767374) // "kvst"
	for i := 0; i < kv.cfg.Keys; i++ {
		kv.entryVA[i] = kv.arena.Alloc(kvEntrySize, 8)
		kv.valueVA[i] = kv.arena.Alloc(uint64(kv.cfg.ValueSize), 16)
		kv.entryHash[i] = rnd.Uint64()
		b := int(kv.entryHash[i] & uint64(kv.numBuckets-1))
		kv.entryNext[i] = kv.bucketHead[b]
		kv.bucketHead[b] = int32(i)
	}
}

// Name implements Workload.
func (kv *KVStore) Name() string { return "kvstore" }

// FootprintBytes implements Workload.
func (kv *KVStore) FootprintBytes() uint64 { return kv.arena.Size() }

// Keys is the number of stored keys.
func (kv *KVStore) Keys() int { return kv.cfg.Keys }

// Run implements Workload. The request loop lives on the batch leg; the
// scalar path unrolls the same batches through the sink, so both legs emit
// the identical reference stream by construction.
func (kv *KVStore) Run(sink trace.Sink) { kv.RunBatches(trace.BatchSinkOf(sink)) }

// RunBatches implements trace.BatchRunner: a Zipf-distributed GET/SET
// stream, emitted in whole batches.
func (kv *KVStore) RunBatches(sink trace.BatchSink) {
	b := trace.GetBatcher(sink)
	defer trace.PutBatcher(b)
	rnd := rng.Derive(kv.cfg.Seed, 0x72657175657374) // "request"
	z := newZipf(rnd, kv.cfg.ZipfS, kv.cfg.Keys)
	for op := 0; op < kv.cfg.Ops; op++ {
		key := z.next()
		if rnd.Float64() < kv.cfg.ReadFraction {
			kv.get(b, key)
		} else {
			kv.set(b, key)
		}
	}
	b.Flush()
}

// get walks the key's bucket chain and reads the value.
func (kv *KVStore) get(sink *trace.Batcher, key int) {
	h := kv.entryHash[key]
	b := int(h & uint64(kv.numBuckets-1))
	sink.Access(kv.buckets.Addr(b), false) // bucket head pointer
	for e := kv.bucketHead[b]; e >= 0; e = kv.entryNext[e] {
		sink.Access(kv.entryVA[e]+kvHashOff, false) // compare hashes
		if kv.entryHash[e] != h {
			sink.Access(kv.entryVA[e]+kvNextOff, false) // follow chain
			continue
		}
		sink.Access(kv.entryVA[e]+kvValOff, false) // value pointer
		// Read the value, one cache line at a time.
		for off := 0; off < kv.cfg.ValueSize; off += 64 {
			sink.Access(kv.valueVA[e]+uint64(off), false)
		}
		return
	}
	//lint:ignore nopanic every key the request stream draws was inserted at build time and is never removed
	panic("kvstore: resident key not found in its chain")
}

// set walks the chain like get, then overwrites the value.
func (kv *KVStore) set(sink *trace.Batcher, key int) {
	h := kv.entryHash[key]
	b := int(h & uint64(kv.numBuckets-1))
	sink.Access(kv.buckets.Addr(b), false)
	for e := kv.bucketHead[b]; e >= 0; e = kv.entryNext[e] {
		sink.Access(kv.entryVA[e]+kvHashOff, false)
		if kv.entryHash[e] != h {
			sink.Access(kv.entryVA[e]+kvNextOff, false)
			continue
		}
		sink.Access(kv.entryVA[e]+kvValOff, false)
		for off := 0; off < kv.cfg.ValueSize; off += 64 {
			sink.Access(kv.valueVA[e]+uint64(off), true)
		}
		return
	}
	//lint:ignore nopanic every key the request stream draws was inserted at build time and is never removed
	panic("kvstore: resident key not found in its chain")
}

// zipf samples ranks 0..n-1 with Zipfian skew s. math/rand's Zipf requires
// s > 1; YCSB-style skews live at s ≈ 0.99, so we implement the bounded
// generalized-zipf inversion directly.
type zipf struct {
	rng  *rand.Rand
	n    int
	s    float64
	zeta float64 // normalization: sum 1/k^s
	half float64 // zeta(2)
	eta  float64
}

func newZipf(rng *rand.Rand, s float64, n int) *zipf {
	z := &zipf{rng: rng, n: n, s: s}
	for k := 1; k <= n; k++ {
		z.zeta += 1 / math.Pow(float64(k), s)
		if k == 2 {
			z.half = z.zeta
		}
	}
	if n == 1 {
		z.half = z.zeta
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-s)) / (1 - z.half/z.zeta)
	return z
}

// next returns a rank in [0, n), rank 0 most popular (Gray et al.'s
// quick-zipf used by YCSB).
func (z *zipf) next() int {
	u := z.rng.Float64()
	uz := u * z.zeta
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.s) {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, 1/(1-z.s)))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
