// Package pagetable implements the radix-tree page tables of §3.1 / Figure 5.
//
// Mosaic is compatible with any page-table organization; like the paper's
// prototype we keep the conventional multi-level radix tree and modify only
// the leaves: a vanilla leaf entry stores a PFN, a mosaic leaf entry stores
// a table of contents (one CPFN per sub-page of a mosaic page).
//
// Each table node occupies a (simulated) physical page; Walk reports the
// physical address of the entry read at every level, so the memory-system
// simulator can send page-table-walker traffic through the cache hierarchy
// exactly as gem5 does.
package pagetable

import (
	"fmt"

	"mosaic/internal/core"
)

// entrySize is the size of one page-table entry in bytes.
const entrySize = 8

// PAAllocator hands out physical base addresses for newly allocated
// page-table nodes.
type PAAllocator func(size uint64) uint64

// BumpAllocator returns a PAAllocator that carves node frames sequentially
// from base — a simple stand-in for the kernel's page-table page allocator.
func BumpAllocator(base uint64) PAAllocator {
	next := base
	return func(size uint64) uint64 {
		pa := next
		next += (size + core.PageSize - 1) &^ (core.PageSize - 1)
		return pa
	}
}

// radix is the shared multi-level structure; leaves hold T.
type radix[T any] struct {
	levelBits []int
	shifts    []uint
	allocPA   PAAllocator
	root      *node[T]
	leaves    int
}

type node[T any] struct {
	pa       uint64
	children []*node[T]
	values   []T
	present  []bool
}

func newRadix[T any](levelBits []int, allocPA PAAllocator) *radix[T] {
	if len(levelBits) < 1 {
		panic("pagetable: need at least one level")
	}
	total := 0
	for _, b := range levelBits {
		if b <= 0 || b > 20 {
			panic(fmt.Sprintf("pagetable: level width %d out of range", b))
		}
		total += b
	}
	if total > 57 {
		panic(fmt.Sprintf("pagetable: %d index bits exceed the key space", total))
	}
	if allocPA == nil {
		allocPA = BumpAllocator(1 << 40)
	}
	r := &radix[T]{levelBits: levelBits, allocPA: allocPA}
	// Precompute the right-shift for each level's index field.
	r.shifts = make([]uint, len(levelBits))
	shift := 0
	for i := len(levelBits) - 1; i >= 0; i-- {
		r.shifts[i] = uint(shift)
		shift += levelBits[i]
	}
	r.root = r.newNode(0)
	return r
}

func (r *radix[T]) newNode(level int) *node[T] {
	fanout := 1 << r.levelBits[level]
	n := &node[T]{pa: r.allocPA(uint64(fanout * entrySize))}
	if level == len(r.levelBits)-1 {
		n.values = make([]T, fanout)
		n.present = make([]bool, fanout)
	} else {
		n.children = make([]*node[T], fanout)
	}
	return n
}

func (r *radix[T]) index(key uint64, level int) int {
	return int(key>>r.shifts[level]) & (1<<r.levelBits[level] - 1)
}

// set installs value at key, creating intermediate nodes. It returns a
// pointer to the stored value.
func (r *radix[T]) set(key uint64, value T) *T {
	n := r.root
	for level := 0; level < len(r.levelBits)-1; level++ {
		idx := r.index(key, level)
		if n.children[idx] == nil {
			n.children[idx] = r.newNode(level + 1)
		}
		n = n.children[idx]
	}
	idx := r.index(key, len(r.levelBits)-1)
	if !n.present[idx] {
		n.present[idx] = true
		r.leaves++
	}
	n.values[idx] = value
	return &n.values[idx]
}

// lookup finds key without recording a walk path.
func (r *radix[T]) lookup(key uint64) (*T, bool) {
	n := r.root
	for level := 0; level < len(r.levelBits)-1; level++ {
		n = n.children[r.index(key, level)]
		if n == nil {
			return nil, false
		}
	}
	idx := r.index(key, len(r.levelBits)-1)
	if !n.present[idx] {
		return nil, false
	}
	return &n.values[idx], true
}

// walk finds key, appending the physical address of the entry read at each
// level to path (even for the levels reached before a translation failure,
// as a real walker would). It returns the value, presence, and path.
func (r *radix[T]) walk(key uint64, path []uint64) (*T, bool, []uint64) {
	n := r.root
	for level := 0; level < len(r.levelBits)-1; level++ {
		idx := r.index(key, level)
		path = append(path, n.pa+uint64(idx*entrySize))
		n = n.children[idx]
		if n == nil {
			return nil, false, path
		}
	}
	idx := r.index(key, len(r.levelBits)-1)
	path = append(path, n.pa+uint64(idx*entrySize))
	if !n.present[idx] {
		return nil, false, path
	}
	return &n.values[idx], true, path
}

// unset removes key, reporting whether it was present. Empty intermediate
// nodes are retained (as in a real kernel, which frees them lazily).
func (r *radix[T]) unset(key uint64) bool {
	n := r.root
	for level := 0; level < len(r.levelBits)-1; level++ {
		n = n.children[r.index(key, level)]
		if n == nil {
			return false
		}
	}
	idx := r.index(key, len(r.levelBits)-1)
	if !n.present[idx] {
		return false
	}
	n.present[idx] = false
	var zero T
	n.values[idx] = zero
	r.leaves--
	return true
}

// DefaultLevels is the x86-64-style 4-level split (9 bits per level) used
// by the paper's prototype, covering 36-bit VPNs.
var DefaultLevels = []int{9, 9, 9, 9}

// Vanilla is a conventional radix page table mapping VPN → PFN.
type Vanilla struct {
	r *radix[core.PFN]
}

// NewVanilla creates a vanilla page table. levelBits may be nil for
// DefaultLevels; allocPA may be nil for a bump allocator at 1<<40.
func NewVanilla(levelBits []int, allocPA PAAllocator) *Vanilla {
	if levelBits == nil {
		levelBits = DefaultLevels
	}
	return &Vanilla{r: newRadix[core.PFN](levelBits, allocPA)}
}

// Levels is the number of radix levels (walk memory accesses).
func (t *Vanilla) Levels() int { return len(t.r.levelBits) }

// Len is the number of mapped pages.
func (t *Vanilla) Len() int { return t.r.leaves }

// Set maps vpn to pfn.
func (t *Vanilla) Set(vpn core.VPN, pfn core.PFN) { t.r.set(uint64(vpn), pfn) }

// Unset removes vpn's mapping.
func (t *Vanilla) Unset(vpn core.VPN) bool { return t.r.unset(uint64(vpn)) }

// Get translates vpn without a walk path.
func (t *Vanilla) Get(vpn core.VPN) (core.PFN, bool) {
	p, ok := t.r.lookup(uint64(vpn))
	if !ok {
		return 0, false
	}
	return *p, true
}

// Walk translates vpn, appending the per-level entry addresses to path.
func (t *Vanilla) Walk(vpn core.VPN, path []uint64) (core.PFN, bool, []uint64) {
	p, ok, path := t.r.walk(uint64(vpn), path)
	if !ok {
		return 0, false, path
	}
	return *p, true, path
}

// ToC is a mosaic page-table leaf value: one CPFN per sub-page plus a
// per-sub-page present bit (the prototype "stores permission, present,
// accessed, and dirty bits in the page table for each encoded physical
// page"; only the present bit affects translation, so that is what we
// model).
type ToC struct {
	CPFNs []core.CPFN
}

// Mosaic is a radix page table whose leaves map MVPN → ToC (Figure 5).
type Mosaic struct {
	r     *radix[ToC]
	arity int
}

// NewMosaic creates a mosaic page table for the given arity. levelBits
// index the MVPN (not the VPN); nil selects DefaultLevels.
func NewMosaic(arity int, levelBits []int, allocPA PAAllocator) *Mosaic {
	if arity <= 0 || arity&(arity-1) != 0 {
		panic(fmt.Sprintf("pagetable: arity %d is not a positive power of two", arity))
	}
	if levelBits == nil {
		levelBits = DefaultLevels
	}
	return &Mosaic{r: newRadix[ToC](levelBits, allocPA), arity: arity}
}

// Arity is the number of sub-pages per mosaic page.
func (t *Mosaic) Arity() int { return t.arity }

// Levels is the number of radix levels.
func (t *Mosaic) Levels() int { return len(t.r.levelBits) }

// Len is the number of mosaic pages with at least one mapped sub-page.
func (t *Mosaic) Len() int { return t.r.leaves }

// SetCPFN maps vpn's sub-page to cpfn, creating the ToC if needed.
func (t *Mosaic) SetCPFN(vpn core.VPN, cpfn core.CPFN) {
	mvpn, off := core.MosaicPage(vpn, t.arity)
	toc, ok := t.r.lookup(uint64(mvpn))
	if !ok {
		toc = t.r.set(uint64(mvpn), ToC{CPFNs: newInvalidCPFNs(t.arity)})
	}
	toc.CPFNs[off] = cpfn
}

// ClearCPFN invalidates vpn's sub-page mapping, reporting whether it was
// mapped. The ToC itself stays (other sub-pages keep their mappings).
func (t *Mosaic) ClearCPFN(vpn core.VPN) bool {
	mvpn, off := core.MosaicPage(vpn, t.arity)
	toc, ok := t.r.lookup(uint64(mvpn))
	if !ok || toc.CPFNs[off] == core.CPFNInvalid {
		return false
	}
	toc.CPFNs[off] = core.CPFNInvalid
	return true
}

// Get returns vpn's CPFN without a walk path.
func (t *Mosaic) Get(vpn core.VPN) (core.CPFN, bool) {
	mvpn, off := core.MosaicPage(vpn, t.arity)
	toc, ok := t.r.lookup(uint64(mvpn))
	if !ok || toc.CPFNs[off] == core.CPFNInvalid {
		return core.CPFNInvalid, false
	}
	return toc.CPFNs[off], true
}

// WalkToC fetches the whole ToC for vpn's mosaic page, appending per-level
// entry addresses to path. The returned slice aliases the leaf; callers
// must copy it if they retain it (the TLB's Insert copies).
func (t *Mosaic) WalkToC(vpn core.VPN, path []uint64) ([]core.CPFN, bool, []uint64) {
	mvpn, _ := core.MosaicPage(vpn, t.arity)
	toc, ok, path := t.r.walk(uint64(mvpn), path)
	if !ok {
		return nil, false, path
	}
	return toc.CPFNs, true, path
}

func newInvalidCPFNs(arity int) []core.CPFN {
	c := make([]core.CPFN, arity)
	for i := range c {
		c[i] = core.CPFNInvalid
	}
	return c
}
