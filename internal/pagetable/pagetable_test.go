package pagetable

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
)

func TestVanillaSetGetUnset(t *testing.T) {
	pt := NewVanilla(nil, nil)
	if _, ok := pt.Get(100); ok {
		t.Fatal("hit in empty table")
	}
	pt.Set(100, 7)
	if pfn, ok := pt.Get(100); !ok || pfn != 7 {
		t.Fatalf("Get = %d,%v", pfn, ok)
	}
	pt.Set(100, 8) // remap
	if pfn, _ := pt.Get(100); pfn != 8 {
		t.Fatalf("remap lost: %d", pfn)
	}
	if pt.Len() != 1 {
		t.Fatalf("Len = %d", pt.Len())
	}
	if !pt.Unset(100) || pt.Unset(100) {
		t.Fatal("Unset misbehaved")
	}
	if pt.Len() != 0 {
		t.Fatalf("Len after unset = %d", pt.Len())
	}
}

func TestVanillaWalkPath(t *testing.T) {
	pt := NewVanilla(nil, BumpAllocator(1<<40))
	pt.Set(0x123456789, 42)
	pfn, ok, path := pt.Walk(0x123456789, nil)
	if !ok || pfn != 42 {
		t.Fatalf("Walk = %d,%v", pfn, ok)
	}
	if len(path) != 4 {
		t.Fatalf("walk touched %d levels, want 4", len(path))
	}
	// All entry addresses must be distinct and inside page-table space.
	seen := map[uint64]bool{}
	for _, pa := range path {
		if pa < 1<<40 {
			t.Fatalf("walk address %#x below page-table base", pa)
		}
		if seen[pa] {
			t.Fatalf("duplicate walk address %#x", pa)
		}
		seen[pa] = true
	}
	// A partial walk (unmapped VPN sharing upper levels) still touches the
	// levels that exist.
	_, ok, path2 := pt.Walk(0x123456788, nil)
	if ok {
		t.Fatal("unmapped VPN translated")
	}
	if len(path2) != 4 {
		t.Fatalf("sibling VPN walk touched %d levels, want 4 (same leaf node)", len(path2))
	}
	_, ok, path3 := pt.Walk(0x523456789, nil)
	if ok || len(path3) != 1 {
		t.Fatalf("far VPN: ok=%v levels=%d, want miss after 1 level", ok, len(path3))
	}
}

func TestVanillaSharedUpperLevels(t *testing.T) {
	pt := NewVanilla(nil, nil)
	pt.Set(0, 1)
	pt.Set(1, 2) // same leaf node
	_, _, p0 := pt.Walk(0, nil)
	_, _, p1 := pt.Walk(1, nil)
	for lvl := 0; lvl < 3; lvl++ {
		if p0[lvl] != p1[lvl] {
			t.Fatalf("level %d addresses differ for adjacent VPNs", lvl)
		}
	}
	if p0[3] == p1[3] {
		t.Fatal("leaf entry addresses must differ")
	}
	if p1[3]-p0[3] != entrySize {
		t.Fatalf("adjacent leaf entries %d bytes apart, want %d", p1[3]-p0[3], entrySize)
	}
}

func TestVanillaCustomLevels(t *testing.T) {
	pt := NewVanilla([]int{10, 10, 10}, nil)
	if pt.Levels() != 3 {
		t.Fatalf("Levels = %d", pt.Levels())
	}
	pt.Set(0x3FFFFFFF, 5) // max 30-bit key
	if pfn, ok := pt.Get(0x3FFFFFFF); !ok || pfn != 5 {
		t.Fatalf("Get = %d,%v", pfn, ok)
	}
	_, _, path := pt.Walk(0x3FFFFFFF, nil)
	if len(path) != 3 {
		t.Fatalf("walk length %d", len(path))
	}
}

func TestVanillaAgainstMapModel(t *testing.T) {
	pt := NewVanilla(nil, nil)
	model := map[core.VPN]core.PFN{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30000; i++ {
		vpn := core.VPN(rng.Intn(1 << 20))
		switch rng.Intn(3) {
		case 0:
			pfn := core.PFN(rng.Intn(1 << 20))
			pt.Set(vpn, pfn)
			model[vpn] = pfn
		case 1:
			got, ok := pt.Get(vpn)
			want, wok := model[vpn]
			if ok != wok || (ok && got != want) {
				t.Fatalf("Get(%#x) = (%d,%v), model (%d,%v)", vpn, got, ok, want, wok)
			}
		case 2:
			if pt.Unset(vpn) != (func() bool { _, ok := model[vpn]; return ok })() {
				t.Fatalf("Unset(%#x) disagrees", vpn)
			}
			delete(model, vpn)
		}
	}
	if pt.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", pt.Len(), len(model))
	}
}

func TestMosaicToCLifecycle(t *testing.T) {
	pt := NewMosaic(4, nil, nil)
	if _, ok := pt.Get(5); ok {
		t.Fatal("hit in empty table")
	}
	pt.SetCPFN(5, 10) // MVPN 1, offset 1
	pt.SetCPFN(6, 11) // MVPN 1, offset 2
	if pt.Len() != 1 {
		t.Fatalf("two sub-pages created %d ToCs", pt.Len())
	}
	if c, ok := pt.Get(5); !ok || c != 10 {
		t.Fatalf("Get(5) = %d,%v", c, ok)
	}
	if _, ok := pt.Get(4); ok {
		t.Fatal("unmapped sub-page translated")
	}
	toc, ok, path := pt.WalkToC(5, nil)
	if !ok || len(path) != 4 {
		t.Fatalf("WalkToC ok=%v levels=%d", ok, len(path))
	}
	if len(toc) != 4 || toc[1] != 10 || toc[2] != 11 || toc[0] != core.CPFNInvalid {
		t.Fatalf("ToC = %v", toc)
	}
	// WalkToC of sibling sub-pages sees the same ToC and path.
	toc2, _, path2 := pt.WalkToC(7, nil)
	if &toc[0] != &toc2[0] {
		t.Fatal("sibling sub-pages resolved to different ToCs")
	}
	for i := range path {
		if path[i] != path2[i] {
			t.Fatal("sibling walk paths differ")
		}
	}
	if !pt.ClearCPFN(5) || pt.ClearCPFN(5) {
		t.Fatal("ClearCPFN misbehaved")
	}
	if _, ok := pt.Get(5); ok {
		t.Fatal("cleared sub-page still translates")
	}
	if c, ok := pt.Get(6); !ok || c != 11 {
		t.Fatalf("sibling lost after clear: %d,%v", c, ok)
	}
	if pt.Len() != 1 {
		t.Fatalf("ToC dropped by sub-page clear: Len=%d", pt.Len())
	}
}

func TestMosaicArityValidation(t *testing.T) {
	for _, arity := range []int{0, 3, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("arity %d should panic", arity)
				}
			}()
			NewMosaic(arity, nil, nil)
		}()
	}
	pt := NewMosaic(64, nil, nil)
	if pt.Arity() != 64 {
		t.Fatalf("Arity = %d", pt.Arity())
	}
}

func TestBumpAllocatorPageAligned(t *testing.T) {
	a := BumpAllocator(1 << 30)
	p1 := a(512 * entrySize)
	p2 := a(512 * entrySize)
	if p1 != 1<<30 {
		t.Fatalf("first allocation at %#x", p1)
	}
	if p2-p1 != core.PageSize {
		t.Fatalf("4 KiB node consumed %d bytes", p2-p1)
	}
	p3 := a(100) // sub-page allocation still rounds up
	if p3-p2 != core.PageSize {
		t.Fatalf("small node not page aligned: %#x after %#x", p3, p2)
	}
}

func TestRadixValidation(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanic("no levels", func() { NewVanilla([]int{}, nil) })
	assertPanic("zero width", func() { NewVanilla([]int{9, 0}, nil) })
	assertPanic("too wide", func() { NewVanilla([]int{21}, nil) })
	assertPanic("too many bits", func() { NewVanilla([]int{15, 15, 15, 15}, nil) })
}

func BenchmarkVanillaWalk(b *testing.B) {
	pt := NewVanilla(nil, nil)
	for v := core.VPN(0); v < 1<<16; v++ {
		pt.Set(v, core.PFN(v))
	}
	path := make([]uint64, 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, path = pt.Walk(core.VPN(i&(1<<16-1)), path[:0])
	}
}

func BenchmarkMosaicWalkToC(b *testing.B) {
	pt := NewMosaic(4, nil, nil)
	for v := core.VPN(0); v < 1<<16; v++ {
		pt.SetCPFN(v, core.CPFN(v&0x37))
	}
	path := make([]uint64, 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, path = pt.WalkToC(core.VPN(i&(1<<16-1)), path[:0])
	}
}
