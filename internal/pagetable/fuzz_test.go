package pagetable

import (
	"testing"

	"mosaic/internal/core"
)

// FuzzPageTableMapWalk drives a vanilla radix page table through an
// arbitrary map/unmap sequence against a Go map oracle, checking after
// every operation that Get and Walk agree with the oracle, that Walk
// touches exactly one entry per level, and that the leaf count tracks the
// oracle size. VPNs span 24 bits so the fuzzer exercises shared interior
// nodes, node allocation, and node reclamation on unset.
func FuzzPageTableMapWalk(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xff, 0x80})
	f.Add([]byte("map then unmap the same neighbourhood \x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pt := NewVanilla(nil, BumpAllocator(0))
		oracle := make(map[core.VPN]core.PFN)
		var path []uint64

		nextPFN := core.PFN(1)
		for i := 0; i+3 < len(data); i += 4 {
			vpn := core.VPN(uint64(data[i+1]) | uint64(data[i+2])<<8 | uint64(data[i+3])<<16)
			switch data[i] % 3 {
			case 0:
				pt.Set(vpn, nextPFN)
				oracle[vpn] = nextPFN
				nextPFN++
			case 1:
				ok := pt.Unset(vpn)
				if _, present := oracle[vpn]; ok != present {
					t.Fatalf("Unset(%#x) = %v, oracle presence %v", vpn, ok, present)
				}
				delete(oracle, vpn)
			case 2:
				// Probe a key near a previous operand to hit both present
				// and absent leaves in populated nodes.
				vpn ^= 1
			}

			want, present := oracle[vpn]
			if got, ok := pt.Get(vpn); ok != present || (ok && got != want) {
				t.Fatalf("Get(%#x) = (%d, %v), oracle (%d, %v)", vpn, got, ok, want, present)
			}
			var got core.PFN
			var ok bool
			got, ok, path = pt.Walk(vpn, path[:0])
			if ok != present || (ok && got != want) {
				t.Fatalf("Walk(%#x) = (%d, %v), oracle (%d, %v)", vpn, got, ok, want, present)
			}
			if ok && len(path) != pt.Levels() {
				t.Fatalf("Walk(%#x) touched %d entries, want one per level (%d)", vpn, len(path), pt.Levels())
			}
			if pt.Len() != len(oracle) {
				t.Fatalf("Len() = %d, oracle holds %d", pt.Len(), len(oracle))
			}
		}
	})
}
