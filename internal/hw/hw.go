// Package hw models the tabulation-hash circuit of Figure 4 and reproduces
// the hardware evaluation of §4.4 / Table 5.
//
// The paper implements the circuit in Verilog and synthesizes it twice: for
// an Artix-7 FPGA (Vivado) and for a commercial 28nm CMOS process (Cadence).
// Neither toolchain is available here, so this package substitutes a
// structural timing/area model:
//
//   - Timing. The circuit is [input] → [per-byte 256-entry table read] →
//     [XOR reduction across tables] → [H-way output mux]. The mux select
//     (the hash-function id, i.e. which probe offset the CPFN decoder
//     needs) is known at cycle start, so the mux resolves concurrently
//     with the table read and XOR; the critical path is table + XOR and is
//     therefore *independent of H* — the paper's central timing claim
//     ("when varying the number of hash functions from 4-8, the clock
//     frequency of the circuit was unchanged").
//
//   - Area. Tables are shared across all H outputs (that is the point of
//     probing); each extra output adds only its XOR tree and wider output
//     muxes, so area grows roughly linearly in H.
//
// The model's per-component resource and delay coefficients are calibrated
// to the paper's two synthesis reports (Table 5 for the FPGA; the quoted
// 4 GHz / 220 ps / 13.806 KGE figures for 28nm), so it reproduces those
// anchor points exactly and extrapolates structurally in between and
// beyond.
package hw

import "fmt"

// CircuitSpec describes a tabulation-hash circuit instance.
type CircuitSpec struct {
	// NumTables is the number of static tables (one per input byte;
	// Figure 4 uses one per byte of the VPN).
	NumTables int
	// TableEntries is the entry count per table (256 for byte indexing).
	TableEntries int
	// WordBits is the width of table entries and hash outputs (32).
	WordBits int
	// HashOutputs is H, the number of probe outputs produced.
	HashOutputs int
}

// DefaultSpec is the paper's synthesized configuration: four byte-indexed
// 256×32-bit tables (32-bit VPN input) with a variable number of outputs.
func DefaultSpec(hashOutputs int) CircuitSpec {
	return CircuitSpec{NumTables: 4, TableEntries: 256, WordBits: 32, HashOutputs: hashOutputs}
}

// Validate checks the spec.
func (c CircuitSpec) Validate() error {
	switch {
	case c.NumTables <= 0:
		return fmt.Errorf("hw: table count %d must be positive", c.NumTables)
	case c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0:
		return fmt.Errorf("hw: table entries %d must be a positive power of two", c.TableEntries)
	case c.WordBits <= 0:
		return fmt.Errorf("hw: word width %d must be positive", c.WordBits)
	case c.HashOutputs <= 0:
		return fmt.Errorf("hw: output count %d must be positive", c.HashOutputs)
	}
	return nil
}

// FPGAReport mirrors the columns of Table 5 plus the derived clock rate.
type FPGAReport struct {
	HashOutputs int
	LUTs        int
	Registers   int
	F7Muxes     int
	F8Muxes     int
	LatencyNs   float64
	FmaxMHz     float64
}

// FPGA coefficient calibration (Artix-7, from Table 5):
//
//	H=1:  858 LUTs,            0 F7,    0 F8
//	H=2: 1696 LUTs,           32 F7,    0 F8
//	H=4: 3392 LUTs,           64 F7,   32 F8
//	H=8: 6208 LUTs,         2880 F7,  160 F8
//	Registers: 32 at every H (the output register stage).
//	Latency: 2.155 ns at every H (min clock period; 464 MHz).
//
// Structure: per-output logic (table-slice replication the synthesizer
// performs to fan the shared tables out to each probe offset, plus the XOR
// reduction) costs ≈ lutPerOutput LUTs; the residual base covers input
// decode. Wide-mux fabric (F7/F8) appears once the output count forces the
// synthesizer off pure-LUT selection, growing super-linearly as probing
// multiplexes deeper — modeled with the synthesizer's observed breakpoints.
const (
	fpgaLatencyNs = 2.155
	fpgaRegisters = 32
)

// fpgaAnchors are the paper's Vivado synthesis results (Table 5). Resource
// counts between anchors are interpolated linearly; beyond H = 8 they are
// extrapolated along the last segment's per-output slope.
var fpgaAnchors = []struct{ h, luts, f7, f8 int }{
	{1, 858, 0, 0},
	{2, 1696, 32, 0},
	{4, 3392, 64, 32},
	{8, 6208, 2880, 160},
}

// fpgaResources interpolates the LUT/mux fabric from the synthesis anchors.
func fpgaResources(h int) (luts, f7, f8 int) {
	last := fpgaAnchors[len(fpgaAnchors)-1]
	if h >= last.h {
		prev := fpgaAnchors[len(fpgaAnchors)-2]
		span := last.h - prev.h
		return last.luts + (last.luts-prev.luts)*(h-last.h)/span,
			last.f7 + (last.f7-prev.f7)*(h-last.h)/span,
			last.f8 + (last.f8-prev.f8)*(h-last.h)/span
	}
	prev := fpgaAnchors[0]
	for _, a := range fpgaAnchors[1:] {
		if h <= a.h {
			span := a.h - prev.h
			return prev.luts + (a.luts-prev.luts)*(h-prev.h)/span,
				prev.f7 + (a.f7-prev.f7)*(h-prev.h)/span,
				prev.f8 + (a.f8-prev.f8)*(h-prev.h)/span
		}
		prev = a
	}
	return prev.luts, prev.f7, prev.f8
}

// SynthesizeFPGA produces the Artix-7 resource/timing estimate for spec.
func SynthesizeFPGA(spec CircuitSpec) (FPGAReport, error) {
	if err := spec.Validate(); err != nil {
		return FPGAReport{}, err
	}
	// Scale coefficients for non-default geometries: LUT cost tracks total
	// table bits per output slice and XOR width.
	def := DefaultSpec(1)
	scale := float64(spec.NumTables*spec.TableEntries*spec.WordBits) /
		float64(def.NumTables*def.TableEntries*def.WordBits)
	luts, f7, f8 := fpgaResources(spec.HashOutputs)
	r := FPGAReport{
		HashOutputs: spec.HashOutputs,
		LUTs:        int(float64(luts) * scale),
		Registers:   fpgaRegisters * spec.WordBits / 32,
		F7Muxes:     f7,
		F8Muxes:     f8,
		// The probe mux is off the critical path: latency is the table
		// read + XOR reduction, independent of HashOutputs.
		LatencyNs: fpgaLatencyNs * xorDepthScale(spec.NumTables),
	}
	r.FmaxMHz = 1000 / r.LatencyNs
	return r, nil
}

// xorDepthScale adjusts latency for XOR trees deeper than the calibrated
// 4-input reduction (two LUT levels); each doubling of table count adds one
// XOR level, a small fraction of the table-read-dominated path.
func xorDepthScale(numTables int) float64 {
	depth := 0
	for n := 1; n < numTables; n *= 2 {
		depth++
	}
	const calibratedDepth = 2  // 4 tables
	const levelFraction = 0.06 // XOR level share of the 2.155 ns path
	return 1 + levelFraction*float64(depth-calibratedDepth)
}

// ASICReport mirrors the paper's 28nm synthesis summary.
type ASICReport struct {
	HashOutputs int
	// AreaKGE is the area in kilo-gate-equivalents (2-input NAND).
	AreaKGE float64
	// LatencyPs is the critical-path delay.
	LatencyPs float64
	// SlackPs is the positive slack at the target period.
	SlackPs float64
	// FmaxGHz is the maximum clock frequency.
	FmaxGHz float64
}

// 28nm calibration: at H = 8 the paper reports 13.806 KGE, 220 ps latency,
// 20 ps positive slack, 4 GHz. Area is dominated by the register-
// implemented tables (shared, H-independent) plus per-output XOR/mux
// logic; the paper notes area grows "minimally" with H, so the per-output
// share is the minority of the total.
const (
	asicLatencyPs     = 220
	asicSlackPs       = 20
	asicTableShareKGE = 11.2   // shared tables + input stage at default spec
	asicPerOutputKGE  = 0.3258 // XOR tree + output mux per probe output
)

// SynthesizeASIC produces the 28nm estimate for spec.
func SynthesizeASIC(spec CircuitSpec) (ASICReport, error) {
	if err := spec.Validate(); err != nil {
		return ASICReport{}, err
	}
	def := DefaultSpec(1)
	tableScale := float64(spec.NumTables*spec.TableEntries*spec.WordBits) /
		float64(def.NumTables*def.TableEntries*def.WordBits)
	outScale := float64(spec.WordBits) / float64(def.WordBits)
	r := ASICReport{
		HashOutputs: spec.HashOutputs,
		AreaKGE:     asicTableShareKGE*tableScale + asicPerOutputKGE*outScale*float64(spec.HashOutputs),
		LatencyPs:   asicLatencyPs * xorDepthScale(spec.NumTables),
		SlackPs:     asicSlackPs,
	}
	r.FmaxGHz = 1000 / (r.LatencyPs + r.SlackPs)
	return r, nil
}

// Table5 reproduces the paper's Table 5: FPGA reports for H ∈ {1, 2, 4, 8}.
func Table5() []FPGAReport {
	out := make([]FPGAReport, 0, 4)
	for _, h := range []int{1, 2, 4, 8} {
		r, err := SynthesizeFPGA(DefaultSpec(h))
		if err != nil {
			//lint:ignore nopanic DefaultSpec always satisfies SynthesizeFPGA's validation
			panic(err)
		}
		out = append(out, r)
	}
	return out
}
