package hw

import (
	"math"
	"testing"
)

func TestSpecValidation(t *testing.T) {
	bad := []CircuitSpec{
		{NumTables: 0, TableEntries: 256, WordBits: 32, HashOutputs: 1},
		{NumTables: 4, TableEntries: 255, WordBits: 32, HashOutputs: 1},
		{NumTables: 4, TableEntries: 256, WordBits: 0, HashOutputs: 1},
		{NumTables: 4, TableEntries: 256, WordBits: 32, HashOutputs: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
	if DefaultSpec(4).Validate() != nil {
		t.Error("default spec rejected")
	}
}

func TestTable5AnchorsExact(t *testing.T) {
	// The model must reproduce the paper's synthesis results exactly at
	// the measured points.
	want := []struct {
		h, luts, regs, f7, f8 int
	}{
		{1, 858, 32, 0, 0},
		{2, 1696, 32, 32, 0},
		{4, 3392, 32, 64, 32},
		{8, 6208, 32, 2880, 160},
	}
	got := Table5()
	if len(got) != len(want) {
		t.Fatalf("Table5 has %d rows", len(got))
	}
	for i, w := range want {
		g := got[i]
		if g.HashOutputs != w.h || g.LUTs != w.luts || g.Registers != w.regs ||
			g.F7Muxes != w.f7 || g.F8Muxes != w.f8 {
			t.Errorf("H=%d: got %+v, want %+v", w.h, g, w)
		}
		if math.Abs(g.LatencyNs-2.155) > 1e-9 {
			t.Errorf("H=%d: latency %.3f ns, want 2.155", w.h, g.LatencyNs)
		}
	}
}

func TestLatencyIndependentOfH(t *testing.T) {
	// The paper's central timing claim: probing produces extra outputs
	// without touching the critical path.
	base, err := SynthesizeFPGA(DefaultSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{2, 4, 8, 16, 64} {
		r, err := SynthesizeFPGA(DefaultSpec(h))
		if err != nil {
			t.Fatal(err)
		}
		if r.LatencyNs != base.LatencyNs {
			t.Errorf("H=%d: latency %.3f ≠ base %.3f", h, r.LatencyNs, base.LatencyNs)
		}
	}
}

func TestAreaMonotoneInH(t *testing.T) {
	prevLUTs := 0
	for _, h := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		r, err := SynthesizeFPGA(DefaultSpec(h))
		if err != nil {
			t.Fatal(err)
		}
		if r.LUTs <= prevLUTs {
			t.Errorf("H=%d: LUTs %d not increasing (prev %d)", h, r.LUTs, prevLUTs)
		}
		prevLUTs = r.LUTs
	}
}

func TestFPGAFmax(t *testing.T) {
	r, _ := SynthesizeFPGA(DefaultSpec(8))
	// 1/2.155 ns ≈ 464 MHz, as the artifact appendix derives.
	if math.Abs(r.FmaxMHz-464) > 1 {
		t.Errorf("Fmax = %.1f MHz, want ≈464", r.FmaxMHz)
	}
}

func TestASICMatchesPaper(t *testing.T) {
	r, err := SynthesizeASIC(DefaultSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.AreaKGE-13.806) > 0.01 {
		t.Errorf("area = %.3f KGE, want 13.806", r.AreaKGE)
	}
	if r.LatencyPs != 220 || r.SlackPs != 20 {
		t.Errorf("timing = %f ps / %f ps slack", r.LatencyPs, r.SlackPs)
	}
	// 4 GHz class: period = latency + slack = 240 ps → ≈4.17 GHz; the
	// paper rounds to "a maximum frequency of 4 GHz".
	if r.FmaxGHz < 4.0 || r.FmaxGHz > 4.5 {
		t.Errorf("Fmax = %.2f GHz, want ≈4", r.FmaxGHz)
	}
}

func TestASICAreaGrowsMinimally(t *testing.T) {
	r1, _ := SynthesizeASIC(DefaultSpec(1))
	r8, _ := SynthesizeASIC(DefaultSpec(8))
	growth := (r8.AreaKGE - r1.AreaKGE) / r1.AreaKGE
	// "increasing the number of hash functions ... increas[es] the area
	// minimally": well under 2× from 1 to 8 outputs.
	if growth <= 0 || growth > 0.5 {
		t.Errorf("area growth H=1→8 is %.1f%%, want small positive", growth*100)
	}
	if r8.LatencyPs != r1.LatencyPs {
		t.Errorf("ASIC latency depends on H: %f vs %f", r1.LatencyPs, r8.LatencyPs)
	}
}

func TestWiderInputScalesArea(t *testing.T) {
	// 8 tables (64-bit input) must cost roughly 2× the 4-table circuit.
	s := CircuitSpec{NumTables: 8, TableEntries: 256, WordBits: 32, HashOutputs: 4}
	r, err := SynthesizeFPGA(s)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := SynthesizeFPGA(DefaultSpec(4))
	if r.LUTs < base.LUTs*3/2 || r.LUTs > base.LUTs*3 {
		t.Errorf("8-table LUTs %d vs 4-table %d: want ≈2×", r.LUTs, base.LUTs)
	}
	// Deeper XOR tree adds a small latency increment.
	if r.LatencyNs <= base.LatencyNs {
		t.Errorf("8-table latency %.3f not above 4-table %.3f", r.LatencyNs, base.LatencyNs)
	}
	if r.LatencyNs > base.LatencyNs*1.2 {
		t.Errorf("8-table latency %.3f grew too much", r.LatencyNs)
	}
}

func TestExtrapolationBeyondAnchors(t *testing.T) {
	r16, err := SynthesizeFPGA(DefaultSpec(16))
	if err != nil {
		t.Fatal(err)
	}
	r8, _ := SynthesizeFPGA(DefaultSpec(8))
	if r16.LUTs <= r8.LUTs || r16.F7Muxes <= r8.F7Muxes {
		t.Errorf("extrapolation not increasing: H16=%+v H8=%+v", r16, r8)
	}
}

func TestInvalidSpecErrors(t *testing.T) {
	if _, err := SynthesizeFPGA(CircuitSpec{}); err == nil {
		t.Error("FPGA synthesis of zero spec succeeded")
	}
	if _, err := SynthesizeASIC(CircuitSpec{}); err == nil {
		t.Error("ASIC synthesis of zero spec succeeded")
	}
}
