package trace

import (
	"testing"
)

// batchRecorder copies every delivered batch (the Batcher reuses its buffer,
// so retaining the slice would alias later batches).
type batchRecorder struct {
	batches [][]Ref
}

func (r *batchRecorder) ProcessBatch(b Batch) {
	cp := make([]Ref, len(b))
	copy(cp, b)
	r.batches = append(r.batches, cp)
}

func (r *batchRecorder) refs() []Ref {
	var out []Ref
	for _, b := range r.batches {
		out = append(out, b...)
	}
	return out
}

// TestBatcherTailFlushedExactlyOnce is the tail-handling contract: a stream
// whose length is not a multiple of the batch size delivers its partial tail
// exactly once, and a second Flush delivers nothing more.
func TestBatcherTailFlushedExactlyOnce(t *testing.T) {
	const size = 8
	for _, n := range []int{1, size - 1, size, size + 1, 3*size - 5, 3 * size} {
		var rec batchRecorder
		b := NewBatcher(&rec, size)
		for i := 0; i < n; i++ {
			b.Access(uint64(i)<<12, i%3 == 0)
		}
		b.Flush()
		b.Flush() // must be a no-op: the tail was already delivered

		refs := rec.refs()
		if len(refs) != n {
			t.Fatalf("n=%d: delivered %d refs, want %d", n, len(refs), n)
		}
		for i, r := range refs {
			if r.VA() != uint64(i)<<12 || r.Write() != (i%3 == 0) {
				t.Fatalf("n=%d: ref %d = (%#x, %v), want (%#x, %v)",
					n, i, r.VA(), r.Write(), uint64(i)<<12, i%3 == 0)
			}
		}
		// Every batch but the last must be exactly full; the last carries
		// the remainder (or a full batch when n divides evenly).
		for bi, batch := range rec.batches {
			want := size
			if bi == len(rec.batches)-1 {
				if tail := n % size; tail != 0 {
					want = tail
				}
			}
			if len(batch) != want {
				t.Fatalf("n=%d: batch %d has %d refs, want %d", n, bi, len(batch), want)
			}
		}
	}
}

// TestBatcherFlushOnEmptyDeliversNothing covers the two empty cases: a
// Batcher that never saw a reference, and one flushed right at a full-batch
// boundary. Neither may deliver an empty batch.
func TestBatcherFlushOnEmptyDeliversNothing(t *testing.T) {
	var rec batchRecorder
	b := NewBatcher(&rec, 4)
	b.Flush()
	if len(rec.batches) != 0 {
		t.Fatalf("Flush on fresh Batcher delivered %d batches, want 0", len(rec.batches))
	}
	for i := 0; i < 4; i++ {
		b.Access(uint64(i), false)
	}
	if len(rec.batches) != 1 {
		t.Fatalf("full buffer delivered %d batches, want 1", len(rec.batches))
	}
	b.Flush()
	if len(rec.batches) != 1 {
		t.Fatalf("Flush at batch boundary delivered %d batches, want 1", len(rec.batches))
	}
}

// TestGetBatcherReusesCleanState exercises the pool round-trip: a Batcher
// returned with buffered (aborted) references must come back empty, deliver
// to the new sink only, and use the default batch size.
func TestGetBatcherReusesCleanState(t *testing.T) {
	var abandoned batchRecorder
	b := GetBatcher(&abandoned)
	for i := 0; i < 100; i++ {
		b.Access(uint64(i), false) // buffered, never flushed — an aborted run
	}
	PutBatcher(b)
	if len(abandoned.batches) != 0 {
		t.Fatalf("aborted refs were delivered: %d batches", len(abandoned.batches))
	}

	var rec batchRecorder
	b2 := GetBatcher(&rec)
	b2.Access(0x1000, true)
	b2.Flush()
	if got := rec.refs(); len(got) != 1 || got[0].VA() != 0x1000 || !got[0].Write() {
		t.Fatalf("pooled Batcher delivered %v, want exactly [(0x1000, write)]", got)
	}
	if len(rec.batches[0]) != 1 {
		t.Fatalf("pooled Batcher tail had %d refs, want 1 (stale fill index?)", len(rec.batches[0]))
	}
	PutBatcher(b2)
}
