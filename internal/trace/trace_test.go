package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSinkHelpers(t *testing.T) {
	var c Counter
	Tee(&c, Discard).Access(100, false)
	Tee(&c, Discard).Access(200, true)
	if c.Reads != 1 || c.Writes != 1 || c.Total() != 2 {
		t.Errorf("counter = %+v", c)
	}
}

func TestTeeFanOutOrder(t *testing.T) {
	// Every sink sees every reference, in sink order per reference — the
	// property memsim's dual-TLB methodology and tracegen's capture path
	// both depend on.
	var got []int
	mk := func(id int) Sink {
		return SinkFunc(func(va uint64, write bool) {
			got = append(got, id)
			if va != 42 || !write {
				t.Errorf("sink %d saw (%d, %v)", id, va, write)
			}
		})
	}
	tee := Tee(mk(0), mk(1), mk(2))
	tee.Access(42, true)
	tee.Access(42, true)
	want := []int{0, 1, 2, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("deliveries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deliveries = %v, want %v", got, want)
		}
	}
}

func TestTeeEmpty(t *testing.T) {
	// A tee with no sinks is a valid discard.
	Tee().Access(7, false)
}

func TestCounterClassifiesReadsAndWrites(t *testing.T) {
	var c Counter
	rng := rand.New(rand.NewSource(3))
	var reads, writes uint64
	for i := 0; i < 1000; i++ {
		w := rng.Intn(2) == 1
		if w {
			writes++
		} else {
			reads++
		}
		c.Access(rng.Uint64(), w)
	}
	if c.Reads != reads || c.Writes != writes {
		t.Errorf("counter = %+v, want reads=%d writes=%d", c, reads, writes)
	}
	if c.Total() != reads+writes {
		t.Errorf("Total() = %d, want %d", c.Total(), reads+writes)
	}
}

func TestLimiter(t *testing.T) {
	var c Counter
	l := &Limiter{Next: &c, N: 3}
	for i := 0; i < 10; i++ {
		l.Access(uint64(i), false)
	}
	if c.Total() != 3 || !l.Saturated() || l.Seen() != 3 {
		t.Errorf("limiter forwarded %d (saturated=%v)", c.Total(), l.Saturated())
	}
}

func TestRecorderReplay(t *testing.T) {
	var r Recorder
	r.Access(10, false)
	r.Access(20, true)
	var c Counter
	r.Replay(&c)
	if c.Reads != 1 || c.Writes != 1 {
		t.Errorf("replay = %+v", c)
	}
	if len(r.Accesses) != 2 || r.Accesses[1] != (Access{VA: 20, Write: true}) {
		t.Errorf("recorded = %+v", r.Accesses)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var want []Access
	va := uint64(0x10000000)
	for i := 0; i < 10000; i++ {
		switch rng.Intn(3) {
		case 0:
			va += 8 // sequential
		case 1:
			va -= 16
		case 2:
			va = uint64(rng.Int63()) & (1<<57 - 1) // canonical VA range
		}
		a := Access{VA: va, Write: rng.Intn(4) == 0}
		want = append(want, a)
		w.Access(a.VA, a.Write)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(want)) {
		t.Fatalf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, wa := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wa {
			t.Fatalf("record %d = %+v, want %+v", i, got, wa)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReplayAll(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Access(uint64(i)*4096, i%2 == 0)
	}
	_ = w.Flush()
	r, _ := NewReader(&buf)
	var c Counter
	n, err := r.ReplayAll(&c)
	if err != nil || n != 100 {
		t.Fatalf("ReplayAll = %d, %v", n, err)
	}
	if c.Reads != 50 || c.Writes != 50 {
		t.Errorf("counter = %+v", c)
	}
}

func TestSequentialTraceIsCompact(t *testing.T) {
	// Delta encoding: a sequential scan must cost ~1 byte per record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Access(0x10000000+uint64(i)*8, false)
	}
	_ = w.Flush()
	if perRec := float64(buf.Len()) / 10000; perRec > 1.5 {
		t.Errorf("sequential trace costs %.2f bytes/record", perRec)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX123"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("MT"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("short header: %v", err)
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVARoundTripProperty(t *testing.T) {
	f := func(vas []uint64) bool {
		for i := range vas {
			vas[i] &= 1<<57 - 1 // canonical VA range
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, va := range vas {
			w.Access(va, va%3 == 0)
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, va := range vas {
			a, err := r.Next()
			if err != nil || a.VA != va || a.Write != (va%3 == 0) {
				return false
			}
		}
		_, err = r.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWriterNonCanonicalAddress verifies the steady-state failure mode: a
// non-canonical VA must not panic (the writer may sit under a long-running
// capture); it sets a sticky error surfaced by both Err and Flush, and the
// writer drops all subsequent records.
func TestWriterNonCanonicalAddress(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Access(0x1000, false)
	w.Access(1<<62, true) // non-canonical
	w.Access(0x2000, false)
	if w.Count() != 1 {
		t.Errorf("Count = %d, want 1 (records after the error must be dropped)", w.Count())
	}
	if err := w.Err(); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("Err() = %v, want ErrNonCanonical", err)
	}
	if err := w.Flush(); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("Flush() = %v, want ErrNonCanonical", err)
	}
}

// TestWriterCanonicalBoundary pins the boundary: 2^62-1 encodes, 2^62 fails.
func TestWriterCanonicalBoundary(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Access(1<<62-1, false)
	if w.Err() != nil {
		t.Fatalf("2^62-1 must be canonical, got %v", w.Err())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Next()
	if err != nil || a.VA != 1<<62-1 {
		t.Fatalf("round trip of boundary VA: %+v, %v", a, err)
	}
}
