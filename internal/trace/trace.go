// Package trace defines the memory-reference stream flowing from workloads
// into the memory-system simulator, with capture, replay, and a compact
// binary encoding for storing traces on disk.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Access is one data memory reference.
type Access struct {
	// VA is the virtual address.
	VA uint64
	// Write reports whether the reference is a store.
	Write bool
}

// Sink consumes a reference stream. Workloads emit every data reference
// they perform into a Sink; the simulator, recorders, and counters all
// implement it.
type Sink interface {
	Access(va uint64, write bool)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(va uint64, write bool)

// Access implements Sink.
func (f SinkFunc) Access(va uint64, write bool) { f(va, write) }

// Discard is a Sink that drops all references (for dry runs).
var Discard Sink = SinkFunc(func(uint64, bool) {})

// Tee duplicates a stream to several sinks in order.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(va uint64, write bool) {
		for _, s := range sinks {
			s.Access(va, write)
		}
	})
}

// Counter is a Sink that counts references.
type Counter struct {
	Reads, Writes uint64
}

// Access implements Sink.
func (c *Counter) Access(va uint64, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
}

// Total is Reads + Writes.
func (c *Counter) Total() uint64 { return c.Reads + c.Writes }

// Limiter forwards at most N references to Next, then ignores the rest
// (and reports saturation). It lets experiments cap very long workloads.
type Limiter struct {
	Next Sink
	N    uint64
	seen uint64
}

// Access implements Sink.
func (l *Limiter) Access(va uint64, write bool) {
	if l.seen >= l.N {
		return
	}
	l.seen++
	l.Next.Access(va, write)
}

// Saturated reports whether the limit was reached.
func (l *Limiter) Saturated() bool { return l.seen >= l.N }

// Seen is the number of forwarded references.
func (l *Limiter) Seen() uint64 { return l.seen }

// Recorder is a Sink that retains the stream in memory.
type Recorder struct {
	Accesses []Access
}

// Access implements Sink.
func (r *Recorder) Access(va uint64, write bool) {
	r.Accesses = append(r.Accesses, Access{VA: va, Write: write})
}

// Replay feeds the recorded stream into sink.
func (r *Recorder) Replay(sink Sink) {
	for _, a := range r.Accesses {
		sink.Access(a.VA, a.Write)
	}
}

// Binary format: magic, version, then per record a varint holding
// (zigzag(VA delta) << 1 | write). Deltas keep sequential patterns tiny.
var magic = [4]byte{'M', 'T', 'R', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace")

// ErrNonCanonical reports a stream outside the canonical encoding: an
// access whose virtual address exceeds the canonical 62-bit range the
// record format can represent, or (format v2) a frame whose bytes do not
// decode to exactly its declared shape — truncated header or payload,
// varints that under- or over-fill the declared length, or a decoded VA
// beyond the canonical range.
var ErrNonCanonical = errors.New("trace: stream outside the canonical encoding")

// Writer streams accesses to an io.Writer in the binary format.
type Writer struct {
	w      *bufio.Writer
	prevVA uint64
	n      uint64
	err    error
	buf    [binary.MaxVarintLen64 + 1]byte
}

// NewWriter creates a Writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Access implements Sink. va must be a canonical virtual address (below
// 2^62, comfortably above any architecture's VA width) so that the
// zigzagged delta fits the 63 bits the record format allots it. A
// non-canonical address sets a sticky ErrNonCanonical and drops the record
// (and all subsequent ones): Sink has no error return, so — like encoding
// errors — the failure is reported by Err and Flush rather than by
// panicking in the middle of a long-running capture.
func (w *Writer) Access(va uint64, write bool) {
	if w.err != nil {
		return
	}
	if va >= 1<<62 {
		w.err = fmt.Errorf("%w: %#x in record %d", ErrNonCanonical, va, w.n)
		return
	}
	d := zigzag(int64(va - w.prevVA))
	w.prevVA = va
	v := d << 1
	if write {
		v |= 1
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, _ = w.w.Write(w.buf[:n])
	w.n++
}

// Count is the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Err reports the first error the Writer encountered (ErrNonCanonical
// input, for now), or nil. Once set, the Writer drops further records.
func (w *Writer) Err() error { return w.err }

// Flush commits buffered records. It returns the Writer's sticky error, if
// any, so capture pipelines that only check Flush still see encoding
// failures.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a binary trace.
type Reader struct {
	r      *bufio.Reader
	prevVA uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:])
	}
	return &Reader{r: br}, nil
}

// Next decodes one record; it returns io.EOF at a clean end of stream.
func (r *Reader) Next() (Access, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Access{}, io.EOF
		}
		return Access{}, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	write := v&1 != 0
	r.prevVA += uint64(unzigzag(v >> 1))
	return Access{VA: r.prevVA, Write: write}, nil
}

// ReplayAll streams every record into sink, returning the record count.
func (r *Reader) ReplayAll(sink Sink) (uint64, error) {
	var n uint64
	for {
		a, err := r.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Access(a.VA, a.Write)
		n++
	}
}
