package trace

import "sync"

// Batched replay: the scalar Sink interface costs one dynamic dispatch per
// reference, which caps replay throughput long before the simulator's own
// work does. A Batch packs many references into one contiguous []Ref so the
// stream crosses interface boundaries once per few thousand references, the
// consumer's inner loop runs over cache-resident words, and decoders can
// reuse one buffer for the life of a replay.

// Ref packs one reference into a single word: VA<<1 | writeBit. The VA must
// be canonical (below 2^62, as the binary trace formats already require), so
// the shifted form always fits.
type Ref uint64

// MakeRef packs a reference.
func MakeRef(va uint64, write bool) Ref {
	r := Ref(va << 1)
	if write {
		r |= 1
	}
	return r
}

// VA is the reference's virtual address.
func (r Ref) VA() uint64 { return uint64(r) >> 1 }

// Write reports whether the reference is a store.
func (r Ref) Write() bool { return r&1 != 0 }

// Batch is a run of packed references in stream order.
type Batch []Ref

// DefaultBatchSize is the batch granularity the replay engine uses when the
// caller does not choose one: 4096 refs = 32 KiB of packed words, small
// enough to stay L1/L2-resident while amortizing per-batch dispatch to
// nothing.
const DefaultBatchSize = 4096

// BatchSink consumes whole batches. The references in a batch are in stream
// order and must be observed exactly as if delivered one Access at a time:
// a BatchSink implementation may amortize dispatch and per-reference
// branching, but not reorder or drop.
type BatchSink interface {
	ProcessBatch(b Batch)
}

// BatchRunner is implemented by reference producers that can emit whole
// batches natively — trace decoders and generators whose inner loop can
// fill a []Ref directly. A BatchRunner must deliver the identical reference
// stream its scalar Run would, batched at whatever granularity suits the
// producer; the replay harness prefers this path because it removes the
// last per-reference dynamic call from the pipeline.
type BatchRunner interface {
	RunBatches(sink BatchSink)
}

// Replay delivers the batch to a scalar sink in order.
func (b Batch) Replay(sink Sink) {
	for _, r := range b {
		sink.Access(r.VA(), r.Write())
	}
}

// sinkBatcher adapts a scalar Sink to BatchSink by unrolling batches.
type sinkBatcher struct{ sink Sink }

func (a sinkBatcher) ProcessBatch(b Batch) { b.Replay(a.sink) }

// BatchSinkOf returns the sink's native batch path when it has one, and a
// scalar-unrolling adapter otherwise, so replay loops can always be written
// against BatchSink.
func BatchSinkOf(s Sink) BatchSink {
	if bs, ok := s.(BatchSink); ok {
		return bs
	}
	return sinkBatcher{sink: s}
}

// Batcher is a Sink that accumulates references into a fixed-capacity batch
// and hands full batches to Next. The per-reference cost is one packed store
// and a boundary compare — no dynamic dispatch until a batch fills. Call
// Flush after the stream ends to deliver the partial tail.
type Batcher struct {
	// Next receives each full batch and the flushed tail.
	Next BatchSink
	buf  Batch
	i    int
}

// NewBatcher builds a Batcher delivering batches of the given size
// (DefaultBatchSize when size <= 0) to next.
func NewBatcher(next BatchSink, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &Batcher{Next: next, buf: make(Batch, size)}
}

// Access implements Sink. The body is MakeRef flattened by hand and the
// batch-boundary store lives out of line in deliver: what remains — pack,
// store, increment, one compare — sits under the compiler's inlining budget,
// so producers that call Access on the concrete *Batcher get the whole fast
// path inlined into their innermost loop.
func (b *Batcher) Access(va uint64, write bool) {
	r := Ref(va << 1)
	if write {
		r |= 1
	}
	if b.i == len(b.buf)-1 {
		b.deliver(r)
		return
	}
	b.buf[b.i] = r
	b.i++
}

// deliver stores the batch's final reference and hands the full buffer
// downstream. It must stay out of line: inlined into Access, its dynamic
// ProcessBatch call would push Access past the inlining budget, putting a
// call back into every producer's innermost loop.
//
//go:noinline
func (b *Batcher) deliver(r Ref) {
	b.buf[b.i] = r
	b.Next.ProcessBatch(b.buf)
	b.i = 0
}

// Flush delivers the buffered tail, if any. A stream ending mid-buffer hands
// its partial batch downstream exactly once: delivery resets the fill index,
// so a second Flush (or one right after a full-batch boundary) is a no-op.
func (b *Batcher) Flush() {
	if b.i > 0 {
		b.Next.ProcessBatch(b.buf[:b.i])
		b.i = 0
	}
}

// batcherPool recycles Batcher buffers across workload runs so a generator's
// whole batch leg costs no per-run allocation beyond the pool hit.
var batcherPool = sync.Pool{
	New: func() any { return &Batcher{buf: make(Batch, DefaultBatchSize)} },
}

// GetBatcher returns a pooled Batcher (DefaultBatchSize) delivering to next.
// Return it with PutBatcher when the run ends; the caller still flushes the
// tail itself, on the normal path only, so an aborted run delivers nothing
// past its abort point.
func GetBatcher(next BatchSink) *Batcher {
	b := batcherPool.Get().(*Batcher)
	b.Next = next
	b.i = 0
	return b
}

// PutBatcher recycles b. Safe to call with undelivered references buffered
// (an aborted run): they are discarded, never delivered. The sink reference
// is dropped so the pool does not pin it.
func PutBatcher(b *Batcher) {
	b.Next = nil
	b.i = 0
	batcherPool.Put(b)
}

var (
	_ Sink      = (*Batcher)(nil)
	_ BatchSink = sinkBatcher{}
)
