package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format v2: the same varint record encoding as v1 —
// (zigzag(VA delta) << 1 | write) — but block-framed so readers decode
// whole frames straight into reusable Batch buffers instead of pulling one
// varint at a time through an interface. The stream is the 4-byte magic
// "MTR2" followed by frames, each:
//
//	uvarint record count | uvarint payload byte length | payload
//
// The delta base resets to zero at every frame boundary (a frame's first
// record carries its absolute VA), so each frame is self-contained: a
// reader can skip frames by their declared length without decoding, frames
// can be appended to an existing file with no shared state beyond the
// header, and a memory-mapped trace can be decoded from any frame boundary.
var magicV2 = [4]byte{'M', 'T', 'R', '2'}

// MaxFrameRecords bounds a frame's record count. The writer splits larger
// batches across frames; the reader rejects a declared count beyond it
// before allocating, so a corrupt header cannot demand an absurd buffer.
const MaxFrameRecords = 1 << 20

// maxRecordBytes is the worst-case encoded size of one record: a full
// 64-bit varint.
const maxRecordBytes = binary.MaxVarintLen64

// BatchWriter streams batches to an io.Writer in the v2 format, one frame
// per WriteBatch call. Like Writer, errors are sticky: a non-canonical VA
// or an underlying write failure drops all further frames and is reported
// by Err and Flush.
type BatchWriter struct {
	w       *bufio.Writer
	payload []byte
	n       uint64
	frames  uint64
	err     error
	scratch [2 * binary.MaxVarintLen64]byte
}

// NewBatchWriter creates a BatchWriter and emits the v2 header.
func NewBatchWriter(w io.Writer) (*BatchWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2[:]); err != nil {
		return nil, err
	}
	return &BatchWriter{w: bw}, nil
}

// WriteBatch encodes one batch as one frame (several frames when the batch
// exceeds MaxFrameRecords). An empty batch writes nothing.
func (w *BatchWriter) WriteBatch(b Batch) error {
	for w.err == nil && len(b) > MaxFrameRecords {
		w.writeFrame(b[:MaxFrameRecords])
		b = b[MaxFrameRecords:]
	}
	if w.err == nil && len(b) > 0 {
		w.writeFrame(b)
	}
	return w.err
}

func (w *BatchWriter) writeFrame(b Batch) {
	w.payload = w.payload[:0]
	prevVA := uint64(0)
	for _, r := range b {
		va := r.VA()
		if va >= 1<<62 {
			w.err = fmt.Errorf("%w: %#x in record %d", ErrNonCanonical, va, w.n)
			return
		}
		v := zigzag(int64(va-prevVA)) << 1
		prevVA = va
		if r.Write() {
			v |= 1
		}
		w.payload = binary.AppendUvarint(w.payload, v)
		w.n++
	}
	hdr := binary.PutUvarint(w.scratch[:], uint64(len(b)))
	hdr += binary.PutUvarint(w.scratch[hdr:], uint64(len(w.payload)))
	if _, err := w.w.Write(w.scratch[:hdr]); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(w.payload); err != nil {
		w.err = err
		return
	}
	w.frames++
}

// ProcessBatch implements BatchSink, so a BatchWriter can terminate a
// batched capture pipeline directly; errors stay sticky for Err/Flush.
func (w *BatchWriter) ProcessBatch(b Batch) { _ = w.WriteBatch(b) }

// Count is the number of records written.
func (w *BatchWriter) Count() uint64 { return w.n }

// Frames is the number of frames written.
func (w *BatchWriter) Frames() uint64 { return w.frames }

// Err reports the first error the writer encountered, or nil.
func (w *BatchWriter) Err() error { return w.err }

// Flush commits buffered frames, returning the sticky error if any.
func (w *BatchWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// BatchReader decodes a v2 trace frame by frame.
type BatchReader struct {
	r       *bufio.Reader
	payload []byte
	n       uint64
}

// NewBatchReader validates the v2 header and returns a BatchReader.
func NewBatchReader(r io.Reader) (*BatchReader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	if hdr != magicV2 {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:])
	}
	return &BatchReader{r: br}, nil
}

// nonCanonicalf wraps ErrNonCanonical with frame context.
func (r *BatchReader) nonCanonicalf(format string, args ...any) error {
	return fmt.Errorf("%w: frame after record %d: %s", ErrNonCanonical, r.n, fmt.Sprintf(format, args...))
}

// ReadBatch decodes the next frame into buf's backing storage (growing it
// as needed) and returns the decoded batch; it returns io.EOF at a clean
// end of stream. A frame that is truncated, overlong, or misdeclared —
// header cut short, payload shorter than declared, varints not filling the
// declared length exactly, a VA outside the canonical 62-bit range —
// yields ErrNonCanonical.
func (r *BatchReader) ReadBatch(buf Batch) (Batch, error) {
	count, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, r.nonCanonicalf("truncated frame header: %v", err)
	}
	plen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, r.nonCanonicalf("truncated frame header: %v", err)
	}
	if count == 0 || count > MaxFrameRecords {
		return nil, r.nonCanonicalf("record count %d outside [1, %d]", count, MaxFrameRecords)
	}
	if plen < count || plen > count*maxRecordBytes {
		return nil, r.nonCanonicalf("payload length %d impossible for %d records", plen, count)
	}
	if uint64(cap(r.payload)) < plen {
		r.payload = make([]byte, plen)
	}
	payload := r.payload[:plen]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, r.nonCanonicalf("truncated payload: %v", err)
	}
	buf = buf[:0]
	va := uint64(0)
	off := 0
	for k := uint64(0); k < count; k++ {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return nil, r.nonCanonicalf("record %d: truncated or oversized varint", k)
		}
		off += n
		va += uint64(unzigzag(v >> 1))
		if va >= 1<<62 {
			return nil, r.nonCanonicalf("record %d: VA %#x outside the canonical range", k, va)
		}
		buf = append(buf, Ref(va<<1|v&1))
	}
	if off != len(payload) {
		return nil, r.nonCanonicalf("%d payload bytes left after %d records", len(payload)-off, count)
	}
	r.n += count
	return buf, nil
}

// Count is the number of records decoded so far.
func (r *BatchReader) Count() uint64 { return r.n }

// ReplayBatches streams every frame into sink, reusing one decode buffer,
// and returns the record count.
func (r *BatchReader) ReplayBatches(sink BatchSink) (uint64, error) {
	var n uint64
	buf := make(Batch, 0, DefaultBatchSize)
	for {
		b, err := r.ReadBatch(buf)
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.ProcessBatch(b)
		n += uint64(len(b))
		buf = b
	}
}

// ReplayAll streams every record into a scalar sink, returning the record
// count. Prefer ReplayBatches when the sink has a batch path.
func (r *BatchReader) ReplayAll(sink Sink) (uint64, error) {
	return r.ReplayBatches(BatchSinkOf(sink))
}

// ReadBatch decodes up to cap(buf) records (DefaultBatchSize when buf has
// no capacity) from a v1 trace into buf's backing storage, so v1 streams
// replay through the batched path too; io.EOF signals a clean end. Only the
// first record may block: once the underlying buffer can no longer
// guarantee a whole record, the partial batch is returned rather than
// waiting for more bytes, so a live stream (a session fed through a pipe)
// observes every record with bounded delay instead of stalling until a
// full batch accumulates. A mid-batch decode error returns the records
// decoded before it alongside the error; callers that want scalar-ReplayAll
// semantics must consume that partial batch before handling the error.
func (r *Reader) ReadBatch(buf Batch) (Batch, error) {
	max := cap(buf)
	if max == 0 {
		max = DefaultBatchSize
	}
	buf = buf[:0]
	for len(buf) < max {
		a, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) && len(buf) > 0 {
				return buf, nil
			}
			return buf, err
		}
		buf = append(buf, MakeRef(a.VA, a.Write))
		if r.r.Buffered() < maxRecordBytes {
			break
		}
	}
	return buf, nil
}

// ReplayBatches streams the v1 trace into sink in DefaultBatchSize batches,
// returning the record count. A malformed stream delivers every record
// decoded before the error — ReadBatch can return records alongside a
// non-EOF error — so the delivered stream and count match what the scalar
// ReplayAll produces on the same bytes.
func (r *Reader) ReplayBatches(sink BatchSink) (uint64, error) {
	var n uint64
	buf := make(Batch, 0, DefaultBatchSize)
	for {
		b, err := r.ReadBatch(buf)
		if len(b) > 0 {
			sink.ProcessBatch(b)
			n += uint64(len(b))
		}
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		buf = b
	}
}

// Source is a replayable trace stream of either binary format.
type Source interface {
	// ReplayAll streams every record into a scalar sink.
	ReplayAll(sink Sink) (uint64, error)
	// ReplayBatches streams every record into a batch sink.
	ReplayBatches(sink BatchSink) (uint64, error)
}

// Open sniffs the magic and returns a Source for either trace format, so
// replay consumers (tracegen -replay, the mosaicd session path) accept v1
// and v2 streams interchangeably.
func Open(r io.Reader) (Source, error) {
	br := bufio.NewReader(r)
	hdr, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	switch {
	case [4]byte(hdr) == magic:
		return NewReader(br)
	case [4]byte(hdr) == magicV2:
		return NewBatchReader(br)
	}
	return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr)
}

// ConvertV1 transcodes a v1 trace stream into the v2 format in
// DefaultBatchSize frames, returning the record count. The record payloads
// are identical varints; only the framing (and the per-frame delta reset)
// changes, so the conversion round-trips byte-identically at the Access
// level.
func ConvertV1(dst io.Writer, src io.Reader) (uint64, error) {
	r, err := NewReader(src)
	if err != nil {
		return 0, err
	}
	w, err := NewBatchWriter(dst)
	if err != nil {
		return 0, err
	}
	n, err := r.ReplayBatches(w)
	if err != nil {
		return n, err
	}
	if err := w.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

var (
	_ BatchSink = (*BatchWriter)(nil)
	_ Source    = (*Reader)(nil)
	_ Source    = (*BatchReader)(nil)
)
