package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// mkAccesses builds a deterministic stream mixing sequential, strided, and
// random far-jump patterns, the shapes the delta encoding must cover.
func mkAccesses(n int, seed int64) []Access {
	r := rand.New(rand.NewSource(seed))
	out := make([]Access, n)
	va := uint64(0x1000_0000)
	for i := range out {
		switch r.Intn(4) {
		case 0:
			va += 64
		case 1:
			va += 4096
		case 2:
			va = r.Uint64() % (1 << 62)
		case 3:
			if va >= 128 {
				va -= 128
			}
		}
		out[i] = Access{VA: va, Write: r.Intn(3) == 0}
	}
	return out
}

func writeV2(t *testing.T, accesses []Access, batchSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewBatchWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for _, a := range accesses {
		b = append(b, MakeRef(a.VA, a.Write))
		if len(b) == batchSize {
			if err := w.WriteBatch(b); err != nil {
				t.Fatal(err)
			}
			b = b[:0]
		}
	}
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAllV2(t *testing.T, data []byte) []Access {
	t.Helper()
	r, err := NewBatchReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []Access
	var rec Recorder
	if _, err := r.ReplayAll(&rec); err != nil {
		t.Fatal(err)
	}
	out = rec.Accesses
	return out
}

func TestBatchRefPacking(t *testing.T) {
	for _, tc := range []struct {
		va    uint64
		write bool
	}{{0, false}, {0, true}, {0xdeadbeef000, false}, {1<<62 - 1, true}} {
		r := MakeRef(tc.va, tc.write)
		if r.VA() != tc.va || r.Write() != tc.write {
			t.Errorf("MakeRef(%#x, %v) round-tripped to (%#x, %v)", tc.va, tc.write, r.VA(), r.Write())
		}
	}
}

func TestBatchWriterReaderRoundTrip(t *testing.T) {
	for _, batchSize := range []int{1, 7, 256, 4096} {
		accesses := mkAccesses(10_000, int64(batchSize))
		data := writeV2(t, accesses, batchSize)
		got := readAllV2(t, data)
		if len(got) != len(accesses) {
			t.Fatalf("batch %d: decoded %d records, want %d", batchSize, len(got), len(accesses))
		}
		for i := range got {
			if got[i] != accesses[i] {
				t.Fatalf("batch %d: record %d = %+v, want %+v", batchSize, i, got[i], accesses[i])
			}
		}
	}
}

func TestBatchWriterSplitsOversizedBatches(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBatchWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := make(Batch, MaxFrameRecords+10)
	for i := range b {
		b[i] = MakeRef(uint64(i)*64, false)
	}
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 2 {
		t.Fatalf("Frames() = %d, want 2", w.Frames())
	}
	got := readAllV2(t, buf.Bytes())
	if len(got) != len(b) {
		t.Fatalf("decoded %d records, want %d", len(got), len(b))
	}
	for i, a := range got {
		if a.VA != uint64(i)*64 {
			t.Fatalf("record %d VA = %#x, want %#x", i, a.VA, uint64(i)*64)
		}
	}
}

func TestBatchWriterNonCanonicalVA(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBatchWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.WriteBatch(Batch{MakeRef(64, false), Ref(uint64(1) << 63)})
	if err := w.Err(); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("Err() = %v, want ErrNonCanonical", err)
	}
	if err := w.Flush(); !errors.Is(err, ErrNonCanonical) {
		t.Errorf("Flush() = %v, want ErrNonCanonical", err)
	}
	// Sticky: later, valid batches are dropped.
	_ = w.WriteBatch(Batch{MakeRef(128, false)})
	if w.Count() != 1 {
		t.Errorf("Count() = %d after sticky error, want 1", w.Count())
	}
}

func TestBatchReaderTruncation(t *testing.T) {
	accesses := mkAccesses(5_000, 42)
	data := writeV2(t, accesses, 512)
	// Every proper prefix must either decode cleanly to a record prefix
	// (cuts at frame boundaries) or fail with ErrNonCanonical — never
	// panic, never misdecode.
	for cut := 4; cut < len(data); cut += 97 {
		r, err := NewBatchReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		var n uint64
		buf := make(Batch, 0, 512)
		for {
			b, err := r.ReadBatch(buf)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrNonCanonical) {
					t.Fatalf("cut %d: error %v, want ErrNonCanonical", cut, err)
				}
				break
			}
			for i, ref := range b {
				want := accesses[n+uint64(i)]
				if ref.VA() != want.VA || ref.Write() != want.Write {
					t.Fatalf("cut %d: record %d diverged", cut, n+uint64(i))
				}
			}
			n += uint64(len(b))
			buf = b
		}
	}
	// Cutting inside the magic is a bad trace, not a panic.
	if _, err := NewBatchReader(bytes.NewReader(data[:2])); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("short magic: err = %v, want ErrBadTrace", err)
	}
}

func TestBatchReaderRejectsLyingHeaders(t *testing.T) {
	for name, data := range map[string][]byte{
		"count zero":        append(append([]byte{}, magicV2[:]...), 0x00, 0x01, 0x00),
		"count over max":    append(append([]byte{}, magicV2[:]...), 0xff, 0xff, 0xff, 0xff, 0x0f, 0x01, 0x00),
		"payload too short": append(append([]byte{}, magicV2[:]...), 0x02, 0x01, 0x00),
		"payload too long":  append(append([]byte{}, magicV2[:]...), 0x01, 0x20),
		"leftover bytes":    append(append([]byte{}, magicV2[:]...), 0x01, 0x02, 0x00, 0x00),
	} {
		r, err := NewBatchReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: header rejected early: %v", name, err)
		}
		if _, err := r.ReadBatch(nil); !errors.Is(err, ErrNonCanonical) {
			t.Errorf("%s: ReadBatch err = %v, want ErrNonCanonical", name, err)
		}
	}
}

func TestConvertV1(t *testing.T) {
	accesses := mkAccesses(20_000, 7)
	var v1 bytes.Buffer
	w, err := NewWriter(&v1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accesses {
		w.Access(a.VA, a.Write)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	n, err := ConvertV1(&v2, bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(accesses)) {
		t.Fatalf("converted %d records, want %d", n, len(accesses))
	}
	got := readAllV2(t, v2.Bytes())
	for i := range got {
		if got[i] != accesses[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], accesses[i])
		}
	}
}

func TestOpenSniffsBothFormats(t *testing.T) {
	accesses := mkAccesses(3_000, 3)
	var v1 bytes.Buffer
	w, _ := NewWriter(&v1)
	for _, a := range accesses {
		w.Access(a.VA, a.Write)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v2 := writeV2(t, accesses, 1000)

	for name, data := range map[string][]byte{"v1": v1.Bytes(), "v2": v2} {
		src, err := Open(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: Open: %v", name, err)
		}
		var rec Recorder
		n, err := src.ReplayBatches(BatchSinkOf(&rec))
		if err != nil {
			t.Fatalf("%s: ReplayBatches: %v", name, err)
		}
		if n != uint64(len(accesses)) {
			t.Fatalf("%s: replayed %d, want %d", name, n, len(accesses))
		}
		for i := range rec.Accesses {
			if rec.Accesses[i] != accesses[i] {
				t.Fatalf("%s: record %d diverged", name, i)
			}
		}
	}
	if _, err := Open(bytes.NewReader([]byte("NOPE----"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad magic: err = %v, want ErrBadTrace", err)
	}
}

func TestV1ReaderReadBatch(t *testing.T) {
	accesses := mkAccesses(10_000, 11)
	var v1 bytes.Buffer
	w, _ := NewWriter(&v1)
	for _, a := range accesses {
		w.Access(a.VA, a.Write)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var n int
	buf := make(Batch, 0, 256)
	for {
		b, err := r.ReadBatch(buf)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range b {
			if ref.VA() != accesses[n].VA || ref.Write() != accesses[n].Write {
				t.Fatalf("record %d diverged", n)
			}
			n++
		}
		buf = b
	}
	if n != len(accesses) {
		t.Fatalf("decoded %d records, want %d", n, len(accesses))
	}
}

// TestV1ReplayBatchesDeliversPartialOnError pins batched-vs-scalar parity
// on a malformed v1 stream: the scalar ReplayAll delivers every record up
// to the decode error, so ReplayBatches must deliver the same records and
// report the same count rather than discarding the partial batch the
// error arrived with.
func TestV1ReplayBatchesDeliversPartialOnError(t *testing.T) {
	accesses := mkAccesses(1_000, 5)
	var v1 bytes.Buffer
	w, _ := NewWriter(&v1)
	for _, a := range accesses {
		w.Access(a.VA, a.Write)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// An unterminated varint after the valid records makes decoding fail
	// mid-stream.
	data := append(v1.Bytes(), 0x80)

	rScalar, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var recScalar Recorder
	nScalar, errScalar := rScalar.ReplayAll(&recScalar)
	if errScalar == nil {
		t.Fatal("corrupt stream replayed cleanly through ReplayAll")
	}
	if nScalar != uint64(len(accesses)) {
		t.Fatalf("ReplayAll delivered %d records before the error, want %d", nScalar, len(accesses))
	}

	rBatch, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var recBatch Recorder
	nBatch, errBatch := rBatch.ReplayBatches(BatchSinkOf(&recBatch))
	if errBatch == nil {
		t.Fatal("corrupt stream replayed cleanly through ReplayBatches")
	}
	if nBatch != nScalar {
		t.Fatalf("ReplayBatches delivered %d records, scalar path delivered %d", nBatch, nScalar)
	}
	if len(recBatch.Accesses) != len(recScalar.Accesses) {
		t.Fatalf("batched sink saw %d records, scalar sink saw %d", len(recBatch.Accesses), len(recScalar.Accesses))
	}
	for i := range recBatch.Accesses {
		if recBatch.Accesses[i] != recScalar.Accesses[i] {
			t.Fatalf("record %d diverged between the batched and scalar error paths", i)
		}
	}
}
