package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzBatchEncodeDecode drives the v2 format from both ends. The input
// bytes are interpreted twice:
//
//  1. As a VA/write stream: chunks of 9 bytes become (VA, write) records,
//     which must survive delta-encode → frame → decode byte-identically,
//     whatever the deltas look like.
//  2. As a raw v2 stream body: appended after the magic, arbitrary frames
//     must decode or fail with ErrNonCanonical — truncation and header
//     lies yield errors, never panics or miscounted records.
func FuzzBatchEncodeDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x00})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	seed := []byte{}
	for i := 0; i < 32; i++ {
		seed = append(seed, byte(i*7), byte(i), 0, 0, byte(i*13), 0, 0, 0, byte(i%2))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Leg 1: arbitrary canonical VA streams round-trip exactly.
		var in Batch
		for i := 0; i+9 <= len(data); i += 9 {
			va := uint64(0)
			for j := 0; j < 8; j++ {
				va = va<<8 | uint64(data[i+j])
			}
			in = append(in, MakeRef(va%(1<<62), data[i+8]&1 == 1))
		}
		if len(in) > 0 {
			var buf bytes.Buffer
			w, err := NewBatchWriter(&buf)
			if err != nil {
				t.Fatal(err)
			}
			// Uneven batch splits exercise frame-boundary delta resets.
			split := 1 + len(in)%97
			for off := 0; off < len(in); off += split {
				end := off + split
				if end > len(in) {
					end = len(in)
				}
				if err := w.WriteBatch(in[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			r, err := NewBatchReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var got Batch
			b := make(Batch, 0, split)
			for {
				b, err = r.ReadBatch(b)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatalf("round-trip decode failed: %v", err)
				}
				got = append(got, b...)
			}
			if len(got) != len(in) {
				t.Fatalf("round-trip decoded %d records, want %d", len(got), len(in))
			}
			for i := range got {
				if got[i] != in[i] {
					t.Fatalf("record %d = %#x, want %#x", i, got[i], in[i])
				}
			}
		}

		// Leg 2: arbitrary bytes after the magic never panic the reader.
		stream := append(append([]byte{}, magicV2[:]...), data...)
		r, err := NewBatchReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("valid magic rejected: %v", err)
		}
		var n uint64
		buf := make(Batch, 0, 64)
		for {
			b, err := r.ReadBatch(buf)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrNonCanonical) {
					t.Fatalf("decode error %v, want ErrNonCanonical", err)
				}
				break
			}
			if len(b) == 0 {
				t.Fatal("ReadBatch returned an empty batch without error")
			}
			n += uint64(len(b))
			buf = b
		}
		if r.Count() != n {
			t.Fatalf("Count() = %d, want %d", r.Count(), n)
		}
	})
}
