// Package core defines the fundamental address types and the mosaic-page
// geometry from "Mosaic Pages: Big TLB Reach with Small Pages" (ASPLOS '23).
//
// A mosaic page is a run of Arity virtually-contiguous 4 KiB base pages.
// Physical memory is organized as an Iceberg hash table: buckets of
// BucketSize frames, split into a frontyard of FrontyardSize frames and a
// backyard of BackyardSize frames. A virtual page hashes to one frontyard
// bucket and Choices backyard buckets, for a total associativity of
// h = FrontyardSize + Choices*BackyardSize candidate frames. Which of the h
// candidates was chosen is recorded in a compressed physical frame number
// (CPFN) of ceil(log2(h+1)) bits — 7 bits for the paper's default geometry
// (f=56, b=8, d=6, h=104).
package core

import "fmt"

// Base page parameters (4 KiB pages, as in the paper).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// PFN is a physical frame number (physical address >> PageShift).
type PFN uint64

// Add returns the PFN delta frames above p. Callers outside internal/core
// and internal/alloc must use Add/Sub instead of raw PFN arithmetic, so that
// every frame-number computation the mosaiclint cpfnbounds analyzer cannot
// see is funneled through these two audited helpers.
func (p PFN) Add(delta uint64) PFN { return p + PFN(delta) }

// Sub returns the PFN delta frames below p. See Add.
func (p PFN) Sub(delta uint64) PFN { return p - PFN(delta) }

// MVPN is a mosaic virtual page number: the VPN of the mosaic page a base
// page belongs to, i.e. VPN / arity for a power-of-two arity.
type MVPN uint64

// ASID identifies an address space. The paper hashes (ASID, VPN) pairs so
// that distinct address spaces get independent placement constraints.
type ASID uint32

// CPFN is a compressed physical frame number: an index in [0, h) naming
// which of the h candidate slots a page was placed in, or CPFNInvalid.
//
// The canonical value space is:
//
//	[0, f)          frontyard slot s of the page's frontyard bucket
//	f + j*b + s     backyard slot s of the page's j-th backyard choice
//
// The paper's exact 7-bit hardware bit layout for the default geometry is
// available via Geometry.EncodeHW / Geometry.DecodeHW.
type CPFN uint8

// CPFNInvalid marks an unmapped sub-page within a table of contents. It is
// the all-ones encoding in the paper's 7-bit layout.
const CPFNInvalid CPFN = 0xFF

// Valid reports whether c names a slot (it does not validate the slot
// against any particular geometry; use Geometry.ValidCPFN for that).
func (c CPFN) Valid() bool { return c != CPFNInvalid }

// Geometry describes the iceberg bucket layout of physical memory.
// The zero value is not useful; use DefaultGeometry or construct one and
// call Validate.
type Geometry struct {
	// FrontyardSize (f) is the number of frontyard frames per bucket.
	FrontyardSize int
	// BackyardSize (b) is the number of backyard frames per bucket.
	BackyardSize int
	// Choices (d) is the number of backyard buckets a page may choose
	// among (power-of-d-choices).
	Choices int
}

// DefaultGeometry is the prototype configuration from §3.1 of the paper:
// frontyard bins of 56 frames, backyard bins of 8 frames, 6 backyard
// choices, for a total associativity of 104 and a 7-bit CPFN.
var DefaultGeometry = Geometry{FrontyardSize: 56, BackyardSize: 8, Choices: 6}

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	switch {
	case g.FrontyardSize <= 0:
		return fmt.Errorf("core: frontyard size %d must be positive", g.FrontyardSize)
	case g.BackyardSize <= 0:
		return fmt.Errorf("core: backyard size %d must be positive", g.BackyardSize)
	case g.Choices <= 0:
		return fmt.Errorf("core: backyard choices %d must be positive", g.Choices)
	case g.Associativity() > 254:
		return fmt.Errorf("core: associativity %d does not fit a byte-wide CPFN", g.Associativity())
	}
	return nil
}

// BucketSize is the number of frames per bucket: frontyard plus backyard.
func (g Geometry) BucketSize() int { return g.FrontyardSize + g.BackyardSize }

// Associativity is h, the number of physical frames a given virtual page
// may occupy: f + d*b.
func (g Geometry) Associativity() int { return g.FrontyardSize + g.Choices*g.BackyardSize }

// CPFNBits is the number of bits needed to store a CPFN for this geometry,
// including the reserved unmapped encoding: ceil(log2(h+1)).
func (g Geometry) CPFNBits() int {
	n := g.Associativity() + 1 // +1 for the unmapped sentinel
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// HashCount is the number of independent hash outputs placement needs:
// one frontyard bucket plus Choices backyard buckets.
func (g Geometry) HashCount() int { return 1 + g.Choices }

// FrontyardCPFN returns the canonical CPFN for frontyard slot s. It panics
// if the slot is out of range.
func (g Geometry) FrontyardCPFN(slot int) CPFN {
	if slot < 0 || slot >= g.FrontyardSize {
		panic(fmt.Sprintf("core: frontyard slot %d out of range [0,%d)", slot, g.FrontyardSize))
	}
	return CPFN(slot)
}

// BackyardCPFN returns the canonical CPFN for slot s of backyard choice j.
// It panics if the choice or slot is out of range.
func (g Geometry) BackyardCPFN(choice, slot int) CPFN {
	if choice < 0 || choice >= g.Choices {
		panic(fmt.Sprintf("core: backyard choice %d out of range [0,%d)", choice, g.Choices))
	}
	if slot < 0 || slot >= g.BackyardSize {
		panic(fmt.Sprintf("core: backyard slot %d out of range [0,%d)", slot, g.BackyardSize))
	}
	return CPFN(g.FrontyardSize + choice*g.BackyardSize + slot)
}

// ValidCPFN reports whether c is a well-formed slot index for this geometry.
func (g Geometry) ValidCPFN(c CPFN) bool {
	return c != CPFNInvalid && int(c) < g.Associativity()
}

// IsFrontyard reports whether c names a frontyard slot.
func (g Geometry) IsFrontyard(c CPFN) bool {
	return c != CPFNInvalid && int(c) < g.FrontyardSize
}

// Split decomposes a canonical CPFN into its placement components.
// For a frontyard CPFN, choice is -1 and slot is the frontyard offset.
// For a backyard CPFN, choice is the backyard-choice index and slot the
// offset within that backyard bin. Split panics on an invalid CPFN.
func (g Geometry) Split(c CPFN) (choice, slot int) {
	if !g.ValidCPFN(c) {
		panic(fmt.Sprintf("core: split of invalid CPFN %#x", uint8(c)))
	}
	v := int(c)
	if v < g.FrontyardSize {
		return -1, v
	}
	v -= g.FrontyardSize
	return v / g.BackyardSize, v % g.BackyardSize
}

// EncodeHW converts a canonical CPFN to the paper's 7-bit hardware layout
// (§3.1): all-ones means unmapped; otherwise the leading bit selects
// frontyard (0) or backyard (1); a frontyard value carries a 6-bit slot
// offset; a backyard value carries a 3-bit choice and a 3-bit slot.
// EncodeHW is only defined for the default geometry (f=56, b=8, d=6) and
// panics for any other.
func (g Geometry) EncodeHW(c CPFN) uint8 {
	if g != DefaultGeometry {
		panic("core: hardware CPFN layout is defined for the default geometry only")
	}
	if c == CPFNInvalid {
		return 0x7F
	}
	choice, slot := g.Split(c)
	if choice < 0 {
		return uint8(slot) // 0b0_ssssss
	}
	return 0x40 | uint8(choice)<<3 | uint8(slot) // 0b1_ccc_sss
}

// DecodeHW is the inverse of EncodeHW. It panics for a non-default
// geometry or a raw value that does not encode a valid slot.
func (g Geometry) DecodeHW(raw uint8) CPFN {
	if g != DefaultGeometry {
		panic("core: hardware CPFN layout is defined for the default geometry only")
	}
	if raw == 0x7F {
		return CPFNInvalid
	}
	if raw&0x40 == 0 {
		slot := int(raw & 0x3F)
		if slot >= g.FrontyardSize {
			panic(fmt.Sprintf("core: hardware CPFN %#x has frontyard slot %d out of range", raw, slot))
		}
		return g.FrontyardCPFN(slot)
	}
	choice := int(raw>>3) & 0x7
	slot := int(raw) & 0x7
	if choice >= g.Choices {
		panic(fmt.Sprintf("core: hardware CPFN %#x has backyard choice %d out of range", raw, choice))
	}
	return g.BackyardCPFN(choice, slot)
}

// PlacementHash produces the bucket choices for a virtual page. fn is the
// hash-function index: 0 selects the frontyard bucket, 1..Choices select
// backyard buckets. Implementations must be deterministic for a given
// construction seed. The returned value is reduced modulo the bucket count
// by the caller.
type PlacementHash interface {
	// Hash returns the raw 64-bit hash of (asid, vpn) under function fn.
	Hash(asid ASID, vpn VPN, fn int) uint64
}

// PlacementHashFunc adapts a plain function to the PlacementHash interface.
type PlacementHashFunc func(asid ASID, vpn VPN, fn int) uint64

// Hash implements PlacementHash.
func (f PlacementHashFunc) Hash(asid ASID, vpn VPN, fn int) uint64 { return f(asid, vpn, fn) }

// Buckets fills dst[0] with the frontyard bucket index and dst[1..d] with
// the backyard bucket indices for (asid, vpn), all in [0, numBuckets).
// dst must have length g.HashCount() (Buckets panics otherwise, or if
// numBuckets is zero). It returns dst for convenience.
func (g Geometry) Buckets(h PlacementHash, asid ASID, vpn VPN, numBuckets uint64, dst []uint64) []uint64 {
	if len(dst) != g.HashCount() {
		panic(fmt.Sprintf("core: Buckets dst length %d, want %d", len(dst), g.HashCount()))
	}
	if numBuckets == 0 {
		panic("core: Buckets with zero buckets")
	}
	for fn := range dst {
		dst[fn] = h.Hash(asid, vpn, fn) % numBuckets
	}
	return dst
}

// FrameFor computes the physical frame named by a canonical CPFN, given the
// page's bucket choices (as produced by Buckets). Buckets are laid out
// contiguously in physical memory: bucket i owns frames
// [i*BucketSize, (i+1)*BucketSize), the first FrontyardSize of which are
// frontyard slots and the rest backyard slots.
func (g Geometry) FrameFor(c CPFN, buckets []uint64) PFN {
	choice, slot := g.Split(c)
	if choice < 0 {
		return PFN(buckets[0]*uint64(g.BucketSize()) + uint64(slot))
	}
	return PFN(buckets[1+choice]*uint64(g.BucketSize()) + uint64(g.FrontyardSize) + uint64(slot))
}

// MosaicPage computes the mosaic virtual page number and the sub-page
// offset of vpn for a power-of-two arity. It panics if arity is not a
// positive power of two.
func MosaicPage(vpn VPN, arity int) (MVPN, int) {
	if arity&(arity-1) != 0 || arity <= 0 {
		panic(fmt.Sprintf("core: arity %d is not a positive power of two", arity))
	}
	return MVPN(uint64(vpn) / uint64(arity)), int(uint64(vpn) % uint64(arity))
}

// BaseVPN is the inverse of MosaicPage: the VPN of sub-page off within m.
// It panics if off is out of range for the arity.
func BaseVPN(m MVPN, arity, off int) VPN {
	if off < 0 || off >= arity {
		panic(fmt.Sprintf("core: mosaic offset %d out of range [0,%d)", off, arity))
	}
	return VPN(uint64(m)*uint64(arity) + uint64(off))
}

// VPNOf extracts the virtual page number of a virtual address.
func VPNOf(va uint64) VPN { return VPN(va >> PageShift) }

// PageOffset extracts the within-page byte offset of a virtual address.
func PageOffset(va uint64) uint64 { return va & (PageSize - 1) }

// Address reconstructs a virtual address from a VPN and offset.
func Address(vpn VPN, offset uint64) uint64 {
	return uint64(vpn)<<PageShift | (offset & (PageSize - 1))
}
