package core

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if got := g.BucketSize(); got != 64 {
		t.Errorf("BucketSize = %d, want 64", got)
	}
	if got := g.Associativity(); got != 104 {
		t.Errorf("Associativity = %d, want 104", got)
	}
	if got := g.CPFNBits(); got != 7 {
		t.Errorf("CPFNBits = %d, want 7", got)
	}
	if got := g.HashCount(); got != 7 {
		t.Errorf("HashCount = %d, want 7 (1 frontyard + 6 backyard)", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
		ok   bool
	}{
		{"default", DefaultGeometry, true},
		{"zero frontyard", Geometry{0, 8, 6}, false},
		{"zero backyard", Geometry{56, 0, 6}, false},
		{"zero choices", Geometry{56, 8, 0}, false},
		{"negative frontyard", Geometry{-1, 8, 6}, false},
		{"too associative", Geometry{200, 8, 7}, false}, // 200+56 = 256 > 254
		{"small", Geometry{4, 2, 2}, true},
		{"max byte", Geometry{246, 1, 8}, true}, // h = 254
	}
	for _, tc := range cases {
		if err := tc.g.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestCPFNBits(t *testing.T) {
	cases := []struct {
		g    Geometry
		bits int
	}{
		{Geometry{56, 8, 6}, 7},  // h=104, need 105 values
		{Geometry{1, 1, 1}, 2},   // h=2, need 3 values
		{Geometry{3, 1, 4}, 3},   // h=7, need 8 values
		{Geometry{4, 1, 3}, 3},   // h=7
		{Geometry{8, 8, 7}, 7},   // h=64, need 65 values
		{Geometry{246, 1, 8}, 8}, // h=254, need 255 values
	}
	for _, tc := range cases {
		if got := tc.g.CPFNBits(); got != tc.bits {
			t.Errorf("CPFNBits(%+v) = %d, want %d", tc.g, got, tc.bits)
		}
	}
}

func TestCPFNSplitRoundTrip(t *testing.T) {
	g := DefaultGeometry
	for s := 0; s < g.FrontyardSize; s++ {
		c := g.FrontyardCPFN(s)
		choice, slot := g.Split(c)
		if choice != -1 || slot != s {
			t.Fatalf("frontyard slot %d: Split = (%d,%d)", s, choice, slot)
		}
		if !g.IsFrontyard(c) {
			t.Fatalf("frontyard CPFN %d not recognized as frontyard", c)
		}
	}
	for j := 0; j < g.Choices; j++ {
		for s := 0; s < g.BackyardSize; s++ {
			c := g.BackyardCPFN(j, s)
			choice, slot := g.Split(c)
			if choice != j || slot != s {
				t.Fatalf("backyard (%d,%d): Split = (%d,%d)", j, s, choice, slot)
			}
			if g.IsFrontyard(c) {
				t.Fatalf("backyard CPFN %d recognized as frontyard", c)
			}
		}
	}
}

func TestCPFNValidity(t *testing.T) {
	g := DefaultGeometry
	if CPFNInvalid.Valid() {
		t.Error("CPFNInvalid.Valid() = true")
	}
	if g.ValidCPFN(CPFNInvalid) {
		t.Error("ValidCPFN(CPFNInvalid) = true")
	}
	if !g.ValidCPFN(0) || !g.ValidCPFN(103) {
		t.Error("boundary CPFNs 0 and 103 should be valid")
	}
	if g.ValidCPFN(104) {
		t.Error("CPFN 104 should be invalid for h=104")
	}
}

func TestHWEncoding(t *testing.T) {
	g := DefaultGeometry
	cases := []struct {
		c   CPFN
		raw uint8
	}{
		{g.FrontyardCPFN(0), 0x00},
		{g.FrontyardCPFN(5), 0x05},
		{g.FrontyardCPFN(55), 0x37},
		{g.BackyardCPFN(0, 0), 0x40},
		{g.BackyardCPFN(3, 6), 0x5E}, // 0b1_011_110
		{g.BackyardCPFN(5, 7), 0x6F}, // 0b1_101_111
		{CPFNInvalid, 0x7F},
	}
	for _, tc := range cases {
		if got := g.EncodeHW(tc.c); got != tc.raw {
			t.Errorf("EncodeHW(%d) = %#x, want %#x", tc.c, got, tc.raw)
		}
		if got := g.DecodeHW(tc.raw); got != tc.c {
			t.Errorf("DecodeHW(%#x) = %d, want %d", tc.raw, got, tc.c)
		}
	}
	// The hardware layout must fit in 7 bits for every valid CPFN.
	for c := CPFN(0); g.ValidCPFN(c); c++ {
		if raw := g.EncodeHW(c); raw > 0x7F {
			t.Errorf("EncodeHW(%d) = %#x exceeds 7 bits", c, raw)
		}
	}
}

func TestHWEncodingRoundTripAll(t *testing.T) {
	g := DefaultGeometry
	seen := make(map[uint8]bool)
	for c := CPFN(0); int(c) < g.Associativity(); c++ {
		raw := g.EncodeHW(c)
		if seen[raw] {
			t.Fatalf("hardware encoding %#x assigned twice", raw)
		}
		seen[raw] = true
		if back := g.DecodeHW(raw); back != c {
			t.Fatalf("round trip %d -> %#x -> %d", c, raw, back)
		}
	}
	if len(seen) != 104 {
		t.Fatalf("expected 104 distinct encodings, got %d", len(seen))
	}
}

func TestHWEncodingNonDefaultPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeHW on non-default geometry should panic")
		}
	}()
	Geometry{8, 8, 2}.EncodeHW(0)
}

func TestSplitInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(CPFNInvalid) should panic")
		}
	}()
	DefaultGeometry.Split(CPFNInvalid)
}

func TestMosaicPage(t *testing.T) {
	cases := []struct {
		vpn   VPN
		arity int
		mvpn  MVPN
		off   int
	}{
		{0, 4, 0, 0},
		{3, 4, 0, 3},
		{4, 4, 1, 0},
		{0x1013, 4, 0x404, 3},
		{0x1013, 64, 0x40, 0x13},
		{7, 1, 7, 0},
	}
	for _, tc := range cases {
		m, off := MosaicPage(tc.vpn, tc.arity)
		if m != tc.mvpn || off != tc.off {
			t.Errorf("MosaicPage(%#x, %d) = (%#x, %d), want (%#x, %d)",
				tc.vpn, tc.arity, m, off, tc.mvpn, tc.off)
		}
		if back := BaseVPN(m, tc.arity, off); back != tc.vpn {
			t.Errorf("BaseVPN(%#x, %d, %d) = %#x, want %#x", m, tc.arity, off, back, tc.vpn)
		}
	}
}

func TestMosaicPageBadArityPanics(t *testing.T) {
	for _, arity := range []int{0, -4, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MosaicPage with arity %d should panic", arity)
				}
			}()
			MosaicPage(1, arity)
		}()
	}
}

func TestMosaicPageRoundTripProperty(t *testing.T) {
	for _, arity := range []int{1, 2, 4, 8, 16, 32, 64} {
		arity := arity
		f := func(raw uint64) bool {
			vpn := VPN(raw >> 24) // keep within 40 bits
			m, off := MosaicPage(vpn, arity)
			return BaseVPN(m, arity, off) == vpn && off < arity
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("arity %d: %v", arity, err)
		}
	}
}

func TestAddressHelpers(t *testing.T) {
	va := uint64(0x7f1234567abc)
	if got := VPNOf(va); got != VPN(0x7f1234567) {
		t.Errorf("VPNOf = %#x", got)
	}
	if got := PageOffset(va); got != 0xabc {
		t.Errorf("PageOffset = %#x", got)
	}
	if got := Address(VPNOf(va), PageOffset(va)); got != va {
		t.Errorf("Address round trip = %#x, want %#x", got, va)
	}
}

func TestAddressRoundTripProperty(t *testing.T) {
	f := func(va uint64) bool {
		return Address(VPNOf(va), PageOffset(va)) == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type constHash uint64

func (c constHash) Hash(asid ASID, vpn VPN, fn int) uint64 {
	return uint64(c) + uint64(fn)*1000
}

func TestBucketsAndFrameFor(t *testing.T) {
	g := DefaultGeometry
	dst := make([]uint64, g.HashCount())
	g.Buckets(constHash(5), 1, 2, 100, dst)
	want := []uint64{5, 1005 % 100, 2005 % 100, 3005 % 100, 4005 % 100, 5005 % 100, 6005 % 100}
	for i := range dst {
		if dst[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	// Frontyard slot 10 of bucket 5: frame 5*64 + 10.
	if got := g.FrameFor(g.FrontyardCPFN(10), dst); got != PFN(5*64+10) {
		t.Errorf("frontyard FrameFor = %d", got)
	}
	// Backyard choice 2 slot 3: bucket dst[3] = 5, frame 5*64 + 56 + 3.
	if got := g.FrameFor(g.BackyardCPFN(2, 3), dst); got != PFN(dst[3]*64+56+3) {
		t.Errorf("backyard FrameFor = %d", got)
	}
}

func TestBucketsLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Buckets with wrong dst length should panic")
		}
	}()
	DefaultGeometry.Buckets(constHash(0), 0, 0, 10, make([]uint64, 3))
}

func TestFrameForDistinctFrames(t *testing.T) {
	// Within one set of bucket choices, all 104 CPFNs must name frames, and
	// frontyard frames must differ from each other; backyard frames within
	// one choice must differ from each other.
	g := DefaultGeometry
	buckets := []uint64{3, 10, 11, 12, 13, 14, 15}
	seen := make(map[PFN]CPFN)
	for c := CPFN(0); int(c) < g.Associativity(); c++ {
		f := g.FrameFor(c, buckets)
		if prev, dup := seen[f]; dup {
			t.Fatalf("CPFN %d and %d both map to frame %d", prev, c, f)
		}
		seen[f] = c
	}
}
