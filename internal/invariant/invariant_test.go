package invariant

import (
	"strings"
	"testing"
)

func TestReport(t *testing.T) {
	var r Report
	if !r.OK() || r.Err() != nil {
		t.Fatal("fresh report should be clean")
	}
	if !r.Checkf(true, "a", "never recorded") {
		t.Fatal("Checkf(true) must report true")
	}
	if r.Checkf(false, "rule.one", "bad value %d", 7) {
		t.Fatal("Checkf(false) must report false")
	}
	r.Violatef("rule.two", "second")
	if r.OK() {
		t.Fatal("report with violations claims OK")
	}
	vs := r.Violations()
	if len(vs) != 2 || vs[0].Rule != "rule.one" || vs[1].Rule != "rule.two" {
		t.Fatalf("violations = %v", vs)
	}
	err := r.Err()
	if err == nil {
		t.Fatal("Err() = nil with violations recorded")
	}
	for _, want := range []string{"2 invariant violation(s)", "rule.one: bad value 7", "rule.two: second"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Err() = %q, missing %q", err, want)
		}
	}
}

func TestMonotone(t *testing.T) {
	var r Report
	m := NewMonotone("clock")
	m.Observe(&r, 3)
	m.Observe(&r, 3)
	m.Observe(&r, 10)
	if !r.OK() {
		t.Fatalf("non-decreasing sequence flagged: %v", r.Err())
	}
	m.Observe(&r, 9)
	if r.OK() {
		t.Fatal("decrease not flagged")
	}
	if v := r.Violations()[0]; v.Rule != "clock" || !strings.Contains(v.Detail, "10 to 9") {
		t.Fatalf("violation = %v", v)
	}
}

func TestStability(t *testing.T) {
	var r Report
	s := NewStability[string, int]("slots")
	s.Observe(&r, map[string]int{"a": 1, "b": 2})
	// b deleted, c inserted: both fine.
	s.Observe(&r, map[string]int{"a": 1, "c": 3})
	if !r.OK() {
		t.Fatalf("insert/delete flagged as relocation: %v", r.Err())
	}
	// a relocates: violation.
	s.Observe(&r, map[string]int{"a": 4, "c": 3})
	if r.OK() {
		t.Fatal("relocation not flagged")
	}
	if d := r.Violations()[0].Detail; !strings.Contains(d, "relocated from 1 to 4") {
		t.Fatalf("detail = %q", d)
	}
}

func TestStabilityRetainsCopy(t *testing.T) {
	var r Report
	s := NewStability[int, int]("slots")
	snap := map[int]int{1: 1}
	s.Observe(&r, snap)
	snap[1] = 99 // mutating the caller's map must not corrupt the baseline
	s.Observe(&r, map[int]int{1: 1})
	if !r.OK() {
		t.Fatalf("tracker aliased the caller's snapshot: %v", r.Err())
	}
}
