// Package invariant is the runtime half of the repository's correctness
// tooling (the static half is internal/lint). It provides a tiny reporting
// API plus reusable trackers for the properties the mosaic stack leans on:
//
//   - Report collects violations instead of panicking, so one deep check
//     can surface every broken invariant at once and tests can assert that
//     a deliberately corrupted structure is in fact caught.
//   - Monotone checks a sequence never decreases — the Horizon LRU's ghost
//     threshold and the vm access clock are both monotone by construction.
//   - Stability checks that keys never relocate between snapshots — the
//     iceberg property (§2.3) that lets mapped pages stay put for life.
//
// The deep checkers themselves (CheckInvariants methods) live inside the
// data-structure packages, where unexported state is visible: see
// iceberg.Table, alloc.Memory, buddy.Allocator, vm.System, and
// memsim.Simulator. Tests call them directly; memsim can also run them
// periodically during a simulation via Config.CheckEvery.
package invariant

import (
	"errors"
	"fmt"
	"strings"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule names the invariant, e.g. "iceberg.backyard-occupancy".
	Rule string
	// Detail describes the observed inconsistency.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Report accumulates violations from one or more checkers.
type Report struct {
	violations []Violation
	checks     int
}

// Violatef records a violation of rule.
func (r *Report) Violatef(rule, format string, args ...any) {
	r.checks++
	r.violations = append(r.violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// Checkf records a violation of rule unless cond holds, and reports cond.
func (r *Report) Checkf(cond bool, rule, format string, args ...any) bool {
	if !cond {
		r.Violatef(rule, format, args...) // Violatef counts the check
		return false
	}
	r.checks++
	return true
}

// Checks is the number of individual checks evaluated — telemetry for
// "how much did this invariant pass actually look at".
func (r *Report) Checks() int { return r.checks }

// OK reports whether no violation has been recorded.
func (r *Report) OK() bool { return len(r.violations) == 0 }

// Violations returns the recorded violations in order.
func (r *Report) Violations() []Violation { return r.violations }

// Err returns nil if the report is clean, and otherwise an error listing
// every violation, one per line.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s):", len(r.violations))
	for _, v := range r.violations {
		b.WriteString("\n\t")
		b.WriteString(v.String())
	}
	return errors.New(b.String())
}

// Monotone tracks a value that must never decrease across observations.
type Monotone struct {
	rule string
	seen bool
	last uint64
}

// NewMonotone creates a tracker reporting under the given rule name.
func NewMonotone(rule string) *Monotone { return &Monotone{rule: rule} }

// Observe records v, reporting a violation if it is below the previous
// observation.
func (m *Monotone) Observe(r *Report, v uint64) {
	if m.seen && v < m.last {
		r.Violatef(m.rule, "value decreased from %d to %d", m.last, v)
	}
	m.seen, m.last = true, v
}

// Stability tracks that keys never change position between snapshots:
// a key present in two consecutive snapshots must map to the same position
// in both. Keys may appear and disappear freely (insertions and deletions);
// only relocation of a surviving key is a violation.
type Stability[K comparable, P comparable] struct {
	rule string
	prev map[K]P
}

// NewStability creates a tracker reporting under the given rule name.
func NewStability[K comparable, P comparable](rule string) *Stability[K, P] {
	return &Stability[K, P]{rule: rule}
}

// Observe compares cur against the previous snapshot and retains a copy of
// cur for the next call.
func (s *Stability[K, P]) Observe(r *Report, cur map[K]P) {
	for k, p := range cur {
		if old, ok := s.prev[k]; ok && old != p {
			r.Violatef(s.rule, "key %v relocated from %v to %v", k, old, p)
		}
	}
	s.prev = make(map[K]P, len(cur))
	for k, p := range cur {
		s.prev[k] = p
	}
}
