// Package alloc implements physical-frame allocation for mosaic pages
// (§2.3, §3.2 of the paper) plus the unconstrained baseline allocator.
//
// Physical memory is treated as an Iceberg hash table: frames are grouped
// into buckets of geometry.BucketSize() contiguous frames, the first
// FrontyardSize of which form the bucket's frontyard and the remainder its
// backyard. A virtual page (ASID, VPN) hashes to one frontyard bucket and
// Choices backyard buckets; allocation places it in the frontyard if there
// is room and otherwise in the emptiest backyard choice.
//
// The allocator is ghost-aware (§2.4): pages whose last access predates the
// caller-supplied horizon are treated as free for placement purposes and
// are reclaimed (really evicted) only when their frame is actually needed.
// That reclamation is reported back to the caller so the OS layer can
// record the swap-out.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"

	"mosaic/internal/core"
)

// ErrConflict is returned by Memory.Place when every one of the page's h
// candidate frames holds a live (non-ghost) page: an associativity
// conflict. The caller must evict a victim (see Candidates/Evict) and retry.
var ErrConflict = errors.New("alloc: associativity conflict — all candidate frames hold live pages")

// ErrNoMemory is returned by the unconstrained allocator when no frame is
// free; the caller must reclaim and retry.
var ErrNoMemory = errors.New("alloc: out of physical frames")

// Owner identifies the virtual page occupying a frame.
type Owner struct {
	ASID core.ASID
	VPN  core.VPN
}

// frame is the per-physical-frame bookkeeping record.
type frame struct {
	owner      Owner
	lastAccess uint64
	used       bool
	dirty      bool
}

// Placement describes a completed allocation.
type Placement struct {
	// PFN is the allocated physical frame.
	PFN core.PFN
	// CPFN is the compressed encoding of which candidate slot was chosen.
	CPFN core.CPFN
	// Evicted, if non-nil, is the ghost page whose frame was reclaimed to
	// satisfy this allocation. The OS layer must unmap it and charge a
	// swap-out.
	Evicted *Owner
}

// Candidate describes one of a page's h candidate frames, for victim
// selection on a conflict.
type Candidate struct {
	PFN        core.PFN
	CPFN       core.CPFN
	Used       bool
	Owner      Owner
	LastAccess uint64
}

// Memory is a mosaic (iceberg-constrained) physical memory. It is not safe
// for concurrent use.
type Memory struct {
	geom       core.Geometry
	hash       core.PlacementHash
	numBuckets uint64
	numFrames  int
	frames     []frame
	// occupied holds one bit per frame within each bucket; bit s of
	// occupied[i] covers frame i*BucketSize+s. BucketSize must be ≤ 64.
	occupied []uint64
	used     int

	scratch []uint64
}

// NewMemory creates a mosaic physical memory of numFrames frames (rounded
// down to whole buckets) using the given geometry and placement hash.
func NewMemory(numFrames int, geom core.Geometry, hash core.PlacementHash) *Memory {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if geom.BucketSize() > 64 {
		panic(fmt.Sprintf("alloc: bucket size %d exceeds the 64-frame occupancy word", geom.BucketSize()))
	}
	if hash == nil {
		panic("alloc: nil placement hash")
	}
	bs := geom.BucketSize()
	numBuckets := numFrames / bs
	if numBuckets == 0 {
		panic(fmt.Sprintf("alloc: %d frames is less than one bucket (%d)", numFrames, bs))
	}
	return &Memory{
		geom:       geom,
		hash:       hash,
		numBuckets: uint64(numBuckets),
		numFrames:  numBuckets * bs,
		frames:     make([]frame, numBuckets*bs),
		occupied:   make([]uint64, numBuckets),
		scratch:    make([]uint64, geom.HashCount()),
	}
}

// NumFrames is the number of physical frames (a whole number of buckets).
func (m *Memory) NumFrames() int { return m.numFrames }

// NumBuckets is the number of iceberg buckets.
func (m *Memory) NumBuckets() uint64 { return m.numBuckets }

// Geometry returns the bucket geometry.
func (m *Memory) Geometry() core.Geometry { return m.geom }

// Used is the number of resident pages — live and ghost alike, since ghosts
// still occupy their frames until reclaimed.
func (m *Memory) Used() int { return m.used }

// Utilization is Used divided by NumFrames.
func (m *Memory) Utilization() float64 { return float64(m.used) / float64(m.numFrames) }

// LiveCount counts resident pages whose last access is at or after horizon
// (i.e. non-ghost pages). It scans all frames; use it at sample points, not
// per allocation.
func (m *Memory) LiveCount(horizon uint64) int {
	n := 0
	for i := range m.frames {
		if m.frames[i].used && m.frames[i].lastAccess >= horizon {
			n++
		}
	}
	return n
}

func (m *Memory) buckets(asid core.ASID, vpn core.VPN) []uint64 {
	return m.geom.Buckets(m.hash, asid, vpn, m.numBuckets, m.scratch)
}

// frameIndex converts a (bucket, slot) coordinate into a frames index.
// Buckets arrive already reduced modulo numBuckets by Geometry.Buckets; the
// reduction here restates that bound so the narrowing stays in range even
// for a corrupted bucket value.
func (m *Memory) frameIndex(bucket uint64, slot int) int {
	return int(bucket%m.numBuckets)*m.geom.BucketSize() + slot
}

// Place allocates a frame for (asid, vpn) following the iceberg discipline,
// treating pages older than horizon as ghosts (reclaimable). now becomes
// the new page's initial access time. On success the page is resident at
// Placement.PFN. Place never evicts a live page; on ErrConflict the caller
// picks a victim from Candidates, Evicts it, and retries.
func (m *Memory) Place(asid core.ASID, vpn core.VPN, now, horizon uint64) (Placement, error) {
	bk := m.buckets(asid, vpn)
	f := m.geom.FrontyardSize
	b := m.geom.BackyardSize
	bs := m.geom.BucketSize()

	// Frontyard: a free slot wins outright.
	fmask := uint64(1)<<uint(f) - 1
	if freeBits := ^m.occupied[bk[0]] & fmask; freeBits != 0 {
		slot := bits.TrailingZeros64(freeBits)
		return m.install(bk, asid, vpn, now, m.geom.FrontyardCPFN(slot), -1, slot, nil), nil
	}
	// Frontyard full: reclaim its oldest ghost if it has one.
	if slot, ok := m.oldestGhost(bk[0], 0, f, horizon); ok {
		evicted := m.reclaim(m.frameIndex(bk[0], slot))
		return m.install(bk, asid, vpn, now, m.geom.FrontyardCPFN(slot), -1, slot, &evicted), nil
	}

	// Backyard: power-of-d-choices counting only live pages (§2.4: "ghost
	// pages do not count towards a bucket's occupancy").
	bestChoice, bestLive := -1, b+1
	for j := 0; j < m.geom.Choices; j++ {
		live := 0
		base := m.frameIndex(bk[1+j], f)
		occ := m.occupied[bk[1+j]] >> uint(f)
		for s := 0; s < b; s++ {
			if occ&(1<<uint(s)) != 0 && m.frames[base+s].lastAccess >= horizon {
				live++
			}
		}
		if live < bestLive {
			bestChoice, bestLive = j, live
		}
	}
	if bestLive >= b {
		return Placement{}, ErrConflict
	}
	bucket := bk[1+bestChoice]
	// Prefer a genuinely free slot in the chosen bucket; otherwise reclaim
	// its oldest ghost.
	bmask := (uint64(1)<<uint(b) - 1) << uint(f)
	if freeBits := ^m.occupied[bucket] & bmask; freeBits != 0 {
		slot := bits.TrailingZeros64(freeBits) - f
		return m.install(bk, asid, vpn, now, m.geom.BackyardCPFN(bestChoice, slot), bestChoice, f+slot, nil), nil
	}
	slot, ok := m.oldestGhost(bucket, f, bs, horizon)
	if !ok {
		//lint:ignore nopanic bestLive < b proved a dead slot exists in this bucket; not finding one means the occupancy bitmap is corrupt
		panic("alloc: backyard live count promised a reclaimable slot but none found")
	}
	evicted := m.reclaim(m.frameIndex(bucket, slot))
	return m.install(bk, asid, vpn, now, m.geom.BackyardCPFN(bestChoice, slot-f), bestChoice, slot, &evicted), nil
}

// oldestGhost finds the ghost with the smallest lastAccess among slots
// [lo, hi) of bucket, if any.
func (m *Memory) oldestGhost(bucket uint64, lo, hi int, horizon uint64) (int, bool) {
	best, bestTime, found := -1, uint64(0), false
	base := m.frameIndex(bucket, 0)
	for s := lo; s < hi; s++ {
		fr := &m.frames[base+s]
		if fr.used && fr.lastAccess < horizon {
			if !found || fr.lastAccess < bestTime {
				best, bestTime, found = s, fr.lastAccess, true
			}
		}
	}
	return best, found
}

// reclaim frees an occupied frame and returns its former owner.
func (m *Memory) reclaim(idx int) Owner {
	fr := &m.frames[idx]
	if !fr.used {
		//lint:ignore nopanic reclaim indexes come from the occupancy bitmap, which recorded this frame as live
		panic("alloc: reclaim of free frame")
	}
	owner := fr.owner
	m.clear(idx)
	return owner
}

func (m *Memory) clear(idx int) {
	bs := m.geom.BucketSize()
	m.frames[idx] = frame{}
	m.occupied[idx/bs] &^= 1 << uint(idx%bs)
	m.used--
}

// install marks the slot used and builds the Placement. bucketChoice is -1
// for the frontyard; slot is the within-bucket slot index.
func (m *Memory) install(bk []uint64, asid core.ASID, vpn core.VPN, now uint64, cpfn core.CPFN, bucketChoice, slot int, evicted *Owner) Placement {
	bucket := bk[0]
	if bucketChoice >= 0 {
		bucket = bk[1+bucketChoice]
	}
	idx := m.frameIndex(bucket, slot)
	fr := &m.frames[idx]
	if fr.used {
		//lint:ignore nopanic install slots are chosen from the free bits of the occupancy bitmap
		panic("alloc: installing into occupied frame")
	}
	fr.used = true
	fr.owner = Owner{ASID: asid, VPN: vpn}
	fr.lastAccess = now
	fr.dirty = false
	m.occupied[bucket] |= 1 << uint(slot)
	m.used++
	return Placement{PFN: core.PFN(idx), CPFN: cpfn, Evicted: evicted}
}

// PlaceAt installs (asid, vpn) into the specific candidate slot cpfn, which
// must be free — used to reuse a conflict victim's slot directly after the
// eviction policy has chosen and evicted it.
func (m *Memory) PlaceAt(asid core.ASID, vpn core.VPN, cpfn core.CPFN, now uint64) Placement {
	bk := m.buckets(asid, vpn)
	choice, slot := m.geom.Split(cpfn)
	within := slot
	if choice >= 0 {
		within = m.geom.FrontyardSize + slot
	}
	return m.install(bk, asid, vpn, now, cpfn, choice, within, nil)
}

// Candidates fills dst with the h candidate frames of (asid, vpn), in
// canonical CPFN order, and returns it. dst may be nil.
func (m *Memory) Candidates(asid core.ASID, vpn core.VPN, dst []Candidate) []Candidate {
	bk := m.buckets(asid, vpn)
	h := m.geom.Associativity()
	if cap(dst) < h {
		dst = make([]Candidate, h)
	}
	dst = dst[:h]
	for c := 0; c < h; c++ {
		cpfn := core.CPFN(c)
		pfn := m.geom.FrameFor(cpfn, bk)
		fr := &m.frames[pfn]
		dst[c] = Candidate{
			PFN:        pfn,
			CPFN:       cpfn,
			Used:       fr.used,
			Owner:      fr.owner,
			LastAccess: fr.lastAccess,
		}
	}
	return dst
}

// DecodeCPFN computes the physical frame a stored CPFN refers to for
// (asid, vpn) — the operation the mosaic TLB performs on every hit.
func (m *Memory) DecodeCPFN(asid core.ASID, vpn core.VPN, cpfn core.CPFN) core.PFN {
	return m.geom.FrameFor(cpfn, m.buckets(asid, vpn))
}

// Evict forcibly frees pfn (a live-page eviction chosen by the swapping
// policy) and returns the evicted owner. It panics if pfn is not an
// allocated frame.
func (m *Memory) Evict(pfn core.PFN) Owner {
	if !m.frames[pfn].used {
		panic(fmt.Sprintf("alloc: Evict of free frame %d", pfn))
	}
	return m.reclaim(int(pfn))
}

// Free releases pfn on unmap (no swap-out implied). It panics if pfn is
// not an allocated frame.
func (m *Memory) Free(pfn core.PFN) {
	if !m.frames[pfn].used {
		panic(fmt.Sprintf("alloc: Free of free frame %d", pfn))
	}
	m.clear(int(pfn))
}

// Touch records an access to pfn at time now, optionally dirtying it. It
// panics if pfn is not an allocated frame.
func (m *Memory) Touch(pfn core.PFN, now uint64, write bool) {
	fr := &m.frames[pfn]
	if !fr.used {
		panic(fmt.Sprintf("alloc: Touch of free frame %d", pfn))
	}
	fr.lastAccess = now
	if write {
		fr.dirty = true
	}
}

// MarkDirty records a store to pfn without touching recency — used by the
// access-bit emulation mode, where recency is updated only by the scan
// daemon. It panics if pfn is not an allocated frame.
func (m *Memory) MarkDirty(pfn core.PFN) {
	fr := &m.frames[pfn]
	if !fr.used {
		panic(fmt.Sprintf("alloc: MarkDirty of free frame %d", pfn))
	}
	fr.dirty = true
}

// FrameInfo reports the owner, last access time, dirtiness, and occupancy
// of pfn.
func (m *Memory) FrameInfo(pfn core.PFN) (owner Owner, lastAccess uint64, dirty, used bool) {
	fr := &m.frames[pfn]
	return fr.owner, fr.lastAccess, fr.dirty, fr.used
}

// FrontyardUsed counts occupied frontyard frames (live or ghost), a
// diagnostic for the iceberg load-balance invariants.
func (m *Memory) FrontyardUsed() int {
	f := m.geom.FrontyardSize
	n := 0
	fmask := uint64(1)<<uint(f) - 1
	for _, occ := range m.occupied {
		n += bits.OnesCount64(occ & fmask)
	}
	return n
}

// BackyardUsed counts occupied backyard frames (live or ghost).
func (m *Memory) BackyardUsed() int {
	f := m.geom.FrontyardSize
	n := 0
	bmask := (uint64(1)<<uint(m.geom.BackyardSize) - 1) << uint(f)
	for _, occ := range m.occupied {
		n += bits.OnesCount64(occ & bmask)
	}
	return n
}
