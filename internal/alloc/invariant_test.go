package alloc

import (
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/invariant"
	"mosaic/internal/xxhash"
)

func hasRule(r *invariant.Report, rule string) bool {
	for _, v := range r.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// filledMemory places n pages deterministically for the corruption tests.
func filledMemory(t *testing.T, n int) *Memory {
	t.Helper()
	m := NewMemory(4*core.DefaultGeometry.BucketSize(), core.DefaultGeometry, xxhash.NewPlacement(1))
	for vpn := core.VPN(0); m.Used() < n; vpn++ {
		if _, err := m.Place(1, vpn, 10, 0); err != nil {
			t.Fatalf("Place(%d): %v", vpn, err)
		}
	}
	return m
}

func TestMemoryCheckInvariantsClean(t *testing.T) {
	m := filledMemory(t, 150)
	var r invariant.Report
	m.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("clean memory reported violations: %v", err)
	}
}

func TestMemoryCheckInvariantsDetectsCorruption(t *testing.T) {
	firstUsed := func(m *Memory) int {
		for i := range m.frames {
			if m.frames[i].used {
				return i
			}
		}
		t.Fatal("no used frame")
		return -1
	}
	tests := []struct {
		name    string
		corrupt func(m *Memory)
		rule    string
	}{
		{"bitmap-bit-cleared", func(m *Memory) {
			i := firstUsed(m)
			bs := m.geom.BucketSize()
			m.occupied[i/bs] &^= 1 << uint(i%bs)
		}, "alloc.occupancy-bitmap"},
		{"used-count", func(m *Memory) {
			m.used--
		}, "alloc.used-count"},
		{"foreign-owner", func(m *Memory) {
			// Swap the owners of two used frontyard frames in different
			// buckets: each owner now sits in a frontyard its page does
			// not hash to.
			bs := m.geom.BucketSize()
			var picks []int
			for bkt := 0; bkt < 2; bkt++ {
				for s := 0; s < m.geom.FrontyardSize; s++ {
					if idx := bkt*bs + s; m.frames[idx].used {
						picks = append(picks, idx)
						break
					}
				}
			}
			if len(picks) != 2 {
				t.Fatal("need a used frontyard frame in buckets 0 and 1")
			}
			i, j := picks[0], picks[1]
			m.frames[i].owner, m.frames[j].owner = m.frames[j].owner, m.frames[i].owner
		}, "alloc.owner-location"},
		{"duplicate-owner", func(m *Memory) {
			i := firstUsed(m)
			m.frames[i+1].owner = m.frames[i].owner
		}, "alloc.duplicate-owner"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := filledMemory(t, 200)
			tc.corrupt(m)
			var r invariant.Report
			m.CheckInvariants(&r)
			if r.OK() {
				t.Fatalf("corruption %q went undetected", tc.name)
			}
			if !hasRule(&r, tc.rule) {
				t.Fatalf("corruption %q reported %v, want rule %s", tc.name, r.Violations(), tc.rule)
			}
		})
	}
}

func TestUnconstrainedCheckInvariants(t *testing.T) {
	u := NewUnconstrained(64)
	for vpn := core.VPN(0); vpn < 40; vpn++ {
		if _, err := u.Place(1, vpn, 5); err != nil {
			t.Fatalf("Place(%d): %v", vpn, err)
		}
	}
	var r invariant.Report
	u.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("clean allocator reported violations: %v", err)
	}

	// Corrupt: drop a frame from the free list without allocating it.
	leaked := NewUnconstrained(8)
	leaked.free = leaked.free[:len(leaked.free)-1]
	r = invariant.Report{}
	leaked.CheckInvariants(&r)
	if !hasRule(&r, "alloc.leaked-frame") {
		t.Fatalf("leaked frame reported %v, want alloc.leaked-frame", r.Violations())
	}

	// Corrupt: mark a free-listed frame used.
	busy := NewUnconstrained(8)
	busy.frames[int(busy.free[0])].used = true
	r = invariant.Report{}
	busy.CheckInvariants(&r)
	if !hasRule(&r, "alloc.free-used") {
		t.Fatalf("free/used disagreement reported %v, want alloc.free-used", r.Violations())
	}
}
