package alloc

import (
	"math/bits"

	"mosaic/internal/invariant"
)

// CheckInvariants performs a deep consistency check of the mosaic memory,
// recording any violation on r:
//
//   - the occupancy bitmap agrees bit-for-bit with the per-frame used
//     flags, and the used total matches the bitmap population count —
//     Place chooses slots from these bits, so a disagreement silently
//     double-allocates or leaks frames;
//   - every occupied frame sits in one of its owner's candidate buckets
//     (its frontyard bucket if the frame is a frontyard slot, one of its
//     d backyard choices otherwise), i.e. the owner's CPFN can decode back
//     to this frame;
//   - no (ASID, VPN) owns two frames.
//
// It runs in O(frames) plus one hash evaluation per occupied frame; call
// it from tests and fuzzers, not per operation.
func (m *Memory) CheckInvariants(r *invariant.Report) {
	bs := m.geom.BucketSize()
	f := m.geom.FrontyardSize

	pop := 0
	for bkt, occ := range m.occupied {
		pop += bits.OnesCount64(occ)
		for s := 0; s < bs; s++ {
			idx := bkt*bs + s
			bit := occ&(1<<uint(s)) != 0
			r.Checkf(bit == m.frames[idx].used, "alloc.occupancy-bitmap",
				"frame %d: bitmap says used=%v, frame record says used=%v", idx, bit, m.frames[idx].used)
		}
	}
	r.Checkf(pop == m.used, "alloc.used-count",
		"used %d, bitmap population %d", m.used, pop)

	seen := make(map[Owner]int, m.used)
	for idx := range m.frames {
		fr := &m.frames[idx]
		if !fr.used {
			continue
		}
		if prev, dup := seen[fr.owner]; dup {
			r.Violatef("alloc.duplicate-owner",
				"page %+v owns frames %d and %d", fr.owner, prev, idx)
			continue
		}
		seen[fr.owner] = idx
		bk := m.buckets(fr.owner.ASID, fr.owner.VPN)
		bucket := uint64(idx / bs)
		if idx%bs < f {
			r.Checkf(bk[0] == bucket, "alloc.owner-location",
				"page %+v in frontyard of bucket %d, hashes to %d", fr.owner, bucket, bk[0])
		} else {
			ok := false
			for j := 0; j < m.geom.Choices; j++ {
				if bk[1+j] == bucket {
					ok = true
				}
			}
			r.Checkf(ok, "alloc.owner-location",
				"page %+v in backyard of bucket %d, not among its choices %v", fr.owner, bucket, bk[1:])
		}
	}
}

// CheckInvariants performs a deep consistency check of the baseline
// allocator, recording any violation on r: the free stack and the per-frame
// used flags must partition the frames (no frame both free and used, no
// frame on the free stack twice, counts adding up), and no (ASID, VPN) may
// own two frames.
func (u *Unconstrained) CheckInvariants(r *invariant.Report) {
	onFree := make(map[int]bool, len(u.free))
	for _, pfn := range u.free {
		// Range-check before narrowing: int(pfn) is only meaningful once
		// pfn is known to be a frames index.
		if !r.Checkf(uint64(pfn) < uint64(len(u.frames)), "alloc.free-range",
			"free list holds out-of-range frame %d", uint64(pfn)) {
			continue
		}
		idx := int(pfn)
		if !r.Checkf(!onFree[idx], "alloc.free-duplicate",
			"frame %d on the free list twice", idx) {
			continue
		}
		onFree[idx] = true
		r.Checkf(!u.frames[idx].used, "alloc.free-used",
			"frame %d is on the free list but marked used", idx)
	}
	used := 0
	seen := make(map[Owner]int)
	for idx := range u.frames {
		if !u.frames[idx].used {
			r.Checkf(onFree[idx], "alloc.leaked-frame",
				"frame %d is neither used nor on the free list", idx)
			continue
		}
		used++
		owner := u.frames[idx].owner
		if prev, dup := seen[owner]; dup {
			r.Violatef("alloc.duplicate-owner",
				"page %+v owns frames %d and %d", owner, prev, idx)
			continue
		}
		seen[owner] = idx
	}
	r.Checkf(used+len(u.free) == len(u.frames), "alloc.used-count",
		"%d used + %d free != %d frames", used, len(u.free), len(u.frames))
}
