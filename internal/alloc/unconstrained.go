package alloc

import (
	"fmt"

	"mosaic/internal/core"
)

// Unconstrained is the baseline fully-associative allocator: any virtual
// page may occupy any physical frame, as in conventional virtual memory.
// It keeps a simple free stack plus the same per-frame bookkeeping as
// Memory so the two can be driven by the same OS layer.
type Unconstrained struct {
	frames []frame
	free   []core.PFN
}

// NewUnconstrained creates a fully-associative physical memory of numFrames
// frames.
func NewUnconstrained(numFrames int) *Unconstrained {
	if numFrames <= 0 {
		panic(fmt.Sprintf("alloc: %d frames must be positive", numFrames))
	}
	u := &Unconstrained{
		frames: make([]frame, numFrames),
		free:   make([]core.PFN, 0, numFrames),
	}
	// Hand out low frames first, like a fresh free list.
	for i := numFrames - 1; i >= 0; i-- {
		u.free = append(u.free, core.PFN(i))
	}
	return u
}

// NumFrames is the number of physical frames.
func (u *Unconstrained) NumFrames() int { return len(u.frames) }

// Used is the number of occupied frames.
func (u *Unconstrained) Used() int { return len(u.frames) - len(u.free) }

// FreeFrames is the number of unoccupied frames.
func (u *Unconstrained) FreeFrames() int { return len(u.free) }

// Utilization is Used divided by NumFrames.
func (u *Unconstrained) Utilization() float64 {
	return float64(u.Used()) / float64(len(u.frames))
}

// Place allocates any free frame for (asid, vpn). It returns ErrNoMemory
// when none is free; the caller reclaims via its eviction policy and
// retries.
func (u *Unconstrained) Place(asid core.ASID, vpn core.VPN, now uint64) (core.PFN, error) {
	if len(u.free) == 0 {
		return 0, ErrNoMemory
	}
	pfn := u.free[len(u.free)-1]
	u.free = u.free[:len(u.free)-1]
	fr := &u.frames[pfn]
	if fr.used {
		//lint:ignore nopanic every frame on the free list was cleared when it was pushed
		panic("alloc: free list handed out an occupied frame")
	}
	fr.used = true
	fr.owner = Owner{ASID: asid, VPN: vpn}
	fr.lastAccess = now
	fr.dirty = false
	return pfn, nil
}

// Evict frees pfn and returns its former owner. It panics if pfn is not an
// allocated frame.
func (u *Unconstrained) Evict(pfn core.PFN) Owner {
	fr := &u.frames[pfn]
	if !fr.used {
		panic(fmt.Sprintf("alloc: Evict of free frame %d", pfn))
	}
	owner := fr.owner
	*fr = frame{}
	u.free = append(u.free, pfn)
	return owner
}

// Free releases pfn on unmap.
func (u *Unconstrained) Free(pfn core.PFN) { u.Evict(pfn) }

// Touch records an access to pfn at time now. It panics if pfn is not an
// allocated frame.
func (u *Unconstrained) Touch(pfn core.PFN, now uint64, write bool) {
	fr := &u.frames[pfn]
	if !fr.used {
		panic(fmt.Sprintf("alloc: Touch of free frame %d", pfn))
	}
	fr.lastAccess = now
	if write {
		fr.dirty = true
	}
}

// FrameInfo reports the owner, last access time, dirtiness, and occupancy
// of pfn.
func (u *Unconstrained) FrameInfo(pfn core.PFN) (owner Owner, lastAccess uint64, dirty, used bool) {
	fr := &u.frames[pfn]
	return fr.owner, fr.lastAccess, fr.dirty, fr.used
}
