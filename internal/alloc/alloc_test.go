package alloc

import (
	"errors"
	"math/rand"
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/xxhash"
)

func newMem(t testing.TB, frames int, seed uint64) *Memory {
	t.Helper()
	return NewMemory(frames, core.DefaultGeometry, xxhash.NewPlacement(seed))
}

func TestPlaceFrontyardFirst(t *testing.T) {
	m := newMem(t, 64*16, 1)
	p, err := m.Place(1, 100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Geometry().IsFrontyard(p.CPFN) {
		t.Errorf("first placement went to backyard (CPFN %d)", p.CPFN)
	}
	if p.Evicted != nil {
		t.Errorf("placement into empty memory evicted %+v", *p.Evicted)
	}
	if m.Used() != 1 {
		t.Errorf("Used = %d", m.Used())
	}
	if got := m.DecodeCPFN(1, 100, p.CPFN); got != p.PFN {
		t.Errorf("DecodeCPFN = %d, want %d", got, p.PFN)
	}
	owner, _, _, used := m.FrameInfo(p.PFN)
	if !used || owner != (Owner{ASID: 1, VPN: 100}) {
		t.Errorf("FrameInfo = %+v used=%v", owner, used)
	}
}

// fixedHash sends every page to bucket 0's frontyard and backyard buckets
// 1..d, regardless of key — handy for forcing collisions.
type fixedHash struct{}

func (fixedHash) Hash(asid core.ASID, vpn core.VPN, fn int) uint64 { return uint64(fn) }

func TestBackyardSpilloverAndConflict(t *testing.T) {
	g := core.DefaultGeometry
	m := NewMemory(64*8, g, fixedHash{})
	// Fill the frontyard (56), then the 6 backyard bins (6*8 = 48), then
	// expect a conflict: total successful placements = 104 = associativity.
	var placements []Placement
	for i := 0; ; i++ {
		p, err := m.Place(1, core.VPN(i), uint64(i+1), 0)
		if err != nil {
			if !errors.Is(err, ErrConflict) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		placements = append(placements, p)
	}
	if len(placements) != g.Associativity() {
		t.Fatalf("placed %d pages before conflict, want %d", len(placements), g.Associativity())
	}
	front := 0
	for _, p := range placements {
		if g.IsFrontyard(p.CPFN) {
			front++
		}
	}
	if front != g.FrontyardSize {
		t.Errorf("%d frontyard placements, want %d", front, g.FrontyardSize)
	}
	// All placements must land on distinct frames.
	seen := map[core.PFN]bool{}
	for _, p := range placements {
		if seen[p.PFN] {
			t.Fatalf("frame %d allocated twice", p.PFN)
		}
		seen[p.PFN] = true
	}
}

func TestBackyardPowerOfChoicesBalance(t *testing.T) {
	// With the fixed hash, backyard fills round-robin across the d bins
	// (always choosing the emptiest), so after 12 backyard placements every
	// bin holds exactly 2.
	g := core.DefaultGeometry
	m := NewMemory(64*8, g, fixedHash{})
	for i := 0; i < g.FrontyardSize+12; i++ {
		if _, err := m.Place(1, core.VPN(i), uint64(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[int]int)
	cands := m.Candidates(1, 0, nil)
	for _, c := range cands {
		if c.Used && !g.IsFrontyard(c.CPFN) {
			choice, _ := g.Split(c.CPFN)
			counts[choice]++
		}
	}
	for j := 0; j < g.Choices; j++ {
		if counts[j] != 2 {
			t.Errorf("backyard choice %d holds %d pages, want 2 (power-of-d balance)", j, counts[j])
		}
	}
}

func TestGhostReclaimFrontyard(t *testing.T) {
	g := core.DefaultGeometry
	m := NewMemory(64*8, g, fixedHash{})
	// Fill the frontyard with pages whose access times are 1..56.
	for i := 0; i < g.FrontyardSize; i++ {
		if _, err := m.Place(1, core.VPN(i), uint64(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	// With horizon 3, pages with lastAccess 1 and 2 are ghosts; a new
	// placement must reclaim the oldest (lastAccess 1 = VPN 0) and stay in
	// the frontyard.
	p, err := m.Place(1, 1000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsFrontyard(p.CPFN) {
		t.Errorf("placement went to backyard despite frontyard ghost")
	}
	if p.Evicted == nil {
		t.Fatal("no eviction reported")
	}
	if p.Evicted.VPN != 0 {
		t.Errorf("evicted VPN %d, want 0 (the oldest ghost)", p.Evicted.VPN)
	}
	if m.Used() != g.FrontyardSize {
		t.Errorf("Used = %d, want %d (one in, one out)", m.Used(), g.FrontyardSize)
	}
}

func TestGhostsDontCountInBackyardOccupancy(t *testing.T) {
	g := core.DefaultGeometry
	m := NewMemory(64*8, g, fixedHash{})
	// Fill frontyard + all backyard bins completely (access times 1..104).
	for i := 0; i < g.Associativity(); i++ {
		if _, err := m.Place(1, core.VPN(i), uint64(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Horizon above all access times: everything is a ghost. A new
	// placement must succeed by reclaiming (frontyard oldest first).
	p, err := m.Place(1, 2000, 200, 1000)
	if err != nil {
		t.Fatalf("placement failed despite all-ghost memory: %v", err)
	}
	if p.Evicted == nil {
		t.Fatal("reclaim not reported")
	}
}

func TestConflictThenEvictRetry(t *testing.T) {
	g := core.DefaultGeometry
	m := NewMemory(64*8, g, fixedHash{})
	for i := 0; i < g.Associativity(); i++ {
		if _, err := m.Place(1, core.VPN(i), uint64(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err := m.Place(1, 5000, 500, 0)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	// The OS picks the LRU candidate and evicts it.
	cands := m.Candidates(1, 5000, nil)
	if len(cands) != g.Associativity() {
		t.Fatalf("Candidates returned %d entries, want %d", len(cands), g.Associativity())
	}
	victim := cands[0]
	for _, c := range cands {
		if c.Used && (!victim.Used || c.LastAccess < victim.LastAccess) {
			victim = c
		}
	}
	if victim.LastAccess != 1 {
		t.Fatalf("LRU candidate has lastAccess %d, want 1", victim.LastAccess)
	}
	evicted := m.Evict(victim.PFN)
	if evicted.VPN != 0 {
		t.Fatalf("evicted VPN %d, want 0", evicted.VPN)
	}
	p, err := m.Place(1, 5000, 500, 0)
	if err != nil {
		t.Fatalf("retry after evict failed: %v", err)
	}
	if p.PFN != victim.PFN {
		t.Errorf("retry used frame %d, want the freed frame %d", p.PFN, victim.PFN)
	}
}

func TestCandidatesMatchFrameInfo(t *testing.T) {
	m := newMem(t, 64*64, 7)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if _, err := m.Place(1, core.VPN(rng.Intn(10000)), uint64(i+1), 0); err != nil {
			// Duplicate VPNs can conflict; skip.
			continue
		}
	}
	for vpn := core.VPN(0); vpn < 100; vpn++ {
		for _, c := range m.Candidates(1, vpn, nil) {
			owner, last, _, used := m.FrameInfo(c.PFN)
			if used != c.Used || owner != c.Owner || last != c.LastAccess {
				t.Fatalf("candidate %+v disagrees with FrameInfo (%+v, %d, %v)", c, owner, last, used)
			}
			if got := m.DecodeCPFN(1, vpn, c.CPFN); got != c.PFN {
				t.Fatalf("DecodeCPFN(%d) = %d, candidate says %d", c.CPFN, got, c.PFN)
			}
		}
	}
}

func TestFirstConflictUtilization(t *testing.T) {
	// The paper's Table 3 headline through the allocator path: placing
	// distinct pages with a real hash should not conflict before ~98%.
	m := newMem(t, 1<<15, 42)
	vpn := core.VPN(0)
	for {
		_, err := m.Place(1, vpn, uint64(vpn)+1, 0)
		if err != nil {
			break
		}
		vpn++
	}
	if u := m.Utilization(); u < 0.95 {
		t.Errorf("first conflict at utilization %.4f, want ≥ 0.95 (paper: ≈0.98)", u)
	} else {
		t.Logf("first conflict at utilization %.4f (paper: ≈0.9803)", u)
	}
}

func TestTouchUpdatesRecency(t *testing.T) {
	m := newMem(t, 64*4, 3)
	p, err := m.Place(1, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Touch(p.PFN, 99, true)
	_, last, dirty, _ := m.FrameInfo(p.PFN)
	if last != 99 || !dirty {
		t.Errorf("after Touch: last=%d dirty=%v", last, dirty)
	}
	// LiveCount with horizon 50: the page was touched at 99, so it's live.
	if m.LiveCount(50) != 1 {
		t.Errorf("LiveCount(50) = %d, want 1", m.LiveCount(50))
	}
	if m.LiveCount(100) != 0 {
		t.Errorf("LiveCount(100) = %d, want 0", m.LiveCount(100))
	}
}

func TestFreeAndReuse(t *testing.T) {
	m := newMem(t, 64*4, 3)
	p, err := m.Place(7, 123, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Free(p.PFN)
	if m.Used() != 0 {
		t.Errorf("Used after Free = %d", m.Used())
	}
	p2, err := m.Place(7, 123, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PFN != p.PFN {
		t.Errorf("re-placement of same page used frame %d, want %d (deterministic hash)", p2.PFN, p.PFN)
	}
}

func TestYardAccounting(t *testing.T) {
	g := core.DefaultGeometry
	m := NewMemory(64*8, g, fixedHash{})
	for i := 0; i < g.FrontyardSize+5; i++ {
		if _, err := m.Place(1, core.VPN(i), uint64(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	if m.FrontyardUsed() != g.FrontyardSize {
		t.Errorf("FrontyardUsed = %d, want %d", m.FrontyardUsed(), g.FrontyardSize)
	}
	if m.BackyardUsed() != 5 {
		t.Errorf("BackyardUsed = %d, want 5", m.BackyardUsed())
	}
}

func TestPanics(t *testing.T) {
	m := newMem(t, 64*4, 3)
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanic("Touch of free frame", func() { m.Touch(0, 1, false) })
	assertPanic("Free of free frame", func() { m.Free(0) })
	assertPanic("Evict of free frame", func() { m.Evict(0) })
	assertPanic("tiny memory", func() { NewMemory(10, core.DefaultGeometry, fixedHash{}) })
	assertPanic("nil hash", func() { NewMemory(64, core.DefaultGeometry, nil) })
}

func TestUnconstrainedBasics(t *testing.T) {
	u := NewUnconstrained(4)
	var pfns []core.PFN
	for i := 0; i < 4; i++ {
		pfn, err := u.Place(1, core.VPN(i), uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		pfns = append(pfns, pfn)
	}
	if _, err := u.Place(1, 99, 9); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("want ErrNoMemory, got %v", err)
	}
	if u.Used() != 4 || u.FreeFrames() != 0 {
		t.Errorf("Used=%d Free=%d", u.Used(), u.FreeFrames())
	}
	owner := u.Evict(pfns[2])
	if owner.VPN != 2 {
		t.Errorf("evicted owner VPN = %d", owner.VPN)
	}
	pfn, err := u.Place(2, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pfn != pfns[2] {
		t.Errorf("reused frame %d, want %d", pfn, pfns[2])
	}
	u.Touch(pfn, 20, true)
	o, last, dirty, used := u.FrameInfo(pfn)
	if o.ASID != 2 || last != 20 || !dirty || !used {
		t.Errorf("FrameInfo = %+v %d %v %v", o, last, dirty, used)
	}
	if u.Utilization() != 1.0 {
		t.Errorf("Utilization = %f", u.Utilization())
	}
}

func TestUnconstrainedHandsOutLowFramesFirst(t *testing.T) {
	u := NewUnconstrained(8)
	for i := 0; i < 8; i++ {
		pfn, err := u.Place(1, core.VPN(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if pfn != core.PFN(i) {
			t.Fatalf("allocation %d got frame %d", i, pfn)
		}
	}
}

func TestRandomizedAccountingInvariant(t *testing.T) {
	m := newMem(t, 64*32, 99)
	rng := rand.New(rand.NewSource(99))
	resident := map[core.VPN]core.PFN{}
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		now++
		vpn := core.VPN(rng.Intn(4000))
		if pfn, ok := resident[vpn]; ok {
			if rng.Intn(2) == 0 {
				m.Free(pfn)
				delete(resident, vpn)
			} else {
				m.Touch(pfn, now, false)
			}
			continue
		}
		p, err := m.Place(1, vpn, now, 0)
		if err != nil {
			continue // conflict; fine, skip
		}
		if p.Evicted != nil {
			t.Fatalf("eviction with zero horizon")
		}
		resident[vpn] = p.PFN
	}
	if m.Used() != len(resident) {
		t.Fatalf("Used = %d, model says %d", m.Used(), len(resident))
	}
	for vpn, pfn := range resident {
		owner, _, _, used := m.FrameInfo(pfn)
		if !used || owner.VPN != vpn {
			t.Fatalf("frame %d: owner %+v used=%v, want VPN %d", pfn, owner, used, vpn)
		}
	}
}

func BenchmarkPlaceFree(b *testing.B) {
	m := NewMemory(1<<16, core.DefaultGeometry, xxhash.NewPlacement(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Place(1, core.VPN(i), uint64(i), 0)
		if err == nil {
			m.Free(p.PFN)
		}
	}
}

func BenchmarkDecodeCPFN(b *testing.B) {
	m := NewMemory(1<<16, core.DefaultGeometry, xxhash.NewPlacement(1))
	p, err := m.Place(1, 42, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DecodeCPFN(1, 42, p.CPFN)
	}
}
