package swap

import (
	"math/rand"
	"testing"

	"mosaic/internal/alloc"
	"mosaic/internal/core"
)

func TestDevice(t *testing.T) {
	d := NewDevice()
	a := alloc.Owner{ASID: 1, VPN: 10}
	b := alloc.Owner{ASID: 1, VPN: 20}

	if d.PageIn(a) {
		t.Error("PageIn of never-swapped page returned true")
	}
	if d.PageIns() != 0 {
		t.Error("spurious page-in counted")
	}

	d.PageOut(a)
	d.PageOut(b)
	if d.PageOuts() != 2 || d.Resident() != 2 {
		t.Errorf("outs=%d resident=%d", d.PageOuts(), d.Resident())
	}
	if !d.Contains(a) {
		t.Error("Contains(a) = false")
	}
	if !d.PageIn(a) {
		t.Error("PageIn of swapped page returned false")
	}
	if d.Contains(a) {
		t.Error("page still on device after page-in")
	}
	if d.TotalIO() != 3 {
		t.Errorf("TotalIO = %d, want 3", d.TotalIO())
	}
	d.Drop(b)
	if d.Contains(b) || d.TotalIO() != 3 {
		t.Error("Drop should remove without I/O")
	}
}

func TestHorizonLRU(t *testing.T) {
	h := NewHorizonLRU()
	if h.Horizon() != 0 {
		t.Error("fresh horizon should be zero")
	}
	h.NoteEviction(10)
	h.NoteEviction(5) // must not regress
	if h.Horizon() != 10 {
		t.Errorf("Horizon = %d, want 10", h.Horizon())
	}
	h.NoteEviction(30)
	if h.Horizon() != 30 {
		t.Errorf("Horizon = %d, want 30", h.Horizon())
	}
}

func TestHorizonPickVictim(t *testing.T) {
	h := NewHorizonLRU()
	cands := []alloc.Candidate{
		{PFN: 1, Used: true, LastAccess: 50},
		{PFN: 2, Used: false},
		{PFN: 3, Used: true, LastAccess: 7},
		{PFN: 4, Used: true, LastAccess: 99},
	}
	v, ok := h.PickVictim(cands)
	if !ok || v.PFN != 3 {
		t.Errorf("victim = %+v ok=%v, want PFN 3", v, ok)
	}
	if _, ok := h.PickVictim([]alloc.Candidate{{Used: false}}); ok {
		t.Error("victim found among unoccupied candidates")
	}
}

func TestTrueLRUOrder(t *testing.T) {
	p := NewTrueLRU(16)
	for i := 0; i < 5; i++ {
		p.OnFault(core.PFN(i))
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d", p.Len())
	}
	// Access 0 and 1; LRU should now be 2.
	p.OnAccess(0)
	p.OnAccess(1)
	if v := p.Victim(); v != 2 {
		t.Errorf("Victim = %d, want 2", v)
	}
	p.OnRemove(2)
	if v := p.Victim(); v != 3 {
		t.Errorf("Victim after remove = %d, want 3", v)
	}
	// Exhaustive drain respects recency order: 3, 4, 0, 1.
	want := []core.PFN{3, 4, 0, 1}
	for _, w := range want {
		v := p.Victim()
		if v != w {
			t.Fatalf("drain Victim = %d, want %d", v, w)
		}
		p.OnRemove(v)
	}
	if p.Len() != 0 {
		t.Fatalf("Len after drain = %d", p.Len())
	}
}

func TestTrueLRUPanics(t *testing.T) {
	p := NewTrueLRU(4)
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanic("Victim empty", func() { p.Victim() })
	assertPanic("OnAccess untracked", func() { p.OnAccess(0) })
	assertPanic("OnRemove untracked", func() { p.OnRemove(0) })
	p.OnFault(1)
	assertPanic("double OnFault", func() { p.OnFault(1) })
}

func TestTwoListPromotion(t *testing.T) {
	p := NewTwoListLRU(16)
	p.OnFault(0)
	p.OnFault(1)
	if p.ActiveLen() != 0 || p.InactiveLen() != 2 {
		t.Fatalf("after faults: active=%d inactive=%d", p.ActiveLen(), p.InactiveLen())
	}
	// One access sets the referenced bit but does not promote.
	p.OnAccess(0)
	if p.ActiveLen() != 0 {
		t.Error("single access promoted a page")
	}
	// Second access promotes.
	p.OnAccess(0)
	if p.ActiveLen() != 1 || p.InactiveLen() != 1 {
		t.Errorf("after promotion: active=%d inactive=%d", p.ActiveLen(), p.InactiveLen())
	}
}

func TestTwoListVictimPrefersColdPages(t *testing.T) {
	p := NewTwoListLRU(64)
	// Hot pages: faulted and repeatedly accessed. Cold: faulted only.
	for i := 0; i < 8; i++ {
		p.OnFault(core.PFN(i))
		p.OnAccess(core.PFN(i))
		p.OnAccess(core.PFN(i))
	}
	for i := 8; i < 16; i++ {
		p.OnFault(core.PFN(i))
	}
	// The first 8 victims must all be cold pages.
	for k := 0; k < 8; k++ {
		v := p.Victim()
		if v < 8 {
			t.Fatalf("victim %d is a hot page", v)
		}
		p.OnRemove(v)
	}
}

func TestTwoListSecondChance(t *testing.T) {
	p := NewTwoListLRU(16)
	p.OnFault(0)
	p.OnFault(1)
	// Page 0 referenced once (bit set, still inactive).
	p.OnAccess(0)
	// Victim scan should skip (promote) 0 and pick 1... page 1 is at the
	// head, page 0 at the tail of inactive. The tail (0) is referenced, so
	// it gets promoted and the victim is 1.
	if v := p.Victim(); v != 1 {
		t.Errorf("Victim = %d, want 1 (second chance for referenced page)", v)
	}
}

func TestTwoListAllActiveStillFindsVictim(t *testing.T) {
	p := NewTwoListLRU(32)
	for i := 0; i < 10; i++ {
		p.OnFault(core.PFN(i))
		p.OnAccess(core.PFN(i))
		p.OnAccess(core.PFN(i)) // everyone active
	}
	for k := 0; k < 10; k++ {
		v := p.Victim()
		p.OnRemove(v)
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after draining", p.Len())
	}
}

func TestPoliciesTrackLenConsistently(t *testing.T) {
	for _, mk := range []struct {
		name string
		p    Policy
	}{
		{"true-lru", NewTrueLRU(256)},
		{"two-list", NewTwoListLRU(256)},
	} {
		t.Run(mk.name, func(t *testing.T) {
			p := mk.p
			rng := rand.New(rand.NewSource(1))
			resident := map[core.PFN]bool{}
			for i := 0; i < 10000; i++ {
				pfn := core.PFN(rng.Intn(256))
				switch {
				case !resident[pfn]:
					p.OnFault(pfn)
					resident[pfn] = true
				case rng.Intn(4) == 0:
					p.OnRemove(pfn)
					delete(resident, pfn)
				default:
					p.OnAccess(pfn)
				}
				if p.Len() != len(resident) {
					t.Fatalf("iteration %d: Len = %d, model %d", i, p.Len(), len(resident))
				}
			}
			// Drain via Victim; every victim must be resident per model.
			for len(resident) > 0 {
				v := p.Victim()
				if !resident[v] {
					t.Fatalf("victim %d is not resident", v)
				}
				p.OnRemove(v)
				delete(resident, v)
			}
		})
	}
}

func TestTwoListCyclicPatternIsWorstCase(t *testing.T) {
	// The classic LRU pathology: cycling over N+1 pages with capacity N
	// makes LRU-family policies evict exactly the page needed next.
	// This test documents the baseline behaviour that §4.3 credits for
	// mosaic's swapping wins: the two-list policy (like true LRU) misses
	// every time on a cyclic scan.
	const capacity, pages = 64, 65
	p := NewTwoListLRU(pages)
	resident := map[core.PFN]bool{}
	faults := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < pages; i++ {
			pfn := core.PFN(i)
			if resident[pfn] {
				p.OnAccess(pfn)
				continue
			}
			faults++
			if len(resident) >= capacity {
				v := p.Victim()
				p.OnRemove(v)
				delete(resident, v)
			}
			p.OnFault(pfn)
			resident[pfn] = true
		}
	}
	// After warm-up, every access in a cycle faults under LRU-like
	// policies: ≥ 9 full rounds of faults.
	if faults < 9*pages {
		t.Errorf("faults = %d; expected near-total misses (≥ %d) on cyclic scan", faults, 9*pages)
	}
}

func BenchmarkTrueLRUAccess(b *testing.B) {
	p := NewTrueLRU(1 << 16)
	for i := 0; i < 1<<16; i++ {
		p.OnFault(core.PFN(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnAccess(core.PFN(i & (1<<16 - 1)))
	}
}

func BenchmarkTwoListVictim(b *testing.B) {
	p := NewTwoListLRU(1 << 12)
	for i := 0; i < 1<<12; i++ {
		p.OnFault(core.PFN(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := p.Victim()
		p.OnRemove(v)
		p.OnFault(v)
	}
}

func TestDeviceClone(t *testing.T) {
	d := NewDevice()
	parent := alloc.Owner{ASID: 1, VPN: 7}
	child := alloc.Owner{ASID: 2, VPN: 7}
	d.PageOut(parent)
	io := d.TotalIO()
	d.Clone(parent, child)
	if d.TotalIO() != io {
		t.Error("Clone counted I/O")
	}
	if !d.Contains(parent) || !d.Contains(child) {
		t.Error("Clone lost a slot")
	}
	// Each slot pages in independently.
	if !d.PageIn(child) {
		t.Error("child slot missing")
	}
	if !d.Contains(parent) {
		t.Error("parent slot vanished with child's page-in")
	}
	defer func() {
		if recover() == nil {
			t.Error("Clone of absent slot should panic")
		}
	}()
	d.Clone(alloc.Owner{ASID: 9, VPN: 9}, child)
}
