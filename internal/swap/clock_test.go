package swap

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
)

func TestClockSecondChance(t *testing.T) {
	c := NewClock(8)
	for i := 0; i < 4; i++ {
		c.OnFault(core.PFN(i))
	}
	// Reference 0 and 2; the sweep must clear their bits and evict 1 (the
	// first unreferenced page at or after the hand).
	c.OnAccess(0)
	c.OnAccess(2)
	if v := c.Victim(); v != 1 {
		t.Fatalf("Victim = %d, want 1", v)
	}
	// 0 and 2 had their chance consumed only if the hand passed them: hand
	// started at 0 (referenced → cleared), then 1 chosen. So 2 is still
	// referenced; next victim is 3.
	if v := c.Victim(); v != 3 {
		t.Fatalf("second Victim = %d, want 3", v)
	}
}

func TestClockAllReferencedTerminates(t *testing.T) {
	c := NewClock(8)
	for i := 0; i < 8; i++ {
		c.OnFault(core.PFN(i))
		c.OnAccess(core.PFN(i))
	}
	// First sweep clears everything; a victim must still emerge.
	v := c.Victim()
	if v >= 8 {
		t.Fatalf("victim %d out of range", v)
	}
}

func TestClockRemoveMaintainsRing(t *testing.T) {
	c := NewClock(8)
	for i := 0; i < 5; i++ {
		c.OnFault(core.PFN(i))
	}
	c.OnRemove(2)
	c.OnRemove(0)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Drain: victims must be the remaining pages exactly once.
	seen := map[core.PFN]bool{}
	for c.Len() > 0 {
		v := c.Victim()
		if seen[v] {
			t.Fatalf("victim %d repeated", v)
		}
		seen[v] = true
		c.OnRemove(v)
	}
	for _, want := range []core.PFN{1, 3, 4} {
		if !seen[want] {
			t.Fatalf("page %d never chosen", want)
		}
	}
}

func TestClockPanics(t *testing.T) {
	c := NewClock(4)
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanic("Victim empty", func() { c.Victim() })
	assertPanic("OnAccess untracked", func() { c.OnAccess(0) })
	assertPanic("OnRemove untracked", func() { c.OnRemove(0) })
	c.OnFault(1)
	assertPanic("double OnFault", func() { c.OnFault(1) })
}

func TestClockAgainstModel(t *testing.T) {
	c := NewClock(128)
	rng := rand.New(rand.NewSource(7))
	resident := map[core.PFN]bool{}
	for i := 0; i < 20000; i++ {
		pfn := core.PFN(rng.Intn(128))
		switch {
		case !resident[pfn]:
			c.OnFault(pfn)
			resident[pfn] = true
		case rng.Intn(5) == 0:
			c.OnRemove(pfn)
			delete(resident, pfn)
		default:
			c.OnAccess(pfn)
		}
		if c.Len() != len(resident) {
			t.Fatalf("Len = %d, model %d", c.Len(), len(resident))
		}
		if len(resident) > 0 && rng.Intn(10) == 0 {
			v := c.Victim()
			if !resident[v] {
				t.Fatalf("victim %d not resident", v)
			}
		}
	}
}

func TestClockApproximatesLRUOnHotCold(t *testing.T) {
	// Hot pages (constantly referenced) must survive sweeps; cold pages
	// must be the victims.
	c := NewClock(64)
	for i := 0; i < 16; i++ {
		c.OnFault(core.PFN(i))
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ { // pages 0..7 hot
			c.OnAccess(core.PFN(i))
		}
		v := c.Victim()
		if v < 8 {
			t.Fatalf("round %d: hot page %d evicted", round, v)
		}
		c.OnRemove(v)
	}
}
