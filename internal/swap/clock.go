package swap

import (
	"fmt"

	"mosaic/internal/core"
)

// Clock is the classic second-chance (CLOCK) replacement policy: resident
// pages sit on a ring with a reference bit; the hand sweeps, clearing bits
// and evicting the first unreferenced page it finds. CLOCK is the
// traditional low-overhead LRU approximation (pre-dating Linux's two-list
// design) and completes the baseline set for the eviction ablations.
type Clock struct {
	nodes []node // ring links via prev/next; where==onLRU marks residency
	hand  int    // current hand position (a resident frame), -1 if empty
	count int
}

// NewClock creates a CLOCK policy for frames [0, numFrames).
func NewClock(numFrames int) *Clock {
	c := &Clock{nodes: make([]node, numFrames), hand: -1}
	return c
}

// OnFault implements Policy: the new page joins the ring just behind the
// hand (so it is swept last) with its reference bit clear. It panics if
// pfn is already tracked.
func (c *Clock) OnFault(pfn core.PFN) {
	n := &c.nodes[pfn]
	if n.where != onNone {
		panic(fmt.Sprintf("swap: OnFault of tracked frame %d", pfn))
	}
	n.where = onLRU
	n.referenced = false
	i := int(pfn)
	if c.hand < 0 {
		n.prev, n.next = i, i
		c.hand = i
	} else {
		// Insert before the hand.
		prev := c.nodes[c.hand].prev
		n.prev, n.next = prev, c.hand
		c.nodes[prev].next = i
		c.nodes[c.hand].prev = i
	}
	c.count++
}

// OnAccess implements Policy: set the reference bit (the hardware access
// bit CLOCK relies on). It panics if pfn is not resident.
func (c *Clock) OnAccess(pfn core.PFN) {
	if c.nodes[pfn].where != onLRU {
		panic(fmt.Sprintf("swap: OnAccess of untracked frame %d", pfn))
	}
	c.nodes[pfn].referenced = true
}

// OnRemove implements Policy. It panics if pfn is not resident.
func (c *Clock) OnRemove(pfn core.PFN) {
	n := &c.nodes[pfn]
	if n.where != onLRU {
		panic(fmt.Sprintf("swap: OnRemove of untracked frame %d", pfn))
	}
	i := int(pfn)
	if c.count == 1 {
		c.hand = -1
	} else {
		c.nodes[n.prev].next = n.next
		c.nodes[n.next].prev = n.prev
		if c.hand == i {
			c.hand = n.next
		}
	}
	n.where = onNone
	n.referenced = false
	n.prev, n.next = 0, 0
	c.count--
}

// Victim implements Policy: sweep from the hand, giving referenced pages a
// second chance, and return the first unreferenced page. The hand stops
// just past the victim. Terminates within two sweeps (the first clears all
// bits). Victim panics if no pages are resident.
func (c *Clock) Victim() core.PFN {
	if c.count == 0 {
		panic("swap: Victim with no resident pages")
	}
	for {
		n := &c.nodes[c.hand]
		if n.referenced {
			n.referenced = false
			c.hand = n.next
			continue
		}
		victim := core.PFN(c.hand)
		c.hand = n.next
		return victim
	}
}

// Len implements Policy.
func (c *Clock) Len() int { return c.count }

var _ Policy = (*Clock)(nil)
