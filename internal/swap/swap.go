// Package swap implements the page-eviction policies and the swap-device
// model used by the OS layer.
//
// Four policies are provided:
//
//   - HorizonLRU (§2.4 of the paper): mosaic's eviction algorithm. It keeps
//     a horizon — the high-water mark of the access times of all pages it
//     has evicted. Pages whose last access predates the horizon are ghosts:
//     still resident, revived for free if touched, but treated as free by
//     the allocator. On an associativity conflict the policy evicts the
//     least-recently-used page among the conflicting candidates and raises
//     the horizon to that page's access time, ghosting everything older —
//     exactly the set a global LRU would have evicted.
//
//   - TwoListLRU: an approximation of Linux's active/inactive list reclaim,
//     used as the baseline ("Linux" columns of Tables 3 and 4). It inherits
//     the well-known LRU-approximation weaknesses (e.g. cyclic access
//     patterns) that §4.3 credits for some of mosaic's wins.
//
//   - TrueLRU: exact global LRU, for ablation.
//
//   - Clock (clock.go): classic second-chance replacement, for ablation.
//
// A Device counts swap I/Os the way sysstat does: one page-out per page
// written to swap, one page-in per page read back.
package swap

import (
	"fmt"

	"mosaic/internal/alloc"
	"mosaic/internal/core"
	"mosaic/internal/obs"
)

// Device models a swap device (the paper uses a 4 GiB ramdisk). It tracks
// which pages are currently swapped out and counts I/O operations.
type Device struct {
	swapped  map[alloc.Owner]bool
	pageOuts uint64
	pageIns  uint64

	cOut *obs.Counter
	cIn  *obs.Counter
}

// NewDevice creates an empty swap device.
func NewDevice() *Device {
	return &Device{swapped: make(map[alloc.Owner]bool)}
}

// Instrument mirrors the device's I/O counts into a metrics registry as
// swap.out and swap.in. Without it, the plain accessors still work.
func (d *Device) Instrument(r *obs.Registry) {
	d.cOut = r.Counter("swap.out")
	d.cIn = r.Counter("swap.in")
}

// PageOut records page being written to swap.
func (d *Device) PageOut(page alloc.Owner) {
	d.swapped[page] = true
	d.pageOuts++
	if d.cOut != nil {
		d.cOut.Inc()
	}
}

// PageIn records page being read back from swap. It reports whether the
// page was actually swapped out (a demand-zero fault is not a page-in).
func (d *Device) PageIn(page alloc.Owner) bool {
	if !d.swapped[page] {
		return false
	}
	delete(d.swapped, page)
	d.pageIns++
	if d.cIn != nil {
		d.cIn.Inc()
	}
	return true
}

// Contains reports whether page is currently swapped out.
func (d *Device) Contains(page alloc.Owner) bool { return d.swapped[page] }

// Drop removes page from the device without an I/O (e.g. the mapping was
// destroyed while swapped out).
func (d *Device) Drop(page alloc.Owner) { delete(d.swapped, page) }

// Clone logically duplicates a swap slot for a new owner without I/O (fork
// inheriting a swapped-out page). It panics if from is not on the device.
func (d *Device) Clone(from, to alloc.Owner) {
	if !d.swapped[from] {
		panic(fmt.Sprintf("swap: Clone of absent slot %+v", from))
	}
	d.swapped[to] = true
}

// PageOuts is the cumulative number of pages written to swap.
func (d *Device) PageOuts() uint64 { return d.pageOuts }

// PageIns is the cumulative number of pages read from swap.
func (d *Device) PageIns() uint64 { return d.pageIns }

// TotalIO is PageOuts + PageIns — the quantity Table 4 reports.
func (d *Device) TotalIO() uint64 { return d.pageOuts + d.pageIns }

// Resident is the number of pages currently swapped out.
func (d *Device) Resident() int { return len(d.swapped) }

// HorizonLRU is mosaic's eviction policy. The heavy lifting — ghost
// detection and reclamation — happens inside the allocator using the
// horizon this policy maintains; HorizonLRU itself only tracks the horizon
// and selects conflict victims.
type HorizonLRU struct {
	horizon uint64
}

// NewHorizonLRU creates a policy with a zero horizon (no ghosts).
func NewHorizonLRU() *HorizonLRU { return &HorizonLRU{} }

// Horizon is the current ghost threshold: resident pages with
// lastAccess < Horizon() are ghosts.
func (h *HorizonLRU) Horizon() uint64 { return h.horizon }

// PickVictim chooses the eviction victim for an associativity conflict: the
// least-recently-used live page among the candidates. It returns false if
// no candidate is occupied (which would mean the conflict was spurious).
func (h *HorizonLRU) PickVictim(cands []alloc.Candidate) (alloc.Candidate, bool) {
	var victim alloc.Candidate
	found := false
	for _, c := range cands {
		if !c.Used {
			continue
		}
		if !found || c.LastAccess < victim.LastAccess {
			victim, found = c, true
		}
	}
	return victim, found
}

// NoteEviction raises the horizon to the evicted page's last access time.
// Every resident page whose last access is older than the new horizon
// becomes a ghost — the set a global LRU of the same capacity would
// already have evicted.
func (h *HorizonLRU) NoteEviction(lastAccess uint64) {
	if lastAccess > h.horizon {
		h.horizon = lastAccess
	}
}

// Policy is the interface the baseline (fully-associative) OS layer uses to
// pick reclaim victims. Implementations track residency via OnFault/OnRemove
// and recency via OnAccess.
type Policy interface {
	// OnFault records that pfn became resident.
	OnFault(pfn core.PFN)
	// OnAccess records a reference to resident pfn.
	OnAccess(pfn core.PFN)
	// OnRemove records that pfn left memory.
	OnRemove(pfn core.PFN)
	// Victim selects a resident page to reclaim. It panics if none is
	// tracked.
	Victim() core.PFN
	// Len is the number of tracked resident pages.
	Len() int
}

// list node states for the intrusive lists below.
const (
	onNone = iota
	onInactive
	onActive
	onLRU
)

type node struct {
	prev, next int
	where      uint8
	referenced bool
}

// intrusive doubly-linked list over a shared node arena, identified by a
// sentinel index.
type list struct {
	head int // sentinel node index
	len  int
}

func newList(nodes []node, sentinel int) list {
	nodes[sentinel].prev = sentinel
	nodes[sentinel].next = sentinel
	return list{head: sentinel}
}

func (l *list) pushFront(nodes []node, i int) {
	n := &nodes[i]
	h := &nodes[l.head]
	n.next = h.next
	n.prev = l.head
	nodes[h.next].prev = i
	h.next = i
	l.len++
}

func (l *list) remove(nodes []node, i int) {
	n := &nodes[i]
	nodes[n.prev].next = n.next
	nodes[n.next].prev = n.prev
	n.prev, n.next = i, i
	l.len--
}

func (l *list) tail(nodes []node) (int, bool) {
	if l.len == 0 {
		return 0, false
	}
	return nodes[l.head].prev, true
}

// TrueLRU is an exact global least-recently-used policy.
type TrueLRU struct {
	nodes []node
	lru   list // front = most recent
	count int
}

// NewTrueLRU creates a policy for frames [0, numFrames).
func NewTrueLRU(numFrames int) *TrueLRU {
	nodes := make([]node, numFrames+1)
	t := &TrueLRU{nodes: nodes}
	t.lru = newList(nodes, numFrames)
	return t
}

// OnFault implements Policy. It panics if pfn is already tracked.
func (t *TrueLRU) OnFault(pfn core.PFN) {
	n := &t.nodes[pfn]
	if n.where != onNone {
		panic(fmt.Sprintf("swap: OnFault of tracked frame %d", pfn))
	}
	n.where = onLRU
	t.lru.pushFront(t.nodes, int(pfn))
	t.count++
}

// OnAccess implements Policy. It panics if pfn is not resident.
func (t *TrueLRU) OnAccess(pfn core.PFN) {
	if t.nodes[pfn].where != onLRU {
		panic(fmt.Sprintf("swap: OnAccess of untracked frame %d", pfn))
	}
	t.lru.remove(t.nodes, int(pfn))
	t.lru.pushFront(t.nodes, int(pfn))
}

// OnRemove implements Policy. It panics if pfn is not resident.
func (t *TrueLRU) OnRemove(pfn core.PFN) {
	if t.nodes[pfn].where != onLRU {
		panic(fmt.Sprintf("swap: OnRemove of untracked frame %d", pfn))
	}
	t.lru.remove(t.nodes, int(pfn))
	t.nodes[pfn].where = onNone
	t.count--
}

// Victim implements Policy: the globally least-recently-used page. It
// panics if no pages are resident.
func (t *TrueLRU) Victim() core.PFN {
	i, ok := t.lru.tail(t.nodes)
	if !ok {
		panic("swap: Victim with no resident pages")
	}
	return core.PFN(i)
}

// Len implements Policy.
func (t *TrueLRU) Len() int { return t.count }

// TwoListLRU approximates Linux's split LRU: pages enter the inactive list
// on fault; a second reference while inactive promotes them to the active
// list. Reclaim scans the inactive tail with second chances and demotes
// active pages to keep the lists balanced, mirroring kswapd's
// shrink_active_list/shrink_inactive_list structure.
type TwoListLRU struct {
	nodes    []node
	active   list
	inactive list
	count    int
}

// NewTwoListLRU creates a policy for frames [0, numFrames).
func NewTwoListLRU(numFrames int) *TwoListLRU {
	nodes := make([]node, numFrames+2)
	p := &TwoListLRU{nodes: nodes}
	p.active = newList(nodes, numFrames)
	p.inactive = newList(nodes, numFrames+1)
	return p
}

// OnFault implements Policy: new pages start on the inactive list, not yet
// referenced (matching Linux's treatment of freshly faulted anon pages,
// which start inactive when there is reclaim pressure). It panics if pfn
// is already tracked.
func (p *TwoListLRU) OnFault(pfn core.PFN) {
	n := &p.nodes[pfn]
	if n.where != onNone {
		panic(fmt.Sprintf("swap: OnFault of tracked frame %d", pfn))
	}
	n.where = onInactive
	n.referenced = false
	p.inactive.pushFront(p.nodes, int(pfn))
	p.count++
}

// OnAccess implements Policy: the first reference sets the referenced bit
// (hardware access bit); a reference to an already-referenced inactive page
// promotes it to the active list. It panics if pfn is not resident.
func (p *TwoListLRU) OnAccess(pfn core.PFN) {
	n := &p.nodes[pfn]
	switch n.where {
	case onInactive:
		if n.referenced {
			p.inactive.remove(p.nodes, int(pfn))
			n.where = onActive
			n.referenced = false
			p.active.pushFront(p.nodes, int(pfn))
		} else {
			n.referenced = true
		}
	case onActive:
		n.referenced = true
	default:
		panic(fmt.Sprintf("swap: OnAccess of untracked frame %d", pfn))
	}
}

// OnRemove implements Policy. It panics if pfn is not resident.
func (p *TwoListLRU) OnRemove(pfn core.PFN) {
	n := &p.nodes[pfn]
	switch n.where {
	case onInactive:
		p.inactive.remove(p.nodes, int(pfn))
	case onActive:
		p.active.remove(p.nodes, int(pfn))
	default:
		panic(fmt.Sprintf("swap: OnRemove of untracked frame %d", pfn))
	}
	n.where = onNone
	n.referenced = false
	p.count--
}

// Victim implements Policy. It first rebalances (demoting active-tail pages
// while the active list outnumbers the inactive list), then scans the
// inactive tail: referenced pages get a second chance (promotion), the
// first unreferenced page is the victim. Victim panics if no pages are
// resident.
func (p *TwoListLRU) Victim() core.PFN {
	if p.count == 0 {
		panic("swap: Victim with no resident pages")
	}
	// shrink_active_list: demote from the active tail, clearing the
	// referenced bit, until the lists are balanced.
	for p.active.len > p.inactive.len {
		i, _ := p.active.tail(p.nodes)
		p.active.remove(p.nodes, i)
		p.nodes[i].where = onInactive
		p.nodes[i].referenced = false
		p.inactive.pushFront(p.nodes, i)
	}
	// shrink_inactive_list: second-chance scan of the inactive tail. Each
	// promotion shrinks the inactive list, so this terminates — in the
	// worst case by draining the inactive list and rebalancing again.
	for {
		i, ok := p.inactive.tail(p.nodes)
		if !ok {
			for p.active.len > 0 && p.inactive.len < 1 {
				j, _ := p.active.tail(p.nodes)
				p.active.remove(p.nodes, j)
				p.nodes[j].where = onInactive
				p.nodes[j].referenced = false
				p.inactive.pushFront(p.nodes, j)
			}
			i, ok = p.inactive.tail(p.nodes)
			if !ok {
				panic("swap: two-list policy lost all pages")
			}
		}
		n := &p.nodes[i]
		if n.referenced {
			p.inactive.remove(p.nodes, i)
			n.where = onActive
			n.referenced = false
			p.active.pushFront(p.nodes, i)
			continue
		}
		return core.PFN(i)
	}
}

// Len implements Policy.
func (p *TwoListLRU) Len() int { return p.count }

// ActiveLen reports the active-list length (diagnostic).
func (p *TwoListLRU) ActiveLen() int { return p.active.len }

// InactiveLen reports the inactive-list length (diagnostic).
func (p *TwoListLRU) InactiveLen() int { return p.inactive.len }

var (
	_ Policy = (*TrueLRU)(nil)
	_ Policy = (*TwoListLRU)(nil)
)
