// Package tabhash implements tabulation hashing with multi-output probing,
// the hash-function design the paper places on the TLB critical path
// (§3.1, Figure 4).
//
// A tabulation hasher holds one static 256-entry table of 32-bit values per
// input byte. The hash of an input is the XOR of one entry from each table,
// indexed by the corresponding input byte. To produce several independent
// hash outputs from a single set of tables (one per iceberg bucket choice),
// the hasher probes: output j indexes each table at (byte + j) mod 256.
// Probing avoids replicating the tables per hash function — in hardware,
// per Table 5, it costs only wider muxes, not extra latency.
package tabhash

import (
	"fmt"
	"math/rand"

	"mosaic/internal/core"
	"mosaic/internal/rng"
)

// Hasher is a tabulation hash with nt tables and support for multi-output
// probing. It is safe for concurrent use after construction.
type Hasher struct {
	tables [][256]uint32
}

// New constructs a Hasher over inputs of numBytes bytes. The static tables
// are filled with pseudorandom values derived deterministically from seed —
// the software analogue of the synthesized lookup tables in the paper's
// Verilog implementation. New panics if numBytes is not positive.
func New(numBytes int, seed uint64) *Hasher {
	return NewFromRand(numBytes, rng.New(seed))
}

// NewFromRand is New with the table-filling generator threaded in by the
// caller. rnd must be deterministically seeded (see internal/rng) for
// seed-reproducible placement. NewFromRand panics if numBytes is not
// positive or rnd is nil.
func NewFromRand(numBytes int, rnd *rand.Rand) *Hasher {
	if numBytes <= 0 {
		panic(fmt.Sprintf("tabhash: table count %d must be positive", numBytes))
	}
	if rnd == nil {
		panic("tabhash: nil random source")
	}
	h := &Hasher{tables: make([][256]uint32, numBytes)}
	for t := range h.tables {
		for i := range h.tables[t] {
			h.tables[t][i] = rnd.Uint32()
		}
	}
	return h
}

// NumTables is the number of static tables (input width in bytes).
func (h *Hasher) NumTables() int { return len(h.tables) }

// Hash computes output fn of the tabulation hash of input. Only the low
// NumTables() bytes of input participate. fn is the probe offset (the hash
// function id from Figure 4); fn = 0 is the unprobed hash.
func (h *Hasher) Hash(input uint64, fn int) uint32 {
	var out uint32
	for t := range h.tables {
		b := byte(input >> (8 * t))
		out ^= h.tables[t][(int(b)+fn)&0xFF]
	}
	return out
}

// HashBytes computes output fn over an explicit byte string; it panics if
// the input length does not match the table count.
func (h *Hasher) HashBytes(input []byte, fn int) uint32 {
	if len(input) != len(h.tables) {
		panic(fmt.Sprintf("tabhash: input length %d, want %d", len(input), len(h.tables)))
	}
	var out uint32
	for t, b := range input {
		out ^= h.tables[t][(int(b)+fn)&0xFF]
	}
	return out
}

// HashAll fills dst[j] with output j for j in [0, len(dst)) — the
// hardware-parallel form: all H outputs computed from one table read pass.
func (h *Hasher) HashAll(input uint64, dst []uint32) {
	for j := range dst {
		dst[j] = 0
	}
	for t := range h.tables {
		b := int(byte(input >> (8 * t)))
		for j := range dst {
			dst[j] ^= h.tables[t][(b+j)&0xFF]
		}
	}
}

// Placement adapts a Hasher to core.PlacementHash: the hash of (asid, vpn)
// under placement function fn. The ASID is mixed into the top bytes of the
// hashed word so that distinct address spaces get independent constraint
// sets, as in the paper's (ASID, VPN) hashing.
type Placement struct {
	h *Hasher
}

// NewPlacement builds a placement hash over (ASID, VPN) pairs. It hashes a
// 64-bit word: the VPN in the low 40 bits (36-bit VPNs fit, per Table 1a)
// XOR-folded with the ASID in the high bits.
func NewPlacement(seed uint64) *Placement {
	return &Placement{h: New(8, seed)}
}

// Hash implements core.PlacementHash.
func (p *Placement) Hash(asid core.ASID, vpn core.VPN, fn int) uint64 {
	word := uint64(vpn) ^ uint64(asid)<<40
	// Widen the 32-bit tabulation output to 64 bits by combining two probe
	// lanes; placement only needs enough entropy to pick a bucket.
	lo := uint64(p.h.Hash(word, fn*2))
	hi := uint64(p.h.Hash(word, fn*2+1))
	return hi<<32 | lo
}
