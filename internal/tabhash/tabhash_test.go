package tabhash

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(8, 1), New(8, 1)
	for i := uint64(0); i < 100; i++ {
		for fn := 0; fn < 8; fn++ {
			if a.Hash(i*0x9E37, fn) != b.Hash(i*0x9E37, fn) {
				t.Fatalf("hashers with equal seeds disagree at input %d fn %d", i, fn)
			}
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(8, 1), New(8, 2)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Hash(i, 0) == b.Hash(i, 0) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("hashers with different seeds agree on %d/1000 inputs", same)
	}
}

func TestProbedOutputsDiffer(t *testing.T) {
	h := New(8, 7)
	for i := uint64(0); i < 256; i++ {
		seen := make(map[uint32]int)
		for fn := 0; fn < 8; fn++ {
			v := h.Hash(i, fn)
			if prev, dup := seen[v]; dup {
				t.Fatalf("input %d: probes %d and %d collide", i, prev, fn)
			}
			seen[v] = fn
		}
	}
}

func TestHashAllMatchesHash(t *testing.T) {
	h := New(8, 3)
	dst := make([]uint32, 8)
	f := func(input uint64) bool {
		h.HashAll(input, dst)
		for fn := range dst {
			if dst[fn] != h.Hash(input, fn) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashBytesMatchesHash(t *testing.T) {
	h := New(8, 3)
	f := func(input uint64) bool {
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(input >> (8 * i))
		}
		return h.HashBytes(buf[:], 2) == h.Hash(input, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashBytesWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HashBytes with wrong length should panic")
		}
	}()
	New(8, 1).HashBytes([]byte{1, 2, 3}, 0)
}

func TestNewZeroTablesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, …) should panic")
		}
	}()
	New(0, 1)
}

func TestOnlyLowBytesParticipate(t *testing.T) {
	// A 4-table hasher must ignore bytes 4..7 of the input.
	h := New(4, 9)
	if h.Hash(0x00000000_11223344, 0) != h.Hash(0xDEADBEEF_11223344, 0) {
		t.Error("high input bytes changed a 4-table hash")
	}
}

func TestUniformBuckets(t *testing.T) {
	// Sequential VPNs — the adversarial-for-weak-hashes pattern placement
	// actually sees — must spread evenly over buckets.
	h := New(8, 11)
	const n, buckets = 1 << 16, 64
	counts := make([]int, buckets)
	for i := uint64(0); i < n; i++ {
		counts[h.Hash(i, 0)%buckets]++
	}
	mean := float64(n) / buckets
	for b, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.8 || ratio > 1.2 {
			t.Errorf("bucket %d has %d entries (%.0f%% of mean)", b, c, 100*ratio)
		}
	}
}

func TestPlacementProperties(t *testing.T) {
	p := NewPlacement(5)
	if p.Hash(1, 100, 0) == p.Hash(2, 100, 0) {
		t.Error("ASID does not influence placement")
	}
	if p.Hash(1, 100, 0) == p.Hash(1, 101, 0) {
		t.Error("VPN does not influence placement")
	}
	if p.Hash(1, 100, 0) == p.Hash(1, 100, 1) {
		t.Error("function index does not influence placement")
	}
}

func BenchmarkHash(b *testing.B) {
	h := New(8, 1)
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc ^= h.Hash(uint64(i), i&7)
	}
	_ = acc
}

func BenchmarkHashAll8(b *testing.B) {
	h := New(8, 1)
	dst := make([]uint32, 8)
	for i := 0; i < b.N; i++ {
		h.HashAll(uint64(i), dst)
	}
}
