package obs

import (
	"sync"
	"testing"
)

// TestPublisherLifecycle: no publication before the first Publish, then
// monotone sequence numbers and publish-time gauge evaluation.
func TestPublisherLifecycle(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tlb.miss")
	p := NewPublisher(r)
	live := 0.0
	p.Gauge("sim.refs.total", func() float64 { return live })

	if _, ok := p.Load(); ok {
		t.Fatal("Load reported a publication before the first Publish")
	}

	c.Add(7)
	live = 100
	p.Publish(100)
	pub, ok := p.Load()
	if !ok {
		t.Fatal("Load found nothing after Publish")
	}
	if pub.Seq != 1 || pub.Refs != 100 {
		t.Errorf("publication seq=%d refs=%d, want 1, 100", pub.Seq, pub.Refs)
	}
	if got := pub.Snap.Counters["tlb.miss"]; got != 7 {
		t.Errorf("published tlb.miss = %d, want 7", got)
	}
	if got := pub.Snap.Gauges["sim.refs.total"]; got != 100 {
		t.Errorf("published sim.refs.total = %v, want 100 (publish-time probe)", got)
	}

	// The published snapshot is a deep copy: later mutation is invisible.
	c.Add(1000)
	if got := pub.Snap.Counters["tlb.miss"]; got != 7 {
		t.Errorf("snapshot saw later mutation: tlb.miss = %d, want 7", got)
	}

	live = 200
	p.Publish(200)
	pub2, _ := p.Load()
	if pub2.Seq != 2 || pub2.Snap.Counters["tlb.miss"] != 1007 {
		t.Errorf("second publication seq=%d tlb.miss=%d, want 2, 1007", pub2.Seq, pub2.Snap.Counters["tlb.miss"])
	}
}

// TestPublisherNilSafe: the disabled path is one pointer compare.
func TestPublisherNilSafe(t *testing.T) {
	var p *Publisher
	p.Publish(1)
	if _, ok := p.Load(); ok {
		t.Error("nil publisher reported a publication")
	}
}

// TestPublisherAttachSampler: publications ride the sampler's window
// boundaries, including the partial window Flush closes.
func TestPublisherAttachSampler(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vm.access")
	s := NewSampler(10)
	p := NewPublisher(r)
	p.AttachSampler(s)

	for i := 0; i < 25; i++ {
		c.Inc()
		s.Tick()
	}
	pub, ok := p.Load()
	if !ok || pub.Seq != 2 || pub.Refs != 20 {
		t.Fatalf("after 25 ticks at window 10: seq=%d refs=%d ok=%v, want 2, 20, true", pub.Seq, pub.Refs, ok)
	}
	if got := pub.Snap.Counters["vm.access"]; got != 20 {
		t.Errorf("published vm.access = %d, want 20 (the window-boundary value)", got)
	}
	s.Flush()
	pub, _ = p.Load()
	if pub.Seq != 3 || pub.Refs != 25 {
		t.Errorf("flush publication seq=%d refs=%d, want 3, 25", pub.Seq, pub.Refs)
	}
}

// TestPublisherRaceHammer is the -race proof of the publication memory
// model: one writer thread ticking instruments and publishing at window
// boundaries, N reader goroutines concurrently scraping, encoding, and
// merging whatever they load. Any shared mutable state would trip the
// race detector; torn snapshots would break the seq/refs invariants.
func TestPublisherRaceHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tlb.miss")
	h := r.Histogram("tlb.walk.latency")
	s := NewSampler(64)
	p := NewPublisher(r)
	p.Gauge("sim.refs.total", func() float64 { return float64(s.Refs()) })
	p.AttachSampler(s)

	const (
		readers = 4
		ticks   = 100_000
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				pub, ok := p.Load()
				if !ok {
					continue
				}
				if pub.Seq < lastSeq {
					t.Error("publication sequence went backwards")
					return
				}
				lastSeq = pub.Seq
				// A torn snapshot could violate this: the refs gauge is set
				// at the same boundary the snapshot is taken.
				if got := pub.Snap.Gauges["sim.refs.total"]; got != float64(pub.Refs) {
					t.Errorf("torn snapshot: sim.refs.total = %v, refs = %d", got, pub.Refs)
					return
				}
				_ = pub.Snap.Prometheus()
				_ = pub.Snap.Merge(pub.Snap)
			}
		}()
	}

	for i := 0; i < ticks; i++ {
		c.Inc()
		h.Observe(uint64(i & 1023))
		s.Tick()
	}
	close(stop)
	wg.Wait()

	pub, ok := p.Load()
	if !ok || pub.Refs != (ticks/64)*64 {
		t.Fatalf("final publication refs = %d, want %d", pub.Refs, (ticks/64)*64)
	}
}

// BenchmarkPublisherSnapshot is the writer-side cost of one publication
// over a realistic registry — paid once per sample window, not per
// reference, so window=65536 amortizes this to fractions of a ns/ref.
func BenchmarkPublisherSnapshot(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"tlb.miss", "tlb.hit", "vm.access", "vm.fault.minor", "vm.fault.major", "swap.io.read"} {
		r.Counter(n).Add(123456)
	}
	for _, n := range []string{"vm.utilization", "iceberg.frontyard.occupancy", "iceberg.backyard.occupancy"} {
		r.Gauge(n).Set(0.5)
	}
	h := r.Histogram("sim.phase.duration")
	for i := uint64(0); i < 1000; i++ {
		h.Observe(i * i)
	}
	p := NewPublisher(r)
	p.Gauge("sim.refs.total", func() float64 { return float64(len(r.names)) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Publish(uint64(i))
	}
}
