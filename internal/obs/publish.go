package obs

import (
	"sync/atomic"
	"time"
)

// Publisher turns a single-threaded Registry into something concurrent
// readers can scrape while the simulator runs. The memory model is the
// whole design:
//
//   - The WRITER is the simulator thread. At every sampler window boundary
//     (never per reference) it evaluates its publish-time gauge probes,
//     deep-copies the registry into a fresh Published value, and stores a
//     pointer to it with one atomic store. The registry itself is touched
//     by no one else, so the hot path keeps its zero-lock, zero-alloc
//     instrument handles.
//   - READERS (HTTP scrape handlers, mosaicstat watch) do one atomic load
//     and get an immutable, torn-free snapshot — values that were all
//     current at the same window boundary. They never observe the live
//     registry, never take a lock the writer could contend on, and a slow
//     reader can never stall the simulation.
//
// Published snapshots are immutable by contract: readers may Merge and
// encode them (both allocate fresh state) but must not mutate the maps.
type Publisher struct {
	reg    *Registry
	probes []pubProbe
	seq    uint64
	cur    atomic.Pointer[Published]
}

// pubProbe is one publish-time gauge: fn is evaluated at each publication
// and its value Set on the pre-registered gauge handle.
type pubProbe struct {
	g  *Gauge
	fn func() float64
}

// Published is one torn-free publication of a registry.
type Published struct {
	// Seq is the publication sequence number, 1-based and monotonic, so a
	// poller can tell "new window" from "same window re-read".
	Seq uint64
	// Refs is the reference clock at the window boundary that produced
	// this snapshot.
	Refs uint64
	// Wall is the wall-clock publication time (rate denominators for
	// watchers; never serialized into results files).
	Wall time.Time
	// Snap is the deep-copied registry state. Immutable.
	Snap Snapshot
}

// NewPublisher wraps a registry. The registry stays owned by the single
// simulator thread; only Publish (called on that thread) reads it.
func NewPublisher(reg *Registry) *Publisher {
	return &Publisher{reg: reg}
}

// Gauge registers a publish-time probe: at every publication fn is
// evaluated on the simulator thread and its value recorded in the named
// registry gauge. This is how live simulator state that is not already an
// instrument (TLB unit counters, the reference clock) enters published
// snapshots without adding any per-reference cost. The name must be a
// lowercase dotted identifier, or Gauge panics (registration is
// configuration, enforced statically by mosaiclint obsnames).
func (p *Publisher) Gauge(name string, fn func() float64) {
	p.probes = append(p.probes, pubProbe{g: p.reg.Gauge(name), fn: fn})
}

// Publish evaluates the publish-time probes, snapshots the registry, and
// atomically replaces the current publication. Writer-side only: it must
// be called from the thread that owns the registry. Nil-safe, so a
// session wired without a publisher costs one pointer compare per window.
func (p *Publisher) Publish(refs uint64) {
	if p == nil {
		return
	}
	for _, pr := range p.probes {
		pr.g.Set(pr.fn())
	}
	p.seq++
	p.cur.Store(&Published{Seq: p.seq, Refs: refs, Wall: time.Now(), Snap: p.reg.Snapshot()})
}

// Load returns the latest publication, or ok=false before the first
// Publish. Safe for any number of concurrent callers; nil-safe.
func (p *Publisher) Load() (Published, bool) {
	if p == nil {
		return Published{}, false
	}
	pub := p.cur.Load()
	if pub == nil {
		return Published{}, false
	}
	return *pub, true
}

// AttachSampler ties publication to the sampler's window cadence: every
// completed (or flushed partial) window republishes. Call it once, during
// wiring, on the simulator thread.
func (p *Publisher) AttachSampler(s *Sampler) {
	s.OnWindow(p.Publish)
}
