package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestValidName(t *testing.T) {
	valid := []string{"tlb.miss", "vm.fault.minor", "iceberg.backyard.occupancy", "a.b", "x1.y_2"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", "tlb", "Tlb.miss", "tlb.Miss", "tlb..miss", ".miss", "tlb.", "tlb miss", "1tlb.miss", "tlb.9miss", "tlb-miss.x"}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(0.75)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", g.Value())
	}
}

// TestGaugeAdd: occupancy-style call sites shift the level in one call
// instead of a read-modify-write Set(g.Value()+d).
func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge after Add(3), Add(-1.5) = %v, want 1.5", g.Value())
	}
	g.Set(10)
	g.Add(1)
	if g.Value() != 11 {
		t.Fatalf("gauge after Set(10), Add(1) = %v, want 11", g.Value())
	}
}

// TestQuantileTopBucket: samples in the top log bucket (≥ 2^63) must not
// collapse the bucket's upper bound to a wrapped 0 — the quantile has to
// interpolate upward within [2^63, MaxUint64], never below its own
// bucket's lower bound.
func TestQuantileTopBucket(t *testing.T) {
	var h Histogram
	h.Observe(1 << 63)
	h.Observe(math.MaxUint64)
	s := h.Snapshot()
	lo := math.Ldexp(1, 63)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v := s.Quantile(q)
		if v < lo || v > math.Ldexp(1, 64) {
			t.Errorf("Quantile(%v) = %v, want within [2^63, 2^64)", q, v)
		}
	}
	// Quantiles are monotone in q even inside the top bucket.
	if s.Quantile(0.9) < s.Quantile(0.1) {
		t.Errorf("top-bucket quantiles not monotone: q0.9 = %v < q0.1 = %v", s.Quantile(0.9), s.Quantile(0.1))
	}
	// A mixed stream still interpolates the top bucket sanely.
	h.Observe(1)
	h.Observe(2)
	if v := h.Snapshot().Quantile(0.99); v < lo {
		t.Errorf("p99 with top-bucket samples = %v, want ≥ 2^63", v)
	}
}

// TestHistogramBucketBoundaries pins the log-bucket layout: bucket 0 holds
// only zero, bucket k holds [2^(k-1), 2^k).
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11}, {1<<11 - 1, 11},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Boundary values land in distinct adjacent buckets.
	for k := 1; k < 64; k++ {
		lo := uint64(1) << uint(k-1)
		if bucketOf(lo) != k {
			t.Errorf("bucketOf(2^%d) = %d, want %d", k-1, bucketOf(lo), k)
		}
		if bucketOf(lo-1) != k-1 && lo-1 != 0 {
			// lo-1 has one fewer bit unless it's zero.
			t.Errorf("bucketOf(2^%d - 1) = %d, want %d", k-1, bucketOf(lo-1), k-1)
		}
	}
	// bucketBounds round-trips bucketOf: every sample's bucket bounds
	// contain the sample.
	for _, v := range []uint64{0, 1, 2, 3, 5, 100, 1 << 20, 1<<40 + 17} {
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if b == 0 {
			if v != 0 {
				t.Errorf("bucket 0 holds %d, want only 0", v)
			}
			continue
		}
		if float64(v) < lo || float64(v) >= hi {
			t.Errorf("value %d in bucket %d outside bounds [%v, %v)", v, b, lo, hi)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 4, 8, 16} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 31 || s.Min != 0 || s.Max != 16 {
		t.Fatalf("snapshot = count %d sum %d min %d max %d", s.Count, s.Sum, s.Min, s.Max)
	}
	if got := s.Mean(); got != 31.0/6.0 {
		t.Errorf("mean = %v, want %v", got, 31.0/6.0)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("q0 = %v, want 0 (min)", q)
	}
	if q := s.Quantile(1); q != 16 {
		t.Errorf("q1 = %v, want 16 (max)", q)
	}
	q50 := s.Quantile(0.5)
	if q50 < 1 || q50 > 4 {
		t.Errorf("p50 = %v, want within [1, 4]", q50)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
	if m := h.Snapshot().Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
}

// TestHistogramMergeProperty is the satellite-mandated property: merging
// the snapshots of two streams equals the snapshot of the combined stream.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var a, b, both Histogram
		nA, nB := rng.Intn(200), rng.Intn(200)
		for i := 0; i < nA; i++ {
			v := uint64(rng.Int63n(1 << uint(1+rng.Intn(40))))
			a.Observe(v)
			both.Observe(v)
		}
		for i := 0; i < nB; i++ {
			v := uint64(rng.Int63n(1 << uint(1+rng.Intn(40))))
			b.Observe(v)
			both.Observe(v)
		}
		merged := a.Snapshot().Merge(b.Snapshot())
		want := both.Snapshot()
		if merged != want {
			t.Fatalf("trial %d (nA=%d nB=%d): merged snapshot %+v != combined-stream snapshot %+v",
				trial, nA, nB, merged, want)
		}
	}
}

func TestHistogramMergeEmptySides(t *testing.T) {
	var empty, full Histogram
	full.Observe(3)
	full.Observe(9)
	want := full.Snapshot()
	if got := empty.Snapshot().Merge(full.Snapshot()); got != want {
		t.Errorf("empty.Merge(full) = %+v, want %+v", got, want)
	}
	if got := full.Snapshot().Merge(empty.Snapshot()); got != want {
		t.Errorf("full.Merge(empty) = %+v, want %+v", got, want)
	}
	if got := empty.Snapshot().Merge(empty.Snapshot()); got.Count != 0 {
		t.Errorf("empty.Merge(empty).Count = %d, want 0", got.Count)
	}
}

func TestRegistryHandlesAndValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tlb.miss")
	c.Add(7)
	if r.Counter("tlb.miss") != c {
		t.Fatal("second Counter lookup returned a different handle")
	}
	if got := r.CounterValue("tlb.miss"); got != 7 {
		t.Fatalf("CounterValue = %d, want 7", got)
	}
	if got := r.CounterValue("no.such"); got != 0 {
		t.Fatalf("missing CounterValue = %d, want 0", got)
	}
	r.Gauge("vm.utilization").Set(0.9)
	if got := r.GaugeValue("vm.utilization"); got != 0.9 {
		t.Fatalf("GaugeValue = %v, want 0.9", got)
	}
	r.Histogram("walk.latency").Observe(12)
	names := r.Names()
	want := []string{"tlb.miss", "vm.utilization", "walk.latency"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("bad name", func() { r.Counter("BadName") })
	mustPanic("single segment", func() { r.Counter("tlb") })
	r.Counter("tlb.miss")
	mustPanic("kind conflict gauge", func() { r.Gauge("tlb.miss") })
	mustPanic("kind conflict hist", func() { r.Histogram("tlb.miss") })
}

func TestSnapshotMergeAndFlatten(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("tlb.miss").Add(10)
	r1.Gauge("vm.utilization").Set(0.5)
	r1.Histogram("walk.latency").Observe(4)

	r2 := NewRegistry()
	r2.Counter("tlb.miss").Add(5)
	r2.Counter("tlb.flush").Add(1)
	r2.Gauge("vm.utilization").Set(0.8)
	r2.Histogram("walk.latency").Observe(16)

	m := r1.Snapshot().Merge(r2.Snapshot())
	if m.Counters["tlb.miss"] != 15 {
		t.Errorf("merged tlb.miss = %d, want 15", m.Counters["tlb.miss"])
	}
	if m.Counters["tlb.flush"] != 1 {
		t.Errorf("merged tlb.flush = %d, want 1", m.Counters["tlb.flush"])
	}
	if m.Gauges["vm.utilization"] != 0.8 {
		t.Errorf("merged gauge = %v, want last-writer 0.8", m.Gauges["vm.utilization"])
	}
	if h := m.Histograms["walk.latency"]; h.Count != 2 || h.Sum != 20 {
		t.Errorf("merged histogram = %+v, want count 2 sum 20", h)
	}

	flat := m.Flatten()
	byName := map[string]float64{}
	for i := 1; i < len(flat); i++ {
		if flat[i-1].Name >= flat[i].Name {
			t.Errorf("Flatten not sorted: %q before %q", flat[i-1].Name, flat[i].Name)
		}
	}
	for _, nv := range flat {
		byName[nv.Name] = nv.Value
	}
	if byName["tlb.miss"] != 15 {
		t.Errorf("flattened tlb.miss = %v, want 15", byName["tlb.miss"])
	}
	if byName["walk.latency.count"] != 2 {
		t.Errorf("flattened walk.latency.count = %v, want 2", byName["walk.latency.count"])
	}
	if byName["walk.latency.mean"] != 10 {
		t.Errorf("flattened walk.latency.mean = %v, want 10", byName["walk.latency.mean"])
	}
	if _, ok := byName["walk.latency.p99"]; !ok {
		t.Error("flattened snapshot missing walk.latency.p99")
	}
}

func TestEventLogRingAndJSONL(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.SetCap(3)
	for i := 0; i < 5; i++ {
		l.Emit(Event{Ref: uint64(i), Component: "vm", Kind: "horizon.advance", Severity: Info})
	}
	if l.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
	evs := l.Events()
	if evs[0].Ref != 2 || evs[2].Ref != 4 {
		t.Fatalf("retained refs = [%d..%d], want [2..4]", evs[0].Ref, evs[2].Ref)
	}
	// Every event reached the JSONL stream despite ring eviction.
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("JSONL lines = %d, want 5", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"horizon.advance"`) {
		t.Errorf("JSONL line missing kind: %s", lines[0])
	}
	if err := l.Err(); err != nil {
		t.Fatalf("unexpected stream error: %v", err)
	}
}

func TestEventNonFiniteFieldsRenderNull(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.Emit(Event{Ref: 1, Component: "x", Kind: "a.b", Severity: Warn,
		Fields: map[string]float64{"bad": math.Inf(-1), "good": 2}})
	line := sb.String()
	if !strings.Contains(line, `"bad":null`) {
		t.Errorf("non-finite field not rendered as null: %s", line)
	}
	if !strings.Contains(line, `"good":2`) {
		t.Errorf("finite field mangled: %s", line)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(Event{Kind: "a.b"}) // must not panic
	if l.Len() != 0 || l.Dropped() != 0 || l.Events() != nil || l.Err() != nil {
		t.Fatal("nil EventLog accessors should all be zero")
	}
	var o *Observer
	o.Emit(Event{Kind: "a.b"}) // must not panic
	if o.Registry() != nil {
		t.Fatal("nil Observer.Registry should be nil")
	}
}

func TestNewObserver(t *testing.T) {
	o := NewObserver(1000)
	if o.Metrics == nil || o.Events == nil || o.Sampler == nil {
		t.Fatal("NewObserver(1000) should populate all three facilities")
	}
	if o.Sampler.Every() != 1000 {
		t.Fatalf("sampler cadence = %d, want 1000", o.Sampler.Every())
	}
	o2 := NewObserver(0)
	if o2.Sampler != nil {
		t.Fatal("NewObserver(0) should leave the sampler nil")
	}
}
