package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// lineRecorder captures each write as one rendered line. Writes arrive
// under Progress's mutex, so plain appends are properly synchronized.
type lineRecorder struct {
	lines []string
}

func (r *lineRecorder) Write(p []byte) (int, error) {
	r.lines = append(r.lines, string(p))
	return len(p), nil
}

func TestNewProgressTo(t *testing.T) {
	if p := NewProgressTo(nil); p != nil {
		t.Error("NewProgressTo(nil) should yield a nil Progress")
	}
	rec := &lineRecorder{}
	p := NewProgressTo(rec)
	p.Stepf("hello %d", 7)
	p.Done()
	if len(rec.lines) != 2 {
		t.Fatalf("got %d writes, want 2 (step + clear)", len(rec.lines))
	}
	if !strings.Contains(rec.lines[0], "hello 7") {
		t.Errorf("step line %q missing message", rec.lines[0])
	}
}

// TestProgressConcurrentStepf hammers one Progress from 8 goroutines; under
// -race this fails if Stepf/Done share state without synchronization (the
// parallel-sweep regime: every worker reports into one live line).
func TestProgressConcurrentStepf(t *testing.T) {
	p := NewProgressTo(io.Discard)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Stepf("worker %d step %d", g, i)
				if i%97 == 0 {
					p.Done()
				}
			}
		}(g)
	}
	wg.Wait()
	p.Done()
}

// TestStepCounterMonotonic checks the "point k/n done" rendering counts
// every completion exactly once and never renders a count out of order,
// even with 8 workers stepping concurrently.
func TestStepCounterMonotonic(t *testing.T) {
	rec := &lineRecorder{}
	p := NewProgressTo(rec)
	const workers, perWorker = 8, 250
	c := p.StartCount("sweep test", workers*perWorker)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Step()
			}
		}()
	}
	wg.Wait()
	if got := c.Done(); got != workers*perWorker {
		t.Fatalf("Done() = %d, want %d", got, workers*perWorker)
	}
	if len(rec.lines) != workers*perWorker {
		t.Fatalf("rendered %d lines, want %d", len(rec.lines), workers*perWorker)
	}
	last := 0
	for _, line := range rec.lines {
		var k, n int
		if _, err := fmt.Sscanf(line[strings.Index(line, "point"):], "point %d/%d done", &k, &n); err != nil {
			t.Fatalf("unparseable progress line %q: %v", line, err)
		}
		if n != workers*perWorker {
			t.Fatalf("line %q has total %d, want %d", line, n, workers*perWorker)
		}
		if k != last+1 {
			t.Fatalf("count went %d -> %d; want strictly +1 per line", last, k)
		}
		last = k
	}
}

func TestStepCounterNilSafe(t *testing.T) {
	var p *Progress
	c := p.StartCount("x", 10)
	if c != nil {
		t.Fatal("nil Progress should start a nil counter")
	}
	c.Step() // must not panic
	if c.Done() != 0 {
		t.Error("nil counter should report 0 done")
	}
}
