// Package obs is the simulator's observability layer: typed metric
// instruments (counters, gauges, log-scaled histograms) behind a named
// registry, a windowed time-series sampler the simulator drives every N
// references, and a structured JSONL event log for rare events (iceberg
// backyard spills, horizon advances, eviction storms, invariant-check
// passes).
//
// The design goals, in order:
//
//  1. Zero cost when disabled. Every consumer holds either a nil *Observer
//     (one pointer compare on the hot path) or direct instrument handles
//     (one integer add per event — no map lookup, no interface call, no
//     allocation).
//  2. Machine readability. Snapshots, series, and events all serialize
//     into the schema-versioned results files (internal/results) that
//     every experiment driver emits next to its text tables.
//  3. Mergeability. Counter and histogram snapshots Merge, so per-shard or
//     per-run observations combine into one report: merging the snapshots
//     of two streams equals the snapshot of the combined stream.
//
// Metric names are lowercase dotted identifiers ("tlb.miss",
// "iceberg.backyard.occupancy"); the mosaiclint obsnames analyzer enforces
// the convention at every call site with a constant name.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"regexp"
	"sort"
)

// nameRE is the metric-name grammar: two or more lowercase dotted segments,
// each starting with a letter ("tlb.miss", "vm.fault.minor").
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// ValidName reports whether name is a lowercase dotted metric identifier.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// mustValidName panics on a malformed metric name: registration happens at
// construction time, so a bad name is a programming error caught by the
// first test run (and statically by the mosaiclint obsnames analyzer).
func mustValidName(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: metric name %q is not a lowercase dotted identifier (want e.g. \"tlb.miss\")", name))
	}
}

// Counter is a monotonically increasing event count. The zero value is
// ready to use; instruments handed out by a Registry are long-lived
// handles, so hot paths pay one integer add per event.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v += delta }

// Value is the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous value (occupancy, utilization).
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by delta (negative to decrease) — the
// occupancy-style update, so call sites tracking a level do one call
// instead of a read-modify-write Set(g.Value()+delta).
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value is the current value.
func (g *Gauge) Value() float64 { return g.v }

// histBuckets is one bucket per power of two plus one for zero: bucket 0
// counts observations of 0 and bucket k counts values in [2^(k-1), 2^k).
const histBuckets = 65

// Histogram accumulates a distribution of non-negative integer samples
// (latencies in cycles, run lengths) in log-scaled buckets: constant-time
// observation, 65 words of state, and quantile estimates good to a factor
// of two — ample for "did walk latency double mid-run" questions.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// bucketOf maps a sample to its bucket index: 0 for 0, bits.Len64 otherwise.
func bucketOf(v uint64) int { return bits.Len64(v) }

// Observe adds one sample.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketOf(v)]++
}

// Count is the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Counts: h.counts,
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// HistogramSnapshot is an immutable copy of a Histogram.
type HistogramSnapshot struct {
	Counts [histBuckets]uint64
	Count  uint64
	Sum    uint64
	Min    uint64
	Max    uint64
}

// Merge combines another snapshot into this one; the result equals the
// snapshot of the two underlying streams observed by one histogram.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	switch {
	case s.Count == 0:
		out.Min, out.Max = o.Min, o.Max
	case o.Count == 0:
		out.Min, out.Max = s.Min, s.Max
	default:
		out.Min = min(s.Min, o.Min)
		out.Max = max(s.Max, o.Max)
	}
	return out
}

// Mean is the sample mean (zero with no samples).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the log buckets,
// interpolating linearly within the matched bucket. With no samples it
// returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := q * float64(s.Count)
	var cum float64
	for b, n := range s.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(b)
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(s.Max)
}

// bucketBounds returns the [lo, hi) value range of bucket b. The top
// bucket (b = 64) holds samples in [2^63, 2^64); its upper bound does not
// fit a uint64 shift (1<<64 wraps to 0, which would collapse the bucket
// and make Quantile interpolate downward into garbage), so it is clamped
// to MaxUint64.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 0
	}
	if b == 1 {
		return 1, 2
	}
	lo = float64(uint64(1) << uint(b-1))
	if b >= 64 {
		return lo, float64(math.MaxUint64)
	}
	return lo, float64(uint64(1) << uint(b))
}

// bucketUpper returns bucket b's inclusive integer upper bound (samples
// are integers, so bucket b's largest member is 2^b − 1), used by the
// Prometheus encoder's cumulative le= bounds.
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return math.MaxUint64
	}
	return uint64(1)<<uint(b) - 1
}

// Registry is an ordered, named set of instruments. Lookups by name happen
// only at registration time; hot paths hold the returned handles. It is
// not safe for concurrent use (nothing in the simulator is; parallel
// sweeps give every point its own simulator and registry, and only the
// shared Progress line — which is goroutine-safe — crosses workers).
type Registry struct {
	names    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter. It panics if
// the name is malformed or already names a different instrument kind.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge. It panics if the
// name is malformed or already names a different instrument kind.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the named histogram. It panics
// if the name is malformed or already names a different instrument kind.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, "histogram")
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// register validates the name, checks cross-kind uniqueness, and records
// registration order. It panics on conflicts — instrument registration is
// construction, not steady state.
func (r *Registry) register(name, kind string) {
	mustValidName(name)
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	if c || g || h {
		panic(fmt.Sprintf("obs: %q already registered with a different kind than %s", name, kind))
	}
	r.names = append(r.names, name)
}

// Names returns all instrument names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// CounterValue returns the value of a registered counter, or zero if no
// counter has that name — the test-friendly read path.
func (r *Registry) CounterValue(name string) uint64 {
	if c, ok := r.counters[name]; ok {
		return c.v
	}
	return 0
}

// GaugeValue returns the value of a registered gauge, or zero.
func (r *Registry) GaugeValue(name string) float64 {
	if g, ok := r.gauges[name]; ok {
		return g.v
	}
	return 0
}

// Snapshot captures every instrument's current state.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.v
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.v
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Merge combines another snapshot into a copy of this one: counters and
// histograms add (two shards of one logical stream); gauges keep the other
// snapshot's value when it has one (last-writer-wins, matching gauge
// semantics).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for n, v := range s.Counters {
		out.Counters[n] = v
	}
	for n, v := range o.Counters {
		out.Counters[n] += v
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, v := range o.Gauges {
		out.Gauges[n] = v
	}
	for n, v := range s.Histograms {
		out.Histograms[n] = v
	}
	for n, v := range o.Histograms {
		out.Histograms[n] = out.Histograms[n].Merge(v)
	}
	return out
}

// Flatten renders the snapshot as sorted name→value pairs suitable for a
// metrics map: counters and gauges verbatim, histograms expanded into
// .count/.mean/.p50/.p99/.max pseudo-metrics.
func (s Snapshot) Flatten() []NamedValue {
	out := make([]NamedValue, 0, len(s.Counters)+len(s.Gauges)+5*len(s.Histograms))
	for n, v := range s.Counters {
		out = append(out, NamedValue{Name: n, Value: float64(v)})
	}
	for n, v := range s.Gauges {
		out = append(out, NamedValue{Name: n, Value: v})
	}
	for n, h := range s.Histograms {
		out = append(out,
			NamedValue{Name: n + ".count", Value: float64(h.Count)},
			NamedValue{Name: n + ".mean", Value: h.Mean()},
			NamedValue{Name: n + ".p50", Value: h.Quantile(0.5)},
			NamedValue{Name: n + ".p99", Value: h.Quantile(0.99)},
			NamedValue{Name: n + ".max", Value: float64(h.Max)},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedValue is one flattened metric.
type NamedValue struct {
	Name  string
	Value float64
}

// Observer bundles the three observability facilities a component may be
// handed: metric instruments, the time-series sampler, and the structured
// event log. Any field — or the whole Observer — may be nil; every consumer
// must tolerate that, and the helpers below are nil-safe so call sites
// stay unconditional.
type Observer struct {
	Metrics *Registry
	Sampler *Sampler
	Events  *EventLog
}

// NewObserver builds a fully-enabled Observer: a fresh registry, a sampler
// at the given cadence (0 disables sampling), and an in-memory event log
// (attach a writer with Events.SetWriter for streaming JSONL).
func NewObserver(sampleEvery uint64) *Observer {
	o := &Observer{Metrics: NewRegistry(), Events: NewEventLog(nil)}
	if sampleEvery > 0 {
		o.Sampler = NewSampler(sampleEvery)
	}
	return o
}

// Emit forwards an event to the log; nil-safe.
func (o *Observer) Emit(e Event) {
	if o == nil || o.Events == nil {
		return
	}
	o.Events.Emit(e)
}

// Registry returns the metrics registry, or nil; nil-safe.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
