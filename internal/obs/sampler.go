package obs

import "math"

// Sampler records windowed time series while the simulator runs: the
// driver registers probes (closures over live simulator state), the
// simulator calls Tick once per data reference, and every `every` ticks
// the sampler evaluates all probes and appends one point per series.
//
// Three probe kinds cover the evaluation's needs:
//
//   - Gauge probes record the probe's instantaneous value (occupancy,
//     utilization, ghost fraction);
//   - Rate probes record the probe's delta over the window divided by the
//     window's reference count (events per reference — swap I/O rate,
//     fault rate);
//   - Ratio probes record delta(num)/delta(den) over the window, times a
//     scale (per-window TLB hit rate, cycles per walk, cache MPKI).
//
// Windows where a ratio's denominator did not move record NaN — "no
// observation", rendered as null in the JSON results — rather than a fake
// zero.
//
// The per-tick cost is two integer increments and one compare; Tick
// allocates nothing. Probe evaluation allocates only via slice append,
// amortized over the run.
type Sampler struct {
	every uint64
	since uint64
	refs  uint64

	probes []probe
	series [][]float64
	marks  []uint64 // reference index of each completed window

	onWindow []func(refs uint64) // window-boundary hooks (Publisher)
}

type probeKind uint8

const (
	probeGauge probeKind = iota
	probeRate
	probeRatio
)

type probe struct {
	name     string
	kind     probeKind
	scale    float64
	num, den func() float64
	prevNum  float64
	prevDen  float64
}

// NewSampler creates a sampler that samples every `every` references. It
// panics if every is zero (use a nil *Sampler to disable sampling).
func NewSampler(every uint64) *Sampler {
	if every == 0 {
		panic("obs: sampler cadence must be positive; use a nil Sampler to disable")
	}
	return &Sampler{every: every}
}

// Every is the sampling cadence in references.
func (s *Sampler) Every() uint64 { return s.every }

// Refs is the number of references ticked so far.
func (s *Sampler) Refs() uint64 { return s.refs }

// Gauge registers an instantaneous-value probe. The name must be a
// lowercase dotted identifier, or Gauge panics.
func (s *Sampler) Gauge(name string, fn func() float64) {
	s.add(probe{name: name, kind: probeGauge, num: fn})
}

// Rate registers a per-reference rate probe: each window records
// (fn_now − fn_prev) / window references. The name must be a lowercase
// dotted identifier, or Rate panics.
func (s *Sampler) Rate(name string, fn func() float64) {
	s.add(probe{name: name, kind: probeRate, scale: 1, num: fn})
}

// Ratio registers a windowed-ratio probe: each window records
// scale × Δnum/Δden. Windows with Δden == 0 record NaN. The name must be a
// lowercase dotted identifier, or Ratio panics.
func (s *Sampler) Ratio(name string, scale float64, num, den func() float64) {
	s.add(probe{name: name, kind: probeRatio, scale: scale, num: num, den: den})
}

func (s *Sampler) add(p probe) {
	mustValidName(p.name)
	for _, q := range s.probes {
		if q.name == p.name {
			//lint:ignore nopanic probe registration is configuration; a duplicate name is a programming error caught at wiring time
			panic("obs: duplicate sampler probe " + p.name)
		}
	}
	if p.num != nil {
		p.prevNum = p.num()
	}
	if p.den != nil {
		p.prevDen = p.den()
	}
	s.probes = append(s.probes, p)
	s.series = append(s.series, nil)
}

// Tick advances the reference clock by one and samples at window
// boundaries. This is the hot-path entry point.
func (s *Sampler) Tick() {
	s.refs++
	s.since++
	if s.since >= s.every {
		s.since = 0
		s.sample()
	}
}

// Flush samples any partial window so short runs still end with a point.
// It is a no-op if the current window is empty.
func (s *Sampler) Flush() {
	if s.since == 0 {
		return
	}
	window := s.since
	s.since = 0
	s.samplePartial(window)
}

func (s *Sampler) sample() { s.samplePartial(s.every) }

func (s *Sampler) samplePartial(window uint64) {
	s.marks = append(s.marks, s.refs)
	for i := range s.probes {
		p := &s.probes[i]
		var v float64
		switch p.kind {
		case probeGauge:
			v = p.num()
		case probeRate:
			cur := p.num()
			v = p.scale * (cur - p.prevNum) / float64(window)
			p.prevNum = cur
		case probeRatio:
			num, den := p.num(), p.den()
			dNum, dDen := num-p.prevNum, den-p.prevDen
			p.prevNum, p.prevDen = num, den
			if dDen == 0 {
				v = math.NaN()
			} else {
				v = p.scale * dNum / dDen
			}
		}
		s.series[i] = append(s.series[i], v)
	}
	for _, fn := range s.onWindow {
		fn(s.refs)
	}
}

// OnWindow registers a hook called at the end of every sample window
// (including the partial window Flush closes) with the reference index of
// the boundary. This is how a Publisher ties publication to the sampling
// cadence: the hook runs on the simulator thread, once per window — never
// per tick — so the hot path's cost is unchanged.
func (s *Sampler) OnWindow(fn func(refs uint64)) {
	s.onWindow = append(s.onWindow, fn)
}

// Series is one sampled time series: Refs[i] is the reference index at the
// end of window i, Values[i] the window's sampled value.
type Series struct {
	Name   string
	Refs   []uint64
	Values []float64
}

// Series returns a copy of every sampled series, in registration order.
func (s *Sampler) Series() []Series {
	out := make([]Series, len(s.probes))
	for i, p := range s.probes {
		out[i] = Series{
			Name:   p.name,
			Refs:   append([]uint64(nil), s.marks...),
			Values: append([]float64(nil), s.series[i]...),
		}
	}
	return out
}

// Points is the number of completed sample windows.
func (s *Sampler) Points() int { return len(s.marks) }
