package obs

import (
	"testing"
	"time"
)

// TestSpanRecord: a finished span lands in the phase-duration histogram
// and the event log with both axes intact.
func TestSpanRecord(t *testing.T) {
	o := NewObserver(0)
	base := time.Unix(1000, 0)
	sp := &Span{Name: "warmup", StartRef: 100, EndRef: 2500, Start: base, End: base.Add(1500 * time.Microsecond)}
	sp.Record(o)

	snap := o.Metrics.Snapshot()
	h, ok := snap.Histograms[PhaseDurationMetric]
	if !ok || h.Count != 1 {
		t.Fatalf("phase histogram count = %d (present %v), want 1 sample", h.Count, ok)
	}
	if h.Sum != 1500 {
		t.Errorf("phase duration sum = %d µs, want 1500", h.Sum)
	}

	evs := o.Events.Events()
	if len(evs) != 1 {
		t.Fatalf("event log has %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != "phase.warmup" || e.Ref != 2500 || e.Severity != Info {
		t.Errorf("event = %+v, want kind phase.warmup at ref 2500", e)
	}
	if e.Fields["start_ref"] != 100 || e.Fields["end_ref"] != 2500 || e.Fields["micros"] != 1500 {
		t.Errorf("event fields = %v, want start_ref=100 end_ref=2500 micros=1500", e.Fields)
	}
}

// TestSpanFinishStamps: NewSpan/Finish stamp monotone wall times and the
// end reference index.
func TestSpanFinishStamps(t *testing.T) {
	o := NewObserver(0)
	sp := NewSpan("run", 10)
	if sp.Start.IsZero() {
		t.Fatal("NewSpan left Start unstamped")
	}
	sp.Finish(o, 90)
	if sp.EndRef != 90 || sp.End.Before(sp.Start) {
		t.Errorf("Finish: EndRef=%d End=%v Start=%v, want 90 and End >= Start", sp.EndRef, sp.End, sp.Start)
	}
	if got := o.Metrics.Snapshot().Histograms[PhaseDurationMetric].Count; got != 1 {
		t.Errorf("phase histogram count = %d, want 1", got)
	}
}

// TestSpanRecordNilSafe: recording on a nil or empty observer is a no-op.
func TestSpanRecordNilSafe(t *testing.T) {
	sp := NewSpan("report", 0)
	sp.Finish(nil, 1)
	sp.Record(&Observer{})
}

// TestSpanNameValidation: the grammar is one lowercase segment.
func TestSpanNameValidation(t *testing.T) {
	for name, want := range map[string]bool{
		"warmup":   true,
		"run":      true,
		"report":   true,
		"phase_2a": true,
		"Warmup":   false,
		"warm up":  false,
		"sim.run":  false,
		"2fast":    false,
		"":         false,
	} {
		if got := ValidSpanName(name); got != want {
			t.Errorf("ValidSpanName(%q) = %v, want %v", name, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewSpan accepted a malformed name")
		}
	}()
	NewSpan("Not A Span", 0)
}
