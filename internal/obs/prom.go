package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for snapshots. The
// encoding is deterministic — byte-for-byte stable for a given snapshot —
// so goldens can pin it and merged scrapes diff cleanly:
//
//   - Dotted metric names map to underscores ("tlb.miss" → "tlb_miss");
//     the name grammar (lowercase segments) guarantees the result is a
//     valid Prometheus metric name and that the mapping never collides
//     with another instrument (underscores only ever join segments).
//   - Metrics are emitted in sorted order of their exposition name, each
//     preceded by its # TYPE line.
//   - Counters and gauges are emitted verbatim; non-finite gauge values
//     use Prometheus spellings (NaN, +Inf, -Inf).
//   - Histograms expand to cumulative <name>_bucket{le="..."} series with
//     inclusive integer upper bounds from the log-scaled buckets (bucket b
//     holds samples in [2^(b-1), 2^b), so its le bound is 2^b − 1; the top
//     bucket clamps to MaxUint64), up to the highest non-empty bucket,
//     followed by the mandatory le="+Inf", <name>_sum, and <name>_count.

// PromContentType is the Content-Type an HTTP handler serving this
// encoding should set.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName maps a dotted metric name to its Prometheus exposition form.
func PromName(name string) string { return strings.ReplaceAll(name, ".", "_") }

// promFloat renders a float the way the exposition format spells it.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promRow is one instrument scheduled for encoding, sorted by exposition
// name so output order is deterministic regardless of map iteration.
type promRow struct {
	name string // exposition name
	kind byte   // 'c', 'g', 'h'
	key  string // original dotted name
}

// Prometheus renders the snapshot as Prometheus text exposition.
func (s Snapshot) Prometheus() string {
	rows := make([]promRow, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		rows = append(rows, promRow{name: PromName(n), kind: 'c', key: n})
	}
	for n := range s.Gauges {
		rows = append(rows, promRow{name: PromName(n), kind: 'g', key: n})
	}
	for n := range s.Histograms {
		rows = append(rows, promRow{name: PromName(n), kind: 'h', key: n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	var b strings.Builder
	for _, r := range rows {
		switch r.kind {
		case 'c':
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", r.name, r.name, s.Counters[r.key])
		case 'g':
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", r.name, r.name, promFloat(s.Gauges[r.key]))
		case 'h':
			writePromHistogram(&b, r.name, s.Histograms[r.key])
		}
	}
	return b.String()
}

// writePromHistogram emits one histogram's cumulative bucket series.
func writePromHistogram(b *strings.Builder, name string, h HistogramSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	top := -1
	for i, n := range h.Counts {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(i), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(b, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}
