package obs

import (
	"fmt"
	"regexp"
	"time"
)

// Span marks one phase of a run — warmup, run, report — on both of the
// axes the rest of the package measures: the reference index (where in
// the simulated stream the phase started and ended) and wall time (what
// it cost us to compute). Finishing a span feeds the wall.phase.duration
// histogram and drops one structured event, so phase boundaries line up
// with the metrics and the event log in one results file.
//
// Spans are driver-side instrumentation (session lifecycles, experiment
// stages), not hot-path instruments: creating and finishing one costs a
// couple of clock reads and an event append.
type Span struct {
	// Name is the phase name, a lowercase identifier ("warmup", "run",
	// "report").
	Name string
	// StartRef and EndRef delimit the phase on the reference-index axis.
	StartRef, EndRef uint64
	// Start and End delimit the phase in wall time.
	Start, End time.Time
}

// spanNameRE is the span-name grammar: one lowercase segment. Unlike
// metric names, spans are single words — the dotted namespace they land
// in ("phase.<name>" events, the wall.phase.duration histogram) is fixed.
var spanNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// ValidSpanName reports whether name is a lowercase span identifier.
func ValidSpanName(name string) bool { return spanNameRE.MatchString(name) }

// PhaseDurationMetric is the histogram every finished span observes its
// wall-time duration into, in microseconds. It lives in the reserved
// "wall." namespace: wall-clock observations are telemetry, not results —
// results.File.AddSnapshot excludes the namespace from deterministic
// results files, and mosaiclint's dettaint analyzer exempts instruments
// fetched under it.
const PhaseDurationMetric = "wall.phase.duration"

// NewSpan starts a phase span at the given reference index, stamping the
// wall clock. It panics on a malformed name: spans are wired at
// configuration time, so a bad name is a programming error (and a
// mosaiclint obsnames finding at review time).
func NewSpan(name string, startRef uint64) *Span {
	if !ValidSpanName(name) {
		//lint:ignore nopanic span registration is configuration; a malformed name is a programming error caught by the first run and by mosaiclint obsnames
		panic(fmt.Sprintf("obs: span name %q is not a lowercase identifier (want e.g. \"warmup\")", name))
	}
	return &Span{Name: name, StartRef: startRef, Start: time.Now()}
}

// Finish ends the span at the given reference index, stamps the wall
// clock, and records it on the observer. Nil-safe in o.
func (sp *Span) Finish(o *Observer, endRef uint64) {
	sp.EndRef = endRef
	sp.End = time.Now()
	sp.Record(o)
}

// Duration is the span's wall-time extent (zero until End is stamped).
func (sp *Span) Duration() time.Duration {
	if sp.End.Before(sp.Start) {
		return 0
	}
	return sp.End.Sub(sp.Start)
}

// Record observes the span's duration in the wall.phase.duration histogram
// and emits a phase.<name> event carrying both axes. Split from Finish so
// tests (and replayers) can record spans with explicit timestamps.
// Nil-safe in o and in each of its fields.
func (sp *Span) Record(o *Observer) {
	micros := uint64(sp.Duration().Microseconds())
	if r := o.Registry(); r != nil {
		r.Histogram(PhaseDurationMetric).Observe(micros)
	}
	o.Emit(Event{
		Ref:       sp.EndRef,
		Component: "obs",
		Kind:      "phase." + sp.Name,
		Severity:  Info,
		Fields: map[string]float64{
			"start_ref": float64(sp.StartRef),
			"end_ref":   float64(sp.EndRef),
			"micros":    float64(micros),
		},
	})
}
