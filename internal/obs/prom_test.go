package obs

import (
	"math"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the text exposition byte-for-byte: metric
// ordering, name mangling, # TYPE lines, NaN spelling, and the cumulative
// histogram expansion with inclusive integer le= bounds.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("tlb.miss").Add(42)
	r.Counter("vm.access").Add(100000)
	r.Gauge("vm.utilization").Set(0.75)
	r.Gauge("iceberg.backyard.occupancy").Set(math.NaN())
	h := r.Histogram("sim.phase.duration")
	for _, v := range []uint64{0, 1, 3, 9} {
		h.Observe(v)
	}

	const want = `# TYPE iceberg_backyard_occupancy gauge
iceberg_backyard_occupancy NaN
# TYPE sim_phase_duration histogram
sim_phase_duration_bucket{le="0"} 1
sim_phase_duration_bucket{le="1"} 2
sim_phase_duration_bucket{le="3"} 3
sim_phase_duration_bucket{le="7"} 3
sim_phase_duration_bucket{le="15"} 4
sim_phase_duration_bucket{le="+Inf"} 4
sim_phase_duration_sum 13
sim_phase_duration_count 4
# TYPE tlb_miss counter
tlb_miss 42
# TYPE vm_access counter
vm_access 100000
# TYPE vm_utilization gauge
vm_utilization 0.75
`
	if got := r.Snapshot().Prometheus(); got != want {
		t.Errorf("Prometheus() mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusTopBucket pins the clamped le= bound of the top log
// bucket: samples ≥ 2^63 cumulate under le="MaxUint64", not a wrapped 0.
func TestPrometheusTopBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tlb.walk.latency")
	h.Observe(1 << 63)
	h.Observe(math.MaxUint64)
	got := r.Snapshot().Prometheus()
	if !strings.Contains(got, `tlb_walk_latency_bucket{le="18446744073709551615"} 2`) {
		t.Errorf("top bucket bound not clamped to MaxUint64:\n%s", got)
	}
	if strings.Contains(got, `{le="0"} 2`) {
		t.Errorf("top bucket collapsed to zero bound:\n%s", got)
	}
}

// TestPrometheusNonFinite pins the exposition spellings for the three
// non-finite gauge values.
func TestPrometheusNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("a.nan").Set(math.NaN())
	r.Gauge("b.posinf").Set(math.Inf(1))
	r.Gauge("c.neginf").Set(math.Inf(-1))
	got := r.Snapshot().Prometheus()
	for _, want := range []string{"a_nan NaN\n", "b_posinf +Inf\n", "c_neginf -Inf\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

// TestPrometheusEmptyHistogram: a registered histogram with no samples
// still emits the mandatory +Inf bucket, sum, and count.
func TestPrometheusEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("vm.fault.latency")
	const want = `# TYPE vm_fault_latency histogram
vm_fault_latency_bucket{le="+Inf"} 0
vm_fault_latency_sum 0
vm_fault_latency_count 0
`
	if got := r.Snapshot().Prometheus(); got != want {
		t.Errorf("empty histogram exposition = %q, want %q", got, want)
	}
}

func BenchmarkPromEncode(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"tlb.miss", "tlb.hit", "vm.access", "vm.fault.minor", "vm.fault.major", "swap.io.read"} {
		r.Counter(n).Add(123456)
	}
	for _, n := range []string{"vm.utilization", "iceberg.frontyard.occupancy", "iceberg.backyard.occupancy"} {
		r.Gauge(n).Set(0.5)
	}
	h := r.Histogram("sim.phase.duration")
	for i := uint64(0); i < 1000; i++ {
		h.Observe(i * i)
	}
	snap := r.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := snap.Prometheus(); len(s) == 0 {
			b.Fatal("empty exposition")
		}
	}
}
