package obs

import (
	"fmt"
	"io"
	"os"
	"runtime/pprof"
)

// Progress renders a single live status line, rewritten in place with a
// carriage return. It only writes when the destination is an interactive
// terminal, so redirected runs and CI logs stay clean. All methods are
// nil-safe: drivers that run quiet hold a nil *Progress.
type Progress struct {
	w     io.Writer
	wrote bool
}

// NewProgress returns a Progress writing to stderr, or nil when stderr is
// not a terminal (or the caller asked for quiet output).
func NewProgress(enabled bool) *Progress {
	if !enabled || !isTerminal(os.Stderr) {
		return nil
	}
	return &Progress{w: os.Stderr}
}

// isTerminal reports whether f is an interactive terminal (character
// device). Good enough for "suppress the progress line under redirection"
// without a terminfo dependency.
func isTerminal(f *os.File) bool {
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// Stepf rewrites the live line; nil-safe.
func (p *Progress) Stepf(format string, args ...any) {
	if p == nil {
		return
	}
	// Erase-to-end first so a shorter message fully replaces a longer one.
	fmt.Fprintf(p.w, "\r\x1b[K"+format, args...)
	p.wrote = true
}

// Done clears the live line so the next regular print starts clean; nil-safe.
func (p *Progress) Done() {
	if p == nil || !p.wrote {
		return
	}
	fmt.Fprint(p.w, "\r\x1b[K")
	p.wrote = false
}

// StartCPUProfile begins a CPU profile to the named file and returns a stop
// function that ends the profile and closes the file. Every cmd/* driver
// wires this to a -cpuprofile flag.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to the named file. Drivers wire
// this to a -memprofile flag, invoked after the run completes.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create heap profile: %w", err)
	}
	defer f.Close()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return nil
}
