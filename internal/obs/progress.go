package obs

import (
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"sync"
)

// Progress renders a single live status line, rewritten in place with a
// carriage return. It only writes when the destination is an interactive
// terminal, so redirected runs and CI logs stay clean. All methods are
// nil-safe: drivers that run quiet hold a nil *Progress.
//
// Unlike the rest of the package, Progress is safe for concurrent use:
// parallel sweep workers (internal/sweep) all report into the one live
// line, so Stepf and Done serialize on an internal mutex.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	wrote bool
}

// NewProgress returns a Progress writing to stderr, or nil when stderr is
// not a terminal (or the caller asked for quiet output).
func NewProgress(enabled bool) *Progress {
	if !enabled || !isTerminal(os.Stderr) {
		return nil
	}
	return &Progress{w: os.Stderr}
}

// NewProgressTo returns a Progress writing to w unconditionally — the
// testing hook behind NewProgress's terminal gate. A nil writer yields a
// nil (still safe) Progress.
func NewProgressTo(w io.Writer) *Progress {
	if w == nil {
		return nil
	}
	return &Progress{w: w}
}

// isTerminal reports whether f is an interactive terminal (character
// device). Good enough for "suppress the progress line under redirection"
// without a terminfo dependency.
func isTerminal(f *os.File) bool {
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// Stepf rewrites the live line; nil-safe and goroutine-safe.
func (p *Progress) Stepf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Erase-to-end first so a shorter message fully replaces a longer one.
	fmt.Fprintf(p.w, "\r\x1b[K"+format, args...)
	p.wrote = true
}

// Done clears the live line so the next regular print starts clean;
// nil-safe and goroutine-safe.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.wrote {
		return
	}
	fmt.Fprint(p.w, "\r\x1b[K")
	p.wrote = false
}

// StepCounter renders a monotonic "<name>: point k/n done" progress line
// as concurrent sweep workers complete points. Each Step increments the
// count and rewrites the line under one lock, so rendered counts never go
// backwards no matter how workers interleave. The zero count is never
// rendered; a nil counter (quiet runs) ignores every call.
type StepCounter struct {
	mu    sync.Mutex
	p     *Progress
	name  string
	total int
	done  int
}

// StartCount begins a counted progress sequence of total points; nil-safe
// (a nil Progress yields a nil, still safe, counter).
func (p *Progress) StartCount(name string, total int) *StepCounter {
	if p == nil {
		return nil
	}
	return &StepCounter{p: p, name: name, total: total}
}

// Step records one completed point and rewrites the live line; nil-safe
// and goroutine-safe.
func (c *StepCounter) Step() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done++
	if c.name != "" {
		c.p.Stepf("%s: point %d/%d done", c.name, c.done, c.total)
		return
	}
	c.p.Stepf("point %d/%d done", c.done, c.total)
}

// Done is the number of points recorded so far; nil-safe.
func (c *StepCounter) Done() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// StartCPUProfile begins a CPU profile to the named file and returns a stop
// function that ends the profile and closes the file. Every cmd/* driver
// wires this to a -cpuprofile flag.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to the named file. Drivers wire
// this to a -memprofile flag, invoked after the run completes.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create heap profile: %w", err)
	}
	defer f.Close()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return nil
}
