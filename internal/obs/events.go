package obs

import (
	"encoding/json"
	"io"
	"math"
)

// Severity classifies an event.
type Severity string

// The three severities. Info marks expected-but-notable transitions,
// Warn marks pressure signals (eviction storms), Error marks states that
// should never occur in a healthy run.
const (
	Info  Severity = "info"
	Warn  Severity = "warn"
	Error Severity = "error"
)

// Event is one structured log record: a rare, discrete occurrence worth
// pinpointing on the reference-index axis (unlike metrics, which aggregate).
type Event struct {
	// Ref is the reference index (the OS access clock) at which the event
	// occurred.
	Ref uint64 `json:"ref"`
	// Component names the emitting subsystem ("vm", "memsim", "iceberg").
	Component string `json:"component"`
	// Kind is the event type, a lowercase dotted identifier
	// ("horizon.advance", "eviction.storm", "invariant.pass").
	Kind string `json:"kind"`
	// Severity is info, warn, or error.
	Severity Severity `json:"severity"`
	// Scope optionally qualifies the run the event belongs to (e.g. the
	// workload name when one results file covers several runs).
	Scope string `json:"scope,omitempty"`
	// Message is an optional human-readable elaboration.
	Message string `json:"message,omitempty"`
	// Fields carries numeric payload ("horizon": 123456). Non-finite
	// values are replaced with null on encoding.
	Fields map[string]float64 `json:"fields,omitempty"`
}

// MarshalJSON encodes the event with non-finite field values as null, so
// an event stream is always valid JSONL.
func (e Event) MarshalJSON() ([]byte, error) {
	type wire struct {
		Ref       uint64              `json:"ref"`
		Component string              `json:"component"`
		Kind      string              `json:"kind"`
		Severity  Severity            `json:"severity"`
		Scope     string              `json:"scope,omitempty"`
		Message   string              `json:"message,omitempty"`
		Fields    map[string]*float64 `json:"fields,omitempty"`
	}
	w := wire{Ref: e.Ref, Component: e.Component, Kind: e.Kind, Severity: e.Severity, Scope: e.Scope, Message: e.Message}
	if len(e.Fields) > 0 {
		w.Fields = make(map[string]*float64, len(e.Fields))
		for k, v := range e.Fields {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				w.Fields[k] = nil
				continue
			}
			v := v
			w.Fields[k] = &v
		}
	}
	return json.Marshal(w)
}

// defaultEventCap bounds the in-memory event ring. Rare events stay rare;
// if a run emits more than this, the oldest are dropped (and counted), the
// JSONL stream — if attached — still sees every record.
const defaultEventCap = 4096

// EventLog collects events in a bounded in-memory ring and optionally
// streams them as JSONL to a writer. Emit on a nil *EventLog is a no-op,
// so components hold the pointer unconditionally. Like trace.Writer, write
// errors are sticky and reported by Err rather than interrupting a
// simulation mid-run.
type EventLog struct {
	enc     *json.Encoder
	ring    []Event
	start   int
	cap     int
	dropped uint64
	err     error
}

// NewEventLog creates an event log. w may be nil for in-memory only.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{cap: defaultEventCap}
	if w != nil {
		l.enc = json.NewEncoder(w)
	}
	return l
}

// SetWriter attaches (or replaces) the JSONL stream. Events already in the
// ring are not replayed.
func (l *EventLog) SetWriter(w io.Writer) {
	if w == nil {
		l.enc = nil
		return
	}
	l.enc = json.NewEncoder(w)
}

// SetCap resizes the in-memory ring bound (minimum 1). Existing events are
// kept up to the new bound, oldest dropped first.
func (l *EventLog) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	for len(l.ring) > n {
		l.evictOldest()
	}
	l.cap = n
}

// Emit records one event; nil-safe.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	if l.enc != nil && l.err == nil {
		if err := l.enc.Encode(e); err != nil {
			l.err = err
		}
	}
	if len(l.ring) >= l.cap {
		l.evictOldest()
	}
	l.ring = append(l.ring, Event{})
	idx := (l.start + len(l.ring) - 1) % len(l.ring)
	l.ring[idx] = e
}

// evictOldest drops the oldest ring entry.
func (l *EventLog) evictOldest() {
	// Ring stored as a slice rotated by start; dropping the oldest advances
	// start and shrinks by re-slicing after compaction. Simplest correct
	// form: materialize in order, drop head.
	evs := l.eventsInOrder()
	l.ring = evs[1:]
	l.start = 0
	l.dropped++
}

func (l *EventLog) eventsInOrder() []Event {
	if l.start == 0 {
		return l.ring
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.start:]...)
	out = append(out, l.ring[:l.start]...)
	l.start = 0
	l.ring = out
	return out
}

// Events returns the retained events, oldest first; nil-safe.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	return append([]Event(nil), l.eventsInOrder()...)
}

// Len is the number of retained events; nil-safe.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.ring)
}

// Dropped is the number of events evicted from the ring; nil-safe.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Err reports the first JSONL encoding error, if any; nil-safe.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	return l.err
}
