package obs

import (
	"math"
	"testing"
)

func TestSamplerWindows(t *testing.T) {
	s := NewSampler(10)
	var hits, lookups float64
	var occupancy float64
	s.Gauge("iceberg.frontyard.occupancy", func() float64 { return occupancy })
	s.Rate("swap.io.rate", func() float64 { return hits })
	s.Ratio("tlb.hit_rate", 1, func() float64 { return hits }, func() float64 { return lookups })

	for i := 0; i < 25; i++ {
		lookups++
		if i%2 == 0 {
			hits++
		}
		occupancy = float64(i)
		s.Tick()
	}
	if s.Points() != 2 {
		t.Fatalf("points = %d, want 2 completed windows", s.Points())
	}
	s.Flush()
	if s.Points() != 3 {
		t.Fatalf("points after flush = %d, want 3", s.Points())
	}
	s.Flush() // second flush of an empty window is a no-op
	if s.Points() != 3 {
		t.Fatalf("points after redundant flush = %d, want 3", s.Points())
	}

	series := s.Series()
	if len(series) != 3 {
		t.Fatalf("series count = %d, want 3", len(series))
	}
	byName := map[string]Series{}
	for _, sr := range series {
		byName[sr.Name] = sr
	}

	g := byName["iceberg.frontyard.occupancy"]
	if g.Refs[0] != 10 || g.Refs[1] != 20 || g.Refs[2] != 25 {
		t.Fatalf("gauge refs = %v, want [10 20 25]", g.Refs)
	}
	// Gauge samples the instantaneous value at the window edge (i=9, 19, 24).
	if g.Values[0] != 9 || g.Values[1] != 19 || g.Values[2] != 24 {
		t.Fatalf("gauge values = %v, want [9 19 24]", g.Values)
	}

	r := byName["swap.io.rate"]
	// hits advance by 5 per 10-ref window → rate 0.5; final partial window
	// has 5 refs and 3 hits (i=20,22,24) → 0.6.
	if r.Values[0] != 0.5 || r.Values[1] != 0.5 || r.Values[2] != 0.6 {
		t.Fatalf("rate values = %v, want [0.5 0.5 0.6]", r.Values)
	}

	h := byName["tlb.hit_rate"]
	if h.Values[0] != 0.5 || h.Values[1] != 0.5 || h.Values[2] != 0.6 {
		t.Fatalf("ratio values = %v, want [0.5 0.5 0.6]", h.Values)
	}
}

func TestSamplerRatioNaNOnIdleDenominator(t *testing.T) {
	s := NewSampler(5)
	var num, den float64
	s.Ratio("cache.mpki", 1000, func() float64 { return num }, func() float64 { return den })
	for i := 0; i < 5; i++ {
		s.Tick()
	}
	v := s.Series()[0].Values[0]
	if !math.IsNaN(v) {
		t.Fatalf("idle-denominator ratio = %v, want NaN", v)
	}
	num, den = 3, 1000
	for i := 0; i < 5; i++ {
		s.Tick()
	}
	v = s.Series()[0].Values[1]
	if v != 3 { // 1000 × 3/1000
		t.Fatalf("scaled ratio = %v, want 3", v)
	}
}

func TestSamplerProbeRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero cadence", func() { NewSampler(0) })
	s := NewSampler(10)
	mustPanic("bad name", func() { s.Gauge("BadName", func() float64 { return 0 }) })
	s.Gauge("a.b", func() float64 { return 0 })
	mustPanic("duplicate", func() { s.Rate("a.b", func() float64 { return 0 }) })
}

func TestSamplerBaselineCapturedAtRegistration(t *testing.T) {
	// Counters that already have history when the probe registers must not
	// pollute the first window.
	s := NewSampler(4)
	v := 100.0
	s.Rate("x.y", func() float64 { return v })
	v = 104
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	if got := s.Series()[0].Values[0]; got != 1 {
		t.Fatalf("first-window rate = %v, want 1 (delta 4 over 4 refs)", got)
	}
}

// BenchmarkSamplerTick guards the hot-path cost of an enabled sampler.
func BenchmarkSamplerTick(b *testing.B) {
	s := NewSampler(1 << 62) // never fires: isolates the per-tick cost
	s.Gauge("a.b", func() float64 { return 0 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkSamplerDisabled guards the disabled path: one nil compare.
func BenchmarkSamplerDisabled(b *testing.B) {
	var s *Sampler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s != nil {
			s.Tick()
		}
	}
}
