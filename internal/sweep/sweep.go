// Package sweep is the deterministic fan-out engine behind every
// experiment driver: a sweep is a list of independent, seed-deterministic
// points (one simulation each — a fresh workload and simulator per point,
// by design, so reference streams replay identically), and Run executes
// them on a bounded worker pool while keeping the output indistinguishable
// from a sequential run.
//
// Determinism rests on three properties:
//
//  1. Points share no state. Each point constructs its own simulator and
//     workload from its own seed; the engine never passes anything between
//     points.
//  2. Results are collected in submission-index order, not completion
//     order. out[i] is always point i's result, so folds over the result
//     slice see exactly the sequence the sequential loop produced.
//  3. Errors are deterministic too: when points fail, Run returns the
//     error of the lowest-indexed failing point — the same error the
//     sequential loop would have stopped on — regardless of which worker
//     noticed a failure first.
//
// Workers=1 is the exact legacy path: points run in order on the calling
// goroutine with no pool, no channels, and no extra synchronization.
package sweep

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mosaic/internal/obs"
)

// Options configures one Run.
type Options struct {
	// Workers bounds the worker pool. 0 means runtime.GOMAXPROCS(0);
	// 1 runs every point in order on the calling goroutine (the exact
	// sequential path); values above the point count are clamped.
	Workers int
	// Progress, when non-nil, receives a monotonic "point k/n done" line
	// as points complete. Nil-safe (the no-terminal case).
	Progress *obs.Progress
	// Name labels the progress line ("fig6 graph500").
	Name string
	// Obs, when non-nil, is sealed once every point has completed: workers
	// contribute per-point snapshots with Put during the run, and sealing
	// fixes the index-ordered merge so later Merged calls are cheap and
	// late Puts are caught as programming errors.
	Obs *Merger
}

// workers resolves the pool size for n points.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes fn over every point on a bounded worker pool and returns
// the results in submission-index order: out[i] = fn(ctx, i, points[i]).
// The first point error (lowest index) cancels the sweep's context so
// in-flight points can abort early and unstarted points never run; Run
// returns that error after all started points have settled. A canceled
// parent context is returned as its ctx.Err().
func Run[P, R any](ctx context.Context, points []P, fn func(ctx context.Context, i int, p P) (R, error), opt Options) ([]R, error) {
	n := len(points)
	out := make([]R, n)
	if n == 0 {
		opt.Obs.seal()
		return out, nil
	}
	counter := opt.Progress.StartCount(opt.Name, n)

	if opt.workers(n) == 1 {
		for i, p := range points {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, p)
			if err != nil {
				return nil, err
			}
			out[i] = r
			counter.Step()
		}
		opt.Obs.seal()
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				r, err := fn(ctx, i, points[i])
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				out[i] = r
				counter.Step()
			}
		}()
	}
	wg.Wait()
	// Lowest-indexed error wins, so the reported failure matches what the
	// sequential loop would have returned no matter which worker lost the
	// race to cancel.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt.Obs.seal()
	return out, nil
}

// Merger accumulates per-point obs.Snapshots from concurrent workers and
// merges them in point-index order. Index ordering matters: counter and
// histogram merges commute, but gauge merges are last-writer-wins, so only
// an index-ordered fold reproduces what a sequential sweep's single
// registry would have held.
type Merger struct {
	mu     sync.Mutex
	snaps  []indexedSnap
	sealed bool
	merged obs.Snapshot
}

type indexedSnap struct {
	index int
	snap  obs.Snapshot
}

// NewMerger creates an empty Merger.
func NewMerger() *Merger { return &Merger{} }

// Put contributes point i's snapshot. Safe for concurrent use; nil-safe.
// It panics after the owning Run has completed — a snapshot arriving late
// would be silently dropped from the merge, which is a programming error.
func (m *Merger) Put(i int, s obs.Snapshot) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		panic("sweep: Merger.Put after the sweep completed")
	}
	m.snaps = append(m.snaps, indexedSnap{index: i, snap: s})
}

// seal fixes the index-ordered merge; nil-safe, idempotent.
func (m *Merger) seal() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		return
	}
	m.sealed = true
	m.merged = m.mergeLocked()
}

// Merged returns the index-ordered merge of every contributed snapshot.
// Before the sweep completes it merges on the fly; afterwards it returns
// the sealed result.
func (m *Merger) Merged() obs.Snapshot {
	if m == nil {
		return obs.Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		return m.merged
	}
	return m.mergeLocked()
}

// Len is the number of contributed snapshots; nil-safe.
func (m *Merger) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.snaps)
}

func (m *Merger) mergeLocked() obs.Snapshot {
	ordered := make([]indexedSnap, len(m.snaps))
	copy(ordered, m.snaps)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].index < ordered[b].index })
	out := obs.Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]obs.HistogramSnapshot{},
	}
	for _, is := range ordered {
		out = out.Merge(is.snap)
	}
	return out
}
