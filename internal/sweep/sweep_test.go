package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mosaic/internal/obs"
)

func TestRunCollectsInSubmissionOrder(t *testing.T) {
	points := make([]int, 64)
	for i := range points {
		points[i] = i
	}
	out, err := Run(context.Background(), points, func(_ context.Context, i, p int) (int, error) {
		// Early points sleep longest, so completion order inverts
		// submission order under a real pool.
		time.Sleep(time.Duration(len(points)-i) * 50 * time.Microsecond)
		return p * p, nil
	}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d: results not in submission order", i, v, i*i)
		}
	}
}

func TestRunWorkersOneIsInline(t *testing.T) {
	var order []int
	_, err := Run(context.Background(), []int{0, 1, 2, 3}, func(_ context.Context, i, _ int) (struct{}, error) {
		// No synchronization: only legal if every point runs on the
		// calling goroutine, in order (-race would catch anything else).
		order = append(order, i)
		return struct{}{}, nil
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("workers=1 ran point %d at position %d; want strict order", got, i)
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		boom3 := errors.New("boom at 3")
		boom5 := errors.New("boom at 5")
		_, err := Run(context.Background(), make([]int, 8), func(_ context.Context, i, _ int) (int, error) {
			switch i {
			case 3:
				return 0, boom3
			case 5:
				return 0, boom5
			}
			return i, nil
		}, Options{Workers: workers})
		if !errors.Is(err, boom3) {
			t.Errorf("workers=%d: got error %v, want the lowest-indexed point's (%v)", workers, err, boom3)
		}
	}
}

func TestRunFailFastCancelsContext(t *testing.T) {
	boom := errors.New("boom")
	var sawCancel atomic.Bool
	_, err := Run(context.Background(), make([]int, 4), func(ctx context.Context, i, _ int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		// Later points either never start or observe the cancellation.
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
		case <-time.After(2 * time.Second):
			t.Error("sweep context never canceled after a point error")
		}
		return i, nil
	}, Options{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

func TestRunHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int64{}
		_, err := Run(ctx, make([]int, 16), func(_ context.Context, i, _ int) (int, error) {
			ran.Add(1)
			return i, nil
		}, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n != 0 {
			t.Errorf("workers=%d: %d points ran under a pre-canceled context", workers, n)
		}
	}
}

func TestRunEmptyPoints(t *testing.T) {
	out, err := Run(context.Background(), nil, func(_ context.Context, i, _ int) (int, error) {
		return i, nil
	}, Options{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestRunProgressCountsEveryPoint(t *testing.T) {
	for _, workers := range []int{1, 8} {
		n := 0
		// Each completed point rewrites the live line exactly once; count
		// the writes through a wrapped writer.
		var mu sync.Mutex
		count := obs.NewProgressTo(writerFunc(func(b []byte) (int, error) {
			mu.Lock()
			n++
			mu.Unlock()
			return len(b), nil
		}))
		_, err := Run(context.Background(), make([]int, 24), func(_ context.Context, i, _ int) (int, error) {
			return i, nil
		}, Options{Workers: workers, Progress: count, Name: "t"})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		got := n
		mu.Unlock()
		if got != 24 {
			t.Errorf("workers=%d: progress rendered %d times, want 24", workers, got)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }

// TestMergerIndexOrder pins the determinism argument for merged snapshots:
// gauges are last-writer-wins, so the fold must follow point-index order,
// not Put order.
func TestMergerIndexOrder(t *testing.T) {
	m := NewMerger()
	// Contribute out of order, as completion order would under a pool.
	for _, i := range []int{2, 0, 1} {
		reg := obs.NewRegistry()
		reg.Counter("sweep.test_count").Add(uint64(10 + i))
		reg.Gauge("sweep.test_gauge").Set(float64(i))
		m.Put(i, reg.Snapshot())
	}
	got := m.Merged()
	if got.Counters["sweep.test_count"] != 33 {
		t.Errorf("counter merged to %d, want 33 (sum)", got.Counters["sweep.test_count"])
	}
	if got.Gauges["sweep.test_gauge"] != 2 {
		t.Errorf("gauge merged to %v, want 2 (last index wins)", got.Gauges["sweep.test_gauge"])
	}
}

func TestMergerSealedByRun(t *testing.T) {
	m := NewMerger()
	_, err := Run(context.Background(), make([]int, 4), func(_ context.Context, i, _ int) (int, error) {
		reg := obs.NewRegistry()
		reg.Gauge("sweep.test_gauge").Set(float64(i))
		m.Put(i, reg.Snapshot())
		return i, nil
	}, Options{Workers: 4, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 4 {
		t.Fatalf("merger holds %d snapshots, want 4", m.Len())
	}
	if got := m.Merged().Gauges["sweep.test_gauge"]; got != 3 {
		t.Errorf("sealed gauge = %v, want 3 (highest index)", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Put after seal should panic")
		}
	}()
	m.Put(9, obs.Snapshot{})
}

func TestMergerNilSafe(t *testing.T) {
	var m *Merger
	m.Put(0, obs.Snapshot{})
	m.seal()
	if m.Len() != 0 {
		t.Error("nil merger should be empty")
	}
	if s := m.Merged(); len(s.Counters) != 0 {
		t.Error("nil merger should merge to the zero snapshot")
	}
}

// TestRunDeterministicUnderRace re-runs one sweep at several worker counts
// and checks the collected results are identical — the engine-level half of
// the determinism pin (the experiment-level half lives in the root
// package's TestParallelMatchesSequential).
func TestRunDeterministicUnderRace(t *testing.T) {
	mk := func(workers int) []uint64 {
		out, err := Run(context.Background(), make([]int, 40), func(_ context.Context, i, _ int) (uint64, error) {
			// A deterministic per-point computation seeded by the index.
			h := uint64(i)*2654435761 + 1
			for k := 0; k < 1000; k++ {
				h ^= h << 13
				h ^= h >> 7
				h ^= h << 17
			}
			return h, nil
		}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := mk(1)
	for _, workers := range []int{2, 4, 8} {
		got := mk(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestOptionsWorkerResolution(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want string
	}{
		{Options{Workers: 4}, 2, "clamped to point count"},
		{Options{Workers: 1}, 8, "one"},
	}
	if w := cases[0].opt.workers(cases[0].n); w != 2 {
		t.Errorf("workers(2) with Workers=4 = %d, want 2 (%s)", w, cases[0].want)
	}
	if w := cases[1].opt.workers(cases[1].n); w != 1 {
		t.Errorf("workers(8) with Workers=1 = %d, want 1 (%s)", w, cases[1].want)
	}
	if w := (Options{}).workers(1 << 20); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
}
