package sweep

import (
	"errors"
	"runtime"
	"sync"
)

// Run handles the batch shape: a known point list, executed once. A
// long-running service (cmd/mosaicd) has the dual shape — an open-ended
// stream of independent jobs arriving at unpredictable times — so Pool is
// the persistent counterpart: a fixed set of workers pulling from a
// bounded queue, with explicit backpressure (TrySubmit fails fast when
// the queue is full, so an HTTP front end can answer 503 instead of
// buffering unboundedly) and a graceful drain (stop accepting, finish
// everything already admitted).
//
// Determinism is the caller's concern here, not the pool's: unlike Run,
// jobs are fire-and-forget closures with no result ordering. Sessions
// stay deterministic the same way sweep points do — each job owns a fully
// isolated simulator and registry, and nothing is shared between jobs.

// Errors TrySubmit reports instead of blocking.
var (
	// ErrPoolSaturated means the queue bound was hit: shed load upstream.
	ErrPoolSaturated = errors.New("sweep: pool queue is full")
	// ErrPoolDraining means Drain has been called: no new work is admitted.
	ErrPoolDraining = errors.New("sweep: pool is draining")
)

// Pool is a persistent bounded worker pool. Safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	jobs     chan func()
	draining bool
	wg       sync.WaitGroup
}

// NewPool starts a pool with the given number of workers (0 means
// runtime.GOMAXPROCS(0)) and queue slots beyond the workers (0 means no
// queue: a job is admitted only when a worker can take it promptly).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan func(), workers+queue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// TrySubmit admits job without ever blocking: it returns ErrPoolDraining
// after Drain has begun and ErrPoolSaturated when the queue is full. A
// nil error means a worker will run the job (even if Drain starts first).
func (p *Pool) TrySubmit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrPoolDraining
	}
	//lint:ignore lockflow the select has a default case, so the send never blocks; the mutex only fences the draining flag against a concurrent close
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrPoolSaturated
	}
}

// Drain stops admissions and waits until every admitted job has finished.
// Idempotent and safe to call from several goroutines; all callers return
// once the pool is empty.
func (p *Pool) Drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
