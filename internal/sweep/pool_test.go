package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsJobs: everything admitted runs exactly once.
func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		for {
			err := p.TrySubmit(func() { ran.Add(1) })
			if err == nil {
				break
			}
			if !errors.Is(err, ErrPoolSaturated) {
				t.Fatalf("TrySubmit: %v", err)
			}
		}
	}
	p.Drain()
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d jobs, want 20", got)
	}
}

// TestPoolBackpressure: with one worker wedged and no queue beyond the
// worker slots, TrySubmit sheds load with ErrPoolSaturated instead of
// blocking.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 0)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(func() { close(started); <-block }); err != nil {
		t.Fatalf("first TrySubmit: %v", err)
	}
	<-started // the single worker is now wedged

	// One more job fits the single channel slot the worker freed; after
	// that the pool must refuse promptly.
	saturated := false
	for i := 0; i < 3; i++ {
		if err := p.TrySubmit(func() {}); errors.Is(err, ErrPoolSaturated) {
			saturated = true
			break
		}
	}
	if !saturated {
		t.Fatal("TrySubmit never reported saturation with a wedged worker")
	}
	close(block)
	p.Drain()
}

// TestPoolDrain: Drain refuses new work but finishes admitted jobs —
// including queued ones — before returning.
func TestPoolDrain(t *testing.T) {
	p := NewPool(1, 8)
	block := make(chan struct{})
	var ran atomic.Int64
	if err := p.TrySubmit(func() { <-block; ran.Add(1) }); err != nil {
		t.Fatalf("TrySubmit running job: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := p.TrySubmit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("TrySubmit queued job %d: %v", i, err)
		}
	}

	drained := make(chan struct{})
	go func() {
		p.Drain()
		close(drained)
	}()
	// Admissions stop once the drain flag flips; jobs that won the race
	// before it flipped were legitimately admitted and must still run.
	admitted := int64(5)
	for {
		err := p.TrySubmit(func() { ran.Add(1) })
		if errors.Is(err, ErrPoolDraining) {
			break
		}
		if err == nil {
			admitted++
		}
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still wedged")
	default:
	}
	close(block)
	<-drained
	if got := ran.Load(); got != admitted {
		t.Fatalf("drain finished %d jobs, want all %d admitted", got, admitted)
	}
}

// TestPoolDrainIdempotent: concurrent Drains all return, once.
func TestPoolDrainIdempotent(t *testing.T) {
	p := NewPool(2, 2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Drain()
		}()
	}
	wg.Wait()
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolDraining) {
		t.Fatalf("TrySubmit after Drain = %v, want ErrPoolDraining", err)
	}
}
