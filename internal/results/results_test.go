package results

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/obs"
)

func TestNumberJSONNullRoundTrip(t *testing.T) {
	vals := []Number{1.5, Number(math.NaN()), Number(math.Inf(1)), Number(math.Inf(-1)), 0}
	data, err := json.Marshal(vals)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if got, want := string(data), "[1.5,null,null,null,0]"; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
	var back []Number
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back[0] != 1.5 || !math.IsNaN(float64(back[1])) || !math.IsNaN(float64(back[2])) {
		t.Fatalf("round trip = %v", back)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "fig6.json")

	f := New("fig6")
	f.Config["workload"] = "gups"
	f.SetMetric("tlb.miss", 1234)
	f.SetMetric("vm.ratio", math.NaN())
	f.Series = append(f.Series, Series{Name: "tlb.hit_rate", Refs: []uint64{100, 200}, Values: []Number{0.5, Number(math.NaN())}})
	f.Events = append(f.Events, obs.Event{Ref: 7, Component: "vm", Kind: "horizon.advance", Severity: obs.Info})

	if err := Write(path, f); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.SchemaVersion != SchemaVersion || got.Experiment != "fig6" {
		t.Fatalf("header = v%d %q", got.SchemaVersion, got.Experiment)
	}
	if v, ok := got.Metric("tlb.miss"); !ok || v != 1234 {
		t.Fatalf("tlb.miss = %v %v", v, ok)
	}
	if v, ok := got.Metric("vm.ratio"); !ok || !math.IsNaN(v) {
		t.Fatalf("NaN metric should survive as null→NaN, got %v %v", v, ok)
	}
	if len(got.Series) != 1 || !math.IsNaN(float64(got.Series[0].Values[1])) {
		t.Fatalf("series = %+v", got.Series)
	}
	if len(got.Events) != 1 || got.Events[0].Kind != "horizon.advance" {
		t.Fatalf("events = %+v", got.Events)
	}
	// The file on disk must be plain JSON with nulls, no NaN literals.
	raw, _ := os.ReadFile(path)
	if strings.Contains(string(raw), "NaN") {
		t.Fatalf("file contains NaN literal:\n%s", raw)
	}
}

func TestReadRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"schema_version": 99, "experiment": "x", "metrics": {}}`), 0o644)
	if _, err := Read(path); err == nil {
		t.Fatal("expected schema version error")
	}
	os.WriteFile(path, []byte(`{"experiment": "x", "metrics": {}}`), 0o644)
	if _, err := Read(path); err == nil {
		t.Fatal("expected missing schema version error")
	}
	os.WriteFile(path, []byte(`not json`), 0o644)
	if _, err := Read(path); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAddSnapshotAndSampler(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("tlb.miss").Add(3)
	r.Histogram("walk.latency").Observe(8)

	f := New("t")
	f.AddSnapshot("gups", r.Snapshot())
	if v, ok := f.Metric("gups.tlb.miss"); !ok || v != 3 {
		t.Fatalf("prefixed counter = %v %v", v, ok)
	}
	if _, ok := f.Metric("gups.walk.latency.p99"); !ok {
		t.Fatal("histogram expansion missing under prefix")
	}

	s := obs.NewSampler(2)
	x := 0.0
	s.Gauge("vm.utilization", func() float64 { return x })
	x = 1
	s.Tick()
	s.Tick()
	f.AddSampler("gups", s)
	if len(f.Series) != 1 || f.Series[0].Name != "gups.vm.utilization" {
		t.Fatalf("series = %+v", f.Series)
	}
	f.AddSampler("", nil) // nil sampler is a no-op
	if len(f.Series) != 1 {
		t.Fatal("nil sampler added series")
	}
}

func TestAddEventsScoping(t *testing.T) {
	l := obs.NewEventLog(nil)
	l.Emit(obs.Event{Ref: 1, Component: "vm", Kind: "a.b", Severity: obs.Info})
	l.Emit(obs.Event{Ref: 2, Component: "vm", Kind: "a.b", Severity: obs.Info, Scope: "keep"})
	f := New("t")
	f.AddEvents("gups", l)
	if f.Events[0].Scope != "gups" || f.Events[1].Scope != "keep" {
		t.Fatalf("scopes = %q %q", f.Events[0].Scope, f.Events[1].Scope)
	}
	f.AddEvents("x", nil) // nil log is a no-op
	if len(f.Events) != 2 {
		t.Fatal("nil event log added events")
	}
}

func TestDiffAndFormat(t *testing.T) {
	a := New("fig6")
	a.SetMetric("tlb.miss", 100)
	a.SetMetric("only.a", 1)
	a.SetMetric("zero.base", 0)
	b := New("fig6")
	b.SetMetric("tlb.miss", 80)
	b.SetMetric("only.b", 2)
	b.SetMetric("zero.base", 5)

	rows := Diff(a, b)
	byName := map[string]DiffRow{}
	for _, r := range rows {
		byName[r.Metric] = r
	}
	if r := byName["tlb.miss"]; math.Abs(r.DeltaPct-(-20)) > 1e-12 {
		t.Fatalf("tlb.miss delta = %v, want -20", r.DeltaPct)
	}
	if r := byName["only.a"]; r.InB || !math.IsNaN(r.DeltaPct) {
		t.Fatalf("one-sided row = %+v", r)
	}
	if r := byName["zero.base"]; !math.IsNaN(r.DeltaPct) {
		t.Fatalf("zero-base delta = %v, want NaN", r.DeltaPct)
	}

	out := FormatDiff("a.json", "b.json", rows)
	if !strings.Contains(out, "tlb.miss") || !strings.Contains(out, "-20") {
		t.Errorf("diff table missing delta:\n%s", out)
	}
	if !strings.Contains(out, "null") {
		t.Errorf("diff table should render NaN deltas as null:\n%s", out)
	}

	a.Series = append(a.Series, Series{Name: "s.x", Refs: []uint64{10}, Values: []Number{1}})
	show := a.Format()
	if !strings.Contains(show, "experiment: fig6") || !strings.Contains(show, "tlb.miss") || !strings.Contains(show, "s.x") {
		t.Errorf("format output incomplete:\n%s", show)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"GUPS":              "gups",
		"graph500 (s=20)":   "graph500_s_20",
		"x86-64":            "x86_64",
		"429.mcf":           "w429_mcf",
		"  weird__name  ":   "weird_name",
		"":                  "unnamed",
		"fully-associative": "fully_associative",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: mosaic
BenchmarkSamplerTick-8     	86745652	        13.84 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccess/mosaic-8   	 1000000	      1042 ns/op
PASS
ok  	mosaic	2.345s
`
	rs, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(rs), rs)
	}
	if rs[0].Name != "BenchmarkSamplerTick-8" || rs[0].NsPerOp != 13.84 || rs[0].AllocsPerOp != 0 || rs[0].N != 86745652 {
		t.Fatalf("first = %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkAccess/mosaic-8" || rs[1].NsPerOp != 1042 {
		t.Fatalf("second = %+v", rs[1])
	}
}
