package results

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"mosaic/internal/obs"
)

// Driver bundles the observability plumbing shared by every experiment
// command: machine-readable result output (-json/-o), CPU profiling
// (-cpuprofile), and a live progress line on stderr. Typical use:
//
//	d := results.NewDriver("fig6", nil)
//	flag.Parse()
//	defer d.Close()
//	d.Start()
//	...
//	d.Stepf("graph500: ways 3/5")
//	...
//	d.Finish(file)
type Driver struct {
	experiment string

	// JSON requests a results/<experiment>.json twin of the text output.
	JSON bool
	// Out overrides the JSON path (implies JSON).
	Out string
	// CPUProfile, when set, writes a pprof CPU profile for the whole run.
	CPUProfile string
	// Workers bounds the experiment's sweep worker pool: 0 (the default)
	// resolves to runtime.GOMAXPROCS(0), 1 is the exact sequential path.
	// Results are bit-identical at any setting.
	Workers int

	progress *obs.Progress
	stopProf func()
}

// NewDriver registers the shared flags on fs (flag.CommandLine when nil)
// and returns the driver. Call Start after flag parsing.
func NewDriver(experiment string, fs *flag.FlagSet) *Driver {
	if fs == nil {
		fs = flag.CommandLine
	}
	d := &Driver{experiment: experiment}
	fs.BoolVar(&d.JSON, "json", false,
		fmt.Sprintf("also write a schema-versioned results/%s.json", experiment))
	fs.StringVar(&d.Out, "o", "", "path for the JSON result (implies -json)")
	fs.StringVar(&d.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.IntVar(&d.Workers, "workers", 0,
		"sweep worker pool size (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	return d
}

// EffectiveWorkers resolves the -workers flag the way the sweep engine
// will: 0 becomes runtime.GOMAXPROCS(0).
func (d *Driver) EffectiveWorkers() int {
	if d.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return d.Workers
}

// WantJSON reports whether a JSON result was requested, so drivers can
// enable sampling only when its output has somewhere to go.
func (d *Driver) WantJSON() bool { return d.JSON || d.Out != "" }

// Path is where Finish will write the JSON result.
func (d *Driver) Path() string {
	if d.Out != "" {
		return d.Out
	}
	return filepath.Join("results", d.experiment+".json")
}

// Start begins CPU profiling (if requested) and enables the progress
// line. Call it once, after flags are parsed.
func (d *Driver) Start() error {
	d.progress = obs.NewProgress(true)
	if d.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(d.CPUProfile)
		if err != nil {
			return err
		}
		d.stopProf = stop
	}
	return nil
}

// Progress exposes the live progress line (nil when stderr is not a
// terminal; all its methods are nil-safe).
func (d *Driver) Progress() *obs.Progress { return d.progress }

// Stepf updates the progress line.
func (d *Driver) Stepf(format string, args ...any) { d.progress.Stepf(format, args...) }

// Finish clears the progress line, stops profiling, and writes the JSON
// result when one was requested (f may be nil when the driver produced
// nothing to record).
func (d *Driver) Finish(f *File) error {
	d.progress.Done()
	d.Close()
	if f == nil || !d.WantJSON() {
		return nil
	}
	// Record the resolved pool size so a result file says how it was made
	// (the numbers themselves are identical at any worker count).
	if f.Config == nil {
		f.Config = make(map[string]any)
	}
	f.Config["workers"] = d.EffectiveWorkers()
	path := d.Path()
	if err := Write(path, f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// Close stops the CPU profile if it is still running. Safe to call more
// than once; deferred by drivers so a mid-run error still flushes the
// profile.
func (d *Driver) Close() {
	if d.stopProf != nil {
		d.stopProf()
		d.stopProf = nil
	}
}
