package results

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the b.ReportMetric custom columns (Mrefs/s, MB/s,
	// reduction-%, …) keyed by unit, so throughput comparisons like
	// batch-vs-scalar replay survive into BENCH_*.json.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Metric returns a custom metric by unit name.
func (b BenchResult) Metric(unit string) (float64, bool) {
	v, ok := b.Metrics[unit]
	return v, ok
}

// ParseGoBench extracts benchmark results from `go test -bench` output.
// Lines that are not benchmark results (package headers, PASS, ok) are
// skipped. It tolerates the optional -benchmem columns and records any
// custom b.ReportMetric columns under Metrics.
func ParseGoBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		br := BenchResult{Name: fields[0], N: n}
		// Remaining fields come in (value, unit) pairs.
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				br.NsPerOp = v
				ok = true
			case "B/op":
				br.BytesPerOp = v
			case "allocs/op":
				br.AllocsPerOp = v
			default:
				if br.Metrics == nil {
					br.Metrics = make(map[string]float64)
				}
				br.Metrics[unit] = v
			}
		}
		if ok {
			out = append(out, br)
		}
	}
	return out, sc.Err()
}

// BenchFile is the BENCH_obs.json layout: schema-versioned like the
// experiment results so trend tooling can validate what it reads.
type BenchFile struct {
	SchemaVersion int           `json:"schema_version"`
	Benchmarks    []BenchResult `json:"benchmarks"`
}
