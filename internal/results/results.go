// Package results defines the machine-readable experiment output format:
// a schema-versioned JSON document holding the run's configuration, its
// final metrics, any sampled time series, and the structured event log.
// Every experiment driver writes one of these next to its text table, and
// cmd/mosaicstat pretty-prints or diffs them — so a perf PR proves its win
// by diffing two results files instead of eyeballing stdout.
package results

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mosaic/internal/obs"
	"mosaic/internal/stats"
)

// SchemaVersion identifies the results-file layout. Readers reject files
// with a newer major version than they understand; bump it whenever a field
// changes meaning (adding fields is backward compatible and does not).
const SchemaVersion = 1

// Number is a float64 that encodes non-finite values (NaN, ±Inf) as JSON
// null instead of failing the encoder, and decodes null back to NaN.
// Sampler windows with no observations and percent-changes from a zero base
// flow through results files as null cells.
type Number float64

// MarshalJSON encodes non-finite values as null.
func (n Number) MarshalJSON() ([]byte, error) {
	f := float64(n)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON decodes null as NaN.
func (n *Number) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*n = Number(math.NaN())
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	*n = Number(f)
	return nil
}

// Series is one sampled time series: Refs[i] is the reference index at the
// end of window i, Values[i] that window's value (null = no observation).
type Series struct {
	Name   string   `json:"name"`
	Refs   []uint64 `json:"refs"`
	Values []Number `json:"values"`
}

// File is one experiment's machine-readable output.
type File struct {
	SchemaVersion int               `json:"schema_version"`
	Experiment    string            `json:"experiment"`
	Config        map[string]any    `json:"config,omitempty"`
	Metrics       map[string]Number `json:"metrics"`
	Series        []Series          `json:"series,omitempty"`
	Events        []obs.Event       `json:"events,omitempty"`
}

// New creates an empty results file for the named experiment.
func New(experiment string) *File {
	return &File{
		SchemaVersion: SchemaVersion,
		Experiment:    experiment,
		Config:        make(map[string]any),
		Metrics:       make(map[string]Number),
	}
}

// SetMetric records one final metric value.
func (f *File) SetMetric(name string, v float64) {
	f.Metrics[name] = Number(v)
}

// Metric returns a metric's value and whether it is present.
func (f *File) Metric(name string) (float64, bool) {
	v, ok := f.Metrics[name]
	return float64(v), ok
}

// AddSnapshot flattens a metrics snapshot into the file under an optional
// "prefix." namespace (histograms expand to .count/.mean/.p50/.p99/.max).
// Instruments in the reserved "wall." namespace are excluded: wall-clock
// telemetry varies run to run by construction, and a results file must be
// byte-identical across runs of one seed.
func (f *File) AddSnapshot(prefix string, snap obs.Snapshot) {
	for _, nv := range snap.Flatten() {
		name := nv.Name
		if strings.HasPrefix(name, "wall.") {
			continue
		}
		if prefix != "" {
			name = prefix + "." + name
		}
		f.Metrics[name] = Number(nv.Value)
	}
}

// AddSampler appends every series the sampler recorded, each name placed
// under an optional "prefix." namespace. Nil samplers add nothing.
func (f *File) AddSampler(prefix string, s *obs.Sampler) {
	if s == nil {
		return
	}
	for _, sr := range s.Series() {
		name := sr.Name
		if prefix != "" {
			name = prefix + "." + name
		}
		vals := make([]Number, len(sr.Values))
		for i, v := range sr.Values {
			vals[i] = Number(v)
		}
		f.Series = append(f.Series, Series{Name: name, Refs: sr.Refs, Values: vals})
	}
}

// AddEvents appends retained events from the log, stamping each with the
// given scope (empty leaves scopes untouched). Nil logs add nothing.
func (f *File) AddEvents(scope string, l *obs.EventLog) {
	for _, e := range l.Events() {
		if scope != "" && e.Scope == "" {
			e.Scope = scope
		}
		f.Events = append(f.Events, e)
	}
}

// Write marshals the file as indented JSON to path, creating parent
// directories as needed.
func Write(path string, f *File) error {
	if f.SchemaVersion == 0 {
		f.SchemaVersion = SchemaVersion
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal %s: %w", path, err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("results: %w", err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// Read parses and validates a results file.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	f, err := Decode(data, path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Decode parses and validates results-file bytes from any source (a file,
// an HTTP response); src names the source in errors.
func Decode(data []byte, src string) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("results: parse %s: %w", src, err)
	}
	if f.SchemaVersion < 1 || f.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("results: %s has schema version %d, this tool understands 1..%d",
			src, f.SchemaVersion, SchemaVersion)
	}
	if f.Metrics == nil {
		f.Metrics = make(map[string]Number)
	}
	return &f, nil
}

// DiffRow is one metric's before/after comparison. DeltaPct is the percent
// change from A to B — positive means B is larger — and is NaN when A is
// zero or the metric is missing on either side.
type DiffRow struct {
	Metric   string
	A, B     float64
	InA, InB bool
	DeltaPct float64
}

// Diff compares the metrics of two results files, returning one row per
// metric in the union of their names, sorted.
func Diff(a, b *File) []DiffRow {
	names := make(map[string]struct{}, len(a.Metrics)+len(b.Metrics))
	for n := range a.Metrics {
		names[n] = struct{}{}
	}
	for n := range b.Metrics {
		names[n] = struct{}{}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	rows := make([]DiffRow, 0, len(sorted))
	for _, n := range sorted {
		av, aok := a.Metrics[n]
		bv, bok := b.Metrics[n]
		row := DiffRow{Metric: n, A: float64(av), B: float64(bv), InA: aok, InB: bok}
		if aok && bok {
			// PercentChange reports reduction as positive; a diff reads more
			// naturally as growth-positive, so flip the sign. Adding +0
			// normalizes the -0 the flip produces for unchanged metrics.
			row.DeltaPct = -stats.PercentChange(row.A, row.B) + 0
		} else {
			row.DeltaPct = math.NaN()
		}
		rows = append(rows, row)
	}
	return rows
}

// cell renders a float for the text tables: null for non-finite.
func cell(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// Format pretty-prints one results file: metadata, metrics table, and a
// summary line per series.
func (f *File) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment: %s (schema v%d)\n", f.Experiment, f.SchemaVersion)
	if len(f.Config) > 0 {
		keys := make([]string, 0, len(f.Config))
		for k := range f.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%v", k, f.Config[k])
		}
		fmt.Fprintf(&b, "config: %s\n", strings.Join(parts, " "))
	}
	b.WriteByte('\n')

	tb := stats.NewTable("", "metric", "value")
	names := make([]string, 0, len(f.Metrics))
	for n := range f.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tb.AddRow(n, cell(float64(f.Metrics[n])))
	}
	b.WriteString(tb.String())

	if len(f.Series) > 0 {
		b.WriteByte('\n')
		st := stats.NewTable("sampled series", "name", "points", "first_ref", "last_ref")
		for _, s := range f.Series {
			first, last := uint64(0), uint64(0)
			if len(s.Refs) > 0 {
				first, last = s.Refs[0], s.Refs[len(s.Refs)-1]
			}
			st.AddRow(s.Name, len(s.Values), first, last)
		}
		b.WriteString(st.String())
	}
	if len(f.Events) > 0 {
		fmt.Fprintf(&b, "\nevents: %d recorded (JSONL in the file's events array)\n", len(f.Events))
	}
	return b.String()
}

// FormatDiff renders diff rows as an aligned table. Metrics absent on one
// side show "-" there and a null delta.
func FormatDiff(aName, bName string, rows []DiffRow) string {
	tb := stats.NewTable(
		fmt.Sprintf("diff: A=%s  B=%s  (delta%% = (B-A)/A x 100)", aName, bName),
		"metric", "a", "b", "delta%")
	for _, r := range rows {
		aCell, bCell := "-", "-"
		if r.InA {
			aCell = cell(r.A)
		}
		if r.InB {
			bCell = cell(r.B)
		}
		tb.AddRow(r.Metric, aCell, bCell, cell(r.DeltaPct))
	}
	return tb.String()
}

// Sanitize maps an arbitrary label (workload name, design name) to a
// metric-name segment: lowercase, with every run of non-alphanumerics
// collapsed to one underscore and a leading "w" prefixed when the result
// would start with a digit.
func Sanitize(label string) string {
	var b strings.Builder
	prevUnder := true // also trims leading separators
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			prevUnder = false
		default:
			if !prevUnder {
				b.WriteByte('_')
				prevUnder = true
			}
		}
	}
	s := strings.TrimSuffix(b.String(), "_")
	if s == "" {
		return "unnamed"
	}
	if s[0] >= '0' && s[0] <= '9' {
		s = "w" + s
	}
	return s
}
