package buddy

import (
	"math/rand"
	"testing"

	"mosaic/internal/core"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	a := New(1 << 12)
	if a.NumFrames() != 1<<12 || a.FreeFrames() != 1<<12 {
		t.Fatalf("fresh allocator: %d/%d", a.FreeFrames(), a.NumFrames())
	}
	base, ok := a.Alloc(0)
	if !ok {
		t.Fatal("single-frame alloc failed")
	}
	if a.FreeFrames() != 1<<12-1 {
		t.Fatalf("FreeFrames = %d", a.FreeFrames())
	}
	a.Free(base)
	if a.FreeFrames() != 1<<12 {
		t.Fatalf("FreeFrames after free = %d", a.FreeFrames())
	}
	// Full coalescing: the max-order block is whole again.
	if a.LargestFreeOrder() != MaxOrder {
		t.Fatalf("LargestFreeOrder = %d after coalescing", a.LargestFreeOrder())
	}
}

func TestAllocAlignment(t *testing.T) {
	a := New(1 << 12)
	for order := 0; order <= MaxOrder; order++ {
		base, ok := a.Alloc(order)
		if !ok {
			t.Fatalf("order %d alloc failed", order)
		}
		if uint64(base)%(1<<uint(order)) != 0 {
			t.Fatalf("order-%d block at unaligned base %d", order, base)
		}
		a.Free(base)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	a := New(1 << MaxOrder) // exactly one max block
	// Two huge allocations can't fit.
	b1, ok := a.Alloc(MaxOrder)
	if !ok {
		t.Fatal("first huge alloc failed")
	}
	if _, ok := a.Alloc(0); ok {
		t.Fatal("alloc from exhausted memory succeeded")
	}
	a.Free(b1)
	// Split into singles, free all, and the huge block must re-form.
	var singles []core.PFN
	for {
		b, ok := a.Alloc(0)
		if !ok {
			break
		}
		singles = append(singles, b)
	}
	if len(singles) != 1<<MaxOrder {
		t.Fatalf("split yielded %d singles", len(singles))
	}
	for _, b := range singles {
		a.Free(b)
	}
	if _, ok := a.Alloc(MaxOrder); !ok {
		t.Fatal("huge block did not coalesce back")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(1 << 10)
	b, _ := a.Alloc(3)
	a.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	a.Free(b)
}

func TestFragmentationBlocksHugePages(t *testing.T) {
	// The paper's motivation: allocate all of memory in 4 KiB pages, free
	// every other one — 50% of memory is free yet no huge page can be
	// allocated.
	a := New(1 << 12)
	var pages []core.PFN
	for {
		b, ok := a.Alloc(0)
		if !ok {
			break
		}
		pages = append(pages, b)
	}
	for i, b := range pages {
		if i%2 == 0 {
			a.Free(b)
		}
	}
	if a.FreeFrames() != 1<<11 {
		t.Fatalf("FreeFrames = %d, want half", a.FreeFrames())
	}
	if _, ok := a.Alloc(MaxOrder); ok {
		t.Fatal("huge page allocated from checkerboard memory")
	}
	if a.LargestFreeOrder() != 0 {
		t.Fatalf("LargestFreeOrder = %d on a checkerboard", a.LargestFreeOrder())
	}
	if ui := a.UnusableIndex(MaxOrder); ui != 1 {
		t.Fatalf("UnusableIndex(huge) = %f on a checkerboard", ui)
	}
	if ui := a.UnusableIndex(0); ui != 0 {
		t.Fatalf("UnusableIndex(0) = %f; order-0 allocations always usable", ui)
	}
}

func TestCompactionCostCheckerboard(t *testing.T) {
	a := New(1 << 12)
	var pages []core.PFN
	for {
		b, ok := a.Alloc(0)
		if !ok {
			break
		}
		pages = append(pages, b)
	}
	for i, b := range pages {
		if i%2 == 0 {
			a.Free(b)
		}
	}
	// Minting one huge block from a checkerboard means moving half its
	// frames: 256 copies.
	copies, feasible := a.CompactionCost(MaxOrder, 1)
	if !feasible {
		t.Fatal("compaction infeasible with 50% free")
	}
	if copies != 256 {
		t.Fatalf("copies = %d, want 256 (half a huge block)", copies)
	}
	// Fresh memory costs nothing.
	fresh := New(1 << 12)
	copies, feasible = fresh.CompactionCost(MaxOrder, 4)
	if !feasible || copies != 0 {
		t.Fatalf("fresh compaction = %d,%v", copies, feasible)
	}
}

func TestCompactionInfeasibleWhenFull(t *testing.T) {
	a := New(1 << MaxOrder)
	for {
		if _, ok := a.Alloc(0); !ok {
			break
		}
	}
	if _, feasible := a.CompactionCost(MaxOrder, 1); feasible {
		t.Fatal("compaction of full memory reported feasible")
	}
}

func TestFreeBlocksProfile(t *testing.T) {
	a := New(1 << 12) // 8 max blocks
	profile := a.FreeBlocks()
	if profile[MaxOrder] != 8 {
		t.Fatalf("fresh profile = %v", profile)
	}
	a.Alloc(0) // splits one max block all the way down
	profile = a.FreeBlocks()
	if profile[MaxOrder] != 7 {
		t.Fatalf("profile after split = %v", profile)
	}
	// One free block at each order 0..MaxOrder-1 from the split chain.
	for o := 0; o < MaxOrder; o++ {
		if profile[o] != 1 {
			t.Fatalf("order %d has %d free blocks, want 1", o, profile[o])
		}
	}
}

func TestRandomizedConservation(t *testing.T) {
	a := New(1 << 13)
	rng := rand.New(rand.NewSource(1))
	allocated := map[core.PFN]int{}
	frames := 0
	for i := 0; i < 20000; i++ {
		if len(allocated) > 0 && rng.Intn(2) == 0 {
			// Free a random block.
			for b, o := range allocated {
				a.Free(b)
				frames -= 1 << o
				delete(allocated, b)
				break
			}
			continue
		}
		order := rng.Intn(4)
		if b, ok := a.Alloc(order); ok {
			if _, dup := allocated[b]; dup {
				t.Fatalf("base %d allocated twice", b)
			}
			allocated[b] = order
			frames += 1 << order
		}
	}
	if a.FreeFrames() != a.NumFrames()-frames {
		t.Fatalf("free frames %d, model %d", a.FreeFrames(), a.NumFrames()-frames)
	}
	// Blocks must not overlap.
	covered := map[core.PFN]bool{}
	for b, o := range allocated {
		for i := core.PFN(0); i < core.PFN(1<<o); i++ {
			if covered[b+i] {
				t.Fatalf("frame %d covered twice", b+i)
			}
			covered[b+i] = true
		}
	}
	// Drain everything: memory must coalesce fully.
	for b := range allocated {
		a.Free(b)
	}
	if a.LargestFreeOrder() != MaxOrder || a.FreeFrames() != a.NumFrames() {
		t.Fatal("memory did not fully coalesce after draining")
	}
}

func TestOrderFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 512: 9, 511: 9, 257: 9}
	for n, want := range cases {
		if got := OrderFor(n); got != want {
			t.Errorf("OrderFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanic("tiny memory", func() { New(100) })
	a := New(1 << 10)
	assertPanic("bad order", func() { a.Alloc(MaxOrder + 1) })
	assertPanic("negative order", func() { a.Alloc(-1) })
	assertPanic("free of never-allocated", func() { a.Free(5) })
	assertPanic("OrderFor(0)", func() { OrderFor(0) })
}
