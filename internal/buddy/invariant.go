package buddy

import (
	"mosaic/internal/invariant"
)

// CheckInvariants performs a deep consistency check of the buddy allocator,
// recording any violation on r:
//
//   - every free block and every allocated block is aligned to its order
//     and lies inside the managed range;
//   - free and allocated blocks tile memory with no overlap and no gap
//     (every frame belongs to exactly one block);
//   - no two buddies are both free at the same order — coalescing in Free
//     is eager, so such a pair means a missed merge;
//   - freeFrames equals the summed size of the free lists.
//
// It runs in O(frames); call it from tests, not per operation.
func (a *Allocator) CheckInvariants(r *invariant.Report) {
	// coverage[frame] counts how many blocks (free or allocated) claim it.
	coverage := make([]int, a.frames)
	claim := func(base uint64, order int, kind string) {
		size := uint64(1) << uint(order)
		if !r.Checkf(base%size == 0, "buddy.alignment",
			"%s block base %d not aligned to order %d", kind, base, order) {
			return
		}
		if !r.Checkf(base+size <= uint64(a.frames), "buddy.range",
			"%s block [%d,%d) exceeds %d frames", kind, base, base+size, a.frames) {
			return
		}
		for p := base; p < base+size; p++ {
			coverage[p]++
		}
	}

	freeTot := 0
	for order, blocks := range a.freeLists {
		freeTot += len(blocks) << uint(order)
		for base := range blocks {
			claim(base, order, "free")
			if order < MaxOrder {
				buddy := base ^ 1<<uint(order)
				r.Checkf(!blocks[buddy] || buddy < base, "buddy.uncoalesced",
					"blocks %d and %d are buddies, both free at order %d", base, buddy, order)
			}
		}
	}
	r.Checkf(freeTot == a.freeFrames, "buddy.free-count",
		"freeFrames %d, free lists hold %d", a.freeFrames, freeTot)

	for base, order := range a.blockOrder {
		r.Checkf(order >= 0 && order <= MaxOrder, "buddy.order-range",
			"allocated block %d has order %d", base, order)
		claim(base, order, "allocated")
	}

	for p, n := range coverage {
		if n != 1 {
			r.Violatef("buddy.tiling", "frame %d belongs to %d blocks, want exactly 1", p, n)
		}
	}
}
