// Package buddy implements a binary buddy allocator over physical frames —
// the contiguity-producing allocator that huge pages depend on, built here
// so the repository can execute the paper's motivating comparison:
// contiguity-based TLB reach (huge pages, CoLT) collapses under
// fragmentation and must pay for defragmentation, while mosaic pages never
// need contiguity at all (§1, §5.1).
//
// The allocator mirrors the Linux buddy system: free frames are grouped
// into power-of-two blocks up to MaxOrder; allocation splits larger blocks,
// freeing coalesces buddies. A compaction model estimates the page copies
// needed to mint contiguous blocks out of a fragmented memory — the
// defragmentation cost the paper's introduction weighs against huge-page
// gains.
package buddy

import (
	"fmt"
	"math/bits"

	"mosaic/internal/core"
)

// MaxOrder is the largest block: 2^9 frames = 2 MiB, a huge page.
const MaxOrder = 9

// Allocator is a binary buddy allocator. It is not safe for concurrent use.
//
// Internally blocks are tracked as plain uint64 frame indexes — the
// split/coalesce address math stays on untyped integers, and core.PFN
// appears only at the API boundary (the cpfnbounds discipline: frame-number
// arithmetic lives in internal/core and internal/alloc).
type Allocator struct {
	frames int
	// freeLists[o] holds the base frame indexes of free blocks of order o.
	freeLists [MaxOrder + 1]map[uint64]bool
	// blockOrder records the order of every allocated block, keyed by base.
	blockOrder map[uint64]int
	freeFrames int
}

// New creates an allocator over frames physical frames (rounded down to a
// whole number of max-order blocks).
func New(frames int) *Allocator {
	blockFrames := 1 << MaxOrder
	frames = frames / blockFrames * blockFrames
	if frames == 0 {
		panic(fmt.Sprintf("buddy: need at least %d frames", blockFrames))
	}
	a := &Allocator{frames: frames, blockOrder: make(map[uint64]int)}
	for o := range a.freeLists {
		a.freeLists[o] = make(map[uint64]bool)
	}
	for base := uint64(0); base < uint64(frames); base += uint64(blockFrames) {
		a.freeLists[MaxOrder][base] = true
	}
	a.freeFrames = frames
	return a
}

// NumFrames is the managed frame count.
func (a *Allocator) NumFrames() int { return a.frames }

// FreeFrames is the number of unallocated frames.
func (a *Allocator) FreeFrames() int { return a.freeFrames }

// Alloc allocates a block of 2^order contiguous frames, returning its base
// PFN. It fails (ok = false) when no block of that order can be made by
// splitting — the huge-page allocation failure fragmentation causes, even
// with plenty of free memory. Alloc panics if order is outside
// [0, MaxOrder].
func (a *Allocator) Alloc(order int) (core.PFN, bool) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("buddy: order %d out of range [0,%d]", order, MaxOrder))
	}
	// Find the smallest free block that fits.
	o := order
	for o <= MaxOrder && len(a.freeLists[o]) == 0 {
		o++
	}
	if o > MaxOrder {
		return 0, false
	}
	var base uint64
	for b := range a.freeLists[o] {
		base = b
		break
	}
	delete(a.freeLists[o], base)
	// Split down to the requested order, returning the upper halves.
	for o > order {
		o--
		buddy := base + 1<<o
		a.freeLists[o][buddy] = true
	}
	a.blockOrder[base] = order
	a.freeFrames -= 1 << order
	return core.PFN(base), true
}

// Free releases the block at base (which must have been returned by Alloc;
// Free panics otherwise), coalescing with free buddies as far as possible.
func (a *Allocator) Free(pfn core.PFN) {
	base := uint64(pfn)
	order, ok := a.blockOrder[base]
	if !ok {
		panic(fmt.Sprintf("buddy: Free of unallocated base %d", base))
	}
	delete(a.blockOrder, base)
	a.freeFrames += 1 << order
	for order < MaxOrder {
		buddy := base ^ 1<<order
		if !a.freeLists[order][buddy] {
			break
		}
		delete(a.freeLists[order], buddy)
		if buddy < base {
			base = buddy
		}
		order++
	}
	a.freeLists[order][base] = true
}

// FreeBlocks reports the number of free blocks of each order — the buddy
// system's fragmentation profile.
func (a *Allocator) FreeBlocks() [MaxOrder + 1]int {
	var out [MaxOrder + 1]int
	for o := range a.freeLists {
		out[o] = len(a.freeLists[o])
	}
	return out
}

// LargestFreeOrder is the biggest order with a free block (-1 if memory is
// exhausted).
func (a *Allocator) LargestFreeOrder() int {
	for o := MaxOrder; o >= 0; o-- {
		if len(a.freeLists[o]) > 0 {
			return o
		}
	}
	return -1
}

// UnusableIndex is Linux's fragmentation metric for a given order: the
// fraction of free memory that sits in blocks too small to satisfy an
// allocation of that order (0 = perfectly defragmented, 1 = completely
// unusable for this order).
func (a *Allocator) UnusableIndex(order int) float64 {
	if a.freeFrames == 0 {
		return 1
	}
	usable := 0
	for o := order; o <= MaxOrder; o++ {
		usable += len(a.freeLists[o]) << o
	}
	return 1 - float64(usable)/float64(a.freeFrames)
}

// CompactionCost estimates how many page copies a compactor must perform to
// mint `want` free blocks of the given order out of the current state —
// the defragmentation bill the paper's introduction weighs against
// huge-page benefit. The model mirrors Linux's compaction: for each needed
// block, pick the 2^order-aligned region with the fewest allocated frames
// and migrate them elsewhere (possible only if enough free frames exist
// outside the chosen regions). CompactionCost panics if order is out of
// range.
func (a *Allocator) CompactionCost(order, want int) (copies int, feasible bool) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("buddy: order %d out of range", order))
	}
	blockFrames := 1 << order
	have := 0
	for o := order; o <= MaxOrder; o++ {
		have += len(a.freeLists[o]) << (o - order)
	}
	if have >= want {
		return 0, true
	}
	need := want - have

	// Occupancy per aligned candidate region (regions that are already
	// wholly free were counted above; regions partially free are the
	// compaction targets).
	var regions []region
	for base := uint64(0); base < uint64(a.frames); base += uint64(blockFrames) {
		alloc := a.allocatedIn(base, blockFrames)
		if alloc > 0 && alloc < blockFrames {
			regions = append(regions, region{base, alloc})
		}
	}
	// Cheapest regions first.
	sortRegions(regions)
	totalFree := a.freeFrames
	for _, r := range regions {
		if need == 0 {
			break
		}
		// Migrating r.allocated pages needs that many free frames outside
		// this region; the region's own free frames stop being available.
		if totalFree-(blockFrames-r.allocated) < r.allocated {
			return copies, false
		}
		copies += r.allocated
		totalFree -= blockFrames - r.allocated // region's free frames now inside the minted block
		need--
	}
	return copies, need == 0
}

// allocatedIn counts allocated frames within [base, base+n).
func (a *Allocator) allocatedIn(base uint64, n int) int {
	free := 0
	// Count free frames by scanning free blocks that overlap the region.
	// Free blocks are aligned, so any free block of order ≤ region order
	// lies wholly inside or wholly outside.
	for o := 0; o <= MaxOrder; o++ {
		size := 1 << o
		for b := range a.freeLists[o] {
			if b >= base && int(b) < int(base)+n {
				free += size
			} else if int(b) <= int(base) && int(b)+size > int(base) {
				// Larger free block containing the region.
				free += n
			}
		}
	}
	if free > n {
		free = n
	}
	return n - free
}

func sortRegions(rs []region) {
	// Insertion sort by allocated count; candidate lists are short.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].allocated < rs[j-1].allocated; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// region is a compaction candidate: an aligned block-sized area and the
// number of allocated frames that would have to migrate out of it.
type region struct {
	base      uint64
	allocated int
}

// OrderFor returns the smallest order whose block covers n frames. It
// panics if n is not positive.
func OrderFor(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("buddy: OrderFor(%d)", n))
	}
	if n == 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
