package buddy

import (
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/invariant"
)

func hasRule(r *invariant.Report, rule string) bool {
	for _, v := range r.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// churnedAllocator allocates and frees a deterministic mix of orders so the
// free lists hold blocks at several sizes.
func churnedAllocator(t *testing.T) *Allocator {
	t.Helper()
	a := New(4 << MaxOrder)
	var blocks []struct {
		pfn   uint64
		order int
	}
	for i := 0; i < 40; i++ {
		order := []int{0, 0, 1, 3, 0, 2, 5, 0}[i%8]
		pfn, ok := a.Alloc(order)
		if !ok {
			break
		}
		blocks = append(blocks, struct {
			pfn   uint64
			order int
		}{uint64(pfn), order})
	}
	for i := 0; i < len(blocks); i += 2 {
		a.Free(core.PFN(blocks[i].pfn))
	}
	return a
}

func TestCheckInvariantsClean(t *testing.T) {
	a := churnedAllocator(t)
	var r invariant.Report
	a.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("clean allocator reported violations: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(a *Allocator)
		rule    string
	}{
		{"free-count", func(a *Allocator) {
			a.freeFrames++
		}, "buddy.free-count"},
		{"misaligned-free-block", func(a *Allocator) {
			a.freeLists[3][1] = true // order-3 block must be 8-aligned
		}, "buddy.alignment"},
		{"out-of-range-block", func(a *Allocator) {
			a.freeLists[0][uint64(a.frames)] = true
		}, "buddy.range"},
		{"double-booked-frame", func(a *Allocator) {
			// Claim an allocated block's base as an order-0 free block:
			// the frame is now covered twice and the counts drift.
			for base := range a.blockOrder {
				a.freeLists[0][base] = true
				return
			}
			panic("no allocated block to double-book")
		}, "buddy.tiling"},
		{"missed-coalesce", func(a *Allocator) {
			// Split a max-order free block into its two halves by hand.
			for base := range a.freeLists[MaxOrder] {
				delete(a.freeLists[MaxOrder], base)
				a.freeLists[MaxOrder-1][base] = true
				a.freeLists[MaxOrder-1][base+1<<(MaxOrder-1)] = true
				return
			}
			panic("no max-order free block to split")
		}, "buddy.uncoalesced"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := churnedAllocator(t)
			tc.corrupt(a)
			var r invariant.Report
			a.CheckInvariants(&r)
			if r.OK() {
				t.Fatalf("corruption %q went undetected", tc.name)
			}
			if !hasRule(&r, tc.rule) {
				t.Fatalf("corruption %q reported %v, want rule %s", tc.name, r.Violations(), tc.rule)
			}
		})
	}
}
