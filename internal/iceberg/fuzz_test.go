package iceberg

import (
	"errors"
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/invariant"
)

// FuzzIcebergPutGetDelete drives a small table through an arbitrary
// put/get/delete sequence against a Go map oracle. The key space is kept
// tiny (64 keys over 4 buckets of the paper's geometry) so the fuzzer
// reaches full frontyards, backyard spills, and genuine conflicts. After
// every batch of operations it runs the deep checker and verifies iceberg's
// stability guarantee: a key's slot never changes while the key is present.
func FuzzIcebergPutGetDelete(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte("put-heavy: \x00\x00\x00\x01\x01\x01\x02\x02"))
	seq := make([]byte, 0, 192)
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(3*i), byte(3*i+1), byte(3*i+2))
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := NewWithHash[uint64, uint64](4*core.DefaultGeometry.BucketSize(), core.DefaultGeometry, testHash(7))
		oracle := make(map[uint64]uint64)
		// homes records where each present key was first placed. Stability
		// demands the key stay there until deleted; a delete + re-insert
		// may legitimately land elsewhere, so homes entries die with the
		// key.
		homes := make(map[uint64]core.CPFN)

		audit := func() {
			var r invariant.Report
			tbl.CheckInvariants(&r)
			if tbl.Len() != len(oracle) {
				r.Violatef("iceberg.oracle-len", "table has %d items, oracle %d", tbl.Len(), len(oracle))
			}
			for k := range oracle {
				slot, ok := tbl.Slot(k)
				if !ok {
					r.Violatef("iceberg.oracle-membership", "key %d in oracle but has no slot", k)
					continue
				}
				if slot != homes[k] {
					r.Violatef("iceberg.stability", "key %d placed at slot %d, now reports %d", k, homes[k], slot)
				}
			}
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
		}

		val := uint64(0)
		for i := 0; i+1 < len(data); i += 2 {
			key := uint64(data[i+1] % 64)
			switch data[i] % 3 {
			case 0:
				val++
				slot, err := tbl.PutSlot(key, val)
				switch {
				case err == nil:
					if home, present := homes[key]; present && home != slot {
						t.Fatalf("update of key %d moved it from slot %d to %d", key, home, slot)
					}
					oracle[key] = val
					homes[key] = slot
				case errors.Is(err, ErrConflict):
					if _, present := oracle[key]; present {
						t.Fatalf("Put(%d) conflicted on a present key: %v", key, err)
					}
				default:
					t.Fatalf("Put(%d): %v", key, err)
				}
			case 1:
				got, ok := tbl.Get(key)
				want, present := oracle[key]
				if ok != present || (ok && got != want) {
					t.Fatalf("Get(%d) = (%d, %v), oracle (%d, %v)", key, got, ok, want, present)
				}
			case 2:
				ok := tbl.Delete(key)
				if _, present := oracle[key]; ok != present {
					t.Fatalf("Delete(%d) = %v, oracle presence %v", key, ok, present)
				}
				delete(oracle, key)
				delete(homes, key)
			}
			if i%32 == 30 {
				audit()
			}
		}
		audit()
		// Final cross-check: every oracle entry is retrievable with its
		// latest value.
		for k, want := range oracle {
			if got, ok := tbl.Get(k); !ok || got != want {
				t.Fatalf("final Get(%d) = (%d, %v), want (%d, true)", k, got, ok, want)
			}
		}
	})
}
