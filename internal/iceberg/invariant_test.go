package iceberg

import (
	"strings"
	"testing"

	"mosaic/internal/core"
	"mosaic/internal/invariant"
	"mosaic/internal/xxhash"
)

func testHash(seed uint64) KeyHash[uint64] {
	return func(key uint64, fn int) uint64 {
		return xxhash.Sum64Pair(key, uint64(fn), seed)
	}
}

// filledTable builds a deterministic table with n keys for corruption tests.
func filledTable(t *testing.T, n int) *Table[uint64, uint64] {
	t.Helper()
	tbl := NewWithHash[uint64, uint64](4*core.DefaultGeometry.BucketSize(), core.DefaultGeometry, testHash(42))
	for k := uint64(0); uint64(tbl.Len()) < uint64(n); k++ {
		if err := tbl.Put(k, k*3); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	return tbl
}

func hasRule(r *invariant.Report, rule string) bool {
	for _, v := range r.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestCheckInvariantsClean(t *testing.T) {
	tbl := filledTable(t, 150)
	var r invariant.Report
	tbl.CheckInvariants(&r)
	if err := r.Err(); err != nil {
		t.Fatalf("clean table reported violations: %v", err)
	}
}

// TestCheckInvariantsDetectsCorruption breaks the table's internal state in
// the ways the checker claims to catch and asserts each one is reported —
// the checkers themselves need a true-positive test, exactly like the lint
// fixtures.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	firstUsed := func(used []bool) int {
		for i, u := range used {
			if u {
				return i
			}
		}
		t.Fatal("no used slot")
		return -1
	}
	firstFree := func(used []bool) int {
		for i, u := range used {
			if !u {
				return i
			}
		}
		t.Fatal("no free slot")
		return -1
	}

	tests := []struct {
		name    string
		corrupt func(tbl *Table[uint64, uint64])
		rule    string
	}{
		{"frontyard counter", func(tbl *Table[uint64, uint64]) {
			tbl.frontLen[0]++
		}, "iceberg.frontyard-occupancy"},
		{"backyard counter", func(tbl *Table[uint64, uint64]) {
			tbl.backLen[1]--
		}, "iceberg.backyard-occupancy"},
		{"backyard total", func(tbl *Table[uint64, uint64]) {
			tbl.backTot++
		}, "iceberg.backyard-total"},
		{"length", func(tbl *Table[uint64, uint64]) {
			tbl.len--
		}, "iceberg.len"},
		{"relocated key", func(tbl *Table[uint64, uint64]) {
			// Move a frontyard item to a free frontyard slot of another
			// bucket: the key no longer hashes to the bucket it sits in
			// (a key has exactly one frontyard bucket).
			f := tbl.geom.FrontyardSize
			i := firstUsed(tbl.frontUsed)
			j := -1
			for idx, used := range tbl.frontUsed {
				if !used && idx/f != i/f {
					j = idx
					break
				}
			}
			if j < 0 {
				t.Fatal("no free frontyard slot outside the source bucket")
			}
			tbl.frontKeys[j], tbl.frontVals[j], tbl.frontUsed[j] = tbl.frontKeys[i], tbl.frontVals[i], true
			tbl.frontUsed[i] = false
		}, "iceberg.key-location"},
		{"duplicated key", func(tbl *Table[uint64, uint64]) {
			i := firstUsed(tbl.frontUsed)
			j := firstFree(tbl.backUsed)
			tbl.backKeys[j], tbl.backVals[j], tbl.backUsed[j] = tbl.frontKeys[i], tbl.frontVals[i], true
		}, "iceberg.duplicate-key"},
	}
	for _, tc := range tests {
		t.Run(strings.ReplaceAll(tc.name, " ", "-"), func(t *testing.T) {
			tbl := filledTable(t, 150)
			tc.corrupt(tbl)
			var r invariant.Report
			tbl.CheckInvariants(&r)
			if r.OK() {
				t.Fatalf("corruption %q went undetected", tc.name)
			}
			if !hasRule(&r, tc.rule) {
				t.Fatalf("corruption %q reported %v, want rule %s", tc.name, r.Violations(), tc.rule)
			}
		})
	}
}
