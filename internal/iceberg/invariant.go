package iceberg

import (
	"mosaic/internal/invariant"
)

// CheckInvariants performs a deep consistency check of the table, recording
// any violation on r:
//
//   - the per-bucket occupancy counters (frontLen, backLen) match the slot
//     bitmaps they summarize, as do the len and backTot totals — PutSlot's
//     power-of-d-choices trusts these counters to promise a free slot;
//   - every used slot holds a key that actually hashes to that bucket (its
//     single frontyard bucket, or one of its d backyard choices), i.e. Get
//     can find every stored item;
//   - no key occupies two slots.
//
// It runs in O(slots) plus one hash evaluation per stored item; call it
// from tests and fuzzers, not per operation.
func (t *Table[K, V]) CheckInvariants(r *invariant.Report) {
	f := t.geom.FrontyardSize
	b := t.geom.BackyardSize

	frontTot := 0
	for i := 0; i < t.numBuckets; i++ {
		n := 0
		for s := 0; s < f; s++ {
			if t.frontUsed[i*f+s] {
				n++
			}
		}
		r.Checkf(n == t.frontLen[i], "iceberg.frontyard-occupancy",
			"bucket %d: frontLen %d, bitmap count %d", i, t.frontLen[i], n)
		frontTot += n
	}
	backTot := 0
	for i := 0; i < t.numBuckets; i++ {
		n := 0
		for s := 0; s < b; s++ {
			if t.backUsed[i*b+s] {
				n++
			}
		}
		r.Checkf(n == t.backLen[i], "iceberg.backyard-occupancy",
			"bucket %d: backLen %d, bitmap count %d", i, t.backLen[i], n)
		backTot += n
	}
	r.Checkf(backTot == t.backTot, "iceberg.backyard-total",
		"backTot %d, bitmap count %d", t.backTot, backTot)
	r.Checkf(frontTot+backTot == t.len, "iceberg.len",
		"len %d, bitmap count %d", t.len, frontTot+backTot)

	// Every stored key must live in one of its own candidate buckets, and
	// in only one slot table-wide.
	seen := make(map[K]bool, t.len)
	check := func(key K, where string, bucket int, backyard bool) {
		if !r.Checkf(!seen[key], "iceberg.duplicate-key",
			"key %v stored twice (second at %s bucket %d)", key, where, bucket) {
			return
		}
		seen[key] = true
		bk := t.buckets(key)
		if backyard {
			ok := false
			for j := 0; j < t.geom.Choices; j++ {
				if int(bk[1+j]) == bucket {
					ok = true
				}
			}
			r.Checkf(ok, "iceberg.key-location",
				"key %v in backyard bucket %d, not among its choices %v", key, bucket, bk[1:])
		} else {
			r.Checkf(int(bk[0]) == bucket, "iceberg.key-location",
				"key %v in frontyard bucket %d, hashes to %d", key, bucket, bk[0])
		}
	}
	for i, used := range t.frontUsed {
		if used {
			check(t.frontKeys[i], "frontyard", i/f, false)
		}
	}
	for i, used := range t.backUsed {
		if used {
			check(t.backKeys[i], "backyard", i/b, true)
		}
	}
}
