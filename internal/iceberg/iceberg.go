// Package iceberg implements Iceberg hashing (Bender et al.), the hash-table
// design underlying mosaic page allocation (§2.3 of the paper).
//
// An iceberg table simultaneously achieves the three properties mosaic
// needs, which classical tables provide only two of at a time:
//
//  1. Low associativity — each key has at most h = f + d·b candidate slots,
//     so "where did it land" fits in log2(h) bits.
//  2. Stability — once inserted, an item never moves until deleted (unlike
//     cuckoo hashing), so mapped pages never need to be copied.
//  3. High utilization — the table operates at load factors within a few
//     percent of 100% before any insertion fails, with high probability.
//
// The table is split into a frontyard of bins with f slots and a backyard
// of equally many bins with b slots. An insertion first tries the key's
// single frontyard bin; if that bin is full it goes to the emptiest of d
// hashed backyard bins (the power-of-d-choices). Because the frontyard
// absorbs all but an o(1/log log n) fraction of items, the backyard stays
// sparse and overflows only with negligible probability.
package iceberg

import (
	"errors"
	"fmt"
	"hash/maphash"

	"mosaic/internal/core"
	"mosaic/internal/obs"
)

// ErrConflict is returned by Put when every candidate slot for the key is
// occupied — the iceberg analogue of an associativity conflict. The table
// as a whole may be far from full when this happens; the load factor at the
// first conflict is the quantity δ measured in §4.2.
var ErrConflict = errors.New("iceberg: all candidate slots for key are occupied")

// KeyHash produces the bucket-selection hash of a key under placement
// function fn (0 = frontyard, 1..d = backyard choices).
type KeyHash[K comparable] func(key K, fn int) uint64

// Table is an iceberg hash table mapping K to V. It is not safe for
// concurrent use.
type Table[K comparable, V any] struct {
	geom       core.Geometry
	hash       KeyHash[K]
	numBuckets int

	// Flat slot arrays: bucket i's frontyard occupies
	// frontKeys[i*f : (i+1)*f]; its backyard backKeys[i*b : (i+1)*b].
	frontKeys []K
	frontVals []V
	frontUsed []bool
	backKeys  []K
	backVals  []V
	backUsed  []bool

	backLen  []int // per-bucket backyard occupancy, for power-of-d-choices
	frontLen []int // per-bucket frontyard occupancy

	len     int
	backTot int

	scratch []int

	// Optional instrumentation (Instrument); nil handles cost one compare.
	cFront    *obs.Counter
	cBack     *obs.Counter
	cConflict *obs.Counter
}

// New creates a table with at least capacity slots using the given geometry
// and a default hash family (maphash over the key, with fresh random seeds;
// placement therefore varies between processes, exactly like a freshly
// drawn hash function). Capacity is rounded up to a whole number of
// buckets. Use NewWithHash for seed-reproducible placement.
func New[K comparable, V any](capacity int, geom core.Geometry) *Table[K, V] {
	seeds := make([]maphash.Seed, geom.HashCount())
	for i := range seeds {
		seeds[i] = maphash.MakeSeed()
	}
	return NewWithHash[K, V](capacity, geom, func(key K, fn int) uint64 {
		return maphash.Comparable(seeds[fn], key)
	})
}

// NewWithHash creates a table with an explicit hash family. Use this when
// deterministic (seed-reproducible) placement is required.
func NewWithHash[K comparable, V any](capacity int, geom core.Geometry, hash KeyHash[K]) *Table[K, V] {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("iceberg: capacity %d must be positive", capacity))
	}
	if hash == nil {
		panic("iceberg: nil hash")
	}
	bs := geom.BucketSize()
	numBuckets := (capacity + bs - 1) / bs
	t := &Table[K, V]{
		geom:       geom,
		hash:       hash,
		numBuckets: numBuckets,
		frontKeys:  make([]K, numBuckets*geom.FrontyardSize),
		frontVals:  make([]V, numBuckets*geom.FrontyardSize),
		frontUsed:  make([]bool, numBuckets*geom.FrontyardSize),
		backKeys:   make([]K, numBuckets*geom.BackyardSize),
		backVals:   make([]V, numBuckets*geom.BackyardSize),
		backUsed:   make([]bool, numBuckets*geom.BackyardSize),
		backLen:    make([]int, numBuckets),
		frontLen:   make([]int, numBuckets),
		scratch:    make([]int, geom.HashCount()),
	}
	return t
}

// Len is the number of stored key/value pairs.
func (t *Table[K, V]) Len() int { return t.len }

// Cap is the total number of slots.
func (t *Table[K, V]) Cap() int { return t.numBuckets * t.geom.BucketSize() }

// NumBuckets is the number of (frontyard, backyard) bucket pairs.
func (t *Table[K, V]) NumBuckets() int { return t.numBuckets }

// LoadFactor is Len divided by Cap.
func (t *Table[K, V]) LoadFactor() float64 { return float64(t.len) / float64(t.Cap()) }

// BackyardLen is the number of items resident in the backyard. Iceberg's
// analysis requires this to stay o(n / log log n); tests assert it is a
// small fraction of the total.
func (t *Table[K, V]) BackyardLen() int { return t.backTot }

// Geometry returns the table's bucket geometry.
func (t *Table[K, V]) Geometry() core.Geometry { return t.geom }

// Instrument mirrors insertion outcomes into a metrics registry:
// iceberg.put.frontyard and iceberg.put.backyard count where new keys
// landed (the backyard share is the o(1/log log n) quantity iceberg's
// analysis bounds), iceberg.put.conflict counts failed insertions.
func (t *Table[K, V]) Instrument(r *obs.Registry) {
	t.cFront = r.Counter("iceberg.put.frontyard")
	t.cBack = r.Counter("iceberg.put.backyard")
	t.cConflict = r.Counter("iceberg.put.conflict")
}

// buckets fills scratch with the key's bucket choices: index 0 is the
// frontyard bucket, 1..d the backyard candidates. The uint64→int narrowing
// is guarded by the modulus — numBuckets is a positive int, so the result
// always fits.
func (t *Table[K, V]) buckets(key K) []int {
	sc := t.scratch // local header: the hash call cannot alias it, so the store stays check-free
	for fn := range sc {
		sc[fn] = int(t.hash(key, fn) % uint64(t.numBuckets))
	}
	return sc
}

// Bucket-scan loops below slice the flat slot arrays down to the one bin
// being probed before entering the loop. The three re-slices share the same
// length expression, so the compiler's prove pass eliminates every bounds
// check inside the scan itself (bcegate pins this: internal/lint/bce.baseline
// must show no IsInBounds in these loops).

// Get returns the value stored for key.
func (t *Table[K, V]) Get(key K) (V, bool) {
	bk := t.buckets(key)
	f := t.geom.FrontyardSize
	base := bk[0] * f
	used := t.frontUsed[base : base+f]
	keys := t.frontKeys[base : base+f]
	vals := t.frontVals[base : base+f]
	for s := range used {
		if used[s] && keys[s] == key {
			return vals[s], true
		}
	}
	b := t.geom.BackyardSize
	for _, bkj := range bk[1:] {
		base := bkj * b
		used := t.backUsed[base : base+b]
		keys := t.backKeys[base : base+b]
		vals := t.backVals[base : base+b]
		for s := range used {
			if used[s] && keys[s] == key {
				return vals[s], true
			}
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Table[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Put inserts or updates key. An update happens in place (stability: the
// item does not move). A new insertion follows the iceberg discipline:
// frontyard bin first; if full, the emptiest of the d backyard choices.
// Put returns ErrConflict if every candidate slot is occupied by other keys.
func (t *Table[K, V]) Put(key K, val V) error {
	_, err := t.PutSlot(key, val)
	return err
}

// PutSlot is Put, additionally reporting the CPFN-style slot index the key
// occupies (useful for callers that, like the mosaic TLB, must record which
// of the h candidates was chosen).
func (t *Table[K, V]) PutSlot(key K, val V) (core.CPFN, error) {
	bk := t.buckets(key)
	f := t.geom.FrontyardSize
	b := t.geom.BackyardSize

	// Update in place if present (front or back), preserving stability.
	fbase := bk[0] * f
	fused := t.frontUsed[fbase : fbase+f]
	fkeys := t.frontKeys[fbase : fbase+f]
	fvals := t.frontVals[fbase : fbase+f]
	firstFree := -1
	for s := range fused {
		if fused[s] {
			if fkeys[s] == key {
				fvals[s] = val
				return t.geom.FrontyardCPFN(s), nil
			}
		} else if firstFree < 0 {
			firstFree = s
		}
	}
	for j, bkj := range bk[1:] {
		base := bkj * b
		used := t.backUsed[base : base+b]
		keys := t.backKeys[base : base+b]
		vals := t.backVals[base : base+b]
		for s := range used {
			if used[s] && keys[s] == key {
				vals[s] = val
				return t.geom.BackyardCPFN(j, s), nil
			}
		}
	}

	// New key: frontyard first.
	if firstFree >= 0 {
		fkeys[firstFree], fvals[firstFree], fused[firstFree] = key, val, true
		t.frontLen[bk[0]]++
		t.len++
		if t.cFront != nil {
			t.cFront.Inc()
		}
		return t.geom.FrontyardCPFN(firstFree), nil
	}

	// Frontyard full: power-of-d-choices over the backyard bins.
	best, bestLen := -1, b+1
	for j, bkj := range bk[1:] {
		if l := t.backLen[bkj]; l < bestLen {
			best, bestLen = j, l
		}
	}
	if bestLen >= b {
		if t.cConflict != nil {
			t.cConflict.Inc()
		}
		var zero core.CPFN
		return zero, fmt.Errorf("%w (frontyard bucket %d and %d backyard choices full)",
			ErrConflict, bk[0], t.geom.Choices)
	}
	base := bk[1+best] * b
	used := t.backUsed[base : base+b]
	keys := t.backKeys[base : base+b]
	vals := t.backVals[base : base+b]
	blen := &t.backLen[bk[1+best]] // hoisted so the insert loop stays check-free
	for s := range used {
		if !used[s] {
			keys[s], vals[s], used[s] = key, val, true
			*blen++
			t.backTot++
			t.len++
			if t.cBack != nil {
				t.cBack.Inc()
			}
			return t.geom.BackyardCPFN(best, s), nil
		}
	}
	//lint:ignore nopanic backLen promised a free slot in the chosen bucket; not finding one means the occupancy counters are corrupt
	panic("iceberg: backyard occupancy count inconsistent with slot bitmap")
}

// Delete removes key, reporting whether it was present. Deletion frees the
// slot without disturbing any other item.
func (t *Table[K, V]) Delete(key K) bool {
	bk := t.buckets(key)
	f := t.geom.FrontyardSize
	fbase := bk[0] * f
	fused := t.frontUsed[fbase : fbase+f]
	fkeys := t.frontKeys[fbase : fbase+f]
	fvals := t.frontVals[fbase : fbase+f]
	flen := &t.frontLen[bk[0]] // hoisted so the scan loops stay check-free
	var zeroK K
	var zeroV V
	for s := range fused {
		if fused[s] && fkeys[s] == key {
			fkeys[s], fvals[s], fused[s] = zeroK, zeroV, false
			*flen--
			t.len--
			return true
		}
	}
	b := t.geom.BackyardSize
	for _, bkj := range bk[1:] {
		base := bkj * b
		used := t.backUsed[base : base+b]
		keys := t.backKeys[base : base+b]
		vals := t.backVals[base : base+b]
		blen := &t.backLen[bkj]
		for s := range used {
			if used[s] && keys[s] == key {
				keys[s], vals[s], used[s] = zeroK, zeroV, false
				*blen--
				t.backTot--
				t.len--
				return true
			}
		}
	}
	return false
}

// Slot returns the CPFN-style slot index at which key currently resides.
func (t *Table[K, V]) Slot(key K) (core.CPFN, bool) {
	bk := t.buckets(key)
	f := t.geom.FrontyardSize
	fbase := bk[0] * f
	fused := t.frontUsed[fbase : fbase+f]
	fkeys := t.frontKeys[fbase : fbase+f]
	for s := range fused {
		if fused[s] && fkeys[s] == key {
			return t.geom.FrontyardCPFN(s), true
		}
	}
	b := t.geom.BackyardSize
	for j, bkj := range bk[1:] {
		base := bkj * b
		used := t.backUsed[base : base+b]
		keys := t.backKeys[base : base+b]
		for s := range used {
			if used[s] && keys[s] == key {
				return t.geom.BackyardCPFN(j, s), true
			}
		}
	}
	return core.CPFNInvalid, false
}

// Range calls fn for every stored pair until fn returns false. Iteration
// order is unspecified.
func (t *Table[K, V]) Range(fn func(key K, val V) bool) {
	for i, used := range t.frontUsed {
		if used && !fn(t.frontKeys[i], t.frontVals[i]) {
			return
		}
	}
	for i, used := range t.backUsed {
		if used && !fn(t.backKeys[i], t.backVals[i]) {
			return
		}
	}
}
