package iceberg

import "mosaic/internal/core"

// gateProbe pins a concrete instantiation of Table into this package's
// object code. Every in-tree client of the iceberg discipline either lives
// in a test or (like internal/alloc) reimplements it natively, so without
// this function `go build` would never stencil the generic bucket-scan
// loops — and the compiler-introspection gates (mosaiclint bcegate and
// inlinegate) would be inspecting an empty package. The probe is never
// called; it only has to survive the linker's reachability analysis at
// compile time, which building the package object already guarantees.
//
// Table[uint64,uint64] is the shape the mosaic TLB path would use (PFN
// keyed by VPN), so the diagnostics the gates diff are the ones that
// matter for the hot path.
var _ = gateProbe

func gateProbe() bool {
	t := NewWithHash[uint64, uint64](1024, core.DefaultGeometry, func(key uint64, fn int) uint64 {
		return key * uint64(fn+1)
	})
	if err := t.Put(7, 42); err != nil {
		return false
	}
	v, ok := t.Get(7)
	_, slotOK := t.Slot(7)
	return ok && slotOK && v == 42 && t.Delete(7)
}
